/**
 * @file
 * RTL export flow: generate (or load) a fixed matrix, compile it, and
 * write the synthesizable SystemVerilog plus the matrix file next to
 * it — the artifact pair a hardware team would hand to Vivado.
 *
 * Usage: export_rtl [--dim=32] [--sparsity=0.9] [--csd]
 *                   [--out=spatial_mm.sv] [--matrix=weights.txt]
 *                   [--load=<existing matrix file>]
 */

#include <cstdio>
#include <fstream>

#include "common/args.h"
#include "common/rng.h"
#include "core/compiler.h"
#include "core/verilog.h"
#include "fpga/report.h"
#include "matrix/generate.h"
#include "matrix/io.h"

int
main(int argc, char **argv)
{
    using namespace spatial;
    const Args args(argc, argv);
    const auto dim = static_cast<std::size_t>(args.getInt("dim", 32));
    const double sparsity = args.getReal("sparsity", 0.9);
    const bool use_csd = args.getBool("csd", true);
    const auto rtl_path = args.getString("out", "spatial_mm.sv");
    const auto matrix_path = args.getString("matrix", "weights.txt");

    IntMatrix weights;
    if (args.has("load")) {
        weights = loadMatrix(args.getString("load", ""));
        std::printf("loaded %zux%zu matrix\n", weights.rows(),
                    weights.cols());
    } else {
        Rng rng(4242);
        weights =
            makeSignedElementSparseMatrix(dim, dim, 8, sparsity, rng);
        saveMatrix(weights, matrix_path);
        std::printf("generated %zux%zu matrix -> %s\n", weights.rows(),
                    weights.cols(), matrix_path.c_str());
    }

    core::CompileOptions options;
    options.inputBits = 8;
    options.signMode =
        use_csd ? core::SignMode::Csd : core::SignMode::PnSplit;
    const auto design = core::MatrixCompiler(options).compile(weights);

    // Sanity-run the design before exporting.
    Rng rng(7);
    const auto a = makeSignedVector(weights.rows(), 8, rng);
    if (design.multiply(a) != gemvRef(a, weights)) {
        std::printf("ERROR: simulation mismatch, not exporting\n");
        return 1;
    }

    std::ofstream os(rtl_path);
    core::writeVerilog(design, os);
    os.close();

    const auto point = fpga::evaluateDesign(design);
    std::printf("wrote %s: %zu components, %zu LUTs, Fmax %.0f MHz, "
                "latency %u cycles\n",
                rtl_path.c_str(), design.netlist().numNodes(),
                point.resources.luts, point.fmaxMhz, point.latencyCycles);
    std::printf("interface: in_bits[%zu], out_bits[%zu], %d-bit output "
                "streams\n",
                weights.rows(), weights.cols(), design.outputBits());
    return 0;
}
