/**
 * @file
 * Quickstart: compile a fixed sparse signed matrix into a bit-serial
 * spatial design, run a vector through the cycle-accurate simulation,
 * check it against the reference gemv, and report the FPGA cost model's
 * view of the design.
 *
 * Usage: quickstart [--dim=64] [--sparsity=0.9] [--csd]
 */

#include <cstdio>

#include "common/args.h"
#include "common/rng.h"
#include "core/compiler.h"
#include "fpga/report.h"
#include "matrix/generate.h"

int
main(int argc, char **argv)
{
    using namespace spatial;
    const Args args(argc, argv);
    const auto dim = static_cast<std::size_t>(args.getInt("dim", 64));
    const double sparsity = args.getReal("sparsity", 0.9);
    const bool use_csd = args.getBool("csd", false);

    // 1. A fixed random reservoir-style matrix: 8-bit signed weights.
    Rng rng(1234);
    const IntMatrix weights =
        makeSignedElementSparseMatrix(dim, dim, 8, sparsity, rng);
    std::printf("matrix: %zux%zu, %.0f%% element-sparse, %zu ones\n",
                weights.rows(), weights.cols(), sparsity * 100.0,
                weights.onesCount());

    // 2. Compile it to a spatial bit-serial netlist.
    core::CompileOptions options;
    options.inputBits = 8;
    options.signMode =
        use_csd ? core::SignMode::Csd : core::SignMode::PnSplit;
    const auto design = core::MatrixCompiler(options).compile(weights);
    std::printf("compiled: %zu netlist components, weight ones %zu (%s)\n",
                design.netlist().numNodes(), design.weightOnes(),
                core::signModeName(options.signMode));

    // 3. Multiply a vector by simulating the netlist cycle-by-cycle.
    const auto a = makeSignedVector(dim, 8, rng);
    const auto hw = design.multiply(a);
    const auto ref = gemvRef(a, weights);
    std::size_t mismatches = 0;
    for (std::size_t c = 0; c < hw.size(); ++c)
        mismatches += (hw[c] != ref[c]);
    std::printf("simulated gemv vs reference: %zu/%zu mismatches\n",
                mismatches, hw.size());
    if (mismatches != 0)
        return 1;

    // 4. What would this cost on the XCVU13P?
    const auto point = fpga::evaluateDesign(design);
    std::printf("FPGA: %zu LUTs, %zu FFs, %zu LUTRAMs, %d SLR(s)\n",
                point.resources.luts, point.resources.ffs,
                point.resources.lutrams, point.slrs);
    std::printf("      Fmax %.0f MHz, %.1f W, latency %u cycles = %.1f ns\n",
                point.fmaxMhz, point.powerWatts, point.latencyCycles,
                point.latencyNs);
    return 0;
}
