/**
 * @file
 * Cost-model explorer: "simple cost and power models, which enable the
 * quick estimation of size and power of any fixed matrix on an FPGA"
 * (paper contribution 3).  Compares the closed-form estimate against
 * the full compile+map pipeline across a dimension/sparsity grid.
 *
 * Usage: cost_model_explorer [--bits=8]
 */

#include <iostream>

#include "common/args.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/compiler.h"
#include "fpga/area_model.h"
#include "fpga/report.h"
#include "matrix/generate.h"

int
main(int argc, char **argv)
{
    using namespace spatial;
    const Args args(argc, argv);
    const auto bits = static_cast<int>(args.getInt("bits", 8));

    Table table("Closed-form estimate vs compiled design",
                {"dim", "sparsity", "est LUTs", "mapped LUTs", "err %",
                 "SLRs", "Fmax MHz", "power W"});

    Rng rng(55);
    for (const std::size_t dim : {64u, 128u, 256u}) {
        for (const double sparsity : {0.5, 0.8, 0.95}) {
            const auto weights = makeSignedElementSparseMatrix(
                dim, dim, bits, sparsity, rng);

            core::CompileOptions options;
            options.inputBits = 8;
            const auto design =
                core::MatrixCompiler(options).compile(weights);
            const auto point = fpga::evaluateDesign(design);
            const auto estimate =
                fpga::estimateFromOnes(design.weightOnes(), dim, dim);

            const double err =
                100.0 *
                (static_cast<double>(point.resources.luts) -
                 static_cast<double>(estimate.luts)) /
                static_cast<double>(estimate.luts);
            table.addRow({Table::cell(dim), Table::cell(sparsity, 3),
                          Table::cell(estimate.luts),
                          Table::cell(point.resources.luts),
                          Table::cell(err, 3), Table::cell(point.slrs),
                          Table::cell(point.fmaxMhz, 4),
                          Table::cell(point.powerWatts, 3)});
        }
    }
    table.print(std::cout);
    std::cout << "\nLUTs track the ones count; the estimate needs only "
                 "the matrix, not a compile.\n";
    return 0;
}
