/**
 * @file
 * Reservoir computing on the spatial multiplier: train Echo State
 * Networks on the NARMA-10 benchmark with three recurrence backends —
 * the float tanh reference, a quantized integer reservoir in software,
 * and the same integer reservoir running on a cycle-accurate simulation
 * of the compiled bit-serial hardware — and compare quality.
 *
 * Usage: esn_narma [--dim=64] [--train=800] [--test=500]
 */

#include <cstdio>
#include <vector>

#include "common/args.h"
#include "common/rng.h"
#include "esn/backend.h"
#include "esn/esn.h"
#include "esn/metrics.h"
#include "esn/tasks.h"
#include "fpga/report.h"

int
main(int argc, char **argv)
{
    using namespace spatial;
    using namespace spatial::esn;
    const Args args(argc, argv);
    const auto dim = static_cast<std::size_t>(args.getInt("dim", 64));
    const auto train_len =
        static_cast<std::size_t>(args.getInt("train", 800));
    const auto test_len =
        static_cast<std::size_t>(args.getInt("test", 500));
    const std::size_t washout = 60;

    Rng rng(2024);
    const auto train_data = makeNarma10(train_len, rng);
    const auto test_data = makeNarma10(test_len, rng);

    ReservoirConfig config;
    config.dim = dim;
    config.sparsity = 0.9; // >80% per Gallicchio (paper citation [10])
    config.spectralRadius = 0.9;
    config.seed = 7;
    const auto weights = makeReservoirWeights(config);

    auto evaluate = [&](std::vector<double> preds) {
        std::vector<double> p(preds.begin() + washout, preds.end());
        std::vector<double> t(test_data.targets.begin() + washout,
                              test_data.targets.end());
        return nrmse(p, t);
    };

    // Float tanh reference.
    EchoStateNetwork float_esn(weights, config);
    float_esn.train(train_data.inputs, train_data.targets, washout, 1e-6);
    const double float_err = evaluate(float_esn.predict(test_data.inputs));
    std::printf("float ESN (dim %zu):        test NRMSE %.4f\n", dim,
                float_err);

    // Integer reservoir, software gemv.
    IntReservoirConfig iconfig;
    iconfig.weightBits = 4; // 3-4 bits suffice per Kleyko et al. [16]
    iconfig.stateBits = 8;
    IntEchoStateNetwork int_esn(weights, iconfig, BackendKind::Reference);
    int_esn.train(train_data.inputs, train_data.targets, washout, 1e-4);
    const double int_err = evaluate(int_esn.predict(test_data.inputs));
    std::printf("int8/4-bit ESN (software): test NRMSE %.4f\n", int_err);

    // Integer reservoir on the simulated spatial hardware.
    IntEchoStateNetwork hw_esn(weights, iconfig, BackendKind::Spatial);
    hw_esn.train(train_data.inputs, train_data.targets, washout, 1e-4);
    const double hw_err = evaluate(hw_esn.predict(test_data.inputs));

    auto &backend =
        dynamic_cast<SpatialBackend &>(hw_esn.reservoir().backend());
    const auto point = fpga::evaluateDesign(backend.design());
    std::printf("int8/4-bit ESN (hardware): test NRMSE %.4f\n", hw_err);
    std::printf("  hardware: %zu LUTs, Fmax %.0f MHz, %.1f ns/update, "
                "%llu total cycles simulated\n",
                point.resources.luts, point.fmaxMhz, point.latencyNs,
                static_cast<unsigned long long>(backend.totalCycles()));

    // The hardware path must match the software integer path exactly.
    if (std::abs(hw_err - int_err) > 1e-9) {
        std::printf("ERROR: hardware and software integer paths differ\n");
        return 1;
    }
    std::printf("hardware == software integer path (bit-exact)\n");
    return 0;
}
