/**
 * @file
 * Nonlinear channel equalization (the online-learning FPGA use case of
 * the paper's citation [3]): a reservoir recovers 4-PAM symbols from a
 * dispersive nonlinear channel.  Sweeps SNR and reports symbol error
 * rate for the float reference and the hardware-backed integer ESN.
 *
 * Usage: channel_equalization [--dim=64] [--train=1500] [--test=1000]
 */

#include <cstdio>
#include <vector>

#include "common/args.h"
#include "common/rng.h"
#include "common/table.h"
#include "esn/esn.h"
#include "esn/metrics.h"
#include "esn/tasks.h"

#include <iostream>

int
main(int argc, char **argv)
{
    using namespace spatial;
    using namespace spatial::esn;
    const Args args(argc, argv);
    const auto dim = static_cast<std::size_t>(args.getInt("dim", 64));
    const auto train_len =
        static_cast<std::size_t>(args.getInt("train", 1500));
    const auto test_len =
        static_cast<std::size_t>(args.getInt("test", 1000));
    const std::size_t washout = 50;

    ReservoirConfig config;
    config.dim = dim;
    config.sparsity = 0.9;
    config.spectralRadius = 0.7; // equalization needs short memory
    config.inputScale = 0.3;
    config.seed = 11;
    const auto weights = makeReservoirWeights(config);

    IntReservoirConfig iconfig;
    iconfig.weightBits = 4;
    iconfig.stateBits = 8;

    Table table("Channel equalization: symbol error rate vs SNR",
                {"SNR (dB)", "SER float", "SER hardware"});

    for (const double snr : {12.0, 16.0, 20.0, 24.0, 28.0}) {
        Rng rng(100 + static_cast<std::uint64_t>(snr));
        const auto train_data =
            makeChannelEqualization(train_len, snr, rng);
        const auto test_data = makeChannelEqualization(test_len, snr, rng);

        auto ser_of = [&](std::vector<double> preds) {
            std::vector<double> p(preds.begin() + washout, preds.end());
            std::vector<double> t(test_data.targets.begin() + washout,
                                  test_data.targets.end());
            return symbolErrorRate(p, t, kChannelSymbols);
        };

        EchoStateNetwork float_esn(weights, config);
        float_esn.train(train_data.inputs, train_data.targets, washout,
                        1e-6);
        const double float_ser =
            ser_of(float_esn.predict(test_data.inputs));

        IntEchoStateNetwork hw_esn(weights, iconfig, BackendKind::Spatial);
        hw_esn.train(train_data.inputs, train_data.targets, washout, 1e-4);
        const double hw_ser = ser_of(hw_esn.predict(test_data.inputs));

        table.addRow({Table::cell(snr, 3), Table::cell(float_ser, 4),
                      Table::cell(hw_ser, 4)});
    }

    table.print(std::cout);
    std::printf("\nhigher SNR -> lower SER; the quantized hardware "
                "reservoir tracks the float reference\n");
    return 0;
}
