/**
 * @file
 * Canonical-signed-digit explorer: shows Listing 1 decompositions for
 * individual values and measures the average ones reduction CSD buys
 * per weight bitwidth (Section V: ~17% for uniform 8-bit data, more for
 * wider weights).
 *
 * Usage: csd_explorer [--value=15] [--bits=8]
 */

#include <cstdio>
#include <iostream>

#include "common/args.h"
#include "common/rng.h"
#include "common/table.h"
#include "matrix/bits.h"
#include "matrix/csd.h"

int
main(int argc, char **argv)
{
    using namespace spatial;
    const Args args(argc, argv);
    const auto value = args.getInt("value", 15);
    const auto bits = static_cast<int>(args.getInt("bits", 8));

    // Single-value decomposition.
    Rng rng(1);
    const auto digits = toCsdDigits(value, bits, rng);
    std::printf("%lld = ", static_cast<long long>(value));
    bool first = true;
    for (std::size_t k = digits.size(); k-- > 0;) {
        if (digits[k] == 0)
            continue;
        const long long term = 1ll << k;
        std::printf("%s%lld", first ? (digits[k] < 0 ? "-" : "")
                                    : (digits[k] < 0 ? " - " : " + "),
                    term);
        first = false;
    }
    if (first)
        std::printf("0");
    std::printf("   (binary ones %d -> CSD ones %d)\n\n",
                popcount64(std::abs(value)), csdOnes(digits));

    // Average reduction per bitwidth over uniform random values.
    Table table("CSD ones reduction for uniform random values",
                {"bitwidth", "binary ones", "csd ones", "reduction %"});
    for (const int w : {4, 6, 8, 12, 16, 24, 32}) {
        Rng sweep_rng(static_cast<std::uint64_t>(w));
        double binary = 0.0, csd = 0.0;
        const int samples = 20000;
        for (int i = 0; i < samples; ++i) {
            const std::int64_t v =
                sweep_rng.uniformInt(0, maxUnsigned(std::min(w, 60)));
            binary += popcount64(v);
            csd += csdOnes(toCsdDigits(v, w, sweep_rng));
        }
        binary /= samples;
        csd /= samples;
        table.addRow({Table::cell(w), Table::cell(binary, 4),
                      Table::cell(csd, 4),
                      Table::cell(100.0 * (1.0 - csd / binary), 3)});
    }
    table.print(std::cout);
    std::printf("\n\"We would expect these savings to improve for larger "
                "weight bitwidths.\" (Section V)\n");
    return 0;
}
