/**
 * @file
 * Memory capacity of fixed sparse reservoirs: sweeps reservoir size and
 * sparsity and reports the total linear memory capacity, for the float
 * reference and for the quantized reservoir whose recurrence runs on
 * the simulated spatial hardware.  Gallicchio (paper citation [10])
 * motivates sparsity >80% for "rich interaction among neurons"; this
 * example lets you see the effect directly.
 *
 * Usage: memory_capacity [--length=1200] [--delay=30]
 */

#include <cstdio>
#include <iostream>

#include "common/args.h"
#include "common/rng.h"
#include "common/table.h"
#include "esn/capacity.h"
#include "esn/reservoir.h"

int
main(int argc, char **argv)
{
    using namespace spatial;
    using namespace spatial::esn;
    const Args args(argc, argv);
    const auto length = static_cast<std::size_t>(
        args.getInt("length", 1200));
    const auto max_delay =
        static_cast<std::size_t>(args.getInt("delay", 30));
    const std::size_t washout = max_delay + 20;

    Table table("Linear memory capacity (max delay " +
                    std::to_string(max_delay) + ")",
                {"dim", "sparsity", "MC float", "MC hardware (int8/4b)"});

    for (const std::size_t dim : {32u, 64u}) {
        for (const double sparsity : {0.5, 0.9}) {
            ReservoirConfig config;
            config.dim = dim;
            config.sparsity = sparsity;
            config.spectralRadius = 0.9;
            config.inputScale = 0.25;
            config.seed = 17 + dim;
            const auto weights = makeReservoirWeights(config);

            FloatReservoir float_res(weights, config);
            Rng probe_a(55);
            const auto mc_float = measureMemoryCapacity(
                float_res, max_delay, length, washout, 1e-7, probe_a);

            IntReservoirConfig iconfig;
            iconfig.weightBits = 4;
            iconfig.stateBits = 8;
            auto hw_res = makeIntReservoir(weights, iconfig,
                                           BackendKind::Spatial);
            Rng probe_b(55);
            const auto mc_hw = measureMemoryCapacity(
                hw_res, max_delay, length, washout, 1e-4, probe_b);

            table.addRow({Table::cell(dim), Table::cell(sparsity, 3),
                          Table::cell(mc_float.total, 4),
                          Table::cell(mc_hw.total, 4)});
        }
    }
    table.print(std::cout);
    std::printf("\nMC is bounded by the reservoir dimension; "
                "quantization trades some capacity for the integer "
                "datapath the spatial multiplier implements.\n");
    return 0;
}
