/**
 * @file
 * Chaotic time-series prediction: an ESN forecasts the Mackey-Glass
 * series several steps ahead, with the reservoir recurrence on the
 * simulated spatial hardware.  Sweeps the prediction horizon.
 *
 * Usage: esn_mackey_glass [--dim=80] [--train=1500] [--test=800]
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/args.h"
#include "common/table.h"
#include "esn/esn.h"
#include "esn/metrics.h"
#include "esn/tasks.h"

int
main(int argc, char **argv)
{
    using namespace spatial;
    using namespace spatial::esn;
    const Args args(argc, argv);
    const auto dim = static_cast<std::size_t>(args.getInt("dim", 80));
    const auto train_len =
        static_cast<std::size_t>(args.getInt("train", 1500));
    const auto test_len =
        static_cast<std::size_t>(args.getInt("test", 800));
    const std::size_t washout = 100;

    ReservoirConfig config;
    config.dim = dim;
    config.sparsity = 0.9;
    config.spectralRadius = 0.95; // chaotic series reward long memory
    config.inputScale = 0.4;
    config.seed = 23;
    const auto weights = makeReservoirWeights(config);

    IntReservoirConfig iconfig;
    iconfig.weightBits = 4;
    iconfig.stateBits = 8;

    Table table("Mackey-Glass prediction NRMSE vs horizon (dim " +
                    std::to_string(dim) + ")",
                {"horizon", "NRMSE float", "NRMSE hardware"});

    for (const std::size_t horizon : {1u, 4u, 8u, 16u}) {
        const auto series =
            makeMackeyGlass(train_len + test_len, horizon);
        std::vector<double> train_u(series.inputs.begin(),
                                    series.inputs.begin() +
                                        static_cast<std::ptrdiff_t>(
                                            train_len));
        std::vector<double> train_y(series.targets.begin(),
                                    series.targets.begin() +
                                        static_cast<std::ptrdiff_t>(
                                            train_len));
        std::vector<double> test_u(series.inputs.begin() +
                                       static_cast<std::ptrdiff_t>(
                                           train_len),
                                   series.inputs.end());
        std::vector<double> test_y(series.targets.begin() +
                                       static_cast<std::ptrdiff_t>(
                                           train_len),
                                   series.targets.end());

        auto score = [&](std::vector<double> preds) {
            std::vector<double> p(preds.begin() + washout, preds.end());
            std::vector<double> t(test_y.begin() + washout, test_y.end());
            return nrmse(p, t);
        };

        EchoStateNetwork float_esn(weights, config);
        float_esn.train(train_u, train_y, washout, 1e-7);
        const double float_err = score(float_esn.predict(test_u));

        IntEchoStateNetwork hw_esn(weights, iconfig, BackendKind::Spatial);
        hw_esn.train(train_u, train_y, washout, 1e-4);
        const double hw_err = score(hw_esn.predict(test_u));

        table.addRow({Table::cell(horizon), Table::cell(float_err, 4),
                      Table::cell(hw_err, 4)});
    }
    table.print(std::cout);
    std::printf("\nError grows with horizon (chaos); the hardware "
                "reservoir tracks the float reference.\n");
    return 0;
}
