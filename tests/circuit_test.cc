/**
 * @file
 * Tests for the netlist IR and the cycle-accurate simulator, including
 * the paper's Table I bit-serial addition trace.
 */

#include <gtest/gtest.h>

#include <vector>

#include "circuit/netlist.h"
#include "circuit/simulator.h"
#include "circuit/stats.h"

namespace
{

using namespace spatial::circuit;

/** Stream `value` LSb-first for `width` cycles and capture node output. */
std::vector<int>
streamThrough(const Netlist &netlist, NodeId out, std::int64_t a,
              std::int64_t b, int cycles)
{
    Simulator sim(netlist);
    std::vector<int> outputs;
    for (int t = 0; t < cycles; ++t) {
        std::vector<std::uint8_t> bits(2);
        bits[0] = static_cast<std::uint8_t>(
            (static_cast<std::uint64_t>(a) >> t) & 1u);
        bits[1] = static_cast<std::uint8_t>(
            (static_cast<std::uint64_t>(b) >> t) & 1u);
        sim.step(bits);
        outputs.push_back(sim.outputBit(out) ? 1 : 0);
    }
    return outputs;
}

/** Reassemble a little-endian bit list into an integer. */
std::int64_t
bitsToValue(const std::vector<int> &bits, int from = 0)
{
    std::int64_t v = 0;
    for (std::size_t i = static_cast<std::size_t>(from); i < bits.size(); ++i)
        if (bits[i])
            v |= std::int64_t{1} << (i - static_cast<std::size_t>(from));
    return v;
}

TEST(Netlist, SsaOrderingEnforced)
{
    Netlist nl;
    const auto a = nl.addInput(0);
    const auto b = nl.addInput(1);
    const auto s = nl.addAdder(a, b);
    EXPECT_EQ(nl.numNodes(), 3u);
    EXPECT_EQ(nl.kind(s), CompKind::Adder);
    EXPECT_EQ(nl.srcA(s), a);
    EXPECT_EQ(nl.srcB(s), b);
    EXPECT_EQ(nl.numInputPorts(), 2u);
}

TEST(Netlist, DelayChainLength)
{
    Netlist nl;
    const auto a = nl.addInput(0);
    const auto d = nl.addDelay(a, 3);
    EXPECT_EQ(nl.numNodes(), 4u); // input + 3 dffs
    EXPECT_EQ(nl.kind(d), CompKind::Dff);
    EXPECT_EQ(nl.addDelay(a, 0), a); // zero-length delay is the identity
}

TEST(Netlist, RegisterBitCounting)
{
    Netlist nl;
    const auto a = nl.addInput(0);
    const auto b = nl.addInput(1);
    nl.addDff(a);        // 1 bit
    nl.addAdder(a, b);   // 2 bits
    nl.addSub(a, b);     // 2 bits
    EXPECT_EQ(nl.registerBits(), 5u);
}

TEST(Netlist, FanoutAccounting)
{
    Netlist nl;
    const auto a = nl.addInput(0);
    const auto b = nl.addInput(1);
    nl.addAdder(a, b);
    nl.addAdder(a, b);
    nl.addDff(a);
    const auto fan = nl.fanouts();
    EXPECT_EQ(fan[a], 3u);
    EXPECT_EQ(fan[b], 2u);
    EXPECT_EQ(nl.maxFanout(), 3u);
}

TEST(Simulator, TableOneBitSerialAdditionTrace)
{
    // Table I: 3 + 7 = 10, i.e. 011 + 111 = 1010 over four cycles with
    // the documented carry sequence.
    Netlist nl;
    const auto a = nl.addInput(0);
    const auto b = nl.addInput(1);
    const auto s = nl.addAdder(a, b);

    Simulator sim(nl);
    struct Row
    {
        int a, b, s, cout;
    };
    // Expected S and Cout after each cycle (S is the registered sum, so
    // it appears on the output one cycle later; Table I lists the
    // combinational S within the cycle, which equals our register after
    // stepping).
    const Row expected[] = {
        {1, 1, 0, 1},
        {1, 1, 1, 1},
        {0, 1, 0, 1},
        {0, 0, 1, 0},
    };
    std::vector<int> sum_bits;
    for (const auto &row : expected) {
        sim.step({static_cast<std::uint8_t>(row.a),
                  static_cast<std::uint8_t>(row.b)});
        sum_bits.push_back(sim.outputBit(s) ? 1 : 0);
    }
    // Wait: outputBit reflects the REGISTERED value during the stepped
    // cycle, i.e. the sum of the previous cycle.  Collect one more cycle
    // so all four sum bits are visible.
    sim.step({0, 0});
    sum_bits.push_back(sim.outputBit(s) ? 1 : 0);

    // Sum bits 0..3 appear on cycles 1..4 of the output register.
    EXPECT_EQ(sum_bits[1], 0);
    EXPECT_EQ(sum_bits[2], 1);
    EXPECT_EQ(sum_bits[3], 0);
    EXPECT_EQ(sum_bits[4], 1);
    std::vector<int> value_bits(sum_bits.begin() + 1, sum_bits.end());
    EXPECT_EQ(bitsToValue(value_bits), 10);
}

class AdderSweep
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>>
{};

TEST_P(AdderSweep, AddsArbitraryPairs)
{
    const auto [a, b] = GetParam();
    Netlist nl;
    const auto ia = nl.addInput(0);
    const auto ib = nl.addInput(1);
    const auto s = nl.addAdder(ia, ib);
    // Stream enough bits to cover the result plus the register delay.
    const auto out = streamThrough(nl, s, a, b, 20);
    EXPECT_EQ(bitsToValue(out, 1), a + b);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, AdderSweep,
    ::testing::Values(std::pair{0, 0}, std::pair{3, 7}, std::pair{255, 1},
                      std::pair{170, 85}, std::pair{511, 511},
                      std::pair{1, 1023}, std::pair{999, 1}));

class SubSweep
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>>
{};

TEST_P(SubSweep, SubtractsWithBorrowInTime)
{
    const auto [a, b] = GetParam();
    Netlist nl;
    const auto ia = nl.addInput(0);
    const auto ib = nl.addInput(1);
    const auto d = nl.addSub(ia, ib);
    // 20 streamed bits: the two's complement result is captured in 19
    // bits, enough for all test magnitudes (sign extension: inputs are
    // non-negative and < 2^16, so upper stream bits are zero and the
    // difference's sign bits are produced by the subtractor itself).
    const auto out = streamThrough(nl, d, a, b, 20);
    std::int64_t v = bitsToValue(out, 1);
    // Sign-extend from 19 captured bits.
    if (v & (std::int64_t{1} << 18))
        v -= std::int64_t{1} << 19;
    EXPECT_EQ(v, a - b);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, SubSweep,
    ::testing::Values(std::pair{0, 0}, std::pair{7, 3}, std::pair{3, 7},
                      std::pair{255, 256}, std::pair{1000, 999},
                      std::pair{0, 1}, std::pair{65535, 1}));

TEST(Simulator, DffDelaysByExactlyOneCycle)
{
    Netlist nl;
    const auto a = nl.addInput(0);
    const auto d1 = nl.addDff(a);
    const auto d2 = nl.addDff(d1);

    Simulator sim(nl);
    const std::vector<std::uint8_t> pattern{1, 0, 1, 1, 0, 0, 1};
    std::vector<int> got1, got2;
    for (const auto bit : pattern) {
        sim.step({bit});
        got1.push_back(sim.outputBit(d1));
        got2.push_back(sim.outputBit(d2));
    }
    for (std::size_t t = 1; t < pattern.size(); ++t)
        EXPECT_EQ(got1[t], pattern[t - 1]);
    for (std::size_t t = 2; t < pattern.size(); ++t)
        EXPECT_EQ(got2[t], pattern[t - 2]);
}

TEST(Simulator, CombinationalGatesPropagateWithinCycle)
{
    Netlist nl;
    const auto a = nl.addInput(0);
    const auto b = nl.addInput(1);
    const auto g = nl.addAnd(a, b);
    const auto n = nl.addNot(g);
    const auto one = nl.addConst1();
    const auto zero = nl.addConst0();

    Simulator sim(nl);
    sim.step({1, 1});
    EXPECT_TRUE(sim.outputBit(g));
    EXPECT_FALSE(sim.outputBit(n));
    EXPECT_TRUE(sim.outputBit(one));
    EXPECT_FALSE(sim.outputBit(zero));
    sim.step({1, 0});
    EXPECT_FALSE(sim.outputBit(g));
    EXPECT_TRUE(sim.outputBit(n));
}

TEST(Simulator, ResetRestoresPowerOnState)
{
    Netlist nl;
    const auto a = nl.addInput(0);
    const auto b = nl.addInput(1);
    const auto s = nl.addAdder(a, b);

    Simulator sim(nl);
    // Pollute state.
    sim.step({1, 1});
    sim.step({1, 1});
    EXPECT_EQ(sim.cycle(), 2u);
    sim.reset();
    EXPECT_EQ(sim.cycle(), 0u);

    // Re-run Table I and check the first sum bit is unaffected by the
    // earlier carries.
    const auto out = streamThrough(nl, s, 3, 7, 6);
    EXPECT_EQ(bitsToValue(out, 1), 10);
}

TEST(Simulator, SubtractorCarryInitialisedAfterReset)
{
    Netlist nl;
    const auto a = nl.addInput(0);
    const auto b = nl.addInput(1);
    const auto d = nl.addSub(a, b);

    Simulator sim(nl);
    sim.step({0, 1});
    sim.step({0, 1});
    sim.reset();
    const auto out = streamThrough(nl, d, 9, 4, 10);
    EXPECT_EQ(bitsToValue(out, 1) & 0xff, 5);
}

TEST(Stats, CountsEveryKind)
{
    Netlist nl;
    const auto a = nl.addInput(0);
    const auto b = nl.addInput(1);
    nl.addConst0();
    nl.addConst1();
    nl.addDff(a);
    nl.addNot(a);
    nl.addAnd(a, b);
    nl.addAdder(a, b);
    nl.addSub(a, b);

    const auto counts = collectCounts(nl);
    EXPECT_EQ(counts.inputs, 2u);
    EXPECT_EQ(counts.const0s, 1u);
    EXPECT_EQ(counts.const1s, 1u);
    EXPECT_EQ(counts.dffs, 1u);
    EXPECT_EQ(counts.nots, 1u);
    EXPECT_EQ(counts.ands, 1u);
    EXPECT_EQ(counts.adders, 1u);
    EXPECT_EQ(counts.subs, 1u);
    EXPECT_EQ(counts.totalNodes, 9u);
    EXPECT_EQ(counts.registerBits, 5u);
}

} // namespace
