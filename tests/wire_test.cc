// Tests of the wire codec: round trips for every message kind
// (including edge payloads — empty batches, non-multiple-of-64 lane
// counts, header-only error responses), the shared request validation
// that keeps SPATIAL_FATAL off network-reachable paths, and a
// deterministic byte-level fuzz loop proving the decoder answers
// truncated, oversized, and bit-flipped frames with an error status
// instead of crashing or reading past the buffer (the CI net job runs
// this under ASan to make "past the buffer" a hard failure).

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "matrix/generate.h"
#include "serve/wire.h"

namespace
{

using namespace spatial;
using namespace spatial::serve;

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

std::vector<std::uint8_t>
encode(const wire::RequestFrame &frame)
{
    std::vector<std::uint8_t> bytes;
    wire::appendRequestFrame(bytes, frame);
    return bytes;
}

std::vector<std::uint8_t>
encode(const wire::ResponseFrame &frame)
{
    std::vector<std::uint8_t> bytes;
    wire::appendResponseFrame(bytes, frame);
    return bytes;
}

// Peel the length prefix off one encoded frame and decode the payload.
wire::Status
decodeRequestBytes(const std::vector<std::uint8_t> &bytes,
                   wire::RequestFrame *out)
{
    std::size_t off = 0, size = 0, total = 0;
    EXPECT_EQ(wire::peekFrame(bytes.data(), bytes.size(), &off, &size,
                              &total),
              wire::FrameResult::Ok);
    EXPECT_EQ(total, bytes.size());
    return wire::decodeRequest(bytes.data() + off, size, out);
}

wire::Status
decodeResponseBytes(const std::vector<std::uint8_t> &bytes,
                    wire::ResponseFrame *out)
{
    std::size_t off = 0, size = 0, total = 0;
    EXPECT_EQ(wire::peekFrame(bytes.data(), bytes.size(), &off, &size,
                              &total),
              wire::FrameResult::Ok);
    EXPECT_EQ(total, bytes.size());
    return wire::decodeResponse(bytes.data() + off, size, out);
}

std::vector<std::int64_t>
testVector(std::size_t n, Rng &rng, int bits = 8)
{
    return makeSignedVector(n, bits, rng);
}

// ---------------------------------------------------------------------
// Round trips, every request kind
// ---------------------------------------------------------------------

TEST(WireCodec, GemvRoundTrip)
{
    Rng rng(1);
    wire::RequestFrame frame;
    frame.kind = wire::MessageKind::Gemv;
    frame.requestId = 0x1122334455667788ull;
    frame.designId = 7;
    frame.request = Request::gemv(testVector(129, rng)); // != 64k

    wire::RequestFrame back;
    ASSERT_EQ(decodeRequestBytes(encode(frame), &back),
              wire::Status::Ok);
    EXPECT_EQ(back.kind, wire::MessageKind::Gemv);
    EXPECT_EQ(back.requestId, frame.requestId);
    EXPECT_EQ(back.designId, 7u);
    EXPECT_EQ(back.request.kind, RequestKind::Gemv);
    EXPECT_EQ(back.request.vec, frame.request.vec);
}

TEST(WireCodec, GemvBatchRoundTripOddLanes)
{
    Rng rng(2);
    // 65 rows: one lane past a 64-lane group boundary.
    wire::RequestFrame frame;
    frame.kind = wire::MessageKind::GemvBatch;
    frame.requestId = 9;
    frame.designId = 1;
    frame.request =
        Request::gemvBatch(makeSignedBatch(65, 33, 8, rng));

    wire::RequestFrame back;
    ASSERT_EQ(decodeRequestBytes(encode(frame), &back),
              wire::Status::Ok);
    EXPECT_EQ(back.request.kind, RequestKind::GemvBatch);
    ASSERT_EQ(back.request.batch.rows(), 65u);
    ASSERT_EQ(back.request.batch.cols(), 33u);
    EXPECT_TRUE(back.request.batch == frame.request.batch);
}

TEST(WireCodec, EmptyBatchDecodesButFailsValidation)
{
    // A 0-lane batch is structurally representable (the codec carries
    // the dimensions it was given) but semantically invalid — the
    // shared validator rejects it, mirroring Server::submit.
    wire::RequestFrame frame;
    frame.kind = wire::MessageKind::GemvBatch;
    frame.requestId = 1;
    frame.request = Request::gemvBatch(IntMatrix(0, 16));

    wire::RequestFrame back;
    ASSERT_EQ(decodeRequestBytes(encode(frame), &back),
              wire::Status::Ok);
    EXPECT_EQ(back.request.batch.rows(), 0u);
    EXPECT_EQ(wire::validateRequest(back.request, 16, 16),
              wire::Status::BadRequest);
}

TEST(WireCodec, EsnStepRoundTrip)
{
    Rng rng(3);
    wire::RequestFrame frame;
    frame.kind = wire::MessageKind::EsnStep;
    frame.requestId = 77;
    frame.designId = 3;
    frame.request = Request::esnStep(testVector(48, rng),
                                     testVector(48, rng), 2, 8);

    wire::RequestFrame back;
    ASSERT_EQ(decodeRequestBytes(encode(frame), &back),
              wire::Status::Ok);
    EXPECT_EQ(back.request.kind, RequestKind::EsnStep);
    EXPECT_EQ(back.request.vec, frame.request.vec);
    EXPECT_EQ(back.request.inject, frame.request.inject);
    EXPECT_EQ(back.request.postShift, 2);
    EXPECT_EQ(back.request.stateBits, 8);
}

TEST(WireCodec, EsnStepWithoutInjectionRoundTrip)
{
    Rng rng(4);
    wire::RequestFrame frame;
    frame.kind = wire::MessageKind::EsnStep;
    frame.requestId = 78;
    frame.request =
        Request::esnStep(testVector(16, rng), {}, 1, 10);

    wire::RequestFrame back;
    ASSERT_EQ(decodeRequestBytes(encode(frame), &back),
              wire::Status::Ok);
    EXPECT_TRUE(back.request.inject.empty());
    EXPECT_EQ(back.request.stateBits, 10);
}

TEST(WireCodec, EsnSequenceRoundTrip)
{
    Rng rng(5);
    wire::RequestFrame frame;
    frame.kind = wire::MessageKind::EsnSequence;
    frame.requestId = 1000;
    frame.designId = 2;
    frame.request = Request::esnSequence(
        testVector(24, rng), makeSignedBatch(7, 24, 8, rng), 3, 9);

    wire::RequestFrame back;
    ASSERT_EQ(decodeRequestBytes(encode(frame), &back),
              wire::Status::Ok);
    EXPECT_EQ(back.request.kind, RequestKind::EsnSequence);
    EXPECT_EQ(back.request.vec, frame.request.vec);
    EXPECT_TRUE(back.request.injectSeq == frame.request.injectSeq);
    EXPECT_EQ(back.request.postShift, 3);
    EXPECT_EQ(back.request.stateBits, 9);
}

TEST(WireCodec, RegisterDesignRoundTrip)
{
    Rng rng(6);
    wire::RequestFrame frame;
    frame.kind = wire::MessageKind::RegisterDesign;
    frame.requestId = 5;
    frame.weights = makeSignedElementSparseMatrix(40, 24, 6, 0.8, rng);
    frame.compile.inputBits = 6;
    frame.compile.inputsSigned = false;
    frame.compile.signMode = core::SignMode::Csd;
    frame.compile.constantPropagation = false;
    frame.compile.balancedTree = false;
    frame.compile.alignOutputs = false;
    frame.compile.extraOutputBits = 3;
    frame.compile.broadcastFanoutLimit = 32;
    frame.compile.csdSeed = 0xdeadbeefcafef00dull;

    wire::RequestFrame back;
    ASSERT_EQ(decodeRequestBytes(encode(frame), &back),
              wire::Status::Ok);
    EXPECT_TRUE(back.weights == frame.weights);
    EXPECT_EQ(back.compile.inputBits, 6);
    EXPECT_FALSE(back.compile.inputsSigned);
    EXPECT_EQ(back.compile.signMode, core::SignMode::Csd);
    EXPECT_FALSE(back.compile.constantPropagation);
    EXPECT_FALSE(back.compile.balancedTree);
    EXPECT_FALSE(back.compile.alignOutputs);
    EXPECT_EQ(back.compile.extraOutputBits, 3);
    EXPECT_EQ(back.compile.broadcastFanoutLimit, 32u);
    EXPECT_EQ(back.compile.csdSeed, 0xdeadbeefcafef00dull);
}

TEST(WireCodec, RegisterDesignRejectsCompilerFatalOptions)
{
    Rng rng(19);
    wire::RequestFrame base;
    base.kind = wire::MessageKind::RegisterDesign;
    base.requestId = 6;
    base.weights = makeSignedElementSparseMatrix(8, 8, 6, 0.8, rng);
    base.compile.inputBits = 8;

    // Options the compiler would SPATIAL_FATAL on must decode to
    // BadRequest, never reach the registrar: the engine encodes at
    // most 32 input bits, and 60+ extra output bits cannot fit the
    // 62-bit capture.
    for (const int bits : {0, 33, 62}) {
        wire::RequestFrame frame = base;
        frame.compile.inputBits = bits;
        wire::RequestFrame back;
        EXPECT_EQ(decodeRequestBytes(encode(frame), &back),
                  wire::Status::BadRequest)
            << "inputBits " << bits;
    }
    {
        wire::RequestFrame frame = base;
        frame.compile.extraOutputBits = 200;
        wire::RequestFrame back;
        EXPECT_EQ(decodeRequestBytes(encode(frame), &back),
                  wire::Status::BadRequest);
    }
    {
        // Unsigned mode with any negative weight.
        wire::RequestFrame frame = base;
        frame.compile.signMode = core::SignMode::Unsigned;
        frame.weights.at(3, 4) = -1;
        wire::RequestFrame back;
        EXPECT_EQ(decodeRequestBytes(encode(frame), &back),
                  wire::Status::BadRequest);
    }
    {
        // The boundary cases stay admissible.
        wire::RequestFrame frame = base;
        frame.compile.inputBits = 32;
        wire::RequestFrame back;
        EXPECT_EQ(decodeRequestBytes(encode(frame), &back),
                  wire::Status::Ok);
    }
}

TEST(WireCodec, PingAndStatsRoundTrip)
{
    for (const wire::MessageKind kind :
         {wire::MessageKind::Ping, wire::MessageKind::Stats}) {
        wire::RequestFrame frame;
        frame.kind = kind;
        frame.requestId = 11;
        wire::RequestFrame back;
        ASSERT_EQ(decodeRequestBytes(encode(frame), &back),
                  wire::Status::Ok);
        EXPECT_EQ(back.kind, kind);
        EXPECT_EQ(back.requestId, 11u);
    }
}

TEST(WireCodec, ResponseRoundTripWithOutput)
{
    Rng rng(7);
    wire::ResponseFrame frame;
    frame.status = wire::Status::Ok;
    frame.kind = wire::MessageKind::GemvBatch;
    frame.requestId = 0xffffffffffffffffull;
    frame.designId = 0xffffffffu;
    frame.output = makeSignedBatch(3, 65, 12, rng);

    wire::ResponseFrame back;
    ASSERT_EQ(decodeResponseBytes(encode(frame), &back),
              wire::Status::Ok);
    EXPECT_EQ(back.status, wire::Status::Ok);
    EXPECT_EQ(back.kind, wire::MessageKind::GemvBatch);
    EXPECT_EQ(back.requestId, frame.requestId);
    EXPECT_EQ(back.designId, frame.designId);
    EXPECT_TRUE(back.output == frame.output);
}

TEST(WireCodec, ErrorResponsesCarryNoBody)
{
    for (const wire::Status status :
         {wire::Status::Busy, wire::Status::BadRequest,
          wire::Status::UnknownDesign, wire::Status::ShuttingDown,
          wire::Status::Internal}) {
        wire::ResponseFrame frame;
        frame.status = status;
        frame.kind = wire::MessageKind::Gemv;
        frame.requestId = 3;
        frame.output = IntMatrix(4, 4); // must NOT be encoded

        const auto bytes = encode(frame);
        wire::ResponseFrame back;
        ASSERT_EQ(decodeResponseBytes(bytes, &back), wire::Status::Ok);
        EXPECT_EQ(back.status, status);
        EXPECT_EQ(back.output.rows(), 0u);
        EXPECT_EQ(back.output.cols(), 0u);
    }
}

// ---------------------------------------------------------------------
// Shared request validation (the SPATIAL_FATAL firewall)
// ---------------------------------------------------------------------

TEST(WireValidate, MirrorsServerShapeChecks)
{
    Rng rng(8);
    const std::size_t rows = 16, cols = 12;

    EXPECT_EQ(wire::validateRequest(
                  Request::gemv(testVector(rows, rng)), rows, cols),
              wire::Status::Ok);
    EXPECT_EQ(wire::validateRequest(
                  Request::gemv(testVector(rows + 1, rng)), rows, cols),
              wire::Status::BadRequest);
    EXPECT_EQ(wire::validateRequest(
                  Request::gemvBatch(makeSignedBatch(5, rows, 8, rng)),
                  rows, cols),
              wire::Status::Ok);
    EXPECT_EQ(
        wire::validateRequest(
            Request::gemvBatch(makeSignedBatch(5, rows - 1, 8, rng)),
            rows, cols),
        wire::Status::BadRequest);

    // EsnStep: inject must match cols; shift/bits must be in range.
    EXPECT_EQ(wire::validateRequest(
                  Request::esnStep(testVector(rows, rng),
                                   testVector(cols, rng), 2, 8),
                  rows, cols),
              wire::Status::Ok);
    EXPECT_EQ(wire::validateRequest(
                  Request::esnStep(testVector(rows, rng),
                                   testVector(cols + 2, rng), 2, 8),
                  rows, cols),
              wire::Status::BadRequest);
    EXPECT_EQ(wire::validateRequest(
                  Request::esnStep(testVector(rows, rng), {}, 63, 8),
                  rows, cols),
              wire::Status::BadRequest);
    EXPECT_EQ(wire::validateRequest(
                  Request::esnStep(testVector(rows, rng), {}, 2, 0),
                  rows, cols),
              wire::Status::BadRequest);

    // EsnSequence requires a square design.
    EXPECT_EQ(wire::validateRequest(
                  Request::esnSequence(testVector(rows, rng),
                                       makeSignedBatch(4, rows, 8, rng),
                                       2, 8),
                  rows, rows),
              wire::Status::Ok);
    EXPECT_EQ(wire::validateRequest(
                  Request::esnSequence(testVector(rows, rng),
                                       makeSignedBatch(4, rows, 8, rng),
                                       2, 8),
                  rows, cols),
              wire::Status::BadRequest);
}

// ---------------------------------------------------------------------
// Framing errors
// ---------------------------------------------------------------------

TEST(WireFraming, ShortPrefixNeedsMore)
{
    const std::uint8_t bytes[3] = {1, 2, 3};
    std::size_t off = 0, size = 0, total = 0;
    EXPECT_EQ(wire::peekFrame(bytes, 0, &off, &size, &total),
              wire::FrameResult::NeedMore);
    EXPECT_EQ(wire::peekFrame(bytes, 3, &off, &size, &total),
              wire::FrameResult::NeedMore);
}

TEST(WireFraming, TruncatedPayloadNeedsMore)
{
    Rng rng(9);
    wire::RequestFrame frame;
    frame.kind = wire::MessageKind::Gemv;
    frame.request = Request::gemv(testVector(32, rng));
    const auto bytes = encode(frame);

    // Every proper prefix is NeedMore, never Ok, never a crash.
    for (std::size_t n = 4; n < bytes.size(); ++n) {
        std::size_t off = 0, size = 0, total = 0;
        EXPECT_EQ(wire::peekFrame(bytes.data(), n, &off, &size, &total),
                  wire::FrameResult::NeedMore)
            << "prefix " << n;
    }
}

TEST(WireFraming, OversizedLengthIsMalformed)
{
    std::uint8_t bytes[8] = {};
    const std::uint32_t huge = wire::kMaxFrameBytes + 1;
    std::memcpy(bytes, &huge, 4);
    std::size_t off = 0, size = 0, total = 0;
    EXPECT_EQ(wire::peekFrame(bytes, 8, &off, &size, &total),
              wire::FrameResult::Malformed);
}

TEST(WireFraming, CallerBudgetTightensButNeverWidensTheCap)
{
    std::uint8_t bytes[8] = {};
    std::size_t off = 0, size = 0, total = 0;

    // A frame under the protocol cap but over the caller's budget is
    // Malformed for that caller, NeedMore for one that accepts it.
    const std::uint32_t length = 4096;
    std::memcpy(bytes, &length, 4);
    EXPECT_EQ(wire::peekFrame(bytes, 8, &off, &size, &total,
                              /*max_payload=*/1024),
              wire::FrameResult::Malformed);
    EXPECT_EQ(wire::peekFrame(bytes, 8, &off, &size, &total,
                              /*max_payload=*/4096),
              wire::FrameResult::NeedMore);

    // A budget above kMaxFrameBytes cannot widen the protocol cap.
    const std::uint32_t huge = wire::kMaxFrameBytes + 1;
    std::memcpy(bytes, &huge, 4);
    EXPECT_EQ(wire::peekFrame(bytes, 8, &off, &size, &total,
                              /*max_payload=*/0xffffffffu),
              wire::FrameResult::Malformed);
}

TEST(WireFraming, TinyLengthIsMalformed)
{
    // Shorter than the fixed header: framing is broken.
    std::uint8_t bytes[8] = {};
    const std::uint32_t tiny = wire::kHeaderBytes - 1;
    std::memcpy(bytes, &tiny, 4);
    std::size_t off = 0, size = 0, total = 0;
    EXPECT_EQ(wire::peekFrame(bytes, 8, &off, &size, &total),
              wire::FrameResult::Malformed);
}

TEST(WireDecode, RejectsWrongMagicVersionKindAndTrailingBytes)
{
    Rng rng(10);
    wire::RequestFrame frame;
    frame.kind = wire::MessageKind::Gemv;
    frame.request = Request::gemv(testVector(8, rng));
    const auto bytes = encode(frame);
    const std::uint8_t *payload = bytes.data() + 4;
    const std::size_t size = bytes.size() - 4;
    wire::RequestFrame out;

    auto corrupted = std::vector<std::uint8_t>(payload, payload + size);
    corrupted[0] ^= 0xff; // magic
    EXPECT_EQ(wire::decodeRequest(corrupted.data(), size, &out),
              wire::Status::BadFrame);

    corrupted.assign(payload, payload + size);
    corrupted[2] ^= 0x01; // version
    EXPECT_EQ(wire::decodeRequest(corrupted.data(), size, &out),
              wire::Status::BadVersion);

    corrupted.assign(payload, payload + size);
    corrupted[3] = 99; // unknown kind
    EXPECT_EQ(wire::decodeRequest(corrupted.data(), size, &out),
              wire::Status::BadFrame);

    corrupted.assign(payload, payload + size);
    corrupted.push_back(0); // trailing garbage
    EXPECT_EQ(wire::decodeRequest(corrupted.data(), corrupted.size(),
                                  &out),
              wire::Status::BadFrame);
}

TEST(WireDecode, RejectsCountLyingAboutPayloadSize)
{
    Rng rng(11);
    wire::RequestFrame frame;
    frame.kind = wire::MessageKind::Gemv;
    frame.request = Request::gemv(testVector(8, rng));
    auto bytes = encode(frame);
    // The vector-length word sits right after the 16-byte header;
    // inflate it so it promises more i64s than the payload holds.
    const std::uint32_t lie = 1000;
    std::memcpy(bytes.data() + 4 + wire::kHeaderBytes, &lie, 4);
    wire::RequestFrame out;
    EXPECT_EQ(wire::decodeRequest(bytes.data() + 4, bytes.size() - 4,
                                  &out),
              wire::Status::BadFrame);
}

TEST(WireDecode, RejectsDimensionAboveProtocolCap)
{
    Rng rng(12);
    wire::RequestFrame frame;
    frame.kind = wire::MessageKind::Gemv;
    frame.request = Request::gemv(testVector(8, rng));
    auto bytes = encode(frame);
    const std::uint32_t huge = wire::kMaxDim + 1;
    std::memcpy(bytes.data() + 4 + wire::kHeaderBytes, &huge, 4);
    wire::RequestFrame out;
    EXPECT_EQ(wire::decodeRequest(bytes.data() + 4, bytes.size() - 4,
                                  &out),
              wire::Status::BadFrame);
}

// ---------------------------------------------------------------------
// Deterministic fuzz: the decoder never crashes, never accepts junk
// silently as a different well-formed message
// ---------------------------------------------------------------------

struct CorpusEntry
{
    std::vector<std::uint8_t> bytes;
    bool isResponse = false;
};

std::vector<CorpusEntry>
corpusFrames()
{
    Rng rng(0xf022);
    std::vector<CorpusEntry> corpus;
    {
        wire::RequestFrame f;
        f.kind = wire::MessageKind::Gemv;
        f.requestId = 1;
        f.request = Request::gemv(makeSignedVector(19, 8, rng));
        corpus.push_back({encode(f), false});
    }
    {
        wire::RequestFrame f;
        f.kind = wire::MessageKind::GemvBatch;
        f.requestId = 2;
        f.request = Request::gemvBatch(makeSignedBatch(5, 13, 8, rng));
        corpus.push_back({encode(f), false});
    }
    {
        wire::RequestFrame f;
        f.kind = wire::MessageKind::EsnStep;
        f.requestId = 3;
        f.request = Request::esnStep(makeSignedVector(9, 8, rng),
                                     makeSignedVector(9, 8, rng), 2, 8);
        corpus.push_back({encode(f), false});
    }
    {
        wire::RequestFrame f;
        f.kind = wire::MessageKind::EsnSequence;
        f.requestId = 4;
        f.request = Request::esnSequence(
            makeSignedVector(6, 8, rng), makeSignedBatch(3, 6, 8, rng),
            2, 8);
        corpus.push_back({encode(f), false});
    }
    {
        wire::RequestFrame f;
        f.kind = wire::MessageKind::RegisterDesign;
        f.requestId = 5;
        f.weights = makeSignedElementSparseMatrix(8, 8, 8, 0.5, rng);
        corpus.push_back({encode(f), false});
    }
    {
        wire::ResponseFrame f;
        f.status = wire::Status::Ok;
        f.kind = wire::MessageKind::Gemv;
        f.requestId = 6;
        f.output = makeSignedBatch(1, 19, 12, rng);
        corpus.push_back({encode(f), true});
    }
    return corpus;
}

// Decode a mutated payload both ways; we only require "no crash, no
// over-read" (ASan enforces the latter) and that the result is a
// legal status value.
void
decodeBothWays(const std::uint8_t *payload, std::size_t size)
{
    wire::RequestFrame request;
    const wire::Status a = wire::decodeRequest(payload, size, &request);
    wire::ResponseFrame response;
    const wire::Status b =
        wire::decodeResponse(payload, size, &response);
    (void)a;
    (void)b;
}

TEST(WireFuzz, TruncationsNeverCrashAndNeverDecodeOk)
{
    for (const auto &entry : corpusFrames()) {
        const std::uint8_t *payload = entry.bytes.data() + 4;
        const std::size_t size = entry.bytes.size() - 4;
        for (std::size_t n = 0; n < size; ++n) {
            // A truncated payload can never decode Ok through its own
            // decoder: every layout either runs out of bytes
            // (BadFrame) or leaves declared counts unsatisfied.  The
            // cross-direction decoder is exercised unchecked — a
            // request prefix may alias a valid headers-only error
            // response — purely for the no-crash/no-over-read
            // property.
            if (entry.isResponse) {
                wire::ResponseFrame response;
                EXPECT_NE(wire::decodeResponse(payload, n, &response),
                          wire::Status::Ok)
                    << "truncation " << n;
            } else {
                wire::RequestFrame request;
                EXPECT_NE(wire::decodeRequest(payload, n, &request),
                          wire::Status::Ok)
                    << "truncation " << n;
            }
            decodeBothWays(payload, n);
        }
    }
}

TEST(WireFuzz, BitFlipsNeverCrash)
{
    Rng rng(0xbeef);
    for (const auto &entry : corpusFrames()) {
        for (int round = 0; round < 400; ++round) {
            auto bytes = entry.bytes;
            const int flips =
                1 + static_cast<int>(rng.uniformInt(0, 2));
            for (int f = 0; f < flips; ++f) {
                const auto bit = static_cast<std::size_t>(
                    rng.uniformInt(0,
                                   static_cast<std::int64_t>(
                                       bytes.size() * 8) -
                                       1));
                bytes[bit / 8] ^= static_cast<std::uint8_t>(
                    1u << (bit % 8));
            }
            // Re-frame defensively: the flip may hit the length
            // prefix, in which case peekFrame must catch it.
            std::size_t off = 0, size = 0, total = 0;
            const wire::FrameResult framed = wire::peekFrame(
                bytes.data(), bytes.size(), &off, &size, &total);
            if (framed != wire::FrameResult::Ok)
                continue;
            // The frame may now claim fewer bytes than the buffer
            // holds; decode only what the prefix declares.
            decodeBothWays(bytes.data() + off, size);
        }
    }
}

TEST(WireFuzz, RandomGarbageNeverCrashes)
{
    Rng rng(0x6a5b);
    for (int round = 0; round < 600; ++round) {
        const auto size = static_cast<std::size_t>(
            rng.uniformInt(0, 512));
        std::vector<std::uint8_t> bytes(size);
        for (auto &b : bytes)
            b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        std::size_t off = 0, psize = 0, total = 0;
        const wire::FrameResult framed = wire::peekFrame(
            bytes.data(), bytes.size(), &off, &psize, &total);
        if (framed == wire::FrameResult::Ok)
            decodeBothWays(bytes.data() + off, psize);
        // Also hammer the payload decoders directly, unframed.
        decodeBothWays(bytes.data(), bytes.size());
    }
}

TEST(WireFuzz, GarbageWithValidHeaderNeverCrashes)
{
    // The hardest corpus: a correct magic/version/kind header followed
    // by random bytes, so every body parser runs on junk.
    Rng rng(0x51ee);
    for (int round = 0; round < 600; ++round) {
        wire::RequestFrame seed;
        seed.kind = static_cast<wire::MessageKind>(
            1 + rng.uniformInt(0, 6));
        seed.requestId = static_cast<std::uint64_t>(round);
        std::vector<std::uint8_t> bytes;
        wire::appendRequestFrame(bytes, seed);
        bytes.resize(4 + wire::kHeaderBytes); // keep prefix + header
        const auto junk = static_cast<std::size_t>(
            rng.uniformInt(0, 256));
        for (std::size_t i = 0; i < junk; ++i)
            bytes.push_back(
                static_cast<std::uint8_t>(rng.uniformInt(0, 255)));
        // Patch the length prefix to match the new payload size.
        const auto payload =
            static_cast<std::uint32_t>(bytes.size() - 4);
        std::memcpy(bytes.data(), &payload, 4);
        decodeBothWays(bytes.data() + 4, bytes.size() - 4);
    }
}

} // namespace
