// Tests of the online serving layer: batcher flush-policy boundaries,
// bit-exactness of scattered outputs against direct engine calls,
// scheduler fairness across designs, the DesignStore LRU, the
// DesignCache atomic stats snapshot, and the --seed threading through
// the sweep engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "circuit/jit.h"
#include "core/batch_engine.h"
#include "core/compiler.h"
#include "experiments/sweep.h"
#include "matrix/bits.h"
#include "matrix/generate.h"
#include "serve/batcher.h"
#include "serve/design_store.h"
#include "serve/loadgen.h"
#include "serve/server.h"

namespace
{

using namespace spatial;
using namespace spatial::serve;

core::CompileOptions
testCompileOptions(int bits = 8)
{
    core::CompileOptions options;
    options.inputBits = bits;
    options.inputsSigned = true;
    options.signMode = core::SignMode::Csd;
    return options;
}

IntMatrix
testWeights(std::size_t dim, std::uint64_t seed, int bits = 8,
            double sparsity = 0.85)
{
    Rng rng(seed);
    return makeSignedElementSparseMatrix(dim, dim, bits, sparsity, rng);
}

PendingRequest
pendingGemv(std::size_t dim, Rng &rng,
            std::chrono::time_point<Clock> at)
{
    PendingRequest pending;
    pending.request = Request::gemv(makeSignedVector(dim, 8, rng));
    pending.submitAt = at;
    return pending;
}

// ---------------------------------------------------------------------
// Batcher policy boundaries (driven directly, virtual clock)
// ---------------------------------------------------------------------

TEST(Batcher, ExactFillFlushesImmediately)
{
    Batcher batcher(0, BatchPolicy{64, std::chrono::microseconds(1000)});
    Rng rng(1);
    const auto t0 = Clock::now();
    for (int i = 0; i < 63; ++i)
        EXPECT_TRUE(batcher.enqueue(pendingGemv(8, rng, t0), t0).empty());
    EXPECT_EQ(batcher.pendingLanes(), 63u);

    auto flushed = batcher.enqueue(pendingGemv(8, rng, t0), t0);
    ASSERT_EQ(flushed.size(), 1u);
    EXPECT_EQ(flushed[0].lanes, 64u);
    EXPECT_EQ(flushed[0].requests.size(), 64u);
    EXPECT_EQ(flushed[0].reason, FlushReason::Full);
    EXPECT_EQ(batcher.pendingLanes(), 0u);
    EXPECT_FALSE(batcher.deadline().has_value());
}

TEST(Batcher, OverflowShipsOpenGroupFirst)
{
    Batcher batcher(0, BatchPolicy{64, std::chrono::microseconds(1000)});
    Rng rng(2);
    const auto t0 = Clock::now();
    for (int i = 0; i < 60; ++i)
        batcher.enqueue(pendingGemv(8, rng, t0), t0);

    // A 10-lane block does not fit the 60/64 open group: that group
    // ships, the block starts a fresh one.
    PendingRequest block;
    block.request = Request::gemvBatch(makeSignedBatch(10, 8, 8, rng));
    block.submitAt = t0;
    auto flushed = batcher.enqueue(std::move(block), t0);
    ASSERT_EQ(flushed.size(), 1u);
    EXPECT_EQ(flushed[0].lanes, 60u);
    EXPECT_EQ(flushed[0].reason, FlushReason::Full);
    EXPECT_EQ(batcher.pendingLanes(), 10u);
    EXPECT_TRUE(batcher.deadline().has_value());
}

TEST(Batcher, DeadlineExpiryWithOneQueuedRequest)
{
    const auto delay = std::chrono::microseconds(1000);
    Batcher batcher(0, BatchPolicy{64, delay});
    Rng rng(3);
    const auto t0 = Clock::now();
    ASSERT_TRUE(batcher.enqueue(pendingGemv(8, rng, t0), t0).empty());
    ASSERT_TRUE(batcher.deadline().has_value());
    EXPECT_EQ(*batcher.deadline(), t0 + delay);

    EXPECT_FALSE(batcher.pollDeadline(t0).has_value());
    EXPECT_FALSE(
        batcher.pollDeadline(t0 + delay / 2).has_value());
    auto flushed = batcher.pollDeadline(t0 + delay);
    ASSERT_TRUE(flushed.has_value());
    EXPECT_EQ(flushed->lanes, 1u);
    EXPECT_EQ(flushed->reason, FlushReason::Deadline);
    EXPECT_EQ(batcher.pendingRequests(), 0u);
}

TEST(Batcher, StaleSubmitDoesNotOpenExpiredGroup)
{
    // Regression: the group deadline used to derive from the first
    // request's submitAt, so a request that waited in the server queue
    // longer than maxDelay opened a group that was born expired and
    // flushed with a single lane.  The deadline must count from when
    // the group opens.
    const auto delay = std::chrono::microseconds(1000);
    Batcher batcher(0, BatchPolicy{64, delay});
    Rng rng(9);
    const auto now = Clock::now();
    const auto stale_submit = now - 10 * delay;

    EXPECT_TRUE(batcher.enqueue(pendingGemv(8, rng, stale_submit), now)
                    .empty());
    ASSERT_TRUE(batcher.deadline().has_value());
    EXPECT_EQ(*batcher.deadline(), now + delay);
    EXPECT_FALSE(batcher.pollDeadline(now).has_value());

    // Under backlog, further stale requests keep batching into the
    // open group for the full maxDelay window.
    for (int i = 0; i < 7; ++i)
        EXPECT_TRUE(
            batcher.enqueue(pendingGemv(8, rng, stale_submit), now)
                .empty());
    EXPECT_FALSE(batcher
                     .pollDeadline(now + delay -
                                   std::chrono::microseconds(1))
                     .has_value());

    auto group = batcher.pollDeadline(now + delay);
    ASSERT_TRUE(group.has_value());
    EXPECT_EQ(group->reason, FlushReason::Deadline);
    EXPECT_EQ(group->lanes, 8u);
    EXPECT_EQ(group->requests.size(), 8u);
}

TEST(Batcher, FutureSubmitKeepsItsOwnDeadline)
{
    // A submitAt ahead of `now` (virtual clocks, clock skew) still
    // anchors the deadline at the later of the two.
    const auto delay = std::chrono::microseconds(1000);
    Batcher batcher(0, BatchPolicy{64, delay});
    Rng rng(10);
    const auto now = Clock::now();
    const auto future_submit = now + 5 * delay;

    EXPECT_TRUE(batcher.enqueue(pendingGemv(8, rng, future_submit), now)
                    .empty());
    ASSERT_TRUE(batcher.deadline().has_value());
    EXPECT_EQ(*batcher.deadline(), future_submit + delay);
}

TEST(LatencySummary, NearestRankPercentilesOnSmallSamples)
{
    // Regression: the index used to be floor(q*N), one rank too high —
    // p50 of a 2-sample set returned the max.
    std::vector<double> two{7.0, 1.0};
    const auto s2 = summarize(two);
    EXPECT_DOUBLE_EQ(s2.p50, 1.0);
    EXPECT_DOUBLE_EQ(s2.p95, 7.0);
    EXPECT_DOUBLE_EQ(s2.p99, 7.0);
    EXPECT_DOUBLE_EQ(s2.mean, 4.0);
    EXPECT_DOUBLE_EQ(s2.max, 7.0);

    std::vector<double> one{3.5};
    const auto s1 = summarize(one);
    EXPECT_DOUBLE_EQ(s1.p50, 3.5);
    EXPECT_DOUBLE_EQ(s1.p95, 3.5);
    EXPECT_DOUBLE_EQ(s1.p99, 3.5);

    // 1..20 (submitted shuffled): nearest-rank p50 = ceil(10) -> 10,
    // p95 = ceil(19) -> 19, p99 = ceil(19.8) -> 20.
    std::vector<double> twenty;
    for (int i = 20; i >= 1; --i)
        twenty.push_back(static_cast<double>(i));
    const auto s20 = summarize(twenty);
    EXPECT_DOUBLE_EQ(s20.p50, 10.0);
    EXPECT_DOUBLE_EQ(s20.p95, 19.0);
    EXPECT_DOUBLE_EQ(s20.p99, 20.0);

    // 1..100: the ranks land exactly on 50 / 95 / 99.
    std::vector<double> hundred;
    for (int i = 100; i >= 1; --i)
        hundred.push_back(static_cast<double>(i));
    const auto s100 = summarize(hundred);
    EXPECT_DOUBLE_EQ(s100.p50, 50.0);
    EXPECT_DOUBLE_EQ(s100.p95, 95.0);
    EXPECT_DOUBLE_EQ(s100.p99, 99.0);

    std::vector<double> none;
    const auto s0 = summarize(none);
    EXPECT_DOUBLE_EQ(s0.p50, 0.0);
    EXPECT_DOUBLE_EQ(s0.max, 0.0);
}

TEST(Batcher, OversizedBatchFlushesAlone)
{
    Batcher batcher(0, BatchPolicy{64, std::chrono::microseconds(1000)});
    Rng rng(4);
    PendingRequest block;
    block.request = Request::gemvBatch(makeSignedBatch(100, 8, 8, rng));
    block.submitAt = Clock::now();
    auto flushed = batcher.enqueue(std::move(block), block.submitAt);
    ASSERT_EQ(flushed.size(), 1u);
    EXPECT_EQ(flushed[0].lanes, 100u);
    EXPECT_EQ(flushed[0].requests.size(), 1u);
}

// ---------------------------------------------------------------------
// Server: bit-exactness of scattered outputs vs direct engine calls
// ---------------------------------------------------------------------

TEST(Server, ScatteredOutputsBitExactWithDirectEngine)
{
    const std::size_t dim = 32;
    const auto weights = testWeights(dim, 11);
    const auto compile = testCompileOptions();

    ServeOptions options;
    options.maxBatch = 64;
    options.maxDelay = std::chrono::milliseconds(200);
    options.workers = 2;
    Server server(options);
    const DesignId id = server.registerDesign(weights, compile);

    // Direct reference on the identical vectors.
    const std::size_t singles = 37;
    IntMatrix all(singles + 8, dim);
    Rng fill(12);
    for (std::size_t b = 0; b < all.rows(); ++b) {
        const auto v = makeSignedVector(dim, 8, fill);
        for (std::size_t r = 0; r < dim; ++r)
            all.at(b, r) = v[r];
    }
    const IntMatrix expected =
        server.design(id)->multiplyBatchWide(all);

    // Submit the same rows as 37 singles plus one 8-row block.
    std::vector<std::future<Response>> futures;
    for (std::size_t b = 0; b < singles; ++b) {
        std::vector<std::int64_t> x(dim);
        for (std::size_t r = 0; r < dim; ++r)
            x[r] = all.at(b, r);
        futures.push_back(server.submit(id, Request::gemv(std::move(x))));
    }
    IntMatrix block(8, dim);
    for (std::size_t b = 0; b < 8; ++b)
        for (std::size_t r = 0; r < dim; ++r)
            block.at(b, r) = all.at(singles + b, r);
    auto blockFuture =
        server.submit(id, Request::gemvBatch(std::move(block)));
    server.drain();

    for (std::size_t b = 0; b < singles; ++b) {
        const auto resp = futures[b].get();
        ASSERT_EQ(resp.output.rows(), 1u);
        for (std::size_t c = 0; c < dim; ++c)
            EXPECT_EQ(resp.output.at(0, c), expected.at(b, c))
                << "request " << b << " col " << c;
    }
    const auto blockResp = blockFuture.get();
    ASSERT_EQ(blockResp.output.rows(), 8u);
    for (std::size_t b = 0; b < 8; ++b)
        for (std::size_t c = 0; c < dim; ++c)
            EXPECT_EQ(blockResp.output.at(b, c),
                      expected.at(singles + b, c));
}

TEST(Server, ExactSixtyFourLaneFillFlushesFullWithoutPadding)
{
    const std::size_t dim = 16;
    ServeOptions options;
    options.maxBatch = 64;
    options.maxDelay = std::chrono::seconds(30); // never expires here
    options.workers = 1;
    Server server(options);
    const DesignId id =
        server.registerDesign(testWeights(dim, 21), testCompileOptions());

    Rng rng(22);
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(server.submit(
            id, Request::gemv(makeSignedVector(dim, 8, rng))));
    for (auto &future : futures) {
        const auto resp = future.get();
        EXPECT_EQ(resp.flushReason, FlushReason::Full);
        EXPECT_EQ(resp.groupLanes, 64u);
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.groups, 1u);
    EXPECT_EQ(stats.lanes, 64u);
    EXPECT_EQ(stats.paddedLanes, 64u); // exact fill: no padding
    EXPECT_EQ(stats.flushFull, 1u);
    EXPECT_EQ(stats.flushDeadline, 0u);
}

TEST(Server, DeadlineFlushesSingleQueuedRequest)
{
    const std::size_t dim = 16;
    const auto delay = std::chrono::milliseconds(5);
    ServeOptions options;
    options.maxBatch = 64;
    options.maxDelay = delay;
    options.workers = 1;
    Server server(options);
    const DesignId id =
        server.registerDesign(testWeights(dim, 31), testCompileOptions());

    Rng rng(32);
    auto future =
        server.submit(id, Request::gemv(makeSignedVector(dim, 8, rng)));
    // No drain: only the deadline timer can flush this request.
    const auto resp = future.get();
    EXPECT_EQ(resp.flushReason, FlushReason::Deadline);
    EXPECT_EQ(resp.groupLanes, 1u);
    EXPECT_GE(resp.flushAt - resp.submitAt,
              delay - std::chrono::milliseconds(1));
    const auto stats = server.stats();
    EXPECT_EQ(stats.flushDeadline, 1u);
    EXPECT_EQ(stats.lanes, 1u);
    EXPECT_EQ(stats.paddedLanes, 64u); // padded up to the lane boundary
}

TEST(Server, PartialGroupPadsToLaneBoundaryBitExactly)
{
    const std::size_t dim = 24;
    const auto weights = testWeights(dim, 41);
    ServeOptions options;
    options.maxBatch = 256;
    options.maxDelay = std::chrono::seconds(30);
    options.workers = 1;
    Server server(options);
    const DesignId id =
        server.registerDesign(weights, testCompileOptions());

    Rng rng(42);
    IntMatrix direct(3, dim);
    std::vector<std::future<Response>> futures;
    for (std::size_t b = 0; b < 3; ++b) {
        const auto x = makeSignedVector(dim, 8, rng);
        for (std::size_t r = 0; r < dim; ++r)
            direct.at(b, r) = x[r];
        futures.push_back(server.submit(id, Request::gemv(x)));
    }
    server.drain();

    const IntMatrix expected =
        server.design(id)->multiplyBatchWide(direct);
    for (std::size_t b = 0; b < 3; ++b) {
        const auto resp = futures[b].get();
        EXPECT_EQ(resp.flushReason, FlushReason::Drain);
        EXPECT_EQ(resp.groupLanes, 3u);
        for (std::size_t c = 0; c < dim; ++c)
            EXPECT_EQ(resp.output.at(0, c), expected.at(b, c));
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.lanes, 3u);
    EXPECT_EQ(stats.paddedLanes, 64u);
    EXPECT_EQ(stats.flushDrain, 1u);
}

TEST(Server, TiledDesignServesBitExactly)
{
    // A tiny tile budget forces the registered design to compile as
    // several column strips; every request kind must still come back
    // bit-identical to the untiled reference compile.
    const std::size_t dim = 48;
    const auto weights = testWeights(dim, 45, 8, 0.5);
    const auto compile = testCompileOptions();

    ServeOptions options;
    options.maxBatch = 64;
    options.maxDelay = std::chrono::milliseconds(100);
    options.workers = 2;
    options.tile.onesBudget = 200; // far below the design's ones-cost
    Server server(options);
    const DesignId id = server.registerDesign(weights, compile);
    const auto design = server.design(id);
    ASSERT_TRUE(design->tiled());
    ASSERT_GT(design->tileCount(), 2u);

    const auto untiled = core::TiledDesign::compile(weights, compile);
    ASSERT_FALSE(untiled.tiled());

    Rng rng(46);
    IntMatrix all(20, dim);
    std::vector<std::future<Response>> futures;
    for (std::size_t b = 0; b < all.rows(); ++b) {
        const auto x = makeSignedVector(dim, 8, rng);
        for (std::size_t r = 0; r < dim; ++r)
            all.at(b, r) = x[r];
        futures.push_back(server.submit(id, Request::gemv(x)));
    }
    auto esn = server.submit(
        id, Request::esnStep(makeSignedVector(dim, 8, rng),
                             makeSignedVector(dim, 8, rng), 2, 8));
    server.drain();

    const IntMatrix expected = untiled.multiplyBatchWide(all);
    for (std::size_t b = 0; b < all.rows(); ++b) {
        const auto resp = futures[b].get();
        for (std::size_t c = 0; c < dim; ++c)
            ASSERT_EQ(resp.output.at(0, c), expected.at(b, c))
                << "request " << b << " col " << c;
    }
    esn.get(); // fulfilled; value checked by EsnStepMatchesManualUpdate
}

// ---------------------------------------------------------------------
// ESN request kinds
// ---------------------------------------------------------------------

TEST(Server, EsnStepMatchesManualUpdate)
{
    const std::size_t dim = 24;
    const auto weights = testWeights(dim, 51);
    ServeOptions options;
    options.workers = 1;
    Server server(options);
    const DesignId id =
        server.registerDesign(weights, testCompileOptions());

    Rng rng(52);
    const auto state = makeSignedVector(dim, 8, rng);
    const auto inject = makeSignedVector(dim, 8, rng);
    const int postShift = 2;
    const int stateBits = 8;

    auto future = server.submit(
        id, Request::esnStep(state, inject, postShift, stateBits));
    server.drain();
    const auto resp = future.get();

    const auto design = server.design(id);
    core::TiledGemv gemv(*design);
    const auto product = gemv.multiply(state);
    const std::int64_t lo = minSigned(stateBits);
    const std::int64_t hi = maxSigned(stateBits);
    ASSERT_EQ(resp.output.rows(), 1u);
    for (std::size_t c = 0; c < dim; ++c) {
        const std::int64_t want = std::clamp(
            (product[c] + inject[c]) >> postShift, lo, hi);
        EXPECT_EQ(resp.output.at(0, c), want) << "col " << c;
    }
}

TEST(Server, EsnSequenceMatchesSequentialReference)
{
    const std::size_t dim = 24;
    const auto weights = testWeights(dim, 61);
    ServeOptions options;
    options.workers = 2;
    Server server(options);
    const DesignId id =
        server.registerDesign(weights, testCompileOptions());

    Rng rng(62);
    const std::size_t steps = 5;
    const auto state0 = makeSignedVector(dim, 8, rng);
    const IntMatrix injectSeq = makeSignedBatch(steps, dim, 8, rng);
    const int postShift = 3;
    const int stateBits = 8;

    auto future = server.submit(
        id,
        Request::esnSequence(state0, injectSeq, postShift, stateBits));
    const auto resp = future.get();
    ASSERT_EQ(resp.output.rows(), steps);
    EXPECT_EQ(resp.flushReason, FlushReason::Direct);

    // Reference: the same recurrence on a persistent tape executor.
    const auto design = server.design(id);
    core::TiledGemv gemv(*design);
    auto state = state0;
    const std::int64_t lo = minSigned(stateBits);
    const std::int64_t hi = maxSigned(stateBits);
    for (std::size_t t = 0; t < steps; ++t) {
        const auto product = gemv.multiply(state);
        for (std::size_t c = 0; c < dim; ++c) {
            state[c] = std::clamp(
                (product[c] + injectSeq.at(t, c)) >> postShift, lo, hi);
            EXPECT_EQ(resp.output.at(t, c), state[c])
                << "step " << t << " col " << c;
        }
    }
}

// ---------------------------------------------------------------------
// Scheduler fairness across designs
// ---------------------------------------------------------------------

TEST(Server, RoundRobinKeepsColdDesignAheadOfHotBacklog)
{
    const std::size_t dim = 96;
    ServeOptions options;
    options.maxBatch = 256;
    options.maxDelay = std::chrono::seconds(30);
    options.workers = 1; // serialize execution so ordering is observable
    Server server(options);
    const DesignId hot =
        server.registerDesign(testWeights(dim, 71), testCompileOptions());
    const DesignId cold =
        server.registerDesign(testWeights(dim, 72), testCompileOptions());

    // Six full groups for the hot design (each flushes instantly),
    // then a single full group for the cold one.
    Rng rng(73);
    std::vector<std::future<Response>> hotFutures;
    for (int g = 0; g < 6; ++g)
        hotFutures.push_back(server.submit(
            hot,
            Request::gemvBatch(makeSignedBatch(256, dim, 8, rng))));
    auto coldFuture = server.submit(
        cold, Request::gemvBatch(makeSignedBatch(256, dim, 8, rng)));
    server.drain();

    const auto coldDone = coldFuture.get().doneAt;
    std::chrono::time_point<Clock> lastHot{};
    for (auto &future : hotFutures)
        lastHot = std::max(lastHot, future.get().doneAt);
    // Round-robin must schedule the cold group before the hot
    // backlog finishes; FIFO across one queue would run it last.
    EXPECT_LT(coldDone, lastHot);
}

// ---------------------------------------------------------------------
// DesignStore: LRU + in-flight dedup + shared stats struct
// ---------------------------------------------------------------------

TEST(DesignStore, HitsAndLruEviction)
{
    DesignStore store(2);
    const auto compile = testCompileOptions();
    const auto a = testWeights(12, 81);
    const auto b = testWeights(12, 82);
    const auto c = testWeights(12, 83);

    const auto first = store.get(a, compile);
    EXPECT_EQ(store.get(a, compile).get(), first.get()); // hit
    store.get(b, compile);
    // a was touched more recently than b? No: order is a, a(hit), b —
    // LRU order is now [b, a]; c evicts a.
    store.get(c, compile);
    auto stats = store.stats();
    EXPECT_EQ(stats.cache.hits, 1u);
    EXPECT_EQ(stats.cache.misses, 3u);
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.resident, 2u);

    // The evicted design recompiles on next request.
    store.get(a, compile);
    stats = store.stats();
    EXPECT_EQ(stats.cache.misses, 4u);
}

TEST(DesignStore, LruTouchOnHitProtectsHotEntry)
{
    DesignStore store(2);
    const auto compile = testCompileOptions();
    const auto a = testWeights(12, 84);
    const auto b = testWeights(12, 85);
    const auto c = testWeights(12, 86);

    store.get(a, compile);
    store.get(b, compile);
    store.get(a, compile); // touch: LRU order [a, b]
    store.get(c, compile); // evicts b, not a
    const auto stats = store.stats();
    EXPECT_EQ(stats.evictions, 1u);
    store.get(a, compile); // still resident
    EXPECT_EQ(store.stats().cache.misses, 3u);
    EXPECT_EQ(store.stats().cache.hits, 2u);
}

TEST(DesignStore, ConcurrentRequestsCompileOnce)
{
    DesignStore store(8);
    const auto compile = testCompileOptions();
    const auto weights = testWeights(16, 91);

    std::vector<std::shared_ptr<const core::TiledDesign>> results(8);
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&, t] {
            results[t] = store.get(weights, compile);
        });
    for (auto &thread : threads)
        thread.join();

    const auto stats = store.stats();
    EXPECT_EQ(stats.cache.misses, 1u);
    EXPECT_EQ(stats.cache.hits, 7u);
    for (int t = 1; t < 8; ++t)
        EXPECT_EQ(results[t].get(), results[0].get());
}

// ---------------------------------------------------------------------
// DesignCache: atomic counters under concurrent readers
// ---------------------------------------------------------------------

TEST(DesignCache, StatsSnapshotConsistentUnderConcurrency)
{
    experiments::DesignCache cache;
    const auto compile = testCompileOptions();
    const auto weights = testWeights(12, 95);

    std::atomic<bool> stop{false};
    std::atomic<std::size_t> snapshots{0};
    std::thread reader([&] {
        while (!stop.load()) {
            const auto stats = cache.stats();
            // Counters only grow; hits+misses never exceeds issued gets.
            EXPECT_LE(stats.hits + stats.misses, 64u);
            snapshots.fetch_add(1);
        }
    });
    std::vector<std::thread> getters;
    for (int t = 0; t < 4; ++t)
        getters.emplace_back([&] {
            for (int i = 0; i < 16; ++i)
                cache.get(weights, compile);
        });
    for (auto &thread : getters)
        thread.join();
    stop.store(true);
    reader.join();

    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses, 64u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_GT(snapshots.load(), 0u);
}

// ---------------------------------------------------------------------
// Server registration and the serving key scheme
// ---------------------------------------------------------------------

TEST(Server, ReregisteringIdenticalDesignReturnsSameId)
{
    Server server(ServeOptions{});
    const auto weights = testWeights(12, 96);
    const auto compile = testCompileOptions();
    const DesignId a = server.registerDesign(weights, compile);
    const DesignId b = server.registerDesign(weights, compile);
    EXPECT_EQ(a, b);
    EXPECT_EQ(server.designCount(), 1u);

    // Different options = different design.
    auto other = compile;
    other.signMode = core::SignMode::PnSplit;
    const DesignId c = server.registerDesign(weights, other);
    EXPECT_NE(a, c);
    EXPECT_EQ(server.designCount(), 2u);
}

// ---------------------------------------------------------------------
// JIT serving: admission at registration, bit-exact responses, stats
// ---------------------------------------------------------------------

TEST(Server, JitServingBitExactWithAdmissionStats)
{
    if (!circuit::jit::toolchainAvailable())
        GTEST_SKIP() << "no C toolchain reachable";
    const std::size_t dim = 24;
    const auto weights = testWeights(dim, 77);
    const auto compile = testCompileOptions();

    ServeOptions options;
    options.maxBatch = 64;
    options.maxDelay = std::chrono::milliseconds(100);
    options.workers = 2;
    options.sim.jit = true;
    Server server(options);
    const DesignId id = server.registerDesign(weights, compile);

    // Registration is admission: the design left the store with
    // modules attached and the compile latency accounted.
    {
        const auto stats = server.stats();
        EXPECT_EQ(stats.store.jitAdmitted, 1u);
        EXPECT_EQ(stats.store.jitFailed, 0u);
        EXPECT_GT(stats.store.jitCompileSeconds, 0.0);
    }
    EXPECT_GE(server.design(id)->jitModuleCount(), 1u);

    const std::size_t requests = 70; // > one group, odd padding
    IntMatrix all(requests, dim);
    Rng fill(78);
    for (std::size_t b = 0; b < requests; ++b) {
        const auto v = makeSignedVector(dim, 8, fill);
        for (std::size_t r = 0; r < dim; ++r)
            all.at(b, r) = v[r];
    }
    const IntMatrix expected = server.design(id)->multiplyBatch(all);

    std::vector<std::future<Response>> futures;
    for (std::size_t b = 0; b < requests; ++b) {
        std::vector<std::int64_t> x(dim);
        for (std::size_t r = 0; r < dim; ++r)
            x[r] = all.at(b, r);
        futures.push_back(server.submit(id, Request::gemv(std::move(x))));
    }
    server.drain();

    for (std::size_t b = 0; b < requests; ++b) {
        const auto resp = futures[b].get();
        for (std::size_t c = 0; c < dim; ++c)
            ASSERT_EQ(resp.output.at(0, c), expected.at(b, c))
                << "request " << b << " col " << c;
    }

    // Every executed group must have hit a module: admission covered
    // W = 1 and the full-group W, and this workload resolves within
    // that set.
    const auto stats = server.stats();
    EXPECT_GT(stats.jitGroups, 0u);
    EXPECT_EQ(stats.jitFallbackGroups, 0u);
}

// ---------------------------------------------------------------------
// --seed threading through the sweep engine
// ---------------------------------------------------------------------

TEST(SweepSeed, OverrideVariesPrepareStreamReproducibly)
{
    experiments::Experiment exp;
    exp.name = "seed_probe";
    exp.title = "seed probe";
    exp.columns = {"draw", "ctx_seed"};
    exp.grid = experiments::Grid::single({});
    exp.prepareSeed = 7;
    exp.prepare = [](const experiments::ParamPoint &,
                     experiments::PrepareContext &ctx) {
        return std::make_shared<const std::uint64_t>(ctx.rng.next());
    };
    exp.evaluate = [](const experiments::ParamPoint &, const void *input,
                      experiments::EvalContext &ctx) {
        const auto draw = *static_cast<const std::uint64_t *>(input);
        return std::vector<experiments::Row>{
            {experiments::cell(static_cast<std::int64_t>(draw >> 1)),
             experiments::cell(static_cast<std::int64_t>(ctx.seed))}};
    };

    const auto run = [&](std::uint64_t seed) {
        experiments::SweepOptions options;
        options.threads = 1;
        options.seed = seed;
        experiments::SweepEngine engine(options);
        const auto result = engine.run(exp);
        return std::pair{experiments::asInt(result.rows[0][0].value),
                         experiments::asInt(result.rows[0][1].value)};
    };

    const auto base1 = run(0);
    const auto base2 = run(0);
    EXPECT_EQ(base1.first, base2.first); // default stream is stable
    EXPECT_EQ(base1.second, 0);

    const auto seeded1 = run(123);
    const auto seeded2 = run(123);
    EXPECT_EQ(seeded1.first, seeded2.first); // seeded runs repeat
    EXPECT_EQ(seeded1.second, 123);          // and see the seed
    EXPECT_NE(seeded1.first, base1.first);   // but draw a new stream

    const auto other = run(124);
    EXPECT_NE(other.first, seeded1.first);
}

// ---------------------------------------------------------------------
// Load generator: drain mode is bit-exact and reproducible per seed
// ---------------------------------------------------------------------

TEST(LoadGen, DrainModeBitExactAgainstNaivePath)
{
    LoadGenOptions options;
    options.mode = LoadGenOptions::Mode::Drain;
    options.requests = 96;
    options.designs = 2;
    options.dim = 24;
    options.batchFraction = 0.2;
    options.batchSize = 4;
    options.esnFraction = 0.2;
    options.compareNaive = true;
    options.serve.maxBatch = 64;
    options.serve.workers = 2;

    const auto result = runLoadGen(options);
    EXPECT_EQ(result.completed, 96u);
    EXPECT_TRUE(result.bitExact);
    EXPECT_GT(result.throughput, 0.0);
    EXPECT_GT(result.naiveThroughput, 0.0);
    EXPECT_EQ(result.stats.store.cache.misses, 2u);
}

} // namespace
