/**
 * @file
 * Parameterized sweeps over the simulated comparators: SIGMA stays
 * functionally exact and sanely timed across grid shapes, sparsities,
 * and batch sizes; the GPU model obeys its regime properties across
 * libraries and shapes.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "baselines/gpu_model.h"
#include "baselines/sigma.h"
#include "common/rng.h"
#include "matrix/csr.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;
using baselines::GpuLibrary;
using baselines::GpuModel;
using baselines::SigmaConfig;
using baselines::SigmaSim;

// ---------------------------------------------------------------------
// SIGMA sweeps
// ---------------------------------------------------------------------

struct SigmaSweepParam
{
    std::size_t gridDim;
    std::size_t matrixDim;
    double sparsity;
    std::size_t batch;
};

class SigmaSweep : public ::testing::TestWithParam<SigmaSweepParam>
{};

TEST_P(SigmaSweep, FunctionalAndTimingSanity)
{
    const auto &p = GetParam();
    Rng rng(p.matrixDim * 3 + p.gridDim);
    const auto dense = makeSignedElementSparseMatrix(
        p.matrixDim, p.matrixDim, 8, p.sparsity, rng);
    const auto csr = CsrMatrix<std::int64_t>::fromDense(dense);
    const auto batch = makeSignedBatch(p.batch, p.matrixDim, 8, rng);

    SigmaConfig config;
    config.gridRows = p.gridDim;
    config.gridCols = p.gridDim;
    SigmaSim sim(config);
    const auto result = sim.run(csr, batch);

    // Functional exactness.
    for (std::size_t b = 0; b < p.batch; ++b) {
        std::vector<std::int64_t> a(p.matrixDim);
        for (std::size_t r = 0; r < p.matrixDim; ++r)
            a[r] = batch.at(b, r);
        const auto expected = gemvRef(a, dense);
        for (std::size_t c = 0; c < p.matrixDim; ++c)
            ASSERT_EQ(result.outputs.at(b, c), expected[c]);
    }

    // Timing sanity.
    const auto expected_tiles =
        csr.nnz() == 0
            ? 0u
            : (csr.nnz() + config.peCapacity() - 1) / config.peCapacity();
    EXPECT_EQ(result.tiles, expected_tiles);
    EXPECT_GE(result.cycles, config.fixedOverheadCycles);
    EXPECT_LE(result.peUtilization, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SigmaSweep,
    ::testing::Values(SigmaSweepParam{16, 32, 0.5, 1},
                      SigmaSweepParam{16, 64, 0.9, 2},
                      SigmaSweepParam{32, 128, 0.8, 4},
                      SigmaSweepParam{64, 256, 0.95, 1},
                      SigmaSweepParam{128, 256, 0.5, 3},
                      SigmaSweepParam{8, 16, 0.0, 8}));

TEST(SigmaSweepExtra, MoreTilesMeansMoreCycles)
{
    Rng rng(42);
    SigmaSim sim;
    std::uint64_t prev = 0;
    for (const double sparsity : {0.98, 0.9, 0.8, 0.6}) {
        const auto dense = makeSignedElementSparseMatrix(1024, 1024, 8,
                                                         sparsity, rng);
        const auto csr = CsrMatrix<std::int64_t>::fromDense(dense);
        const auto result =
            sim.runVector(csr, makeSignedVector(1024, 8, rng));
        EXPECT_GT(result.cycles, prev) << "sparsity " << sparsity;
        prev = result.cycles;
    }
}

TEST(SigmaSweepExtra, BatchCyclesMonotone)
{
    Rng rng(43);
    const auto dense =
        makeSignedElementSparseMatrix(512, 512, 8, 0.9, rng);
    const auto csr = CsrMatrix<std::int64_t>::fromDense(dense);
    SigmaSim sim;
    std::uint64_t prev = 0;
    for (const std::size_t batch : {1u, 2u, 4u, 8u, 32u}) {
        const auto result =
            sim.run(csr, makeSignedBatch(batch, 512, 8, rng));
        EXPECT_GT(result.cycles, prev) << "batch " << batch;
        prev = result.cycles;
    }
}

// ---------------------------------------------------------------------
// GPU model sweeps
// ---------------------------------------------------------------------

class GpuLibrarySweep : public ::testing::TestWithParam<GpuLibrary>
{};

TEST_P(GpuLibrarySweep, LatencyMonotoneInWork)
{
    const GpuModel model(GetParam());
    double prev = 0.0;
    for (const std::size_t nnz : {100ul, 1'000ul, 10'000ul, 100'000ul,
                                  1'000'000ul}) {
        const double t = model.latencyNs(1024, 1024, nnz);
        EXPECT_GT(t, prev) << "nnz " << nnz;
        prev = t;
    }
}

TEST_P(GpuLibrarySweep, LatencyDecreasesWithOccupancyAtFixedWork)
{
    // Same nonzero count spread over more rows parallelizes better.
    const GpuModel model(GetParam());
    const double small = model.latencyNs(256, 256, 50'000);
    const double large = model.latencyNs(4096, 4096, 50'000);
    EXPECT_GT(small, large);
}

TEST_P(GpuLibrarySweep, FloorDominatesTinyProblems)
{
    const GpuModel model(GetParam());
    const double t = model.latencyNs(8, 8, 4);
    EXPECT_NEAR(t, model.params().kernelFloorNs,
                model.params().kernelFloorNs * 0.2);
}

INSTANTIATE_TEST_SUITE_P(Libraries, GpuLibrarySweep,
                         ::testing::Values(GpuLibrary::CuSparse,
                                           GpuLibrary::OptimizedKernel),
                         [](const ::testing::TestParamInfo<GpuLibrary> &i) {
                             return i.param == GpuLibrary::CuSparse
                                        ? "cuSPARSE"
                                        : "OptimizedKernel";
                         });

TEST(GpuCustomParams, OverridesRespected)
{
    baselines::GpuModelParams params;
    params.kernelFloorNs = 500.0;
    params.bytesPerNnz = 4.0;
    const GpuModel model(GpuLibrary::OptimizedKernel, params);
    EXPECT_DOUBLE_EQ(model.params().kernelFloorNs, 500.0);
    const double t = model.latencyNs(64, 64, 0);
    EXPECT_GT(t, 500.0);
    EXPECT_LT(t, 600.0);
}

} // namespace
