/**
 * @file
 * Tests of the SystemVerilog exporter: structural content (module
 * interface, one always_ff per registered component), golden checks on
 * tiny designs, and count consistency with the netlist.
 */

#include <gtest/gtest.h>

#include <string>

#include "circuit/stats.h"
#include "common/rng.h"
#include "core/compiler.h"
#include "core/verilog.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;
using core::CompileOptions;
using core::MatrixCompiler;
using core::toVerilog;
using core::VerilogOptions;

std::size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size()))
        ++count;
    return count;
}

TEST(Verilog, ModuleInterface)
{
    Rng rng(1);
    const auto v = makeSignedElementSparseMatrix(6, 4, 4, 0.5, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);
    const auto rtl = toVerilog(design);

    EXPECT_NE(rtl.find("module spatial_mm ("), std::string::npos);
    EXPECT_NE(rtl.find("input  logic clk"), std::string::npos);
    EXPECT_NE(rtl.find("input  logic rst"), std::string::npos);
    EXPECT_NE(rtl.find("input  logic [5:0] in_bits"), std::string::npos);
    EXPECT_NE(rtl.find("output logic [3:0] out_bits"), std::string::npos);
    EXPECT_NE(rtl.find("endmodule"), std::string::npos);
}

TEST(Verilog, CustomModuleName)
{
    Rng rng(2);
    const auto v = makeSignedElementSparseMatrix(3, 3, 4, 0.5, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);
    VerilogOptions options;
    options.moduleName = "reservoir_w";
    const auto rtl = toVerilog(design, options);
    EXPECT_NE(rtl.find("module reservoir_w ("), std::string::npos);
}

TEST(Verilog, OneProcessPerRegisteredComponent)
{
    Rng rng(3);
    const auto v = makeSignedElementSparseMatrix(12, 8, 6, 0.5, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);
    const auto rtl = toVerilog(design);
    const auto counts = circuit::collectCounts(design.netlist());

    EXPECT_EQ(countOccurrences(rtl, "always_ff"),
              counts.dffs + counts.adders + counts.subs);
    // Every output column is driven.
    EXPECT_EQ(countOccurrences(rtl, "assign out_bits["), design.cols());
}

TEST(Verilog, SubtractorInvertsAndPresetsCarry)
{
    IntMatrix v(1, 1);
    v.at(0, 0) = -1; // forces an N side and a subtractor
    CompileOptions opt;
    opt.inputBits = 4;
    const auto design = MatrixCompiler(opt).compile(v);
    const auto rtl = toVerilog(design);
    EXPECT_NE(rtl.find("(~"), std::string::npos);     // inverted operand
    EXPECT_NE(rtl.find("<= 1'b1;"), std::string::npos); // carry preset
}

TEST(Verilog, ZeroColumnTiedLow)
{
    IntMatrix v(2, 2);
    v.at(0, 0) = 3; // column 1 all zero
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);
    const auto rtl = toVerilog(design);
    EXPECT_NE(rtl.find("assign out_bits[1] = 1'b0;"), std::string::npos);
}

TEST(Verilog, HeaderDocumentsTiming)
{
    Rng rng(4);
    const auto v = makeSignedElementSparseMatrix(4, 4, 4, 0.5, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);
    const auto rtl = toVerilog(design);
    EXPECT_NE(rtl.find("drain takes " +
                       std::to_string(design.drainCycles())),
              std::string::npos);
}

TEST(Verilog, GoldenTinyIdentity)
{
    // 1x1 matrix [1]: the output is the input delayed through the
    // chain; the RTL must reference in_bits[0] and drive out_bits[0].
    IntMatrix v(1, 1);
    v.at(0, 0) = 1;
    CompileOptions opt;
    opt.inputBits = 2;
    opt.signMode = core::SignMode::Unsigned;
    const auto design = MatrixCompiler(opt).compile(v);
    const auto rtl = toVerilog(design);
    EXPECT_NE(rtl.find("= in_bits[0];"), std::string::npos);
    EXPECT_NE(rtl.find("assign out_bits[0] = "), std::string::npos);
    EXPECT_EQ(countOccurrences(rtl, "module "), 1u);
}

TEST(Verilog, NaiveModeEmitsAndGates)
{
    Rng rng(5);
    const auto v = makeElementSparseMatrix(4, 4, 4, 0.5, rng);
    CompileOptions opt;
    opt.signMode = core::SignMode::Unsigned;
    opt.constantPropagation = false;
    const auto design = MatrixCompiler(opt).compile(v);
    const auto rtl = toVerilog(design);
    EXPECT_GT(countOccurrences(rtl, " & "), 0u);
    EXPECT_NE(rtl.find("= 1'b1;"), std::string::npos); // tied-high const
}

} // namespace
