/**
 * @file
 * Tests of the memory-tiered design store: serialized-format
 * round-trips, defensive loading of damaged files (truncation, bit
 * flips, wrong magic/version, checksum mismatch), the cold tier's
 * identity verification, hot-tier demotion/promotion through
 * serve::DesignStore, and the end-to-end large-matrix acceptance path
 * (register, spill, rematerialize from disk, serve bit-exactly).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "common/fault.h"
#include "common/rng.h"
#include "core/tiled_design.h"
#include "matrix/bits.h"
#include "matrix/generate.h"
#include "serve/design_store.h"
#include "serve/server.h"
#include "store/cold_tier.h"
#include "store/format.h"

namespace
{

using namespace spatial;
namespace fs = std::filesystem;

core::CompileOptions
testCompileOptions(int bits = 8)
{
    core::CompileOptions options;
    options.inputBits = bits;
    options.inputsSigned = true;
    options.signMode = core::SignMode::Csd;
    return options;
}

IntMatrix
testWeights(std::size_t dim, std::uint64_t seed, double sparsity = 0.6)
{
    Rng rng(seed);
    return makeSignedElementSparseMatrix(dim, dim, 8, sparsity, rng);
}

/** Installs fault rules for a scope; clears the plan on exit. */
struct FaultGuard
{
    explicit FaultGuard(
        std::initializer_list<std::pair<fault::Site, fault::Rule>>
            rules)
    {
        auto &plan = fault::FaultPlan::instance();
        plan.clear();
        for (const auto &[site, rule] : rules)
            plan.configure(site, rule);
    }

    ~FaultGuard() { fault::FaultPlan::instance().clear(); }
};

/** A per-test scratch directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
        : path(fs::path(::testing::TempDir()) /
               ("spatial-store-" + tag + "-" +
                std::to_string(::getpid())))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }
};

std::vector<std::uint8_t>
serialized(const IntMatrix &weights, const core::CompileOptions &options,
           const core::TileOptions &tile = {})
{
    const auto design = core::TiledDesign::compile(weights, options, tile);
    const auto key = experiments::makeDesignKey(weights, options);
    return store::serializeDesign(key, design);
}

/** Plain integer GEMV of the raw weights: the untiled reference. */
std::vector<std::int64_t>
referenceMultiply(const IntMatrix &weights,
                  const std::vector<std::int64_t> &x)
{
    std::vector<std::int64_t> out(weights.cols(), 0);
    for (std::size_t r = 0; r < weights.rows(); ++r) {
        if (x[r] == 0)
            continue;
        for (std::size_t c = 0; c < weights.cols(); ++c)
            out[c] += x[r] * weights.at(r, c);
    }
    return out;
}

// ---------------------------------------------------------------------
// Serialized format: round-trips
// ---------------------------------------------------------------------

TEST(StoreFormat, RoundTripSingleTile)
{
    const auto weights = testWeights(16, 301);
    const auto options = testCompileOptions();
    const auto design = core::TiledDesign::compile(weights, options);
    ASSERT_FALSE(design.tiled());
    const auto key = experiments::makeDesignKey(weights, options);
    const auto bytes = store::serializeDesign(key, design);

    std::shared_ptr<const core::TiledDesign> loaded;
    experiments::DesignKey stored;
    ASSERT_EQ(store::deserializeDesign(bytes.data(), bytes.size(),
                                       &loaded, &stored),
              store::LoadStatus::Ok);
    EXPECT_TRUE(stored == key);
    EXPECT_EQ(loaded->rows(), design.rows());
    EXPECT_EQ(loaded->cols(), design.cols());
    EXPECT_EQ(loaded->tileCount(), design.tileCount());
    EXPECT_EQ(loaded->weightOnes(), design.weightOnes());
    EXPECT_EQ(loaded->drainCycles(), design.drainCycles());
    EXPECT_TRUE(loaded->options() == design.options());

    Rng rng(302);
    for (int i = 0; i < 4; ++i) {
        const auto x = makeSignedVector(weights.rows(), 8, rng);
        EXPECT_EQ(loaded->multiply(x), referenceMultiply(weights, x));
    }
}

TEST(StoreFormat, RoundTripTiledDesign)
{
    const auto weights = testWeights(40, 311, 0.4);
    const auto options = testCompileOptions();
    core::TileOptions tile;
    tile.onesBudget = 300; // forces several column strips
    const auto design =
        core::TiledDesign::compile(weights, options, tile);
    ASSERT_GT(design.tileCount(), 2u);
    const auto key = experiments::makeDesignKey(weights, options);
    const auto bytes = store::serializeDesign(key, design);

    std::shared_ptr<const core::TiledDesign> loaded;
    ASSERT_EQ(store::deserializeDesign(bytes.data(), bytes.size(),
                                       &loaded),
              store::LoadStatus::Ok);
    EXPECT_EQ(loaded->tileCount(), design.tileCount());
    EXPECT_TRUE(loaded->tileOptions() == tile);
    ASSERT_EQ(loaded->plan().tiles.size(), design.plan().tiles.size());
    for (std::size_t i = 0; i < loaded->plan().tiles.size(); ++i) {
        EXPECT_EQ(loaded->plan().tiles[i].colBegin,
                  design.plan().tiles[i].colBegin);
        EXPECT_EQ(loaded->plan().tiles[i].colEnd,
                  design.plan().tiles[i].colEnd);
    }

    Rng rng(312);
    const IntMatrix batch = makeSignedBatch(9, weights.rows(), 8, rng);
    EXPECT_TRUE(loaded->multiplyBatchWide(batch) ==
                design.multiplyBatchWide(batch));
}

// ---------------------------------------------------------------------
// Damaged files fail cleanly (the ASan fuzz surface)
// ---------------------------------------------------------------------

TEST(StoreFormat, EveryTruncationFailsCleanly)
{
    const auto bytes = serialized(testWeights(12, 321), testCompileOptions());
    ASSERT_GT(bytes.size(), store::kHeaderBytes);

    // Every header-sized prefix, then a sweep over payload prefixes.
    for (std::size_t n = 0; n <= store::kHeaderBytes; ++n) {
        std::shared_ptr<const core::TiledDesign> design;
        EXPECT_NE(store::deserializeDesign(bytes.data(), n, &design),
                  store::LoadStatus::Ok)
            << "prefix " << n;
        EXPECT_EQ(design, nullptr);
    }
    for (std::size_t n = store::kHeaderBytes + 1; n < bytes.size();
         n += 7) {
        std::shared_ptr<const core::TiledDesign> design;
        EXPECT_EQ(store::deserializeDesign(bytes.data(), n, &design),
                  store::LoadStatus::Truncated)
            << "prefix " << n;
        EXPECT_EQ(design, nullptr);
    }
}

TEST(StoreFormat, EveryBitFlipFailsCleanly)
{
    const auto pristine =
        serialized(testWeights(12, 331), testCompileOptions());
    for (std::size_t byte = 0; byte < pristine.size(); byte += 13) {
        for (int bit = 0; bit < 8; bit += 3) {
            auto bytes = pristine;
            bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
            std::shared_ptr<const core::TiledDesign> design;
            EXPECT_NE(store::deserializeDesign(bytes.data(),
                                               bytes.size(), &design),
                      store::LoadStatus::Ok)
                << "byte " << byte << " bit " << bit;
            EXPECT_EQ(design, nullptr);
        }
    }
}

TEST(StoreFormat, WrongMagicAndVersionAreDistinguished)
{
    const auto pristine =
        serialized(testWeights(12, 341), testCompileOptions());
    std::shared_ptr<const core::TiledDesign> design;

    auto bytes = pristine;
    bytes[0] ^= 0xff; // magic
    EXPECT_EQ(store::deserializeDesign(bytes.data(), bytes.size(),
                                       &design),
              store::LoadStatus::BadMagic);

    bytes = pristine;
    bytes[4] ^= 0xff; // version (checked before the checksum)
    EXPECT_EQ(store::deserializeDesign(bytes.data(), bytes.size(),
                                       &design),
              store::LoadStatus::BadVersion);

    bytes = pristine;
    bytes[store::kHeaderBytes] ^= 0x01; // first payload byte
    EXPECT_EQ(store::deserializeDesign(bytes.data(), bytes.size(),
                                       &design),
              store::LoadStatus::ChecksumMismatch);
    EXPECT_EQ(design, nullptr);
}

TEST(StoreFormat, LoadFileReportsNotFound)
{
    std::shared_ptr<const core::TiledDesign> design;
    EXPECT_EQ(store::loadDesignFile("/nonexistent/spatial/design.sptd",
                                    &design),
              store::LoadStatus::NotFound);
}

// ---------------------------------------------------------------------
// Cold tier: identity verification and traffic counters
// ---------------------------------------------------------------------

TEST(ColdTier, PutGetRoundTripAndCounters)
{
    TempDir dir("coldtier");
    store::ColdTier tier(dir.path.string());
    const auto weights = testWeights(16, 351);
    const auto options = testCompileOptions();
    const auto design = core::TiledDesign::compile(weights, options);
    const auto key = experiments::makeDesignKey(weights, options);

    EXPECT_FALSE(tier.contains(key));
    std::shared_ptr<const core::TiledDesign> missing;
    EXPECT_EQ(tier.get(key, &missing), store::LoadStatus::NotFound);

    ASSERT_TRUE(tier.put(key, design));
    EXPECT_TRUE(tier.contains(key));
    std::shared_ptr<const core::TiledDesign> loaded;
    ASSERT_EQ(tier.get(key, &loaded), store::LoadStatus::Ok);
    Rng rng(352);
    const auto x = makeSignedVector(16, 8, rng);
    EXPECT_EQ(loaded->multiply(x), referenceMultiply(weights, x));

    const auto stats = tier.stats();
    EXPECT_EQ(stats.writes, 1u);
    EXPECT_EQ(stats.loads, 1u);
    EXPECT_EQ(stats.loadFailures, 0u);
    EXPECT_GT(stats.bytesWritten, store::kHeaderBytes);

    tier.erase(key);
    EXPECT_FALSE(tier.contains(key));
}

TEST(ColdTier, StoredIdentityMismatchIsCorrupt)
{
    TempDir dir("coldtier-id");
    store::ColdTier tier(dir.path.string());
    const auto options = testCompileOptions();
    const auto a = testWeights(16, 361);
    const auto b = testWeights(16, 362);
    const auto keyA = experiments::makeDesignKey(a, options);
    const auto keyB = experiments::makeDesignKey(b, options);

    // Plant design A's bytes at key B's path (a hash collision or a
    // tampered directory): the stored identity check must refuse it.
    const auto designA = core::TiledDesign::compile(a, options);
    ASSERT_TRUE(
        store::saveDesignFile(tier.pathFor(keyB), keyA, designA));
    std::shared_ptr<const core::TiledDesign> loaded;
    EXPECT_EQ(tier.get(keyB, &loaded), store::LoadStatus::Corrupt);
    EXPECT_EQ(loaded, nullptr);
    EXPECT_EQ(tier.stats().loadFailures, 1u);
}

// ---------------------------------------------------------------------
// DesignStore tiering: demote on evict, promote on miss, fall back
// on damage
// ---------------------------------------------------------------------

TEST(TieredStore, DemotesOnEvictionAndPromotesOnMiss)
{
    TempDir dir("tier");
    serve::StoreOptions options;
    options.capacity = 1;
    options.spillDir = dir.path.string();
    serve::DesignStore store(options);
    const auto compile = testCompileOptions();
    const auto a = testWeights(16, 371);
    const auto b = testWeights(16, 372);

    const auto first = store.get(a, compile);
    store.get(b, compile); // evicts + demotes a
    auto stats = store.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.demotions, 1u);
    EXPECT_EQ(stats.promotions, 0u);
    EXPECT_GT(stats.compileSeconds, 0.0);

    // The next request for a loads the spill file instead of
    // recompiling, and the loaded design is a distinct, equivalent
    // object.
    const auto promoted = store.get(a, compile);
    stats = store.stats();
    EXPECT_EQ(stats.promotions, 1u);
    EXPECT_EQ(stats.coldFallbacks, 0u);
    EXPECT_EQ(stats.cache.misses, 3u);
    EXPECT_GT(stats.loadSeconds, 0.0);
    EXPECT_NE(promoted.get(), first.get());
    Rng rng(373);
    const auto x = makeSignedVector(16, 8, rng);
    EXPECT_EQ(promoted->multiply(x), first->multiply(x));

    // Promoting a back evicted b, which demoted in turn: two spills.
    const auto cold = store.coldStats();
    EXPECT_EQ(cold.writes, 2u);
    EXPECT_EQ(cold.loads, 1u);
}

TEST(TieredStore, DamagedSpillFileFallsBackToRecompile)
{
    TempDir dir("tier-damage");
    serve::StoreOptions options;
    options.capacity = 1;
    options.spillDir = dir.path.string();
    serve::DesignStore store(options);
    const auto compile = testCompileOptions();
    const auto a = testWeights(16, 381);
    const auto b = testWeights(16, 382);

    store.get(a, compile);
    store.get(b, compile); // demotes a

    // Flip one payload byte of a's spill file.
    const store::ColdTier tier(dir.path.string());
    const auto path =
        tier.pathFor(experiments::makeDesignKey(a, compile));
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekg(static_cast<std::streamoff>(store::kHeaderBytes + 3));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(static_cast<std::streamoff>(store::kHeaderBytes + 3));
    file.write(&byte, 1);
    file.close();

    // The promotion attempt rejects the file and recompiles; the
    // design still serves correctly.
    const auto design = store.get(a, compile);
    const auto stats = store.stats();
    EXPECT_EQ(stats.promotions, 0u);
    EXPECT_EQ(stats.coldFallbacks, 1u);
    Rng rng(383);
    const auto x = makeSignedVector(16, 8, rng);
    EXPECT_EQ(design->multiply(x), referenceMultiply(a, x));
}

TEST(TieredStore, NoSpillDirEvictsOutright)
{
    serve::DesignStore store(1);
    const auto compile = testCompileOptions();
    store.get(testWeights(12, 391), compile);
    store.get(testWeights(12, 392), compile);
    const auto stats = store.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.demotions, 0u);
    EXPECT_EQ(stats.promotions, 0u);
    const auto cold = store.coldStats();
    EXPECT_EQ(cold.writes, 0u);
    EXPECT_EQ(cold.loads, 0u);
}

// ---------------------------------------------------------------------
// Crash safety and injected cold-tier faults
// ---------------------------------------------------------------------

TEST(ColdTier, SpillsAreFsyncedBeforeRename)
{
    TempDir dir("coldtier-sync");
    store::ColdTier tier(dir.path.string());
    const auto weights = testWeights(16, 411);
    const auto options = testCompileOptions();
    const auto key = experiments::makeDesignKey(weights, options);
    ASSERT_TRUE(
        tier.put(key, core::TiledDesign::compile(weights, options)));
    const auto stats = tier.stats();
    EXPECT_EQ(stats.writes, 1u);
    EXPECT_EQ(stats.syncs, 1u);
    EXPECT_EQ(stats.orphansRemoved, 0u);
}

TEST(ColdTier, OrphanTempFilesSweptAtStartup)
{
    TempDir dir("coldtier-orphan");
    // A crash mid-spill leaves *.tmp files behind; a completed spill
    // renames its temp away, so anything still named .tmp is garbage.
    const fs::path orphan = dir.path / "deadbeef.sptd.tmp";
    const fs::path keeper = dir.path / "cafef00d.sptd";
    std::ofstream(orphan) << "torn write";
    std::ofstream(keeper) << "not a temp file";
    store::ColdTier tier(dir.path.string());
    EXPECT_EQ(tier.stats().orphansRemoved, 1u);
    EXPECT_FALSE(fs::exists(orphan));
    EXPECT_TRUE(fs::exists(keeper));
}

TEST(ColdTier, InjectedWriteFailureIsCounted)
{
    TempDir dir("coldtier-wfail");
    store::ColdTier tier(dir.path.string());
    const auto weights = testWeights(16, 421);
    const auto options = testCompileOptions();
    const auto key = experiments::makeDesignKey(weights, options);
    const FaultGuard faults(
        {{fault::Site::ColdWriteFail, fault::Rule{1.0, 1, 0}}});
    EXPECT_FALSE(
        tier.put(key, core::TiledDesign::compile(weights, options)));
    EXPECT_FALSE(tier.contains(key));
    EXPECT_EQ(tier.stats().writeFailures, 1u);
    EXPECT_EQ(fault::FaultPlan::instance().injected(
                  fault::Site::ColdWriteFail),
              1u);
}

TEST(ColdTier, InjectedShortWriteLoadsAsTruncated)
{
    TempDir dir("coldtier-short");
    store::ColdTier tier(dir.path.string());
    const auto weights = testWeights(16, 431);
    const auto options = testCompileOptions();
    const auto key = experiments::makeDesignKey(weights, options);
    {
        const FaultGuard faults(
            {{fault::Site::ColdWriteShort, fault::Rule{1.0, 1, 0}}});
        // The torn write still "succeeds" — the damage is only
        // discovered at load time, like a real crash mid-flush.
        ASSERT_TRUE(tier.put(
            key, core::TiledDesign::compile(weights, options)));
    }
    EXPECT_TRUE(tier.contains(key));
    std::shared_ptr<const core::TiledDesign> loaded;
    EXPECT_EQ(tier.get(key, &loaded), store::LoadStatus::Truncated);
    EXPECT_EQ(loaded, nullptr);
    EXPECT_EQ(tier.stats().loadFailures, 1u);
}

TEST(ColdTier, InjectedReadFaultsDegradeToLoadFailures)
{
    TempDir dir("coldtier-rfault");
    store::ColdTier tier(dir.path.string());
    const auto weights = testWeights(16, 441);
    const auto options = testCompileOptions();
    const auto key = experiments::makeDesignKey(weights, options);
    ASSERT_TRUE(
        tier.put(key, core::TiledDesign::compile(weights, options)));

    std::shared_ptr<const core::TiledDesign> loaded;
    {
        const FaultGuard faults(
            {{fault::Site::ColdReadFail, fault::Rule{1.0, 1, 0}}});
        EXPECT_EQ(tier.get(key, &loaded),
                  store::LoadStatus::Truncated);
        EXPECT_EQ(loaded, nullptr);
    }
    {
        const FaultGuard faults(
            {{fault::Site::ColdReadCorrupt, fault::Rule{1.0, 1, 0}}});
        EXPECT_EQ(tier.get(key, &loaded), store::LoadStatus::Corrupt);
        EXPECT_EQ(loaded, nullptr);
    }
    EXPECT_EQ(tier.stats().loadFailures, 2u);
    // With the plan cleared the very same file loads fine: the file
    // was never the problem.
    ASSERT_EQ(tier.get(key, &loaded), store::LoadStatus::Ok);
    Rng rng(442);
    const auto x = makeSignedVector(16, 8, rng);
    EXPECT_EQ(loaded->multiply(x), referenceMultiply(weights, x));
}

TEST(TieredStore, InjectedColdCorruptionFallsBackToRecompile)
{
    TempDir dir("tier-chaos");
    serve::StoreOptions options;
    options.capacity = 1;
    options.spillDir = dir.path.string();
    serve::DesignStore store(options);
    const auto compile = testCompileOptions();
    const auto a = testWeights(16, 451);
    const auto b = testWeights(16, 452);

    store.get(a, compile);
    store.get(b, compile); // demotes a to a valid spill file

    // Every promotion attempt sees corrupted artifacts: the store
    // must recompile and still serve bit-exactly.
    const FaultGuard faults(
        {{fault::Site::ColdReadCorrupt, fault::Rule{1.0, 1, 0}}});
    const auto design = store.get(a, compile);
    const auto stats = store.stats();
    EXPECT_EQ(stats.promotions, 0u);
    EXPECT_GE(stats.coldFallbacks, 1u);
    Rng rng(453);
    const auto x = makeSignedVector(16, 8, rng);
    EXPECT_EQ(design->multiply(x), referenceMultiply(a, x));
}

TEST(TieredStore, InjectedCompileFaultsRetryTransparently)
{
    serve::DesignStore store(4);
    const auto compile = testCompileOptions();
    const auto a = testWeights(16, 461);
    // Half the compile attempts fail transiently and every admission
    // sleeps a bit; the bounded retry loop must still land the
    // design, and the injected count shows the site actually fired.
    const FaultGuard faults(
        {{fault::Site::StoreCompileFail, fault::Rule{0.5, 9, 0}},
         {fault::Site::StoreCompileDelay, fault::Rule{1.0, 9, 1}}});
    const auto design = store.get(a, compile);
    ASSERT_NE(design, nullptr);
    Rng rng(462);
    const auto x = makeSignedVector(16, 8, rng);
    EXPECT_EQ(design->multiply(x), referenceMultiply(a, x));
    EXPECT_GE(fault::FaultPlan::instance().injected(
                  fault::Site::StoreCompileDelay),
              1u);
    EXPECT_EQ(store.stats().faultsInjected,
              fault::FaultPlan::instance().injectedTotal());
}

// ---------------------------------------------------------------------
// Acceptance: a large design registers, spills, rematerializes from
// disk, and serves bit-exactly
// ---------------------------------------------------------------------

TEST(TieredServing, LargeDesignSpillsAndServesFromDisk)
{
    // dim 4096 with ~32 nonzeros per column: large enough to need
    // several column tiles under the default budget, sparse enough to
    // compile in seconds.
    const std::size_t dim = 4096;
    Rng gen(401);
    const IntMatrix weights = makeSignedElementSparseMatrix(
        dim, dim, 8, 1.0 - 32.0 / static_cast<double>(dim), gen);
    const auto compile = testCompileOptions();

    TempDir dir("acceptance");
    serve::ServeOptions options;
    options.workers = 2;
    options.maxDelay = std::chrono::milliseconds(50);
    options.storeCapacity = 1;
    options.storeSpillDir = dir.path.string();
    serve::Server server(options);

    const serve::DesignId big = server.registerDesign(weights, compile);
    {
        const auto design = server.design(big);
        EXPECT_TRUE(design->tiled());
        EXPECT_EQ(design->cols(), dim);
    }

    // A second registration evicts the big design from the hot tier;
    // with a spill directory that demotes it to disk.
    server.registerDesign(testWeights(16, 402), compile);
    {
        const auto stats = server.stats();
        ASSERT_GE(stats.store.demotions, 1u);
    }

    // Serving the big design now rematerializes it from the cold
    // tier.  Gemv first...
    Rng rng(403);
    const auto x = makeSignedVector(dim, 8, rng);
    auto gemv = server.submit(big, serve::Request::gemv(x));
    server.drain();
    const auto gemvResp = gemv.get();
    {
        const auto stats = server.stats();
        EXPECT_GE(stats.store.promotions, 1u);
        EXPECT_EQ(stats.store.coldFallbacks, 0u);
    }
    const auto expected = referenceMultiply(weights, x);
    ASSERT_EQ(gemvResp.output.cols(), dim);
    for (std::size_t c = 0; c < dim; ++c)
        ASSERT_EQ(gemvResp.output.at(0, c), expected[c]) << "col " << c;

    // ...then an EsnSequence, checked against the plain-integer
    // recurrence on the raw weights.
    const int postShift = 2;
    const int stateBits = 8;
    const std::size_t steps = 2;
    const auto state0 = makeSignedVector(dim, 8, rng);
    const IntMatrix injectSeq = makeSignedBatch(steps, dim, 8, rng);
    auto esn = server.submit(
        big, serve::Request::esnSequence(state0, injectSeq, postShift,
                                         stateBits));
    const auto esnResp = esn.get();
    ASSERT_EQ(esnResp.output.rows(), steps);

    auto state = state0;
    for (std::size_t t = 0; t < steps; ++t) {
        const auto product = referenceMultiply(weights, state);
        for (std::size_t c = 0; c < dim; ++c) {
            state[c] = serve::esnClipUpdate(
                product[c] + injectSeq.at(t, c), postShift, stateBits);
            ASSERT_EQ(esnResp.output.at(t, c), state[c])
                << "step " << t << " col " << c;
        }
    }
}

} // namespace
