/**
 * @file
 * Cross-module integration scenarios: the full flows a downstream user
 * runs, each exercising several libraries together.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/gpu_model.h"
#include "baselines/sigma.h"
#include "circuit/passes.h"
#include "common/rng.h"
#include "core/compiler.h"
#include "core/tiling.h"
#include "core/verilog.h"
#include "esn/esn.h"
#include "esn/metrics.h"
#include "esn/tasks.h"
#include "fpga/report.h"
#include "matrix/csr.h"
#include "matrix/generate.h"
#include "matrix/io.h"

namespace
{

using namespace spatial;
using core::CompileOptions;
using core::MatrixCompiler;

TEST(Integration, SaveCompileExportValidate)
{
    // matrix -> disk -> reload -> compile -> validate -> RTL, with the
    // reloaded matrix producing an identical design.
    Rng rng(1);
    const auto v = makeSignedElementSparseMatrix(20, 20, 8, 0.8, rng);
    std::stringstream store;
    writeMatrix(v, store);
    const auto reloaded = readMatrix(store);
    ASSERT_EQ(reloaded, v);

    CompileOptions opt;
    opt.signMode = core::SignMode::Csd;
    const auto d1 = MatrixCompiler(opt).compile(v);
    const auto d2 = MatrixCompiler(opt).compile(reloaded);
    EXPECT_EQ(d1.netlist().numNodes(), d2.netlist().numNodes());
    EXPECT_TRUE(circuit::validate(d1.netlist()).ok);
    EXPECT_EQ(core::toVerilog(d1), core::toVerilog(d2));
}

TEST(Integration, ThreeWayComparisonOnOneWorkload)
{
    // The Section VII methodology end to end on one workload: FPGA
    // design point, GPU model, SIGMA simulation — all from the same
    // matrix, with SIGMA's functional output cross-checked against the
    // compiled netlist's.
    Rng rng(2);
    const auto v = makeSignedElementSparseMatrix(96, 96, 8, 0.95, rng);
    const auto csr = CsrMatrix<std::int64_t>::fromDense(v);
    const auto a = makeSignedVector(96, 8, rng);

    CompileOptions opt;
    opt.signMode = core::SignMode::Csd;
    const auto design = MatrixCompiler(opt).compile(v);
    const auto fpga_point = fpga::evaluateDesign(design);
    const auto hw_out = design.multiply(a);

    baselines::SigmaSim sigma;
    const auto sigma_result = sigma.runVector(csr, a);
    for (std::size_t c = 0; c < 96; ++c)
        ASSERT_EQ(sigma_result.outputs.at(0, c), hw_out[c]);

    const baselines::GpuModel gpu(baselines::GpuLibrary::OptimizedKernel);
    const double gpu_ns = gpu.latencyNs(96, 96, csr.nnz());

    // The paper's ordering at this scale: FPGA << SIGMA << GPU.
    EXPECT_LT(fpga_point.latencyNs, sigma_result.latencyNs);
    EXPECT_LT(sigma_result.latencyNs, gpu_ns);
}

TEST(Integration, TiledDesignsRunAndAssemble)
{
    // Plan tiles under a tight budget, compile each tile, execute, and
    // stitch the full output.
    Rng rng(3);
    const auto v = makeSignedElementSparseMatrix(30, 36, 8, 0.5, rng);
    const auto plan = core::planColumnTiles(pnSplit(v), 1200);
    ASSERT_GT(plan.passes(), 1u);

    const auto a = makeSignedVector(30, 8, rng);
    std::vector<std::int64_t> assembled;
    for (const auto &tile : plan.tiles) {
        const auto slice =
            core::sliceColumns(v, tile.colBegin, tile.colEnd);
        const auto design = MatrixCompiler(CompileOptions{}).compile(slice);
        EXPECT_TRUE(circuit::validate(design.netlist()).ok);
        const auto out = design.multiply(a);
        assembled.insert(assembled.end(), out.begin(), out.end());
    }
    EXPECT_EQ(assembled, gemvRef(a, v));
}

TEST(Integration, EsnTrainedOnWidePathMatchesScalarPath)
{
    // The wide simulator is a pure speedup: an integer reservoir's
    // state trajectory via multiplyBatchWide on the recurrence matrix
    // must agree with the scalar SpatialBackend run.
    Rng rng(4);
    const auto data = esn::makeNarma10(200, rng);

    esn::ReservoirConfig config;
    config.dim = 32;
    config.seed = 5;
    const auto weights = esn::makeReservoirWeights(config);
    esn::IntReservoirConfig iconfig;

    esn::IntEchoStateNetwork scalar_esn(weights, iconfig,
                                        esn::BackendKind::Spatial);
    esn::IntEchoStateNetwork ref_esn(weights, iconfig,
                                     esn::BackendKind::Reference);
    const auto e_scalar =
        scalar_esn.train(data.inputs, data.targets, 30, 1e-4);
    const auto e_ref = ref_esn.train(data.inputs, data.targets, 30, 1e-4);
    EXPECT_NEAR(e_scalar.trainNrmse, e_ref.trainNrmse, 1e-12);
}

TEST(Integration, FanoutLimitedDesignStillExportsAndValidates)
{
    Rng rng(6);
    const auto v = makeSignedElementSparseMatrix(48, 48, 8, 0.4, rng);
    CompileOptions opt;
    opt.broadcastFanoutLimit = 16;
    opt.signMode = core::SignMode::Csd;
    const auto design = MatrixCompiler(opt).compile(v);

    EXPECT_LE(design.netlist().maxFanout(), 16u);
    EXPECT_TRUE(circuit::validate(design.netlist()).ok);
    const auto rtl = core::toVerilog(design);
    EXPECT_NE(rtl.find("endmodule"), std::string::npos);

    std::vector<circuit::NodeId> outputs;
    for (const auto &out : design.outputs())
        outputs.push_back(out.node);
    EXPECT_EQ(circuit::countDeadNodes(design.netlist(), outputs), 0u);

    const auto a = makeSignedVector(48, 8, rng);
    EXPECT_EQ(design.multiply(a), gemvRef(a, v));
}

TEST(Integration, MeasuredActivityFeedsPowerModel)
{
    Rng rng(7);
    const auto v = makeSignedElementSparseMatrix(40, 40, 8, 0.8, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);
    const auto probe = makeSignedBatch(32, 40, 8, rng);
    const double activity = core::measureSwitchingActivity(design, probe);

    const auto point = fpga::evaluateDesign(design);
    fpga::PowerCoefficients coeff;
    coeff.activity = activity;
    const double measured_watts =
        fpga::powerWatts(point.resources, point.fmaxMhz, coeff);
    EXPECT_GT(measured_watts, coeff.staticWatts);
    // Random reservoir data toggles more than the 12.5% default.
    EXPECT_GT(measured_watts, point.powerWatts);
}

} // namespace
