/**
 * @file
 * Exhaustive correctness sweeps of the spatial compiler on small
 * shapes: every representable weight value (and pairs of values)
 * against every input value, across sign modes.  These catch corner
 * bit patterns — all-ones chains, isolated MSbs, the CSD widening bit,
 * sign boundaries — that randomized tests can miss.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/compiler.h"
#include "matrix/bits.h"

namespace
{

using namespace spatial;
using core::CompileOptions;
using core::MatrixCompiler;
using core::SignMode;

class ExhaustiveOneByOne
    : public ::testing::TestWithParam<std::tuple<int, SignMode>>
{};

TEST_P(ExhaustiveOneByOne, EveryWeightTimesEveryInput)
{
    const auto [weight_bits, mode] = GetParam();
    const int input_bits = 4;

    const std::int64_t w_lo =
        mode == SignMode::Unsigned ? 0 : minSigned(weight_bits);
    const std::int64_t w_hi = mode == SignMode::Unsigned
                                  ? maxUnsigned(weight_bits)
                                  : maxSigned(weight_bits);

    for (std::int64_t w = w_lo; w <= w_hi; ++w) {
        IntMatrix v(1, 1);
        v.at(0, 0) = w;
        CompileOptions opt;
        opt.inputBits = input_bits;
        opt.signMode = mode;
        const auto design = MatrixCompiler(opt).compile(v);

        for (std::int64_t a = minSigned(input_bits);
             a <= maxSigned(input_bits); ++a) {
            const auto out = design.multiply({a});
            ASSERT_EQ(out[0], a * w)
                << "w=" << w << " a=" << a << " mode="
                << core::signModeName(mode);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndModes, ExhaustiveOneByOne,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(SignMode::Unsigned,
                                         SignMode::PnSplit,
                                         SignMode::Csd)),
    [](const ::testing::TestParamInfo<std::tuple<int, SignMode>> &info) {
        return "w" + std::to_string(std::get<0>(info.param)) + "_" +
               core::signModeName(std::get<1>(info.param));
    });

class ExhaustiveTwoByOne : public ::testing::TestWithParam<SignMode>
{};

TEST_P(ExhaustiveTwoByOne, EveryWeightPairSharedColumn)
{
    // Two rows, one column: exercises tree reduction plus chain
    // interaction between two different weights.
    const auto mode = GetParam();
    const int weight_bits = 3;
    const int input_bits = 3;

    const std::int64_t w_lo =
        mode == SignMode::Unsigned ? 0 : minSigned(weight_bits);
    const std::int64_t w_hi = mode == SignMode::Unsigned
                                  ? maxUnsigned(weight_bits)
                                  : maxSigned(weight_bits);

    Rng rng(99);
    for (std::int64_t w0 = w_lo; w0 <= w_hi; ++w0) {
        for (std::int64_t w1 = w_lo; w1 <= w_hi; ++w1) {
            IntMatrix v(2, 1);
            v.at(0, 0) = w0;
            v.at(1, 0) = w1;
            CompileOptions opt;
            opt.inputBits = input_bits;
            opt.signMode = mode;
            const auto design = MatrixCompiler(opt).compile(v);

            // All input pairs for 3-bit signed inputs: 8x8 = 64.
            for (std::int64_t a0 = minSigned(input_bits);
                 a0 <= maxSigned(input_bits); ++a0) {
                for (std::int64_t a1 = minSigned(input_bits);
                     a1 <= maxSigned(input_bits); ++a1) {
                    const auto out = design.multiply({a0, a1});
                    ASSERT_EQ(out[0], a0 * w0 + a1 * w1)
                        << "w=(" << w0 << "," << w1 << ") a=(" << a0
                        << "," << a1 << ")";
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, ExhaustiveTwoByOne,
                         ::testing::Values(SignMode::Unsigned,
                                           SignMode::PnSplit,
                                           SignMode::Csd),
                         [](const ::testing::TestParamInfo<SignMode> &i) {
                             return core::signModeName(i.param);
                         });

TEST(ExhaustiveEdges, ExtremeWeightBitPatterns)
{
    // Patterns chosen to stress chains and the CSD widening digit.
    const std::int64_t patterns[] = {
        0,    1,    -1,   2,     -2,    3,   -3,  85,  -85, // 1010101
        127,  -128, 126,  -127,  64,    -64, 96,  -96,      // 1100000
        0x55, 0x2a, 0x7f, -0x40, -0x55,
    };
    for (const auto mode : {SignMode::PnSplit, SignMode::Csd}) {
        for (const auto w : patterns) {
            IntMatrix v(1, 2);
            v.at(0, 0) = w;
            v.at(0, 1) = -w == -128 ? 127 : -w; // companion column
            CompileOptions opt;
            opt.inputBits = 8;
            opt.signMode = mode;
            const auto design = MatrixCompiler(opt).compile(v);
            for (const std::int64_t a : {-128ll, -127ll, -1ll, 0ll, 1ll,
                                         85ll, 127ll}) {
                const auto out = design.multiply({a});
                ASSERT_EQ(out[0], a * v.at(0, 0)) << "w=" << w << " a=" << a;
                ASSERT_EQ(out[1], a * v.at(0, 1)) << "w=" << w << " a=" << a;
            }
        }
    }
}

TEST(ExhaustiveEdges, UnsignedInputsZeroExtend)
{
    // Unsigned inputs must zero-extend, not sign-extend.
    IntMatrix v(1, 1);
    v.at(0, 0) = 7;
    CompileOptions opt;
    opt.inputBits = 4;
    opt.inputsSigned = false;
    opt.signMode = SignMode::Unsigned;
    const auto design = MatrixCompiler(opt).compile(v);
    for (std::int64_t a = 0; a <= 15; ++a) {
        const auto out = design.multiply({a});
        ASSERT_EQ(out[0], 7 * a) << "a=" << a;
    }
}

TEST(ExhaustiveEdges, WideInputNarrowWeight)
{
    IntMatrix v(3, 1);
    v.at(0, 0) = 1;
    v.at(1, 0) = -1;
    v.at(2, 0) = 1;
    CompileOptions opt;
    opt.inputBits = 16;
    const auto design = MatrixCompiler(opt).compile(v);
    const std::vector<std::int64_t> a{32767, -32768, 12345};
    const auto out = design.multiply(a);
    EXPECT_EQ(out[0], 32767 + 32768 + 12345);
}

TEST(ExhaustiveEdges, NarrowInputWideWeight)
{
    IntMatrix v(1, 1);
    v.at(0, 0) = (std::int64_t{1} << 15) - 3; // 16-bit weight
    CompileOptions opt;
    opt.inputBits = 2;
    const auto design = MatrixCompiler(opt).compile(v);
    for (const std::int64_t a : {-2ll, -1ll, 0ll, 1ll}) {
        const auto out = design.multiply({a});
        ASSERT_EQ(out[0], a * v.at(0, 0));
    }
}

} // namespace
