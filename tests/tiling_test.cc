/**
 * @file
 * Tests of the column tiling planner: budget respect, full coverage,
 * functional equivalence of executing the tiles, and the FPGA-vs-CGRA
 * reconfiguration economics of a tiled plan.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/compiler.h"
#include "core/tiled_design.h"
#include "core/tiling.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;
using core::CompileOptions;
using core::MatrixCompiler;
using core::planColumnTiles;
using core::sliceColumns;
using core::TilePlan;

TEST(Tiling, SingleTileWhenItFits)
{
    Rng rng(1);
    const auto v = makeSignedElementSparseMatrix(16, 16, 8, 0.5, rng);
    const auto plan = planColumnTiles(pnSplit(v), 1'000'000);
    EXPECT_EQ(plan.passes(), 1u);
    EXPECT_FALSE(plan.needed());
    EXPECT_EQ(plan.tiles[0].colBegin, 0u);
    EXPECT_EQ(plan.tiles[0].colEnd, 16u);
}

TEST(Tiling, CoversAllColumnsExactlyOnce)
{
    Rng rng(2);
    const auto v = makeSignedElementSparseMatrix(32, 40, 8, 0.3, rng);
    const auto plan = planColumnTiles(pnSplit(v), 800);
    ASSERT_GT(plan.passes(), 1u);
    std::size_t cursor = 0;
    for (const auto &tile : plan.tiles) {
        EXPECT_EQ(tile.colBegin, cursor);
        EXPECT_GT(tile.colEnd, tile.colBegin);
        cursor = tile.colEnd;
    }
    EXPECT_EQ(cursor, 40u);
}

TEST(Tiling, RespectsBudgetForMultiColumnTiles)
{
    Rng rng(3);
    const auto v = makeSignedElementSparseMatrix(32, 40, 8, 0.3, rng);
    const std::size_t budget = 900;
    const auto plan = planColumnTiles(pnSplit(v), budget);
    for (const auto &tile : plan.tiles) {
        if (tile.colEnd - tile.colBegin > 1)
            EXPECT_LE(tile.estimatedLuts, budget);
    }
}

TEST(Tiling, OversizedSingleColumnGetsOwnTile)
{
    IntMatrix v(8, 2);
    for (std::size_t r = 0; r < 8; ++r) {
        v.at(r, 0) = 127; // expensive column
        v.at(r, 1) = 1;
    }
    const auto plan = planColumnTiles(pnSplit(v), 10);
    ASSERT_EQ(plan.passes(), 2u);
    EXPECT_GT(plan.tiles[0].estimatedLuts, 10u);
    EXPECT_EQ(plan.tiles[0].colEnd - plan.tiles[0].colBegin, 1u);
}

TEST(Tiling, ExecutingTilesReproducesFullProduct)
{
    Rng rng(4);
    const auto v = makeSignedElementSparseMatrix(24, 30, 8, 0.4, rng);
    const auto a = makeSignedVector(24, 8, rng);
    const auto expected = gemvRef(a, v);

    const auto plan = planColumnTiles(pnSplit(v), 600);
    ASSERT_GT(plan.passes(), 1u);

    CompileOptions opt;
    std::vector<std::int64_t> assembled;
    for (const auto &tile : plan.tiles) {
        const auto slice = sliceColumns(v, tile.colBegin, tile.colEnd);
        const auto design = MatrixCompiler(opt).compile(slice);
        const auto out = design.multiply(a);
        assembled.insert(assembled.end(), out.begin(), out.end());
    }
    EXPECT_EQ(assembled, expected);
}

TEST(Tiling, SliceColumnsExtractsExactRange)
{
    Rng rng(5);
    const auto v = makeSignedElementSparseMatrix(6, 10, 6, 0.2, rng);
    const auto slice = sliceColumns(v, 3, 7);
    EXPECT_EQ(slice.rows(), 6u);
    EXPECT_EQ(slice.cols(), 4u);
    for (std::size_t r = 0; r < 6; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_EQ(slice.at(r, c), v.at(r, c + 3));
}

TEST(Tiling, SingleColumnMatrixIsOneTile)
{
    Rng rng(6);
    const auto v = makeSignedElementSparseMatrix(12, 1, 8, 0.0, rng);
    const auto plan = planColumnTiles(pnSplit(v), 1);
    ASSERT_EQ(plan.passes(), 1u);
    EXPECT_EQ(plan.tiles[0].colBegin, 0u);
    EXPECT_EQ(plan.tiles[0].colEnd, 1u);
}

TEST(Tiling, MaxTileColsCapsStripWidth)
{
    Rng rng(7);
    const auto v = makeSignedElementSparseMatrix(16, 20, 8, 0.5, rng);
    core::TileOptions tile;
    tile.onesBudget = 1'000'000; // budget alone would make one tile
    tile.maxTileCols = 4;
    const auto design =
        core::TiledDesign::compile(v, CompileOptions{}, tile);
    EXPECT_EQ(design.tileCount(), 5u);
    for (std::size_t i = 0; i < design.tileCount(); ++i)
        EXPECT_LE(design.plan().tiles[i].colEnd -
                      design.plan().tiles[i].colBegin,
                  4u);
}

TEST(Tiling, TiledDesignMatchesUntiledBitExactly)
{
    Rng rng(8);
    const auto v = makeSignedElementSparseMatrix(28, 36, 8, 0.4, rng);
    CompileOptions opt;
    opt.inputBits = 8;
    opt.inputsSigned = true;

    const auto untiled = core::TiledDesign::compile(v, opt);
    ASSERT_FALSE(untiled.tiled());
    core::TileOptions tile;
    tile.onesBudget = 500;
    const auto tiled = core::TiledDesign::compile(v, opt, tile);
    ASSERT_TRUE(tiled.tiled());
    ASSERT_GT(tiled.tileCount(), 2u);
    EXPECT_EQ(tiled.weightOnes(), untiled.weightOnes());

    const auto x = makeSignedVector(28, 8, rng);
    EXPECT_EQ(tiled.multiply(x), untiled.multiply(x));
    EXPECT_EQ(tiled.multiply(x), gemvRef(x, v));
    const auto batch = makeSignedBatch(10, 28, 8, rng);
    EXPECT_TRUE(tiled.multiplyBatch(batch) ==
                untiled.multiplyBatch(batch));
    EXPECT_TRUE(tiled.multiplyBatchWide(batch) ==
                untiled.multiplyBatchWide(batch));
}

TEST(Tiling, TiledGemvMatchesDesignMultiply)
{
    Rng rng(9);
    const auto v = makeSignedElementSparseMatrix(24, 32, 8, 0.4, rng);
    CompileOptions opt;
    opt.inputBits = 8;
    opt.inputsSigned = true;
    core::TileOptions tile;
    tile.onesBudget = 400;
    const auto design = core::TiledDesign::compile(v, opt, tile);
    ASSERT_TRUE(design.tiled());

    core::TiledGemv gemv(design);
    for (int i = 0; i < 5; ++i) {
        const auto x = makeSignedVector(24, 8, rng);
        EXPECT_EQ(gemv.multiply(x), design.multiply(x));
        std::vector<std::int64_t> out;
        gemv.multiplyInto(x, out);
        EXPECT_EQ(out, design.multiply(x));
    }
}

TEST(Tiling, LatencyAccountsReconfigBetweenPasses)
{
    TilePlan plan;
    plan.tiles.resize(4);
    // 4 passes at 100 ns with 200 ms reconfig between (FPGA) vs ~1 ns
    // pipeline reconfiguration (CGRA).
    const double fpga = core::tiledLatencyNs(plan, 100.0, 2e8);
    const double cgra = core::tiledLatencyNs(plan, 100.0, 1.3);
    EXPECT_DOUBLE_EQ(fpga, 4 * 100.0 + 3 * 2e8);
    EXPECT_DOUBLE_EQ(cgra, 4 * 100.0 + 3 * 1.3);
    EXPECT_GT(fpga / cgra, 1e5);
}

} // namespace
