/**
 * @file
 * Tests of the memory-capacity probe: theoretical bounds (MC <= dim),
 * sensitivity to spectral radius, near-delay recall, and agreement
 * between the integer backends.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "esn/capacity.h"
#include "esn/reservoir.h"

namespace
{

using namespace spatial;
using namespace spatial::esn;

ReservoirWeights
weightsFor(std::size_t dim, double radius, std::uint64_t seed)
{
    ReservoirConfig config;
    config.dim = dim;
    config.sparsity = 0.9;
    config.spectralRadius = radius;
    config.inputScale = 0.25;
    config.seed = seed;
    return makeReservoirWeights(config);
}

ReservoirConfig
configFor(std::size_t dim, double radius, std::uint64_t seed)
{
    ReservoirConfig config;
    config.dim = dim;
    config.sparsity = 0.9;
    config.spectralRadius = radius;
    config.inputScale = 0.25;
    config.seed = seed;
    return config;
}

TEST(Capacity, BoundedByDelayCountAndDimension)
{
    const auto config = configFor(24, 0.9, 1);
    FloatReservoir reservoir(weightsFor(24, 0.9, 1), config);
    Rng rng(2);
    const auto result =
        measureMemoryCapacity(reservoir, 12, 800, 40, 1e-8, rng);
    ASSERT_EQ(result.perDelay.size(), 12u);
    for (const auto r2 : result.perDelay) {
        EXPECT_GE(r2, 0.0);
        EXPECT_LE(r2, 1.0 + 1e-9);
    }
    EXPECT_LE(result.total, 12.0 + 1e-9);
    EXPECT_GT(result.total, 1.0); // remembers at least recent inputs
}

TEST(Capacity, DelayOneIsNearlyPerfect)
{
    const auto config = configFor(32, 0.9, 3);
    FloatReservoir reservoir(weightsFor(32, 0.9, 3), config);
    Rng rng(4);
    const auto result =
        measureMemoryCapacity(reservoir, 8, 1000, 30, 1e-8, rng);
    EXPECT_GT(result.perDelay[0], 0.95);
}

TEST(Capacity, FadesWithDelay)
{
    const auto config = configFor(32, 0.8, 5);
    FloatReservoir reservoir(weightsFor(32, 0.8, 5), config);
    Rng rng(6);
    const auto result =
        measureMemoryCapacity(reservoir, 25, 1500, 40, 1e-8, rng);
    // Early delays are recalled far better than distant ones.
    const double early =
        result.perDelay[0] + result.perDelay[1] + result.perDelay[2];
    const double late = result.perDelay[22] + result.perDelay[23] +
                        result.perDelay[24];
    EXPECT_GT(early, 5.0 * std::max(late, 1e-3));
}

TEST(Capacity, LargerReservoirRemembersMore)
{
    Rng rng_a(7), rng_b(7);
    const auto config_small = configFor(16, 0.9, 8);
    FloatReservoir small(weightsFor(16, 0.9, 8), config_small);
    const auto config_big = configFor(64, 0.9, 8);
    FloatReservoir big(weightsFor(64, 0.9, 8), config_big);

    const auto mc_small =
        measureMemoryCapacity(small, 30, 1200, 50, 1e-8, rng_a);
    const auto mc_big =
        measureMemoryCapacity(big, 30, 1200, 50, 1e-8, rng_b);
    EXPECT_GT(mc_big.total, mc_small.total);
}

TEST(Capacity, IntegerBackendsAgree)
{
    const auto weights = weightsFor(20, 0.9, 9);
    IntReservoirConfig iconfig;
    auto ref = makeIntReservoir(weights, iconfig, BackendKind::Reference);
    auto csr = makeIntReservoir(weights, iconfig, BackendKind::Csr);

    Rng rng_a(10), rng_b(10);
    const auto mc_ref =
        measureMemoryCapacity(ref, 10, 600, 30, 1e-6, rng_a);
    const auto mc_csr =
        measureMemoryCapacity(csr, 10, 600, 30, 1e-6, rng_b);
    EXPECT_NEAR(mc_ref.total, mc_csr.total, 1e-9);
}

TEST(Capacity, HardwareReservoirRetainsMemory)
{
    const auto weights = weightsFor(24, 0.9, 11);
    IntReservoirConfig iconfig;
    auto hw = makeIntReservoir(weights, iconfig, BackendKind::Spatial);
    Rng rng(12);
    const auto result = measureMemoryCapacity(hw, 10, 500, 25, 1e-5, rng);
    EXPECT_GT(result.total, 1.0);
    EXPECT_GT(result.perDelay[0], 0.6);
}

} // namespace
