// Loopback integration tests of the TCP serving front end: remote
// results bit-identical to an in-process Server on the same designs,
// BUSY shedding under a flooded admission queue (every future still
// resolves — no stall, no deadlock), slow readers forcing buffered
// partial writes, abrupt mid-request disconnects leaving the server
// serving other clients, graceful drain completing in-flight work, and
// chaos framing (garbage bytes answered with BadFrame, not a crash).
//
// Every server binds port 0 (ephemeral, SO_REUSEADDR) so any number of
// these tests can run concurrently under ctest -j.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <limits>
#include <thread>

#include "common/fault.h"
#include "common/rng.h"
#include "matrix/generate.h"
#include "serve/net_client.h"
#include "serve/net_server.h"

namespace
{

using namespace spatial;
using namespace spatial::serve;

core::CompileOptions
testCompileOptions(int bits = 8)
{
    core::CompileOptions options;
    options.inputBits = bits;
    options.inputsSigned = true;
    options.signMode = core::SignMode::Csd;
    return options;
}

IntMatrix
testWeights(std::size_t dim, std::uint64_t seed)
{
    Rng rng(seed);
    return makeSignedElementSparseMatrix(dim, dim, 8, 0.85, rng);
}

NetServerOptions
quickServer(std::size_t shards = 1)
{
    NetServerOptions net;
    net.port = 0; // ephemeral: parallel-safe under ctest -j
    net.shards = shards;
    net.serve.maxBatch = 64;
    net.serve.maxDelay = std::chrono::microseconds(500);
    net.serve.workers = 2;
    return net;
}

/** Installs fault rules for a scope; clears the plan on exit. */
struct FaultGuard
{
    explicit FaultGuard(
        std::initializer_list<std::pair<fault::Site, fault::Rule>>
            rules)
    {
        auto &plan = fault::FaultPlan::instance();
        plan.clear();
        for (const auto &[site, rule] : rules)
            plan.configure(site, rule);
    }

    ~FaultGuard() { fault::FaultPlan::instance().clear(); }
};

/** A raw blocking TCP connection for byte-level chaos tests. */
class RawConn
{
  public:
    explicit RawConn(std::uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
    }

    ~RawConn()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    void
    sendAll(const std::uint8_t *data, std::size_t size)
    {
        std::size_t sent = 0;
        while (sent < size) {
            const ssize_t n = ::send(fd_, data + sent, size - sent,
                                     MSG_NOSIGNAL);
            if (n < 0 && errno == EINTR)
                continue;
            ASSERT_GT(n, 0);
            sent += static_cast<std::size_t>(n);
        }
    }

    void
    sendAll(const std::vector<std::uint8_t> &bytes)
    {
        sendAll(bytes.data(), bytes.size());
    }

    /** Read until `want` bytes arrive or the peer closes. */
    std::vector<std::uint8_t>
    recvUpTo(std::size_t want)
    {
        std::vector<std::uint8_t> got;
        std::uint8_t chunk[64 * 1024];
        while (got.size() < want) {
            const ssize_t n = ::read(
                fd_, chunk,
                std::min(sizeof(chunk), want - got.size()));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                break;
            got.insert(got.end(), chunk, chunk + n);
        }
        return got;
    }

    /** Read exactly one response frame off the stream. */
    bool
    recvResponse(wire::ResponseFrame *out)
    {
        std::vector<std::uint8_t> buffer;
        std::uint8_t chunk[64 * 1024];
        for (;;) {
            std::size_t off = 0, size = 0, total = 0;
            const wire::FrameResult r = wire::peekFrame(
                buffer.data(), buffer.size(), &off, &size, &total);
            if (r == wire::FrameResult::Ok)
                return wire::decodeResponse(buffer.data() + off, size,
                                            out) == wire::Status::Ok;
            if (r == wire::FrameResult::Malformed)
                return false;
            const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                return false;
            buffer.insert(buffer.end(), chunk, chunk + n);
        }
    }

    /** Half-close the send side (the NetClient::close() handshake). */
    void
    shutdownWrite()
    {
        ::shutdown(fd_, SHUT_WR);
    }

    /** Abrupt close (no half-close handshake). */
    void
    drop()
    {
        ::close(fd_);
        fd_ = -1;
    }

    int fd() const { return fd_; }

  private:
    int fd_ = -1;
};

// ---------------------------------------------------------------------
// Lifecycle and control plane
// ---------------------------------------------------------------------

TEST(NetServe, BindsEphemeralPortAndAnswersPing)
{
    NetServer server(quickServer());
    EXPECT_NE(server.port(), 0);

    NetClient client("127.0.0.1", server.port());
    ASSERT_TRUE(client.connected());
    EXPECT_EQ(client.ping(), wire::Status::Ok);

    IntMatrix stats;
    ASSERT_EQ(client.fetchStats(&stats), wire::Status::Ok);
    EXPECT_EQ(stats.rows(), 1u);
    EXPECT_EQ(stats.cols(), wire::kShardStatsCols);
}

TEST(NetServe, RegisterAssignsShardsAndDedupes)
{
    NetServer server(quickServer(3));
    NetClient client("127.0.0.1", server.port());

    std::uint32_t first = 0, shard0 = 0;
    ASSERT_EQ(client.registerDesign(testWeights(24, 1),
                                    testCompileOptions(), &first,
                                    &shard0),
              wire::Status::Ok);
    std::uint32_t second = 0, shard1 = 0;
    ASSERT_EQ(client.registerDesign(testWeights(24, 2),
                                    testCompileOptions(), &second,
                                    &shard1),
              wire::Status::Ok);
    EXPECT_NE(first, second);
    EXPECT_EQ(shard0, first % 3);
    EXPECT_EQ(shard1, second % 3);

    // Identical weights + options: same id, no recompile.
    std::uint32_t again = 0;
    ASSERT_EQ(client.registerDesign(testWeights(24, 1),
                                    testCompileOptions(), &again),
              wire::Status::Ok);
    EXPECT_EQ(again, first);

    const NetServerStats stats = server.stats();
    EXPECT_EQ(stats.registered, 2u);
}

TEST(NetServe, UnknownDesignAndBadShapesAreStatusesNotCrashes)
{
    NetServer server(quickServer());
    NetClient client("127.0.0.1", server.port());

    Rng rng(3);
    auto r = client.submit(
        99, Request::gemv(makeSignedVector(8, 8, rng)));
    EXPECT_EQ(r.get().status, wire::Status::UnknownDesign);

    std::uint32_t id = 0;
    ASSERT_EQ(client.registerDesign(testWeights(16, 4),
                                    testCompileOptions(), &id),
              wire::Status::Ok);
    // Wrong vector length: BadRequest over the wire, where the
    // in-process API would SPATIAL_FATAL.
    auto bad = client.submit(
        id, Request::gemv(makeSignedVector(17, 8, rng)));
    EXPECT_EQ(bad.get().status, wire::Status::BadRequest);
    // The connection survives an invalid request.
    auto good = client.submit(
        id, Request::gemv(makeSignedVector(16, 8, rng)));
    EXPECT_EQ(good.get().status, wire::Status::Ok);
}

TEST(NetServe, HostileRegistrationsRejectedServerSurvives)
{
    NetServer server(quickServer());
    NetClient client("127.0.0.1", server.port());
    Rng rng(24);

    // Registrar-level rejections: frames that decode cleanly but whose
    // compile would SPATIAL_FATAL locally.  Each must come back
    // BadRequest with the process intact.
    {
        // Output width past the 62-bit capture bound.
        core::CompileOptions opt = testCompileOptions();
        opt.extraOutputBits = 50;
        std::uint32_t id = 0;
        EXPECT_EQ(client.registerDesign(testWeights(16, 25), opt, &id),
                  wire::Status::BadRequest);
    }
    {
        // INT64_MIN weight: no int64 negation exists for the splits.
        IntMatrix evil(4, 4);
        evil.at(1, 2) = std::numeric_limits<std::int64_t>::min();
        std::uint32_t id = 0;
        EXPECT_EQ(client.registerDesign(evil, testCompileOptions(),
                                        &id),
                  wire::Status::BadRequest);
    }
    {
        // Decode-level rejection: inputBits the engine cannot encode.
        core::CompileOptions opt = testCompileOptions();
        opt.inputBits = 40;
        std::uint32_t id = 0;
        EXPECT_EQ(client.registerDesign(testWeights(8, 26), opt, &id),
                  wire::Status::BadRequest);
    }

    // The failed registrations' table slots never become routable.
    auto orphan = client.submit(
        0, Request::gemv(makeSignedVector(16, 8, rng)));
    EXPECT_EQ(orphan.get().status, wire::Status::UnknownDesign);

    // And the server still compiles and serves honest designs.
    std::uint32_t id = 0;
    ASSERT_EQ(client.registerDesign(testWeights(16, 27),
                                    testCompileOptions(), &id),
              wire::Status::Ok);
    auto good = client.submit(
        id, Request::gemv(makeSignedVector(16, 8, rng)));
    EXPECT_EQ(good.get().status, wire::Status::Ok);
}

TEST(NetServe, RegisterDimBudgetAnswersBadRequest)
{
    NetServerOptions net = quickServer();
    net.maxRegisterDim = 24;
    NetServer server(net);
    NetClient client("127.0.0.1", server.port());

    // Exactly at the bound: accepted and served.
    std::uint32_t id = 0;
    ASSERT_EQ(client.registerDesign(testWeights(24, 30),
                                    testCompileOptions(), &id),
              wire::Status::Ok);
    Rng rng(31);
    auto ok = client.submit(
        id, Request::gemv(makeSignedVector(24, 8, rng)));
    EXPECT_EQ(ok.get().status, wire::Status::Ok);

    // One past the bound: a clean BadRequest before the registrar
    // ever sees it, with the connection intact afterwards.
    EXPECT_EQ(client.registerDesign(testWeights(25, 32),
                                    testCompileOptions(), &id),
              wire::Status::BadRequest);
    EXPECT_EQ(client.ping(), wire::Status::Ok);
}

// ---------------------------------------------------------------------
// Bit-exactness against the in-process Server
// ---------------------------------------------------------------------

TEST(NetServe, RemoteMatchesInProcessBitForBit)
{
    const std::size_t dim = 48;
    const IntMatrix weights = testWeights(dim, 7);
    const core::CompileOptions compile = testCompileOptions();

    NetServerOptions net = quickServer(2);
    NetServer remote(net);
    NetClient client("127.0.0.1", remote.port());
    std::uint32_t remoteId = 0;
    ASSERT_EQ(client.registerDesign(weights, compile, &remoteId),
              wire::Status::Ok);

    Server local(net.serve);
    const DesignId localId = local.registerDesign(weights, compile);

    Rng rng(8);
    std::vector<Request> requests;
    requests.push_back(
        Request::gemv(makeSignedVector(dim, 8, rng)));
    requests.push_back(
        Request::gemvBatch(makeSignedBatch(65, dim, 8, rng)));
    requests.push_back(Request::esnStep(
        makeSignedVector(dim, 8, rng), makeSignedVector(dim, 8, rng),
        2, 8));
    requests.push_back(Request::esnSequence(
        makeSignedVector(dim, 8, rng), makeSignedBatch(9, dim, 8, rng),
        2, 8));

    for (const Request &request : requests) {
        RemoteResult over_wire =
            client.submit(remoteId, Request(request)).get();
        ASSERT_EQ(over_wire.status, wire::Status::Ok);
        Response in_process =
            local.submit(localId, Request(request)).get();
        EXPECT_TRUE(over_wire.output == in_process.output);
    }
}

// ---------------------------------------------------------------------
// Backpressure
// ---------------------------------------------------------------------

TEST(NetServe, FloodedQueueShedsBusyWithoutStalling)
{
    NetServerOptions net = quickServer();
    net.maxQueue = 1;
    // Deadline-only flushing: the one admitted request stays in flight
    // for the full delay, so the rest of the burst must shed.
    net.serve.maxBatch = 1024;
    net.serve.maxDelay = std::chrono::milliseconds(50);
    NetServer server(net);
    NetClient client("127.0.0.1", server.port());

    std::uint32_t id = 0;
    ASSERT_EQ(client.registerDesign(testWeights(32, 9),
                                    testCompileOptions(), &id),
              wire::Status::Ok);

    Rng rng(10);
    std::vector<std::future<RemoteResult>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(client.submit(
            id, Request::gemv(makeSignedVector(32, 8, rng))));

    std::size_t ok = 0, busy = 0;
    for (auto &future : futures) {
        const wire::Status status = future.get().status;
        if (status == wire::Status::Ok)
            ++ok;
        else if (status == wire::Status::Busy)
            ++busy;
        else
            FAIL() << "unexpected status "
                   << wire::statusName(status);
    }
    // Every future resolved (no deadlock); admission let at least one
    // through and shed at least one.
    EXPECT_EQ(ok + busy, 64u);
    EXPECT_GE(ok, 1u);
    EXPECT_GE(busy, 1u);

    const NetServerStats stats = server.stats();
    EXPECT_EQ(stats.shards[0].shed, busy);
    EXPECT_EQ(stats.shards[0].inFlight, 0u);

    // The shed connection is still healthy for new work.
    auto after = client.submit(
        id, Request::gemv(makeSignedVector(32, 8, rng)));
    EXPECT_EQ(after.get().status, wire::Status::Ok);
}

// ---------------------------------------------------------------------
// Slow readers and partial writes
// ---------------------------------------------------------------------

TEST(NetServe, SlowReaderGetsEveryResponseBuffered)
{
    NetServer server(quickServer());
    NetClient control("127.0.0.1", server.port());
    std::uint32_t id = 0;
    ASSERT_EQ(control.registerDesign(testWeights(64, 11),
                                     testCompileOptions(), &id),
              wire::Status::Ok);

    // Pump ~8 MiB of responses through a connection that reads
    // nothing until every request is sent: the kernel buffers fill and
    // the server must hold the rest in per-connection write buffers,
    // flushing as POLLOUT allows.
    RawConn slow(server.port());
    Rng rng(12);
    const int kRequests = 64;
    for (int i = 0; i < kRequests; ++i) {
        wire::RequestFrame frame;
        frame.kind = wire::MessageKind::GemvBatch;
        frame.requestId = static_cast<std::uint64_t>(i) + 1;
        frame.designId = id;
        frame.request =
            Request::gemvBatch(makeSignedBatch(256, 64, 8, rng));
        std::vector<std::uint8_t> bytes;
        wire::appendRequestFrame(bytes, frame);
        slow.sendAll(bytes);
    }
    // Let responses pile up server-side before reading a byte.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    std::vector<bool> seen(kRequests, false);
    std::vector<std::uint8_t> buffer;
    std::uint8_t chunk[64 * 1024];
    int got = 0;
    while (got < kRequests) {
        std::size_t off = 0, size = 0, total = 0;
        const wire::FrameResult r = wire::peekFrame(
            buffer.data(), buffer.size(), &off, &size, &total);
        if (r == wire::FrameResult::Ok) {
            wire::ResponseFrame response;
            ASSERT_EQ(wire::decodeResponse(buffer.data() + off, size,
                                           &response),
                      wire::Status::Ok);
            ASSERT_EQ(response.status, wire::Status::Ok);
            ASSERT_EQ(response.output.rows(), 256u);
            ASSERT_GE(response.requestId, 1u);
            ASSERT_LE(response.requestId,
                      static_cast<std::uint64_t>(kRequests));
            seen[response.requestId - 1] = true;
            buffer.erase(buffer.begin(),
                         buffer.begin() +
                             static_cast<std::ptrdiff_t>(total));
            ++got;
            continue;
        }
        ASSERT_EQ(r, wire::FrameResult::NeedMore);
        const ssize_t n = ::read(slow.fd(), chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        ASSERT_GT(n, 0) << "server closed before all responses";
        buffer.insert(buffer.end(), chunk, chunk + n);
    }
    for (int i = 0; i < kRequests; ++i)
        EXPECT_TRUE(seen[i]) << "missing response " << i + 1;
}

TEST(NetServe, HalfCloseStillDeliversOwedResponses)
{
    NetServerOptions net = quickServer();
    // Deadline-only flushing keeps the burst unanswered until well
    // after the EOF lands, so delivery depends on the half-close drain
    // contract, not on the replies racing the shutdown.
    net.serve.maxBatch = 1024;
    net.serve.maxDelay = std::chrono::milliseconds(50);
    NetServer server(net);

    NetClient control("127.0.0.1", server.port());
    std::uint32_t id = 0;
    ASSERT_EQ(control.registerDesign(testWeights(32, 22),
                                     testCompileOptions(), &id),
              wire::Status::Ok);

    RawConn conn(server.port());
    Rng rng(23);
    const int kRequests = 8;
    for (int i = 0; i < kRequests; ++i) {
        wire::RequestFrame frame;
        frame.kind = wire::MessageKind::Gemv;
        frame.requestId = static_cast<std::uint64_t>(i) + 1;
        frame.designId = id;
        frame.request = Request::gemv(makeSignedVector(32, 8, rng));
        std::vector<std::uint8_t> bytes;
        wire::appendRequestFrame(bytes, frame);
        conn.sendAll(bytes);
    }
    conn.shutdownWrite(); // half-close with the whole burst in flight

    // The server owes kRequests responses and must deliver every one
    // before closing its side (NetClient::close() relies on this).
    std::vector<bool> seen(kRequests, false);
    std::vector<std::uint8_t> buffer;
    std::uint8_t chunk[64 * 1024];
    int got = 0;
    while (got < kRequests) {
        std::size_t off = 0, size = 0, total = 0;
        const wire::FrameResult r = wire::peekFrame(
            buffer.data(), buffer.size(), &off, &size, &total);
        if (r == wire::FrameResult::Ok) {
            wire::ResponseFrame response;
            ASSERT_EQ(wire::decodeResponse(buffer.data() + off, size,
                                           &response),
                      wire::Status::Ok);
            EXPECT_EQ(response.status, wire::Status::Ok);
            ASSERT_GE(response.requestId, 1u);
            ASSERT_LE(response.requestId,
                      static_cast<std::uint64_t>(kRequests));
            seen[response.requestId - 1] = true;
            buffer.erase(buffer.begin(),
                         buffer.begin() +
                             static_cast<std::ptrdiff_t>(total));
            ++got;
            continue;
        }
        ASSERT_EQ(r, wire::FrameResult::NeedMore);
        const ssize_t n = ::read(conn.fd(), chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        ASSERT_GT(n, 0) << "server closed with " << got << "/"
                        << kRequests << " owed responses delivered";
        buffer.insert(buffer.end(), chunk, chunk + n);
    }
    for (int i = 0; i < kRequests; ++i)
        EXPECT_TRUE(seen[i]) << "missing response " << i + 1;
    // ... and only then closes its side: clean EOF, no stray bytes.
    EXPECT_TRUE(conn.recvUpTo(1).empty());
}

// ---------------------------------------------------------------------
// Chaos: disconnects and garbage
// ---------------------------------------------------------------------

TEST(NetServe, MidRequestDisconnectLeavesOthersServed)
{
    NetServer server(quickServer());
    NetClient steady("127.0.0.1", server.port());
    std::uint32_t id = 0;
    ASSERT_EQ(steady.registerDesign(testWeights(32, 13),
                                    testCompileOptions(), &id),
              wire::Status::Ok);

    Rng rng(14);
    {
        // Full request, then vanish before the response: the server
        // computes, fails the write, and drops the connection.
        RawConn ghost(server.port());
        wire::RequestFrame frame;
        frame.kind = wire::MessageKind::Gemv;
        frame.requestId = 1;
        frame.designId = id;
        frame.request = Request::gemv(makeSignedVector(32, 8, rng));
        std::vector<std::uint8_t> bytes;
        wire::appendRequestFrame(bytes, frame);
        ghost.sendAll(bytes);
        ghost.drop();
    }
    {
        // Half a frame, then vanish: EOF mid-frame.
        RawConn torn(server.port());
        wire::RequestFrame frame;
        frame.kind = wire::MessageKind::Gemv;
        frame.requestId = 2;
        frame.designId = id;
        frame.request = Request::gemv(makeSignedVector(32, 8, rng));
        std::vector<std::uint8_t> bytes;
        wire::appendRequestFrame(bytes, frame);
        torn.sendAll(bytes.data(), bytes.size() / 2);
        torn.drop();
    }

    // The steady client keeps getting served throughout.
    for (int i = 0; i < 8; ++i) {
        auto r = steady.submit(
            id, Request::gemv(makeSignedVector(32, 8, rng)));
        EXPECT_EQ(r.get().status, wire::Status::Ok);
    }
}

TEST(NetServe, GarbageBytesGetBadFrameAndOthersSurvive)
{
    NetServer server(quickServer());
    NetClient steady("127.0.0.1", server.port());
    std::uint32_t id = 0;
    ASSERT_EQ(steady.registerDesign(testWeights(24, 15),
                                    testCompileOptions(), &id),
              wire::Status::Ok);

    {
        RawConn evil(server.port());
        // A length prefix promising more than kMaxFrameBytes: framing
        // is unrecoverable, the server answers BadFrame and closes.
        std::vector<std::uint8_t> bytes(64, 0xa5);
        const std::uint32_t huge = wire::kMaxFrameBytes + 7;
        std::memcpy(bytes.data(), &huge, 4);
        evil.sendAll(bytes);
        wire::ResponseFrame response;
        ASSERT_TRUE(evil.recvResponse(&response));
        EXPECT_EQ(response.status, wire::Status::BadFrame);
        // ... and then EOF.
        EXPECT_TRUE(evil.recvUpTo(1).empty());
    }
    {
        RawConn evil(server.port());
        // A well-framed payload with a corrupt magic.
        const auto length =
            static_cast<std::uint32_t>(wire::kHeaderBytes);
        std::vector<std::uint8_t> bytes;
        for (int i = 0; i < 4; ++i)
            bytes.push_back(
                static_cast<std::uint8_t>(length >> (8 * i)));
        bytes.insert(bytes.end(), wire::kHeaderBytes, 0x5a);
        evil.sendAll(bytes);
        wire::ResponseFrame response;
        ASSERT_TRUE(evil.recvResponse(&response));
        EXPECT_EQ(response.status, wire::Status::BadFrame);
    }

    EXPECT_GE(server.stats().badFrames, 2u);
    Rng rng(16);
    auto r = steady.submit(
        id, Request::gemv(makeSignedVector(24, 8, rng)));
    EXPECT_EQ(r.get().status, wire::Status::Ok);
}

// ---------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------

TEST(NetServe, GracefulDrainCompletesInFlightWork)
{
    NetServerOptions net = quickServer(2);
    // A long deadline keeps the burst in flight when shutdown lands.
    net.serve.maxBatch = 1024;
    net.serve.maxDelay = std::chrono::milliseconds(40);
    NetServer server(net);
    NetClient client("127.0.0.1", server.port());

    std::uint32_t id = 0;
    ASSERT_EQ(client.registerDesign(testWeights(32, 17),
                                    testCompileOptions(), &id),
              wire::Status::Ok);

    Rng rng(18);
    std::vector<std::future<RemoteResult>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(client.submit(
            id, Request::gemv(makeSignedVector(32, 8, rng))));
    // Let the event loop admit the whole burst, then drain under it.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    server.shutdown();

    // Every admitted request completed with a real answer.
    for (auto &future : futures)
        EXPECT_EQ(future.get().status, wire::Status::Ok);

    // The socket is gone; later work fails client-side, not by hang.
    auto after = client.submit(
        id, Request::gemv(makeSignedVector(32, 8, rng)));
    const wire::Status status = after.get().status;
    EXPECT_NE(status, wire::Status::Ok);
}

TEST(NetServe, RequestShutdownFromBackgroundThreadStops)
{
    NetServer server(quickServer());
    std::thread trigger([&server] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        server.requestShutdown(); // the SIGTERM handler's call
    });
    server.waitUntilStopped(); // must return, not hang
    trigger.join();
}

TEST(NetServe, ShutdownAnswersNewWorkShuttingDown)
{
    NetServerOptions net = quickServer();
    net.serve.maxBatch = 1024;
    net.serve.maxDelay = std::chrono::milliseconds(60);
    NetServer server(net);
    NetClient client("127.0.0.1", server.port());
    std::uint32_t id = 0;
    ASSERT_EQ(client.registerDesign(testWeights(24, 19),
                                    testCompileOptions(), &id),
              wire::Status::Ok);

    // Hold one request in flight so the drain has work to finish.
    Rng rng(20);
    auto held = client.submit(
        id, Request::gemv(makeSignedVector(24, 8, rng)));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

    std::thread drain([&server] { server.shutdown(); });
    // While draining, new requests are refused with ShuttingDown (or
    // the connection is already torn down — never silently dropped).
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    auto refused = client.submit(
        id, Request::gemv(makeSignedVector(24, 8, rng)));
    const wire::Status status = refused.get().status;
    EXPECT_TRUE(status == wire::Status::ShuttingDown ||
                status == wire::Status::Disconnected)
        << wire::statusName(status);
    EXPECT_EQ(held.get().status, wire::Status::Ok);
    drain.join();
}

// ---------------------------------------------------------------------
// Injected faults: watchdog shedding, timeouts, reconnect-and-replay,
// partial writes, bounded drain
// ---------------------------------------------------------------------

TEST(NetServeChaos, WatchdogShedsExpiredWorkInsteadOfStalling)
{
    NetServerOptions net = quickServer();
    net.maxQueue = 64;
    // One request per group so the backlog is many small groups the
    // watchdog can age out individually.
    net.serve.maxBatch = 1;
    net.serve.maxQueueAge = std::chrono::milliseconds(20);
    net.serve.slowWorkerAfter = std::chrono::milliseconds(10);
    NetServer server(net);
    NetClient client("127.0.0.1", server.port());
    std::uint32_t id = 0;
    ASSERT_EQ(client.registerDesign(testWeights(24, 501),
                                    testCompileOptions(), &id),
              wire::Status::Ok);

    Rng rng(502);
    std::size_t ok = 0, busy = 0;
    {
        // Every group stalls its worker 60ms: with a 20ms queue-age
        // cutoff the backlog must shed, not wait its turn.
        const FaultGuard faults({{fault::Site::ServeWorkerStall,
                                  fault::Rule{1.0, 503, 60}}});
        std::vector<std::future<RemoteResult>> futures;
        for (int i = 0; i < 24; ++i)
            futures.push_back(client.submit(
                id, Request::gemv(makeSignedVector(24, 8, rng))));
        for (auto &future : futures) {
            const wire::Status status = future.get().status;
            if (status == wire::Status::Ok)
                ++ok;
            else if (status == wire::Status::Busy)
                ++busy;
            else
                FAIL() << "unexpected status "
                       << wire::statusName(status);
        }
    }
    // Every future resolved; work the workers reached completed, the
    // aged-out remainder was shed by the watchdog.
    EXPECT_EQ(ok + busy, 24u);
    EXPECT_GE(ok, 1u);
    EXPECT_GE(busy, 1u);

    IntMatrix stats;
    ASSERT_EQ(client.fetchStats(&stats), wire::Status::Ok);
    ASSERT_EQ(stats.cols(), wire::kShardStatsCols);
    EXPECT_GE(stats.at(0, wire::kStatWatchdogShed), 1);
    EXPECT_GE(stats.at(0, wire::kStatFaultsInjected), 1);
}

TEST(NetServeChaos, RequestTimeoutResolvesPromptlyAndConnectionLives)
{
    NetServer server(quickServer());
    NetClientOptions copts;
    copts.requestTimeout = std::chrono::milliseconds(40);
    NetClient client("127.0.0.1", server.port(), copts);
    std::uint32_t id = 0;
    ASSERT_EQ(client.registerDesign(testWeights(24, 511),
                                    testCompileOptions(), &id),
              wire::Status::Ok);

    Rng rng(512);
    const auto start = std::chrono::steady_clock::now();
    {
        // The worker sleeps 500ms on the one group; the 40ms client
        // timeout must resolve the future long before the server
        // answers.
        const FaultGuard faults({{fault::Site::ServeWorkerStall,
                                  fault::Rule{1.0, 513, 500}}});
        auto slow = client.submit(
            id, Request::gemv(makeSignedVector(24, 8, rng)));
        ASSERT_EQ(slow.wait_for(std::chrono::seconds(5)),
                  std::future_status::ready);
        EXPECT_EQ(slow.get().status, wire::Status::TimedOut);
    }
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    EXPECT_LT(elapsed.count(), 450) << "timeout did not fire early";
    EXPECT_GE(client.stats().timeouts, 1u);
    // Control traffic is exempt and the connection stays healthy; the
    // late server answer for the timed-out id is discarded silently.
    EXPECT_EQ(client.ping(), wire::Status::Ok);
    // Let the stalled worker finish its 500ms sleep, then verify the
    // same connection still serves fresh work within the timeout.
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    auto after = client.submit(
        id, Request::gemv(makeSignedVector(24, 8, rng)));
    EXPECT_EQ(after.get().status, wire::Status::Ok);
}

TEST(NetServeChaos, ReconnectReplayCompletesBitExact)
{
    const std::size_t dim = 32;
    const IntMatrix weights = testWeights(dim, 521);
    const core::CompileOptions compile = testCompileOptions();

    NetServerOptions net = quickServer();
    NetServer server(net);
    NetClientOptions copts;
    copts.maxReconnects = 100;
    copts.backoffBase = std::chrono::milliseconds(1);
    copts.backoffCap = std::chrono::milliseconds(20);
    NetClient client("127.0.0.1", server.port(), copts);
    std::uint32_t id = 0;
    ASSERT_EQ(client.registerDesign(weights, compile, &id),
              wire::Status::Ok);

    Server local(net.serve);
    const DesignId localId = local.registerDesign(weights, compile);

    Rng rng(522);
    {
        // Roughly every third dispatched frame tears the connection
        // down server-side; reconnect-and-replay must land every
        // request anyway, bit-exactly.
        const FaultGuard faults(
            {{fault::Site::NetConnDrop, fault::Rule{0.3, 523, 0}}});
        for (int i = 0; i < 16; ++i) {
            const Request request =
                Request::gemv(makeSignedVector(dim, 8, rng));
            RemoteResult over_wire =
                client.submitRetry(id, Request(request));
            ASSERT_EQ(over_wire.status, wire::Status::Ok) << i;
            Response in_process =
                local.submit(localId, Request(request)).get();
            EXPECT_TRUE(over_wire.output == in_process.output) << i;
        }
    }
    EXPECT_GE(client.stats().reconnects, 1u);
    EXPECT_GE(client.stats().replays, 1u);
}

TEST(NetServeChaos, PartialWritesStillDeliverBitExact)
{
    const std::size_t dim = 48;
    const IntMatrix weights = testWeights(dim, 531);
    const core::CompileOptions compile = testCompileOptions();

    NetServerOptions net = quickServer();
    NetServer server(net);
    NetClient client("127.0.0.1", server.port());
    std::uint32_t id = 0;
    ASSERT_EQ(client.registerDesign(weights, compile, &id),
              wire::Status::Ok);

    Server local(net.serve);
    const DesignId localId = local.registerDesign(weights, compile);

    Rng rng(532);
    // Every outbound pass is clamped to 64 bytes, so each multi-KiB
    // batch response crosses the wire in hundreds of fragments.
    const FaultGuard faults({{fault::Site::NetWritePartial,
                              fault::Rule{1.0, 533, 64}}});
    for (int i = 0; i < 4; ++i) {
        const Request request =
            Request::gemvBatch(makeSignedBatch(64, dim, 8, rng));
        RemoteResult over_wire =
            client.submit(id, Request(request)).get();
        ASSERT_EQ(over_wire.status, wire::Status::Ok) << i;
        Response in_process =
            local.submit(localId, Request(request)).get();
        EXPECT_TRUE(over_wire.output == in_process.output) << i;
    }
}

TEST(NetServeChaos, DrainTimeoutBoundsShutdownUnderStalledWorkers)
{
    NetServerOptions net = quickServer();
    net.serve.maxBatch = 1;
    net.drainTimeout = std::chrono::milliseconds(200);
    NetServer server(net);
    NetClient client("127.0.0.1", server.port());
    std::uint32_t id = 0;
    ASSERT_EQ(client.registerDesign(testWeights(24, 541),
                                    testCompileOptions(), &id),
              wire::Status::Ok);

    Rng rng(542);
    // Workers stall 1.5s per group — far past the 200ms drain
    // deadline — with several groups queued behind them.
    const FaultGuard faults(
        {{fault::Site::ServeWorkerStall, fault::Rule{1.0, 543, 1500}}});
    std::vector<std::future<RemoteResult>> futures;
    for (int i = 0; i < 6; ++i)
        futures.push_back(client.submit(
            id, Request::gemv(makeSignedVector(24, 8, rng))));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    const auto start = std::chrono::steady_clock::now();
    server.shutdown();
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    // Unbounded drain would sit through ~3 rounds of 1.5s stalls;
    // the deadline must cut that to the 200ms budget plus the
    // reaper's 50ms wait slices and teardown overhead.
    EXPECT_LT(elapsed.count(), 1200)
        << "drain deadline did not bound shutdown";

    // Every future resolves: completed work Ok, abandoned in-flight
    // work ShuttingDown, shed backlog Busy — never a hang.
    for (auto &future : futures) {
        ASSERT_EQ(future.wait_for(std::chrono::seconds(5)),
                  std::future_status::ready);
        const wire::Status status = future.get().status;
        EXPECT_TRUE(status == wire::Status::Ok ||
                    status == wire::Status::Busy ||
                    status == wire::Status::ShuttingDown ||
                    status == wire::Status::Disconnected)
            << wire::statusName(status);
    }
}

// ---------------------------------------------------------------------
// Shard isolation
// ---------------------------------------------------------------------

TEST(NetServe, ShardsServeIndependentDesigns)
{
    NetServer server(quickServer(2));
    NetClient client("127.0.0.1", server.port());

    const std::size_t dim = 24;
    std::vector<std::uint32_t> ids(4);
    std::vector<IntMatrix> weights;
    for (std::size_t d = 0; d < ids.size(); ++d) {
        weights.push_back(testWeights(dim, 100 + d));
        std::uint32_t shard = 0;
        ASSERT_EQ(client.registerDesign(weights.back(),
                                        testCompileOptions(), &ids[d],
                                        &shard),
                  wire::Status::Ok);
        EXPECT_EQ(shard, ids[d] % 2);
    }

    Rng rng(21);
    std::vector<std::pair<std::size_t, std::future<RemoteResult>>>
        futures;
    for (int i = 0; i < 64; ++i) {
        const std::size_t d = static_cast<std::size_t>(i) % ids.size();
        futures.emplace_back(
            d, client.submit(ids[d], Request::gemv(makeSignedVector(
                                         dim, 8, rng))));
    }
    for (auto &[d, future] : futures)
        EXPECT_EQ(future.get().status, wire::Status::Ok) << d;

    IntMatrix stats;
    ASSERT_EQ(client.fetchStats(&stats), wire::Status::Ok);
    ASSERT_EQ(stats.rows(), 2u);
    // Both shards saw traffic, and every admitted request is answered.
    EXPECT_EQ(stats.at(0, wire::kStatSubmitted) +
                  stats.at(1, wire::kStatSubmitted),
              64);
    EXPECT_GT(stats.at(0, wire::kStatSubmitted), 0);
    EXPECT_GT(stats.at(1, wire::kStatSubmitted), 0);
    EXPECT_EQ(stats.at(0, wire::kStatInFlight), 0);
    EXPECT_EQ(stats.at(1, wire::kStatInFlight), 0);
}

} // namespace
