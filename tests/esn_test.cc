/**
 * @file
 * Tests of the reservoir computing library: linear algebra, ridge
 * regression, reservoir dynamics (echo state property), task
 * generators, metrics, and the end-to-end float and integer pipelines —
 * including running the recurrence on the simulated spatial hardware.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "esn/backend.h"
#include "esn/esn.h"
#include "esn/linalg.h"
#include "esn/metrics.h"
#include "esn/reservoir.h"
#include "esn/ridge.h"
#include "esn/tasks.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;
using namespace spatial::esn;

// ---------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------

TEST(Linalg, MatMulHandChecked)
{
    RealMatrix a(2, 3), b(3, 2);
    int v = 1;
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            a.at(r, c) = v++;
    v = 1;
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            b.at(r, c) = v++;
    const auto c = matMul(a, b);
    EXPECT_DOUBLE_EQ(c.at(0, 0), 22.0);
    EXPECT_DOUBLE_EQ(c.at(0, 1), 28.0);
    EXPECT_DOUBLE_EQ(c.at(1, 0), 49.0);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 64.0);
}

TEST(Linalg, TransposeAndMatTMulAgree)
{
    Rng rng(1);
    RealMatrix a(7, 4), b(7, 3);
    for (auto &x : a.mutableData())
        x = rng.gaussian();
    for (auto &x : b.mutableData())
        x = rng.gaussian();
    const auto direct = matTMul(a, b);
    const auto via_transpose = matMul(transpose(a), b);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_NEAR(direct.at(r, c), via_transpose.at(r, c), 1e-12);
}

TEST(Linalg, CholeskyReconstructs)
{
    // Build SPD A = M M^T + I.
    Rng rng(2);
    RealMatrix m(5, 5);
    for (auto &x : m.mutableData())
        x = rng.gaussian();
    RealMatrix a = matMul(m, transpose(m));
    addDiagonal(a, 1.0);

    const auto l = cholesky(a);
    const auto back = matMul(l, transpose(l));
    for (std::size_t r = 0; r < 5; ++r)
        for (std::size_t c = 0; c < 5; ++c)
            EXPECT_NEAR(back.at(r, c), a.at(r, c), 1e-9);
}

TEST(Linalg, SolveSpdRecoversKnownSolution)
{
    Rng rng(3);
    RealMatrix m(6, 6);
    for (auto &x : m.mutableData())
        x = rng.gaussian();
    RealMatrix a = matMul(m, transpose(m));
    addDiagonal(a, 2.0);

    RealMatrix x_true(6, 2);
    for (auto &x : x_true.mutableData())
        x = rng.gaussian();
    const auto b = matMul(a, x_true);
    const auto x = solveSpd(a, b);
    for (std::size_t r = 0; r < 6; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_NEAR(x.at(r, c), x_true.at(r, c), 1e-8);
}

TEST(Linalg, SpectralRadiusOfDiagonal)
{
    RealMatrix a(3, 3);
    a.at(0, 0) = 0.5;
    a.at(1, 1) = -2.0;
    a.at(2, 2) = 1.0;
    EXPECT_NEAR(spectralRadius(a), 2.0, 1e-6);
}

TEST(Linalg, SpectralRadiusZeroMatrix)
{
    RealMatrix a(4, 4);
    EXPECT_NEAR(spectralRadius(a), 0.0, 1e-12);
}

// ---------------------------------------------------------------------
// Ridge regression
// ---------------------------------------------------------------------

TEST(Ridge, RecoversExactLinearMap)
{
    Rng rng(4);
    RealMatrix x(200, 5);
    for (auto &v : x.mutableData())
        v = rng.gaussian();
    RealMatrix w_true(5, 2);
    for (auto &v : w_true.mutableData())
        v = rng.gaussian();
    const auto y = matMul(x, w_true);

    const auto w = ridgeRegression(x, y, 0.0);
    for (std::size_t r = 0; r < 5; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_NEAR(w.at(r, c), w_true.at(r, c), 1e-6);
}

TEST(Ridge, RegularizationShrinksWeights)
{
    Rng rng(5);
    RealMatrix x(100, 4);
    for (auto &v : x.mutableData())
        v = rng.gaussian();
    RealMatrix y(100, 1);
    for (std::size_t t = 0; t < 100; ++t)
        y.at(t, 0) = x.at(t, 0) + 0.1 * rng.gaussian();

    const auto w_small = ridgeRegression(x, y, 1e-6);
    const auto w_big = ridgeRegression(x, y, 100.0);
    EXPECT_LT(frobeniusNorm(w_big), frobeniusNorm(w_small));
}

TEST(Ridge, HandlesRankDeficientStates)
{
    // Duplicate columns would break a plain normal-equation solve.
    RealMatrix x(50, 3);
    Rng rng(6);
    for (std::size_t t = 0; t < 50; ++t) {
        x.at(t, 0) = rng.gaussian();
        x.at(t, 1) = x.at(t, 0); // duplicate
        x.at(t, 2) = 1.0;
    }
    RealMatrix y(50, 1);
    for (std::size_t t = 0; t < 50; ++t)
        y.at(t, 0) = 2.0 * x.at(t, 0);
    const auto w = ridgeRegression(x, y, 1e-6);
    const auto fit = applyReadout(x, w);
    for (std::size_t t = 0; t < 50; ++t)
        EXPECT_NEAR(fit.at(t, 0), y.at(t, 0), 1e-3);
}

// ---------------------------------------------------------------------
// Reservoir dynamics
// ---------------------------------------------------------------------

TEST(Reservoir, WeightsHonourConfig)
{
    ReservoirConfig config;
    config.dim = 80;
    config.sparsity = 0.9;
    config.spectralRadius = 0.8;
    const auto weights = makeReservoirWeights(config);

    std::size_t nonzero = 0;
    for (const auto v : weights.w.data())
        nonzero += (v != 0.0);
    const double density =
        static_cast<double>(nonzero) / (80.0 * 80.0);
    EXPECT_NEAR(density, 0.1, 0.03);
    EXPECT_NEAR(spectralRadius(weights.w), 0.8, 0.05);
}

TEST(Reservoir, EchoStateProperty)
{
    // Two trajectories from different initial states converge under the
    // same input when the spectral radius is < 1.
    ReservoirConfig config;
    config.dim = 60;
    config.seed = 7;
    const auto weights = makeReservoirWeights(config);
    FloatReservoir r1(weights, config);
    FloatReservoir r2(weights, config);

    // Desynchronize by feeding different prefixes.
    Rng rng(8);
    for (int t = 0; t < 10; ++t) {
        r1.step({rng.uniformReal(-1, 1)});
        r2.step({rng.uniformReal(1, 2)});
    }
    // Common input washes out the difference.
    double diff = 0.0;
    for (int t = 0; t < 200; ++t) {
        const double u = rng.uniformReal(-1, 1);
        const auto &x1 = r1.step({u});
        const auto &x2 = r2.step({u});
        diff = 0.0;
        for (std::size_t i = 0; i < x1.size(); ++i)
            diff += std::abs(x1[i] - x2[i]);
    }
    EXPECT_LT(diff, 1e-6);
}

TEST(Reservoir, StatesBounded)
{
    ReservoirConfig config;
    config.dim = 40;
    const auto weights = makeReservoirWeights(config);
    FloatReservoir r(weights, config);
    Rng rng(9);
    for (int t = 0; t < 100; ++t) {
        const auto &x = r.step({rng.uniformReal(-5, 5)});
        for (const auto v : x) {
            EXPECT_GE(v, -1.0);
            EXPECT_LE(v, 1.0);
        }
    }
}

TEST(IntReservoirTest, StatesWithinBitRange)
{
    ReservoirConfig config;
    config.dim = 32;
    config.seed = 10;
    const auto weights = makeReservoirWeights(config);

    IntReservoirConfig iconfig;
    iconfig.weightBits = 4;
    iconfig.stateBits = 8;
    auto reservoir =
        makeIntReservoir(weights, iconfig, BackendKind::Reference);

    Rng rng(11);
    for (int t = 0; t < 50; ++t) {
        const auto &x = reservoir.step({rng.uniformInt(-127, 127)});
        for (const auto v : x) {
            EXPECT_GE(v, -128);
            EXPECT_LE(v, 127);
        }
    }
}

TEST(IntReservoirTest, BackendsAgreeExactly)
{
    // Reference, CSR, and cycle-accurate spatial hardware must produce
    // bit-identical state trajectories.
    ReservoirConfig config;
    config.dim = 24;
    config.seed = 12;
    const auto weights = makeReservoirWeights(config);

    IntReservoirConfig iconfig;
    iconfig.weightBits = 4;
    iconfig.stateBits = 8;

    auto ref = makeIntReservoir(weights, iconfig, BackendKind::Reference);
    auto csr = makeIntReservoir(weights, iconfig, BackendKind::Csr);
    auto hw = makeIntReservoir(weights, iconfig, BackendKind::Spatial);

    Rng rng(13);
    IntMatrix inputs(30, 1);
    for (std::size_t t = 0; t < 30; ++t)
        inputs.at(t, 0) = rng.uniformInt(-127, 127);

    const auto s_ref = ref.run(inputs);
    const auto s_csr = csr.run(inputs);
    const auto s_hw = hw.run(inputs);
    EXPECT_EQ(s_ref, s_csr);
    EXPECT_EQ(s_ref, s_hw);
}

TEST(IntReservoirTest, BatchedBackendMatchesReferenceAndCountsCycles)
{
    ReservoirConfig config;
    config.dim = 24;
    config.seed = 15;
    const auto weights = makeReservoirWeights(config);
    IntReservoirConfig iconfig;

    auto hw = makeIntReservoir(weights, iconfig, BackendKind::Spatial);
    auto ref = makeIntReservoir(weights, iconfig, BackendKind::Reference);
    auto &batched = dynamic_cast<BatchedSpatialBackend &>(hw.backend());

    // 70 independent vectors span two 64-lane groups.
    Rng rng(16);
    IntMatrix xs(70, 24);
    for (std::size_t b = 0; b < xs.rows(); ++b)
        for (std::size_t r = 0; r < xs.cols(); ++r)
            xs.at(b, r) = rng.uniformInt(-127, 127);

    // The wide batch path, the default loop-over-multiply path, and
    // the per-vector tape path must all agree.
    const auto wide = batched.multiplyBatch(xs);
    const auto looped = ref.backend().multiplyBatch(xs);
    EXPECT_EQ(wide, looped);
    for (const std::size_t b : {std::size_t{0}, std::size_t{69}}) {
        std::vector<std::int64_t> x(xs.cols());
        for (std::size_t r = 0; r < xs.cols(); ++r)
            x[r] = xs.at(b, r);
        const auto single = batched.multiply(x);
        for (std::size_t c = 0; c < single.size(); ++c)
            EXPECT_EQ(wide.at(b, c), single[c]);
    }

    // Hardware-cycle accounting: one drain per netlist pass.  The
    // batch above ran ceil(70 / lanes) passes, plus one per single
    // multiply.
    const auto lanes =
        64 * core::resolvedLaneWords(batched.design(), {}, xs.rows());
    const auto groups = (xs.rows() + lanes - 1) / lanes;
    EXPECT_EQ(batched.totalCycles(),
              (groups + 2) * batched.design().drainCycles());
}

TEST(IntReservoirTest, SpatialBackendCountsCycles)
{
    ReservoirConfig config;
    config.dim = 16;
    config.seed = 14;
    const auto weights = makeReservoirWeights(config);
    IntReservoirConfig iconfig;
    auto hw = makeIntReservoir(weights, iconfig, BackendKind::Spatial);

    IntMatrix inputs(5, 1);
    hw.run(inputs);
    auto &backend = dynamic_cast<SpatialBackend &>(hw.backend());
    EXPECT_EQ(backend.totalCycles(),
              5u * backend.design().drainCycles());
}

// ---------------------------------------------------------------------
// Tasks and metrics
// ---------------------------------------------------------------------

TEST(Tasks, Narma10Deterministic)
{
    Rng a(20), b(20);
    const auto d1 = makeNarma10(500, a);
    const auto d2 = makeNarma10(500, b);
    EXPECT_EQ(d1.inputs, d2.inputs);
    EXPECT_EQ(d1.targets, d2.targets);
    for (const auto u : d1.inputs) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 0.5);
    }
    for (const auto y : d1.targets) {
        EXPECT_GE(y, -1.0);
        EXPECT_LE(y, 1.0);
    }
}

TEST(Tasks, MackeyGlassIsChaoticButBounded)
{
    const auto data = makeMackeyGlass(2000, 1);
    double lo = 1e9, hi = -1e9;
    for (const auto x : data.inputs) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    EXPECT_GT(lo, 0.2);
    EXPECT_LT(hi, 1.6);
    EXPECT_GT(hi - lo, 0.4); // genuinely oscillating
    // Targets are the inputs shifted by the horizon.
    for (std::size_t t = 0; t + 1 < 2000; ++t)
        EXPECT_DOUBLE_EQ(data.targets[t], data.inputs[t + 1]);
}

TEST(Tasks, ChannelEqualizationShapes)
{
    Rng rng(21);
    const auto data = makeChannelEqualization(1000, 24.0, rng);
    EXPECT_EQ(data.inputs.size(), 1000u);
    EXPECT_EQ(data.targets.size(), 1000u);
    for (const auto d : data.targets) {
        const bool valid = d == -3.0 || d == -1.0 || d == 1.0 || d == 3.0;
        EXPECT_TRUE(valid);
    }
}

TEST(Tasks, MemoryCapacityDelays)
{
    Rng rng(22);
    const auto data = makeMemoryCapacity(100, 5, rng);
    ASSERT_EQ(data.delayedTargets.size(), 5u);
    for (std::size_t k = 1; k <= 5; ++k)
        for (std::size_t t = k; t < 100; ++t)
            EXPECT_DOUBLE_EQ(data.delayedTargets[k - 1][t],
                             data.inputs[t - k]);
}

TEST(Metrics, NrmseOfPerfectPrediction)
{
    const std::vector<double> t{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(nrmse(t, t), 0.0);
    EXPECT_DOUBLE_EQ(meanSquaredError(t, t), 0.0);
}

TEST(Metrics, NrmseOfMeanPredictorIsOne)
{
    const std::vector<double> targets{1.0, 3.0, 5.0, 7.0};
    const std::vector<double> mean_pred(4, 4.0);
    EXPECT_NEAR(nrmse(mean_pred, targets), 1.0, 1e-12);
}

TEST(Metrics, SquaredCorrelationInvariantToScale)
{
    const std::vector<double> t{1.0, 2.0, 3.0, 5.0, 8.0};
    std::vector<double> p(t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        p[i] = 3.0 * t[i] + 7.0;
    EXPECT_NEAR(squaredCorrelation(p, t), 1.0, 1e-12);
}

TEST(Metrics, SymbolErrorRateCountsMisses)
{
    const std::vector<double> alphabet{-1.0, 1.0};
    const std::vector<double> targets{1.0, 1.0, -1.0, -1.0};
    const std::vector<double> preds{0.9, -0.2, -0.8, 0.4};
    EXPECT_DOUBLE_EQ(symbolErrorRate(preds, targets, alphabet), 0.5);
}

// ---------------------------------------------------------------------
// End-to-end pipelines
// ---------------------------------------------------------------------

TEST(Pipeline, FloatEsnLearnsNarma10)
{
    Rng rng(30);
    const auto train_data = makeNarma10(1200, rng);
    const auto test_data = makeNarma10(800, rng);

    ReservoirConfig config;
    config.dim = 120;
    config.seed = 31;
    EchoStateNetwork network(makeReservoirWeights(config), config);
    network.train(train_data.inputs, train_data.targets, 100, 1e-6);

    const auto preds = network.predict(test_data.inputs);
    std::vector<double> p(preds.begin() + 100, preds.end());
    std::vector<double> t(test_data.targets.begin() + 100,
                          test_data.targets.end());
    const double err = nrmse(p, t);
    EXPECT_LT(err, 0.45) << "NARMA-10 NRMSE " << err;
}

TEST(Pipeline, IntEsnOnHardwareLearnsNarma10)
{
    // The headline end-to-end claim: an integer ESN whose recurrence
    // runs entirely on the cycle-accurate simulation of the compiled
    // spatial multiplier still learns the task.
    Rng rng(32);
    const auto train_data = makeNarma10(700, rng);
    const auto test_data = makeNarma10(500, rng);

    ReservoirConfig config;
    config.dim = 64;
    config.sparsity = 0.9;
    config.seed = 33;
    const auto weights = makeReservoirWeights(config);

    IntReservoirConfig iconfig;
    iconfig.weightBits = 4;
    iconfig.stateBits = 8;
    IntEchoStateNetwork network(weights, iconfig, BackendKind::Spatial);
    network.train(train_data.inputs, train_data.targets, 60, 1e-4);

    const auto preds = network.predict(test_data.inputs);
    std::vector<double> p(preds.begin() + 60, preds.end());
    std::vector<double> t(test_data.targets.begin() + 60,
                          test_data.targets.end());
    const double err = nrmse(p, t);
    // Quantized reservoirs lose some quality but must beat the mean
    // predictor by a clear margin.
    EXPECT_LT(err, 0.75) << "hardware ESN NRMSE " << err;
}

TEST(Pipeline, IntEsnBackendsGiveSameQuality)
{
    Rng rng(34);
    const auto data = makeNarma10(600, rng);

    ReservoirConfig config;
    config.dim = 48;
    config.seed = 35;
    const auto weights = makeReservoirWeights(config);
    IntReservoirConfig iconfig;

    IntEchoStateNetwork ref(weights, iconfig, BackendKind::Reference);
    IntEchoStateNetwork csr(weights, iconfig, BackendKind::Csr);
    const auto e1 = ref.train(data.inputs, data.targets, 50, 1e-4);
    const auto e2 = csr.train(data.inputs, data.targets, 50, 1e-4);
    EXPECT_NEAR(e1.trainNrmse, e2.trainNrmse, 1e-9);
}

} // namespace
