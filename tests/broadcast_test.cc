/**
 * @file
 * Tests of the pipelined-broadcast option (Section VIII): with a fanout
 * limit, no net drives more than the limit, results stay exact, latency
 * grows by the repeater depth, and the frequency model rewards the
 * lower fanout.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/compiler.h"
#include "fpga/report.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;
using core::CompileOptions;
using core::MatrixCompiler;

class BroadcastSweep : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(BroadcastSweep, ExactUnderFanoutLimit)
{
    const std::uint32_t limit = GetParam();
    Rng rng(10 + limit);
    const auto v = makeSignedElementSparseMatrix(24, 24, 8, 0.3, rng);

    CompileOptions opt;
    opt.inputBits = 8;
    opt.broadcastFanoutLimit = limit;
    const auto design = MatrixCompiler(opt).compile(v);

    for (int trial = 0; trial < 3; ++trial) {
        const auto a = makeSignedVector(24, 8, rng);
        EXPECT_EQ(design.multiply(a), gemvRef(a, v));
    }
}

INSTANTIATE_TEST_SUITE_P(Limits, BroadcastSweep,
                         ::testing::Values(2u, 4u, 8u, 16u, 64u));

TEST(Broadcast, FanoutCapRespected)
{
    Rng rng(20);
    // Dense-ish matrix so unlimited fanout would be large.
    const auto v = makeSignedElementSparseMatrix(32, 32, 8, 0.1, rng);

    CompileOptions unlimited;
    const auto base = MatrixCompiler(unlimited).compile(v);

    CompileOptions capped;
    capped.broadcastFanoutLimit = 16;
    const auto limited = MatrixCompiler(capped).compile(v);

    EXPECT_GT(base.netlist().maxFanout(), 16u);
    EXPECT_LE(limited.netlist().maxFanout(), 16u);
}

TEST(Broadcast, LatencyGrowsWithRepeaterDepth)
{
    Rng rng(21);
    const auto v = makeSignedElementSparseMatrix(32, 32, 8, 0.1, rng);

    CompileOptions unlimited;
    const auto base = MatrixCompiler(unlimited).compile(v);
    CompileOptions capped;
    capped.broadcastFanoutLimit = 8;
    const auto limited = MatrixCompiler(capped).compile(v);

    EXPECT_GT(limited.drainCycles(), base.drainCycles());
    // A couple of repeater levels, not an explosion.
    EXPECT_LE(limited.drainCycles(), base.drainCycles() + 6);
}

TEST(Broadcast, FrequencyModelRewardsLowFanout)
{
    Rng rng(22);
    const auto v = makeSignedElementSparseMatrix(128, 128, 8, 0.2, rng);

    CompileOptions unlimited;
    const auto base = fpga::evaluateDesign(
        MatrixCompiler(unlimited).compile(v));
    CompileOptions capped;
    capped.broadcastFanoutLimit = 64;
    const auto limited = fpga::evaluateDesign(
        MatrixCompiler(capped).compile(v));

    EXPECT_LE(limited.maxFanout, 64u);
    EXPECT_GT(limited.fmaxMhz, base.fmaxMhz);
    // The repeaters cost some area.
    EXPECT_GT(limited.resources.ffs, base.resources.ffs);
}

TEST(Broadcast, NoEffectWhenDemandBelowLimit)
{
    Rng rng(23);
    const auto v = makeSignedElementSparseMatrix(16, 4, 4, 0.9, rng);
    CompileOptions opt_a;
    const auto base = MatrixCompiler(opt_a).compile(v);
    CompileOptions opt_b;
    opt_b.broadcastFanoutLimit = 1024;
    const auto limited = MatrixCompiler(opt_b).compile(v);
    EXPECT_EQ(base.netlist().numNodes(), limited.netlist().numNodes());
    EXPECT_EQ(base.drainCycles(), limited.drainCycles());
}

TEST(Broadcast, WorksWithCsdAndNaiveVariants)
{
    Rng rng(24);
    const auto v = makeSignedElementSparseMatrix(12, 12, 6, 0.4, rng);
    for (const bool constant_prop : {true, false}) {
        for (const auto mode :
             {core::SignMode::PnSplit, core::SignMode::Csd}) {
            CompileOptions opt;
            opt.inputBits = 7;
            opt.signMode = mode;
            opt.constantPropagation = constant_prop;
            opt.broadcastFanoutLimit = 4;
            const auto design = MatrixCompiler(opt).compile(v);
            const auto a = makeSignedVector(12, 7, rng);
            EXPECT_EQ(design.multiply(a), gemvRef(a, v))
                << core::signModeName(mode) << " cp=" << constant_prop;
            EXPECT_LE(design.netlist().maxFanout(), 4u);
        }
    }
}

} // namespace
