/**
 * @file
 * Tests of the latency accounting (Equation 5 and drain/II models).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/compiler.h"
#include "core/latency.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;
using core::ceilLog2;
using core::CompileOptions;
using core::MatrixCompiler;

TEST(Latency, CeilLog2)
{
    EXPECT_EQ(ceilLog2(0), 0);
    EXPECT_EQ(ceilLog2(1), 0);
    EXPECT_EQ(ceilLog2(2), 1);
    EXPECT_EQ(ceilLog2(3), 2);
    EXPECT_EQ(ceilLog2(4), 2);
    EXPECT_EQ(ceilLog2(1024), 10);
    EXPECT_EQ(ceilLog2(1025), 11);
}

TEST(Latency, PaperExampleEquationFive)
{
    // "given 8-bit inputs and weights and a 1024x1024 weight matrix, we
    // perform the vector-matrix product in 8 + 8 + log2(1024) + 2 = 28
    // cycles."
    EXPECT_EQ(core::eq5Cycles(8, 8, 1024), 28u);
}

TEST(Latency, Eq5GrowsLogarithmically)
{
    const auto at64 = core::eq5Cycles(8, 8, 64);
    const auto at4096 = core::eq5Cycles(8, 8, 4096);
    EXPECT_EQ(at4096 - at64, 6u); // log2(4096) - log2(64)
}

TEST(Latency, CyclesToNs)
{
    EXPECT_DOUBLE_EQ(core::cyclesToNs(28, 250.0), 112.0);
    EXPECT_DOUBLE_EQ(core::cyclesToNs(30, 250.0), 120.0);
}

TEST(Latency, BatchScalesLinearly)
{
    const double one = core::batchLatencyNs(28, 26, 1, 250.0);
    const double two = core::batchLatencyNs(28, 26, 2, 250.0);
    const double ten = core::batchLatencyNs(28, 26, 10, 250.0);
    EXPECT_DOUBLE_EQ(two - one, 26.0 * 4.0);
    EXPECT_DOUBLE_EQ(ten - one, 9.0 * 26.0 * 4.0);
}

TEST(Latency, DrainIsBoundedByModel)
{
    // PN splitting halves each side's tree population, so the measured
    // drain never exceeds the full-matrix model and always covers the
    // output stream itself.
    Rng rng(1);
    const auto v = makeSignedElementSparseMatrix(64, 64, 8, 0.0, rng);
    CompileOptions opt;
    opt.inputBits = 8;
    const auto design = MatrixCompiler(opt).compile(v);
    EXPECT_LE(design.drainCycles(),
              core::fullDrainCycles(8, design.weightBits(), 64));
    EXPECT_GT(design.drainCycles(),
              static_cast<std::uint32_t>(design.outputBits()));
}

TEST(Latency, MeasuredLsbLatencyIsTreePlusChainPlusSub)
{
    // Deterministic columns: all-(+1) weights need only the 64-leaf tree
    // (depth 6); all-(-1) adds the subtractor (+1); all-(+3) adds one
    // bit-position chain link (+1).
    IntMatrix v(64, 3);
    for (std::size_t r = 0; r < 64; ++r) {
        v.at(r, 0) = 1;
        v.at(r, 1) = -1;
        v.at(r, 2) = 3;
    }
    CompileOptions opt;
    opt.alignOutputs = false;
    const auto design = MatrixCompiler(opt).compile(v);
    ASSERT_EQ(design.outputs().size(), 3u);
    EXPECT_EQ(design.outputs()[0].lsbLatency, 6);
    EXPECT_EQ(design.outputs()[1].lsbLatency, 7);
    EXPECT_EQ(design.outputs()[2].lsbLatency, 7);
}

TEST(Latency, SparseDesignsAreNoSlowerThanEq5Accounting)
{
    // Sparser columns have shallower trees, so the measured LSb latency
    // never exceeds the Eq. 5 structural depth ceil(log2 R) + 2.
    Rng rng(3);
    for (const double sparsity : {0.5, 0.9, 0.98}) {
        const auto v =
            makeSignedElementSparseMatrix(128, 16, 8, sparsity, rng);
        const auto design = MatrixCompiler(CompileOptions{}).compile(v);
        for (const auto &out : design.outputs())
            EXPECT_LE(out.lsbLatency, ceilLog2(128) + 2);
    }
}

TEST(Latency, InitiationIntervalIsOutputWidth)
{
    Rng rng(4);
    const auto v = makeSignedElementSparseMatrix(32, 32, 8, 0.5, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);
    EXPECT_EQ(design.initiationInterval(),
              static_cast<std::uint32_t>(design.outputBits()));
}

} // namespace
