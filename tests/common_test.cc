/**
 * @file
 * Tests for the common substrate: RNG determinism and distributions,
 * table formatting, and argument parsing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/args.h"
#include "common/rng.h"
#include "common/table.h"

namespace
{

using spatial::Args;
using spatial::Rng;
using spatial::Table;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(-5, 17);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 17);
    }
}

TEST(Rng, UniformIntDegenerateRange)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.uniformInt(3, 3), 3);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(11);
    std::array<int, 4> seen{};
    for (int i = 0; i < 1000; ++i)
        seen[static_cast<std::size_t>(rng.uniformInt(0, 3))]++;
    for (const auto count : seen)
        EXPECT_GT(count, 150);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(5);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    const int n = 50000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.gaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SplitStreamsAreIndependentButDeterministic)
{
    Rng a(99);
    Rng a2(99);
    Rng childA = a.split();
    Rng childA2 = a2.split();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(childA.next(), childA2.next());
}

TEST(Rng, CoinIsRoughlyFair)
{
    Rng rng(21);
    int heads = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        heads += rng.coin();
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.5, 0.02);
}

TEST(Table, PrintsHeaderAndRows)
{
    Table t("demo", {"x", "y"});
    t.addRow({"1", "2"});
    t.addRow({"10", "20"});
    std::ostringstream oss;
    t.print(oss);
    const std::string s = oss.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("x"), std::string::npos);
    EXPECT_NE(s.find("20"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, CsvFormat)
{
    Table t("demo", {"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(Table, CellFormatting)
{
    EXPECT_EQ(Table::cell(std::int64_t{-3}), "-3");
    EXPECT_EQ(Table::cell(42), "42");
    EXPECT_EQ(Table::cell(std::string("abc")), "abc");
    // Doubles: just check they parse back approximately.
    const std::string s = Table::cell(3.25);
    EXPECT_NEAR(std::stod(s), 3.25, 1e-9);
}

TEST(Args, SplitListPlainTokensAndRanges)
{
    const auto plain = Args::splitList("64,256");
    ASSERT_EQ(plain.size(), 2u);
    EXPECT_EQ(plain[0], "64");
    EXPECT_EQ(plain[1], "256");

    const auto range = Args::splitList("1:3:1");
    ASSERT_EQ(range.size(), 3u);
    EXPECT_EQ(range[0], "1");
    EXPECT_EQ(range[2], "3");

    EXPECT_TRUE(Args::splitList("").empty());
}

TEST(Args, SplitListRejectsEmptyEntries)
{
    // "64,,256" used to parse as two values with no diagnostic, so a
    // sweep silently ran over fewer points than requested.
    EXPECT_DEATH(Args::splitList("64,,256"), "empty entry");
    EXPECT_DEATH(Args::splitList("64,"), "empty entry");
    EXPECT_DEATH(Args::splitList(",64"), "empty entry");
    EXPECT_DEATH(Args::splitList(","), "empty entry");
}

TEST(Args, ParsesFlagsAndDefaults)
{
    const char *argv[] = {"prog", "--dim=128", "--csv", "--rate=0.5",
                          "--name=abc"};
    Args args(5, argv);
    EXPECT_EQ(args.getInt("dim", 0), 128);
    EXPECT_TRUE(args.getBool("csv", false));
    EXPECT_DOUBLE_EQ(args.getReal("rate", 0.0), 0.5);
    EXPECT_EQ(args.getString("name", ""), "abc");
    EXPECT_EQ(args.getInt("missing", 7), 7);
    EXPECT_FALSE(args.has("missing"));
    EXPECT_TRUE(args.has("dim"));
}

} // namespace
