/**
 * @file
 * Tests of the netlist analysis/transformation passes and of the
 * structural health of compiler output (validation, no dead hardware,
 * depth accounting).
 */

#include <gtest/gtest.h>

#include "circuit/passes.h"
#include "circuit/simulator.h"
#include "circuit/stats.h"
#include "common/rng.h"
#include "core/compiler.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;
using namespace spatial::circuit;
using core::CompileOptions;
using core::MatrixCompiler;

TEST(Validate, AcceptsWellFormedNetlist)
{
    Netlist nl;
    const auto a = nl.addInput(0);
    const auto b = nl.addInput(1);
    nl.addAdder(a, b);
    const auto result = validate(nl);
    EXPECT_TRUE(result.ok) << result.message;
}

TEST(Validate, RejectsDuplicatePorts)
{
    Netlist nl;
    nl.addInput(0);
    nl.addInput(0);
    const auto result = validate(nl);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message.find("driven twice"), std::string::npos);
}

TEST(Validate, RejectsSparsePorts)
{
    Netlist nl;
    nl.addInput(0);
    nl.addInput(2); // port 1 missing
    const auto result = validate(nl);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message.find("missing"), std::string::npos);
}

TEST(Validate, CompilerOutputIsAlwaysValid)
{
    Rng rng(1);
    for (const double sparsity : {0.0, 0.5, 0.95}) {
        const auto v =
            makeSignedElementSparseMatrix(20, 14, 6, sparsity, rng);
        const auto design = MatrixCompiler(CompileOptions{}).compile(v);
        const auto result = validate(design.netlist());
        EXPECT_TRUE(result.ok) << result.message;
    }
}

TEST(Depths, HandComputed)
{
    Netlist nl;
    const auto a = nl.addInput(0);
    const auto b = nl.addInput(1);
    const auto s1 = nl.addAdder(a, b); // depth 1
    const auto d1 = nl.addDff(s1);     // depth 2
    const auto g = nl.addAnd(d1, s1);  // combinational: depth 2
    const auto s2 = nl.addAdder(g, d1); // depth 3

    const auto stats = computeDepths(nl, {s2});
    EXPECT_EQ(stats.depth[s1], 1u);
    EXPECT_EQ(stats.depth[d1], 2u);
    EXPECT_EQ(stats.depth[g], 2u);
    EXPECT_EQ(stats.depth[s2], 3u);
    EXPECT_EQ(stats.maxDepth, 3u);
    EXPECT_DOUBLE_EQ(stats.meanOutputDepth, 3.0);
}

TEST(Depths, CompiledDesignDepthBracketsOutputLatency)
{
    // Register depth is at least the stream LSb latency, but may exceed
    // it: each bit-position chain adder registers the stream (adding
    // depth) while its x2 reinterpretation subtracts a cycle of
    // latency.  The excess is bounded by the weight bitwidth.
    Rng rng(2);
    const auto v = makeSignedElementSparseMatrix(32, 8, 8, 0.5, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);

    std::vector<NodeId> outputs;
    for (const auto &out : design.outputs())
        outputs.push_back(out.node);
    const auto stats = computeDepths(design.netlist(), outputs);
    for (const auto &out : design.outputs()) {
        if (out.node == kNoNode)
            continue;
        const auto depth =
            static_cast<std::int32_t>(stats.depth[out.node]);
        EXPECT_GE(depth, out.lsbLatency);
        EXPECT_LE(depth, out.lsbLatency + design.weightBits() + 1);
    }
}

TEST(DeadNodes, CompilerEmitsNoDeadHardware)
{
    Rng rng(3);
    const auto v = makeSignedElementSparseMatrix(24, 24, 8, 0.8, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);
    std::vector<NodeId> outputs;
    for (const auto &out : design.outputs())
        outputs.push_back(out.node);
    EXPECT_EQ(countDeadNodes(design.netlist(), outputs), 0u);
}

TEST(DeadNodes, EliminationPreservesBehaviour)
{
    // Hand-build a netlist with an unused adder and check the pruned
    // netlist computes the same stream.
    Netlist nl;
    const auto a = nl.addInput(0);
    const auto b = nl.addInput(1);
    const auto keep = nl.addAdder(a, b);
    nl.addAdder(b, keep); // dead
    nl.addDff(keep);      // dead

    std::vector<NodeId> outputs{keep};
    EXPECT_EQ(countDeadNodes(nl, outputs), 2u);

    const Netlist pruned = eliminateDeadNodes(nl, outputs);
    EXPECT_EQ(pruned.numNodes(), 3u);
    EXPECT_TRUE(validate(pruned).ok);

    // 5 + 6 = 11 through both netlists.
    auto run = [](const Netlist &netlist, NodeId out) {
        Simulator sim(netlist);
        std::int64_t value = 0;
        for (int t = 0; t < 8; ++t) {
            sim.step({static_cast<std::uint8_t>((5 >> t) & 1),
                      static_cast<std::uint8_t>((6 >> t) & 1)});
            if (t >= 1 && sim.outputBit(out))
                value |= std::int64_t{1} << (t - 1);
        }
        return value;
    };
    EXPECT_EQ(run(nl, keep), 11);
    EXPECT_EQ(run(pruned, outputs[0]), 11);
}

TEST(DeadNodes, InputsAreNeverPruned)
{
    Netlist nl;
    nl.addInput(0);
    nl.addInput(1); // unused but part of the interface
    const auto a = nl.addDff(0);
    std::vector<NodeId> outputs{a};
    const Netlist pruned = eliminateDeadNodes(nl, outputs);
    EXPECT_EQ(pruned.numInputPorts(), 2u);
    EXPECT_TRUE(validate(pruned).ok);
}

TEST(DeadNodes, NaiveModeKeepsConstantPaths)
{
    // The naive ablation keeps AND-with-constant structure; everything
    // it builds is still live (it feeds the trees), so dead count is 0
    // even there — the waste is live-but-useless hardware.
    Rng rng(4);
    const auto v = makeSignedElementSparseMatrix(8, 8, 4, 0.9, rng);
    CompileOptions opt;
    opt.constantPropagation = false;
    const auto design = MatrixCompiler(opt).compile(v);
    std::vector<NodeId> outputs;
    for (const auto &out : design.outputs())
        outputs.push_back(out.node);
    EXPECT_EQ(countDeadNodes(design.netlist(), outputs), 0u);
}

} // namespace
