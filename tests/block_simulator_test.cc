/**
 * @file
 * Randomized equivalence suite for the compiled-tape engine: the
 * ExecPlan-driven BlockSimulator must reproduce the interpreter
 * simulators bit for bit — outputs and register toggle counts — at
 * every lane width, across sign modes, signed/unsigned inputs,
 * unaligned (including negative-latency) output columns, and batch
 * sizes that do not divide the lane count.  Every check runs once per
 * SIMD kernel the running CPU supports (scalar plus AVX2/AVX-512/NEON
 * where present), so each dispatch target of circuit::kernels is
 * proved bit-identical to WideSimulator, not just the one the process
 * would auto-select.  This is the proof that multiplyBatchWide's
 * rewrite onto the engine is a pure speedup.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "circuit/block_simulator.h"
#include "circuit/exec_plan.h"
#include "circuit/kernels.h"
#include "circuit/simulator.h"
#include "circuit/wide_simulator.h"
#include "common/rng.h"
#include "core/batch_engine.h"
#include "core/compiler.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;
using core::CompileOptions;
using core::MatrixCompiler;
using core::SimOptions;

/** A netlist exercising every component kind. */
circuit::Netlist
makeKitchenSinkNetlist()
{
    circuit::Netlist nl;
    const auto zero = nl.addConst0();
    const auto one = nl.addConst1();
    const auto a = nl.addInput(0);
    const auto b = nl.addInput(1);
    const auto na = nl.addNot(a);
    const auto ab = nl.addAnd(a, b);
    const auto sum = nl.addAdder(a, b);
    const auto diff = nl.addSub(sum, ab);
    const auto d1 = nl.addDff(diff);
    const auto gated = nl.addAnd(d1, one);
    const auto carryish = nl.addAdder(gated, na);
    nl.addSub(zero, carryish);
    nl.addDelay(carryish, 3);
    return nl;
}

/**
 * Drive a BlockSimulator<W> on one kernel and W independent
 * WideSimulators with the same per-lane-word streams; every node must
 * agree every cycle, and the block toggle total must equal the sum of
 * the per-word totals.
 */
template <unsigned W>
void
checkAgainstWideLanes(std::uint64_t seed,
                      const circuit::kernels::Kernel *kernel)
{
    const auto nl = makeKitchenSinkNetlist();
    const circuit::ExecPlan plan(nl);
    circuit::BlockSimulator<W> block(plan, kernel);
    std::vector<circuit::WideSimulator> wides(W, circuit::WideSimulator(nl));

    Rng rng(seed);
    const int cycles = 50;
    const std::size_t ports = nl.numInputPorts();
    std::vector<std::uint64_t> plane(ports * W);
    for (int t = 0; t < cycles; ++t) {
        for (auto &word : plane)
            word = rng.next();

        block.settle(plane.data(), ports);
        for (unsigned w = 0; w < W; ++w) {
            std::vector<std::uint64_t> words(ports);
            for (std::size_t p = 0; p < ports; ++p)
                words[p] = plane[p * W + w];
            wides[w].step(words);
            for (circuit::NodeId id = 0; id < nl.numNodes(); ++id) {
                ASSERT_EQ(block.outputWord(id, w), wides[w].outputWord(id))
                    << "kernel " << block.kernel().name << " cycle " << t
                    << " word " << w << " node " << id;
            }
        }
        block.commit();
    }

    std::uint64_t wide_toggles = 0;
    for (const auto &wide : wides)
        wide_toggles += wide.toggleCount();
    EXPECT_EQ(block.toggleCount(), wide_toggles)
        << "kernel " << block.kernel().name;
    EXPECT_EQ(block.cycle(), static_cast<std::uint64_t>(cycles));
}

/** Run the wide-lane check at W on every kernel this CPU supports. */
template <unsigned W>
void
checkAgainstWideLanesAllKernels(std::uint64_t seed)
{
    for (const auto *kernel : circuit::kernels::supportedKernels())
        checkAgainstWideLanes<W>(seed, kernel);
}

TEST(BlockSimulator, MatchesWideSimulatorEveryLaneWordW1)
{
    checkAgainstWideLanesAllKernels<1>(11);
}

TEST(BlockSimulator, MatchesWideSimulatorEveryLaneWordW2)
{
    checkAgainstWideLanesAllKernels<2>(12);
}

TEST(BlockSimulator, MatchesWideSimulatorEveryLaneWordW4)
{
    checkAgainstWideLanesAllKernels<4>(13);
}

TEST(BlockSimulator, MatchesWideSimulatorEveryLaneWordW8)
{
    checkAgainstWideLanesAllKernels<8>(14);
}

TEST(BlockSimulator, MatchesScalarSimulatorPerLane)
{
    const auto nl = makeKitchenSinkNetlist();
    const circuit::ExecPlan plan(nl);
    circuit::BlockSimulator<2> block(plan);
    std::vector<circuit::Simulator> scalars;
    const int lanes_checked = 8;
    for (int l = 0; l < lanes_checked; ++l)
        scalars.emplace_back(nl);

    Rng rng(21);
    const std::size_t ports = nl.numInputPorts();
    std::vector<std::uint64_t> plane(ports * 2);
    for (int t = 0; t < 40; ++t) {
        for (auto &word : plane)
            word = rng.next();
        block.settle(plane.data(), ports);

        // Scalars 0..3 track lanes 0..3 of word 0; scalars 4..7 track
        // lanes 0..3 of word 1 (lane indices 64..67 of the block).
        for (int l = 0; l < lanes_checked; ++l) {
            const unsigned w = l < 4 ? 0u : 1u;
            const int lane = l % 4;
            auto &scalar = scalars[static_cast<std::size_t>(l)];
            std::vector<std::uint8_t> bits(ports);
            for (std::size_t p = 0; p < ports; ++p)
                bits[p] = static_cast<std::uint8_t>(
                    (plane[p * 2 + w] >> lane) & 1u);
            scalar.step(bits);
            for (circuit::NodeId id = 0; id < nl.numNodes(); ++id) {
                ASSERT_EQ((block.outputWord(id, w) >> lane) & 1u,
                          scalar.outputBit(id) ? 1u : 0u)
                    << "cycle " << t << " lane " << l << " node " << id;
            }
        }
        block.commit();
    }
}

TEST(BlockSimulator, ResetRestoresPowerOnState)
{
    const auto nl = makeKitchenSinkNetlist();
    const circuit::ExecPlan plan(nl);
    circuit::BlockSimulator<1> sim(plan);

    std::vector<std::uint64_t> ones(nl.numInputPorts(), ~std::uint64_t{0});
    sim.step(ones.data(), ones.size());
    sim.step(ones.data(), ones.size());
    EXPECT_GT(sim.toggleCount(), 0u);

    sim.reset();
    EXPECT_EQ(sim.cycle(), 0u);
    EXPECT_EQ(sim.toggleCount(), 0u);

    // A reset block simulator must track a fresh WideSimulator.
    circuit::WideSimulator wide(nl);
    Rng rng(31);
    for (int t = 0; t < 20; ++t) {
        std::vector<std::uint64_t> words(nl.numInputPorts());
        for (auto &word : words)
            word = rng.next();
        sim.settle(words.data(), words.size());
        wide.step(words);
        for (circuit::NodeId id = 0; id < nl.numNodes(); ++id)
            ASSERT_EQ(sim.outputWord(id, 0), wide.outputWord(id));
        sim.commit();
    }
    EXPECT_EQ(sim.toggleCount(), wide.toggleCount());
}

// ---------------------------------------------------------------------
// End-to-end batch equivalence through CompiledMatrix
// ---------------------------------------------------------------------

/**
 * Compile under the given options and assert scalar, legacy-wide, and
 * tape-engine batch products are identical for awkward batch sizes,
 * every explicit lane width, and a multi-threaded run.
 */
void
checkBatchEquivalence(const IntMatrix &weights, CompileOptions options,
                      std::uint64_t seed)
{
    const auto design = MatrixCompiler(options).compile(weights);
    Rng rng(seed);

    for (const std::size_t batch_rows : {std::size_t{1}, std::size_t{63},
                                         std::size_t{64}, std::size_t{65},
                                         std::size_t{130}}) {
        IntMatrix batch(batch_rows, weights.rows());
        for (std::size_t b = 0; b < batch_rows; ++b)
            for (std::size_t r = 0; r < weights.rows(); ++r)
                batch.at(b, r) =
                    options.inputsSigned
                        ? rng.uniformInt(-(1 << (options.inputBits - 1)),
                                         (1 << (options.inputBits - 1)) - 1)
                        : rng.uniformInt(0, (1 << options.inputBits) - 1);

        const auto scalar = design.multiplyBatch(batch);
        const auto legacy = design.multiplyBatchWideLegacy(batch);
        ASSERT_EQ(scalar, legacy);

        // Every explicit W on every supported kernel, including the
        // widths where a vector kernel falls back to its scalar tail,
        // with activity gating both on (the default) and off.
        for (const unsigned lane_words : {1u, 2u, 4u, 8u}) {
            for (const auto *kernel :
                 circuit::kernels::supportedKernels()) {
                for (const bool gating : {true, false}) {
                    SimOptions sim_options;
                    sim_options.laneWords = lane_words;
                    sim_options.threads = 1;
                    sim_options.kernel = kernel;
                    sim_options.activityGating = gating;
                    ASSERT_EQ(scalar,
                              design.multiplyBatchWide(batch,
                                                       sim_options))
                        << "W=" << lane_words << " batch=" << batch_rows
                        << " kernel=" << kernel->name
                        << " gating=" << gating;
                }
            }
        }

        SimOptions threaded;
        threaded.threads = 4;
        threaded.laneWords = 1; // several groups even for small batches
        ASSERT_EQ(scalar, design.multiplyBatchWide(batch, threaded));

        // Default (auto) knobs.
        ASSERT_EQ(scalar, design.multiplyBatchWide(batch));
    }
}

TEST(BatchEquivalence, PnSplitSignedInputs)
{
    Rng rng(41);
    const auto v = makeSignedElementSparseMatrix(18, 14, 6, 0.5, rng);
    CompileOptions options;
    options.inputBits = 7;
    options.signMode = core::SignMode::PnSplit;
    checkBatchEquivalence(v, options, 141);
}

TEST(BatchEquivalence, CsdUnsignedInputs)
{
    Rng rng(42);
    const auto v = makeSignedElementSparseMatrix(16, 12, 5, 0.4, rng);
    CompileOptions options;
    options.inputBits = 6;
    options.inputsSigned = false;
    options.signMode = core::SignMode::Csd;
    checkBatchEquivalence(v, options, 142);
}

TEST(BatchEquivalence, UnsignedModeNonNegativeMatrix)
{
    Rng rng(43);
    const auto v = makeElementSparseMatrix(15, 11, 4, 0.3, rng);
    CompileOptions options;
    options.inputBits = 5;
    options.inputsSigned = true;
    options.signMode = core::SignMode::Unsigned;
    checkBatchEquivalence(v, options, 143);
}

TEST(BatchEquivalence, UnalignedOutputsWithNegativeLsbLatency)
{
    // A power-of-two column weight doubles an undelayed stream, which
    // drives its lsbLatency negative once output alignment is off.
    IntMatrix v(2, 3);
    v.at(0, 0) = 4;
    v.at(1, 0) = 0;
    v.at(0, 1) = 2;
    v.at(1, 1) = 6;
    v.at(0, 2) = -3;
    v.at(1, 2) = 5;

    CompileOptions options;
    options.inputBits = 6;
    options.alignOutputs = false;
    const auto design = MatrixCompiler(options).compile(v);

    bool has_negative = false;
    for (const auto &out : design.outputs())
        has_negative |=
            out.node != circuit::kNoNode && out.lsbLatency < 0;
    ASSERT_TRUE(has_negative)
        << "workload no longer produces a negative-latency column";

    checkBatchEquivalence(v, options, 144);

    // And the netlist product still matches the reference gemv.
    Rng rng(44);
    const auto a = makeSignedVector(2, 6, rng);
    EXPECT_EQ(design.multiply(a), gemvRef(a, v));
}

TEST(BatchEquivalence, AllZeroColumnsDecodeToZero)
{
    IntMatrix v(3, 4);
    v.at(0, 1) = 3;
    v.at(2, 1) = -2;
    v.at(1, 3) = 7; // columns 0 and 2 are all-zero
    CompileOptions options;
    options.inputBits = 5;
    checkBatchEquivalence(v, options, 145);
}

// ---------------------------------------------------------------------
// Kernel registry and per-kernel primitives
// ---------------------------------------------------------------------

TEST(Kernels, RegistryAlwaysEndsWithScalar)
{
    const auto &kernels = circuit::kernels::supportedKernels();
    ASSERT_FALSE(kernels.empty());
    EXPECT_STREQ(kernels.back()->name, "scalar");
    for (const auto *kernel : kernels) {
        EXPECT_GE(kernel->vectorWords, 1u);
        EXPECT_EQ(circuit::kernels::findKernel(kernel->name), kernel);
    }
    EXPECT_EQ(circuit::kernels::findKernel("no-such-kernel"), nullptr);

    // The dispatched kernel must be one of the supported ones.
    const auto &active = circuit::kernels::activeKernel();
    EXPECT_NE(std::find(kernels.begin(), kernels.end(), &active),
              kernels.end());
}

TEST(Kernels, DispatchPreferenceOrderIsPinned)
{
    // The default dispatch deliberately prefers AVX2 over AVX-512 (the
    // wider kernel measures slower on the Skylake-era servers we
    // benchmark), scalar is always the final fallback, and the
    // process-wide active kernel is the first supported entry unless
    // SPATIAL_KERNEL pins another one.  A stale bench artifact once
    // recorded an avx512 engine row from a machine whose preferred
    // kernel is avx2; this pins the order so dispatch regressions (or
    // silently pinned artifacts) fail loudly.
    const auto &kernels = circuit::kernels::supportedKernels();
    ASSERT_FALSE(kernels.empty());
    EXPECT_STREQ(kernels.back()->name, "scalar");

    int avx2_at = -1;
    int avx512_at = -1;
    int neon_at = -1;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        if (std::string("avx2") == kernels[i]->name)
            avx2_at = static_cast<int>(i);
        else if (std::string("avx512") == kernels[i]->name)
            avx512_at = static_cast<int>(i);
        else if (std::string("neon") == kernels[i]->name)
            neon_at = static_cast<int>(i);
    }
    if (avx2_at >= 0 && avx512_at >= 0) {
        EXPECT_LT(avx2_at, avx512_at)
            << "avx2 must outrank avx512 in the default dispatch";
    }
    if (avx2_at >= 0) {
        EXPECT_EQ(avx2_at, 0) << "avx2, when supported, is preferred";
    }
    if (neon_at >= 0) {
        EXPECT_EQ(neon_at, 0) << "neon leads on AArch64";
    }

    const char *env = std::getenv("SPATIAL_KERNEL");
    if (env == nullptr || *env == '\0') {
        EXPECT_EQ(&circuit::kernels::activeKernel(), kernels.front())
            << "auto dispatch must resolve to the preferred kernel";
    } else {
        EXPECT_EQ(&circuit::kernels::activeKernel(),
                  circuit::kernels::findKernel(env))
            << "SPATIAL_KERNEL must pin the dispatched kernel";
    }
}

TEST(Kernels, TransposeMatchesScalarReferenceAndRoundTrips)
{
    Rng rng(77);
    for (const auto *kernel : circuit::kernels::supportedKernels()) {
        std::uint64_t reference[64];
        std::uint64_t block[64];
        for (int i = 0; i < 64; ++i)
            reference[i] = block[i] = rng.next();

        circuit::kernels::scalarKernel().transpose64(reference);
        kernel->transpose64(block);
        for (int i = 0; i < 64; ++i)
            ASSERT_EQ(block[i], reference[i])
                << "kernel " << kernel->name << " row " << i;

        // A bit-matrix transpose is an involution.
        kernel->transpose64(block);
        kernel->transpose64(block);
        for (int i = 0; i < 64; ++i)
            ASSERT_EQ(block[i], reference[i])
                << "kernel " << kernel->name << " row " << i;
    }
}

// ---------------------------------------------------------------------
// Switching activity on the shared plan
// ---------------------------------------------------------------------

TEST(BatchEquivalence, MeasuredActivityMatchesLegacyWideSimulator)
{
    Rng rng(51);
    const auto v = makeSignedElementSparseMatrix(20, 20, 8, 0.6, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);
    const auto probe = makeSignedBatch(48, 20, 8, rng);

    const double activity = core::measureSwitchingActivity(design, probe);

    // Replicate the seed measurement: one WideSimulator group driven
    // with the same streams.
    circuit::WideSimulator sim(design.netlist());
    const int bwi = design.options().inputBits;
    std::vector<std::uint64_t> words(design.rows(), 0);
    for (std::uint32_t cycle = 0; cycle < design.drainCycles(); ++cycle) {
        for (std::size_t r = 0; r < design.rows(); ++r) {
            std::uint64_t word = 0;
            for (std::size_t l = 0; l < probe.rows(); ++l) {
                const std::int64_t value = probe.at(l, r);
                std::uint64_t bit;
                if (cycle < static_cast<std::uint32_t>(bwi))
                    bit = (static_cast<std::uint64_t>(value) >> cycle) & 1u;
                else
                    bit = value < 0 ? 1u : 0u;
                word |= bit << l;
            }
            words[r] = word;
        }
        sim.step(words);
    }
    EXPECT_DOUBLE_EQ(activity, sim.measuredActivity(probe.rows()));
}

} // namespace
