/**
 * @file
 * Tests of the deterministic fault-injection plan: spec parsing
 * (accepted and rejected grammars), per-site decision streams that
 * replay identically for a fixed seed, the zero-cost inactive fast
 * path, magnitude-parameter defaults, injection counters, and
 * clear() semantics.  The process-wide singleton is shared, so every
 * test clears the plan on entry and exit.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault.h"

namespace
{

using namespace spatial;
using fault::FaultPlan;
using fault::Rule;
using fault::Site;

/** Clears the shared plan around each test body. */
class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultPlan::instance().clear(); }
    void TearDown() override { FaultPlan::instance().clear(); }
};

TEST_F(FaultTest, EmptyPlanIsInactive)
{
    FaultPlan &plan = FaultPlan::instance();
    EXPECT_FALSE(plan.active());
    // The inline helpers must refuse without touching any stream.
    EXPECT_FALSE(fault::injectFault(Site::ServeWorkerStall));
    EXPECT_EQ(fault::injectFaultParam(Site::NetWritePartial), 0u);
    EXPECT_EQ(plan.injectedTotal(), 0u);
}

TEST_F(FaultTest, SiteNamesRoundTrip)
{
    // Every catalog name must parse back to its own site.
    const std::vector<Site> sites = {
        Site::ServeWorkerStall, Site::StoreCompileFail,
        Site::StoreCompileDelay, Site::ColdWriteFail,
        Site::ColdWriteShort,   Site::ColdReadFail,
        Site::ColdReadCorrupt,  Site::NetAcceptDelay,
        Site::NetConnDrop,      Site::NetWritePartial,
        Site::ClientReadStall};
    ASSERT_EQ(sites.size(), fault::kSiteCount);
    FaultPlan &plan = FaultPlan::instance();
    for (const Site site : sites) {
        const std::string spec =
            std::string(fault::siteName(site)) + ":1.0:7";
        std::string error;
        ASSERT_TRUE(plan.configureFromSpec(spec, &error)) << error;
        EXPECT_TRUE(plan.shouldInject(site))
            << fault::siteName(site);
        plan.clear();
    }
}

TEST_F(FaultTest, SpecParsesRateSeedAndParam)
{
    FaultPlan &plan = FaultPlan::instance();
    std::string error;
    ASSERT_TRUE(plan.configureFromSpec(
        "serve.worker:stall:1.0:9:40,net.write:partial:1.0:3",
        &error))
        << error;
    EXPECT_TRUE(plan.active());
    // Explicit param comes back verbatim when the site fires.
    EXPECT_EQ(plan.shouldInjectParam(Site::ServeWorkerStall), 40u);
    // Omitted param falls back to the site default (128 bytes).
    EXPECT_EQ(plan.shouldInjectParam(Site::NetWritePartial), 128u);
}

TEST_F(FaultTest, MalformedSpecsAreRejected)
{
    FaultPlan &plan = FaultPlan::instance();
    const std::vector<std::string> bad = {
        "serve.worker:stall",            // missing rate/seed
        "no.such:site:0.5:1",            // unknown site
        "serve.worker:stall:1.5:1",      // rate out of [0,1]
        "serve.worker:stall:-0.1:1",     // negative rate
        "serve.worker:stall:x:1",        // non-numeric rate
        "serve.worker:stall:0.5:seed",   // non-numeric seed
        "serve.worker:stall:0.5:1:nan",  // non-numeric param
        "serve.worker:stall:0.5:1:2:3",  // too many fields
    };
    for (const std::string &spec : bad) {
        std::string error;
        EXPECT_FALSE(plan.configureFromSpec(spec, &error)) << spec;
        EXPECT_FALSE(error.empty()) << spec;
        plan.clear();
    }
    // Empty entries are tolerated (trailing commas and "").
    std::string error;
    EXPECT_TRUE(plan.configureFromSpec("", &error));
    EXPECT_TRUE(
        plan.configureFromSpec("net.conn:drop:0.5:1,,", &error))
        << error;
}

TEST_F(FaultTest, DecisionStreamIsDeterministic)
{
    FaultPlan &plan = FaultPlan::instance();
    constexpr std::size_t kDraws = 256;
    const Rule rule{0.3, 0xfeedULL, 0};
    std::vector<bool> first;
    plan.configure(Site::NetConnDrop, rule);
    for (std::size_t i = 0; i < kDraws; ++i)
        first.push_back(plan.shouldInject(Site::NetConnDrop));
    // Reconfiguring with the same seed replays the exact sequence.
    plan.clear();
    plan.configure(Site::NetConnDrop, rule);
    for (std::size_t i = 0; i < kDraws; ++i)
        EXPECT_EQ(plan.shouldInject(Site::NetConnDrop), first[i])
            << "draw " << i;
    // A 30% stream over 256 draws fires somewhere in between.
    const std::size_t fired = plan.injected(Site::NetConnDrop);
    EXPECT_GT(fired, 0u);
    EXPECT_LT(fired, kDraws);
}

TEST_F(FaultTest, SitesDrawFromIndependentStreams)
{
    FaultPlan &plan = FaultPlan::instance();
    plan.configure(Site::ColdReadFail, Rule{1.0, 1, 0});
    plan.configure(Site::ColdWriteFail, Rule{0.0, 1, 0});
    for (int i = 0; i < 64; ++i) {
        EXPECT_TRUE(plan.shouldInject(Site::ColdReadFail));
        EXPECT_FALSE(plan.shouldInject(Site::ColdWriteFail));
    }
    EXPECT_EQ(plan.injected(Site::ColdReadFail), 64u);
    EXPECT_EQ(plan.injected(Site::ColdWriteFail), 0u);
    EXPECT_EQ(plan.injectedTotal(), 64u);
}

TEST_F(FaultTest, RateZeroNeverFiresRateOneAlwaysFires)
{
    FaultPlan &plan = FaultPlan::instance();
    plan.configure(Site::StoreCompileFail, Rule{1.0, 42, 0});
    plan.configure(Site::StoreCompileDelay, Rule{0.0, 42, 0});
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(fault::injectFault(Site::StoreCompileFail));
        EXPECT_EQ(fault::injectFaultParam(Site::StoreCompileDelay),
                  0u);
    }
    EXPECT_EQ(plan.injected(Site::StoreCompileFail), 100u);
}

TEST_F(FaultTest, ParamDefaultsArePerSite)
{
    FaultPlan &plan = FaultPlan::instance();
    // Pure pass/fail sites report 1 so callers can treat the return
    // as a boolean; timed sites report their documented default.
    plan.configure(Site::ColdWriteFail, Rule{1.0, 5, 0});
    plan.configure(Site::ServeWorkerStall, Rule{1.0, 5, 0});
    plan.configure(Site::ClientReadStall, Rule{1.0, 5, 0});
    EXPECT_EQ(plan.shouldInjectParam(Site::ColdWriteFail), 1u);
    EXPECT_EQ(plan.shouldInjectParam(Site::ServeWorkerStall), 10u);
    EXPECT_EQ(plan.shouldInjectParam(Site::ClientReadStall), 5u);
}

TEST_F(FaultTest, ClearResetsRulesAndCounters)
{
    FaultPlan &plan = FaultPlan::instance();
    plan.configure(Site::NetAcceptDelay, Rule{1.0, 11, 3});
    EXPECT_TRUE(plan.active());
    EXPECT_EQ(plan.shouldInjectParam(Site::NetAcceptDelay), 3u);
    EXPECT_EQ(plan.injectedTotal(), 1u);
    plan.clear();
    EXPECT_FALSE(plan.active());
    EXPECT_EQ(plan.injected(Site::NetAcceptDelay), 0u);
    EXPECT_EQ(plan.injectedTotal(), 0u);
    EXPECT_FALSE(plan.shouldInject(Site::NetAcceptDelay));
}

} // namespace
