/**
 * @file
 * End-to-end tests of the spatial compiler: every compiled design is
 * simulated cycle-accurately and must reproduce the reference gemv
 * exactly, across dimensions, bitwidths, sparsities, and sign modes.
 */

#include <gtest/gtest.h>

#include <limits>
#include <tuple>

#include "circuit/stats.h"
#include "common/rng.h"
#include "core/compiler.h"
#include "core/latency.h"
#include "matrix/bits.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;
using core::CompileOptions;
using core::CompiledMatrix;
using core::MatrixCompiler;
using core::SignMode;

void
expectMatchesReference(const CompiledMatrix &design, const IntMatrix &weights,
                       const std::vector<std::int64_t> &a)
{
    const auto expected = gemvRef(a, weights);
    const auto got = design.multiply(a);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t c = 0; c < got.size(); ++c)
        ASSERT_EQ(got[c], expected[c]) << "column " << c;
}

TEST(Compiler, TinyHandComputedUnsigned)
{
    // Figure 2b: b = [1 1 0 1], 1-bit weights, one column.
    IntMatrix v(4, 1);
    v.at(0, 0) = 1;
    v.at(1, 0) = 1;
    v.at(2, 0) = 0;
    v.at(3, 0) = 1;

    CompileOptions opt;
    opt.inputBits = 4;
    opt.inputsSigned = false;
    opt.signMode = SignMode::Unsigned;
    const auto design = MatrixCompiler(opt).compile(v);

    expectMatchesReference(design, v, {3, 5, 9, 2});
    // Culling: 3 selected rows need 2 adders; the zero row costs nothing.
    const auto counts = circuit::collectCounts(design.netlist());
    EXPECT_EQ(counts.adders, 2u);
    EXPECT_EQ(counts.ands, 0u);
}

TEST(Compiler, SingleElementMatrix)
{
    IntMatrix v(1, 1);
    v.at(0, 0) = -5;
    CompileOptions opt;
    opt.inputBits = 6;
    const auto design = MatrixCompiler(opt).compile(v);
    expectMatchesReference(design, v, {17});
    expectMatchesReference(design, v, {-32});
    expectMatchesReference(design, v, {0});
}

TEST(Compiler, PowerOfTwoWeightsCompileToPureDelays)
{
    // A matrix of single-bit magnitudes exercises the x2 bookkeeping:
    // no chain adders are needed at all.
    IntMatrix v(2, 2);
    v.at(0, 0) = 4;
    v.at(1, 1) = -8;
    CompileOptions opt;
    opt.inputBits = 5;
    const auto design = MatrixCompiler(opt).compile(v);
    expectMatchesReference(design, v, {9, -12});
    const auto counts = circuit::collectCounts(design.netlist());
    EXPECT_EQ(counts.adders, 0u);
}

TEST(Compiler, AllZeroMatrixProducesZeroOutputs)
{
    IntMatrix v(4, 3);
    CompileOptions opt;
    opt.inputBits = 4;
    const auto design = MatrixCompiler(opt).compile(v);
    const auto out = design.multiply({7, -8, 3, 1});
    for (const auto o : out)
        EXPECT_EQ(o, 0);
}

TEST(Compiler, DenseAllOnesColumnSums)
{
    IntMatrix v(8, 1);
    for (std::size_t r = 0; r < 8; ++r)
        v.at(r, 0) = 1;
    CompileOptions opt;
    opt.inputBits = 8;
    opt.signMode = SignMode::Unsigned;
    opt.inputsSigned = true;
    const auto design = MatrixCompiler(opt).compile(v);
    expectMatchesReference(design, v, {1, -2, 3, -4, 5, -6, 7, -8});
}

TEST(Compiler, UnsignedModeRejectsNegativeWeights)
{
    IntMatrix v(1, 1);
    v.at(0, 0) = -1;
    CompileOptions opt;
    opt.signMode = SignMode::Unsigned;
    EXPECT_DEATH(MatrixCompiler(opt).compile(v), "non-negative");
}

// ---------------------------------------------------------------------
// Property sweep: dimension x weight bits x sparsity x sign mode.
// ---------------------------------------------------------------------

struct SweepParam
{
    std::size_t rows;
    std::size_t cols;
    int weightBits;
    int inputBits;
    double sparsity;
    SignMode mode;
};

std::string
sweepName(const ::testing::TestParamInfo<SweepParam> &info)
{
    const auto &p = info.param;
    std::string s = std::to_string(p.rows) + "x" + std::to_string(p.cols) +
                    "_w" + std::to_string(p.weightBits) + "_i" +
                    std::to_string(p.inputBits) + "_s" +
                    std::to_string(static_cast<int>(p.sparsity * 100)) +
                    "_" + core::signModeName(p.mode);
    return s;
}

class CompilerSweep : public ::testing::TestWithParam<SweepParam>
{};

TEST_P(CompilerSweep, MatchesReferenceGemv)
{
    const auto &p = GetParam();
    Rng rng(1234 + p.rows * 7 + static_cast<std::uint64_t>(p.weightBits));

    const IntMatrix v =
        p.mode == SignMode::Unsigned
            ? makeElementSparseMatrix(p.rows, p.cols, p.weightBits,
                                      p.sparsity, rng)
            : makeSignedElementSparseMatrix(p.rows, p.cols, p.weightBits,
                                            p.sparsity, rng);

    CompileOptions opt;
    opt.inputBits = p.inputBits;
    opt.inputsSigned = true;
    opt.signMode = p.mode;
    const auto design = MatrixCompiler(opt).compile(v);

    for (int trial = 0; trial < 3; ++trial) {
        const auto a = makeSignedVector(p.rows, p.inputBits, rng);
        expectMatchesReference(design, v, a);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CompilerSweep,
    ::testing::Values(
        SweepParam{1, 1, 4, 4, 0.0, SignMode::PnSplit},
        SweepParam{2, 2, 8, 8, 0.0, SignMode::PnSplit},
        SweepParam{3, 5, 8, 8, 0.25, SignMode::PnSplit},
        SweepParam{8, 8, 8, 8, 0.5, SignMode::PnSplit},
        SweepParam{16, 16, 8, 8, 0.75, SignMode::PnSplit},
        SweepParam{33, 17, 6, 5, 0.6, SignMode::PnSplit},
        SweepParam{64, 64, 8, 8, 0.9, SignMode::PnSplit},
        SweepParam{64, 64, 8, 8, 0.98, SignMode::PnSplit},
        SweepParam{128, 32, 4, 10, 0.95, SignMode::PnSplit},
        SweepParam{7, 7, 1, 8, 0.5, SignMode::Unsigned},
        SweepParam{16, 16, 8, 8, 0.5, SignMode::Unsigned},
        SweepParam{31, 9, 12, 4, 0.7, SignMode::Unsigned},
        SweepParam{2, 2, 8, 8, 0.0, SignMode::Csd},
        SweepParam{16, 16, 8, 8, 0.5, SignMode::Csd},
        SweepParam{33, 17, 6, 5, 0.6, SignMode::Csd},
        SweepParam{64, 64, 8, 8, 0.9, SignMode::Csd},
        SweepParam{128, 32, 4, 10, 0.95, SignMode::Csd}),
    sweepName);

// ---------------------------------------------------------------------
// Ablation configurations must stay correct too.
// ---------------------------------------------------------------------

class CompilerAblation
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>>
{};

TEST_P(CompilerAblation, VariantsMatchReference)
{
    const auto [constant_prop, balanced, align] = GetParam();
    Rng rng(77);
    const auto v = makeSignedElementSparseMatrix(12, 10, 6, 0.5, rng);

    CompileOptions opt;
    opt.inputBits = 7;
    opt.constantPropagation = constant_prop;
    opt.balancedTree = balanced;
    opt.alignOutputs = align;
    const auto design = MatrixCompiler(opt).compile(v);

    for (int trial = 0; trial < 3; ++trial) {
        const auto a = makeSignedVector(12, 7, rng);
        expectMatchesReference(design, v, a);
    }
}

INSTANTIATE_TEST_SUITE_P(Knobs, CompilerAblation,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

// ---------------------------------------------------------------------
// Structural expectations.
// ---------------------------------------------------------------------

TEST(CompilerStructure, CostTracksOnesCount)
{
    // The fundamental minimization: adders scale with set bits, and a
    // sparser matrix costs less.
    Rng rng(42);
    const auto dense = makeElementSparseMatrix(32, 32, 8, 0.0, rng);
    const auto sparse = makeElementSparseMatrix(32, 32, 8, 0.9, rng);

    CompileOptions opt;
    opt.signMode = SignMode::Unsigned;
    MatrixCompiler compiler(opt);
    const auto counts_dense =
        circuit::collectCounts(compiler.compile(dense).netlist());
    const auto counts_sparse =
        circuit::collectCounts(compiler.compile(sparse).netlist());

    EXPECT_LT(counts_sparse.adders, counts_dense.adders / 5);
    // Adders are within (ones - cols, ones): each column tree of k leaves
    // uses k-1 adders plus chain links.
    EXPECT_LT(counts_dense.adders, dense.onesCount());
}

TEST(CompilerStructure, NaiveModeCostIndependentOfSparsity)
{
    Rng rng(43);
    const auto dense = makeElementSparseMatrix(16, 16, 6, 0.0, rng);
    const auto sparse = makeElementSparseMatrix(16, 16, 6, 0.9, rng);

    CompileOptions opt;
    opt.signMode = SignMode::Unsigned;
    opt.constantPropagation = false;
    MatrixCompiler compiler(opt);
    const auto counts_dense =
        circuit::collectCounts(compiler.compile(dense).netlist());
    const auto counts_sparse =
        circuit::collectCounts(compiler.compile(sparse).netlist());

    EXPECT_EQ(counts_dense.adders, counts_sparse.adders);
    EXPECT_EQ(counts_dense.ands, counts_sparse.ands);
    EXPECT_EQ(counts_dense.ands, 2u * 16u * 16u * 6u);
}

TEST(CompilerStructure, AlignedOutputsShareLatency)
{
    Rng rng(44);
    const auto v = makeSignedElementSparseMatrix(24, 16, 8, 0.7, rng);
    CompileOptions opt;
    opt.alignOutputs = true;
    const auto design = MatrixCompiler(opt).compile(v);
    std::int32_t latency = -1;
    for (const auto &out : design.outputs()) {
        if (out.node == circuit::kNoNode)
            continue;
        if (latency < 0)
            latency = out.lsbLatency;
        EXPECT_EQ(out.lsbLatency, latency);
    }
}

TEST(CompilerStructure, InputBroadcastFanoutMatchesRowOnes)
{
    // Input r drives one tree leaf per set bit of row r (across P and N).
    Rng rng(45);
    const auto v = makeSignedElementSparseMatrix(8, 8, 8, 0.3, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);
    const auto fan = design.netlist().fanouts();

    for (std::size_t r = 0; r < 8; ++r) {
        std::size_t row_ones = 0;
        for (std::size_t c = 0; c < 8; ++c)
            row_ones += static_cast<std::size_t>(
                popcount64(std::abs(v.at(r, c))));
        // The input node is node r (inputs are created first).
        EXPECT_EQ(fan[r], row_ones) << "row " << r;
    }
}

TEST(CompilerStructure, BatchMultiplyMatchesLoop)
{
    Rng rng(46);
    const auto v = makeSignedElementSparseMatrix(10, 6, 5, 0.4, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);
    const auto batch = makeSignedBatch(4, 10, 8, rng);

    const auto out = design.multiplyBatch(batch);
    for (std::size_t b = 0; b < 4; ++b) {
        std::vector<std::int64_t> a(10);
        for (std::size_t r = 0; r < 10; ++r)
            a[r] = batch.at(b, r);
        const auto expected = gemvRef(a, v);
        for (std::size_t c = 0; c < 6; ++c)
            EXPECT_EQ(out.at(b, c), expected[c]);
    }
}

TEST(CompilerStructure, ExtremeValuesNoOverflow)
{
    // All-max weights and inputs: the captured width must still hold the
    // exact result.
    const std::size_t rows = 16;
    IntMatrix v(rows, 2);
    for (std::size_t r = 0; r < rows; ++r) {
        v.at(r, 0) = 127;
        v.at(r, 1) = -128;
    }
    CompileOptions opt;
    opt.inputBits = 8;
    const auto design = MatrixCompiler(opt).compile(v);
    std::vector<std::int64_t> a(rows, -128);
    expectMatchesReference(design, v, a);
    std::vector<std::int64_t> b(rows, 127);
    expectMatchesReference(design, v, b);
}

// ---------------------------------------------------------------------
// Non-fatal precondition checking (the network registration path)
// ---------------------------------------------------------------------

TEST(CompilerCheck, AcceptsEverythingCompileAccepts)
{
    Rng rng(23);
    for (const SignMode mode :
         {SignMode::Unsigned, SignMode::PnSplit, SignMode::Csd}) {
        CompileOptions opt;
        opt.inputBits = 8;
        opt.signMode = mode;
        const IntMatrix v =
            mode == SignMode::Unsigned
                ? makeElementSparseMatrix(24, 16, 6, 0.8, rng)
                : makeSignedElementSparseMatrix(24, 16, 6, 0.8, rng);
        EXPECT_EQ(MatrixCompiler::checkCompile(opt, v), nullptr);
        // checkCompile passing means compile() must not fatal.
        (void)MatrixCompiler(opt).compile(v);
    }
}

TEST(CompilerCheck, RejectsEveryFatalPrecondition)
{
    Rng rng(24);
    const IntMatrix v = makeSignedElementSparseMatrix(16, 8, 6, 0.8, rng);
    {
        CompileOptions opt;
        opt.inputBits = 33;
        EXPECT_NE(MatrixCompiler::checkCompile(opt, v), nullptr);
    }
    {
        CompileOptions opt;
        opt.inputBits = 0;
        EXPECT_NE(MatrixCompiler::checkCompile(opt, v), nullptr);
    }
    {
        CompileOptions opt;
        opt.extraOutputBits = -1;
        EXPECT_NE(MatrixCompiler::checkCompile(opt, v), nullptr);
    }
    {
        // Output width past the 62-bit capture bound.
        CompileOptions opt;
        opt.inputBits = 8;
        opt.extraOutputBits = 50;
        EXPECT_NE(MatrixCompiler::checkCompile(opt, v), nullptr);
    }
    {
        CompileOptions opt;
        EXPECT_NE(MatrixCompiler::checkCompile(opt, IntMatrix(0, 0)),
                  nullptr);
    }
    {
        CompileOptions opt;
        opt.signMode = SignMode::Unsigned;
        IntMatrix negative = v;
        negative.at(0, 0) = -3;
        EXPECT_NE(MatrixCompiler::checkCompile(opt, negative), nullptr);
    }
}

TEST(CompilerCheck, ExtremeWeightMagnitudesRejectedWithoutOverflow)
{
    // Magnitudes the split transforms themselves cannot safely touch
    // (INT64_MIN has no int64 negation; 61+-bit values overflow the
    // CSD domain).  checkCompile must reject them on the magnitude
    // bound without undefined behavior, in every sign mode.
    for (const SignMode mode :
         {SignMode::PnSplit, SignMode::Csd, SignMode::Unsigned}) {
        for (const std::int64_t w :
             {std::numeric_limits<std::int64_t>::min(),
              std::numeric_limits<std::int64_t>::max(),
              std::int64_t{1} << 61}) {
            if (mode == SignMode::Unsigned && w < 0)
                continue;
            CompileOptions opt;
            opt.inputBits = 1;
            opt.signMode = mode;
            IntMatrix big(1, 1);
            big.at(0, 0) = w;
            EXPECT_NE(MatrixCompiler::checkCompile(opt, big), nullptr)
                << "mode " << core::signModeName(mode) << " weight "
                << w;
        }
    }
}

TEST(CompilerCheck, WidthBoundIsExactPerSignMode)
{
    // The output-width check must use the sign-mode-specific compiled
    // weight bitwidth: CSD can carry one bit more than the PN split
    // (e.g. all-ones values become +2^b - 1).  Pick a width where that
    // single bit is the difference between fitting and fatal.
    IntMatrix ones(1, 1);
    ones.at(0, 0) = (std::int64_t{1} << 40) - 1; // 40 bits, 41 as CSD
    CompileOptions opt;
    opt.inputBits = 21; // 21 + 40 + 0 + 1 + 0 = 62 <= 62 for PN
    opt.signMode = SignMode::PnSplit;
    EXPECT_EQ(MatrixCompiler::checkCompile(opt, ones), nullptr);
    (void)MatrixCompiler(opt).compile(ones);

    opt.signMode = SignMode::Csd; // 21 + 41 + 0 + 1 + 0 = 63 > 62
    EXPECT_NE(MatrixCompiler::checkCompile(opt, ones), nullptr);
    opt.inputBits = 20; // 20 + 41 + 0 + 1 + 0 = 62: fits again
    EXPECT_EQ(MatrixCompiler::checkCompile(opt, ones), nullptr);
    (void)MatrixCompiler(opt).compile(ones);
}

} // namespace
