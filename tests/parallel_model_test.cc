/**
 * @file
 * Tests of the bit-parallel alternative cost model: word-width scaling
 * versus the bit-serial design, latency advantage, and edge cases.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/compiler.h"
#include "matrix/csr.h"
#include "fpga/parallel_model.h"
#include "fpga/report.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;

TEST(ParallelModel, AreaScalesByRoughlyWordWidth)
{
    Rng rng(1);
    const auto v = makeSignedElementSparseMatrix(128, 128, 8, 0.9, rng);
    const auto serial = fpga::evaluateDesign(
        core::MatrixCompiler(core::CompileOptions{}).compile(v));
    const auto csr = CsrMatrix<std::int64_t>::fromDense(v);
    const auto parallel = fpga::estimateBitParallel(
        128, 128, csr.nnz(), v.onesCount(), 8, 8);

    const double ratio =
        static_cast<double>(parallel.resources.luts) /
        static_cast<double>(serial.resources.luts);
    EXPECT_GT(ratio, 10.0);
    EXPECT_LT(ratio, 1.5 * static_cast<double>(parallel.wordWidth));
}

TEST(ParallelModel, LatencyBeatsSerialCycles)
{
    Rng rng(2);
    const auto v = makeSignedElementSparseMatrix(256, 256, 8, 0.9, rng);
    const auto serial = fpga::evaluateDesign(
        core::MatrixCompiler(core::CompileOptions{}).compile(v));
    const auto csr = CsrMatrix<std::int64_t>::fromDense(v);
    const auto parallel = fpga::estimateBitParallel(
        256, 256, csr.nnz(), v.onesCount(), 8, 8);
    EXPECT_LT(parallel.latencyCycles, serial.latencyCycles);
}

TEST(ParallelModel, WordWidthCoversAccumulation)
{
    const auto est = fpga::estimateBitParallel(1024, 1024, 1000, 4000,
                                               8, 8);
    EXPECT_EQ(est.wordWidth, 8u + 8u + 10u);
}

TEST(ParallelModel, DegenerateShapes)
{
    // All-zero matrix: no adders, only I/O.
    const auto empty = fpga::estimateBitParallel(16, 16, 0, 0, 8, 8);
    EXPECT_EQ(empty.resources.luts, 0u);
    EXPECT_EQ(empty.resources.lutrams, 32u);

    // Single power-of-two weight: no multiplier adds, no tree adds.
    const auto single = fpga::estimateBitParallel(16, 16, 1, 1, 8, 8);
    EXPECT_EQ(single.resources.luts, 0u);
}

TEST(ParallelModel, MoreOnesMoreArea)
{
    const auto sparse = fpga::estimateBitParallel(64, 64, 400, 1600, 8, 8);
    const auto dense = fpga::estimateBitParallel(64, 64, 4000, 16000, 8, 8);
    EXPECT_GT(dense.resources.luts, sparse.resources.luts);
}

} // namespace
