/**
 * @file
 * Tests of the Section VIII CGRA projection: transistor accounting,
 * the ~32x LUT-to-full-adder density argument, pipeline-reconfiguration
 * economics for dynamic matrices.
 */

#include <gtest/gtest.h>

#include "cgra/cgra.h"
#include "common/rng.h"
#include "core/compiler.h"
#include "fpga/report.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;
using core::CompileOptions;
using core::MatrixCompiler;

struct Projected
{
    core::CompiledMatrix design;
    fpga::DesignPoint fpgaPoint;
    cgra::CgraPoint cgraPoint;
};

Projected
project(std::size_t dim, double sparsity, std::uint64_t seed)
{
    Rng rng(seed);
    const auto v =
        makeSignedElementSparseMatrix(dim, dim, 8, sparsity, rng);
    Projected out{MatrixCompiler(CompileOptions{}).compile(v), {}, {}};
    out.fpgaPoint = fpga::evaluateDesign(out.design);
    out.cgraPoint = cgra::projectDesign(out.design, out.fpgaPoint);
    return out;
}

TEST(Cgra, TransistorBudgetIsPositiveAndConsistent)
{
    const auto p = project(32, 0.8, 1);
    EXPECT_GT(p.cgraPoint.cells, 0u);
    EXPECT_GT(p.cgraPoint.transistors, 0.0);
    EXPECT_GT(p.cgraPoint.fpgaTransistors, p.cgraPoint.transistors);
}

TEST(Cgra, DensityAdvantageNearPaperArgument)
{
    // A LUT costs 512T vs <=16T for a full adder (32x).  With config
    // SRAM and registers charged to both sides, the paper's density
    // argument lands in the mid single digits to tens.
    const auto p = project(64, 0.5, 2);
    EXPECT_GT(p.cgraPoint.densityAdvantage, 3.0);
    EXPECT_LT(p.cgraPoint.densityAdvantage, 32.0);
}

TEST(Cgra, FasterClockMeansLowerLatency)
{
    // Large designs: the FPGA drops to ~225 MHz while the CGRA's
    // pipelined interconnect holds its clock.
    const auto p = project(256, 0.5, 3);
    EXPECT_GT(p.fpgaPoint.fmaxMhz, 0.0);
    EXPECT_EQ(p.cgraPoint.latencyCycles, p.fpgaPoint.latencyCycles);
    if (p.cgraPoint.clockMhz > p.fpgaPoint.fmaxMhz)
        EXPECT_LT(p.cgraPoint.latencyNs, p.fpgaPoint.latencyNs);
}

TEST(Cgra, PipelineReconfigBeatsFpgaByOrders)
{
    const auto p = project(32, 0.8, 4);
    EXPECT_LT(p.cgraPoint.reconfigNs, 100.0);          // ~a cycle
    EXPECT_GT(p.cgraPoint.fpgaReconfigNs, 1.0e8);      // 200 ms
}

TEST(Cgra, DynamicMatrixEconomics)
{
    // With a fresh matrix every multiply, the FPGA is hopeless (200 ms
    // per product); the CGRA stays within a few cycles of its static
    // latency.  With millions of multiplies per matrix, both converge
    // to their compute latency.
    const auto p = project(64, 0.9, 5);

    const double fpga_dynamic =
        cgra::sustainedNsPerMultiply(p.cgraPoint, 1, true);
    const double cgra_dynamic =
        cgra::sustainedNsPerMultiply(p.cgraPoint, 1, false);
    EXPECT_GT(fpga_dynamic / cgra_dynamic, 1.0e5);

    const double fpga_static =
        cgra::sustainedNsPerMultiply(p.cgraPoint, 100'000'000, true);
    EXPECT_NEAR(fpga_static, p.cgraPoint.fpgaLatencyNs,
                p.cgraPoint.fpgaLatencyNs * 0.1);
    const double cgra_static =
        cgra::sustainedNsPerMultiply(p.cgraPoint, 100'000'000, false);
    EXPECT_NEAR(cgra_static, p.cgraPoint.latencyNs, 1e-6);
}

TEST(Cgra, CustomConfigRespected)
{
    Rng rng(6);
    const auto v = makeSignedElementSparseMatrix(16, 16, 8, 0.5, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);
    const auto fpga_point = fpga::evaluateDesign(design);

    cgra::CgraConfig config;
    config.clockMhz = 1500.0;
    config.transistorsPerFullAdder = 10.0;
    const auto point = cgra::projectDesign(design, fpga_point, config);
    EXPECT_DOUBLE_EQ(point.clockMhz, 1500.0);

    cgra::CgraConfig slow = config;
    slow.clockMhz = 500.0;
    const auto slow_point = cgra::projectDesign(design, fpga_point, slow);
    EXPECT_NEAR(slow_point.latencyNs / point.latencyNs, 3.0, 1e-9);
}

TEST(Cgra, TransistorsScaleWithOnes)
{
    const auto sparse = project(48, 0.95, 7);
    const auto dense = project(48, 0.3, 7);
    EXPECT_GT(dense.cgraPoint.transistors,
              3.0 * sparse.cgraPoint.transistors);
}

} // namespace
