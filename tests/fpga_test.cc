/**
 * @file
 * Tests of the FPGA substrate: technology mapping rules, the closed-form
 * area model against the mapper, SLR spanning, the Fmax bands of Figure
 * 11, and the power model's Figure-12 behaviour.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/compiler.h"
#include "core/latency.h"
#include "fpga/area_model.h"
#include "fpga/device.h"
#include "fpga/freq_model.h"
#include "fpga/power_model.h"
#include "fpga/report.h"
#include "fpga/tech_mapper.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;
using core::CompileOptions;
using core::MatrixCompiler;
using core::SignMode;

TEST(TechMapper, AdderCostsOneLutTwoFfs)
{
    circuit::Netlist nl;
    const auto a = nl.addInput(0);
    const auto b = nl.addInput(1);
    nl.addAdder(a, b);
    fpga::MapperOptions opt;
    opt.includeWrapper = false;
    const auto mapped = fpga::mapDesign(nl, 1, 8, 8, opt);
    EXPECT_EQ(mapped.arithmetic.luts, 1u);
    EXPECT_EQ(mapped.arithmetic.ffs, 2u);
    EXPECT_EQ(mapped.total.lutrams, 0u);
}

TEST(TechMapper, SubtractorCountsAsArithmetic)
{
    circuit::Netlist nl;
    const auto a = nl.addInput(0);
    const auto b = nl.addInput(1);
    nl.addSub(a, b);
    fpga::MapperOptions opt;
    opt.includeWrapper = false;
    const auto mapped = fpga::mapDesign(nl, 1, 8, 8, opt);
    EXPECT_EQ(mapped.total.luts, 1u);
    EXPECT_EQ(mapped.total.ffs, 2u);
}

TEST(TechMapper, ShortDelayChainsStayAsFlipFlops)
{
    circuit::Netlist nl;
    const auto a = nl.addInput(0);
    nl.addDelay(a, 2);
    fpga::MapperOptions opt;
    opt.includeWrapper = false;
    const auto mapped = fpga::mapDesign(nl, 1, 8, 8, opt);
    EXPECT_EQ(mapped.delays.ffs, 2u);
    EXPECT_EQ(mapped.delays.lutrams, 0u);
}

TEST(TechMapper, LongDelayChainsBecomeSrls)
{
    circuit::Netlist nl;
    const auto a = nl.addInput(0);
    nl.addDelay(a, 10);
    fpga::MapperOptions opt;
    opt.includeWrapper = false;
    const auto mapped = fpga::mapDesign(nl, 1, 8, 8, opt);
    EXPECT_EQ(mapped.delays.lutrams, 1u);
    EXPECT_EQ(mapped.delays.ffs, 1u); // SRL output register
}

TEST(TechMapper, VeryLongChainsNeedMultipleSrls)
{
    circuit::Netlist nl;
    const auto a = nl.addInput(0);
    nl.addDelay(a, 70); // 3 SRL32s
    fpga::MapperOptions opt;
    opt.includeWrapper = false;
    const auto mapped = fpga::mapDesign(nl, 1, 8, 8, opt);
    EXPECT_EQ(mapped.delays.lutrams, 3u);
}

TEST(TechMapper, BranchedDelayChainsSplitAtFanout)
{
    // a -> d1 -> d2, with d1 also feeding an adder: the chain cannot be
    // folded into one SRL past d1.
    circuit::Netlist nl;
    const auto a = nl.addInput(0);
    const auto d1 = nl.addDff(a);
    const auto d2 = nl.addDff(d1);
    const auto d3 = nl.addDff(d2);
    nl.addAdder(d1, d3);
    fpga::MapperOptions opt;
    opt.srlThreshold = 2;
    opt.includeWrapper = false;
    const auto mapped = fpga::mapDesign(nl, 1, 8, 8, opt);
    // d1 is a chain of 1 (FF); d2-d3 is a chain of 2 (SRL at threshold 2).
    EXPECT_EQ(mapped.delays.lutrams, 1u);
    EXPECT_EQ(mapped.delays.ffs, 2u); // d1 + SRL output reg
}

TEST(TechMapper, WrapperAddsIoShiftRegisters)
{
    circuit::Netlist nl;
    nl.addInput(0);
    nl.addInput(1);
    nl.addInput(2);
    const auto mapped = fpga::mapDesign(nl, 5, 8, 30, {});
    EXPECT_EQ(mapped.wrapper.lutrams, 3u * 1u + 5u * 1u);
    EXPECT_GT(mapped.wrapper.luts, 0u);
}

TEST(TechMapper, NaiveGatesAreLuts)
{
    circuit::Netlist nl;
    const auto a = nl.addInput(0);
    const auto one = nl.addConst1();
    nl.addAnd(a, one);
    nl.addNot(a);
    fpga::MapperOptions opt;
    opt.includeWrapper = false;
    const auto mapped = fpga::mapDesign(nl, 1, 8, 8, opt);
    EXPECT_EQ(mapped.gates.luts, 2u);
}

TEST(AreaModel, TracksMapperWithinTolerance)
{
    // The closed-form model (LUTs ~ ones, FFs ~ 2x) must agree with the
    // real mapper within ~25% for realistic designs.
    Rng rng(1);
    const auto v = makeSignedElementSparseMatrix(128, 128, 8, 0.8, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);
    const auto point = fpga::evaluateDesign(design);
    const auto est = fpga::estimateFromOnes(design.weightOnes(), 128, 128);

    const double lut_ratio = static_cast<double>(point.resources.luts) /
                             static_cast<double>(est.luts);
    EXPECT_GT(lut_ratio, 0.75);
    EXPECT_LT(lut_ratio, 1.25);

    const double ff_ratio = static_cast<double>(point.resources.ffs) /
                            static_cast<double>(est.ffs);
    EXPECT_GT(ff_ratio, 0.75);
    EXPECT_LT(ff_ratio, 1.35);
}

TEST(AreaModel, ExpectedOnesFormula)
{
    // 1024x1024, 8-bit, 60% sparse: ~1024*1024*0.4*4 ~ 1.7M ones; the
    // paper quotes "up to 1.5M ones ... 1024x1024 eight-bit ... at a
    // sparsity of 60%" (CSD brings the count down).
    const double ones = fpga::expectedOnes(1024, 1024, 8, 0.6);
    EXPECT_NEAR(ones, 1024.0 * 1024.0 * 0.4 * 4.0, 1.0);
}

TEST(FreqModel, SlrSpanBoundaries)
{
    EXPECT_EQ(fpga::slrSpan(1000), 1);
    EXPECT_EQ(fpga::slrSpan(425'000), 1);
    EXPECT_EQ(fpga::slrSpan(425'001), 2);
    EXPECT_EQ(fpga::slrSpan(850'001), 3);
    EXPECT_EQ(fpga::slrSpan(1'700'000), 4);
}

TEST(FreqModel, BandsMatchFigureEleven)
{
    // Small single-SLR designs approach 597 MHz; full single SLR ~445;
    // two-SLR designs in 296-400; beyond two SLRs 225-250.
    fpga::FpgaResources tiny{10'000, 20'000, 100};
    EXPECT_GT(fpga::fmaxMhz(tiny, 32), 550.0);

    fpga::FpgaResources full_slr{400'000, 800'000, 100};
    const double f1 = fpga::fmaxMhz(full_slr, 32);
    EXPECT_GT(f1, 440.0);
    EXPECT_LT(f1, 500.0);

    fpga::FpgaResources two_slr{700'000, 1'400'000, 100};
    const double f2 = fpga::fmaxMhz(two_slr, 32);
    EXPECT_GT(f2, 296.0 - 1.0);
    EXPECT_LT(f2, 400.0 + 1.0);

    fpga::FpgaResources four_slr{1'500'000, 3'000'000, 100};
    const double f4 = fpga::fmaxMhz(four_slr, 32);
    EXPECT_GT(f4, 225.0 - 1.0);
    EXPECT_LT(f4, 250.0 + 1.0);
}

TEST(FreqModel, FrequencyMonotonicallyDegradesWithSize)
{
    // Non-increasing across sizes (designs can saturate at a band edge),
    // with a clear overall decline.
    double prev = 1e9;
    double first = 0.0, last = 0.0;
    for (const std::size_t luts :
         {50'000ul, 200'000ul, 400'000ul, 600'000ul, 900'000ul,
          1'300'000ul, 1'700'000ul}) {
        fpga::FpgaResources res{luts, 2 * luts, 1000};
        const double f = fpga::fmaxMhz(res, 256);
        EXPECT_LE(f, prev) << "luts " << luts;
        if (first == 0.0)
            first = f;
        last = f;
        prev = f;
    }
    EXPECT_LT(last, 0.5 * first);
}

TEST(FreqModel, FanoutPenaltyAppliesAboveThreshold)
{
    fpga::FpgaResources res{100'000, 200'000, 100};
    const double low = fpga::fmaxMhz(res, 64);
    const double high = fpga::fmaxMhz(res, 4096);
    EXPECT_LT(high, low);
    EXPECT_GT(high, 0.7 * low); // penalty is percent-scale, not cliff
}

TEST(FreqModel, FitsDevice)
{
    EXPECT_TRUE(fpga::fitsDevice({1'000'000, 2'000'000, 10'000}));
    EXPECT_FALSE(fpga::fitsDevice({1'800'000, 2'000'000, 0}));
    EXPECT_FALSE(fpga::fitsDevice({1'000'000, 3'500'000, 0}));
}

TEST(PowerModel, ApproachesThermalLimitAtFullDevice)
{
    // "we approach [150 W] at high dimension and low sparsity".
    fpga::FpgaResources res{1'500'000, 3'000'000, 2048};
    const double watts = fpga::powerWatts(res, 225.0);
    EXPECT_GT(watts, 110.0);
    EXPECT_LT(watts, 160.0);
}

TEST(PowerModel, SmallDesignsAreCheap)
{
    fpga::FpgaResources res{8'000, 16'000, 130};
    const double watts = fpga::powerWatts(res, 597.0);
    EXPECT_GT(watts, 4.5);
    EXPECT_LT(watts, 15.0);
}

TEST(PowerModel, ScalesWithFrequency)
{
    fpga::FpgaResources res{200'000, 400'000, 1000};
    const double slow = fpga::powerWatts(res, 100.0);
    const double fast = fpga::powerWatts(res, 400.0);
    EXPECT_GT(fast, slow);
    // Dynamic component is linear in f.
    const double static_w = fpga::PowerCoefficients{}.staticWatts;
    EXPECT_NEAR((fast - static_w) / (slow - static_w), 4.0, 1e-9);
}

TEST(PowerModel, ThermalLimitPredicate)
{
    EXPECT_TRUE(fpga::exceedsThermalLimit(151.0));
    EXPECT_FALSE(fpga::exceedsThermalLimit(149.0));
}

TEST(Report, EndToEndDesignPoint)
{
    Rng rng(7);
    const auto v = makeSignedElementSparseMatrix(64, 64, 8, 0.9, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);
    const auto point = fpga::evaluateDesign(design);

    EXPECT_EQ(point.rows, 64u);
    EXPECT_EQ(point.cols, 64u);
    EXPECT_EQ(point.ones, design.weightOnes());
    EXPECT_EQ(point.slrs, 1);
    EXPECT_TRUE(point.fits);
    EXPECT_GT(point.fmaxMhz, 400.0);
    EXPECT_EQ(point.latencyCycles, core::eq5Cycles(8, design.weightBits(),
                                                   64));
    EXPECT_GT(point.latencyNs, 0.0);
    EXPECT_GT(point.powerWatts, 0.0);

    // Batch latency is linear in batch size.
    const double b1 = point.batchLatencyNs(1);
    const double b4 = point.batchLatencyNs(4);
    const double b8 = point.batchLatencyNs(8);
    EXPECT_NEAR(b8 - b4, (b4 - b1) * 4.0 / 3.0, 1e-6);
}

TEST(Report, CsdReducesResourcesVsPn)
{
    Rng rng(9);
    const auto v = makeSignedElementSparseMatrix(64, 64, 8, 0.5, rng);

    CompileOptions pn_opt;
    pn_opt.signMode = SignMode::PnSplit;
    CompileOptions csd_opt;
    csd_opt.signMode = SignMode::Csd;

    const auto pn_point =
        fpga::evaluateDesign(MatrixCompiler(pn_opt).compile(v));
    const auto csd_point =
        fpga::evaluateDesign(MatrixCompiler(csd_opt).compile(v));

    EXPECT_LT(csd_point.ones, pn_point.ones);
    EXPECT_LT(csd_point.resources.luts, pn_point.resources.luts);
    // Section V: ~17% logic reduction for uniform 8-bit data.
    const double reduction =
        1.0 - static_cast<double>(csd_point.ones) /
                  static_cast<double>(pn_point.ones);
    EXPECT_GT(reduction, 0.10);
    EXPECT_LT(reduction, 0.25);
}

} // namespace
