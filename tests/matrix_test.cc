/**
 * @file
 * Tests for the matrix substrate: dense storage, CSR, generators,
 * PN split, and quantization.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/rng.h"
#include "matrix/bits.h"
#include "matrix/csr.h"
#include "matrix/dense.h"
#include "matrix/generate.h"
#include "matrix/pn_split.h"
#include "matrix/quantize.h"

namespace
{

using namespace spatial;

TEST(Bits, Popcount)
{
    EXPECT_EQ(popcount64(0), 0);
    EXPECT_EQ(popcount64(1), 1);
    EXPECT_EQ(popcount64(0xff), 8);
    EXPECT_EQ(popcount64(0b1010101), 4);
}

TEST(Bits, BitWidth)
{
    EXPECT_EQ(bitWidth(0), 0);
    EXPECT_EQ(bitWidth(1), 1);
    EXPECT_EQ(bitWidth(2), 2);
    EXPECT_EQ(bitWidth(255), 8);
    EXPECT_EQ(bitWidth(256), 9);
}

TEST(Bits, BitAt)
{
    EXPECT_TRUE(bitAt(0b101, 0));
    EXPECT_FALSE(bitAt(0b101, 1));
    EXPECT_TRUE(bitAt(0b101, 2));
}

TEST(Bits, SignedRanges)
{
    EXPECT_EQ(maxUnsigned(8), 255);
    EXPECT_EQ(maxSigned(8), 127);
    EXPECT_EQ(minSigned(8), -128);
    EXPECT_EQ(maxSigned(1), 0);
    EXPECT_EQ(minSigned(1), -1);
}

TEST(IntMatrix, BasicAccess)
{
    IntMatrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    m.at(1, 2) = -7;
    EXPECT_EQ(m.at(1, 2), -7);
    EXPECT_EQ(m.at(0, 0), 0);
}

TEST(IntMatrix, CountsAndSparsity)
{
    IntMatrix m(2, 2);
    m.at(0, 0) = 3;  // 2 ones
    m.at(1, 1) = -4; // 1 one (|-4| = 100b)
    EXPECT_EQ(m.nonZeroCount(), 2u);
    EXPECT_DOUBLE_EQ(m.elementSparsity(), 0.5);
    EXPECT_EQ(m.onesCount(), 3u);
    EXPECT_DOUBLE_EQ(m.bitSparsity(4), 1.0 - 3.0 / 16.0);
    EXPECT_EQ(m.maxAbs(), 4);
    EXPECT_FALSE(m.isNonNegative());
}

TEST(IntMatrix, GemvRefMatchesHandComputed)
{
    // o = a^T V with V 2x3.
    IntMatrix v(2, 3);
    v.at(0, 0) = 1;
    v.at(0, 1) = -2;
    v.at(0, 2) = 3;
    v.at(1, 0) = 4;
    v.at(1, 1) = 5;
    v.at(1, 2) = -6;
    const std::vector<std::int64_t> a{2, -1};
    const auto o = gemvRef(a, v);
    ASSERT_EQ(o.size(), 3u);
    EXPECT_EQ(o[0], 2 * 1 + -1 * 4);
    EXPECT_EQ(o[1], 2 * -2 + -1 * 5);
    EXPECT_EQ(o[2], 2 * 3 + -1 * -6);
}

TEST(Csr, RoundTripAndGemv)
{
    Rng rng(1);
    const auto dense = makeSignedElementSparseMatrix(17, 23, 8, 0.8, rng);
    const auto csr = CsrMatrix<std::int64_t>::fromDense(dense);
    EXPECT_EQ(csr.nnz(), dense.nonZeroCount());
    EXPECT_EQ(csr.toDenseInt(), dense);

    const auto a = makeSignedVector(17, 8, rng);
    EXPECT_EQ(csr.multiplyLeft(a), gemvRef(a, dense));
}

TEST(Csr, EmptyMatrix)
{
    const IntMatrix dense(3, 4);
    const auto csr = CsrMatrix<std::int64_t>::fromDense(dense);
    EXPECT_EQ(csr.nnz(), 0u);
    const std::vector<std::int64_t> a{1, 2, 3};
    const auto o = csr.multiplyLeft(a);
    for (const auto v : o)
        EXPECT_EQ(v, 0);
}

TEST(Generate, BitSparseExtremes)
{
    Rng rng(2);
    const auto all_set = makeBitSparseMatrix(8, 8, 8, 0.0, rng);
    EXPECT_EQ(all_set.onesCount(), 8u * 8u * 8u);
    const auto none_set = makeBitSparseMatrix(8, 8, 8, 1.0, rng);
    EXPECT_EQ(none_set.onesCount(), 0u);
}

TEST(Generate, BitSparseDensityTracksParameter)
{
    Rng rng(3);
    const auto m = makeBitSparseMatrix(64, 64, 8, 0.75, rng);
    EXPECT_NEAR(m.bitSparsity(8), 0.75, 0.02);
}

TEST(Generate, BitSparseValuesWithinWidth)
{
    Rng rng(4);
    const auto m = makeBitSparseMatrix(16, 16, 5, 0.5, rng);
    EXPECT_LE(m.maxAbs(), maxUnsigned(5));
    EXPECT_TRUE(m.isNonNegative());
}

TEST(Generate, ElementSparseHitsExactSparsity)
{
    Rng rng(5);
    const auto m = makeElementSparseMatrix(40, 50, 8, 0.35, rng);
    const auto zeros = 40u * 50u - m.nonZeroCount();
    EXPECT_EQ(zeros, static_cast<std::size_t>(40 * 50 * 0.35 + 0.5));
}

TEST(Generate, ElementSparseIsHalfBitSparse)
{
    // Uniform values over the full range are ~50% bit-sparse before
    // element zeroing (Section IV).
    Rng rng(6);
    const auto m = makeElementSparseMatrix(64, 64, 8, 0.0, rng);
    EXPECT_NEAR(m.bitSparsity(8), 0.5, 0.02);
}

TEST(Generate, SignedElementSparseRangeAndSparsity)
{
    Rng rng(7);
    const auto m = makeSignedElementSparseMatrix(32, 32, 8, 0.9, rng);
    EXPECT_GE(m.maxAbs(), 1);
    EXPECT_LE(m.maxAbs(), 128);
    EXPECT_NEAR(m.elementSparsity(), 0.9, 0.01);
    bool any_negative = false;
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            any_negative |= m.at(r, c) < 0;
    EXPECT_TRUE(any_negative);
}

TEST(Generate, VectorsRespectRanges)
{
    Rng rng(8);
    const auto u = makeUnsignedVector(1000, 6, rng);
    for (const auto v : u) {
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 63);
    }
    const auto s = makeSignedVector(1000, 6, rng);
    bool any_negative = false;
    for (const auto v : s) {
        EXPECT_GE(v, -32);
        EXPECT_LE(v, 31);
        any_negative |= v < 0;
    }
    EXPECT_TRUE(any_negative);
}

TEST(Generate, DeterministicForSeed)
{
    Rng a(123), b(123);
    const auto m1 = makeSignedElementSparseMatrix(16, 16, 8, 0.5, a);
    const auto m2 = makeSignedElementSparseMatrix(16, 16, 8, 0.5, b);
    EXPECT_EQ(m1, m2);
}

TEST(PnSplit, ReconstructsAndConservesOnes)
{
    Rng rng(9);
    const auto v = makeSignedElementSparseMatrix(20, 20, 8, 0.6, rng);
    const auto pn = pnSplit(v);
    EXPECT_TRUE(pn.p.isNonNegative());
    EXPECT_TRUE(pn.n.isNonNegative());
    EXPECT_EQ(pn.reconstruct(), v);
    EXPECT_EQ(pn.onesCount(), v.onesCount());
}

TEST(PnSplit, DisjointSupport)
{
    Rng rng(10);
    const auto v = makeSignedElementSparseMatrix(12, 12, 6, 0.3, rng);
    const auto pn = pnSplit(v);
    for (std::size_t r = 0; r < v.rows(); ++r)
        for (std::size_t c = 0; c < v.cols(); ++c)
            EXPECT_TRUE(pn.p.at(r, c) == 0 || pn.n.at(r, c) == 0);
}

TEST(PnSplit, BitwidthCoversMagnitude)
{
    IntMatrix v(1, 2);
    v.at(0, 0) = -128;
    v.at(0, 1) = 127;
    const auto pn = pnSplit(v);
    EXPECT_EQ(pn.bitwidth(), 8); // |-128| needs 8 unsigned bits
}

TEST(Quantize, RoundTripWithinStep)
{
    RealMatrix m(2, 2);
    m.at(0, 0) = 0.5;
    m.at(0, 1) = -1.0;
    m.at(1, 0) = 0.25;
    m.at(1, 1) = 1.0;
    const auto q = quantizeSymmetric(m, 8);
    EXPECT_EQ(q.values.at(0, 1), -127);
    EXPECT_EQ(q.values.at(1, 1), 127);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_NEAR(static_cast<double>(q.values.at(r, c)) / q.scale,
                        m.at(r, c), 1.0 / q.scale);
}

TEST(Quantize, PreservesZeros)
{
    RealMatrix m(2, 2);
    m.at(0, 0) = 0.0;
    m.at(1, 1) = 3.0;
    const auto q = quantizeSymmetric(m, 6);
    EXPECT_EQ(q.values.at(0, 0), 0);
    EXPECT_EQ(q.values.at(0, 1), 0);
}

TEST(Quantize, VectorSaturatesAtRange)
{
    const std::vector<double> v{10.0, -10.0, 0.0};
    const auto q = quantizeWithScale(v, 100.0, 8);
    EXPECT_EQ(q[0], 127);
    EXPECT_EQ(q[1], -128);
    EXPECT_EQ(q[2], 0);
}

TEST(Quantize, DequantizeInverts)
{
    const std::vector<double> v{0.1, -0.7, 0.33};
    const auto q = quantizeSymmetric(v, 12);
    const auto back = dequantize(q.values, q.scale);
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_NEAR(back[i], v[i], 1.0 / q.scale);
}

} // namespace
