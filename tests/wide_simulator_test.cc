/**
 * @file
 * Tests of the 64-lane simulator: exact agreement with the scalar
 * simulator per lane, batch equivalence through CompiledMatrix, lane
 * independence, and switching-activity measurement.
 */

#include <gtest/gtest.h>

#include "circuit/wide_simulator.h"
#include "common/rng.h"
#include "core/compiler.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;
using core::CompileOptions;
using core::MatrixCompiler;

TEST(WideSimulator, LanesMatchScalarSimulatorBitForBit)
{
    circuit::Netlist nl;
    const auto a = nl.addInput(0);
    const auto b = nl.addInput(1);
    const auto sum = nl.addAdder(a, b);
    const auto diff = nl.addSub(a, b);
    const auto d = nl.addDff(sum);

    Rng rng(1);
    // Random per-lane bit streams for 40 cycles.
    const int cycles = 40;
    std::vector<std::uint64_t> stream_a(cycles), stream_b(cycles);
    for (int t = 0; t < cycles; ++t) {
        stream_a[t] = rng.next();
        stream_b[t] = rng.next();
    }

    circuit::WideSimulator wide(nl);
    std::vector<circuit::Simulator> scalars;
    scalars.reserve(8);
    for (int l = 0; l < 8; ++l)
        scalars.emplace_back(nl);

    for (int t = 0; t < cycles; ++t) {
        wide.step({stream_a[t], stream_b[t]});
        for (int l = 0; l < 8; ++l) {
            scalars[static_cast<std::size_t>(l)].step(
                {static_cast<std::uint8_t>((stream_a[t] >> l) & 1),
                 static_cast<std::uint8_t>((stream_b[t] >> l) & 1)});
            for (const auto node : {sum, diff, d}) {
                ASSERT_EQ(
                    (wide.outputWord(node) >> l) & 1,
                    scalars[static_cast<std::size_t>(l)].outputBit(node)
                        ? 1u
                        : 0u)
                    << "cycle " << t << " lane " << l << " node " << node;
            }
        }
    }
}

TEST(WideSimulator, BatchWideMatchesScalarBatch)
{
    Rng rng(2);
    const auto v = makeSignedElementSparseMatrix(24, 20, 8, 0.6, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);

    const auto batch = makeSignedBatch(70, 24, 8, rng); // spans 2 groups
    const auto scalar = design.multiplyBatch(batch);
    const auto wide = design.multiplyBatchWide(batch);
    EXPECT_EQ(scalar, wide);
}

TEST(WideSimulator, SingleVectorViaWidePath)
{
    Rng rng(3);
    const auto v = makeSignedElementSparseMatrix(10, 10, 6, 0.3, rng);
    CompileOptions opt;
    opt.inputBits = 7;
    opt.signMode = core::SignMode::Csd;
    const auto design = MatrixCompiler(opt).compile(v);

    const auto batch = makeSignedBatch(1, 10, 7, rng);
    const auto wide = design.multiplyBatchWide(batch);
    std::vector<std::int64_t> a(10);
    for (std::size_t r = 0; r < 10; ++r)
        a[r] = batch.at(0, r);
    const auto expected = gemvRef(a, v);
    for (std::size_t c = 0; c < 10; ++c)
        EXPECT_EQ(wide.at(0, c), expected[c]);
}

TEST(WideSimulator, ResetClearsToggles)
{
    circuit::Netlist nl;
    const auto a = nl.addInput(0);
    nl.addAdder(a, a);
    circuit::WideSimulator sim(nl);
    sim.step({~std::uint64_t{0}});
    sim.step({0});
    EXPECT_GT(sim.toggleCount(), 0u);
    sim.reset();
    EXPECT_EQ(sim.toggleCount(), 0u);
    EXPECT_EQ(sim.cycle(), 0u);
}

TEST(WideSimulator, MeasuredActivityInPlausibleRange)
{
    Rng rng(4);
    const auto v = makeSignedElementSparseMatrix(32, 32, 8, 0.8, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);
    const auto probe = makeSignedBatch(64, 32, 8, rng);
    const double activity = core::measureSwitchingActivity(design, probe);
    // Random data toggles registers well above the 12.5% Vivado default
    // but below the 50% theoretical white-noise bound per bit... serial
    // sum bits of random streams approach 0.5; carry bits less.
    EXPECT_GT(activity, 0.05);
    EXPECT_LT(activity, 0.75);
}

TEST(WideSimulator, IdleDesignBarelyToggles)
{
    Rng rng(5);
    const auto v = makeSignedElementSparseMatrix(16, 16, 8, 0.5, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);
    IntMatrix zeros(4, 16); // all-zero inputs
    const double activity = core::measureSwitchingActivity(design, zeros);
    EXPECT_LT(activity, 0.01);
}

} // namespace
