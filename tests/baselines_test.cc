/**
 * @file
 * Tests of the simulated comparators: the V100 latency model's regime
 * behaviour and the SIGMA simulator's functional correctness, tiling,
 * and cycle accounting.
 */

#include <gtest/gtest.h>

#include "baselines/gpu_model.h"
#include "baselines/sigma.h"
#include "common/rng.h"
#include "matrix/csr.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;
using baselines::GpuLibrary;
using baselines::GpuModel;
using baselines::SigmaConfig;
using baselines::SigmaSim;

// ---------------------------------------------------------------------
// GPU model
// ---------------------------------------------------------------------

TEST(GpuModel, NeverBreaksTheMicrosecondBarrier)
{
    // Section VII: "the GPU cannot break the 1us barrier".
    for (const auto library :
         {GpuLibrary::CuSparse, GpuLibrary::OptimizedKernel}) {
        GpuModel model(library);
        for (std::size_t dim = 64; dim <= 4096; dim *= 2) {
            const auto nnz =
                static_cast<std::size_t>(dim * dim * 0.02);
            EXPECT_GT(model.latencyNs(dim, dim, nnz), 1000.0)
                << gpuLibraryName(library) << " dim " << dim;
        }
    }
}

TEST(GpuModel, LatencyBoundFlatForSmallMatrices)
{
    // "When the matrix size is less than 512x512, the GPU performance is
    // nearly constant."
    GpuModel model(GpuLibrary::OptimizedKernel);
    const double at64 = model.latencyNs(64, 64, 82);
    const double at256 = model.latencyNs(256, 256, 1311);
    const double at512 = model.latencyNs(512, 512, 5243);
    EXPECT_NEAR(at256 / at64, 1.0, 0.10);
    EXPECT_NEAR(at512 / at64, 1.0, 0.15);
}

TEST(GpuModel, LinearScalingOnceUtilized)
{
    // "at 1024x1024 ... it begins to see linear scaling with respect to
    // matrix size" (nnz quadruples per dimension doubling).
    GpuModel model(GpuLibrary::OptimizedKernel);
    const auto nnz_of = [](std::size_t d) {
        return static_cast<std::size_t>(d * d * 0.02);
    };
    const double at4096 = model.latencyNs(4096, 4096, nnz_of(4096));
    const double at8192 = model.latencyNs(8192, 8192, nnz_of(8192));
    const double growth = at8192 / at4096;
    EXPECT_GT(growth, 2.0);
    EXPECT_LT(growth, 4.5);
}

TEST(GpuModel, SparsityReducesLatencyThenLevelsOff)
{
    // Figure 15's shape: large reductions from 70% to 85%, then a floor.
    GpuModel model(GpuLibrary::CuSparse);
    const std::size_t dim = 1024;
    const auto nnz = [&](double sparsity) {
        return static_cast<std::size_t>(dim * dim * (1.0 - sparsity));
    };
    const double at70 = model.latencyNs(dim, dim, nnz(0.70));
    const double at85 = model.latencyNs(dim, dim, nnz(0.85));
    const double at95 = model.latencyNs(dim, dim, nnz(0.95));
    const double at98 = model.latencyNs(dim, dim, nnz(0.98));
    EXPECT_GT(at70 / at85, 1.5);     // big win early
    EXPECT_LT(at95 / at98, 1.3);     // leveled off
    EXPECT_GT(at98, 1000.0);         // still above 1us
}

TEST(GpuModel, CuSparseSlowerThanOptimizedKernel)
{
    GpuModel cusparse(GpuLibrary::CuSparse);
    GpuModel optimized(GpuLibrary::OptimizedKernel);
    for (std::size_t dim = 64; dim <= 4096; dim *= 4) {
        const auto nnz = static_cast<std::size_t>(dim * dim * 0.05);
        EXPECT_GT(cusparse.latencyNs(dim, dim, nnz),
                  optimized.latencyNs(dim, dim, nnz));
    }
}

TEST(GpuModel, BatchScalesSublinearly)
{
    // "the latency for the GPU solution scales sub-linearly with respect
    // to batch size".
    GpuModel model(GpuLibrary::OptimizedKernel);
    const std::size_t dim = 1024;
    const auto nnz = static_cast<std::size_t>(dim * dim * 0.05);
    const double b1 = model.latencyNs(dim, dim, nnz, 1);
    const double b64 = model.latencyNs(dim, dim, nnz, 64);
    EXPECT_LT(b64, 8.0 * b1); // far below 64x
    EXPECT_GT(b64, b1);       // but not free
}

TEST(GpuModel, OccupancyRampIsClamped)
{
    GpuModel model(GpuLibrary::OptimizedKernel);
    EXPECT_LE(model.occupancy(1 << 20), 1.0);
    EXPECT_GE(model.occupancy(1), model.params().minOccupancy);
    EXPECT_GT(model.occupancy(2048), model.occupancy(64));
}

TEST(GpuModel, LatencyMonotoneInBatch)
{
    GpuModel model(GpuLibrary::OptimizedKernel);
    double prev = 0.0;
    for (std::size_t batch = 1; batch <= 64; batch *= 2) {
        const double t = model.latencyNs(1024, 1024, 52'429, batch);
        EXPECT_GT(t, prev) << "batch " << batch;
        prev = t;
    }
}

TEST(GpuModel, LibraryNames)
{
    EXPECT_STREQ(gpuLibraryName(GpuLibrary::CuSparse), "cuSPARSE");
    EXPECT_STREQ(gpuLibraryName(GpuLibrary::OptimizedKernel),
                 "Optimized Kernel");
}

// ---------------------------------------------------------------------
// SIGMA simulator
// ---------------------------------------------------------------------

TEST(Sigma, FunctionalResultMatchesReference)
{
    Rng rng(1);
    const auto dense = makeSignedElementSparseMatrix(100, 80, 8, 0.9, rng);
    const auto csr = CsrMatrix<std::int64_t>::fromDense(dense);
    const auto a = makeSignedVector(100, 8, rng);

    SigmaSim sim;
    const auto result = sim.runVector(csr, a);
    const auto expected = gemvRef(a, dense);
    ASSERT_EQ(result.outputs.cols(), 80u);
    for (std::size_t c = 0; c < 80; ++c)
        EXPECT_EQ(result.outputs.at(0, c), expected[c]);
}

TEST(Sigma, BatchedFunctionalResult)
{
    Rng rng(2);
    const auto dense = makeSignedElementSparseMatrix(64, 64, 8, 0.8, rng);
    const auto csr = CsrMatrix<std::int64_t>::fromDense(dense);
    const auto batch = makeSignedBatch(5, 64, 8, rng);

    SigmaSim sim;
    const auto result = sim.run(csr, batch);
    for (std::size_t b = 0; b < 5; ++b) {
        std::vector<std::int64_t> a(64);
        for (std::size_t r = 0; r < 64; ++r)
            a[r] = batch.at(b, r);
        const auto expected = gemvRef(a, dense);
        for (std::size_t c = 0; c < 64; ++c)
            EXPECT_EQ(result.outputs.at(b, c), expected[c]);
    }
}

TEST(Sigma, FitsInGridIsNanosecondScale)
{
    // "For small dimensions, SIGMA does report nanosecond-scale latency."
    Rng rng(3);
    const auto dense = makeSignedElementSparseMatrix(512, 512, 8, 0.98,
                                                     rng);
    const auto csr = CsrMatrix<std::int64_t>::fromDense(dense);
    SigmaSim sim;
    const auto result = sim.runVector(csr, makeSignedVector(512, 8, rng));
    EXPECT_EQ(result.tiles, 1u);
    EXPECT_FALSE(result.tiled);
    EXPECT_LT(result.latencyNs, 500.0);
    EXPECT_EQ(result.sramWeightReads, 0u); // stationary weights
}

TEST(Sigma, TilingKicksInPastGridCapacity)
{
    // "after 1024x1024, the elements no longer fit in the PE grid and
    // the computation must be tiled."
    Rng rng(4);
    const auto dense = makeSignedElementSparseMatrix(1024, 1024, 8, 0.98,
                                                     rng);
    const auto csr = CsrMatrix<std::int64_t>::fromDense(dense);
    SigmaSim sim;
    const auto result = sim.runVector(csr, makeSignedVector(1024, 8, rng));
    EXPECT_GT(csr.nnz(), sim.config().peCapacity());
    EXPECT_EQ(result.tiles,
              (csr.nnz() + sim.config().peCapacity() - 1) /
                  sim.config().peCapacity());
    EXPECT_TRUE(result.tiled);
    EXPECT_EQ(result.sramWeightReads, csr.nnz());
}

TEST(Sigma, TiledLatencyGrowsLinearlyWithNnz)
{
    // Memory-bound regime: cycles per extra tile are roughly constant.
    Rng rng(5);
    SigmaSim sim;
    auto latency_at = [&](double sparsity) {
        const auto dense = makeSignedElementSparseMatrix(2048, 2048, 8,
                                                         sparsity, rng);
        const auto csr = CsrMatrix<std::int64_t>::fromDense(dense);
        return sim.runVector(csr, makeSignedVector(2048, 8, rng));
    };
    const auto at95 = latency_at(0.95);
    const auto at90 = latency_at(0.90);
    ASSERT_GT(at90.tiles, at95.tiles);
    const double per_tile95 =
        at95.latencyNs / static_cast<double>(at95.tiles);
    const double per_tile90 =
        at90.latencyNs / static_cast<double>(at90.tiles);
    EXPECT_NEAR(per_tile90 / per_tile95, 1.0, 0.35);
}

TEST(Sigma, UtilizationReflectsMappedFraction)
{
    Rng rng(6);
    const auto dense = makeSignedElementSparseMatrix(256, 256, 8, 0.9, rng);
    const auto csr = CsrMatrix<std::int64_t>::fromDense(dense);
    SigmaSim sim;
    const auto result = sim.runVector(csr, makeSignedVector(256, 8, rng));
    EXPECT_EQ(result.tiles, 1u);
    EXPECT_NEAR(result.peUtilization,
                static_cast<double>(csr.nnz()) /
                    static_cast<double>(sim.config().peCapacity()),
                1e-12);
}

TEST(Sigma, BatchAmortizesWeightLoads)
{
    // Tile-major batching loads each tile once regardless of batch size,
    // so per-vector latency falls with batch.
    Rng rng(7);
    const auto dense = makeSignedElementSparseMatrix(1024, 1024, 8, 0.95,
                                                     rng);
    const auto csr = CsrMatrix<std::int64_t>::fromDense(dense);
    SigmaSim sim;

    const auto b1 = sim.run(csr, makeSignedBatch(1, 1024, 8, rng));
    const auto b8 = sim.run(csr, makeSignedBatch(8, 1024, 8, rng));
    EXPECT_EQ(b1.sramWeightReads, b8.sramWeightReads);
    const double per_vec1 = b1.latencyNs;
    const double per_vec8 = b8.latencyNs / 8.0;
    EXPECT_LT(per_vec8, per_vec1);
}

TEST(Sigma, EmptyMatrixStillHasFixedOverhead)
{
    const IntMatrix dense(16, 16);
    const auto csr = CsrMatrix<std::int64_t>::fromDense(dense);
    SigmaSim sim;
    const auto result = sim.runVector(csr, std::vector<std::int64_t>(16, 1));
    EXPECT_EQ(result.tiles, 0u);
    EXPECT_GE(result.cycles, sim.config().fixedOverheadCycles);
    for (std::size_t c = 0; c < 16; ++c)
        EXPECT_EQ(result.outputs.at(0, c), 0);
}

TEST(Sigma, CustomConfigRespected)
{
    SigmaConfig config;
    config.gridRows = 4;
    config.gridCols = 4;
    config.fixedOverheadCycles = 10;
    SigmaSim sim(config);

    Rng rng(8);
    const auto dense = makeSignedElementSparseMatrix(8, 8, 4, 0.0, rng);
    const auto csr = CsrMatrix<std::int64_t>::fromDense(dense);
    const auto result = sim.runVector(csr, makeSignedVector(8, 4, rng));
    EXPECT_EQ(result.tiles, (csr.nnz() + 15) / 16);
    EXPECT_TRUE(result.tiled);
}

} // namespace
