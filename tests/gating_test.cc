/**
 * @file
 * Equivalence and invariant suite for segmented, activity-gated tape
 * execution: the gated BlockSimulator must be bit-identical — outputs
 * *and* register toggle counts — to WideSimulator and to the ungated
 * full sweeps at every segment size (including sizes that do not
 * divide the tape and a single segment swallowing the whole netlist),
 * for every supported SIMD kernel and lane width, across quiet input
 * phases (where segments skip), active phases (where the dense
 * fallback runs), and the transitions between them.  Also pins the
 * Segmentation build invariants and the engine's resolved-knob
 * reporting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "circuit/block_simulator.h"
#include "circuit/exec_plan.h"
#include "circuit/kernels.h"
#include "circuit/wide_simulator.h"
#include "common/rng.h"
#include "core/batch_engine.h"
#include "core/compiler.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;
using core::CompileOptions;
using core::MatrixCompiler;
using core::SimOptions;

/** A netlist exercising every component kind. */
circuit::Netlist
makeKitchenSinkNetlist()
{
    circuit::Netlist nl;
    const auto zero = nl.addConst0();
    const auto one = nl.addConst1();
    const auto a = nl.addInput(0);
    const auto b = nl.addInput(1);
    const auto na = nl.addNot(a);
    const auto ab = nl.addAnd(a, b);
    const auto sum = nl.addAdder(a, b);
    const auto diff = nl.addSub(sum, ab);
    const auto d1 = nl.addDff(diff);
    const auto gated = nl.addAnd(d1, one);
    const auto carryish = nl.addAdder(gated, na);
    nl.addSub(zero, carryish);
    nl.addDelay(carryish, 3);
    return nl;
}

/**
 * Drive a gated BlockSimulator<W> and W WideSimulators with identical
 * streams that alternate random and constant phases (constant phases
 * are what make segments skip; the random re-entry exercises the dense
 * fallback and its transitions), asserting every node every cycle and
 * the toggle totals at the end.
 */
template <unsigned W>
void
checkGatedAgainstWide(const circuit::Netlist &nl,
                      std::size_t ops_per_segment,
                      const circuit::kernels::Kernel *kernel,
                      std::uint64_t seed)
{
    const circuit::ExecPlan plan(nl);
    const auto segmentation = plan.segmentation(ops_per_segment);
    circuit::BlockSimulator<W> block(plan, kernel, segmentation);
    ASSERT_TRUE(block.gated());
    std::vector<circuit::WideSimulator> wides(W,
                                              circuit::WideSimulator(nl));

    Rng rng(seed);
    const std::size_t ports = nl.numInputPorts();
    std::vector<std::uint64_t> plane(ports * W, 0);
    const int cycles = 48;
    for (int t = 0; t < cycles; ++t) {
        // Random for 8 cycles, frozen for 10, twice over.
        const int phase = t % 18;
        if (phase < 8)
            for (auto &word : plane)
                word = rng.next();

        block.settle(plane.data(), ports);
        for (unsigned w = 0; w < W; ++w) {
            std::vector<std::uint64_t> words(ports);
            for (std::size_t p = 0; p < ports; ++p)
                words[p] = plane[p * W + w];
            wides[w].step(words);
            for (circuit::NodeId id = 0; id < nl.numNodes(); ++id) {
                ASSERT_EQ(block.outputWord(id, w), wides[w].outputWord(id))
                    << "kernel " << block.kernel().name << " ops/seg "
                    << ops_per_segment << " cycle " << t << " word " << w
                    << " node " << id;
            }
        }
        block.commit();
    }

    std::uint64_t wide_toggles = 0;
    for (const auto &wide : wides)
        wide_toggles += wide.toggleCount();
    EXPECT_EQ(block.toggleCount(), wide_toggles)
        << "kernel " << block.kernel().name << " ops/seg "
        << ops_per_segment;
    // The frozen phases must actually exercise the skip path.
    EXPECT_GT(block.segmentsSkipped(), 0u)
        << "ops/seg " << ops_per_segment;
}

/** Every supported kernel, one lane width, several segment sizes. */
template <unsigned W>
void
checkGatedAllKernels(std::uint64_t seed)
{
    const auto nl = makeKitchenSinkNetlist();
    // 1 = one op per segment; 3 does not divide the op count; 1000
    // swallows the whole netlist into a single segment.
    for (const std::size_t ops_per_segment : {std::size_t{1},
                                              std::size_t{3},
                                              std::size_t{1000}})
        for (const auto *kernel : circuit::kernels::supportedKernels())
            checkGatedAgainstWide<W>(nl, ops_per_segment, kernel, seed);
}

TEST(Gating, MatchesWideSimulatorEverySegmentSizeW1)
{
    checkGatedAllKernels<1>(71);
}

TEST(Gating, MatchesWideSimulatorEverySegmentSizeW2)
{
    checkGatedAllKernels<2>(72);
}

TEST(Gating, MatchesWideSimulatorEverySegmentSizeW4)
{
    checkGatedAllKernels<4>(73);
}

TEST(Gating, MatchesWideSimulatorEverySegmentSizeW8)
{
    checkGatedAllKernels<8>(74);
}

TEST(Gating, ResetRestoresPowerOnStateAndCounters)
{
    const auto nl = makeKitchenSinkNetlist();
    const circuit::ExecPlan plan(nl);
    circuit::BlockSimulator<2> sim(plan, nullptr, plan.segmentation(2));

    std::vector<std::uint64_t> ones(nl.numInputPorts() * 2,
                                    ~std::uint64_t{0});
    for (int t = 0; t < 6; ++t)
        sim.step(ones.data(), nl.numInputPorts());
    EXPECT_GT(sim.toggleCount(), 0u);
    EXPECT_GT(sim.segmentsExecuted(), 0u);

    sim.reset();
    EXPECT_EQ(sim.cycle(), 0u);
    EXPECT_EQ(sim.toggleCount(), 0u);
    EXPECT_EQ(sim.segmentsExecuted(), 0u);
    EXPECT_EQ(sim.segmentsSkipped(), 0u);

    // A reset gated simulator must track a fresh WideSimulator,
    // including through a quiet phase.
    circuit::WideSimulator wide(nl);
    Rng rng(31);
    std::vector<std::uint64_t> words(nl.numInputPorts() * 2, 0);
    for (int t = 0; t < 30; ++t) {
        if (t % 11 < 5)
            for (auto &word : words)
                word = rng.next();
        sim.settle(words.data(), nl.numInputPorts());
        std::vector<std::uint64_t> lane0(nl.numInputPorts());
        for (std::size_t p = 0; p < lane0.size(); ++p)
            lane0[p] = words[p * 2];
        wide.step(lane0);
        for (circuit::NodeId id = 0; id < nl.numNodes(); ++id)
            ASSERT_EQ(sim.outputWord(id, 0), wide.outputWord(id));
        sim.commit();
    }
}

// ---------------------------------------------------------------------
// End-to-end differential through the batch engine
// ---------------------------------------------------------------------

/**
 * Gated and ungated multiplyBatchWide must agree with the scalar
 * reference for every kernel and several segment sizes, on batches
 * that do not divide the lane count.
 */
void
checkGatedBatchEquivalence(const IntMatrix &weights,
                           CompileOptions options, std::uint64_t seed)
{
    const auto design = MatrixCompiler(options).compile(weights);
    Rng rng(seed);
    const std::size_t batch_rows = 130;
    IntMatrix batch(batch_rows, weights.rows());
    for (std::size_t b = 0; b < batch_rows; ++b)
        for (std::size_t r = 0; r < weights.rows(); ++r)
            batch.at(b, r) =
                options.inputsSigned
                    ? rng.uniformInt(-(1 << (options.inputBits - 1)),
                                     (1 << (options.inputBits - 1)) - 1)
                    : rng.uniformInt(0, (1 << options.inputBits) - 1);

    const auto scalar = design.multiplyBatch(batch);
    for (const auto *kernel : circuit::kernels::supportedKernels()) {
        for (const unsigned segment_kib : {1u, 4u, 64u, 4096u}) {
            for (const unsigned lane_words : {1u, 4u, 8u}) {
                SimOptions sim;
                sim.threads = 1;
                sim.kernel = kernel;
                sim.laneWords = lane_words;
                sim.activityGating = true;
                sim.segmentKib = segment_kib;
                ASSERT_EQ(scalar, design.multiplyBatchWide(batch, sim))
                    << "kernel " << kernel->name << " segKib "
                    << segment_kib << " W " << lane_words;
            }
        }
        SimOptions ungated;
        ungated.threads = 1;
        ungated.kernel = kernel;
        ungated.activityGating = false;
        ASSERT_EQ(scalar, design.multiplyBatchWide(batch, ungated))
            << "kernel " << kernel->name;
    }

    // Auto knobs (gating defaults on), threaded.
    SimOptions threaded;
    threaded.threads = 4;
    threaded.laneWords = 1;
    ASSERT_EQ(scalar, design.multiplyBatchWide(batch, threaded));
    ASSERT_EQ(scalar, design.multiplyBatchWide(batch));
}

TEST(Gating, BatchEquivalenceCsdSigned)
{
    Rng rng(81);
    const auto v = makeSignedElementSparseMatrix(24, 20, 6, 0.6, rng);
    CompileOptions options;
    options.inputBits = 7;
    options.signMode = core::SignMode::Csd;
    checkGatedBatchEquivalence(v, options, 181);
}

TEST(Gating, BatchEquivalencePnUnsignedInputs)
{
    Rng rng(82);
    const auto v = makeSignedElementSparseMatrix(18, 22, 5, 0.4, rng);
    CompileOptions options;
    options.inputBits = 6;
    options.inputsSigned = false;
    options.signMode = core::SignMode::PnSplit;
    checkGatedBatchEquivalence(v, options, 182);
}

TEST(Gating, BatchEquivalenceAblationWithCombOps)
{
    // constantPropagation off keeps the AND-gate plane, so the gated
    // engine's comb sweeps and the comb-forced up-front flip path run.
    Rng rng(83);
    const auto v = makeSignedElementSparseMatrix(10, 8, 4, 0.5, rng);
    CompileOptions options;
    options.inputBits = 5;
    options.constantPropagation = false;
    checkGatedBatchEquivalence(v, options, 183);
}

TEST(Gating, ToggleCountsInvariantUnderGating)
{
    Rng rng(91);
    const auto v = makeSignedElementSparseMatrix(20, 20, 8, 0.6, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);
    const auto probe = makeSignedBatch(48, 20, 8, rng);

    SimOptions gated;
    gated.activityGating = true;
    SimOptions ungated;
    ungated.activityGating = false;
    // measuredActivity is toggles / (bits * cycles * lanes): equality
    // of the ratio at identical shape means identical toggle totals.
    EXPECT_DOUBLE_EQ(core::measureSwitchingActivity(design, probe, gated),
                     core::measureSwitchingActivity(design, probe,
                                                    ungated));
}

TEST(Gating, SkippedSegmentsReportedByBatchStats)
{
    Rng rng(92);
    const auto v = makeSignedElementSparseMatrix(32, 32, 8, 0.8, rng);
    core::CompileOptions options;
    options.signMode = core::SignMode::Csd;
    const auto design = MatrixCompiler(options).compile(v);
    const auto batch = makeSignedBatch(130, 32, 8, rng);

    SimOptions gated;
    gated.threads = 2;
    gated.activityGating = true;
    core::BatchStats stats;
    (void)core::runBatchWide(design, batch, gated, &stats);
    EXPECT_GT(stats.segmentsExecuted, 0u);
    EXPECT_GT(stats.segmentsSkipped, 0u);

    SimOptions ungated;
    ungated.activityGating = false;
    core::BatchStats off;
    (void)core::runBatchWide(design, batch, ungated, &off);
    EXPECT_EQ(off.segmentsExecuted, 0u);
    EXPECT_EQ(off.segmentsSkipped, 0u);
}

TEST(Gating, TapeGemvGatedMatchesScalarAndCountsSegments)
{
    Rng rng(93);
    const auto v = makeSignedElementSparseMatrix(16, 16, 6, 0.5, rng);
    core::CompileOptions options;
    options.inputBits = 6;
    const auto design = MatrixCompiler(options).compile(v);

    SimOptions gated;
    gated.activityGating = true;
    core::TapeGemv gemv(design, gated);
    for (int i = 0; i < 4; ++i) {
        const auto x = makeSignedVector(16, 6, rng);
        EXPECT_EQ(gemv.multiply(x), design.multiply(x));
    }
    EXPECT_GT(gemv.engineStats().segmentsExecuted, 0u);
}

// ---------------------------------------------------------------------
// Segmentation build invariants
// ---------------------------------------------------------------------

TEST(Segmentation, PartitionsEveryOpExactlyOnce)
{
    Rng rng(94);
    const auto v = makeSignedElementSparseMatrix(12, 12, 5, 0.5, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);
    const auto &plan = design.plan();

    for (const std::size_t ops_per_segment : {std::size_t{1},
                                              std::size_t{7},
                                              std::size_t{100000}}) {
        const auto seg = plan.segmentation(ops_per_segment);
        ASSERT_EQ(seg->comb().size(), plan.comb().size());
        ASSERT_EQ(seg->regs().size(), plan.regs().size());
        ASSERT_EQ(seg->inputs().size(), plan.inputs().size());
        ASSERT_EQ(seg->constOnes().size(), plan.constOnes().size());

        // Segments tile both tapes without gaps or overlaps.
        std::uint32_t comb_cursor = 0;
        std::uint32_t reg_cursor = 0;
        std::size_t total_ops = 0;
        for (const auto &s : seg->segments()) {
            EXPECT_EQ(s.combBegin, comb_cursor);
            EXPECT_EQ(s.regBegin, reg_cursor);
            EXPECT_LE(s.combBegin, s.combEnd);
            EXPECT_LE(s.regBegin, s.regEnd);
            comb_cursor = s.combEnd;
            reg_cursor = s.regEnd;
            total_ops += (s.combEnd - s.combBegin) +
                         (s.regEnd - s.regBegin);
        }
        EXPECT_EQ(comb_cursor, seg->comb().size());
        EXPECT_EQ(reg_cursor, seg->regs().size());
        EXPECT_EQ(total_ops, plan.comb().size() + plan.regs().size());

        // slotOf is a permutation of the node ids, with the ones/zero
        // slots fixed.
        std::vector<bool> seen(plan.numSlots(), false);
        for (const auto slot : seg->slotOf()) {
            ASSERT_LT(slot, plan.numSlots());
            ASSERT_FALSE(seen[slot]);
            seen[slot] = true;
        }
        EXPECT_EQ(seg->slotOf()[plan.onesSlot()], plan.onesSlot());
        EXPECT_EQ(seg->slotOf()[plan.zeroSlot()], plan.zeroSlot());

        // Sources resolve to earlier (or same) segments, never later —
        // the property both the wake scheme and the dense in-place
        // sweep rest on.
        std::vector<std::uint32_t> owner(plan.numSlots(), 0xffffffffu);
        for (std::size_t i = 0; i < seg->segments().size(); ++i) {
            const auto &s = seg->segments()[i];
            for (std::uint32_t k = s.combBegin; k < s.combEnd; ++k)
                owner[seg->comb()[k].dst] =
                    static_cast<std::uint32_t>(i);
            for (std::uint32_t k = s.regBegin; k < s.regEnd; ++k)
                owner[seg->regs()[k].dst] =
                    static_cast<std::uint32_t>(i);
        }
        for (std::size_t i = 0; i < seg->segments().size(); ++i) {
            const auto &s = seg->segments()[i];
            const auto checkSource = [&](circuit::NodeId src) {
                if (owner[src] != 0xffffffffu) {
                    EXPECT_LE(owner[src], i);
                }
            };
            for (std::uint32_t k = s.combBegin; k < s.combEnd; ++k) {
                checkSource(seg->comb()[k].a);
                checkSource(seg->comb()[k].b);
            }
            for (std::uint32_t k = s.regBegin; k < s.regEnd; ++k) {
                checkSource(seg->regs()[k].a);
                checkSource(seg->regs()[k].b);
            }
        }

        // The cache hands back the same immutable instance.
        EXPECT_EQ(seg.get(), plan.segmentation(ops_per_segment).get());
    }
}

TEST(Segmentation, OpsForBudgetScalesAndFloors)
{
    using circuit::Segmentation;
    // 4 slots of W words of 8 bytes per op.
    EXPECT_EQ(Segmentation::opsForBudget(4, 1), 4u * 1024 / 32);
    EXPECT_EQ(Segmentation::opsForBudget(4, 8), 4u * 1024 / 256);
    // Tiny budgets clamp to a sane floor instead of degenerating.
    EXPECT_EQ(Segmentation::opsForBudget(0, 8), 16u);
}

// ---------------------------------------------------------------------
// Resolved-knob reporting (bench/serve artifacts record real values)
// ---------------------------------------------------------------------

TEST(ResolvedKnobs, ThreadsNeverReportTheAutoSentinel)
{
    Rng rng(95);
    const auto v = makeSignedElementSparseMatrix(16, 16, 6, 0.5, rng);
    const auto design = MatrixCompiler(CompileOptions{}).compile(v);

    SimOptions sim;
    sim.threads = 0; // auto
    // One 64-lane group at most: the resolved count clamps to 1.
    EXPECT_EQ(core::resolvedThreads(design, sim, 1), 1u);
    EXPECT_GE(core::resolvedThreads(design, sim, 4096), 1u);

    sim.threads = 3;
    sim.laneWords = 1;
    // Explicit threads clamp to the group count (4096 / 64 = 64 > 3).
    EXPECT_EQ(core::resolvedThreads(design, sim, 4096), 3u);
    EXPECT_EQ(core::resolvedThreads(design, sim, 64), 1u);
}

} // namespace
