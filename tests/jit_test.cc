/**
 * @file
 * Differential suite for the per-design JIT codegen backend
 * (circuit/jit): generated native executors must be bit-identical —
 * outputs *and* register toggle counts — to WideSimulator and the
 * interpreted tape across sign modes, lane widths, segment sizes, and
 * gating on/off; a randomized netlist fuzz loop backs the directed
 * cases.  Also pins the lifecycle guarantees: graceful interpreter
 * fallback when no toolchain is reachable, table matching (a module
 * never executes under a mismatched configuration), and the
 * no-leak invariant (JitModule::liveCount returns to baseline after
 * churn, with no temp artifacts left on disk).
 *
 * Every compiling test is gated on jit::toolchainAvailable() so the
 * suite passes (as a skip) on toolchain-less hosts — where the
 * fallback test still runs for real.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "circuit/block_simulator.h"
#include "circuit/exec_plan.h"
#include "circuit/jit.h"
#include "circuit/kernels.h"
#include "circuit/wide_simulator.h"
#include "common/rng.h"
#include "core/batch_engine.h"
#include "core/compiler.h"
#include "matrix/generate.h"
#include "serve/design_store.h"

namespace
{

using namespace spatial;
using core::BatchStats;
using core::CompileOptions;
using core::MatrixCompiler;
using core::SimOptions;

/** A netlist exercising every component kind the codegen specializes. */
circuit::Netlist
makeKitchenSinkNetlist()
{
    circuit::Netlist nl;
    const auto zero = nl.addConst0();
    const auto one = nl.addConst1();
    const auto a = nl.addInput(0);
    const auto b = nl.addInput(1);
    const auto na = nl.addNot(a);
    const auto ab = nl.addAnd(a, b);
    const auto sum = nl.addAdder(a, b);
    const auto diff = nl.addSub(sum, ab);
    const auto d1 = nl.addDff(diff);
    const auto gated = nl.addAnd(d1, one);
    const auto carryish = nl.addAdder(gated, na);
    nl.addSub(zero, carryish);
    nl.addDelay(carryish, 3);
    return nl;
}

/**
 * Drive a jitted BlockSimulator<W> and W WideSimulators with identical
 * streams alternating random and frozen phases (frozen phases make
 * gated segments skip; re-entry exercises the dense fallback and the
 * owed-flip path), asserting every node every cycle and the exact
 * toggle totals at the end.  `ops_per_segment` == 0 runs ungated.
 */
template <unsigned W>
void
checkJitAgainstWide(const circuit::Netlist &nl,
                    std::size_t ops_per_segment, std::uint64_t seed)
{
    const circuit::ExecPlan plan(nl);
    std::shared_ptr<const circuit::Segmentation> segmentation;
    circuit::jit::JitSpec spec;
    spec.laneWords = {W};
    if (ops_per_segment != 0) {
        segmentation = plan.segmentation(ops_per_segment);
        spec.segmentation = segmentation;
    }
    const auto module = circuit::jit::compileJitModule(plan, spec);
    ASSERT_NE(module, nullptr);

    circuit::BlockSimulator<W> block(plan, nullptr, segmentation, module);
    ASSERT_TRUE(block.jitActive())
        << "W " << W << " ops/seg " << ops_per_segment;
    std::vector<circuit::WideSimulator> wides(W,
                                              circuit::WideSimulator(nl));

    Rng rng(seed);
    const std::size_t ports = nl.numInputPorts();
    std::vector<std::uint64_t> plane(ports * W, 0);
    const int cycles = 48;
    for (int t = 0; t < cycles; ++t) {
        const int phase = t % 18;
        if (phase < 8)
            for (auto &word : plane)
                word = rng.next();

        block.settle(plane.data(), ports);
        for (unsigned w = 0; w < W; ++w) {
            std::vector<std::uint64_t> words(ports);
            for (std::size_t p = 0; p < ports; ++p)
                words[p] = plane[p * W + w];
            wides[w].step(words);
            for (circuit::NodeId id = 0; id < nl.numNodes(); ++id) {
                ASSERT_EQ(block.outputWord(id, w), wides[w].outputWord(id))
                    << "W " << W << " ops/seg " << ops_per_segment
                    << " cycle " << t << " word " << w << " node " << id;
            }
        }
        block.commit();
    }

    std::uint64_t wide_toggles = 0;
    for (const auto &wide : wides)
        wide_toggles += wide.toggleCount();
    EXPECT_EQ(block.toggleCount(), wide_toggles)
        << "W " << W << " ops/seg " << ops_per_segment;
    if (ops_per_segment != 0) {
        // The frozen phases must actually exercise the gated skip path,
        // or the per-segment generated functions went untested.
        EXPECT_GT(block.segmentsSkipped(), 0u)
            << "ops/seg " << ops_per_segment;
    }
}

/** Ungated plus segment sizes that do not divide the tape. */
template <unsigned W>
void
checkJitAllSegmentSizes(std::uint64_t seed)
{
    if (!circuit::jit::toolchainAvailable())
        GTEST_SKIP() << "no C toolchain reachable";
    const auto nl = makeKitchenSinkNetlist();
    for (const std::size_t ops_per_segment : {std::size_t{0},
                                              std::size_t{1},
                                              std::size_t{3},
                                              std::size_t{1000}})
        checkJitAgainstWide<W>(nl, ops_per_segment, seed);
}

TEST(Jit, MatchesWideSimulatorEverySegmentSizeW1)
{
    checkJitAllSegmentSizes<1>(171);
}

TEST(Jit, MatchesWideSimulatorEverySegmentSizeW2)
{
    checkJitAllSegmentSizes<2>(172);
}

TEST(Jit, MatchesWideSimulatorEverySegmentSizeW4)
{
    checkJitAllSegmentSizes<4>(173);
}

TEST(Jit, MatchesWideSimulatorEverySegmentSizeW8)
{
    checkJitAllSegmentSizes<8>(174);
}

/**
 * Randomized fuzz: random sparse signed matrices through the full
 * compiler, each design's plan run jitted (one gated, one ungated
 * round) against WideSimulator with random segment budgets.  Catches
 * op/slot patterns the kitchen-sink netlist misses.
 */
/**
 * A register-only netlist — adders, subtractors, DFFs, a delay line,
 * not a single comb op: the shape every CSD-compiled design has, and
 * the only shape eligible for the in-place gated step flavor.
 */
circuit::Netlist
makeRegisterOnlyNetlist()
{
    circuit::Netlist nl;
    const auto a = nl.addInput(0);
    const auto b = nl.addInput(1);
    const auto s1 = nl.addAdder(a, b);
    const auto d1 = nl.addDff(s1);
    const auto s2 = nl.addSub(d1, a);
    const auto d2 = nl.addDff(s2);
    const auto s3 = nl.addAdder(d2, d1);
    nl.addDelay(s3, 4);
    nl.addDff(b);
    return nl;
}

/** Pins SPATIAL_JIT_INPLACE for a scope, restoring on exit even when
 *  an ASSERT unwinds the test early. */
struct FlavorPin
{
    explicit FlavorPin(const char *v)
    {
        ::setenv("SPATIAL_JIT_INPLACE", v, 1);
    }
    ~FlavorPin() { ::unsetenv("SPATIAL_JIT_INPLACE"); }
};

/**
 * Both gated step flavors over the register-only shape: the flavor
 * policy normally picks by working-set size, so pin it each way and
 * require the full differential contract (every node, every cycle,
 * exact toggles) from the pending-fused AND the in-place generated
 * code — and prove the pin actually selected the flavor it names.
 */
TEST(Jit, RegisterOnlyNetlistBothStepFlavors)
{
    if (!circuit::jit::toolchainAvailable())
        GTEST_SKIP() << "no C toolchain reachable";
    const auto nl = makeRegisterOnlyNetlist();
    const circuit::ExecPlan plan(nl);
    ASSERT_TRUE(plan.comb().empty())
        << "netlist is supposed to lower to a register-only tape";

    for (const bool in_place : {false, true}) {
        FlavorPin pin(in_place ? "1" : "0");

        circuit::jit::JitSpec spec;
        spec.laneWords = {2};
        spec.segmentation = plan.segmentation(3);
        const auto module = circuit::jit::compileJitModule(plan, spec);
        ASSERT_NE(module, nullptr);
        const auto *tables = module->tables(2, true, 3);
        ASSERT_NE(tables, nullptr);
        EXPECT_EQ(tables->inPlace, in_place);

        // Small budgets only: the netlist is one long register chain,
        // so a whole-tape segment never goes quiet inside the frozen
        // phases and the skip-path assertion would be vacuous.
        checkJitAgainstWide<1>(nl, 1, in_place ? 211 : 221);
        checkJitAgainstWide<4>(nl, 3, in_place ? 212 : 222);
        checkJitAgainstWide<8>(nl, 4, in_place ? 213 : 223);
    }
}

TEST(Jit, RandomizedNetlistFuzz)
{
    if (!circuit::jit::toolchainAvailable())
        GTEST_SKIP() << "no C toolchain reachable";
    Rng rng(4242);
    for (int round = 0; round < 4; ++round) {
        const std::size_t rows = 4 + rng.uniformInt(0, 8);
        const std::size_t cols = 4 + rng.uniformInt(0, 8);
        const auto v = makeSignedElementSparseMatrix(
            rows, cols, 5, 0.5, rng);
        CompileOptions options;
        options.inputBits = 6;
        options.signMode = (round % 2 == 0) ? core::SignMode::Csd
                                            : core::SignMode::PnSplit;
        const auto design = MatrixCompiler(options).compile(v);
        const std::size_t ops =
            1 + rng.uniformInt(0, 40); // random, often non-dividing
        checkJitAgainstWide<2>(design.netlist(), ops, rng.next());
        checkJitAgainstWide<2>(design.netlist(), 0, rng.next());
    }
}

// ---------------------------------------------------------------------
// End-to-end through ensureJit + the batch engine
// ---------------------------------------------------------------------

/**
 * multiplyBatchWide with SimOptions::jit on must agree bit-exactly
 * with the scalar reference across lane widths and segment budgets —
 * and must actually have executed through the module (jitGroups), not
 * silently fallen back.
 */
void
checkJitBatchEquivalence(const IntMatrix &weights, CompileOptions options,
                         std::uint64_t seed)
{
    const auto design = MatrixCompiler(options).compile(weights);
    Rng rng(seed);
    const std::size_t batch_rows = 130; // does not divide 64*W
    IntMatrix batch(batch_rows, weights.rows());
    for (std::size_t b = 0; b < batch_rows; ++b)
        for (std::size_t r = 0; r < weights.rows(); ++r)
            batch.at(b, r) =
                options.inputsSigned
                    ? rng.uniformInt(-(1 << (options.inputBits - 1)),
                                     (1 << (options.inputBits - 1)) - 1)
                    : rng.uniformInt(0, (1 << options.inputBits) - 1);

    const auto scalar = design.multiplyBatch(batch);
    for (const bool gating : {true, false}) {
        for (const unsigned lane_words : {1u, 4u}) {
            SimOptions sim;
            sim.threads = 1;
            sim.laneWords = lane_words;
            sim.activityGating = gating;
            sim.jit = true;
            ASSERT_NE(design.ensureJit(sim, lane_words), nullptr);
            BatchStats stats;
            ASSERT_EQ(scalar,
                      core::runBatchWide(design, batch, sim, &stats))
                << "gating " << gating << " W " << lane_words;
            EXPECT_GT(stats.jitGroups, 0u)
                << "gating " << gating << " W " << lane_words;
            EXPECT_EQ(stats.interpFallbackGroups, 0u)
                << "gating " << gating << " W " << lane_words;
        }
    }
}

TEST(Jit, BatchEquivalenceCsdSigned)
{
    if (!circuit::jit::toolchainAvailable())
        GTEST_SKIP() << "no C toolchain reachable";
    Rng rng(91);
    const auto v = makeSignedElementSparseMatrix(24, 20, 6, 0.6, rng);
    CompileOptions options;
    options.inputBits = 7;
    options.signMode = core::SignMode::Csd;
    checkJitBatchEquivalence(v, options, 191);
}

TEST(Jit, BatchEquivalencePnUnsignedInputs)
{
    if (!circuit::jit::toolchainAvailable())
        GTEST_SKIP() << "no C toolchain reachable";
    Rng rng(92);
    const auto v = makeSignedElementSparseMatrix(18, 22, 5, 0.4, rng);
    CompileOptions options;
    options.inputBits = 6;
    options.inputsSigned = false;
    options.signMode = core::SignMode::PnSplit;
    checkJitBatchEquivalence(v, options, 192);
}

/**
 * The switching-activity probe — the toggle-counting consumer of the
 * engine — must measure the identical activity through the module as
 * through the interpreted tape, gated and ungated.
 */
TEST(Jit, SwitchingActivityMatchesInterpreter)
{
    if (!circuit::jit::toolchainAvailable())
        GTEST_SKIP() << "no C toolchain reachable";
    Rng rng(93);
    const auto v = makeSignedElementSparseMatrix(16, 14, 5, 0.5, rng);
    CompileOptions options;
    options.inputBits = 6;
    const auto design = MatrixCompiler(options).compile(v);
    IntMatrix batch(48, v.rows());
    for (std::size_t b = 0; b < batch.rows(); ++b)
        for (std::size_t r = 0; r < v.rows(); ++r)
            batch.at(b, r) = rng.uniformInt(-32, 31);

    for (const bool gating : {true, false}) {
        SimOptions interp;
        interp.activityGating = gating;
        SimOptions jitted = interp;
        jitted.jit = true;
        ASSERT_NE(design.ensureJit(jitted, 1), nullptr);
        EXPECT_EQ(core::measureSwitchingActivity(design, batch, interp),
                  core::measureSwitchingActivity(design, batch, jitted))
            << "gating " << gating;
    }
}

/** TapeGemv (the sequential ESN executor) through the module. */
TEST(Jit, TapeGemvMatchesScalarMultiply)
{
    if (!circuit::jit::toolchainAvailable())
        GTEST_SKIP() << "no C toolchain reachable";
    Rng rng(94);
    const auto v = makeSignedElementSparseMatrix(12, 10, 5, 0.5, rng);
    CompileOptions options;
    options.inputBits = 6;
    const auto design = MatrixCompiler(options).compile(v);
    SimOptions sim;
    sim.jit = true;
    ASSERT_NE(design.ensureJit(sim, 1), nullptr);
    core::TapeGemv gemv(design, sim);
    for (int round = 0; round < 5; ++round) {
        std::vector<std::int64_t> x(v.rows());
        for (auto &e : x)
            e = rng.uniformInt(-32, 31);
        EXPECT_EQ(gemv.multiply(x), design.multiply(x));
    }
}

// ---------------------------------------------------------------------
// Table matching, fallback, lifecycle
// ---------------------------------------------------------------------

/**
 * A module must never execute under a configuration it was not
 * generated for: mismatched W, mismatched gating mode, or a different
 * segment budget all resolve to null tables, and a BlockSimulator
 * handed such a module runs the interpreter — still correctly.
 */
TEST(Jit, TableMatchingRejectsMismatchedConfigurations)
{
    if (!circuit::jit::toolchainAvailable())
        GTEST_SKIP() << "no C toolchain reachable";
    const auto nl = makeKitchenSinkNetlist();
    const circuit::ExecPlan plan(nl);
    const auto segmentation = plan.segmentation(4);

    circuit::jit::JitSpec spec;
    spec.segmentation = segmentation;
    spec.laneWords = {2};
    const auto module = circuit::jit::compileJitModule(plan, spec);
    ASSERT_NE(module, nullptr);
    EXPECT_TRUE(module->gated());
    EXPECT_EQ(module->opsPerSegment(), 4u);

    EXPECT_NE(module->tables(2, true, 4), nullptr);
    EXPECT_EQ(module->tables(4, true, 4), nullptr);  // wrong W
    EXPECT_EQ(module->tables(2, false, 0), nullptr); // wrong mode
    EXPECT_EQ(module->tables(2, true, 8), nullptr);  // wrong budget

    // Mismatched module on a simulator: interpreter fallback, correct.
    circuit::BlockSimulator<2> sim(plan, nullptr, plan.segmentation(8),
                                   module);
    EXPECT_FALSE(sim.jitActive());
    circuit::WideSimulator wide(nl);
    Rng rng(95);
    std::vector<std::uint64_t> plane(nl.numInputPorts() * 2, 0);
    for (int t = 0; t < 12; ++t) {
        for (auto &word : plane)
            word = rng.next();
        sim.settle(plane.data(), nl.numInputPorts());
        std::vector<std::uint64_t> lane0(nl.numInputPorts());
        for (std::size_t p = 0; p < lane0.size(); ++p)
            lane0[p] = plane[p * 2];
        wide.step(lane0);
        for (circuit::NodeId id = 0; id < nl.numNodes(); ++id)
            ASSERT_EQ(sim.outputWord(id, 0), wide.outputWord(id));
        sim.commit();
    }
}

/**
 * With SPATIAL_JIT_CC pointing at nothing, admission returns null, the
 * engine runs the interpreted tape, the run stays bit-exact, and the
 * fallback is visible in the stats — exactly the toolchain-less-host
 * contract.
 */
TEST(Jit, GracefulFallbackWithoutToolchain)
{
    ASSERT_EQ(setenv("SPATIAL_JIT_CC", "/nonexistent/spatial-no-cc", 1),
              0);
    EXPECT_FALSE(circuit::jit::toolchainAvailable());

    Rng rng(96);
    const auto v = makeSignedElementSparseMatrix(10, 8, 4, 0.5, rng);
    CompileOptions options;
    options.inputBits = 5;
    const auto design = MatrixCompiler(options).compile(v);
    SimOptions sim;
    sim.threads = 1;
    sim.jit = true;
    EXPECT_EQ(design.ensureJit(sim, 1), nullptr);
    EXPECT_EQ(design.jitModuleCount(), 0u);

    IntMatrix batch(70, v.rows());
    for (std::size_t b = 0; b < batch.rows(); ++b)
        for (std::size_t r = 0; r < v.rows(); ++r)
            batch.at(b, r) = rng.uniformInt(-16, 15);
    BatchStats stats;
    sim.laneWords = 1;
    EXPECT_EQ(design.multiplyBatch(batch),
              core::runBatchWide(design, batch, sim, &stats));
    EXPECT_EQ(stats.jitGroups, 0u);
    EXPECT_GT(stats.interpFallbackGroups, 0u);

    ASSERT_EQ(unsetenv("SPATIAL_JIT_CC"), 0);
}

/** Temp-artifact files under the system temp dir matching our prefix. */
std::size_t
countJitTempEntries()
{
    namespace fs = std::filesystem;
    const char *tmp = std::getenv("TMPDIR");
    std::size_t count = 0;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(
             tmp != nullptr ? tmp : "/tmp", ec)) {
        if (entry.path().filename().string().rfind("spatial-jit-", 0) ==
            0)
            ++count;
    }
    return count;
}

/**
 * Module churn — the unit-level shape of a DesignStore eviction storm —
 * must leak neither dlopen handles (liveCount returns to baseline) nor
 * disk (no spatial-jit-* temp entries remain while modules are live or
 * after they die: artifacts are eagerly unlinked at load).
 */
TEST(Jit, ChurnLeaksNoHandlesOrTempFiles)
{
    if (!circuit::jit::toolchainAvailable())
        GTEST_SKIP() << "no C toolchain reachable";
    const std::size_t live_before = circuit::jit::JitModule::liveCount();
    const std::size_t temp_before = countJitTempEntries();

    const auto nl = makeKitchenSinkNetlist();
    const circuit::ExecPlan plan(nl);
    {
        std::vector<std::shared_ptr<const circuit::jit::JitModule>> kept;
        for (int round = 0; round < 6; ++round) {
            circuit::jit::JitSpec spec;
            if (round % 2 == 0)
                spec.segmentation = plan.segmentation(
                    static_cast<std::size_t>(2 + round));
            const auto module =
                circuit::jit::compileJitModule(plan, spec);
            ASSERT_NE(module, nullptr);
            kept.push_back(module);
        }
        EXPECT_EQ(circuit::jit::JitModule::liveCount(),
                  live_before + kept.size());
        // Artifacts are unlinked at load, not at destruction: nothing
        // extra on disk even while every module is still alive.
        EXPECT_EQ(countJitTempEntries(), temp_before);
    }
    EXPECT_EQ(circuit::jit::JitModule::liveCount(), live_before);
    EXPECT_EQ(countJitTempEntries(), temp_before);
}

/**
 * A DesignStore eviction storm with JIT admission on: every admitted
 * design gets a module, evicted designs' modules unload when the last
 * holder lets go, and when the store itself dies nothing is left —
 * neither dlopen handles nor temp artifacts.
 */
TEST(Jit, DesignStoreEvictionStormLeaksNothing)
{
    if (!circuit::jit::toolchainAvailable())
        GTEST_SKIP() << "no C toolchain reachable";
    const std::size_t live_before = circuit::jit::JitModule::liveCount();
    const std::size_t temp_before = countJitTempEntries();

    Rng rng(97);
    CompileOptions options;
    options.inputBits = 5;
    {
        serve::DesignStore store(2);
        core::SimOptions sim;
        sim.jit = true;
        store.setJitAdmission(sim, 64);
        const int designs = 5;
        for (int i = 0; i < designs; ++i) {
            const auto v =
                makeSignedElementSparseMatrix(8, 6 + i, 4, 0.5, rng);
            const auto design = store.get(v, options);
            EXPECT_GE(design->jitModuleCount(), 1u) << "design " << i;
            EXPECT_GT(design->jitCompileSeconds(), 0.0);
            // The returned shared_ptr drops here; once the LRU also
            // evicts the entry, the design and its modules die.
        }
        const auto stats = store.stats();
        EXPECT_EQ(stats.jitAdmitted, static_cast<std::size_t>(designs));
        EXPECT_EQ(stats.jitFailed, 0u);
        EXPECT_GT(stats.jitCompileSeconds, 0.0);
        EXPECT_GE(stats.evictions, static_cast<std::size_t>(designs) - 2);
        // Only the resident (≤ capacity) entries still pin modules.
        EXPECT_LE(circuit::jit::JitModule::liveCount() - live_before,
                  2 * stats.resident);
        EXPECT_EQ(countJitTempEntries(), temp_before);
    }
    EXPECT_EQ(circuit::jit::JitModule::liveCount(), live_before);
    EXPECT_EQ(countJitTempEntries(), temp_before);
}

/**
 * With admission pointed at a dead toolchain, the store counts the
 * failure and the design still serves (interpreted) — no exception
 * reaches the caller.
 */
TEST(Jit, DesignStoreAdmissionFailureFallsBack)
{
    ASSERT_EQ(setenv("SPATIAL_JIT_CC", "/nonexistent/spatial-no-cc", 1),
              0);
    Rng rng(98);
    serve::DesignStore store(4);
    core::SimOptions sim;
    sim.jit = true;
    store.setJitAdmission(sim, 64);
    CompileOptions options;
    options.inputBits = 5;
    const auto v = makeSignedElementSparseMatrix(8, 6, 4, 0.5, rng);
    const auto design = store.get(v, options);
    EXPECT_EQ(design->jitModuleCount(), 0u);
    const auto stats = store.stats();
    EXPECT_EQ(stats.jitAdmitted, 0u);
    EXPECT_EQ(stats.jitFailed, 1u);
    ASSERT_EQ(unsetenv("SPATIAL_JIT_CC"), 0);
}

} // namespace
