/**
 * @file
 * Tests of the static verification layer (src/analysis): a clean
 * sweep over registry-style designs in every sign mode, then
 * mutation-based negative tests — snapshot a correct artifact into
 * its *View, corrupt exactly one invariant, and assert the verifier
 * names the exact rule — spanning every layer: netlist, plan,
 * segmentation, tile partition, generated JIT source, and the .sptd
 * container.  Plus a DesignStore concurrency regression for the
 * thread-safety-annotated admission path.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <unistd.h>

#include "analysis/verifier.h"
#include "circuit/jit.h"
#include "experiments/design_cache.h"
#include "experiments/workload.h"
#include "serve/design_store.h"
#include "store/format.h"

namespace
{

using namespace spatial;
using namespace spatial::analysis;
namespace fs = std::filesystem;

/** A compiled registry-style design plus the views tests corrupt. */
struct Artifacts
{
    core::TiledDesign design;
    NetlistView netlist;
    PlanView plan;
    SegmentationView seg;
    std::shared_ptr<const circuit::Segmentation> segPtr;
};

Artifacts
makeArtifacts(core::SignMode mode = core::SignMode::PnSplit,
              std::size_t dim = 24)
{
    const auto workload = experiments::makeWorkload(dim, 0.5);
    const auto options = experiments::figureCompileOptions(mode);
    Artifacts a{core::TiledDesign::compile(workload.weights, options),
                {}, {}, {}, {}};
    const core::CompiledMatrix &tile = a.design.tile(0);
    a.netlist = NetlistView::of(tile.netlist());
    for (const auto &out : tile.outputs())
        if (out.node != circuit::kNoNode)
            a.netlist.outputs.push_back(out.node);
    a.plan = PlanView::of(tile.plan());
    a.segPtr = tile.plan().segmentation(64);
    a.seg = SegmentationView::of(*a.segPtr, tile.plan());
    return a;
}

/**
 * A hand-built netlist exercising every op kind — the compiled
 * registry designs are register-only (adder/sub/dff tapes), so the
 * comb-tape and constant-node rules need a synthetic circuit.
 */
struct Synthetic
{
    circuit::Netlist netlist;
    std::unique_ptr<circuit::ExecPlan> plan;
    NetlistView netlistView;
    PlanView planView;
};

Synthetic
makeSynthetic()
{
    Synthetic s;
    circuit::Netlist &n = s.netlist;
    n.addConst0();
    const auto one = n.addConst1();
    const auto i0 = n.addInput(0);
    const auto i1 = n.addInput(1);
    const auto i2 = n.addInput(2);
    // A few layers of comb logic feeding registers, wide enough for
    // multi-segment schedules at small op budgets.
    auto acc = n.addAnd(i0, i1);
    for (int layer = 0; layer < 6; ++layer) {
        const auto inv = n.addNot(acc);
        const auto mix = n.addAnd(inv, layer % 2 == 0 ? i2 : one);
        const auto held = n.addDff(mix);
        const auto sum = n.addAdder(held, acc);
        acc = layer % 2 == 0 ? n.addSub(sum, held) : sum;
    }
    n.addDelay(acc, 3);
    s.plan = std::make_unique<circuit::ExecPlan>(n);
    s.netlistView = NetlistView::of(n);
    s.planView = PlanView::of(*s.plan);
    return s;
}

/** Expect exactly this rule among the report's errors. */
void
expectRule(const Report &report, const char *rule)
{
    EXPECT_FALSE(report.ok()) << "expected " << rule;
    EXPECT_TRUE(report.has(rule))
        << "expected " << rule << ", got:\n"
        << report.str();
}

// ---------------------------------------------------------------------
// Clean sweep: every layer of every sign mode verifies with zero
// diagnostics (warnings included), matching the spatial-lint gate.
// ---------------------------------------------------------------------

TEST(AnalysisCleanTest, EverySignModeVerifiesClean)
{
    for (const auto mode :
         {core::SignMode::Unsigned, core::SignMode::PnSplit,
          core::SignMode::Csd}) {
        const auto workload = experiments::makeWorkload(24, 0.5);
        IntMatrix weights = workload.weights;
        if (mode == core::SignMode::Unsigned)
            for (std::size_t r = 0; r < weights.rows(); ++r)
                for (std::size_t c = 0; c < weights.cols(); ++c)
                    weights.at(r, c) = std::abs(weights.at(r, c));
        const auto options = experiments::figureCompileOptions(mode);
        ASSERT_TRUE(verifyCompileRequest(options, weights).ok());
        const auto design = core::TiledDesign::compile(weights, options);
        const Report report = verifyDesign(design);
        EXPECT_TRUE(report.diagnostics.empty())
            << "sign mode " << static_cast<int>(mode) << ":\n"
            << report.str();
    }
}

TEST(AnalysisCleanTest, ForcedTilingVerifiesClean)
{
    const auto workload = experiments::makeWorkload(48, 0.5);
    core::TileOptions tile;
    tile.onesBudget = 2000;
    const auto design = core::TiledDesign::compile(
        workload.weights,
        experiments::figureCompileOptions(core::SignMode::PnSplit),
        tile);
    ASSERT_GT(design.tileCount(), 1u) << "budget did not force tiling";
    const Report report = verifyDesign(design);
    EXPECT_TRUE(report.diagnostics.empty()) << report.str();
}

TEST(AnalysisCleanTest, CompileRequestMirrorsCheckCompile)
{
    const auto workload = experiments::makeWorkload(8, 0.5);
    auto options =
        experiments::figureCompileOptions(core::SignMode::Unsigned);
    // Signed weights under Unsigned mode: the compiler refuses, and
    // the verifier reports the same refusal as a named diagnostic.
    const Report report =
        verifyCompileRequest(options, workload.weights);
    expectRule(report, "COMPILE-PRECONDITION");
    options.inputBits = 0;
    expectRule(verifyCompileRequest(options, workload.weights),
               "COMPILE-PRECONDITION");
}

// ---------------------------------------------------------------------
// Netlist mutations
// ---------------------------------------------------------------------

TEST(AnalysisNetlistTest, KindByteOutOfRange)
{
    Artifacts a = makeArtifacts();
    a.netlist.kinds[a.netlist.kinds.size() / 2] =
        static_cast<circuit::CompKind>(200);
    Report report;
    Verifier().checkNetlist(a.netlist, &report);
    expectRule(report, "NET-KIND-RANGE");
}

TEST(AnalysisNetlistTest, ForwardSourceBreaksSsaOrder)
{
    Artifacts a = makeArtifacts();
    // Find a binary logic node and point a source at a later id —
    // the settle order would read it before it is computed.
    for (std::size_t id = 0; id < a.netlist.kinds.size(); ++id) {
        const auto kind = a.netlist.kinds[id];
        if ((kind == circuit::CompKind::And ||
             kind == circuit::CompKind::Adder) &&
            id + 1 < a.netlist.kinds.size()) {
            a.netlist.srcA[id] =
                static_cast<circuit::NodeId>(id + 1);
            break;
        }
    }
    Report report;
    Verifier().checkNetlist(a.netlist, &report);
    expectRule(report, "NET-SSA-ORDER");
}

TEST(AnalysisNetlistTest, InputPortPastPortCount)
{
    Artifacts a = makeArtifacts();
    for (std::size_t id = 0; id < a.netlist.kinds.size(); ++id)
        if (a.netlist.kinds[id] == circuit::CompKind::Input) {
            a.netlist.srcA[id] = static_cast<circuit::NodeId>(
                a.netlist.numInputPorts + 7);
            break;
        }
    Report report;
    Verifier().checkNetlist(a.netlist, &report);
    expectRule(report, "NET-INPUT-PORT-RANGE");
    // The vacated port is now undriven as well.
    expectRule(report, "NET-PORT-DENSE");
}

TEST(AnalysisNetlistTest, ConstantWithOperandsBreaksArity)
{
    // Compiled designs are register-only; the constant-arity rule
    // needs the synthetic circuit's Const1 node.
    Synthetic s = makeSynthetic();
    bool mutated = false;
    for (std::size_t id = 0; id < s.netlistView.kinds.size(); ++id)
        if (s.netlistView.kinds[id] == circuit::CompKind::Const1) {
            s.netlistView.srcA[id] = 0;
            mutated = true;
            break;
        }
    ASSERT_TRUE(mutated);
    Report report;
    Verifier().checkNetlist(s.netlistView, &report);
    expectRule(report, "NET-SRC-ARITY");
}

// ---------------------------------------------------------------------
// Plan mutations
// ---------------------------------------------------------------------

TEST(AnalysisPlanTest, SwappedSettleOpsBreakTapeOrder)
{
    Synthetic s = makeSynthetic();
    ASSERT_GE(s.planView.comb.size(), 2u);
    std::swap(s.planView.comb[0], s.planView.comb[1]);
    Report report;
    Verifier().checkPlan(s.planView, nullptr, &report);
    expectRule(report, "PLAN-COMB-ORDER");
}

TEST(AnalysisPlanTest, CombReadingLaterSlotIsUnsettled)
{
    Synthetic s = makeSynthetic();
    ASSERT_GE(s.planView.comb.size(), 2u);
    // First op reads the last op's destination: a same-cycle value
    // the ascending tape has not produced yet.
    s.planView.comb.front().a = s.planView.comb.back().dst;
    Report report;
    Verifier().checkPlan(s.planView, nullptr, &report);
    expectRule(report, "PLAN-COMB-SRC-SETTLED");
}

TEST(AnalysisPlanTest, ReversedCommitTapeBreaksOrder)
{
    Artifacts a = makeArtifacts(core::SignMode::Csd);
    ASSERT_GE(a.plan.regs.size(), 2u);
    std::swap(a.plan.regs[0], a.plan.regs[1]);
    Report report;
    Verifier().checkPlan(a.plan, nullptr, &report);
    expectRule(report, "PLAN-COMMIT-ORDER");
}

TEST(AnalysisPlanTest, RegReadingHigherSlotIsAnInPlaceHazard)
{
    Artifacts a = makeArtifacts(core::SignMode::Csd);
    ASSERT_GE(a.plan.regs.size(), 2u);
    // The last commit op (lowest dst) reads the first one's dst: the
    // in-place descending sweep has already overwritten it.
    a.plan.regs.back().a = a.plan.regs.front().dst;
    Report report;
    Verifier().checkPlan(a.plan, nullptr, &report);
    expectRule(report, "PLAN-REG-HAZARD");
}

TEST(AnalysisPlanTest, DuplicateDriverAndSlotRange)
{
    Artifacts a = makeArtifacts();
    ASSERT_GE(a.plan.regs.size(), 2u);
    {
        PlanView p = a.plan;
        p.regs[1].dst = p.regs[0].dst;
        Report report;
        Verifier().checkPlan(p, nullptr, &report);
        expectRule(report, "PLAN-DST-UNIQUE");
    }
    {
        PlanView p = a.plan;
        p.regs[0].b = static_cast<circuit::NodeId>(p.numSlots() + 5);
        Report report;
        Verifier().checkPlan(p, nullptr, &report);
        expectRule(report, "PLAN-SLOT-RANGE");
    }
}

TEST(AnalysisPlanTest, DroppedOpBreaksNetlistCoverage)
{
    Artifacts a = makeArtifacts();
    ASSERT_GE(a.plan.regs.size(), 2u);
    a.plan.regs.erase(a.plan.regs.begin() + 1);
    Report report;
    Verifier().checkPlan(a.plan, &a.netlist, &report);
    expectRule(report, "PLAN-COVERAGE");
}

TEST(AnalysisPlanTest, CorruptedInvMaskBreaksOpForm)
{
    Artifacts a = makeArtifacts();
    ASSERT_FALSE(a.plan.regs.empty());
    a.plan.regs[0].bInv ^= 0x10;
    Report report;
    Verifier().checkPlan(a.plan, &a.netlist, &report);
    expectRule(report, "PLAN-OP-FORM");
}

// ---------------------------------------------------------------------
// Segmentation mutations
// ---------------------------------------------------------------------

TEST(AnalysisSegTest, WidenedSegmentSliceBreaksPartition)
{
    Artifacts a = makeArtifacts();
    ASSERT_GE(a.seg.segments.size(), 2u);
    a.seg.segments[0].regEnd += 1; // overlaps segment 1's range
    Report report;
    Verifier().checkSegmentation(a.seg, &report);
    expectRule(report, "SEG-PARTITION");
}

TEST(AnalysisSegTest, SwappedSlotOfEntriesBreakThePermutation)
{
    Artifacts a = makeArtifacts();
    // Duplicate one mapping: two nodes land in one slot.
    a.seg.slotOf[1] = a.seg.slotOf[0];
    Report report;
    Verifier().checkSegmentation(a.seg, &report);
    expectRule(report, "SEG-SLOTOF-PERM");
}

TEST(AnalysisSegTest, SwappedScheduleOpsBreakContiguity)
{
    Artifacts a = makeArtifacts();
    ASSERT_GE(a.seg.segments.size(), 2u);
    // Swap one op across the segment boundary: each segment now owns
    // a slot outside its contiguous slice.
    const auto &s0 = a.seg.segments[0];
    const auto &s1 = a.seg.segments[1];
    ASSERT_GT(s0.regEnd, s0.regBegin);
    ASSERT_GT(s1.regEnd, s1.regBegin);
    std::swap(a.seg.regs[s0.regBegin], a.seg.regs[s1.regBegin]);
    Report report;
    Verifier().checkSegmentation(a.seg, &report);
    expectRule(report, "SEG-SLOT-CONTIGUOUS");
}

TEST(AnalysisSegTest, UnsettledReadBreaksScheduleTopology)
{
    // Settle-order topology needs a comb tape, so segment the
    // synthetic plan at a budget small enough to split it.
    Synthetic s = makeSynthetic();
    const auto segPtr = s.plan->segmentation(4);
    SegmentationView seg = SegmentationView::of(*segPtr, *s.plan);
    ASSERT_GE(seg.segments.size(), 2u);
    ASSERT_GE(seg.comb.size(), 2u);
    seg.comb.front().a = seg.comb.back().dst;
    Report report;
    Verifier().checkSegmentation(seg, &report);
    expectRule(report, "SEG-TOPO");
}

TEST(AnalysisSegTest, ReversedCommitReadIsAHazard)
{
    Artifacts a = makeArtifacts();
    ASSERT_GE(a.seg.regs.size(), 2u);
    // The first commit op reads the last one's slot: the descending
    // dense-fallback sweep overwrites it first.
    a.seg.regs.front().a = a.seg.regs.back().dst;
    Report report;
    Verifier().checkSegmentation(a.seg, &report);
    expectRule(report, "SEG-REG-HAZARD");
}

TEST(AnalysisSegTest, DroppedConsumerEdgeIsCaught)
{
    Artifacts a = makeArtifacts();
    // Find a segment with a non-empty wake list and shrink it by one.
    bool mutated = false;
    for (auto &sg : a.seg.segments) {
        if (sg.combConsumersEnd > sg.combConsumersBegin) {
            sg.combConsumersEnd -= 1;
            mutated = true;
            break;
        }
        if (sg.regConsumersEnd > sg.regConsumersBegin) {
            sg.regConsumersEnd -= 1;
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated) << "no segment had consumers to drop";
    Report report;
    Verifier().checkSegmentation(a.seg, &report);
    expectRule(report, "SEG-CONSUMER-MISSING");
}

TEST(AnalysisSegTest, ForeignConsumerEdgeIsCaught)
{
    Artifacts a = makeArtifacts();
    // Point a segment's wake range at some other packed run that
    // contains a segment which reads nothing from it.
    bool mutated = false;
    for (auto &sg : a.seg.segments) {
        if (sg.combConsumersEnd == sg.combConsumersBegin &&
            !a.seg.consumers.empty()) {
            // Give an empty list one arbitrary existing entry.
            sg.combConsumersBegin = 0;
            sg.combConsumersEnd = 1;
            mutated = true;
            break;
        }
    }
    if (!mutated)
        GTEST_SKIP() << "every segment already wakes someone";
    Report report;
    Verifier().checkSegmentation(a.seg, &report);
    // Either the grafted edge is spurious (EXTRA) or — if segment 0's
    // real reader coincides — the list is fine for that segment but
    // the mutation was a no-op; require the report to say EXTRA or be
    // clean, and accept only EXTRA as the mutation firing.
    expectRule(report, "SEG-CONSUMER-EXTRA");
}

// ---------------------------------------------------------------------
// Tile mutations
// ---------------------------------------------------------------------

TEST(AnalysisTileTest, GapAndBudgetViolations)
{
    const auto workload = experiments::makeWorkload(48, 0.5);
    core::TileOptions tileOptions;
    tileOptions.onesBudget = 2000;
    const auto design = core::TiledDesign::compile(
        workload.weights,
        experiments::figureCompileOptions(core::SignMode::PnSplit),
        tileOptions);
    ASSERT_GT(design.tileCount(), 1u);
    const TileView clean = TileView::of(design);
    {
        TileView v = clean;
        v.tiles[1].colBegin += 1; // gap between strip 0 and 1
        Report report;
        Verifier().checkTiles(v, &report);
        expectRule(report, "TILE-COVER");
    }
    {
        TileView v = clean;
        v.tiles[0].estimatedLuts = v.lutBudget * 3; // over budget
        Report report;
        Verifier().checkTiles(v, &report);
        expectRule(report, "TILE-BUDGET");
    }
    {
        TileView v = clean;
        v.tileShapes[0].second += 1; // compiled strip width mismatch
        Report report;
        Verifier().checkTiles(v, &report);
        expectRule(report, "TILE-SHAPE");
    }
}

// ---------------------------------------------------------------------
// JIT source mutations (pure text against an unchanged expectation)
// ---------------------------------------------------------------------

class AnalysisJitTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        artifacts_ = std::make_unique<Artifacts>(makeArtifacts());
        spec_.laneWords = {1, 4};
        source_ = circuit::jit::generateJitSource(
            artifacts_->design.tile(0).plan(), spec_);
        ASSERT_FALSE(source_.empty());
    }

    Report verify(const std::string &source) const
    {
        return verifyJitSource(artifacts_->design.tile(0).plan(),
                               spec_, source);
    }

    std::unique_ptr<Artifacts> artifacts_;
    circuit::jit::JitSpec spec_;
    std::string source_;
};

TEST_F(AnalysisJitTest, PristineSourcePasses)
{
    EXPECT_TRUE(verify(source_).diagnostics.empty())
        << verify(source_).str();
    // The gated flavor passes too.
    circuit::jit::JitSpec gated = spec_;
    gated.segmentation =
        artifacts_->design.tile(0).plan().segmentation(64);
    const std::string gatedSource = circuit::jit::generateJitSource(
        artifacts_->design.tile(0).plan(), gated);
    const Report report = verifyJitSource(
        artifacts_->design.tile(0).plan(), gated, gatedSource);
    EXPECT_TRUE(report.diagnostics.empty()) << report.str();
    // And a plan with a comb tape, so the settle-statement (SN/SA)
    // audit runs against real emitted text.
    const Synthetic s = makeSynthetic();
    const std::string combSource =
        circuit::jit::generateJitSource(*s.plan, spec_);
    const Report combReport = verifyJitSource(*s.plan, spec_, combSource);
    EXPECT_TRUE(combReport.diagnostics.empty()) << combReport.str();
}

TEST_F(AnalysisJitTest, BitFlippedDescriptorVersionIsCaught)
{
    std::string mutated = source_;
    const std::size_t at =
        mutated.find("spatial_jit_desc_v3 = { 3,");
    ASSERT_NE(at, std::string::npos);
    mutated[at + std::string("spatial_jit_desc_v3 = { ").size()] = '7';
    expectRule(verify(mutated), "JIT-DESC-VERSION");
}

TEST_F(AnalysisJitTest, DroppedStatementBreaksTheCount)
{
    // Register-only designs emit no settle statements; drop a plain
    // commit statement ("RA(", which cannot match "RAT(" lines).
    const std::size_t at = source_.find("\nRA(");
    ASSERT_NE(at, std::string::npos);
    std::string mutated = source_;
    mutated.erase(at + 1, mutated.find('\n', at + 1) - at);
    expectRule(verify(mutated), "JIT-STMT-COUNT");
}

TEST_F(AnalysisJitTest, CorruptedOffsetBreaksStatementForm)
{
    // Flip the first commit statement's destination offset digit.
    const std::size_t at = source_.find("\nRA(");
    ASSERT_NE(at, std::string::npos);
    std::string mutated = source_;
    const char digit = mutated[at + 4];
    mutated[at + 4] = digit == '9' ? '8' : static_cast<char>(digit + 1);
    expectRule(verify(mutated), "JIT-STMT-FORM");
}

TEST_F(AnalysisJitTest, MissingTableRowIsCaught)
{
    std::string mutated = source_;
    const std::size_t tables =
        mutated.find("static const spatial_jit_table spatial_tables");
    ASSERT_NE(tables, std::string::npos);
    const std::size_t row = mutated.find("\n{ ", tables);
    ASSERT_NE(row, std::string::npos);
    mutated.erase(row + 1, mutated.find('\n', row + 1) - row);
    expectRule(verify(mutated), "JIT-TABLE-COUNT");
}

TEST_F(AnalysisJitTest, LaneWordSectionMismatchIsCaught)
{
    // Ask the verifier for a W the source was not generated with.
    circuit::jit::JitSpec narrow = spec_;
    narrow.laneWords = {1};
    const Report report = verifyJitSource(
        artifacts_->design.tile(0).plan(), narrow, source_);
    expectRule(report, "JIT-SECTION");
}

// ---------------------------------------------------------------------
// .sptd container mutations
// ---------------------------------------------------------------------

class AnalysisFileTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("analysis_test_" + std::to_string(::getpid()));
        fs::create_directories(dir_);
        const auto workload = experiments::makeWorkload(16, 0.5);
        const auto options =
            experiments::figureCompileOptions(core::SignMode::PnSplit);
        key_ = experiments::makeDesignKey(workload.weights, options);
        design_ = std::make_unique<core::TiledDesign>(
            core::TiledDesign::compile(workload.weights, options));
        path_ = (dir_ / "design.sptd").string();
        ASSERT_TRUE(store::saveDesignFile(path_, key_, *design_));
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::vector<char> readFile() const
    {
        std::ifstream in(path_, std::ios::binary);
        return {std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>()};
    }

    void writeFile(const std::vector<char> &bytes) const
    {
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    fs::path dir_;
    std::string path_;
    experiments::DesignKey key_;
    std::unique_ptr<core::TiledDesign> design_;
};

TEST_F(AnalysisFileTest, IntactFileVerifiesCleanIncludingKey)
{
    const Report report = verifyFile(path_, &key_);
    EXPECT_TRUE(report.diagnostics.empty()) << report.str();
}

TEST_F(AnalysisFileTest, WrongMagicIsCaught)
{
    auto bytes = readFile();
    bytes[0] = 'X';
    writeFile(bytes);
    expectRule(verifyFile(path_), "FILE-MAGIC");
}

TEST_F(AnalysisFileTest, PayloadBitFlipFailsTheChecksum)
{
    auto bytes = readFile();
    bytes[bytes.size() / 2] ^= 0x40;
    writeFile(bytes);
    expectRule(verifyFile(path_), "FILE-CHECKSUM");
}

TEST_F(AnalysisFileTest, TruncationIsCaught)
{
    auto bytes = readFile();
    bytes.resize(bytes.size() / 2);
    writeFile(bytes);
    expectRule(verifyFile(path_), "FILE-TRUNCATED");
}

TEST_F(AnalysisFileTest, WrongKeyIsCaught)
{
    experiments::DesignKey other = key_;
    other.contentHash ^= 1;
    expectRule(verifyFile(path_, &other), "FILE-KEY-MISMATCH");
}

TEST_F(AnalysisFileTest, MissingFileIsCaught)
{
    expectRule(verifyFile((dir_ / "absent.sptd").string()),
               "FILE-NOT-FOUND");
}

// ---------------------------------------------------------------------
// DesignStore concurrency regression: the annotated admission path
// under a concurrent get() storm over a small capacity (evictions,
// demotions to the cold tier, and rematerializations all racing).
// ---------------------------------------------------------------------

TEST(AnalysisConcurrencyTest, DesignStoreAdmissionStormStaysCoherent)
{
    const fs::path dir =
        fs::temp_directory_path() /
        ("analysis_store_" + std::to_string(::getpid()));
    fs::create_directories(dir);
    serve::StoreOptions options;
    options.capacity = 2;
    options.spillDir = dir.string();
    serve::DesignStore store(options);

    constexpr int kThreads = 4;
    constexpr int kIters = 12;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&store, t] {
            for (int i = 0; i < kIters; ++i) {
                const std::size_t dim = 8 + 4 * ((t + i) % 4);
                const auto workload =
                    experiments::makeWorkload(dim, 0.5);
                const auto opts = experiments::figureCompileOptions(
                    core::SignMode::PnSplit);
                const auto design = store.get(workload.weights, opts);
                ASSERT_NE(design, nullptr);
                EXPECT_EQ(design->rows(), dim);
                // Admission hands back verifiably sound artifacts
                // even while eviction races promotion.
                if (i == 0) {
                    EXPECT_TRUE(verifyDesign(*design).ok());
                }
            }
        });
    for (auto &thread : threads)
        thread.join();
    const auto stats = store.stats();
    EXPECT_EQ(stats.coldFallbacks, 0u);
    fs::remove_all(dir);
}

} // namespace
