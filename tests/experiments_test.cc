/**
 * @file
 * Tests for the experiment subsystem: grid expansion and overrides,
 * deterministic results under 1 vs N workers, design-cache hit
 * accounting, JSON schema round-trip, and port-identity spot checks —
 * fig08, fig17, and tab1 must reproduce the retired standalone bench
 * binaries' numbers exactly.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/gpu_model.h"
#include "common/args.h"
#include "common/rng.h"
#include "core/compiler.h"
#include "experiments/design_cache.h"
#include "experiments/json.h"
#include "experiments/registry.h"
#include "experiments/sweep.h"
#include "fpga/report.h"
#include "matrix/csr.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;
using namespace spatial::experiments;

const Experiment &
findExperiment(const std::string &name)
{
    const auto *exp = Registry::instance().find(name);
    EXPECT_NE(exp, nullptr) << "missing experiment " << name;
    return *exp;
}

TEST(Grid, CartesianExpansionOrder)
{
    const Grid grid = Grid::cartesian(
        {Axis{"a", {std::int64_t{1}, std::int64_t{2}}},
         Axis{"b",
              {Value{std::string("x")}, Value{std::string("y")},
               Value{std::string("z")}}}});
    const auto points = grid.expand();
    ASSERT_EQ(points.size(), 6u);
    // Last axis fastest: (1,x) (1,y) (1,z) (2,x) (2,y) (2,z).
    EXPECT_EQ(points[0].getInt("a"), 1);
    EXPECT_EQ(points[0].getString("b"), "x");
    EXPECT_EQ(points[2].getInt("a"), 1);
    EXPECT_EQ(points[2].getString("b"), "z");
    EXPECT_EQ(points[3].getInt("a"), 2);
    EXPECT_EQ(points[3].getString("b"), "x");
    EXPECT_EQ(points[5].getString("b"), "z");
}

TEST(Grid, CartesianOverrideReplacesAxis)
{
    Grid grid = Grid::cartesian(
        {Axis{"dim", {std::int64_t{64}, std::int64_t{128}}},
         Axis{"sparsity", {0.9}}});
    EXPECT_EQ(grid.applyOverride(
                  "dim", {Value{std::int64_t{256}},
                          Value{std::int64_t{512}},
                          Value{std::int64_t{1024}}}),
              "");
    const auto points = grid.expand();
    ASSERT_EQ(points.size(), 3u);
    EXPECT_EQ(points[0].getInt("dim"), 256);
    EXPECT_EQ(points[2].getInt("dim"), 1024);
    EXPECT_NE(grid.applyOverride("nope", {Value{std::int64_t{1}}}),
              "");
}

TEST(Grid, CaseListOverrideFilters)
{
    Grid grid = Grid::cases({"dim", "sparsity"},
                            {{std::int64_t{64}, 0.9},
                             {std::int64_t{1024}, 0.9},
                             {std::int64_t{1024}, 0.6}});
    EXPECT_EQ(grid.applyOverride("dim", {Value{std::int64_t{1024}}}),
              "");
    const auto points = grid.expand();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].getInt("dim"), 1024);
    EXPECT_DOUBLE_EQ(points[0].getReal("sparsity"), 0.9);
    EXPECT_DOUBLE_EQ(points[1].getReal("sparsity"), 0.6);
    // Filtering to nothing is an error, not an empty sweep.
    EXPECT_NE(grid.applyOverride("dim", {Value{std::int64_t{7}}}), "");
}

TEST(Args, SplitListAndRanges)
{
    const auto plain = Args::splitList("64,256,1024");
    ASSERT_EQ(plain.size(), 3u);
    EXPECT_EQ(plain[0], "64");
    EXPECT_EQ(plain[2], "1024");

    const auto range = Args::splitList("0.8:0.95:0.05");
    ASSERT_EQ(range.size(), 4u);
    EXPECT_EQ(range[0], "0.8");
    EXPECT_EQ(range[3], "0.95");

    const auto mixed = Args::splitList("1,4:6:1,9");
    ASSERT_EQ(mixed.size(), 5u);
    EXPECT_EQ(mixed[1], "4");
    EXPECT_EQ(mixed[3], "6");
    EXPECT_EQ(mixed[4], "9");
}

TEST(Args, SubcommandPositionals)
{
    const char *argv[] = {"spatial-bench", "run", "fig08",
                          "--threads=4"};
    const Args args(4, argv, /*allow_positionals=*/true);
    ASSERT_EQ(args.positionals().size(), 2u);
    EXPECT_EQ(args.positionals()[0], "run");
    EXPECT_EQ(args.positionals()[1], "fig08");
    EXPECT_EQ(args.getInt("threads", 0), 4);
}

void
expectSameRows(const ExperimentResult &a, const ExperimentResult &b)
{
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (std::size_t r = 0; r < a.rows.size(); ++r) {
        ASSERT_EQ(a.rows[r].size(), b.rows[r].size());
        for (std::size_t c = 0; c < a.rows[r].size(); ++c) {
            EXPECT_EQ(a.rows[r][c].text, b.rows[r][c].text)
                << "row " << r << " col " << c;
            EXPECT_TRUE(
                valueMatches(a.rows[r][c].value, b.rows[r][c].value))
                << "row " << r << " col " << c;
        }
    }
}

TEST(SweepEngine, DeterministicAcrossWorkerCounts)
{
    const auto &exp = findExperiment("fig05");
    SweepOptions serial;
    serial.threads = 1;
    SweepOptions parallel;
    parallel.threads = 4;
    const auto a = SweepEngine(serial).run(exp);
    const auto b = SweepEngine(parallel).run(exp);
    EXPECT_EQ(a.points.size(), 11u);
    expectSameRows(a, b);
}

TEST(SweepEngine, DesignCacheSharedAcrossExperiments)
{
    // fig13 (latency) and fig14 (speedup) derive from the same
    // workloads; the second sweep must be all hits.
    const std::vector<GridOverride> small = {GridOverride{
        "dim", {Value{std::int64_t{64}}, Value{std::int64_t{128}}}}};
    SweepEngine engine;
    const auto latency = engine.run(findExperiment("fig13"), small);
    EXPECT_EQ(latency.cacheDelta.misses, 2u);
    const auto speedup = engine.run(findExperiment("fig14"), small);
    EXPECT_EQ(speedup.cacheDelta.misses, 0u);
    EXPECT_GT(speedup.cacheDelta.hits, 0u);
}

TEST(SweepEngine, SameExperimentIsFullyCached)
{
    SweepEngine engine;
    const auto &exp = findExperiment("fig08");
    const auto first = engine.run(exp);
    EXPECT_EQ(first.cacheDelta.misses, 6u);
    const auto second = engine.run(exp);
    EXPECT_EQ(second.cacheDelta.misses, 0u);
    EXPECT_EQ(second.cacheDelta.hits, 6u);
    expectSameRows(first, second);
}

TEST(Json, SchemaRoundTrip)
{
    SweepEngine engine;
    const auto result = engine.run(findExperiment("fig08"));
    const auto text = result.toJson();

    std::vector<std::string> columns;
    std::vector<std::vector<Value>> rows;
    ASSERT_TRUE(parseResultJson(text, columns, rows));
    EXPECT_EQ(columns, result.columns);
    ASSERT_EQ(rows.size(), result.rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        ASSERT_EQ(rows[r].size(), result.rows[r].size());
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
            const Value &expected = result.rows[r][c].value;
            const Value &parsed = rows[r][c];
            if (isString(expected)) {
                EXPECT_EQ(asString(parsed), asString(expected));
            } else {
                // Numbers survive bit-exactly (%.17g writer).
                EXPECT_EQ(asReal(parsed), asReal(expected))
                    << "row " << r << " col " << c;
            }
        }
    }
}

TEST(Json, RejectsMalformedDocuments)
{
    std::vector<std::string> columns;
    std::vector<std::vector<Value>> rows;
    EXPECT_FALSE(parseResultJson("", columns, rows));
    EXPECT_FALSE(parseResultJson("{\"schema\": \"nope\"}", columns,
                                 rows));
    EXPECT_FALSE(parseResultJson("{\"schema\": \"spatial-bench/v1\","
                                 "\"columns\": [\"a\"], \"rows\": "
                                 "[[1, 2]]}",
                                 columns, rows));
}

TEST(Json, NonFiniteRealsAndUnicodeEscapes)
{
    // Non-finite reals must not produce invalid JSON tokens.
    EXPECT_EQ(jsonReal(std::nan("")), "null");
    EXPECT_EQ(jsonReal(1.0 / 0.0 * 1.0), "null");

    // Null cells parse back as NaN.
    std::vector<std::string> columns;
    std::vector<std::vector<Value>> rows;
    ASSERT_TRUE(parseResultJson(
        "{\"schema\": \"spatial-bench/v1\", \"columns\": [\"x\"], "
        "\"rows\": [[null]]}",
        columns, rows));
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_TRUE(std::isnan(asReal(rows[0][0])));

    // Unicode escapes: UTF-8 encoding, invalid hex rejected.
    const auto euro = JsonValue::parse("\"\\u20ac\"");
    ASSERT_TRUE(euro.has_value());
    EXPECT_EQ(euro->string(), "\xe2\x82\xac");
    EXPECT_FALSE(JsonValue::parse("\"\\uZZZZ\"").has_value());
    EXPECT_FALSE(JsonValue::parse("\"\\ud800\"").has_value());
}

// ---------------------------------------------------------------------
// Port-identity spot checks: the registry must reproduce the retired
// standalone binaries exactly.  Each check re-derives the expected
// numbers with the original binary's logic inlined.
// ---------------------------------------------------------------------

TEST(PortIdentity, Fig08MatchesPrePortBinary)
{
    SweepEngine engine;
    const auto result = engine.run(findExperiment("fig08"));
    ASSERT_EQ(result.rows.size(), 6u);

    // Original bench/fig08_bitwidth.cc main loop.
    Rng rng(808);
    std::size_t row = 0;
    for (const int bits : {1, 2, 4, 8, 16, 32}) {
        const auto weights =
            makeElementSparseMatrix(64, 64, bits, 0.0, rng);
        core::CompileOptions options;
        options.inputBits = 8;
        options.inputsSigned = true;
        options.signMode = core::SignMode::Unsigned;
        const auto design =
            core::MatrixCompiler(options).compile(weights);
        const auto point = fpga::evaluateDesign(design);
        const double per_bit =
            static_cast<double>(point.resources.luts) /
            static_cast<double>(bits);

        EXPECT_EQ(asInt(result.rows[row][0].value), bits);
        EXPECT_EQ(asInt(result.rows[row][1].value),
                  static_cast<std::int64_t>(weights.onesCount()));
        EXPECT_EQ(asInt(result.rows[row][2].value),
                  static_cast<std::int64_t>(point.resources.luts));
        EXPECT_EQ(asInt(result.rows[row][3].value),
                  static_cast<std::int64_t>(point.resources.ffs));
        EXPECT_EQ(asReal(result.rows[row][4].value), per_bit);
        ++row;
    }
}

TEST(PortIdentity, Fig17MatchesPrePortBinary)
{
    SweepEngine engine;
    const auto result = engine.run(findExperiment("fig17"));
    ASSERT_EQ(result.rows.size(), 6u);

    // Original bench/fig17_gpu_batch_1024.cc, including the retired
    // bench/harness.cc makeWorkload seeding.
    const std::size_t dim = 1024;
    const double sparsity = 0.95;
    Rng rng(99 + dim * 31 +
            static_cast<std::uint64_t>(sparsity * 1000.0));
    const auto weights =
        makeSignedElementSparseMatrix(dim, dim, 8, sparsity, rng);
    const auto csr = CsrMatrix<std::int64_t>::fromDense(weights);
    const auto nnz = csr.nnz();

    core::CompileOptions options;
    options.inputBits = 8;
    options.inputsSigned = true;
    options.signMode = core::SignMode::Csd;
    const auto design = core::MatrixCompiler(options).compile(weights);
    const auto point = fpga::evaluateDesign(design);

    const baselines::GpuModel cusparse(baselines::GpuLibrary::CuSparse);
    const baselines::GpuModel optimized(
        baselines::GpuLibrary::OptimizedKernel);

    std::size_t row = 0;
    for (const std::size_t batch : {1u, 2u, 4u, 16u, 32u, 64u}) {
        const double fpga_ns = point.batchLatencyNs(batch);
        EXPECT_EQ(asInt(result.rows[row][0].value),
                  static_cast<std::int64_t>(batch));
        EXPECT_EQ(asReal(result.rows[row][1].value), fpga_ns);
        EXPECT_EQ(asReal(result.rows[row][2].value),
                  cusparse.latencyNs(dim, dim, nnz, batch) / fpga_ns);
        EXPECT_EQ(asReal(result.rows[row][3].value),
                  optimized.latencyNs(dim, dim, nnz, batch) / fpga_ns);
        ++row;
    }
}

TEST(PortIdentity, Tab1MatchesPrePortBinary)
{
    SweepEngine engine;
    const auto result = engine.run(findExperiment("tab1"));

    // The exact 3 + 7 = 10 trace the retired binary tabulated.
    const struct
    {
        int cycle, cin, a, b, s, cout;
        const char *reg;
    } expected[] = {{1, 0, 1, 1, 0, 1, "0000"},
                    {2, 1, 1, 1, 1, 1, "1000"},
                    {3, 1, 0, 1, 0, 1, "0100"},
                    {4, 1, 0, 0, 1, 0, "1010"}};

    ASSERT_EQ(result.rows.size(), 4u);
    for (std::size_t r = 0; r < 4; ++r) {
        EXPECT_EQ(asInt(result.rows[r][0].value), expected[r].cycle);
        EXPECT_EQ(asInt(result.rows[r][1].value), expected[r].cin);
        EXPECT_EQ(asInt(result.rows[r][2].value), expected[r].a);
        EXPECT_EQ(asInt(result.rows[r][3].value), expected[r].b);
        EXPECT_EQ(asInt(result.rows[r][4].value), expected[r].s);
        EXPECT_EQ(asInt(result.rows[r][5].value), expected[r].cout);
        EXPECT_EQ(asString(result.rows[r][6].value), expected[r].reg);
    }
}

TEST(DesignCache, DistinguishesOptions)
{
    DesignCache cache;
    Rng rng(5);
    const auto weights =
        makeSignedElementSparseMatrix(16, 16, 8, 0.9, rng);
    const auto pn = cache.getFigure(weights, core::SignMode::PnSplit);
    const auto csd = cache.getFigure(weights, core::SignMode::Csd);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().hits, 0u);
    const auto again = cache.getFigure(weights, core::SignMode::Csd);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(again.get(), csd.get());
    EXPECT_NE(pn.get(), csd.get());
}

} // namespace
