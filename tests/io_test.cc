/**
 * @file
 * Tests of matrix serialization: round trips, format checks, and error
 * handling on malformed input.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/rng.h"
#include "matrix/generate.h"
#include "matrix/io.h"

namespace
{

using namespace spatial;

TEST(MatrixIo, StreamRoundTrip)
{
    Rng rng(1);
    const auto m = makeSignedElementSparseMatrix(9, 13, 8, 0.5, rng);
    std::stringstream ss;
    writeMatrix(m, ss);
    const auto back = readMatrix(ss);
    EXPECT_EQ(back, m);
}

TEST(MatrixIo, PreservesExtremeValues)
{
    IntMatrix m(2, 2);
    m.at(0, 0) = -128;
    m.at(0, 1) = 127;
    m.at(1, 0) = (std::int64_t{1} << 40);
    m.at(1, 1) = -(std::int64_t{1} << 40);
    std::stringstream ss;
    writeMatrix(m, ss);
    EXPECT_EQ(readMatrix(ss), m);
}

TEST(MatrixIo, HeaderContainsShape)
{
    IntMatrix m(3, 4);
    std::stringstream ss;
    writeMatrix(m, ss);
    std::string first;
    std::getline(ss, first);
    EXPECT_EQ(first, "spatial-matrix v1 3 4");
}

TEST(MatrixIoDeath, RejectsBadMagic)
{
    std::stringstream ss("other-format v1 2 2\n1 2\n3 4\n");
    EXPECT_DEATH(
        {
            auto m = readMatrix(ss);
            (void)m;
        },
        "not a spatial-matrix");
}

TEST(MatrixIoDeath, RejectsTruncatedBody)
{
    std::stringstream ss("spatial-matrix v1 2 2\n1 2\n3\n");
    EXPECT_DEATH(
        {
            auto m = readMatrix(ss);
            (void)m;
        },
        "truncated");
}

TEST(MatrixIo, FileRoundTrip)
{
    Rng rng(2);
    const auto m = makeSignedElementSparseMatrix(5, 5, 6, 0.4, rng);
    const std::string path = "/tmp/spatial_io_test_matrix.txt";
    saveMatrix(m, path);
    const auto back = loadMatrix(path);
    EXPECT_EQ(back, m);
    std::remove(path.c_str());
}

} // namespace
