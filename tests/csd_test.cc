/**
 * @file
 * Property tests for the CSD transform (Section V, Listing 1).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "matrix/bits.h"
#include "matrix/csd.h"
#include "matrix/generate.h"
#include "matrix/pn_split.h"

namespace
{

using namespace spatial;

TEST(Csd, PaperExampleFifteen)
{
    // 15 = 1111b -> 10000b - 1b: four ones become two.
    Rng rng(1);
    const auto digits = toCsdDigits(15, 4, rng);
    EXPECT_EQ(csdValue(digits), 15);
    EXPECT_EQ(csdOnes(digits), 2);
    EXPECT_EQ(digits.size(), 5u);
    EXPECT_EQ(digits[0], -1);
    EXPECT_EQ(digits[4], 1);
}

TEST(Csd, ZeroAndPowersOfTwoUntouched)
{
    Rng rng(2);
    EXPECT_EQ(csdOnes(toCsdDigits(0, 8, rng)), 0);
    for (int k = 0; k < 8; ++k) {
        const auto digits = toCsdDigits(std::int64_t{1} << k, 8, rng);
        EXPECT_EQ(csdValue(digits), std::int64_t{1} << k);
        EXPECT_EQ(csdOnes(digits), 1);
    }
}

TEST(Csd, LengthTwoChainIsCoinBalanced)
{
    // 3 = 11b: heads -> 10-1 (2 ones), tails -> 011 (2 ones); both valid.
    Rng rng(3);
    int substituted = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        const auto digits = toCsdDigits(3, 4, rng);
        EXPECT_EQ(csdValue(digits), 3);
        EXPECT_EQ(csdOnes(digits), 2);
        substituted += (digits[0] == -1);
    }
    EXPECT_NEAR(static_cast<double>(substituted) / n, 0.5, 0.05);
}

TEST(Csd, LongChainAlwaysSubstituted)
{
    Rng rng(4);
    // 7 = 111b -> 1000 - 1.
    const auto digits = toCsdDigits(7, 4, rng);
    EXPECT_EQ(csdValue(digits), 7);
    EXPECT_EQ(csdOnes(digits), 2);
}

class CsdValueSweep : public ::testing::TestWithParam<int>
{};

TEST_P(CsdValueSweep, ExhaustiveValuePreservationAndNoRegression)
{
    const int bitwidth = GetParam();
    Rng rng(static_cast<std::uint64_t>(bitwidth) * 97 + 5);
    for (std::int64_t v = 0; v <= maxUnsigned(bitwidth); ++v) {
        const auto digits = toCsdDigits(v, bitwidth, rng);
        ASSERT_EQ(csdValue(digits), v) << "value " << v;
        ASSERT_LE(csdOnes(digits), popcount64(v)) << "value " << v;
        ASSERT_EQ(digits.size(), static_cast<std::size_t>(bitwidth) + 1);
    }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, CsdValueSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 10, 12));

TEST(Csd, ReducesOnesByRoughlySeventeenPercentOnUniformEightBit)
{
    // Section V: "CSD ... reduces the hardware by 17%" for uniform random
    // 8-bit data.  The exact expectation for random data is ~1/6 fewer
    // ones; accept a band around it.
    Rng rng(5);
    std::int64_t binary_ones = 0, csd_ones = 0;
    for (int i = 0; i < 20000; ++i) {
        const std::int64_t v = rng.uniformInt(0, 255);
        binary_ones += popcount64(v);
        csd_ones += csdOnes(toCsdDigits(v, 8, rng));
    }
    const double reduction =
        1.0 - static_cast<double>(csd_ones) / static_cast<double>(binary_ones);
    EXPECT_GT(reduction, 0.12);
    EXPECT_LT(reduction, 0.22);
}

TEST(CsdMatrix, TransformPreservesDifference)
{
    Rng rng(6);
    const auto v = makeSignedElementSparseMatrix(24, 24, 8, 0.5, rng);
    const auto pn = pnSplit(v);
    const auto csd = csdTransform(pn, rng);
    EXPECT_TRUE(csd.p.isNonNegative());
    EXPECT_TRUE(csd.n.isNonNegative());
    EXPECT_EQ(csd.reconstruct(), v);
}

TEST(CsdMatrix, NeverIncreasesOnes)
{
    Rng rng(7);
    for (int trial = 0; trial < 10; ++trial) {
        const auto v = makeSignedElementSparseMatrix(16, 16, 8, 0.3, rng);
        const auto pn = pnSplit(v);
        const auto csd = csdTransform(pn, rng);
        EXPECT_LE(csd.onesCount(), pn.onesCount());
    }
}

TEST(CsdMatrix, WidthGrowsByAtMostOneBit)
{
    Rng rng(8);
    const auto v = makeSignedElementSparseMatrix(16, 16, 8, 0.0, rng);
    const auto pn = pnSplit(v);
    const auto csd = csdTransform(pn, rng);
    EXPECT_LE(csd.bitwidth(), pn.bitwidth() + 1);
}

TEST(CsdMatrix, CsdSplitMatchesManualPipeline)
{
    Rng rng_a(9), rng_b(9);
    const auto v = makeSignedElementSparseMatrix(12, 12, 8, 0.4, rng_a);
    // csdSplit must behave exactly like pnSplit + csdTransform with the
    // same coin-flip stream.
    const auto v2 = makeSignedElementSparseMatrix(12, 12, 8, 0.4, rng_b);
    ASSERT_EQ(v, v2);
    const auto direct = csdSplit(v, rng_a);
    const auto manual = csdTransform(pnSplit(v2), rng_b);
    EXPECT_EQ(direct.p, manual.p);
    EXPECT_EQ(direct.n, manual.n);
}

TEST(CsdMatrix, UnsignedMatrixGainsNegativeSide)
{
    // CSD of an all-positive matrix moves some digits into N, which is
    // why the CSD design always needs the subtractor array.
    Rng rng(10);
    IntMatrix v(1, 1);
    v.at(0, 0) = 15;
    const auto csd = csdSplit(v, rng);
    EXPECT_EQ(csd.p.at(0, 0), 16);
    EXPECT_EQ(csd.n.at(0, 0), 1);
}

} // namespace
