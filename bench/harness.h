/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries: workload
 * construction matching the paper's generation scheme, FPGA design-point
 * evaluation, and consistent table output.
 */

#ifndef SPATIAL_BENCH_HARNESS_H
#define SPATIAL_BENCH_HARNESS_H

#include <cstdint>

#include "core/compiler.h"
#include "fpga/report.h"
#include "matrix/csr.h"
#include "matrix/dense.h"

namespace spatial::bench
{

/** One evaluation workload: the fixed matrix in dense and CSR form. */
struct Workload
{
    IntMatrix weights;
    CsrMatrix<std::int64_t> csr;
};

/**
 * Signed 8-bit element-sparse matrix per Section VI's scheme, shared by
 * the FPGA, GPU, and SIGMA sides of each figure.
 */
Workload makeWorkload(std::size_t dim, double sparsity,
                      std::uint64_t seed = 99);

/**
 * Compile and evaluate the FPGA implementation of a workload.  The
 * evaluation figures use the CSD form (the paper's best configuration);
 * Figures 9-10 pass PnSplit explicitly for the comparison.
 */
fpga::DesignPoint evalFpga(const IntMatrix &weights,
                           core::SignMode mode = core::SignMode::Csd);

} // namespace spatial::bench

#endif // SPATIAL_BENCH_HARNESS_H
