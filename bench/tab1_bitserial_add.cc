/**
 * @file
 * Table I: bit-serial addition example, 3 + 7 = 10.  Reproduces the
 * cycle-by-cycle Cin/A/B/S/Cout trace by simulating one bit-serial
 * adder, exactly as the paper's table reports it.
 */

#include <cstdio>
#include <iostream>

#include "circuit/netlist.h"
#include "circuit/simulator.h"
#include "common/table.h"

int
main()
{
    using namespace spatial;
    using namespace spatial::circuit;

    Netlist netlist;
    const auto a = netlist.addInput(0);
    const auto b = netlist.addInput(1);
    const auto sum = netlist.addAdder(a, b);

    // 3 = 011b, 7 = 111b, streamed LSb first over 4 cycles.
    const int a_bits[4] = {1, 1, 0, 0};
    const int b_bits[4] = {1, 1, 1, 0};

    Table table("Table I: bit-serial addition of 3 + 7 = 10",
                {"Cycle", "Cin", "A", "B", "S", "Cout", "Result"});

    Simulator sim(netlist);
    int carry_in = 0;
    std::string result = "0000";
    for (int cycle = 0; cycle < 4; ++cycle) {
        sim.step({static_cast<std::uint8_t>(a_bits[cycle]),
                  static_cast<std::uint8_t>(b_bits[cycle])});
        // The adder registers S and Cout; peek at them by stepping a
        // probe cycle on a copy is unnecessary — recompute the
        // combinational view the paper tabulates from the trace.
        const int s = (a_bits[cycle] + b_bits[cycle] + carry_in) & 1;
        const int cout = (a_bits[cycle] + b_bits[cycle] + carry_in) >> 1;
        // The result register shifts right; the new sum bit enters on
        // the MSb side, exactly as Table I displays it.
        result = std::string(s ? "1" : "0") + result.substr(0, 3);

        table.addRow({Table::cell(cycle + 1), Table::cell(carry_in),
                      Table::cell(a_bits[cycle]),
                      Table::cell(b_bits[cycle]), Table::cell(s),
                      Table::cell(cout), result});
        carry_in = cout;
    }
    table.print(std::cout);

    // Cross-check against the simulated register contents: the sum bits
    // appear on the adder's output one cycle delayed.
    Simulator check(netlist);
    long long value = 0;
    for (int cycle = 0; cycle < 5; ++cycle) {
        const int ain = cycle < 4 ? a_bits[cycle] : 0;
        const int bin = cycle < 4 ? b_bits[cycle] : 0;
        check.step({static_cast<std::uint8_t>(ain),
                    static_cast<std::uint8_t>(bin)});
        if (cycle >= 1 && check.outputBit(sum))
            value |= 1ll << (cycle - 1);
    }
    std::printf("\nsimulated adder output: %lld (expected 10)\n", value);
    return value == 10 ? 0 : 1;
}
