/**
 * @file
 * spatial-bench: the unified experiment runner.  One CLI fronting the
 * experiment registry — every paper figure/table, the ESN scenarios,
 * and the engine throughput bench — executed by the threaded sweep
 * engine with cross-experiment design caching.
 *
 *   spatial-bench list
 *   spatial-bench describe fig08
 *   spatial-bench run fig08 fig09
 *   spatial-bench run --all --json=out/
 *   spatial-bench run fig13 --dim=64,128,256
 *   spatial-bench run fig15 --sparsity=0.8:0.95:0.05 --csv=out/
 *
 * Reserved flags for `run`: --all, --json[=dir], --csv[=dir],
 * --threads=N, --sim-threads=N, --lane-words=W, --quiet.  Any other
 * --name=v1,v2,... flag overrides the named grid axis (or filters a
 * case-list experiment); lo:hi:step ranges expand inclusively.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/logging.h"
#include "common/table.h"
#include "experiments/registry.h"
#include "experiments/sweep.h"

namespace
{

using namespace spatial;
using namespace spatial::experiments;

int
usage()
{
    std::printf(
        "usage: spatial-bench <command> [args]\n"
        "\n"
        "commands:\n"
        "  list                 all registered experiments\n"
        "  describe <name>      one experiment's grid and schema\n"
        "  run <name...>        run experiments (or --all)\n"
        "\n"
        "run flags:\n"
        "  --all                run every registered experiment\n"
        "  --json[=dir]         write <dir>/<name>.json per experiment\n"
        "  --csv[=dir]          write <dir>/<name>.csv per experiment\n"
        "  --threads=N          sweep worker threads (0 = hardware)\n"
        "  --sim-threads=N      batch-engine threads inside a point\n"
        "  --lane-words=W       batch-engine lane words (0 = auto)\n"
        "  --activity-gating=B  segmented activity gating (default 1)\n"
        "  --segment-kib=K      gated segment working-set target\n"
        "  --jit=B              per-design JIT modules (default 0;\n"
        "                       interpreted-tape fallback without a\n"
        "                       C toolchain)\n"
        "  --seed=N             workload-stream seed override (0 =\n"
        "                       each experiment's built-in stream)\n"
        "  --check_load_speedup=R  exit 1 unless every row with\n"
        "                       [dim] >= --check_load_dim (default\n"
        "                       2048) has [load x] >= R (the\n"
        "                       large_matrix cold-load gate)\n"
        "  --quiet              suppress tables (summaries only)\n"
        "  --<param>=v1,v2      override a grid axis; lo:hi:step ranges\n"
        "                       expand inclusively\n");
    return 2;
}

int
runList()
{
    Table table("spatial-bench experiments",
                {"name", "maps to", "points", "runtime", "description"});
    for (const auto *exp : Registry::instance().all()) {
        table.addRow({exp->name, exp->figure,
                      Table::cell(static_cast<std::uint64_t>(
                          exp->grid.expand().size())),
                      exp->runtime, exp->description});
    }
    table.print(std::cout);
    std::printf("\nrun one with: spatial-bench run <name>  "
                "(spatial-bench describe <name> shows its grid)\n");
    return 0;
}

int
runDescribe(const std::vector<std::string> &names)
{
    if (names.empty()) {
        std::fprintf(stderr, "describe: need an experiment name\n");
        return 2;
    }
    for (const auto &name : names) {
        const auto *exp = Registry::instance().find(name);
        if (exp == nullptr)
            SPATIAL_FATAL("unknown experiment '", name,
                          "'; see spatial-bench list");
        std::printf("%s — %s\n", exp->name.c_str(),
                    exp->figure.c_str());
        std::printf("  %s\n", exp->description.c_str());
        std::printf("  runtime: %s\n", exp->runtime.c_str());
        std::printf("  columns:");
        for (const auto &c : exp->columns)
            std::printf(" [%s]", c.c_str());
        std::printf("\n  grid (%zu points):\n",
                    exp->grid.expand().size());
        for (const auto &param : exp->grid.paramNames())
            std::printf("    --%s\n", param.c_str());
    }
    return 0;
}

/** Parse one override value list ("64,256" / "0.8:0.95:0.05" / names). */
std::vector<Value>
parseOverrideValues(const std::string &flag, const std::string &text)
{
    std::vector<Value> values;
    for (const auto &token : Args::splitList(text)) {
        char *end = nullptr;
        const long long asInt = std::strtoll(token.c_str(), &end, 10);
        if (end != nullptr && *end == '\0') {
            values.emplace_back(static_cast<std::int64_t>(asInt));
            continue;
        }
        const double asReal = std::strtod(token.c_str(), &end);
        if (end != nullptr && *end == '\0') {
            values.emplace_back(asReal);
            continue;
        }
        values.emplace_back(token);
    }
    if (values.empty())
        SPATIAL_FATAL("flag --", flag, " has no values");
    return values;
}

void
writeFile(const std::filesystem::path &path, const std::string &text)
{
    std::ofstream out(path);
    if (!out)
        SPATIAL_FATAL("cannot write ", path.string());
    out << text;
}

int
runRun(const Args &args)
{
    const auto &registry = Registry::instance();
    const std::set<std::string> reserved = {
        "all",  "json",          "csv",         "threads",
        "sim-threads", "lane-words", "activity-gating", "segment-kib",
        "jit",  "seed", "quiet", "check_load_speedup",
        "check_load_dim"};

    // Which experiments.
    const bool allSelected = args.getBool("all", false);
    std::vector<const Experiment *> selected;
    if (allSelected) {
        selected = registry.all();
    } else {
        for (std::size_t i = 1; i < args.positionals().size(); ++i) {
            const auto &name = args.positionals()[i];
            const auto *exp = registry.find(name);
            if (exp == nullptr)
                SPATIAL_FATAL("unknown experiment '", name,
                              "'; see spatial-bench list");
            selected.push_back(exp);
        }
    }
    if (selected.empty()) {
        std::fprintf(stderr,
                     "run: need experiment names or --all\n");
        return 2;
    }

    // Grid overrides from the remaining flags.
    std::vector<GridOverride> overrides;
    for (const auto &[flag, value] : args.flags()) {
        if (reserved.count(flag))
            continue;
        overrides.push_back(
            GridOverride{flag, parseOverrideValues(flag, value)});
    }
    // Explicitly named experiments must understand every override;
    // under --all an override applies where the parameter exists but
    // must still match at least one experiment (typos fail loudly).
    for (const auto &override_ : overrides) {
        std::size_t understood = 0;
        for (const auto *exp : selected) {
            if (exp->grid.hasParam(override_.name)) {
                ++understood;
            } else if (!allSelected) {
                SPATIAL_FATAL("experiment '", exp->name,
                              "' has no parameter '", override_.name,
                              "' (flags: see spatial-bench describe ",
                              exp->name, ")");
            }
        }
        if (understood == 0)
            SPATIAL_FATAL("no selected experiment has a parameter '",
                          override_.name, "'");
    }

    SweepOptions options;
    options.threads =
        static_cast<unsigned>(args.getInt("threads", 0));
    options.sim.threads =
        static_cast<unsigned>(args.getInt("sim-threads", 0));
    options.sim.laneWords =
        static_cast<unsigned>(args.getInt("lane-words", 0));
    options.sim.activityGating = args.getBool("activity-gating", true);
    options.sim.segmentKib = static_cast<unsigned>(
        args.getInt("segment-kib", options.sim.segmentKib));
    options.sim.jit = args.getBool("jit", false);
    options.seed = static_cast<std::uint64_t>(args.getInt("seed", 0));

    const bool quiet = args.getBool("quiet", false);
    const bool wantJson = args.has("json");
    const bool wantCsv = args.has("csv");
    auto outputDir = [&](const char *flag) {
        std::string dir = args.getString(flag, ".");
        if (dir.empty() || dir == "true")
            dir = ".";
        return std::filesystem::path(dir);
    };

    // The cold-load latency gate (CI): every reported row at or above
    // the dim floor must have loaded at least `want` times faster than
    // it compiled.  Applies to any experiment reporting [dim] and
    // [load x] columns (the large_matrix schema).
    const bool gateLoad = args.has("check_load_speedup");
    const double gateWant = args.getReal("check_load_speedup", 5.0);
    const std::int64_t gateDim = args.getInt("check_load_dim", 2048);
    std::size_t gateRows = 0;
    bool gateFailed = false;

    SweepEngine engine(options);
    for (const auto *exp : selected) {
        std::vector<GridOverride> applicable;
        for (const auto &override_ : overrides)
            if (exp->grid.hasParam(override_.name))
                applicable.push_back(override_);
        const auto result = engine.run(*exp, applicable);
        if (!quiet) {
            result.toTable().print(std::cout);
            if (!result.note.empty())
                std::cout << "\n" << result.note << "\n";
            std::cout << "\n";
        }
        std::printf("%s: %zu points, %zu rows, %.2fs, design cache %zu "
                    "hits / %zu misses\n",
                    result.name.c_str(), result.points.size(),
                    result.rows.size(), result.wallSeconds,
                    result.cacheDelta.hits, result.cacheDelta.misses);
        if (wantJson) {
            const auto dir = outputDir("json");
            std::filesystem::create_directories(dir);
            const auto path = dir / (result.name + ".json");
            writeFile(path, result.toJson());
            std::printf("wrote %s\n", path.string().c_str());
        }
        if (wantCsv) {
            const auto dir = outputDir("csv");
            std::filesystem::create_directories(dir);
            const auto path = dir / (result.name + ".csv");
            std::ofstream out(path);
            if (!out)
                SPATIAL_FATAL("cannot write ", path.string());
            result.writeCsv(out);
            std::printf("wrote %s\n", path.string().c_str());
        }
        if (gateLoad) {
            std::size_t dimCol = result.columns.size();
            std::size_t loadCol = result.columns.size();
            for (std::size_t c = 0; c < result.columns.size(); ++c) {
                if (result.columns[c] == "dim")
                    dimCol = c;
                else if (result.columns[c] == "load x")
                    loadCol = c;
            }
            if (dimCol == result.columns.size() ||
                loadCol == result.columns.size())
                continue;
            for (const auto &row : result.rows) {
                const std::int64_t dim = asInt(row[dimCol].value);
                if (dim < gateDim)
                    continue;
                ++gateRows;
                const double got = asReal(row[loadCol].value);
                if (got < gateWant) {
                    gateFailed = true;
                    std::fprintf(stderr,
                                 "FAIL: %s dim=%lld cold-load "
                                 "speedup %.2fx below required "
                                 "%.2fx\n",
                                 result.name.c_str(),
                                 static_cast<long long>(dim), got,
                                 gateWant);
                }
            }
        }
    }
    if (gateLoad) {
        if (gateRows == 0) {
            std::fprintf(stderr,
                         "FAIL: --check_load_speedup matched no rows "
                         "with [dim] >= %lld and a [load x] column\n",
                         static_cast<long long>(gateDim));
            return 1;
        }
        if (gateFailed)
            return 1;
        std::printf("OK: cold-load speedup >= %.2fx on %zu rows at "
                    "dim >= %lld\n",
                    gateWant, gateRows,
                    static_cast<long long>(gateDim));
    }
    const auto total = engine.cache().stats();
    if (selected.size() > 1)
        std::printf("total: design cache %zu hits / %zu misses across "
                    "%zu experiments\n",
                    total.hits, total.misses, selected.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args(argc, argv, /*allow_positionals=*/true);
    if (args.positionals().empty())
        return usage();
    const std::string &command = args.positionals()[0];
    if (command == "list")
        return runList();
    if (command == "describe") {
        std::vector<std::string> names(args.positionals().begin() + 1,
                                       args.positionals().end());
        return runDescribe(names);
    }
    if (command == "run")
        return runRun(args);
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return usage();
}
