/**
 * @file
 * Figure 8: hardware utilization of a 64x64 random matrix for weight
 * bitwidths 1 through 32.  The architecture builds one 1-bit dot
 * product per bit position, so cost is linear in bitwidth with no
 * cross-bit optimization.
 */

#include <iostream>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/table.h"
#include "matrix/generate.h"

int
main()
{
    using namespace spatial;

    Table table("Figure 8: utilization vs weight bitwidth (64x64)",
                {"bitwidth", "ones", "LUT", "FF", "LUT/bit"});

    Rng rng(808);
    for (const int bits : {1, 2, 4, 8, 16, 32}) {
        const auto weights =
            makeElementSparseMatrix(64, 64, bits, 0.0, rng);
        const auto point =
            bench::evalFpga(weights, core::SignMode::Unsigned);
        const double per_bit = static_cast<double>(point.resources.luts) /
                               static_cast<double>(bits);
        table.addRow({Table::cell(bits), Table::cell(weights.onesCount()),
                      Table::cell(point.resources.luts),
                      Table::cell(point.resources.ffs),
                      Table::cell(per_bit, 4)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: LUT and FF linear in bitwidth "
                 "(constant LUT/bit).\n";
    return 0;
}
