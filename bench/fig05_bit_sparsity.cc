/**
 * @file
 * Figure 5: hardware utilization vs bit-sparsity of a 64x64 matrix at
 * 8-bit precision.  Each bit of the weight matrix is a Bernoulli draw
 * with p = 1 - bit_sparsity; the mapped LUT/FF/LUTRAM counts must be
 * linear in the number of set bits.
 */

#include <iostream>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/table.h"
#include "matrix/generate.h"

int
main()
{
    using namespace spatial;

    Table table("Figure 5: utilization vs bit-sparsity (64x64, 8-bit)",
                {"bit-sparsity %", "ones", "LUT", "FF", "LUTRAM"});

    Rng rng(505);
    for (int pct = 0; pct <= 100; pct += 10) {
        const auto weights =
            makeBitSparseMatrix(64, 64, 8, pct / 100.0, rng);
        const auto point =
            bench::evalFpga(weights, core::SignMode::Unsigned);
        table.addRow({Table::cell(pct), Table::cell(weights.onesCount()),
                      Table::cell(point.resources.luts),
                      Table::cell(point.resources.ffs),
                      Table::cell(point.resources.lutrams)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: LUT ~ ones (linear), FF ~ 2x LUT, "
                 "LUTRAM roughly flat wrapper cost.\n";
    return 0;
}
