/**
 * @file
 * Google-benchmark microbenchmarks of the toolchain itself: matrix
 * compilation throughput, cycle-accurate simulation speed, and the CSD
 * transform.  These time *our* software, not the modelled hardware.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/compiler.h"
#include "matrix/csd.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;

void
BM_CompileMatrix(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    Rng rng(1);
    const auto weights =
        makeSignedElementSparseMatrix(dim, dim, 8, 0.9, rng);
    core::CompileOptions options;
    for (auto _ : state) {
        auto design = core::MatrixCompiler(options).compile(weights);
        benchmark::DoNotOptimize(design.netlist().numNodes());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim * dim));
}
BENCHMARK(BM_CompileMatrix)->Arg(64)->Arg(256)->Arg(512);

void
BM_SimulateGemv(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    Rng rng(2);
    const auto weights =
        makeSignedElementSparseMatrix(dim, dim, 8, 0.9, rng);
    const auto design =
        core::MatrixCompiler(core::CompileOptions{}).compile(weights);
    circuit::Simulator sim(design.netlist());
    const auto a = makeSignedVector(dim, 8, rng);
    for (auto _ : state) {
        auto out = design.multiplyWith(sim, a);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(design.netlist().numNodes()) *
        design.drainCycles());
}
BENCHMARK(BM_SimulateGemv)->Arg(16)->Arg(64)->Arg(128);

void
BM_CsdTransform(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    Rng rng(3);
    const auto weights =
        makeSignedElementSparseMatrix(dim, dim, 8, 0.5, rng);
    const auto pn = pnSplit(weights);
    for (auto _ : state) {
        Rng coin(7);
        auto csd = csdTransform(pn, coin);
        benchmark::DoNotOptimize(csd.p.data().data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim * dim));
}
BENCHMARK(BM_CsdTransform)->Arg(64)->Arg(256)->Arg(1024);

void
BM_ReferenceGemv(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    Rng rng(4);
    const auto weights =
        makeSignedElementSparseMatrix(dim, dim, 8, 0.9, rng);
    const auto a = makeSignedVector(dim, 8, rng);
    for (auto _ : state) {
        auto out = gemvRef(a, weights);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(dim * dim));
}
BENCHMARK(BM_ReferenceGemv)->Arg(64)->Arg(256)->Arg(1024);

} // namespace

BENCHMARK_MAIN();
