/**
 * @file
 * Figure 14: speedup of the FPGA over each GPU library across the 98%
 * sparse dimension sweep.  The paper's anchors: the optimized-kernel
 * speedup falls from ~86x in the latency-bound regime toward ~50x once
 * the GPU is utilized; cuSPARSE speedups are several-fold larger.
 */

#include <iostream>

#include "baselines/gpu_model.h"
#include "bench/harness.h"
#include "common/table.h"

int
main()
{
    using namespace spatial;
    using baselines::GpuLibrary;
    using baselines::GpuModel;

    const GpuModel cusparse(GpuLibrary::CuSparse);
    const GpuModel optimized(GpuLibrary::OptimizedKernel);

    Table table("Figure 14: speedup vs dimension (98% sparse)",
                {"dim", "speedup vs cuSPARSE", "speedup vs OptKernel"});

    for (const std::size_t dim : {64u, 128u, 256u, 512u, 1024u, 2048u,
                                  4096u}) {
        const auto workload = bench::makeWorkload(dim, 0.98);
        const auto nnz = workload.csr.nnz();
        const auto fpga_point = bench::evalFpga(workload.weights);

        table.addRow(
            {Table::cell(dim),
             Table::cell(cusparse.latencyNs(dim, dim, nnz) /
                             fpga_point.latencyNs, 4),
             Table::cell(optimized.latencyNs(dim, dim, nnz) /
                             fpga_point.latencyNs, 4)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: optimized-kernel speedup ~86x at "
                 "small dims decaying to ~50x at 4096; cuSPARSE several "
                 "times higher.\n";
    return 0;
}
