/**
 * @file
 * Throughput bench for the compiled-tape simulation engine: end-to-end
 * multiplyBatchWide wall-clock on a Section VI-style workload, new
 * engine vs. the seed 64-lane interpreter path, with results verified
 * bit-exact before any number is reported.
 *
 * Node-evals/sec counts one evaluation per node per cycle per vector
 * (numNodes * drainCycles * batch), the work a cycle-accurate simulator
 * fundamentally performs, so the two engines share a numerator and the
 * rate ratio equals the wall-clock speedup.
 *
 * The kernel-comparison mode additionally times the tape engine once
 * per SIMD dispatch target supported by the running CPU (scalar, avx2,
 * avx512, neon), each verified bit-exact before timing, and reports
 * per-kernel GEMV/s; --check_kernel_speedup gates the avx2-vs-scalar
 * ratio for CI smoke runs (skipped on machines without AVX2).
 *
 * The gating section measures what segmented, activity-gated execution
 * buys: a controlled ablation that toggles only the gating knob at the
 * gated mode's resolved (kernel, W, threads) configuration, verified
 * bit-exact against the interpreter baseline AND toggle-exact against
 * WideSimulator before timing.  --check_gated_speedup gates the ratio.
 *
 * The jit section (on by default, skipped without a C toolchain,
 * --jit=0 disables) measures the per-design codegen backend against
 * the gated interpreted tape at the identical resolved configuration —
 * only SimOptions::jit differs — with the module proved bit-exact AND
 * toggle-exact against WideSimulator in-bench before any timing, and
 * the run required to have actually executed through the module (no
 * silent interpreter fallback).  --check_jit_speedup gates the
 * median-of-rounds ratio.
 *
 * --check_baseline compares the run against a committed baseline JSON
 * (bench/sim_throughput_baseline.json): the default-path tape_ms may
 * not regress past the baseline's limit, every kernel listed in the
 * baseline floors must keep its speedup-vs-scalar, and the gated and
 * jit speedups must hold their floors.  This is the perf-regression
 * CI gate.
 *
 *   sim_throughput [--dim=256] [--batch=1024] [--bits=8]
 *                  [--sparsity=0.9] [--threads=0] [--lane-words=0]
 *                  [--activity_gating=1] [--segment_kib=4] [--jit=1]
 *                  [--repeats=3] [--json[=path]]
 *                  [--check_kernel_speedup=1.5]
 *                  [--check_gated_speedup=1.3]
 *                  [--check_jit_speedup=0.8]
 *                  [--check_baseline[=path]]
 *
 * --json writes a BENCH_sim_throughput.json artifact for the perf
 * trajectory in CI.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/block_simulator.h"
#include "circuit/jit.h"
#include "circuit/kernels.h"
#include "circuit/wide_simulator.h"
#include "common/args.h"
#include "common/rng.h"
#include "core/batch_engine.h"
#include "core/compiler.h"
#include "experiments/json.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Best-of-N wall-clock seconds for one batch multiply. */
template <typename F>
double
bestOf(int repeats, F &&run)
{
    double best = 1e300;
    for (int i = 0; i < repeats; ++i) {
        const auto start = Clock::now();
        run();
        best = std::min(best, secondsSince(start));
    }
    return best;
}

/**
 * Drive a gated BlockSimulator<W> and W WideSimulators with identical
 * streams; sets `exact` when every node agrees on every cycle and the
 * register toggle totals match, and `skipped` when the drain tail
 * actually exercised the skip path.  This is the bench's in-situ proof
 * that activity gating — and, when a module is passed, the generated
 * native code at the *production* lane width — is exact for the
 * compiled design under test, not only for the unit-test netlists.
 */
template <unsigned W>
void
gatedTogglesMatchWideSimulatorAt(
    const core::CompiledMatrix &design, const core::SimOptions &options,
    bool &exact, bool &skipped,
    std::shared_ptr<const circuit::jit::JitModule> jit)
{
    const auto &plan = design.plan();
    const auto segmentation =
        plan.segmentation(circuit::Segmentation::opsForBudget(
            options.segmentKib, W));
    const bool want_jit = jit != nullptr;
    // A module built against the engine's sampled-node list may keep
    // single-segment comb values in vector registers; those slots are
    // stale in the value array by design, so the per-node sweep below
    // must skip them (outputs are always materialized, and the toggle
    // totals cover the registers bit for bit).
    const std::vector<std::uint8_t> materialized =
        jit != nullptr ? jit->materializedSlots()
                       : std::vector<std::uint8_t>{};
    const auto &slot_of = segmentation->slotOf();
    circuit::BlockSimulator<W, true> gated(
        plan, &core::resolvedKernel(options), segmentation,
        std::move(jit));
    if (want_jit && !gated.jitActive()) {
        // The proof must exercise the module, not silently fall back.
        exact = false;
        skipped = false;
        return;
    }
    std::vector<circuit::WideSimulator> wides(
        W, circuit::WideSimulator(design.netlist()));

    Rng rng(1234);
    const std::size_t ports = design.rows();
    std::vector<std::uint64_t> plane(ports * W, 0);
    std::vector<std::uint64_t> words(ports, 0);
    for (std::uint32_t cycle = 0; cycle < design.drainCycles(); ++cycle) {
        // Random for the input-bit phase, constant afterwards, like a
        // real drain — the constant tail is what exercises skipping.
        if (cycle <=
            static_cast<std::uint32_t>(design.options().inputBits))
            for (auto &word : plane)
                word = rng.next();
        gated.settle(plane.data(), ports);
        for (unsigned w = 0; w < W; ++w) {
            for (std::size_t p = 0; p < ports; ++p)
                words[p] = plane[p * W + w];
            wides[w].step(words);
            for (circuit::NodeId id = 0;
                 id < design.netlist().numNodes(); ++id) {
                if (!materialized.empty() &&
                    materialized[slot_of[id]] == 0)
                    continue;
                if (gated.outputWord(id, w) != wides[w].outputWord(id)) {
                    exact = false;
                    skipped = gated.segmentsSkipped() > 0;
                    return;
                }
            }
        }
        gated.commit();
    }
    std::uint64_t wide_toggles = 0;
    for (const auto &wide : wides)
        wide_toggles += wide.toggleCount();
    exact = gated.toggleCount() == wide_toggles;
    skipped = gated.segmentsSkipped() > 0;
}

/** Lane-width dispatcher for the proof above (W = 1 without a module,
 *  the module's production width with one). */
void
gatedTogglesMatchWideSimulator(
    const core::CompiledMatrix &design, const core::SimOptions &options,
    bool &exact, bool &skipped,
    std::shared_ptr<const circuit::jit::JitModule> jit = nullptr,
    unsigned lane_words = 1)
{
    switch (lane_words) {
    case 1:
        gatedTogglesMatchWideSimulatorAt<1>(design, options, exact,
                                            skipped, std::move(jit));
        return;
    case 2:
        gatedTogglesMatchWideSimulatorAt<2>(design, options, exact,
                                            skipped, std::move(jit));
        return;
    case 4:
        gatedTogglesMatchWideSimulatorAt<4>(design, options, exact,
                                            skipped, std::move(jit));
        return;
    case 8:
        gatedTogglesMatchWideSimulatorAt<8>(design, options, exact,
                                            skipped, std::move(jit));
        return;
    default:
        exact = false;
        skipped = false;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const auto dim = static_cast<std::size_t>(args.getInt("dim", 256));
    const auto batch_rows =
        static_cast<std::size_t>(args.getInt("batch", 1024));
    const int bits = static_cast<int>(args.getInt("bits", 8));
    const double sparsity = args.getReal("sparsity", 0.9);
    const int repeats = static_cast<int>(args.getInt("repeats", 3));

    core::SimOptions sim_options;
    sim_options.threads =
        static_cast<unsigned>(args.getInt("threads", 0));
    sim_options.laneWords =
        static_cast<unsigned>(args.getInt("lane-words", 0));
    sim_options.activityGating = args.getBool("activity_gating", true);
    sim_options.segmentKib = static_cast<unsigned>(
        args.getInt("segment_kib", sim_options.segmentKib));

    Rng rng(99);
    const auto weights =
        makeSignedElementSparseMatrix(dim, dim, bits, sparsity, rng);
    const auto batch = makeSignedBatch(batch_rows, dim, bits, rng);

    core::CompileOptions options;
    options.inputBits = bits;
    options.inputsSigned = true;
    options.signMode = core::SignMode::Csd;

    const auto compile_start = Clock::now();
    const auto design = core::MatrixCompiler(options).compile(weights);
    const double compile_s = secondsSince(compile_start);

    const auto nodes = design.netlist().numNodes();
    const auto drain = design.drainCycles();
    std::printf("workload: %zux%zu, %d-bit, sparsity %.2f, batch %zu\n",
                dim, dim, bits, sparsity, batch_rows);
    std::printf("design:   %zu nodes, %u drain cycles, compiled in %.2fs\n",
                nodes, drain, compile_s);

    // Verify bit-exactness before timing anything.
    const auto expected = design.multiplyBatch(
        [&] {
            // Scalar reference on a truncated batch: full scalar runs are
            // ~64x the wide cost, so spot-check the first group only.
            const std::size_t check = std::min<std::size_t>(64, batch_rows);
            IntMatrix head(check, dim);
            for (std::size_t b = 0; b < check; ++b)
                for (std::size_t r = 0; r < dim; ++r)
                    head.at(b, r) = batch.at(b, r);
            return head;
        }());
    const auto legacy_out = design.multiplyBatchWideLegacy(batch);
    const auto tape_out = design.multiplyBatchWide(batch, sim_options);
    bool exact = legacy_out == tape_out;
    for (std::size_t b = 0; exact && b < expected.rows(); ++b)
        for (std::size_t c = 0; exact && c < expected.cols(); ++c)
            exact = expected.at(b, c) == tape_out.at(b, c);
    if (!exact) {
        std::printf("ERROR: engines disagree; refusing to report timings\n");
        return 1;
    }

    const double legacy_s = bestOf(
        repeats, [&] { (void)design.multiplyBatchWideLegacy(batch); });
    const double tape_s = bestOf(repeats, [&] {
        (void)design.multiplyBatchWide(batch, sim_options);
    });

    const double node_evals = static_cast<double>(nodes) *
                              static_cast<double>(drain) *
                              static_cast<double>(batch_rows);
    const double legacy_rate = node_evals / legacy_s;
    const double tape_rate = node_evals / tape_s;
    const double speedup = legacy_s / tape_s;
    const unsigned lane_words =
        core::resolvedLaneWords(design, sim_options, batch_rows);
    const unsigned threads =
        core::resolvedThreads(design, sim_options, batch_rows);
    const char *active = core::resolvedKernel(sim_options).name;
    // An inherited SPATIAL_KERNEL silently pins every dispatch in this
    // process; record it so a pinned artifact can never masquerade as
    // the machine's true auto-dispatch (which once shipped an "avx512"
    // engine row from a CPU whose preferred kernel is avx2).
    const char *kernel_env = std::getenv("SPATIAL_KERNEL");
    const bool kernel_pinned = kernel_env != nullptr && *kernel_env != '\0';
    if (kernel_pinned)
        std::printf("note: SPATIAL_KERNEL=%s pins the dispatched kernel "
                    "for this run\n",
                    kernel_env);

    std::printf("seed path (64-lane interpreter): %8.1f ms, %10.3g "
                "node-evals/s\n",
                legacy_s * 1e3, legacy_rate);
    std::printf("tape engine (%3u lanes x %u thr): %8.1f ms, %10.3g "
                "node-evals/s  [kernel %s, gating %s]\n",
                64 * lane_words, threads, tape_s * 1e3, tape_rate, active,
                sim_options.activityGating ? "on" : "off");
    std::printf("speedup: %.2fx (bit-exact)\n", speedup);

    // ------------------------------------------------------------------
    // Activity gating: a controlled ablation toggling only the gating
    // knob at the gated mode's resolved configuration (same kernel,
    // same lane words, same threads), after proving the gated engine
    // bit-exact AND toggle-exact.
    // ------------------------------------------------------------------
    core::SimOptions gated_options = sim_options;
    gated_options.activityGating = true;
    gated_options.laneWords =
        core::resolvedLaneWords(design, gated_options, batch_rows);
    core::SimOptions ungated_options = gated_options;
    ungated_options.activityGating = false;

    bool toggles_exact = false;
    bool drain_skipped = false;
    gatedTogglesMatchWideSimulator(design, gated_options, toggles_exact,
                                   drain_skipped);
    if (!drain_skipped)
        std::printf("note: this workload's drain never skipped a "
                    "segment; the gating comparison measures pure "
                    "overhead\n");
    core::BatchStats gate_stats;
    const auto gated_out =
        core::runBatchWide(design, batch, gated_options, &gate_stats);
    const bool gating_exact =
        gated_out == legacy_out &&
        design.multiplyBatchWide(batch, ungated_options) == legacy_out;
    if (!gating_exact || !toggles_exact) {
        std::printf("ERROR: activity gating is not exact (outputs %s, "
                    "toggles %s); refusing to report timings\n",
                    gating_exact ? "ok" : "MISMATCH",
                    toggles_exact ? "ok" : "MISMATCH");
        return 1;
    }
    // Each side runs as back-to-back blocks, the way a serving engine
    // actually executes one mode repeatedly — sample-by-sample
    // interleaving would make each run start with the other's 5 MB
    // working set resident in the 2 MB-class L2 and measure eviction,
    // not execution.  The blocks alternate across several rounds, each
    // round yields its own best-gated / best-ungated ratio, and the
    // gate checks the *median* round ratio: a multi-second load window
    // on a shared runner distorts the round it lands in, and the
    // median discards it, where a global best-of-each-side can pair a
    // loaded window's gated time with a quiet window's ungated time.
    struct GatingRound
    {
        double gated;
        double ungated;
    };
    std::vector<GatingRound> gating_rounds;
    const int rounds = 7;
    const int per_round = std::max(repeats, 5) + 1;
    for (int round = 0; round < rounds; ++round) {
        GatingRound r{1e300, 1e300};
        for (int i = 0; i < per_round; ++i) {
            const auto start = Clock::now();
            (void)design.multiplyBatchWide(batch, gated_options);
            r.gated = std::min(r.gated, secondsSince(start));
        }
        for (int i = 0; i < per_round; ++i) {
            const auto start = Clock::now();
            (void)design.multiplyBatchWide(batch, ungated_options);
            r.ungated = std::min(r.ungated, secondsSince(start));
        }
        gating_rounds.push_back(r);
    }
    // Report the median round wholesale — its times and their ratio —
    // so the artifact's gated_ms / ungated_ms always reproduce
    // gated_speedup exactly.
    std::sort(gating_rounds.begin(), gating_rounds.end(),
              [](const GatingRound &a, const GatingRound &b) {
                  return a.ungated / a.gated < b.ungated / b.gated;
              });
    const GatingRound &median = gating_rounds[gating_rounds.size() / 2];
    const double gated_s = median.gated;
    const double ungated_s = median.ungated;
    const double gated_speedup = ungated_s / gated_s;
    const double seg_total = static_cast<double>(
        gate_stats.segmentsExecuted + gate_stats.segmentsSkipped);
    const double skip_fraction =
        seg_total > 0.0
            ? static_cast<double>(gate_stats.segmentsSkipped) / seg_total
            : 0.0;
    std::printf("gating (kernel %s, %u lanes, %u thr): gated %8.1f ms, "
                "ungated %8.1f ms -> %.2fx, %.0f%% of segment-cycles "
                "skipped (outputs and toggles exact)\n",
                core::resolvedKernel(gated_options).name,
                64 * gated_options.laneWords, threads, gated_s * 1e3,
                ungated_s * 1e3, gated_speedup, skip_fraction * 100.0);

    // ------------------------------------------------------------------
    // JIT: the admission-compiled native module vs the gated
    // interpreted tape at the identical resolved configuration — only
    // SimOptions::jit differs — proved bit-exact and toggle-exact
    // through the module before timing, with silent fallback treated
    // as an error (a run that quietly interpreted would "measure" a
    // 1.0x JIT).  Same back-to-back block rounds and median-round
    // reporting as the gating ablation above.
    // ------------------------------------------------------------------
    const bool jit_requested = args.getBool("jit", true);
    const bool jit_available =
        jit_requested && circuit::jit::toolchainAvailable();
    double jit_s = 0.0;
    double jit_interp_s = 0.0;
    double jit_speedup = 0.0;
    double jit_admit_s = 0.0;
    std::uint64_t jit_groups = 0;
    std::size_t jit_source_bytes = 0;
    if (!jit_requested)
        std::printf("jit section disabled (--jit=0)\n");
    else if (!jit_available)
        std::printf("jit section skipped: no C toolchain reachable\n");
    if (jit_available) {
        core::SimOptions jit_options = gated_options;
        jit_options.jit = true;

        const auto admit_start = Clock::now();
        const auto module =
            design.ensureJit(jit_options, jit_options.laneWords);
        jit_admit_s = secondsSince(admit_start);
        if (module == nullptr) {
            std::printf("ERROR: JIT admission failed with a live "
                        "toolchain\n");
            return 1;
        }
        jit_source_bytes = module->sourceBytes();

        bool jit_toggles_exact = false;
        bool jit_drain_skipped = false;
        gatedTogglesMatchWideSimulator(design, jit_options,
                                       jit_toggles_exact,
                                       jit_drain_skipped, module,
                                       jit_options.laneWords);
        core::BatchStats jit_stats;
        const auto jit_out =
            core::runBatchWide(design, batch, jit_options, &jit_stats);
        const bool jit_exact = jit_out == legacy_out;
        jit_groups = jit_stats.jitGroups;
        if (!jit_exact || !jit_toggles_exact) {
            std::printf("ERROR: JIT execution is not exact (outputs %s, "
                        "toggles %s); refusing to report timings\n",
                        jit_exact ? "ok" : "MISMATCH",
                        jit_toggles_exact ? "ok" : "MISMATCH");
            return 1;
        }
        if (jit_stats.jitGroups == 0 ||
            jit_stats.interpFallbackGroups != 0) {
            std::printf("ERROR: JIT run fell back to the interpreter "
                        "(%llu jit groups, %llu fallback); refusing to "
                        "report timings\n",
                        static_cast<unsigned long long>(
                            jit_stats.jitGroups),
                        static_cast<unsigned long long>(
                            jit_stats.interpFallbackGroups));
            return 1;
        }

        struct JitRound
        {
            double jitted;
            double interp;
        };
        std::vector<JitRound> jit_rounds;
        for (int round = 0; round < rounds; ++round) {
            JitRound r{1e300, 1e300};
            for (int i = 0; i < per_round; ++i) {
                const auto start = Clock::now();
                (void)design.multiplyBatchWide(batch, jit_options);
                r.jitted = std::min(r.jitted, secondsSince(start));
            }
            for (int i = 0; i < per_round; ++i) {
                const auto start = Clock::now();
                (void)design.multiplyBatchWide(batch, gated_options);
                r.interp = std::min(r.interp, secondsSince(start));
            }
            jit_rounds.push_back(r);
        }
        std::sort(jit_rounds.begin(), jit_rounds.end(),
                  [](const JitRound &a, const JitRound &b) {
                      return a.interp / a.jitted < b.interp / b.jitted;
                  });
        const JitRound &jit_median = jit_rounds[jit_rounds.size() / 2];
        jit_s = jit_median.jitted;
        jit_interp_s = jit_median.interp;
        jit_speedup = jit_interp_s / jit_s;
        std::printf("jit (kernel %s, %u lanes, %u thr): jit %8.1f ms, "
                    "interp %8.1f ms -> %.2fx (admitted in %.2fs, %zu "
                    "source bytes; outputs and toggles exact)\n",
                    core::resolvedKernel(jit_options).name,
                    64 * jit_options.laneWords, threads, jit_s * 1e3,
                    jit_interp_s * 1e3, jit_speedup, jit_admit_s,
                    jit_source_bytes);
    }

    // Per-kernel comparison: every dispatch target supported by this
    // CPU, each verified bit-exact against the interpreter baseline
    // before timing.  Each timing round visits the kernels in
    // ascending vector width (scalar, neon, avx2, avx512 — so AVX-512's
    // lingering license-based downclock decays over its own successors
    // rather than a narrow kernel's window), and the rounds repeat with
    // every kernel's samples spread across the whole section: the
    // vs-scalar ratios are CI-gated, and on shared runners a sustained
    // load window that lands on one kernel's only block flips the gate
    // even when best-of discards transient spikes.  Best-of per kernel
    // also discards any sample that does catch the downclock.
    // Single-threaded unless --threads is given, so the ratio measures
    // kernel code rather than how the group scheduler shares the box.
    // The ungated engine-default row (PR 4's configuration) is what
    // speedup_vs_scalar compares, keeping the trajectory comparable
    // across PRs; each row also times its gated mode-resolved config.
    struct KernelRow
    {
        const char *name;
        unsigned laneWords;
        double seconds;
        double speedupVsScalar;
        unsigned gatedLaneWords;
        double gatedSeconds;
        double gatedSpeedup;
    };
    std::vector<KernelRow> rows;
    auto kernels = circuit::kernels::supportedKernels();
    std::sort(kernels.begin(), kernels.end(),
              [](const auto *a, const auto *b) {
                  return a->vectorWords < b->vectorWords;
              });
    std::vector<core::SimOptions> kernel_ungated;
    std::vector<core::SimOptions> kernel_gated;
    for (const auto *kernel : kernels) {
        core::SimOptions k_ungated = sim_options;
        k_ungated.kernel = kernel;
        k_ungated.activityGating = false;
        if (k_ungated.threads == 0)
            k_ungated.threads = 1;
        core::SimOptions k_gated = k_ungated;
        k_gated.activityGating = true;
        if (!(legacy_out == design.multiplyBatchWide(batch, k_ungated)) ||
            !(legacy_out == design.multiplyBatchWide(batch, k_gated))) {
            std::printf("ERROR: kernel %s disagrees with the seed path\n",
                        kernel->name);
            return 1;
        }
        kernel_ungated.push_back(k_ungated);
        kernel_gated.push_back(k_gated);
    }
    // Warm back-to-back blocks per (kernel, gating) pair — a lone
    // sample starts with another configuration's working set resident
    // and measures eviction — repeated over rounds so each pair sees
    // several time windows; best-of then discards both cold and
    // drifted samples.
    std::vector<double> kernel_s(kernels.size(), 1e300);
    std::vector<double> kernel_gated_s(kernels.size(), 1e300);
    const int kernel_rounds = 3;
    const int kernel_block = std::max(repeats / kernel_rounds, 2) + 1;
    for (int round = 0; round < kernel_rounds; ++round) {
        for (std::size_t i = 0; i < kernels.size(); ++i) {
            for (int j = 0; j < kernel_block; ++j) {
                const auto start = Clock::now();
                (void)design.multiplyBatchWide(batch, kernel_ungated[i]);
                kernel_s[i] = std::min(kernel_s[i], secondsSince(start));
            }
            for (int j = 0; j < kernel_block; ++j) {
                const auto start = Clock::now();
                (void)design.multiplyBatchWide(batch, kernel_gated[i]);
                kernel_gated_s[i] =
                    std::min(kernel_gated_s[i], secondsSince(start));
            }
        }
    }
    double scalar_s = 0.0;
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const double seconds = kernel_s[i];
        const double gated_seconds = kernel_gated_s[i];
        if (std::string("scalar") == kernels[i]->name)
            scalar_s = seconds;
        rows.push_back(
            {kernels[i]->name,
             core::resolvedLaneWords(design, kernel_ungated[i],
                                     batch_rows),
             seconds, scalar_s > 0.0 ? scalar_s / seconds : 0.0,
             core::resolvedLaneWords(design, kernel_gated[i], batch_rows),
             gated_seconds, seconds / gated_seconds});
        std::printf("kernel %-7s (%3u lanes): %8.1f ms, %10.3g "
                    "node-evals/s, %8.1f gemv/s, %.2fx vs scalar; "
                    "gated (%3u lanes) %8.1f ms, %.2fx\n",
                    kernels[i]->name, 64 * rows.back().laneWords,
                    seconds * 1e3, node_evals / seconds,
                    static_cast<double>(batch_rows) / seconds,
                    rows.back().speedupVsScalar,
                    64 * rows.back().gatedLaneWords, gated_seconds * 1e3,
                    rows.back().gatedSpeedup);
    }

    if (args.has("json")) {
        std::string path = args.getString("json", "");
        if (path.empty() || path == "true")
            path = "BENCH_sim_throughput.json";
        std::ostringstream json;
        json.precision(6);
        json << "{\n";
        json << "  \"bench\": \"sim_throughput\",\n";
        json << "  \"workload\": {\"dim\": " << dim << ", \"bits\": "
             << bits << ", \"batch\": " << batch_rows
             << ", \"sparsity\": " << sparsity << ", \"nodes\": " << nodes
             << ", \"drain_cycles\": " << drain << "},\n";
        json << "  \"engine\": {\"kernel\": \"" << active
             << "\", \"kernel_pinned\": "
             << (kernel_pinned ? "true" : "false")
             << ", \"lane_words\": " << lane_words
             << ", \"threads\": " << threads << ", \"activity_gating\": "
             << (sim_options.activityGating ? "true" : "false")
             << ", \"segment_kib\": " << sim_options.segmentKib << "},\n";
        json << "  \"legacy_ms\": " << legacy_s * 1e3 << ",\n";
        json << "  \"tape_ms\": " << tape_s * 1e3 << ",\n";
        json << "  \"legacy_node_evals_per_sec\": " << legacy_rate
             << ",\n";
        json << "  \"tape_node_evals_per_sec\": " << tape_rate << ",\n";
        json << "  \"speedup\": " << speedup << ",\n";
        json << "  \"gating\": {\"gated_ms\": " << gated_s * 1e3
             << ", \"ungated_ms\": " << ungated_s * 1e3
             << ", \"gated_speedup\": " << gated_speedup
             << ", \"lane_words\": " << gated_options.laneWords
             << ", \"segments_executed\": " << gate_stats.segmentsExecuted
             << ", \"segments_skipped\": " << gate_stats.segmentsSkipped
             << ", \"skip_fraction\": " << skip_fraction
             << ", \"bit_exact\": true, \"toggles_exact\": true},\n";
        if (jit_available) {
            json << "  \"jit\": {\"available\": true, \"jit_ms\": "
                 << jit_s * 1e3 << ", \"interp_ms\": "
                 << jit_interp_s * 1e3
                 << ", \"jit_speedup\": " << jit_speedup
                 << ", \"admit_s\": " << jit_admit_s
                 << ", \"lane_words\": " << gated_options.laneWords
                 << ", \"jit_groups\": " << jit_groups
                 << ", \"source_bytes\": " << jit_source_bytes
                 << ", \"bit_exact\": true, \"toggles_exact\": true},\n";
        } else {
            json << "  \"jit\": {\"available\": false},\n";
        }
        json << "  \"kernels\": [";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            json << (i == 0 ? "\n" : ",\n");
            json << "    {\"name\": \"" << rows[i].name
                 << "\", \"lane_words\": " << rows[i].laneWords
                 << ", \"ms\": " << rows[i].seconds * 1e3
                 << ", \"node_evals_per_sec\": "
                 << node_evals / rows[i].seconds
                 << ", \"gemv_per_sec\": "
                 << static_cast<double>(batch_rows) / rows[i].seconds
                 << ", \"speedup_vs_scalar\": "
                 << rows[i].speedupVsScalar
                 << ", \"gated_lane_words\": " << rows[i].gatedLaneWords
                 << ", \"gated_ms\": " << rows[i].gatedSeconds * 1e3
                 << ", \"gated_speedup\": " << rows[i].gatedSpeedup
                 << "}";
        }
        json << "\n  ],\n";
        json << "  \"bit_exact\": true\n";
        json << "}\n";
        std::ofstream out(path);
        out << json.str();
        std::printf("wrote %s\n", path.c_str());
    }

    int failures = 0;

    // CI smoke gate: the AVX2 kernel must beat scalar by the given
    // factor on machines that have it (after the JSON artifact is
    // written, so a regression still uploads its numbers).
    if (args.has("check_kernel_speedup")) {
        const double floor = args.getReal("check_kernel_speedup", 1.5);
        const KernelRow *avx2 = nullptr;
        for (const auto &row : rows)
            if (std::string("avx2") == row.name)
                avx2 = &row;
        if (avx2 == nullptr) {
            std::printf("kernel speedup gate skipped: no AVX2 support\n");
        } else if (avx2->speedupVsScalar < floor) {
            std::printf("ERROR: avx2 kernel %.2fx vs scalar is below the "
                        "%.2fx gate\n",
                        avx2->speedupVsScalar, floor);
            ++failures;
        } else {
            std::printf("kernel speedup gate passed: avx2 %.2fx >= %.2fx\n",
                        avx2->speedupVsScalar, floor);
        }
    }

    // CI gate on the controlled gated-vs-ungated ablation.
    if (args.has("check_gated_speedup")) {
        const double floor = args.getReal("check_gated_speedup", 1.3);
        if (gated_speedup < floor) {
            std::printf("ERROR: gated speedup %.2fx is below the %.2fx "
                        "gate\n",
                        gated_speedup, floor);
            ++failures;
        } else {
            std::printf("gated speedup gate passed: %.2fx >= %.2fx\n",
                        gated_speedup, floor);
        }
    }

    // CI gate on the jit-vs-gated-interpreter ablation; skipped (not
    // failed) without a toolchain, where the fallback contract is what
    // the test suite verifies instead.
    if (args.has("check_jit_speedup")) {
        if (!jit_available) {
            // Skip before parsing the floor so the bare-flag form
            // (`--check_jit_speedup`) works on toolchain-less hosts.
            std::printf("jit speedup gate skipped: %s\n",
                        jit_requested ? "no C toolchain reachable"
                                      : "--jit=0");
        } else if (const double floor =
                       args.getReal("check_jit_speedup", 0.8);
                   jit_speedup < floor) {
            std::printf("ERROR: jit speedup %.2fx is below the %.2fx "
                        "gate\n",
                        jit_speedup, floor);
            ++failures;
        } else {
            std::printf("jit speedup gate passed: %.2fx >= %.2fx\n",
                        jit_speedup, floor);
        }
    }

    // Perf-regression gate against the committed baseline artifact.
    if (args.has("check_baseline")) {
        std::string path = args.getString("check_baseline", "");
        if (path.empty() || path == "true")
            path = "bench/sim_throughput_baseline.json";
        std::ifstream in(path);
        if (!in) {
            std::printf("ERROR: cannot read baseline %s\n", path.c_str());
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        const auto parsed = experiments::JsonValue::parse(buffer.str());
        if (!parsed) {
            std::printf("ERROR: baseline %s is not valid JSON\n",
                        path.c_str());
            return 1;
        }
        const double base_tape_ms = parsed->at("tape_ms").number();
        const double limit =
            parsed->at("tape_ms_regression_limit").number();
        const double allowed = base_tape_ms * limit;
        if (tape_s * 1e3 > allowed) {
            std::printf("ERROR: tape_ms %.1f regressed past %.1f "
                        "(baseline %.1f x %.2f)\n",
                        tape_s * 1e3, allowed, base_tape_ms, limit);
            ++failures;
        } else {
            std::printf("baseline tape_ms gate passed: %.1f <= %.1f\n",
                        tape_s * 1e3, allowed);
        }
        const double gated_floor =
            parsed->at("gated_speedup_floor").number();
        if (gated_speedup < gated_floor) {
            std::printf("ERROR: gated speedup %.2fx below baseline floor "
                        "%.2fx\n",
                        gated_speedup, gated_floor);
            ++failures;
        } else {
            std::printf("baseline gated-speedup gate passed: %.2fx >= "
                        "%.2fx\n",
                        gated_speedup, gated_floor);
        }
        if (const auto *jit_floor = parsed->find("jit_speedup_floor")) {
            if (!jit_available) {
                std::printf("baseline jit-speedup gate skipped: %s\n",
                            jit_requested ? "no C toolchain reachable"
                                          : "--jit=0");
            } else if (jit_speedup < jit_floor->number()) {
                std::printf("ERROR: jit speedup %.2fx below baseline "
                            "floor %.2fx\n",
                            jit_speedup, jit_floor->number());
                ++failures;
            } else {
                std::printf("baseline jit-speedup gate passed: %.2fx >= "
                            "%.2fx\n",
                            jit_speedup, jit_floor->number());
            }
        }
        const auto &floors = parsed->at("kernel_floors");
        for (const auto &row : rows) {
            const auto *floor = floors.find(row.name);
            if (floor == nullptr)
                continue; // kernel not gated by this baseline
            if (row.speedupVsScalar < floor->number()) {
                std::printf("ERROR: kernel %s %.2fx vs scalar below its "
                            "baseline floor %.2fx\n",
                            row.name, row.speedupVsScalar,
                            floor->number());
                ++failures;
            } else {
                std::printf("baseline kernel gate passed: %s %.2fx >= "
                            "%.2fx\n",
                            row.name, row.speedupVsScalar,
                            floor->number());
            }
        }
    }

    return failures == 0 ? 0 : 1;
}
