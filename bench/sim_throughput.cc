/**
 * @file
 * Throughput bench for the compiled-tape simulation engine: end-to-end
 * multiplyBatchWide wall-clock on a Section VI-style workload, new
 * engine vs. the seed 64-lane interpreter path, with results verified
 * bit-exact before any number is reported.
 *
 * Node-evals/sec counts one evaluation per node per cycle per vector
 * (numNodes * drainCycles * batch), the work a cycle-accurate simulator
 * fundamentally performs, so the two engines share a numerator and the
 * rate ratio equals the wall-clock speedup.
 *
 *   sim_throughput [--dim=256] [--batch=1024] [--bits=8]
 *                  [--sparsity=0.9] [--threads=0] [--lane-words=0]
 *                  [--repeats=3] [--json[=path]]
 *
 * --json writes a BENCH_sim_throughput.json artifact for the perf
 * trajectory in CI.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/args.h"
#include "common/rng.h"
#include "core/batch_engine.h"
#include "core/compiler.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Best-of-N wall-clock seconds for one batch multiply. */
template <typename F>
double
bestOf(int repeats, F &&run)
{
    double best = 1e300;
    for (int i = 0; i < repeats; ++i) {
        const auto start = Clock::now();
        run();
        best = std::min(best, secondsSince(start));
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const auto dim = static_cast<std::size_t>(args.getInt("dim", 256));
    const auto batch_rows =
        static_cast<std::size_t>(args.getInt("batch", 1024));
    const int bits = static_cast<int>(args.getInt("bits", 8));
    const double sparsity = args.getReal("sparsity", 0.9);
    const int repeats = static_cast<int>(args.getInt("repeats", 3));

    core::SimOptions sim_options;
    sim_options.threads =
        static_cast<unsigned>(args.getInt("threads", 0));
    sim_options.laneWords =
        static_cast<unsigned>(args.getInt("lane-words", 0));

    Rng rng(99);
    const auto weights =
        makeSignedElementSparseMatrix(dim, dim, bits, sparsity, rng);
    const auto batch = makeSignedBatch(batch_rows, dim, bits, rng);

    core::CompileOptions options;
    options.inputBits = bits;
    options.inputsSigned = true;
    options.signMode = core::SignMode::Csd;

    const auto compile_start = Clock::now();
    const auto design = core::MatrixCompiler(options).compile(weights);
    const double compile_s = secondsSince(compile_start);

    const auto nodes = design.netlist().numNodes();
    const auto drain = design.drainCycles();
    std::printf("workload: %zux%zu, %d-bit, sparsity %.2f, batch %zu\n",
                dim, dim, bits, sparsity, batch_rows);
    std::printf("design:   %zu nodes, %u drain cycles, compiled in %.2fs\n",
                nodes, drain, compile_s);

    // Verify bit-exactness before timing anything.
    const auto expected = design.multiplyBatch(
        [&] {
            // Scalar reference on a truncated batch: full scalar runs are
            // ~64x the wide cost, so spot-check the first group only.
            const std::size_t check = std::min<std::size_t>(64, batch_rows);
            IntMatrix head(check, dim);
            for (std::size_t b = 0; b < check; ++b)
                for (std::size_t r = 0; r < dim; ++r)
                    head.at(b, r) = batch.at(b, r);
            return head;
        }());
    const auto legacy_out = design.multiplyBatchWideLegacy(batch);
    const auto tape_out = design.multiplyBatchWide(batch, sim_options);
    bool exact = legacy_out == tape_out;
    for (std::size_t b = 0; exact && b < expected.rows(); ++b)
        for (std::size_t c = 0; exact && c < expected.cols(); ++c)
            exact = expected.at(b, c) == tape_out.at(b, c);
    if (!exact) {
        std::printf("ERROR: engines disagree; refusing to report timings\n");
        return 1;
    }

    const double legacy_s = bestOf(
        repeats, [&] { (void)design.multiplyBatchWideLegacy(batch); });
    const double tape_s = bestOf(repeats, [&] {
        (void)design.multiplyBatchWide(batch, sim_options);
    });

    const double node_evals = static_cast<double>(nodes) *
                              static_cast<double>(drain) *
                              static_cast<double>(batch_rows);
    const double legacy_rate = node_evals / legacy_s;
    const double tape_rate = node_evals / tape_s;
    const double speedup = legacy_s / tape_s;
    const unsigned lane_words =
        core::resolvedLaneWords(design, sim_options, batch_rows);

    std::printf("seed path (64-lane interpreter): %8.1f ms, %10.3g "
                "node-evals/s\n",
                legacy_s * 1e3, legacy_rate);
    std::printf("tape engine (%3u lanes x %u thr): %8.1f ms, %10.3g "
                "node-evals/s\n",
                64 * lane_words, sim_options.threads, tape_s * 1e3,
                tape_rate);
    std::printf("speedup: %.2fx (bit-exact)\n", speedup);

    if (args.has("json")) {
        std::string path = args.getString("json", "");
        if (path.empty() || path == "true")
            path = "BENCH_sim_throughput.json";
        std::ofstream out(path);
        char buffer[1024];
        std::snprintf(
            buffer, sizeof buffer,
            "{\n"
            "  \"bench\": \"sim_throughput\",\n"
            "  \"workload\": {\"dim\": %zu, \"bits\": %d, \"batch\": %zu,"
            " \"sparsity\": %.3f, \"nodes\": %zu, \"drain_cycles\": %u},\n"
            "  \"engine\": {\"lane_words\": %u, \"threads\": %u},\n"
            "  \"legacy_ms\": %.3f,\n"
            "  \"tape_ms\": %.3f,\n"
            "  \"legacy_node_evals_per_sec\": %.6g,\n"
            "  \"tape_node_evals_per_sec\": %.6g,\n"
            "  \"speedup\": %.3f,\n"
            "  \"bit_exact\": true\n"
            "}\n",
            dim, bits, batch_rows, sparsity, nodes, drain, lane_words,
            sim_options.threads, legacy_s * 1e3, tape_s * 1e3, legacy_rate,
            tape_rate, speedup);
        out << buffer;
        std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}
