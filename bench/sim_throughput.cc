/**
 * @file
 * Throughput bench for the compiled-tape simulation engine: end-to-end
 * multiplyBatchWide wall-clock on a Section VI-style workload, new
 * engine vs. the seed 64-lane interpreter path, with results verified
 * bit-exact before any number is reported.
 *
 * Node-evals/sec counts one evaluation per node per cycle per vector
 * (numNodes * drainCycles * batch), the work a cycle-accurate simulator
 * fundamentally performs, so the two engines share a numerator and the
 * rate ratio equals the wall-clock speedup.
 *
 * The kernel-comparison mode additionally times the tape engine once
 * per SIMD dispatch target supported by the running CPU (scalar, avx2,
 * avx512, neon), each verified bit-exact before timing, and reports
 * per-kernel GEMV/s; --check_kernel_speedup gates the avx2-vs-scalar
 * ratio for CI smoke runs (skipped on machines without AVX2).
 *
 *   sim_throughput [--dim=256] [--batch=1024] [--bits=8]
 *                  [--sparsity=0.9] [--threads=0] [--lane-words=0]
 *                  [--repeats=3] [--json[=path]]
 *                  [--check_kernel_speedup=1.5]
 *
 * --json writes a BENCH_sim_throughput.json artifact for the perf
 * trajectory in CI.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/kernels.h"
#include "common/args.h"
#include "common/rng.h"
#include "core/batch_engine.h"
#include "core/compiler.h"
#include "matrix/generate.h"

namespace
{

using namespace spatial;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Best-of-N wall-clock seconds for one batch multiply. */
template <typename F>
double
bestOf(int repeats, F &&run)
{
    double best = 1e300;
    for (int i = 0; i < repeats; ++i) {
        const auto start = Clock::now();
        run();
        best = std::min(best, secondsSince(start));
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args(argc, argv);
    const auto dim = static_cast<std::size_t>(args.getInt("dim", 256));
    const auto batch_rows =
        static_cast<std::size_t>(args.getInt("batch", 1024));
    const int bits = static_cast<int>(args.getInt("bits", 8));
    const double sparsity = args.getReal("sparsity", 0.9);
    const int repeats = static_cast<int>(args.getInt("repeats", 3));

    core::SimOptions sim_options;
    sim_options.threads =
        static_cast<unsigned>(args.getInt("threads", 0));
    sim_options.laneWords =
        static_cast<unsigned>(args.getInt("lane-words", 0));

    Rng rng(99);
    const auto weights =
        makeSignedElementSparseMatrix(dim, dim, bits, sparsity, rng);
    const auto batch = makeSignedBatch(batch_rows, dim, bits, rng);

    core::CompileOptions options;
    options.inputBits = bits;
    options.inputsSigned = true;
    options.signMode = core::SignMode::Csd;

    const auto compile_start = Clock::now();
    const auto design = core::MatrixCompiler(options).compile(weights);
    const double compile_s = secondsSince(compile_start);

    const auto nodes = design.netlist().numNodes();
    const auto drain = design.drainCycles();
    std::printf("workload: %zux%zu, %d-bit, sparsity %.2f, batch %zu\n",
                dim, dim, bits, sparsity, batch_rows);
    std::printf("design:   %zu nodes, %u drain cycles, compiled in %.2fs\n",
                nodes, drain, compile_s);

    // Verify bit-exactness before timing anything.
    const auto expected = design.multiplyBatch(
        [&] {
            // Scalar reference on a truncated batch: full scalar runs are
            // ~64x the wide cost, so spot-check the first group only.
            const std::size_t check = std::min<std::size_t>(64, batch_rows);
            IntMatrix head(check, dim);
            for (std::size_t b = 0; b < check; ++b)
                for (std::size_t r = 0; r < dim; ++r)
                    head.at(b, r) = batch.at(b, r);
            return head;
        }());
    const auto legacy_out = design.multiplyBatchWideLegacy(batch);
    const auto tape_out = design.multiplyBatchWide(batch, sim_options);
    bool exact = legacy_out == tape_out;
    for (std::size_t b = 0; exact && b < expected.rows(); ++b)
        for (std::size_t c = 0; exact && c < expected.cols(); ++c)
            exact = expected.at(b, c) == tape_out.at(b, c);
    if (!exact) {
        std::printf("ERROR: engines disagree; refusing to report timings\n");
        return 1;
    }

    const double legacy_s = bestOf(
        repeats, [&] { (void)design.multiplyBatchWideLegacy(batch); });
    const double tape_s = bestOf(repeats, [&] {
        (void)design.multiplyBatchWide(batch, sim_options);
    });

    const double node_evals = static_cast<double>(nodes) *
                              static_cast<double>(drain) *
                              static_cast<double>(batch_rows);
    const double legacy_rate = node_evals / legacy_s;
    const double tape_rate = node_evals / tape_s;
    const double speedup = legacy_s / tape_s;
    const unsigned lane_words =
        core::resolvedLaneWords(design, sim_options, batch_rows);
    const char *active = core::resolvedKernel(sim_options).name;

    std::printf("seed path (64-lane interpreter): %8.1f ms, %10.3g "
                "node-evals/s\n",
                legacy_s * 1e3, legacy_rate);
    std::printf("tape engine (%3u lanes x %u thr): %8.1f ms, %10.3g "
                "node-evals/s  [kernel %s]\n",
                64 * lane_words, sim_options.threads, tape_s * 1e3,
                tape_rate, active);
    std::printf("speedup: %.2fx (bit-exact)\n", speedup);

    // Per-kernel comparison: every dispatch target supported by this
    // CPU, each verified bit-exact against the interpreter baseline
    // before timing.  Kernels are timed sequentially in ascending
    // vector width (scalar, neon, avx2, avx512): 512-bit execution
    // triggers license-based frequency reduction that lingers for a
    // couple of milliseconds, so running AVX-512 last keeps its
    // downclock out of every other kernel's timing window (measured:
    // avx2 right after avx512 loses ~8% and flips the CI gate).
    // Single-threaded unless --threads is given, so the ratio measures
    // kernel code rather than how the group scheduler shares the box.
    struct KernelRow
    {
        const char *name;
        unsigned laneWords;
        double seconds;
        double speedupVsScalar;
    };
    std::vector<KernelRow> rows;
    auto kernels = circuit::kernels::supportedKernels();
    std::sort(kernels.begin(), kernels.end(),
              [](const auto *a, const auto *b) {
                  return a->vectorWords < b->vectorWords;
              });
    double scalar_s = 0.0;
    for (const auto *kernel : kernels) {
        core::SimOptions k_options = sim_options;
        k_options.kernel = kernel;
        if (k_options.threads == 0)
            k_options.threads = 1;
        if (!(legacy_out == design.multiplyBatchWide(batch, k_options))) {
            std::printf("ERROR: kernel %s disagrees with the seed path\n",
                        kernel->name);
            return 1;
        }
        const double seconds = bestOf(repeats, [&] {
            (void)design.multiplyBatchWide(batch, k_options);
        });
        if (std::string("scalar") == kernel->name)
            scalar_s = seconds;
        rows.push_back({kernel->name,
                        core::resolvedLaneWords(design, k_options,
                                                batch_rows),
                        seconds,
                        scalar_s > 0.0 ? scalar_s / seconds : 0.0});
        std::printf("kernel %-7s (%3u lanes): %8.1f ms, %10.3g "
                    "node-evals/s, %8.1f gemv/s, %.2fx vs scalar\n",
                    kernel->name, 64 * rows.back().laneWords,
                    seconds * 1e3, node_evals / seconds,
                    static_cast<double>(batch_rows) / seconds,
                    rows.back().speedupVsScalar);
    }

    if (args.has("json")) {
        std::string path = args.getString("json", "");
        if (path.empty() || path == "true")
            path = "BENCH_sim_throughput.json";
        std::ostringstream json;
        json.precision(6);
        json << "{\n";
        json << "  \"bench\": \"sim_throughput\",\n";
        json << "  \"workload\": {\"dim\": " << dim << ", \"bits\": "
             << bits << ", \"batch\": " << batch_rows
             << ", \"sparsity\": " << sparsity << ", \"nodes\": " << nodes
             << ", \"drain_cycles\": " << drain << "},\n";
        json << "  \"engine\": {\"kernel\": \"" << active
             << "\", \"lane_words\": " << lane_words
             << ", \"threads\": " << sim_options.threads << "},\n";
        json << "  \"legacy_ms\": " << legacy_s * 1e3 << ",\n";
        json << "  \"tape_ms\": " << tape_s * 1e3 << ",\n";
        json << "  \"legacy_node_evals_per_sec\": " << legacy_rate
             << ",\n";
        json << "  \"tape_node_evals_per_sec\": " << tape_rate << ",\n";
        json << "  \"speedup\": " << speedup << ",\n";
        json << "  \"kernels\": [";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            json << (i == 0 ? "\n" : ",\n");
            json << "    {\"name\": \"" << rows[i].name
                 << "\", \"lane_words\": " << rows[i].laneWords
                 << ", \"ms\": " << rows[i].seconds * 1e3
                 << ", \"node_evals_per_sec\": "
                 << node_evals / rows[i].seconds
                 << ", \"gemv_per_sec\": "
                 << static_cast<double>(batch_rows) / rows[i].seconds
                 << ", \"speedup_vs_scalar\": "
                 << rows[i].speedupVsScalar << "}";
        }
        json << "\n  ],\n";
        json << "  \"bit_exact\": true\n";
        json << "}\n";
        std::ofstream out(path);
        out << json.str();
        std::printf("wrote %s\n", path.c_str());
    }

    // CI smoke gate: the AVX2 kernel must beat scalar by the given
    // factor on machines that have it (after the JSON artifact is
    // written, so a regression still uploads its numbers).
    if (args.has("check_kernel_speedup")) {
        const double floor = args.getReal("check_kernel_speedup", 1.5);
        const KernelRow *avx2 = nullptr;
        for (const auto &row : rows)
            if (std::string("avx2") == row.name)
                avx2 = &row;
        if (avx2 == nullptr) {
            std::printf("kernel speedup gate skipped: no AVX2 support\n");
        } else if (avx2->speedupVsScalar < floor) {
            std::printf("ERROR: avx2 kernel %.2fx vs scalar is below the "
                        "%.2fx gate\n",
                        avx2->speedupVsScalar, floor);
            return 1;
        } else {
            std::printf("kernel speedup gate passed: avx2 %.2fx >= %.2fx\n",
                        avx2->speedupVsScalar, floor);
        }
    }
    return 0;
}
