/**
 * @file
 * The Section VI large-scale sweep shared by Figures 10, 11, and 12:
 * square matrices of dimension 512 and 1024, 8-bit signed weights,
 * element sparsity 40%..98%, compiled with both the PN split and the
 * CSD transform.
 */

#ifndef SPATIAL_BENCH_LARGE_SCALE_H
#define SPATIAL_BENCH_LARGE_SCALE_H

#include <functional>
#include <vector>

#include "bench/harness.h"

namespace spatial::bench
{

/** One large-scale design point. */
struct LargeScalePoint
{
    std::size_t dim;
    double sparsity;
    core::SignMode mode;
    fpga::DesignPoint point;
};

/** Run the Section VI sweep, invoking `consume` per design point. */
inline std::vector<LargeScalePoint>
runLargeScaleSweep()
{
    std::vector<LargeScalePoint> points;
    for (const std::size_t dim : {512u, 1024u}) {
        for (const double sparsity :
             {0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.98}) {
            const auto workload = makeWorkload(dim, sparsity);
            for (const auto mode :
                 {core::SignMode::PnSplit, core::SignMode::Csd}) {
                points.push_back(LargeScalePoint{
                    dim, sparsity, mode,
                    evalFpga(workload.weights, mode)});
            }
        }
    }
    return points;
}

} // namespace spatial::bench

#endif // SPATIAL_BENCH_LARGE_SCALE_H
