/**
 * @file
 * Figure 10: large-scale area results.  LUT and register counts as a
 * function of the ones in the matrix for 512/1024-dim designs, PN vs
 * CSD: "LUTs are essentially equivalent to the number of ones, and
 * there are two registers per LUT."
 */

#include <iostream>

#include "bench/large_scale.h"
#include "common/table.h"

int
main()
{
    using namespace spatial;

    Table table("Figure 10: large-scale area vs matrix ones",
                {"dim", "sparsity %", "mode", "ones", "LUT", "FF",
                 "LUT/ones", "FF/LUT", "fits"});

    double lut_ratio_sum = 0.0;
    double ff_ratio_sum = 0.0;
    std::size_t count = 0;
    for (const auto &entry : bench::runLargeScaleSweep()) {
        const auto &p = entry.point;
        const double lut_per_one =
            static_cast<double>(p.resources.luts) /
            static_cast<double>(p.ones);
        const double ff_per_lut =
            static_cast<double>(p.resources.ffs) /
            static_cast<double>(p.resources.luts);
        lut_ratio_sum += lut_per_one;
        ff_ratio_sum += ff_per_lut;
        ++count;
        table.addRow({Table::cell(entry.dim),
                      Table::cell(entry.sparsity * 100.0, 3),
                      std::string(core::signModeName(entry.mode)),
                      Table::cell(p.ones), Table::cell(p.resources.luts),
                      Table::cell(p.resources.ffs),
                      Table::cell(lut_per_one, 4),
                      Table::cell(ff_per_lut, 4),
                      std::string(p.fits ? "yes" : "NO")});
    }
    table.print(std::cout);
    std::cout << "\nTrend lines: LUT/ones ~ "
              << lut_ratio_sum / static_cast<double>(count)
              << ", FF/LUT ~ " << ff_ratio_sum / static_cast<double>(count)
              << " (paper: ~1 and ~2; CSD shifts points left along the "
                 "ones axis).\n";
    return 0;
}
