/**
 * @file
 * Figure 7: hardware utilization vs matrix size for random 8-bit
 * integers, 2x2 through 128x128.  Cost is quadratic in dimension —
 * linear in elements — so there is no cross-element optimization to
 * gain or lose with scale.
 */

#include <iostream>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/table.h"
#include "matrix/generate.h"

int
main()
{
    using namespace spatial;

    Table table("Figure 7: utilization vs matrix size (random 8-bit)",
                {"size", "elements", "LUT", "FF", "LUT/element"});

    Rng rng(707);
    for (const std::size_t dim : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        const auto weights = makeElementSparseMatrix(dim, dim, 8, 0.0,
                                                     rng);
        const auto point =
            bench::evalFpga(weights, core::SignMode::Unsigned);
        const double per_element =
            static_cast<double>(point.resources.luts) /
            static_cast<double>(dim * dim);
        table.addRow({Table::cell(std::to_string(dim) + "x" +
                                  std::to_string(dim)),
                      Table::cell(dim * dim),
                      Table::cell(point.resources.luts),
                      Table::cell(point.resources.ffs),
                      Table::cell(per_element, 4)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: LUT/element constant (~4 for uniform "
                 "8-bit values) — cost linear in element count.\n";
    return 0;
}
