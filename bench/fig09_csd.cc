/**
 * @file
 * Figure 9: CSD resource utilization for 64x64 element-sparse matrices.
 * Compares the naive binary implementation (V) against the canonical
 * signed digit transform across element sparsity; CSD is strictly
 * better, ~17% at 8 bits for any sparsity level.
 */

#include <iostream>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/table.h"
#include "matrix/generate.h"

int
main()
{
    using namespace spatial;

    Table table("Figure 9: CSD vs naive (V) utilization "
                "(64x64 element-sparse, 8-bit)",
                {"element-sparsity %", "LUT (V)", "FF (V)", "LUTRAM (V)",
                 "LUT (CSD)", "FF (CSD)", "LUTRAM (CSD)", "saving %"});

    Rng rng(909);
    for (const int pct : {0, 25, 50, 75, 90, 98, 100}) {
        const auto weights =
            makeElementSparseMatrix(64, 64, 8, pct / 100.0, rng);
        const auto naive =
            bench::evalFpga(weights, core::SignMode::Unsigned);
        const auto csd = bench::evalFpga(weights, core::SignMode::Csd);

        const double saving =
            naive.resources.luts == 0
                ? 0.0
                : 100.0 * (1.0 - static_cast<double>(csd.resources.luts) /
                                     static_cast<double>(
                                         naive.resources.luts));
        table.addRow({Table::cell(pct), Table::cell(naive.resources.luts),
                      Table::cell(naive.resources.ffs),
                      Table::cell(naive.resources.lutrams),
                      Table::cell(csd.resources.luts),
                      Table::cell(csd.resources.ffs),
                      Table::cell(csd.resources.lutrams),
                      Table::cell(saving, 3)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: CSD strictly below V at every "
                 "sparsity, ~17% LUT saving for uniform 8-bit data.\n";
    return 0;
}
