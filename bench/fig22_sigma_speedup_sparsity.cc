/**
 * @file
 * Figure 22: FPGA speedup over SIGMA across the 1024x1024 sparsity
 * sweep — largest at low sparsity where SIGMA tiles heavily, smallest
 * at 98% where the nonzeros nearly fit its grid.
 */

#include <iostream>

#include "baselines/sigma.h"
#include "bench/harness.h"
#include "common/table.h"
#include "matrix/generate.h"

int
main()
{
    using namespace spatial;
    baselines::SigmaSim sigma;
    const std::size_t dim = 1024;

    Table table("Figure 22: speedup over SIGMA vs sparsity (1024x1024)",
                {"sparsity %", "speedup"});

    Rng rng(2222);
    for (const double sparsity : {0.70, 0.80, 0.90, 0.95, 0.98}) {
        const auto workload = bench::makeWorkload(dim, sparsity);
        const auto fpga_point = bench::evalFpga(workload.weights);
        const auto input = makeSignedVector(dim, 8, rng);
        const auto result = sigma.runVector(workload.csr, input);

        table.addRow({Table::cell(sparsity * 100.0, 3),
                      Table::cell(result.latencyNs / fpga_point.latencyNs,
                                  4)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: tens of x at 70%, easing to single "
                 "digits at 98%.\n";
    return 0;
}
