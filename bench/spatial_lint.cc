/**
 * @file
 * `spatial-lint`: static verification of compiled artifacts from the
 * command line — the CLI face of src/analysis (see docs/analysis.md
 * for the rule catalog).
 *
 * Modes:
 *
 *   spatial-lint --all-registry [--max_dim N] [--json]
 *       Sweep every distinct (dim, sparsity) the experiment registry's
 *       grids name (capped at --max_dim, default 256), compile each
 *       under every sign mode, and verify every layer — netlist, plan,
 *       segmentation, tile partition, and generated JIT source.  One
 *       forced-tiling case rides along so the tile layer is exercised
 *       even when every registry design fits a single tile.
 *
 *   spatial-lint --design DIM,SPARSITY[,SIGN] [--json]
 *       Compile and verify one design (SIGN: unsigned/pn/csd).
 *
 *   spatial-lint --sptd FILE [--sptd FILE ...] [--json]
 *       Verify serialized design files: container integrity first
 *       (magic/version/checksum), then every layer of the
 *       reconstructed design.
 *
 * Exit status: 0 when no Error-severity diagnostic was found, 1
 * otherwise (warnings print but do not fail the lint).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/verifier.h"
#include "experiments/design_cache.h"
#include "experiments/registry.h"
#include "experiments/workload.h"
#include "matrix/dense.h"

namespace
{

using spatial::IntMatrix;
using namespace spatial::analysis;
using namespace spatial::experiments;

struct Options
{
    bool allRegistry = false;
    bool json = false;
    std::size_t maxDim = 256;
    std::string design; //!< "dim,sparsity[,sign]"
    std::vector<std::string> sptdFiles;
};

void
usage()
{
    std::fprintf(
        stderr,
        "usage: spatial-lint [--json] (--all-registry [--max_dim N] |\n"
        "                    --design DIM,SPARSITY[,SIGN] |\n"
        "                    --sptd FILE [--sptd FILE ...])\n"
        "SIGN: unsigned | pn | csd (default pn)\n");
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** Print one design's findings; returns its error count. */
std::size_t
emit(const Options &opts, const std::string &subject,
     const Report &report, bool *firstJson)
{
    for (const auto &d : report.diagnostics) {
        if (opts.json) {
            std::printf("%s  {\"subject\": \"%s\", \"severity\": "
                        "\"%s\", \"layer\": \"%s\", \"rule\": \"%s\", "
                        "\"index\": %lld, \"message\": \"%s\"}",
                        *firstJson ? "" : ",\n",
                        jsonEscape(subject).c_str(),
                        severityName(d.severity), layerName(d.layer),
                        d.rule.c_str(),
                        d.index == kNoIndex
                            ? -1ll
                            : static_cast<long long>(d.index),
                        jsonEscape(d.message).c_str());
            *firstJson = false;
        } else {
            std::printf("%s: %s\n", subject.c_str(), d.str().c_str());
        }
    }
    return report.errors();
}

const char *
signName(spatial::core::SignMode mode)
{
    switch (mode) {
      case spatial::core::SignMode::Unsigned:
        return "unsigned";
      case spatial::core::SignMode::PnSplit:
        return "pn";
      case spatial::core::SignMode::Csd:
        return "csd";
    }
    return "?";
}

/** Compile (weights, options, tile) and verify every layer. */
std::size_t
lintDesign(const Options &opts, const std::string &subject,
           const IntMatrix &weights,
           const spatial::core::CompileOptions &compile,
           const spatial::core::TileOptions &tile, bool *firstJson,
           std::size_t *checked)
{
    Report request = verifyCompileRequest(compile, weights);
    if (!request.ok())
        return emit(opts, subject, request, firstJson);
    const auto design =
        spatial::core::TiledDesign::compile(weights, compile, tile);
    ++*checked;
    return emit(opts, subject, verifyDesign(design), firstJson);
}

/** Element-wise absolute value (Unsigned-mode lint input). */
IntMatrix
magnitudes(const IntMatrix &weights)
{
    IntMatrix out(weights.rows(), weights.cols());
    for (std::size_t r = 0; r < weights.rows(); ++r)
        for (std::size_t c = 0; c < weights.cols(); ++c) {
            const std::int64_t v = weights.at(r, c);
            out.at(r, c) = v < 0 ? -v : v;
        }
    return out;
}

int
runAllRegistry(const Options &opts)
{
    // Every distinct (dim, sparsity) any registered experiment sweeps.
    std::set<std::pair<std::int64_t, double>> points;
    for (const auto *exp : Registry::instance().all()) {
        if (!exp->grid.hasParam("dim") ||
            !exp->grid.hasParam("sparsity"))
            continue;
        for (const auto &point : exp->grid.expand()) {
            const std::int64_t dim = point.getInt("dim");
            if (dim > 0 && static_cast<std::size_t>(dim) <= opts.maxDim)
                points.insert({dim, point.getReal("sparsity")});
        }
    }

    bool firstJson = true;
    if (opts.json)
        std::printf("[\n");
    std::size_t errors = 0;
    std::size_t checked = 0;
    std::unordered_set<DesignKey, DesignKeyHash> seen; // cross-grid dedup
    for (const auto &[dim, sparsity] : points) {
        const Workload workload =
            makeWorkload(static_cast<std::size_t>(dim), sparsity);
        for (const auto mode : {spatial::core::SignMode::Unsigned,
                                spatial::core::SignMode::PnSplit,
                                spatial::core::SignMode::Csd}) {
            const auto compile = figureCompileOptions(mode);
            const IntMatrix &weights =
                mode == spatial::core::SignMode::Unsigned
                    ? magnitudes(workload.weights)
                    : workload.weights;
            if (!seen.insert(makeDesignKey(weights, compile)).second)
                continue;
            const std::string subject =
                "dim=" + std::to_string(dim) +
                " sparsity=" + std::to_string(sparsity) +
                " sign=" + signName(mode);
            errors += lintDesign(opts, subject, weights, compile, {},
                                 &firstJson, &checked);
        }
    }

    // Forced-tiling case: a tiny ones budget cuts the design into
    // multiple column strips so TILE-* rules run against a real
    // multi-tile partition.
    {
        const Workload workload = makeWorkload(48, 0.5);
        spatial::core::TileOptions tile;
        tile.onesBudget = 2000;
        errors += lintDesign(
            opts, "forced-tiling dim=48", workload.weights,
            figureCompileOptions(spatial::core::SignMode::PnSplit),
            tile, &firstJson, &checked);
    }
    if (opts.json)
        std::printf("%s]\n", firstJson ? "" : "\n");
    else
        std::printf("spatial-lint: %zu designs checked, %zu errors\n",
                    checked, errors);
    return errors == 0 ? 0 : 1;
}

int
runSingleDesign(const Options &opts)
{
    std::size_t dim = 0;
    double sparsity = 0.0;
    char sign[16] = "pn";
    if (std::sscanf(opts.design.c_str(), "%zu,%lf,%15s", &dim,
                    &sparsity, sign) < 2 ||
        dim == 0) {
        usage();
        return 2;
    }
    spatial::core::SignMode mode = spatial::core::SignMode::PnSplit;
    if (std::strcmp(sign, "unsigned") == 0)
        mode = spatial::core::SignMode::Unsigned;
    else if (std::strcmp(sign, "csd") == 0)
        mode = spatial::core::SignMode::Csd;
    else if (std::strcmp(sign, "pn") != 0) {
        usage();
        return 2;
    }
    const Workload workload = makeWorkload(dim, sparsity);
    const IntMatrix &weights =
        mode == spatial::core::SignMode::Unsigned
            ? magnitudes(workload.weights)
            : workload.weights;
    bool firstJson = true;
    if (opts.json)
        std::printf("[\n");
    std::size_t checked = 0;
    const std::size_t errors =
        lintDesign(opts, opts.design, weights,
                   figureCompileOptions(mode), {}, &firstJson,
                   &checked);
    if (opts.json)
        std::printf("%s]\n", firstJson ? "" : "\n");
    else
        std::printf("spatial-lint: %zu designs checked, %zu errors\n",
                    checked, errors);
    return errors == 0 ? 0 : 1;
}

int
runSptd(const Options &opts)
{
    bool firstJson = true;
    if (opts.json)
        std::printf("[\n");
    std::size_t errors = 0;
    for (const auto &path : opts.sptdFiles)
        errors += emit(opts, path, verifyFile(path), &firstJson);
    if (opts.json)
        std::printf("%s]\n", firstJson ? "" : "\n");
    else
        std::printf("spatial-lint: %zu files checked, %zu errors\n",
                    opts.sptdFiles.size(), errors);
    return errors == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--all-registry") {
            opts.allRegistry = true;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--max_dim" && i + 1 < argc) {
            opts.maxDim =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg == "--design" && i + 1 < argc) {
            opts.design = argv[++i];
        } else if (arg == "--sptd" && i + 1 < argc) {
            opts.sptdFiles.push_back(argv[++i]);
        } else {
            usage();
            return 2;
        }
    }
    if (opts.allRegistry)
        return runAllRegistry(opts);
    if (!opts.design.empty())
        return runSingleDesign(opts);
    if (!opts.sptdFiles.empty())
        return runSptd(opts);
    usage();
    return 2;
}
