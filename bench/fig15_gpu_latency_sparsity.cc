/**
 * @file
 * Figure 15: latency of a 1024x1024 matrix as element sparsity sweeps
 * 70%..98%.  The FPGA's cycle count is sparsity-independent but its
 * clock rises with sparsity; the GPU sheds work as sparsity grows and
 * then goes latency-bound.
 */

#include <iostream>

#include "baselines/gpu_model.h"
#include "bench/harness.h"
#include "common/table.h"

int
main()
{
    using namespace spatial;
    using baselines::GpuLibrary;
    using baselines::GpuModel;

    const GpuModel cusparse(GpuLibrary::CuSparse);
    const GpuModel optimized(GpuLibrary::OptimizedKernel);
    const std::size_t dim = 1024;

    Table table("Figure 15: latency vs sparsity (1024x1024)",
                {"sparsity %", "nnz", "cuSPARSE ns", "OptKernel ns",
                 "FPGA ns", "FPGA Fmax MHz"});

    for (const double sparsity : {0.70, 0.75, 0.80, 0.85, 0.90, 0.95,
                                  0.98}) {
        const auto workload = bench::makeWorkload(dim, sparsity);
        const auto nnz = workload.csr.nnz();
        const auto fpga_point = bench::evalFpga(workload.weights);

        table.addRow({Table::cell(sparsity * 100.0, 3), Table::cell(nnz),
                      Table::cell(cusparse.latencyNs(dim, dim, nnz), 5),
                      Table::cell(optimized.latencyNs(dim, dim, nnz), 5),
                      Table::cell(fpga_point.latencyNs, 5),
                      Table::cell(fpga_point.fmaxMhz, 4)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: cuSPARSE drops sharply 70->85% then "
                 "levels off; FPGA stays well under 1 us at every "
                 "point.\n";
    return 0;
}
