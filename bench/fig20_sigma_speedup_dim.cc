/**
 * @file
 * Figure 20: FPGA speedup over SIGMA across the 98% sparse dimension
 * sweep.  Paper anchors: ~4.1x in the worst case (small matrices that
 * fit SIGMA's grid), growing to ~25x once tiling makes SIGMA
 * memory-bound.
 */

#include <iostream>

#include "baselines/sigma.h"
#include "bench/harness.h"
#include "common/table.h"
#include "matrix/generate.h"

int
main()
{
    using namespace spatial;
    baselines::SigmaSim sigma;

    Table table("Figure 20: speedup over SIGMA vs dimension (98% sparse)",
                {"dim", "speedup"});

    Rng rng(2020);
    for (const std::size_t dim : {64u, 128u, 256u, 512u, 1024u, 2048u,
                                  4096u}) {
        const auto workload = bench::makeWorkload(dim, 0.98);
        const auto fpga_point = bench::evalFpga(workload.weights);
        const auto input = makeSignedVector(dim, 8, rng);
        const auto result = sigma.runVector(workload.csr, input);

        table.addRow({Table::cell(dim),
                      Table::cell(result.latencyNs / fpga_point.latencyNs,
                                  4)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: single-digit speedup while SIGMA "
                 "fits (worst ~4x), rising to tens once tiled.\n";
    return 0;
}
