/**
 * @file
 * Figure 18: batched speedup against a 64x64, 95% sparse matrix.  The
 * tiny matrix leaves the GPU with far more computational intensity to
 * fill, so it stays latency-bound across the whole batch sweep and the
 * FPGA's advantage persists longer than in the 1024 case.
 */

#include <iostream>

#include "baselines/gpu_model.h"
#include "bench/harness.h"
#include "common/table.h"

int
main()
{
    using namespace spatial;
    using baselines::GpuLibrary;
    using baselines::GpuModel;

    const GpuModel cusparse(GpuLibrary::CuSparse);
    const GpuModel optimized(GpuLibrary::OptimizedKernel);
    const std::size_t dim = 64;

    const auto workload = bench::makeWorkload(dim, 0.95);
    const auto nnz = workload.csr.nnz();
    const auto fpga_point = bench::evalFpga(workload.weights);

    Table table("Figure 18: batched speedup (64x64, 95% sparse)",
                {"batch", "FPGA ns", "speedup vs cuSPARSE",
                 "speedup vs OptKernel"});

    for (const std::size_t batch : {1u, 2u, 4u, 16u, 32u, 64u}) {
        const double fpga_ns = fpga_point.batchLatencyNs(batch);
        table.addRow(
            {Table::cell(batch), Table::cell(fpga_ns, 5),
             Table::cell(cusparse.latencyNs(dim, dim, nnz, batch) /
                             fpga_ns, 4),
             Table::cell(optimized.latencyNs(dim, dim, nnz, batch) /
                             fpga_ns, 4)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: very large batch-1 speedup decaying "
                 "with batch, still > 1x at batch 64.\n";
    return 0;
}
