/**
 * @file
 * Figure 21: FPGA vs SIGMA latency for a 1024x1024 matrix across
 * element sparsity 70..98%.  SIGMA maps only nonzeros, so very high
 * sparsity fits its grid (nanosecond regime); 90% and below forces
 * tiling and pushes it back above a microsecond.
 */

#include <iostream>

#include "baselines/sigma.h"
#include "bench/harness.h"
#include "common/table.h"
#include "matrix/generate.h"

int
main()
{
    using namespace spatial;
    baselines::SigmaSim sigma;
    const std::size_t dim = 1024;

    Table table("Figure 21: FPGA vs SIGMA latency vs sparsity "
                "(1024x1024)",
                {"sparsity %", "nnz", "tiles", "SIGMA ns", "FPGA ns"});

    Rng rng(2121);
    for (const double sparsity : {0.70, 0.80, 0.90, 0.95, 0.98}) {
        const auto workload = bench::makeWorkload(dim, sparsity);
        const auto fpga_point = bench::evalFpga(workload.weights);
        const auto input = makeSignedVector(dim, 8, rng);
        const auto result = sigma.runVector(workload.csr, input);

        table.addRow({Table::cell(sparsity * 100.0, 3),
                      Table::cell(workload.csr.nnz()),
                      Table::cell(result.tiles),
                      Table::cell(result.latencyNs, 5),
                      Table::cell(fpga_point.latencyNs, 5)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: SIGMA improves dramatically with "
                 "sparsity; <=90% sparsity is back in the microsecond "
                 "regime.\n";
    return 0;
}
