/**
 * @file
 * Ablation of the compiler's design choices (DESIGN.md section 4):
 *
 *  1. constant propagation — the paper's fundamental minimization —
 *     versus the naive Figure-2a structure with AND gates and full
 *     trees;
 *  2. balanced (logarithmic) reduction trees versus a linear adder
 *     chain;
 *  3. PN split versus CSD for signed weights.
 *
 * Reports mapped resources and measured stream latency for each
 * variant; all variants remain functionally exact (the tests enforce
 * it), so this isolates pure cost.
 */

#include <iostream>

#include "bench/harness.h"
#include "common/table.h"
#include "core/latency.h"

int
main()
{
    using namespace spatial;

    Table table("Generator ablation (8-bit signed, 95% sparse)",
                {"dim", "variant", "LUT", "FF", "LUTRAM", "drain cycles",
                 "Fmax MHz"});

    struct Variant
    {
        const char *name;
        core::SignMode mode;
        bool constantProp;
        bool balanced;
        std::uint32_t fanoutLimit;
    };
    const Variant variants[] = {
        {"naive (no const-prop)", core::SignMode::PnSplit, false, true, 0},
        {"chain reduction", core::SignMode::PnSplit, true, false, 0},
        {"pn (paper)", core::SignMode::PnSplit, true, true, 0},
        {"csd (paper best)", core::SignMode::Csd, true, true, 0},
        {"csd + piped broadcast", core::SignMode::Csd, true, true, 32},
    };

    for (const std::size_t dim : {64u, 256u}) {
        const auto workload = bench::makeWorkload(dim, 0.95);
        for (const auto &variant : variants) {
            core::CompileOptions options;
            options.inputBits = 8;
            options.signMode = variant.mode;
            options.constantPropagation = variant.constantProp;
            options.balancedTree = variant.balanced;
            options.broadcastFanoutLimit = variant.fanoutLimit;
            const auto design =
                core::MatrixCompiler(options).compile(workload.weights);
            const auto point = fpga::evaluateDesign(design);

            table.addRow({Table::cell(dim), std::string(variant.name),
                          Table::cell(point.resources.luts),
                          Table::cell(point.resources.ffs),
                          Table::cell(point.resources.lutrams),
                          Table::cell(std::uint64_t{design.drainCycles()}),
                          Table::cell(point.fmaxMhz, 4)});
        }
    }
    table.print(std::cout);
    std::cout << "\nExpected: const-prop buys orders of magnitude of "
                 "area; balanced trees buy latency; CSD shaves ~17% off "
                 "PN.\n";
    return 0;
}
