/**
 * @file
 * Figure 12: large-scale power results.  Estimated total power of each
 * Section VI design scaled to run at its maximum achievable frequency.
 * Growth is sublinear in design size because Fmax falls as designs
 * spill across SLRs; the biggest designs approach the 150 W thermal
 * limit.
 */

#include <iostream>

#include "bench/large_scale.h"
#include "common/table.h"
#include "fpga/device.h"

int
main()
{
    using namespace spatial;

    Table table("Figure 12: large-scale power at Fmax",
                {"dim", "sparsity %", "mode", "ones", "Fmax MHz",
                 "power W", "thermal"});

    for (const auto &entry : bench::runLargeScaleSweep()) {
        const auto &p = entry.point;
        table.addRow({Table::cell(entry.dim),
                      Table::cell(entry.sparsity * 100.0, 3),
                      std::string(core::signModeName(entry.mode)),
                      Table::cell(p.ones), Table::cell(p.fmaxMhz, 4),
                      Table::cell(p.powerWatts, 4),
                      std::string(fpga::exceedsThermalLimit(p.powerWatts)
                                      ? "OVER"
                                      : "ok")});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: sublinear growth with ones (falling "
                 "Fmax); high dimension + low sparsity approaches the "
              << fpga::Xcvu13p::thermalLimitWatts << " W limit.\n";
    return 0;
}
