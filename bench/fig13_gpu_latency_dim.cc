/**
 * @file
 * Figure 13: latency (ns) of 98% element-sparse matrices, dimension 64
 * through 4096: cuSPARSE and the optimized kernel on the modelled V100
 * versus the FPGA design running at its achieved Fmax.
 */

#include <iostream>

#include "baselines/gpu_model.h"
#include "bench/harness.h"
#include "common/table.h"

int
main()
{
    using namespace spatial;
    using baselines::GpuLibrary;
    using baselines::GpuModel;

    const GpuModel cusparse(GpuLibrary::CuSparse);
    const GpuModel optimized(GpuLibrary::OptimizedKernel);

    Table table("Figure 13: latency vs dimension (98% sparse)",
                {"dim", "nnz", "cuSPARSE ns", "OptKernel ns", "FPGA ns",
                 "FPGA Fmax MHz"});

    for (const std::size_t dim : {64u, 128u, 256u, 512u, 1024u, 2048u,
                                  4096u}) {
        const auto workload = bench::makeWorkload(dim, 0.98);
        const auto nnz = workload.csr.nnz();
        const auto fpga_point = bench::evalFpga(workload.weights);

        table.addRow({Table::cell(dim), Table::cell(nnz),
                      Table::cell(cusparse.latencyNs(dim, dim, nnz), 5),
                      Table::cell(optimized.latencyNs(dim, dim, nnz), 5),
                      Table::cell(fpga_point.latencyNs, 5),
                      Table::cell(fpga_point.fmaxMhz, 4)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: FPGA < 150 ns everywhere; both GPU "
                 "libraries above 1 us, flat below 512 (latency-bound) "
                 "then growing with nnz.\n";
    return 0;
}
