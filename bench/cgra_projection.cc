/**
 * @file
 * Section VIII projection (ours — the paper's Discussion quantified):
 * the same compiled designs on the FPGA versus the proposed CGRA fabric
 * of full-adder cells with pipelined broadcast and pipeline
 * reconfiguration.  Reports transistor density, latency, and the
 * dynamic-matrix crossover the paper's conclusion describes ("a
 * customized programmable device ... could pipeline the configuration
 * ... and enable this approach to work for dynamic sparse matrices").
 */

#include <iostream>

#include "bench/harness.h"
#include "cgra/cgra.h"
#include "common/table.h"
#include "core/compiler.h"

int
main()
{
    using namespace spatial;

    Table density("CGRA projection: area and latency",
                  {"dim", "sparsity %", "FPGA transistors",
                   "CGRA transistors", "density x", "FPGA ns", "CGRA ns"});

    struct Case
    {
        std::size_t dim;
        double sparsity;
    };
    const Case cases[] = {{64, 0.9}, {256, 0.9}, {512, 0.9},
                          {512, 0.6}, {1024, 0.9}};

    cgra::CgraPoint example_point{};
    for (const auto &c : cases) {
        const auto workload = bench::makeWorkload(c.dim, c.sparsity);
        core::CompileOptions options;
        options.signMode = core::SignMode::Csd;
        const auto design =
            core::MatrixCompiler(options).compile(workload.weights);
        const auto fpga_point = fpga::evaluateDesign(design);
        const auto point = cgra::projectDesign(design, fpga_point);
        if (c.dim == 1024)
            example_point = point;

        density.addRow({Table::cell(c.dim),
                        Table::cell(c.sparsity * 100.0, 3),
                        Table::cell(point.fpgaTransistors, 4),
                        Table::cell(point.transistors, 4),
                        Table::cell(point.densityAdvantage, 4),
                        Table::cell(point.fpgaLatencyNs, 4),
                        Table::cell(point.latencyNs, 4)});
    }
    density.print(std::cout);

    Table dynamic("Dynamic sparse matrices: sustained ns/multiply vs "
                  "matrix lifetime (1024x1024, 90% sparse)",
                  {"multiplies per matrix", "FPGA (200 ms reconfig)",
                   "CGRA (pipeline reconfig)"});
    for (const std::size_t life :
         {1ul, 100ul, 10'000ul, 1'000'000ul, 100'000'000ul}) {
        dynamic.addRow(
            {Table::cell(life),
             Table::cell(cgra::sustainedNsPerMultiply(example_point, life,
                                                      true), 5),
             Table::cell(cgra::sustainedNsPerMultiply(example_point, life,
                                                      false), 5)});
    }
    std::cout << "\n";
    dynamic.print(std::cout);
    std::cout << "\nExpected: ~4-10x transistor density advantage, flat "
                 "CGRA clock, and a dynamic-matrix regime only the CGRA "
                 "survives.\n";
    return 0;
}
