/**
 * @file
 * spatial-serve: load-test the serving layer, in-process or over TCP.
 *
 * Hosts the built-in load generator against an in-process Server:
 * open-loop Poisson arrivals at a target QPS, closed-loop clients, or
 * drain mode (submit everything, then drain — the batch-saturating
 * ceiling, optionally compared bit-for-bit against the naive
 * one-request-per-multiply path).
 *
 *   spatial-serve --mode=drain --requests=4096 --compare
 *   spatial-serve --mode=open --qps=20000 --duration=2
 *   spatial-serve --mode=closed --clients=128 --duration=2
 *   spatial-serve --designs=4 --batch_frac=0.2 --esn_frac=0.1
 *   spatial-serve --mode=drain --compare --check_speedup=3 --json
 *   spatial-serve --activity_gating=0 --segment_kib=8
 *   spatial-serve --jit=1         # JIT admission at registration
 *   spatial-serve --spill_dir=/tmp/spill --store_capacity=2
 *   spatial-serve --dim=4096 --tile_budget=262144  # column tiling
 *
 * With --listen the same binary becomes the network front end: a
 * NetServer over N engine-pool shards, serving the wire protocol until
 * SIGTERM/SIGINT triggers a graceful drain.  With --remote the load
 * generator drives such a server over TCP instead of an in-process
 * Server — bit-identical workload for the same seed.
 *
 *   spatial-serve --listen --port=7411 --shards=2 --max_queue=512
 *   spatial-serve --listen --port=0 --port_file=port.txt   # ephemeral
 *   spatial-serve --remote=127.0.0.1:7411 --mode=drain --compare
 *   spatial-serve --remote=... --retry_busy=0 --check_shed=1
 *   spatial-serve --remote=... --request_timeout_ms=200 --reconnects=3
 *   spatial-serve --listen --drain_timeout_ms=2000 \
 *                 --max_queue_age_ms=50 --slow_worker_ms=250
 *
 * --json[=path] writes BENCH_serve.json (CI trends it next to the
 * sim_throughput artifact).  --check_speedup=R exits 1 unless drain
 * mode measured a >= R batching speedup with bit-identical outputs.
 * --check_shed=N exits 1 unless at least N requests were shed with
 * BUSY (the overload smoke proves shedding, not latency collapse).
 */

#include <csignal>
#include <cstdio>
#include <fstream>

#include "common/args.h"
#include "common/logging.h"
#include "serve/loadgen.h"
#include "serve/net_server.h"

namespace
{

/** The listening server a signal must stop (set before handlers). */
spatial::serve::NetServer *g_server = nullptr;

extern "C" void
handleStopSignal(int)
{
    // Async-signal-safe: writes one byte down the server's wake pipe.
    if (g_server != nullptr)
        g_server->requestShutdown();
}

/** Run the TCP front end until a stop signal drains it. */
int
runListen(const spatial::Args &args,
          const spatial::serve::LoadGenOptions &options)
{
    using namespace spatial;
    using namespace spatial::serve;

    NetServerOptions net;
    const std::string host = args.getString("listen", "");
    if (!host.empty() && host != "true")
        net.host = host;
    net.host = args.getString("listen_host", net.host);
    net.port = static_cast<std::uint16_t>(args.getInt("port", 0));
    net.shards = static_cast<std::size_t>(args.getInt("shards", 1));
    net.maxQueue =
        static_cast<std::size_t>(args.getInt("max_queue", 1024));
    net.maxRegisterDim = static_cast<std::size_t>(args.getInt(
        "max_register_dim",
        static_cast<std::int64_t>(net.maxRegisterDim)));
    net.maxFrameBytes = static_cast<std::uint32_t>(args.getInt(
        "max_frame_bytes",
        static_cast<std::int64_t>(net.maxFrameBytes)));
    // Degradation knobs: a bounded SIGTERM drain, plus the per-shard
    // queue-age watchdog and slow-worker detector (docs/robustness.md).
    net.drainTimeout =
        std::chrono::milliseconds(args.getInt("drain_timeout_ms", 0));
    net.serve = options.serve;

    NetServer server(net);
    g_server = &server;
    std::signal(SIGTERM, handleStopSignal);
    std::signal(SIGINT, handleStopSignal);

    std::printf("spatial-serve: listening on %s:%u (%zu shards, "
                "max_queue=%zu, %u workers/shard)\n",
                net.host.c_str(), server.port(),
                server.options().shards, server.options().maxQueue,
                net.serve.workers);
    std::fflush(stdout);

    // Export the resolved port for scripts racing the ephemeral bind
    // (ctest -j, the CI smoke): write to a temp name, then rename, so
    // a reader never sees a half-written file.
    if (args.has("port_file")) {
        const std::string path = args.getString("port_file", "");
        if (path.empty() || path == "true")
            SPATIAL_FATAL("--port_file needs a path");
        const std::string tmp = path + ".tmp";
        {
            std::ofstream out(tmp);
            if (!out)
                SPATIAL_FATAL("cannot write ", tmp);
            out << server.port() << "\n";
        }
        if (std::rename(tmp.c_str(), path.c_str()) != 0)
            SPATIAL_FATAL("cannot rename ", tmp, " to ", path);
    }

    server.waitUntilStopped();
    g_server = nullptr;

    const NetServerStats stats = server.stats();
    std::printf("spatial-serve: drained; %zu connections served, %zu "
                "designs, %zu bad frames\n",
                stats.accepted, stats.registered, stats.badFrames);
    for (std::size_t s = 0; s < stats.shards.size(); ++s) {
        const ShardStats &shard = stats.shards[s];
        std::printf("  shard %zu: %zu submitted, %zu shed, occupancy "
                    "%.2f, %zu groups\n",
                    s, shard.submitted, shard.shed,
                    shard.server.occupancy(), shard.server.groups);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace spatial;
    using namespace spatial::serve;

    const Args args(argc, argv);

    LoadGenOptions options;
    options.mode = parseMode(args.getString("mode", "drain"));
    options.qps = args.getReal("qps", 20000.0);
    options.clients =
        static_cast<unsigned>(args.getInt("clients", 128));
    options.duration = args.getReal("duration", 1.0);
    options.requests =
        static_cast<std::size_t>(args.getInt("requests", 4096));
    options.designs =
        static_cast<std::size_t>(args.getInt("designs", 1));
    options.dim = static_cast<std::size_t>(args.getInt("dim", 128));
    options.bits = static_cast<int>(args.getInt("bits", 8));
    options.sparsity = args.getReal("sparsity", 0.9);
    options.batchFraction = args.getReal("batch_frac", 0.0);
    options.batchSize =
        static_cast<std::size_t>(args.getInt("batch_size", 16));
    options.esnFraction = args.getReal("esn_frac", 0.0);
    options.seed =
        static_cast<std::uint64_t>(args.getInt("seed", 42));
    options.compareNaive =
        args.getBool("compare", false) || args.has("check_speedup");
    options.remote = args.getString("remote", "");
    options.retryBusy = args.getBool("retry_busy", true);
    options.sloMs = args.getReal("slo_ms", 50.0);
    // Client-side degradation (remote mode): per-request deadlines
    // and reconnect-and-replay after a dropped connection.
    options.requestTimeout = std::chrono::milliseconds(
        args.getInt("request_timeout_ms", 0));
    options.reconnects =
        static_cast<unsigned>(args.getInt("reconnects", 0));

    options.serve.maxBatch =
        static_cast<std::size_t>(args.getInt("max_batch", 256));
    // Named like the serving_throughput grid axis so the two CLIs
    // spell the knob identically.
    options.serve.maxDelay = std::chrono::microseconds(
        args.getInt("max_delay_us", 2000));
    options.serve.workers =
        static_cast<unsigned>(args.getInt("workers", 0));
    options.serve.storeCapacity =
        static_cast<std::size_t>(args.getInt("store_capacity", 64));
    // Memory tiering: with a spill directory, designs evicted from
    // the hot tier demote to disk and rematerialize on their next
    // request instead of recompiling (docs/store.md).
    options.serve.storeSpillDir = args.getString("spill_dir", "");
    options.serve.tile.onesBudget = static_cast<std::size_t>(
        args.getInt("tile_budget",
                    static_cast<std::int64_t>(
                        options.serve.tile.onesBudget)));
    options.serve.sim.laneWords =
        static_cast<unsigned>(args.getInt("lane-words", 0));
    options.serve.sim.activityGating =
        args.getBool("activity_gating", true);
    options.serve.sim.segmentKib = static_cast<unsigned>(
        args.getInt("segment_kib", options.serve.sim.segmentKib));
    // JIT admission at registration; designs fall back to the
    // interpreted tape when no toolchain is reachable (visible in the
    // jit_admitted/jit_failed and jit_groups counters below).
    options.serve.sim.jit = args.getBool("jit", false);
    // Queue-age watchdog: sheds batched work older than the bound and
    // flags workers stuck past the slow-worker threshold.
    options.serve.maxQueueAge = std::chrono::milliseconds(
        args.getInt("max_queue_age_ms", 0));
    options.serve.slowWorkerAfter = std::chrono::milliseconds(
        args.getInt("slow_worker_ms", 0));

    if (args.has("listen")) {
        if (!options.remote.empty())
            SPATIAL_FATAL("--listen and --remote are mutually "
                          "exclusive (server vs load-generator role)");
        return runListen(args, options);
    }

    if (options.compareNaive &&
        options.mode != LoadGenOptions::Mode::Drain)
        SPATIAL_FATAL("--compare/--check_speedup need --mode=drain "
                      "(the naive path replays the identical request "
                      "list)");

    std::printf("spatial-serve: mode=%s%s%s designs=%zu dim=%zu "
                "bits=%d max_batch=%zu max_delay=%lldus seed=%llu\n",
                modeName(options.mode),
                options.remote.empty() ? "" : " remote=",
                options.remote.c_str(), options.designs, options.dim,
                options.bits, options.serve.maxBatch,
                static_cast<long long>(options.serve.maxDelay.count()),
                static_cast<unsigned long long>(options.seed));

    const LoadGenResult result = runLoadGen(options);

    std::printf("completed %zu requests in %.3fs: %.0f req/s\n",
                result.completed, result.seconds, result.throughput);
    std::printf("latency ms: p50=%.3f p95=%.3f p99=%.3f mean=%.3f "
                "max=%.3f; %.1f%% within %.1fms SLO\n",
                result.latencyMs.p50, result.latencyMs.p95,
                result.latencyMs.p99, result.latencyMs.mean,
                result.latencyMs.max, result.sloCompliance * 100.0,
                options.sloMs);
    if (!options.remote.empty()) {
        std::printf("admission: %zu shed with BUSY, %zu retries\n",
                    result.shed, result.busyRetries);
        if (result.timeouts + result.lost + result.reconnects +
                result.watchdogShed + result.faultsInjected >
            0)
            std::printf("degradation: %zu timeouts, %zu lost, %zu "
                        "reconnects, %zu watchdog shed, %zu faults "
                        "injected\n",
                        result.timeouts, result.lost,
                        result.reconnects, result.watchdogShed,
                        result.faultsInjected);
        for (std::size_t s = 0; s < result.shardStats.rows(); ++s) {
            const double padded = static_cast<double>(
                result.shardStats.at(s, wire::kStatPaddedLanes));
            std::printf(
                "  shard %zu: %lld requests, %lld shed, occupancy "
                "%.2f, %lld in flight\n",
                s,
                static_cast<long long>(
                    result.shardStats.at(s, wire::kStatRequests)),
                static_cast<long long>(
                    result.shardStats.at(s, wire::kStatShed)),
                padded > 0.0
                    ? static_cast<double>(result.shardStats.at(
                          s, wire::kStatLanes)) /
                          padded
                    : 0.0,
                static_cast<long long>(
                    result.shardStats.at(s, wire::kStatInFlight)));
        }
    } else {
        std::printf(
            "batching: %zu groups, %zu/%zu lanes used (occupancy "
            "%.2f), flushes full=%zu deadline=%zu drain=%zu, "
            "sequences=%zu\n",
            result.stats.groups, result.stats.lanes,
            result.stats.paddedLanes, result.stats.occupancy(),
            result.stats.flushFull, result.stats.flushDeadline,
            result.stats.flushDrain, result.stats.sequences);
        std::printf(
            "engine: %u workers, %zu passes, activity gating %s "
            "(%llu/%llu segments skipped)\n",
            result.workersResolved, result.stats.enginePasses,
            options.serve.sim.activityGating ? "on" : "off",
            static_cast<unsigned long long>(
                result.stats.segmentsSkipped),
            static_cast<unsigned long long>(
                result.stats.segmentsSkipped +
                result.stats.segmentsExecuted));
        std::printf("store: %zu hits / %zu misses, %zu evictions, %zu "
                    "resident\n",
                    result.stats.store.cache.hits,
                    result.stats.store.cache.misses,
                    result.stats.store.evictions,
                    result.stats.store.resident);
        if (result.watchdogShed + result.stats.slowWorkerFlags +
                result.faultsInjected >
            0)
            std::printf("watchdog: %zu shed, %zu slow-worker flags, "
                        "%zu faults injected\n",
                        result.watchdogShed,
                        static_cast<std::size_t>(
                            result.stats.slowWorkerFlags),
                        result.faultsInjected);
        if (!options.serve.storeSpillDir.empty())
            std::printf("tiering: %zu demotions, %zu promotions, %zu "
                        "cold fallbacks; compile %.2fs vs load %.2fs\n",
                        result.stats.store.demotions,
                        result.stats.store.promotions,
                        result.stats.store.coldFallbacks,
                        result.stats.store.compileSeconds,
                        result.stats.store.loadSeconds);
        if (options.serve.sim.jit)
            std::printf(
                "jit: %zu designs admitted (%zu failed) in %.2fs; "
                "%llu groups jitted, %llu fell back\n",
                result.stats.store.jitAdmitted,
                result.stats.store.jitFailed,
                result.stats.store.jitCompileSeconds,
                static_cast<unsigned long long>(result.stats.jitGroups),
                static_cast<unsigned long long>(
                    result.stats.jitFallbackGroups));
    }
    if (options.compareNaive) {
        std::printf("naive path: %.0f req/s (%.3fs); batched speedup "
                    "%.2fx, outputs %s\n",
                    result.naiveThroughput, result.naiveSeconds,
                    result.speedup,
                    result.bitExact ? "bit-identical" : "MISMATCH");
        if (!result.bitExact)
            SPATIAL_FATAL("batched outputs differ from the naive "
                          "path; refusing to report timings");
    }

    if (args.has("json")) {
        std::string path = args.getString("json", "BENCH_serve.json");
        if (path.empty() || path == "true")
            path = "BENCH_serve.json";
        std::ofstream out(path);
        if (!out)
            SPATIAL_FATAL("cannot write ", path);
        out << result.toJson(options);
        std::printf("wrote %s\n", path.c_str());
    }

    if (args.has("check_speedup")) {
        const double want = args.getReal("check_speedup", 3.0);
        if (result.speedup < want) {
            std::fprintf(stderr,
                         "FAIL: batching speedup %.2fx below required "
                         "%.2fx\n",
                         result.speedup, want);
            return 1;
        }
        std::printf("OK: batching speedup %.2fx >= %.2fx\n",
                    result.speedup, want);
    }
    if (args.has("check_shed")) {
        const std::size_t want = static_cast<std::size_t>(
            args.getInt("check_shed", 1));
        if (result.shed < want) {
            std::fprintf(stderr,
                         "FAIL: %zu requests shed, expected >= %zu "
                         "(admission control never engaged)\n",
                         result.shed, want);
            return 1;
        }
        std::printf("OK: %zu requests shed with BUSY (>= %zu)\n",
                    result.shed, want);
    }
    return 0;
}
