/**
 * @file
 * Figure 23: FPGA speedup over SIGMA for batched multiplication
 * (1024x1024, 95% sparse, batch 1..64).  SIGMA amortizes tile loads
 * over the batch but pays per-vector streaming and accumulation per
 * tile, so the speedup decays from ~12x at batch 1 and saturates in the
 * single digits.
 */

#include <iostream>

#include "baselines/sigma.h"
#include "bench/harness.h"
#include "common/table.h"
#include "matrix/generate.h"

int
main()
{
    using namespace spatial;
    baselines::SigmaSim sigma;
    const std::size_t dim = 1024;

    const auto workload = bench::makeWorkload(dim, 0.95);
    const auto fpga_point = bench::evalFpga(workload.weights);

    Table table("Figure 23: batched speedup over SIGMA "
                "(1024x1024, 95% sparse)",
                {"batch", "SIGMA ns", "FPGA ns", "speedup"});

    Rng rng(2323);
    for (const std::size_t batch : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        const auto inputs = makeSignedBatch(batch, dim, 8, rng);
        const auto result = sigma.run(workload.csr, inputs);
        const double fpga_ns = fpga_point.batchLatencyNs(batch);

        table.addRow({Table::cell(batch),
                      Table::cell(result.latencyNs, 5),
                      Table::cell(fpga_ns, 5),
                      Table::cell(result.latencyNs / fpga_ns, 4)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: speedup decays from ~12x at batch 1 "
                 "and saturates in the single digits.\n";
    return 0;
}
