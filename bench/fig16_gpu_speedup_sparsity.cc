/**
 * @file
 * Figure 16: speedup over the GPU libraries across the 1024x1024
 * sparsity sweep.  The paper's anchors for the optimized kernel:
 * 77x at 70% falling to 72x at 85% and a minimum of ~60x as the GPU
 * goes underutilized at high sparsity.
 */

#include <iostream>

#include "baselines/gpu_model.h"
#include "bench/harness.h"
#include "common/table.h"

int
main()
{
    using namespace spatial;
    using baselines::GpuLibrary;
    using baselines::GpuModel;

    const GpuModel cusparse(GpuLibrary::CuSparse);
    const GpuModel optimized(GpuLibrary::OptimizedKernel);
    const std::size_t dim = 1024;

    Table table("Figure 16: speedup vs sparsity (1024x1024)",
                {"sparsity %", "speedup vs cuSPARSE",
                 "speedup vs OptKernel"});

    for (const double sparsity : {0.70, 0.75, 0.80, 0.85, 0.90, 0.95,
                                  0.98}) {
        const auto workload = bench::makeWorkload(dim, sparsity);
        const auto nnz = workload.csr.nnz();
        const auto fpga_point = bench::evalFpga(workload.weights);

        table.addRow(
            {Table::cell(sparsity * 100.0, 3),
             Table::cell(cusparse.latencyNs(dim, dim, nnz) /
                             fpga_point.latencyNs, 4),
             Table::cell(optimized.latencyNs(dim, dim, nnz) /
                             fpga_point.latencyNs, 4)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: optimized-kernel speedup highest at "
                 "70% (~77x), easing toward ~60x at 98%; cuSPARSE "
                 "several times higher throughout.\n";
    return 0;
}
