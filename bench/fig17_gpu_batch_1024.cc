/**
 * @file
 * Figure 17: speedup over the V100 for batched multiplication against a
 * 1024x1024, 95% sparse matrix, batch 1..64.  Batch 1 compares pure
 * latency; large batches compare achievable throughput.  The FPGA
 * streams batch columns one-by-one (linear scaling) while the GPU's
 * batch cost is nearly free until occupancy saturates.
 */

#include <iostream>

#include "baselines/gpu_model.h"
#include "bench/harness.h"
#include "common/table.h"

int
main()
{
    using namespace spatial;
    using baselines::GpuLibrary;
    using baselines::GpuModel;

    const GpuModel cusparse(GpuLibrary::CuSparse);
    const GpuModel optimized(GpuLibrary::OptimizedKernel);
    const std::size_t dim = 1024;

    const auto workload = bench::makeWorkload(dim, 0.95);
    const auto nnz = workload.csr.nnz();
    const auto fpga_point = bench::evalFpga(workload.weights);

    Table table("Figure 17: batched speedup (1024x1024, 95% sparse)",
                {"batch", "FPGA ns", "speedup vs cuSPARSE",
                 "speedup vs OptKernel"});

    for (const std::size_t batch : {1u, 2u, 4u, 16u, 32u, 64u}) {
        const double fpga_ns = fpga_point.batchLatencyNs(batch);
        table.addRow(
            {Table::cell(batch), Table::cell(fpga_ns, 5),
             Table::cell(cusparse.latencyNs(dim, dim, nnz, batch) /
                             fpga_ns, 4),
             Table::cell(optimized.latencyNs(dim, dim, nnz, batch) /
                             fpga_ns, 4)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: large lead at batch 1 shrinking with "
                 "batch; the FPGA stays marginally ahead even at 64 "
                 "because the big matrix keeps the GPU near-utilized.\n";
    return 0;
}
