/**
 * @file
 * Figure 6: cost of element-sparse matrices compared to bit-sparse
 * matrices of the same measured bit-sparsity (64x64, 8-bit).  The
 * paper's finding: "it doesn't matter if the bits are concentrated or
 * not" — the two schemes cost the same, so the architecture exploits
 * element sparsity with no concessions.
 */

#include <iostream>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/table.h"
#include "matrix/generate.h"

int
main()
{
    using namespace spatial;

    Table table("Figure 6: element-sparse (es) vs bit-sparse (bs) cost "
                "(64x64, 8-bit)",
                {"bit-sparsity %", "LUT (es)", "FF (es)", "LUTRAM (es)",
                 "LUT (bs)", "FF (bs)", "LUTRAM (bs)", "LUT ratio"});

    Rng rng(606);
    // Element sparsities produce measured bit-sparsities of 50%..100%.
    for (const double es : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.98}) {
        const auto element_sparse =
            makeElementSparseMatrix(64, 64, 8, es, rng);
        const double measured_bs = element_sparse.bitSparsity(8);
        const auto bit_sparse =
            makeBitSparseMatrix(64, 64, 8, measured_bs, rng);

        const auto p_es =
            bench::evalFpga(element_sparse, core::SignMode::Unsigned);
        const auto p_bs =
            bench::evalFpga(bit_sparse, core::SignMode::Unsigned);

        const double ratio =
            p_bs.resources.luts == 0
                ? 1.0
                : static_cast<double>(p_es.resources.luts) /
                      static_cast<double>(p_bs.resources.luts);
        table.addRow({Table::cell(measured_bs * 100.0, 4),
                      Table::cell(p_es.resources.luts),
                      Table::cell(p_es.resources.ffs),
                      Table::cell(p_es.resources.lutrams),
                      Table::cell(p_bs.resources.luts),
                      Table::cell(p_bs.resources.ffs),
                      Table::cell(p_bs.resources.lutrams),
                      Table::cell(ratio, 4)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: the (es) and (bs) series coincide "
                 "(ratio ~ 1) — bit concentration does not matter.\n";
    return 0;
}
