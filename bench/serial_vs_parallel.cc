/**
 * @file
 * Bit-serial vs bit-parallel spatial implementation (ours — quantifies
 * the paper's Section III premise): the bit-parallel direct design pays
 * roughly a word-width factor in area for a cycle-count advantage,
 * which is why bit-serial is what makes 1024-dim reservoir matrices fit
 * a single device.
 */

#include <iostream>

#include "bench/harness.h"
#include "common/table.h"
#include "core/compiler.h"
#include "fpga/device.h"
#include "fpga/freq_model.h"
#include "fpga/parallel_model.h"

int
main()
{
    using namespace spatial;

    Table table("Bit-serial vs bit-parallel direct implementation "
                "(8-bit signed)",
                {"dim", "sparsity %", "serial LUT", "parallel LUT",
                 "area x", "serial cyc", "parallel cyc", "serial fits",
                 "parallel fits"});

    struct Case
    {
        std::size_t dim;
        double sparsity;
    };
    const Case cases[] = {{64, 0.9},  {256, 0.9},  {512, 0.9},
                          {1024, 0.9}, {1024, 0.6}, {2048, 0.98}};

    for (const auto &c : cases) {
        const auto workload = bench::makeWorkload(c.dim, c.sparsity);
        const auto serial = bench::evalFpga(workload.weights);
        const auto parallel = fpga::estimateBitParallel(
            c.dim, c.dim, workload.csr.nnz(), workload.weights.onesCount(),
            8, 8);

        table.addRow(
            {Table::cell(c.dim), Table::cell(c.sparsity * 100.0, 3),
             Table::cell(serial.resources.luts),
             Table::cell(parallel.resources.luts),
             Table::cell(static_cast<double>(parallel.resources.luts) /
                             static_cast<double>(serial.resources.luts),
                         4),
             Table::cell(std::uint64_t{serial.latencyCycles}),
             Table::cell(std::uint64_t{parallel.latencyCycles}),
             std::string(serial.fits ? "yes" : "NO"),
             std::string(fpga::fitsDevice(parallel.resources) ? "yes"
                                                              : "NO")});
    }
    table.print(std::cout);
    std::cout << "\nExpected: parallel designs burn roughly a word-width "
                 "factor (~26-33x) more LUTs and stop fitting the device "
                 "at dimensions the bit-serial design handles easily.\n";
    return 0;
}
