/**
 * @file
 * Figure 19: latency of the FPGA and the SIGMA-style accelerator for
 * 98% sparse matrices, dimension 64..4096.  Small matrices fit SIGMA's
 * PE grid (nanosecond-scale); past ~1024 the nonzeros must be tiled and
 * SIGMA goes memory-bound with linear scaling.
 */

#include <iostream>

#include "baselines/sigma.h"
#include "bench/harness.h"
#include "common/table.h"
#include "matrix/generate.h"

int
main()
{
    using namespace spatial;
    baselines::SigmaSim sigma;

    Table table("Figure 19: FPGA vs SIGMA latency vs dimension "
                "(98% sparse)",
                {"dim", "nnz", "tiles", "SIGMA ns", "FPGA ns"});

    Rng rng(1919);
    for (const std::size_t dim : {64u, 128u, 256u, 512u, 1024u, 2048u,
                                  4096u}) {
        const auto workload = bench::makeWorkload(dim, 0.98);
        const auto fpga_point = bench::evalFpga(workload.weights);
        const auto input = makeSignedVector(dim, 8, rng);
        const auto result = sigma.runVector(workload.csr, input);

        table.addRow({Table::cell(dim), Table::cell(workload.csr.nnz()),
                      Table::cell(result.tiles),
                      Table::cell(result.latencyNs, 5),
                      Table::cell(fpga_point.latencyNs, 5)});
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: SIGMA ns-scale while fitting the "
                 "128x128 grid, then linear memory-bound growth once "
                 "tiled (past ~1024).\n";
    return 0;
}
