/**
 * @file
 * Figure 11: large-scale frequency results.  Achieved Fmax of each
 * Section VI design after the model's place-and-route accounting: the
 * first-stage broadcast fanout and SLR spanning set the critical path.
 * One-SLR designs land in 445-597 MHz, two-SLR in 296-400 MHz, larger
 * in 225-250 MHz.
 */

#include <iostream>

#include "bench/large_scale.h"
#include "common/table.h"

int
main()
{
    using namespace spatial;

    Table table("Figure 11: large-scale Fmax",
                {"dim", "sparsity %", "mode", "LUT", "SLRs", "max fanout",
                 "Fmax MHz"});

    for (const auto &entry : bench::runLargeScaleSweep()) {
        const auto &p = entry.point;
        table.addRow({Table::cell(entry.dim),
                      Table::cell(entry.sparsity * 100.0, 3),
                      std::string(core::signModeName(entry.mode)),
                      Table::cell(p.resources.luts), Table::cell(p.slrs),
                      Table::cell(std::uint64_t{p.maxFanout}),
                      Table::cell(p.fmaxMhz, 4)});
    }
    table.print(std::cout);
    std::cout << "\nExpected bands: 1 SLR 445-597 MHz, 2 SLRs 296-400 "
                 "MHz, >2 SLRs 225-250 MHz; bigger matrices run slower.\n";
    return 0;
}
