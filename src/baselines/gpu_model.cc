#include "baselines/gpu_model.h"

#include <algorithm>

#include "common/logging.h"

namespace spatial::baselines
{

const char *
gpuLibraryName(GpuLibrary library)
{
    switch (library) {
      case GpuLibrary::CuSparse:
        return "cuSPARSE";
      case GpuLibrary::OptimizedKernel:
        return "Optimized Kernel";
    }
    return "?";
}

GpuModelParams
GpuModelParams::cuSparse()
{
    GpuModelParams params;
    // cuSPARSE launches several kernels and walks general CSR metadata:
    // a higher floor and more per-nonzero indexing traffic at lower
    // sustained efficiency.
    params.kernelFloorNs = 10'000.0;
    params.bytesPerNnz = 20.0;
    params.bandwidthEfficiency = 0.45;
    return params;
}

GpuModelParams
GpuModelParams::optimizedKernel()
{
    GpuModelParams params;
    // Gale et al.: single fused kernel, vectorized gathers —
    // "comparatively spends less time indexing and has higher
    // performance at lower sparsity".
    params.kernelFloorNs = 2900.0;
    params.bytesPerNnz = 6.0;
    params.bandwidthEfficiency = 0.70;
    return params;
}

GpuModel::GpuModel(GpuLibrary library)
    : GpuModel(library, library == GpuLibrary::CuSparse
                            ? GpuModelParams::cuSparse()
                            : GpuModelParams::optimizedKernel())
{}

GpuModel::GpuModel(GpuLibrary library, GpuModelParams params)
    : library_(library), params_(params)
{
    SPATIAL_ASSERT(params_.peakBandwidthGBs > 0 &&
                       params_.bandwidthEfficiency > 0 &&
                       params_.occupancyRows > 0,
                   "bad GPU parameters");
}

double
GpuModel::occupancy(std::size_t rows) const
{
    return std::clamp(static_cast<double>(rows) / params_.occupancyRows,
                      params_.minOccupancy, 1.0);
}

double
GpuModel::latencyNs(std::size_t rows, std::size_t cols, std::size_t nnz,
                    std::size_t batch) const
{
    SPATIAL_ASSERT(batch >= 1, "batch ", batch);
    const double occ = occupancy(rows);
    const double achieved_gbs =
        params_.peakBandwidthGBs * params_.bandwidthEfficiency * occ;

    // The stationary matrix crosses the memory system once per
    // iteration (values + indices); batching does not re-read it.
    const double weight_bytes =
        static_cast<double>(nnz) * params_.bytesPerNnz;
    // Dense input/output vectors move once per batch column.
    const double vector_bytes = static_cast<double>(batch) *
                                static_cast<double>(rows + cols) *
                                params_.vectorBytes;
    const double memory_ns =
        (weight_bytes + vector_bytes) / achieved_gbs; // GB/s == bytes/ns

    // fp16 FMA term; never binding for the paper's shapes.
    const double flops = 2.0 * static_cast<double>(nnz) *
                         static_cast<double>(batch);
    const double compute_ns = flops / params_.computeGflops;

    return params_.kernelFloorNs + memory_ns + compute_ns;
}

} // namespace spatial::baselines
