/**
 * @file
 * Analytic latency model of sparse vector-matrix multiplication on an
 * NVIDIA V100, standing in for the paper's measured cuSPARSE and
 * Gale-et-al. optimized-kernel baselines (Section VII.A).
 *
 * The paper's GPU findings are regime findings, and the model implements
 * the regimes mechanically rather than hard-coding curves:
 *
 *  - a kernel-launch/indexing floor that keeps every GPU gemv above the
 *    microsecond barrier regardless of size ("the GPU cannot break the
 *    1us barrier");
 *  - a memory-bound work term: nonzero values plus indices must cross the
 *    memory system at an efficiency the library achieves;
 *  - an occupancy ramp: below thousands of parallel rows the device is
 *    underutilized and achieved bandwidth scales down, which is why
 *    latency is flat for small matrices and why batching is nearly free
 *    until occupancy saturates ("latency for the GPU solution scales
 *    sub-linearly with respect to batch size");
 *  - a compute term for completeness (fp16 throughput is never binding
 *    for these shapes).
 *
 * Parameter defaults are calibrated so the anchor ratios the paper
 * reports (86x..50x over the optimized kernel across the dimension sweep,
 * 77x..60x across the sparsity sweep) come out of the benches with the
 * same shape.
 */

#ifndef SPATIAL_BASELINES_GPU_MODEL_H
#define SPATIAL_BASELINES_GPU_MODEL_H

#include <cstddef>
#include <string>

namespace spatial::baselines
{

/** Which measured library the parameters describe. */
enum class GpuLibrary
{
    CuSparse,        //!< NVIDIA cuSPARSE csrmv/csrmm
    OptimizedKernel, //!< Gale, Zaharia, Young, Elsen sparse kernels
};

const char *gpuLibraryName(GpuLibrary library);

/** Tunable device/library parameters. */
struct GpuModelParams
{
    /** V100 HBM2 peak bandwidth. */
    double peakBandwidthGBs = 900.0;

    /** Fixed cost of launches, descriptor reads, and index setup (ns). */
    double kernelFloorNs = 2900.0;

    /** Bytes of traffic per nonzero (value + index + gather waste). */
    double bytesPerNnz = 6.0;

    /** Fraction of peak bandwidth the library sustains when occupied. */
    double bandwidthEfficiency = 0.70;

    /** Parallel rows needed to fully occupy the device (gemv). */
    double occupancyRows = 2048.0;

    /** Floor on the occupancy factor (tiny kernels still make progress). */
    double minOccupancy = 0.02;

    /** fp16 FMA throughput for the (non-binding) compute term. */
    double computeGflops = 28'000.0;

    /** Bytes per input/output vector element (fp16 + alignment). */
    double vectorBytes = 4.0;

    /** Library defaults per the calibration notes in the header. */
    static GpuModelParams cuSparse();
    static GpuModelParams optimizedKernel();
};

/** Latency model for one library on one device. */
class GpuModel
{
  public:
    explicit GpuModel(GpuLibrary library);
    GpuModel(GpuLibrary library, GpuModelParams params);

    GpuLibrary library() const { return library_; }
    const GpuModelParams &params() const { return params_; }

    /**
     * Mean per-iteration latency in nanoseconds of multiplying a dense
     * batch against a stationary sparse matrix (memory -> arithmetic ->
     * memory, caches warm, following the paper's measurement protocol).
     *
     * @param rows, cols matrix shape.
     * @param nnz nonzero element count.
     * @param batch columns of the dense multiplicand ("batch size").
     */
    double latencyNs(std::size_t rows, std::size_t cols, std::size_t nnz,
                     std::size_t batch = 1) const;

    /**
     * Occupancy factor in (0, 1] as a function of matrix rows (a gemv
     * parallelizes over rows; batch columns add work per thread, not
     * occupancy, so latency is monotone in batch).
     */
    double occupancy(std::size_t rows) const;

  private:
    GpuLibrary library_;
    GpuModelParams params_;
};

} // namespace spatial::baselines

#endif // SPATIAL_BASELINES_GPU_MODEL_H
