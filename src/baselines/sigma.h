/**
 * @file
 * Cycle-level simulator of a SIGMA-style sparse GEMM accelerator
 * (Qin et al., HPCA 2020), the paper's DNN-accelerator comparator
 * (Section VII.B).
 *
 * Modelled microarchitecture, at the fidelity the comparison needs:
 *
 *  - a 128x128 grid of processing elements holding nonzero weights
 *    stationary (only useful weight/activation pairs are mapped, SIGMA's
 *    headline feature);
 *  - a Benes-style pipelined distribution network for input broadcast
 *    and a FAN reduction tree, giving logarithmic-depth pipelines;
 *  - when the nonzeros exceed the grid, the computation is tiled: each
 *    tile's weights are reloaded from SRAM through a fixed-width port,
 *    partial sums are accumulated in banked accumulation SRAM, and the
 *    reduction pipeline drains between tiles — this is the transition
 *    into the memory-bound region the paper observes past 1024x1024;
 *  - batching streams extra vectors through each resident tile, so
 *    weight loads amortize but per-vector streaming and accumulation do
 *    not.
 *
 * The clock is 1 GHz, the paper's process/precision-normalized assumption
 * ("we assume that SIGMA can be clocked at 1GHz").  The simulator also
 * computes the actual integer outputs so tests can check them against
 * the reference gemv.
 */

#ifndef SPATIAL_BASELINES_SIGMA_H
#define SPATIAL_BASELINES_SIGMA_H

#include <cstddef>
#include <cstdint>

#include "matrix/csr.h"
#include "matrix/dense.h"

namespace spatial::baselines
{

/** Microarchitectural parameters of the modelled accelerator. */
struct SigmaConfig
{
    /** PE grid shape (the paper's instance is 128x128). */
    std::size_t gridRows = 128;
    std::size_t gridCols = 128;

    /** Clock in GHz (1 GHz per the paper's normalization). */
    double clockGhz = 1.0;

    /** Weights loaded from SRAM into the grid per cycle. */
    std::size_t weightLoadPerCycle = 128;

    /** Input/output elements streamed per cycle. */
    std::size_t ioPortsPerCycle = 64;

    /** Accumulation-SRAM lanes for per-tile partial sums. */
    std::size_t accumLanesPerCycle = 128;

    /** Distribution (Benes) network pipeline depth: 2*log2(128). */
    std::uint32_t benesDepth = 14;

    /** Multiplier pipeline stages. */
    std::uint32_t multiplyDepth = 1;

    /** Fixed SRAM round-trip and control overhead per invocation. */
    std::uint32_t fixedOverheadCycles = 150;

    /** Total PEs. */
    std::size_t peCapacity() const { return gridRows * gridCols; }
};

/** Outcome of one simulated (batched) multiplication. */
struct SigmaResult
{
    IntMatrix outputs; //!< batch x cols integer results

    std::uint64_t cycles = 0;
    double latencyNs = 0.0;

    std::size_t tiles = 0;         //!< grid refills needed
    std::size_t mappedNnz = 0;     //!< nonzeros mapped to PEs
    double peUtilization = 0.0;    //!< mean mapped fraction per tile
    std::uint64_t sramWeightReads = 0;
    bool tiled = false;            //!< entered the memory-bound regime
};

/** Cycle-level SIGMA simulator. */
class SigmaSim
{
  public:
    explicit SigmaSim(SigmaConfig config = {});

    const SigmaConfig &config() const { return config_; }

    /**
     * Multiply a dense batch (batch x rows) against the stationary
     * sparse matrix, counting cycles phase-by-phase.
     */
    SigmaResult run(const CsrMatrix<std::int64_t> &matrix,
                    const IntMatrix &batch) const;

    /** Single-vector convenience wrapper (batch of one). */
    SigmaResult runVector(const CsrMatrix<std::int64_t> &matrix,
                          const std::vector<std::int64_t> &a) const;

  private:
    SigmaConfig config_;
};

} // namespace spatial::baselines

#endif // SPATIAL_BASELINES_SIGMA_H
