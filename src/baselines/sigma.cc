#include "baselines/sigma.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/logging.h"
#include "core/latency.h"

namespace spatial::baselines
{

namespace
{

std::size_t
ceilDiv(std::size_t a, std::size_t b)
{
    return b == 0 ? 0 : (a + b - 1) / b;
}

/** One tile: a contiguous range of CSR nonzeros resident in the grid. */
struct Tile
{
    std::size_t first; //!< index into the CSR value array
    std::size_t last;  //!< one past the end
    std::size_t firstRow;
    std::size_t lastRow;      //!< inclusive
    std::size_t touchedCols;  //!< distinct output columns in the tile
    std::uint32_t reduceDepth;
};

} // namespace

SigmaSim::SigmaSim(SigmaConfig config) : config_(config)
{
    SPATIAL_ASSERT(config_.peCapacity() > 0 && config_.clockGhz > 0 &&
                       config_.weightLoadPerCycle > 0 &&
                       config_.ioPortsPerCycle > 0 &&
                       config_.accumLanesPerCycle > 0,
                   "bad SIGMA configuration");
}

SigmaResult
SigmaSim::runVector(const CsrMatrix<std::int64_t> &matrix,
                    const std::vector<std::int64_t> &a) const
{
    IntMatrix batch(1, a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        batch.at(0, i) = a[i];
    return run(matrix, batch);
}

SigmaResult
SigmaSim::run(const CsrMatrix<std::int64_t> &matrix,
              const IntMatrix &batch) const
{
    SPATIAL_ASSERT(batch.cols() == matrix.rows(), "batch width ",
                   batch.cols(), " != matrix rows ", matrix.rows());
    const std::size_t rows = matrix.rows();
    const std::size_t cols = matrix.cols();
    const std::size_t nnz = matrix.nnz();
    const std::size_t nvec = batch.rows();
    const std::size_t capacity = config_.peCapacity();

    // --- Partition the nonzeros into grid-sized tiles (row-major). ----
    std::vector<Tile> tiles;
    {
        std::size_t k = 0;
        std::size_t row = 0;
        while (k < nnz) {
            Tile tile;
            tile.first = k;
            tile.last = std::min(k + capacity, nnz);
            // Advance the row cursor to the rows this range covers.
            while (row + 1 < rows && matrix.rowPtr()[row + 1] <= tile.first)
                ++row;
            tile.firstRow = row;
            std::size_t end_row = row;
            while (end_row + 1 < rows &&
                   matrix.rowPtr()[end_row + 1] < tile.last)
                ++end_row;
            tile.lastRow = end_row;

            // Column occupancy sets the FAN reduction population: the
            // mean nonzeros per touched column bounds the tree depth.
            std::unordered_set<std::size_t> touched;
            for (std::size_t i = tile.first; i < tile.last; ++i)
                touched.insert(matrix.colIdx()[i]);
            const std::size_t col_population =
                touched.empty() ? 1
                                : ceilDiv(tile.last - tile.first,
                                          touched.size());
            tile.touchedCols = touched.size();
            tile.reduceDepth = static_cast<std::uint32_t>(
                core::ceilLog2(std::max<std::size_t>(2, col_population)));
            tiles.push_back(tile);
            k = tile.last;
        }
    }
    const bool tiled = tiles.size() > 1;

    // --- Cycle accounting, phase by phase. ---------------------------
    const std::uint32_t pipe_fill = config_.benesDepth +
                                    config_.multiplyDepth;
    std::uint64_t cycles = config_.fixedOverheadCycles;
    std::uint64_t weight_reads = 0;

    for (const auto &tile : tiles) {
        const std::size_t tile_nnz = tile.last - tile.first;
        // Weight (re)load through the SRAM port; for a single resident
        // tile the weights are stationary and preloading is free, which
        // is how the paper runs SIGMA ("weight matrix stationary").
        if (tiled) {
            cycles += ceilDiv(tile_nnz, config_.weightLoadPerCycle);
            weight_reads += tile_nnz;
        }

        const std::size_t tile_rows = tile.lastRow - tile.firstRow + 1;
        const std::uint64_t input_stream =
            ceilDiv(tile_rows, config_.ioPortsPerCycle);
        const std::uint64_t accum =
            tiled ? ceilDiv(tile.touchedCols, config_.accumLanesPerCycle)
                  : 0;

        // Each vector streams through the resident tile; the reduction
        // pipeline drains before the grid switches tiles.
        const std::uint64_t per_vector =
            input_stream + pipe_fill + tile.reduceDepth + accum;
        cycles += per_vector * nvec;
    }

    // Final output writeback, once per vector.
    cycles += nvec * ceilDiv(cols, config_.ioPortsPerCycle);

    // --- Functional result (checked against gemvRef in tests). -------
    IntMatrix outputs(nvec, cols);
    for (std::size_t b = 0; b < nvec; ++b) {
        for (std::size_t r = 0; r < rows; ++r) {
            const std::int64_t ar = batch.at(b, r);
            if (ar == 0)
                continue;
            for (std::size_t k = matrix.rowPtr()[r];
                 k < matrix.rowPtr()[r + 1]; ++k)
                outputs.at(b, matrix.colIdx()[k]) +=
                    ar * matrix.values()[k];
        }
    }

    SigmaResult result;
    result.outputs = std::move(outputs);
    result.cycles = cycles;
    result.latencyNs = static_cast<double>(cycles) / config_.clockGhz;
    result.tiles = tiles.size();
    result.mappedNnz = nnz;
    result.peUtilization =
        tiles.empty() ? 0.0
                      : static_cast<double>(nnz) /
                            (static_cast<double>(tiles.size()) *
                             static_cast<double>(capacity));
    result.sramWeightReads = weight_reads;
    result.tiled = tiled;
    return result;
}

} // namespace spatial::baselines
