/**
 * @file
 * Cache-line-aligned allocation for hot simulation state.
 *
 * The tape engine's sweeps read and write W consecutive 64-bit words
 * per node slot (up to 64 bytes at W = 8).  A default std::vector
 * allocation is only 16-byte aligned on glibc, so at the wider lane
 * counts every vector-register access straddles a cache-line boundary
 * — a split load/store costs two L1 accesses instead of one, and the
 * sweeps are exactly the loops where that doubling shows up on the
 * profile.  Allocating the state arrays on 64-byte boundaries makes
 * every slot access naturally aligned for all supported lane widths
 * (the slot stride 8*W divides 64 for W in {1, 2, 4, 8}).
 */

#ifndef SPATIAL_COMMON_ALIGNED_H
#define SPATIAL_COMMON_ALIGNED_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace spatial
{

/**
 * Minimal C++17 aligned-new allocator: std::vector<T, AlignedAllocator
 * <T>> behaves exactly like std::vector<T> but every buffer starts on
 * an `Align`-byte boundary.
 */
template <typename T, std::size_t Align = 64>
struct AlignedAllocator
{
    static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                  "alignment must be a power of two covering T");

    using value_type = T;

    AlignedAllocator() noexcept = default;

    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &) noexcept
    {
    }

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t{Align}));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t{Align});
    }

    template <typename U>
    bool
    operator==(const AlignedAllocator<U, Align> &) const noexcept
    {
        return true;
    }

    template <typename U>
    bool
    operator!=(const AlignedAllocator<U, Align> &) const noexcept
    {
        return false;
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };
};

/** A 64-bit word vector whose buffer starts on a cache line. */
using AlignedWordVector =
    std::vector<std::uint64_t, AlignedAllocator<std::uint64_t, 64>>;

} // namespace spatial

#endif // SPATIAL_COMMON_ALIGNED_H
