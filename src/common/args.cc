#include "common/args.h"

#include <cstdlib>

#include "common/logging.h"

namespace spatial
{

Args::Args(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            SPATIAL_FATAL("unexpected positional argument '", arg, "'");
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq == std::string::npos) {
            values_[arg] = "true";
        } else {
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        }
    }
}

bool
Args::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

std::string
Args::getString(const std::string &name, const std::string &def) const
{
    const auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

std::int64_t
Args::getInt(const std::string &name, std::int64_t def) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == nullptr || *end != '\0')
        SPATIAL_FATAL("flag --", name, " expects an integer, got '",
                      it->second, "'");
    return v;
}

double
Args::getReal(const std::string &name, double def) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == nullptr || *end != '\0')
        SPATIAL_FATAL("flag --", name, " expects a real, got '",
                      it->second, "'");
    return v;
}

bool
Args::getBool(const std::string &name, bool def) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    if (v == "true" || v == "1")
        return true;
    if (v == "false" || v == "0")
        return false;
    SPATIAL_FATAL("flag --", name, " expects a boolean, got '", v, "'");
}

} // namespace spatial
