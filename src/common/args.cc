#include "common/args.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace spatial
{

Args::Args(int argc, const char *const *argv) : Args(argc, argv, false)
{}

Args::Args(int argc, const char *const *argv, bool allow_positionals)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            if (!allow_positionals)
                SPATIAL_FATAL("unexpected positional argument '", arg,
                              "'");
            positionals_.push_back(std::move(arg));
            continue;
        }
        arg = arg.substr(2);
        const auto eq = arg.find('=');
        if (eq == std::string::npos) {
            values_[arg] = "true";
        } else {
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        }
    }
}

bool
Args::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

std::string
Args::getString(const std::string &name, const std::string &def) const
{
    const auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

std::int64_t
Args::getInt(const std::string &name, std::int64_t def) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == nullptr || *end != '\0')
        SPATIAL_FATAL("flag --", name, " expects an integer, got '",
                      it->second, "'");
    return v;
}

double
Args::getReal(const std::string &name, double def) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == nullptr || *end != '\0')
        SPATIAL_FATAL("flag --", name, " expects a real, got '",
                      it->second, "'");
    return v;
}

bool
Args::getBool(const std::string &name, bool def) const
{
    const auto it = values_.find(name);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    if (v == "true" || v == "1")
        return true;
    if (v == "false" || v == "0")
        return false;
    SPATIAL_FATAL("flag --", name, " expects a boolean, got '", v, "'");
}

namespace
{

double
parseRangeNumber(const std::string &token, const std::string &context)
{
    char *end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || token.empty())
        SPATIAL_FATAL("range '", context, "' has non-numeric part '",
                      token, "'");
    return v;
}

/** Render a range element with the shortest text that round-trips. */
std::string
rangeText(double v)
{
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        return std::to_string(static_cast<long long>(v));
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    return buf;
}

} // namespace

std::vector<std::string>
Args::splitList(const std::string &value)
{
    std::vector<std::string> tokens;
    if (value.empty())
        return tokens;
    std::size_t start = 0;
    for (;;) {
        const auto comma = value.find(',', start);
        const auto token =
            value.substr(start, comma == std::string::npos
                                    ? std::string::npos
                                    : comma - start);
        // An empty entry is always a typo ("64,,256", "64,", ",64");
        // swallowing it silently would run a sweep over fewer points
        // than the user asked for.
        if (token.empty())
            SPATIAL_FATAL("list '", value,
                          "' has an empty entry (stray comma?)");
        tokens.push_back(token);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }

    std::vector<std::string> out;
    for (const auto &token : tokens) {
        const auto first = token.find(':');
        if (first == std::string::npos) {
            out.push_back(token);
            continue;
        }
        const auto second = token.find(':', first + 1);
        if (second == std::string::npos)
            SPATIAL_FATAL("range '", token,
                          "' must be lo:hi:step");
        const double lo =
            parseRangeNumber(token.substr(0, first), token);
        const double hi = parseRangeNumber(
            token.substr(first + 1, second - first - 1), token);
        const double step =
            parseRangeNumber(token.substr(second + 1), token);
        if (step <= 0.0 || hi < lo)
            SPATIAL_FATAL("range '", token,
                          "' must have lo <= hi and step > 0");
        // Inclusive sweep with a half-step tolerance so "0.8:0.95:0.05"
        // includes 0.95 despite accumulated floating-point error.
        for (double v = lo; v <= hi + step * 0.5; v += step)
            out.push_back(rangeText(std::min(v, hi)));
    }
    return out;
}

} // namespace spatial
