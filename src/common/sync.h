/**
 * @file
 * Annotated synchronization primitives for the threaded subsystems.
 *
 * libstdc++'s std::mutex / std::lock_guard / std::condition_variable
 * carry no clang thread-safety attributes, so code locking through
 * them cannot be checked by `-Wthread-safety` — every GUARDED_BY
 * member access would be a false positive.  These thin wrappers add
 * the attributes (abseil-style) while delegating every operation to
 * the standard types, so behavior is identical and the annotations in
 * serve/store become machine-checkable in the clang CI job.
 *
 * - Mutex: a std::mutex marked SPATIAL_CAPABILITY.
 * - MutexLock: scoped lock (std::unique_lock semantics) with
 *   lock()/unlock() members for the unlock-around-work pattern the
 *   server worker loop uses.
 * - CondVar: condition variable waiting directly on a Mutex.  No
 *   predicate overloads on purpose: clang analyzes lambda bodies as
 *   separate functions, so `cv.wait(lk, [&]{ return guarded_; })`
 *   would warn — call sites spell the standard loop
 *   `while (!pred) cv.wait(mu);` instead, which is what the predicate
 *   overload expands to anyway.
 */

#ifndef SPATIAL_COMMON_SYNC_H
#define SPATIAL_COMMON_SYNC_H

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace spatial
{

/** A std::mutex the clang thread-safety analysis can see through. */
class SPATIAL_CAPABILITY("mutex") Mutex
{
  public:
    /** An unlocked mutex. */
    Mutex() = default;
    /** Non-copyable: a capability has identity. */
    Mutex(const Mutex &) = delete;
    /** Non-assignable (same reason). */
    Mutex &operator=(const Mutex &) = delete;

    /** Blocking acquire. */
    void lock() SPATIAL_ACQUIRE() { m_.lock(); }

    /** Release; caller must hold the mutex. */
    void unlock() SPATIAL_RELEASE() { m_.unlock(); }

    /** Non-blocking acquire; true when the lock was taken. */
    bool try_lock() SPATIAL_TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex m_; //!< the real lock; CondVar waits on it directly
};

/**
 * Scoped lock over Mutex (std::unique_lock semantics): acquires in
 * the constructor, releases in the destructor, and additionally
 * exposes lock()/unlock() so a worker can drop the lock around a
 * long-running call and retake it after — the pattern
 * Server::workerLoop relies on.  Must be locked at destruction or
 * never relocked; like std::unique_lock, unlock() then destruction
 * is fine.
 */
class SPATIAL_SCOPED_CAPABILITY MutexLock
{
  public:
    /** Acquire `mu` for the lifetime of this object. */
    explicit MutexLock(Mutex &mu) SPATIAL_ACQUIRE(mu) : mu_(mu), held_(true)
    {
        mu_.lock();
    }

    /** Non-copyable: scoped ownership of the lock. */
    MutexLock(const MutexLock &) = delete;
    /** Non-assignable (same reason). */
    MutexLock &operator=(const MutexLock &) = delete;

    /** Release if still held. */
    ~MutexLock() SPATIAL_RELEASE()
    {
        if (held_)
            mu_.unlock();
    }

    /** Drop the lock mid-scope (must currently hold it). */
    void unlock() SPATIAL_RELEASE()
    {
        mu_.unlock();
        held_ = false;
    }

    /** Retake the lock after an unlock(). */
    void lock() SPATIAL_ACQUIRE()
    {
        mu_.lock();
        held_ = true;
    }

  private:
    Mutex &mu_;
    bool held_; //!< tracked so the dtor never double-unlocks
};

/**
 * Condition variable over Mutex.  Built on
 * std::condition_variable_any, which waits on any BasicLockable —
 * here the Mutex itself — so wait sites pass the Mutex, not a lock
 * object, and the analysis sees the capability is held across the
 * wait.  Timed waits mirror std::condition_variable's wait_for /
 * wait_until and return std::cv_status.
 */
class CondVar
{
  public:
    /** A condition variable with no waiters. */
    CondVar() = default;
    /** Non-copyable: waiters reference this object. */
    CondVar(const CondVar &) = delete;
    /** Non-assignable (same reason). */
    CondVar &operator=(const CondVar &) = delete;

    /** Block until notified; `mu` must be held and is held on return. */
    void wait(Mutex &mu) SPATIAL_REQUIRES(mu) { cv_.wait(mu); }

    /** Block until notified or `deadline`; `mu` must be held. */
    template <class Clock, class Duration>
    std::cv_status
    wait_until(Mutex &mu,
               const std::chrono::time_point<Clock, Duration> &deadline)
        SPATIAL_REQUIRES(mu)
    {
        return cv_.wait_until(mu, deadline);
    }

    /** Block until notified or `rel` elapses; `mu` must be held. */
    template <class Rep, class Period>
    std::cv_status wait_for(Mutex &mu,
                            const std::chrono::duration<Rep, Period> &rel)
        SPATIAL_REQUIRES(mu)
    {
        return cv_.wait_for(mu, rel);
    }

    /** Wake one waiter. */
    void notify_one() { cv_.notify_one(); }

    /** Wake every waiter. */
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable_any cv_;
};

} // namespace spatial

#endif // SPATIAL_COMMON_SYNC_H
