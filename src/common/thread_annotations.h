/**
 * @file
 * Clang thread-safety-analysis attribute macros.
 *
 * These wrap the `-Wthread-safety` annotations so the locking
 * discipline documented in the serve/store headers ("guarded by
 * mutex_") is machine-checked instead of comment-checked.  Under
 * clang the macros expand to the analysis attributes; under GCC and
 * MSVC they vanish, so annotated code compiles everywhere while the
 * dedicated clang CI job promotes violations to errors.
 *
 * Conventions used across the repo:
 *  - Members carry SPATIAL_GUARDED_BY(mutex_) matching their doc
 *    comment; pointer members whose *pointee* is guarded use
 *    SPATIAL_PT_GUARDED_BY.
 *  - Private `*Locked()` helpers that expect the caller to hold the
 *    lock carry SPATIAL_REQUIRES(mutex_).
 *  - Public entry points that must NOT be called with the lock held
 *    (they take it themselves) carry SPATIAL_EXCLUDES(mutex_).
 *
 * The raw std::mutex / std::lock_guard types carry no attributes on
 * libstdc++, so annotated code must lock through the spatial::Mutex /
 * spatial::MutexLock wrappers in common/sync.h — see that header.
 */

#ifndef SPATIAL_COMMON_THREAD_ANNOTATIONS_H
#define SPATIAL_COMMON_THREAD_ANNOTATIONS_H

#if defined(__clang__) && (!defined(SWIG))
#define SPATIAL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SPATIAL_THREAD_ANNOTATION(x) // no-op outside clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define SPATIAL_CAPABILITY(x) SPATIAL_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define SPATIAL_SCOPED_CAPABILITY SPATIAL_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding the given mutex. */
#define SPATIAL_GUARDED_BY(x) SPATIAL_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose pointed-to data is guarded by the mutex. */
#define SPATIAL_PT_GUARDED_BY(x) SPATIAL_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function requires the caller to already hold the mutex(es). */
#define SPATIAL_REQUIRES(...)                                                \
    SPATIAL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function must be called WITHOUT the mutex(es) held (it locks them). */
#define SPATIAL_EXCLUDES(...)                                                \
    SPATIAL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function acquires the mutex(es) and holds them on return. */
#define SPATIAL_ACQUIRE(...)                                                 \
    SPATIAL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the mutex(es) it was holding. */
#define SPATIAL_RELEASE(...)                                                 \
    SPATIAL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function tries to acquire; returns `ret` on success. */
#define SPATIAL_TRY_ACQUIRE(ret, ...)                                        \
    SPATIAL_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/** Returns a reference to the capability guarding this object. */
#define SPATIAL_RETURN_CAPABILITY(x)                                         \
    SPATIAL_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: body is exempt from analysis (justify at the site). */
#define SPATIAL_NO_THREAD_SAFETY_ANALYSIS                                    \
    SPATIAL_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // SPATIAL_COMMON_THREAD_ANNOTATIONS_H
