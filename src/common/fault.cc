#include "common/fault.h"

#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"

namespace spatial::fault
{

namespace
{

/** Spec names, indexed by Site. */
constexpr std::array<const char *, kSiteCount> kSiteNames = {
    "serve.worker:stall",  "store.compile:fail", "store.compile:delay",
    "cold.write:fail",     "cold.write:short",   "cold.read:fail",
    "cold.read:corrupt",   "net.accept:delay",   "net.conn:drop",
    "net.write:partial",   "client.read:stall",
};

/**
 * Per-site default magnitudes (used when a rule's param is 0):
 * milliseconds for the stall/delay sites, bytes for the partial-write
 * cap, 1 for the pure pass/fail sites so a firing site never reports
 * a zero (which injectFaultParam reserves for "did not fire").
 */
constexpr std::array<std::uint64_t, kSiteCount> kDefaultParam = {
    10,  // serve.worker:stall (ms)
    1,   // store.compile:fail
    10,  // store.compile:delay (ms)
    1,   // cold.write:fail
    1,   // cold.write:short
    1,   // cold.read:fail
    1,   // cold.read:corrupt
    5,   // net.accept:delay (ms)
    1,   // net.conn:drop
    128, // net.write:partial (bytes)
    5,   // client.read:stall (ms)
};

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    for (;;) {
        const std::size_t end = text.find(sep, start);
        if (end == std::string::npos) {
            parts.push_back(text.substr(start));
            return parts;
        }
        parts.push_back(text.substr(start, end - start));
        start = end + 1;
    }
}

bool
parseReal(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    *out = std::strtod(text.c_str(), &end);
    return end != nullptr && *end == '\0';
}

bool
parseU64(const std::string &text, std::uint64_t *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    *out = std::strtoull(text.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
}

bool
lookupSite(const std::string &name, Site *out)
{
    for (std::size_t i = 0; i < kSiteCount; ++i)
        if (name == kSiteNames[i]) {
            *out = static_cast<Site>(i);
            return true;
        }
    return false;
}

} // namespace

const char *
siteName(Site site)
{
    return kSiteNames[static_cast<std::size_t>(site)];
}

FaultPlan::FaultPlan()
{
    const char *spec = std::getenv("SPATIAL_FAULTS");
    if (spec == nullptr || spec[0] == '\0')
        return;
    std::string error;
    if (!configureFromSpec(spec, &error))
        SPATIAL_FATAL("fault: bad SPATIAL_FAULTS: ", error);
    SPATIAL_INFORM("fault: plan installed from SPATIAL_FAULTS (", spec,
                   ")");
}

FaultPlan &
FaultPlan::instance()
{
    static FaultPlan plan;
    return plan;
}

void
FaultPlan::configure(Site site, const Rule &rule)
{
    MutexLock lock(mutex_);
    SiteConfig &config = sites_[static_cast<std::size_t>(site)];
    config.enabled = true;
    config.rule = rule;
    config.rng = Rng(rule.seed);
    active_.store(true, std::memory_order_relaxed);
}

bool
FaultPlan::configureFromSpec(const std::string &spec, std::string *error)
{
    const auto fail = [error](const std::string &why) {
        if (error != nullptr)
            *error = why;
        return false;
    };
    for (const std::string &entry : splitOn(spec, ',')) {
        if (entry.empty())
            continue;
        // site names contain one ':' themselves ("cold.read:fail"),
        // so an entry splits into site, kind, rate, seed[, param].
        const std::vector<std::string> fields = splitOn(entry, ':');
        if (fields.size() != 4 && fields.size() != 5)
            return fail("entry '" + entry +
                        "' is not site:kind:rate:seed[:param]");
        Site site;
        const std::string name = fields[0] + ":" + fields[1];
        if (!lookupSite(name, &site))
            return fail("unknown site '" + name + "'");
        Rule rule;
        if (!parseReal(fields[2], &rule.rate) || rule.rate < 0.0 ||
            rule.rate > 1.0)
            return fail("bad rate '" + fields[2] + "' in '" + entry +
                        "' (want a real in [0,1])");
        if (!parseU64(fields[3], &rule.seed))
            return fail("bad seed '" + fields[3] + "' in '" + entry +
                        "'");
        if (fields.size() == 5 && !parseU64(fields[4], &rule.param))
            return fail("bad param '" + fields[4] + "' in '" + entry +
                        "'");
        configure(site, rule);
    }
    return true;
}

void
FaultPlan::clear()
{
    MutexLock lock(mutex_);
    for (SiteConfig &config : sites_)
        config = SiteConfig{};
    for (std::atomic<std::uint64_t> &count : counts_)
        count.store(0, std::memory_order_relaxed);
    active_.store(false, std::memory_order_relaxed);
}

bool
FaultPlan::shouldInject(Site site)
{
    return shouldInjectParam(site) != 0;
}

std::uint64_t
FaultPlan::shouldInjectParam(Site site)
{
    const std::size_t index = static_cast<std::size_t>(site);
    MutexLock lock(mutex_);
    SiteConfig &config = sites_[index];
    if (!config.enabled || !config.rng.bernoulli(config.rule.rate))
        return 0;
    counts_[index].fetch_add(1, std::memory_order_relaxed);
    return config.rule.param != 0 ? config.rule.param
                                  : kDefaultParam[index];
}

std::uint64_t
FaultPlan::injected(Site site) const
{
    return counts_[static_cast<std::size_t>(site)].load(
        std::memory_order_relaxed);
}

std::uint64_t
FaultPlan::injectedTotal() const
{
    std::uint64_t total = 0;
    for (const std::atomic<std::uint64_t> &count : counts_)
        total += count.load(std::memory_order_relaxed);
    return total;
}

} // namespace spatial::fault
