#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace spatial
{

namespace
{

/** SplitMix64 step; used only for seeding. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
    // xoshiro must not start from the all-zero state.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
        state_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    SPATIAL_ASSERT(lo <= hi, "uniformInt range [", lo, ", ", hi, "]");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) {
        // Full 64-bit range requested.
        return static_cast<std::int64_t>(next());
    }
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
}

double
Rng::uniformReal()
{
    // 53 high-quality bits into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniformReal();
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformReal() < p;
}

double
Rng::gaussian()
{
    if (hasSpareGaussian_) {
        hasSpareGaussian_ = false;
        return spareGaussian_;
    }
    double u1 = uniformReal();
    double u2 = uniformReal();
    // Avoid log(0).
    while (u1 <= 1e-300)
        u1 = uniformReal();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spareGaussian_ = mag * std::sin(2.0 * M_PI * u2);
    hasSpareGaussian_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

} // namespace spatial
