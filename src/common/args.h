/**
 * @file
 * Minimal command-line flag parsing for bench and example binaries.
 *
 * Flags take the form --name=value or --name (boolean true).  Unknown
 * positional arguments are rejected so typos fail loudly.
 */

#ifndef SPATIAL_COMMON_ARGS_H
#define SPATIAL_COMMON_ARGS_H

#include <cstdint>
#include <map>
#include <string>

namespace spatial
{

/** Parsed command-line flags with typed accessors and defaults. */
class Args
{
  public:
    /** Parse argv; calls SPATIAL_FATAL on malformed arguments. */
    Args(int argc, const char *const *argv);

    /** True if the flag was present on the command line. */
    bool has(const std::string &name) const;

    /** String flag with default. */
    std::string getString(const std::string &name,
                          const std::string &def) const;

    /** Integer flag with default; fatal on non-numeric value. */
    std::int64_t getInt(const std::string &name, std::int64_t def) const;

    /** Real flag with default; fatal on non-numeric value. */
    double getReal(const std::string &name, double def) const;

    /** Boolean flag: present without value, or =true/=false/=1/=0. */
    bool getBool(const std::string &name, bool def) const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace spatial

#endif // SPATIAL_COMMON_ARGS_H
