/**
 * @file
 * Minimal command-line flag parsing for bench and example binaries.
 *
 * Flags take the form --name=value or --name (boolean true).  By
 * default unknown positional arguments are rejected so typos fail
 * loudly; subcommand-style CLIs (spatial-bench) opt into collecting
 * positionals instead.
 */

#ifndef SPATIAL_COMMON_ARGS_H
#define SPATIAL_COMMON_ARGS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

/**
 * @namespace spatial
 * Root namespace of the spatial bit-serial reproduction.
 */
namespace spatial
{

/** Parsed command-line flags with typed accessors and defaults. */
class Args
{
  public:
    /** Parse argv; calls SPATIAL_FATAL on malformed arguments. */
    Args(int argc, const char *const *argv);

    /**
     * As above, but when `allow_positionals` is set, non-flag
     * arguments are collected (in order) instead of rejected —
     * subcommand CLIs read them via positionals().
     */
    Args(int argc, const char *const *argv, bool allow_positionals);

    /** True if the flag was present on the command line. */
    bool has(const std::string &name) const;

    /** String flag with default. */
    std::string getString(const std::string &name,
                          const std::string &def) const;

    /** Integer flag with default; fatal on non-numeric value. */
    std::int64_t getInt(const std::string &name, std::int64_t def) const;

    /** Real flag with default; fatal on non-numeric value. */
    double getReal(const std::string &name, double def) const;

    /** Boolean flag: present without value, or =true/=false/=1/=0. */
    bool getBool(const std::string &name, bool def) const;

    /** All flags in name order (override-style CLIs iterate this). */
    const std::map<std::string, std::string> &flags() const
    {
        return values_;
    }

    /** Positional arguments, in order (empty unless opted in). */
    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    /**
     * Split a comma/range flag value into tokens: "64,256" yields
     * {"64", "256"} and "0.8:0.95:0.05" expands the inclusive range
     * into {"0.8", "0.85", ...}.  Range endpoints and step must be
     * numeric, and empty entries ("64,,256", a trailing comma) are
     * fatal; an empty value yields an empty list.
     */
    static std::vector<std::string> splitList(const std::string &value);

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positionals_;
};

} // namespace spatial

#endif // SPATIAL_COMMON_ARGS_H
