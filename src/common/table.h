/**
 * @file
 * Aligned-table and CSV reporting for the bench harness.
 *
 * Every bench binary prints the series a paper figure plots as one table:
 * a header row naming each column, then one row per x-axis point.  The
 * same Table can also be emitted as CSV for downstream plotting.
 */

#ifndef SPATIAL_COMMON_TABLE_H
#define SPATIAL_COMMON_TABLE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace spatial
{

/** One printable report table (figure series or paper table). */
class Table
{
  public:
    /** Create a table with the given title and column headers. */
    Table(std::string title, std::vector<std::string> columns);

    /** Append a pre-formatted row; must match the column count. */
    void addRow(std::vector<std::string> cells);

    /**
     * Format one cell value.  Doubles print with a sensible number of
     * significant digits; integers print exactly.
     */
    static std::string cell(double v, int precision = 4);
    static std::string cell(std::uint64_t v);
    static std::string cell(std::int64_t v);
    static std::string cell(int v);
    static std::string cell(const std::string &v) { return v; }

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Pretty-print with aligned columns. */
    void print(std::ostream &os) const;

    /** Emit as CSV (header + rows). */
    void printCsv(std::ostream &os) const;

    const std::string &title() const { return title_; }

  private:
    std::string title_;
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace spatial

#endif // SPATIAL_COMMON_TABLE_H
