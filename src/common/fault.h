/**
 * @file
 * Deterministic, seeded fault injection for the serving stack.
 *
 * A process-wide FaultPlan holds one rule per named injection site:
 * a firing probability, a seed, and an optional magnitude parameter
 * (a stall duration in milliseconds, a write-size cap in bytes —
 * whatever the site documents).  Sites are threaded through the
 * stack — the server worker pool, DesignStore admission, the cold
 * tier's file I/O, and both ends of the wire — and each consults the
 * plan at the moment the fault would occur:
 *
 * | site                  | effect when it fires                      |
 * |-----------------------|-------------------------------------------|
 * | `serve.worker:stall`  | worker sleeps `param` ms before a group   |
 * | `store.compile:fail`  | admission compile fails transiently       |
 * | `store.compile:delay` | admission sleeps `param` ms (cold cache)  |
 * | `cold.write:fail`     | spill write fails outright (ENOSPC model) |
 * | `cold.write:short`    | spill file is truncated after the rename  |
 * | `cold.read:fail`      | cold load reports an I/O error            |
 * | `cold.read:corrupt`   | cold load returns corrupted artifacts     |
 * | `net.accept:delay`    | event loop sleeps `param` ms on accept    |
 * | `net.conn:drop`       | server drops the connection on dispatch   |
 * | `net.write:partial`   | server sends at most `param` bytes/pass   |
 * | `client.read:stall`   | client reader sleeps `param` ms per read  |
 *
 * Determinism: each site owns its own Rng seeded from its rule, and
 * every decision consumes exactly one Bernoulli draw from that
 * stream, so for a fixed plan and a fixed per-site visit order the
 * fire/skip sequence is identical run to run.  (Cross-site
 * interleaving may still vary with thread scheduling; determinism is
 * per site, which is what the chaos tests key on.)
 *
 * Zero cost when idle: the plan keeps an atomic `active` flag that is
 * false whenever no rule is configured, and the inline injectFault /
 * injectFaultParam helpers check it before taking any lock — an
 * empty plan costs one relaxed atomic load per site visit.
 *
 * Configuration: programmatically via FaultPlan::configure, or from
 * the environment at first use via
 * `SPATIAL_FAULTS=site:kind:rate:seed[:param],...` — e.g.
 * `SPATIAL_FAULTS=serve.worker:stall:0.25:7:40,net.conn:drop:0.05:3`.
 * A malformed spec is fatal: a chaos run with a mistyped plan should
 * die loudly, not silently measure the happy path.
 *
 * See docs/robustness.md for the fault model and the degradation
 * machinery each site exercises.
 */

#ifndef SPATIAL_COMMON_FAULT_H
#define SPATIAL_COMMON_FAULT_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/sync.h"
#include "common/thread_annotations.h"

namespace spatial::fault
{

/** Named injection sites (spec names in the table above). */
enum class Site : std::uint8_t
{
    ServeWorkerStall = 0, //!< `serve.worker:stall`
    StoreCompileFail,     //!< `store.compile:fail`
    StoreCompileDelay,    //!< `store.compile:delay`
    ColdWriteFail,        //!< `cold.write:fail`
    ColdWriteShort,       //!< `cold.write:short`
    ColdReadFail,         //!< `cold.read:fail`
    ColdReadCorrupt,      //!< `cold.read:corrupt`
    NetAcceptDelay,       //!< `net.accept:delay`
    NetConnDrop,          //!< `net.conn:drop`
    NetWritePartial,      //!< `net.write:partial`
    ClientReadStall,      //!< `client.read:stall`
};

/** Number of sites in the catalog (array sizing). */
constexpr std::size_t kSiteCount = 11;

/** The spec name of `site`, e.g. "serve.worker:stall". */
const char *siteName(Site site);

/** One site's injection rule. */
struct Rule
{
    /** Firing probability per visit, in [0, 1]. */
    double rate = 0.0;
    /** Seed for this site's private decision stream. */
    std::uint64_t seed = 1;
    /**
     * Site-specific magnitude: milliseconds for the stall/delay
     * sites, a byte cap for `net.write:partial`; 0 picks the site's
     * default.  Ignored by the pure pass/fail sites.
     */
    std::uint64_t param = 0;
};

/**
 * The process-wide fault plan.  Thread-safe: decisions serialize on
 * an internal mutex (irrelevant for performance — a non-empty plan
 * only exists in chaos runs), counters are atomics readable without
 * it, and the `active` fast path is a single relaxed load.
 */
class FaultPlan
{
  public:
    /**
     * The singleton.  The first call parses `SPATIAL_FAULTS` from the
     * environment (fatal on a malformed spec); programmatic
     * configure()/clear() calls override it afterwards.
     */
    static FaultPlan &instance();

    /** Install (or replace) the rule for one site. */
    void configure(Site site, const Rule &rule);

    /**
     * Parse and install a `site:kind:rate:seed[:param],...` spec on
     * top of the current plan.  Returns false and fills `*error`
     * (when non-null) on a malformed spec, leaving already-parsed
     * entries installed.
     */
    bool configureFromSpec(const std::string &spec, std::string *error);

    /** Remove every rule; also resets the per-site counters. */
    void clear();

    /** True when at least one site has a rule installed. */
    bool active() const
    {
        return active_.load(std::memory_order_relaxed);
    }

    /**
     * Draw this site's next decision: true when the fault fires.
     * Counts the injection.  Call through injectFault() so the empty
     * plan stays lock-free.
     */
    bool shouldInject(Site site);

    /**
     * Like shouldInject, but returns the site's magnitude parameter
     * (>= 1) when the fault fires and 0 when it does not.
     */
    std::uint64_t shouldInjectParam(Site site);

    /** Number of times `site` has fired since the last clear(). */
    std::uint64_t injected(Site site) const;

    /** Total fires across every site since the last clear(). */
    std::uint64_t injectedTotal() const;

  private:
    FaultPlan();

    struct SiteConfig
    {
        bool enabled = false;
        Rule rule;
        Rng rng{0}; //!< this site's private decision stream
    };

    mutable Mutex mutex_;
    std::array<SiteConfig, kSiteCount> sites_ SPATIAL_GUARDED_BY(mutex_);
    std::array<std::atomic<std::uint64_t>, kSiteCount> counts_{};
    std::atomic<bool> active_{false};
};

/**
 * Should the fault at `site` fire now?  The one-liner every
 * injection site calls; a relaxed load and nothing else when no plan
 * is configured.
 */
inline bool
injectFault(Site site)
{
    FaultPlan &plan = FaultPlan::instance();
    return plan.active() && plan.shouldInject(site);
}

/**
 * Parameterized flavor: 0 when the fault does not fire, the site's
 * magnitude (>= 1; milliseconds or bytes per the catalog) when it
 * does.
 */
inline std::uint64_t
injectFaultParam(Site site)
{
    FaultPlan &plan = FaultPlan::instance();
    return plan.active() ? plan.shouldInjectParam(site) : 0;
}

} // namespace spatial::fault

#endif // SPATIAL_COMMON_FAULT_H
