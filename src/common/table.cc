#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace spatial
{

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns))
{
    SPATIAL_ASSERT(!columns_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    SPATIAL_ASSERT(cells.size() == columns_.size(),
                   "row width ", cells.size(), " vs ", columns_.size(),
                   " columns in table '", title_, "'");
    rows_.push_back(std::move(cells));
}

std::string
Table::cell(double v, int precision)
{
    if (std::isnan(v))
        return "nan";
    std::ostringstream oss;
    // Large magnitudes read better in fixed notation; tiny ones in general.
    if (std::abs(v) >= 1e6 || (std::abs(v) < 1e-3 && v != 0.0)) {
        oss.precision(precision);
        oss << std::scientific << v;
    } else {
        oss.precision(precision);
        oss << std::defaultfloat << v;
    }
    return oss.str();
}

std::string
Table::cell(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
Table::cell(std::int64_t v)
{
    return std::to_string(v);
}

std::string
Table::cell(int v)
{
    return std::to_string(v);
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c)
        widths[c] = columns_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    os << "== " << title_ << " ==\n";
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "  ";
            os.width(static_cast<std::streamsize>(widths[c]));
            os << row[c];
        }
        os << "\n";
    };
    emit_row(columns_);
    for (const auto &row : rows_)
        emit_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    emit_row(columns_);
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace spatial
