/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention of separating "the tool is broken" (panic)
 * from "the user asked for something impossible" (fatal).  Both print to
 * stderr; panic aborts so a debugger or core dump can capture the state,
 * fatal exits with a normal error code.
 */

#ifndef SPATIAL_COMMON_LOGGING_H
#define SPATIAL_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace spatial
{

namespace detail
{

/** Format the variadic arguments into a single string via operator<<. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

} // namespace spatial

/**
 * Report an internal invariant violation (a bug in this library) and abort.
 */
#define SPATIAL_PANIC(...)                                                   \
    ::spatial::detail::panicImpl(__FILE__, __LINE__,                         \
                                 ::spatial::detail::formatMessage(__VA_ARGS__))

/**
 * Report an unrecoverable user error (bad configuration or arguments) and
 * exit with status 1.
 */
#define SPATIAL_FATAL(...)                                                   \
    ::spatial::detail::fatalImpl(__FILE__, __LINE__,                         \
                                 ::spatial::detail::formatMessage(__VA_ARGS__))

/** Report a suspicious-but-survivable condition. */
#define SPATIAL_WARN(...)                                                    \
    ::spatial::detail::warnImpl(::spatial::detail::formatMessage(__VA_ARGS__))

/** Report normal operating status. */
#define SPATIAL_INFORM(...)                                                  \
    ::spatial::detail::informImpl(                                           \
        ::spatial::detail::formatMessage(__VA_ARGS__))

/**
 * Panic unless the given invariant holds.
 *
 * Compiles to nothing under NDEBUG (Release builds) so bounds checks do
 * not tax the simulation inner loops; a Debug build keeps every check.
 * User-facing validation that must survive Release belongs in
 * SPATIAL_FATAL, not here.
 */
#ifdef NDEBUG
#define SPATIAL_ASSERT(cond, ...)                                            \
    do {                                                                     \
    } while (0)
#else
#define SPATIAL_ASSERT(cond, ...)                                            \
    do {                                                                     \
        if (!(cond)) {                                                       \
            SPATIAL_PANIC("assertion failed: " #cond " ",                    \
                          ::spatial::detail::formatMessage(__VA_ARGS__));    \
        }                                                                    \
    } while (0)
#endif

#endif // SPATIAL_COMMON_LOGGING_H
