/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic step in the reproduction (matrix generation, the CSD
 * length-2 coin flip, task input sequences) draws from an explicitly
 * seeded Rng so experiments are replayable bit-for-bit.  The engine is
 * xoshiro256** seeded through SplitMix64, both implemented here so results
 * do not depend on standard-library distribution details.
 */

#ifndef SPATIAL_COMMON_RNG_H
#define SPATIAL_COMMON_RNG_H

#include <array>
#include <cstdint>

namespace spatial
{

/**
 * Small, fast, deterministic pseudo-random generator (xoshiro256**).
 *
 * All derived draws (integers, reals, Bernoulli, Gaussian) are implemented
 * on top of next() with fixed algorithms, so a given seed produces the
 * same sequence on every platform and standard library.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Uniform real in [0, 1). */
    double uniformReal();

    /** Uniform real in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Bernoulli draw: true with probability p (clamped to [0,1]). */
    bool bernoulli(double p);

    /** Single fair coin flip (used by the CSD length-2 chain rule). */
    bool coin() { return (next() >> 63) != 0; }

    /** Standard normal draw (Box-Muller, deterministic). */
    double gaussian();

    /** Fork an independent stream (seeded from this stream's output). */
    Rng split();

  private:
    std::array<std::uint64_t, 4> state_;
    bool hasSpareGaussian_ = false;
    double spareGaussian_ = 0.0;
};

} // namespace spatial

#endif // SPATIAL_COMMON_RNG_H
