/**
 * @file
 * CGRA projection model — Section VIII's proposed custom device.
 *
 * The paper argues the FPGA's two limits (input-broadcast fanout and
 * 6-input-LUT cost) disappear in a purpose-built CGRA: "a 6-input LUT is
 * made using 64 SRAM bits of 6 transistors each, with 64 MUX T-gates of
 * 2 transistors each, which yields a total of 512 transistors for every
 * LUT.  A full-adder uses 16 or fewer transistors, which is 1/32 the
 * cost."  The fabric is a grid of full-adders and flip-flops with a
 * tree-like reduction interconnect and a pipelined broadcast network,
 * plus *pipeline reconfiguration* (PipeRench-style): configuration waves
 * chase the compute waves down the tree, so swapping the matrix costs
 * no dead time — unlike the FPGA's ~200 ms full reconfiguration —
 * making the approach viable for dynamic sparse matrices.
 *
 * This module projects any compiled design onto that fabric: transistor
 * budget, clock, latency, and matrix-update economics.
 */

#ifndef SPATIAL_CGRA_CGRA_H
#define SPATIAL_CGRA_CGRA_H

#include <cstddef>
#include <cstdint>

#include "circuit/stats.h"
#include "core/compiled_matrix.h"
#include "fpga/report.h"

namespace spatial::cgra
{

/** Technology/fabric parameters of the projected CGRA. */
struct CgraConfig
{
    /** Transistors in one FPGA 6-input LUT (64x6T SRAM + 64x2T mux). */
    double transistorsPerLut = 512.0;

    /** Transistors in one full-adder cell (paper: "16 or fewer"). */
    double transistorsPerFullAdder = 16.0;

    /** Transistors per flip-flop (standard 6T-8T master-slave ~ 24T). */
    double transistorsPerFf = 24.0;

    /** Transistors per AND/NOT gate cell. */
    double transistorsPerGate = 6.0;

    /**
     * Per-cell configuration SRAM (interconnect mux selects + function
     * bits) — the price of programmability, far below a LUT's 512.
     */
    double configTransistorsPerCell = 64.0;

    /**
     * Fabric clock in MHz.  The pipelined broadcast/reduction
     * interconnect removes the fanout cliff, so the clock holds across
     * design sizes ("higher compute density at higher frequencies").
     */
    double clockMhz = 750.0;

    /** Configuration rows written per cycle during a pipeline wave. */
    double configRowsPerCycle = 1.0;

    /** FPGA full-bitstream reconfiguration time (Section VIII). */
    double fpgaReconfigMs = 200.0;
};

/** Projection of one compiled design onto the CGRA fabric. */
struct CgraPoint
{
    std::size_t cells = 0;          //!< FA + FF + gate cells
    double transistors = 0.0;       //!< fabric transistors incl. config
    double fpgaTransistors = 0.0;   //!< same design on the FPGA
    double densityAdvantage = 0.0;  //!< fpgaTransistors / transistors

    double clockMhz = 0.0;
    std::uint32_t latencyCycles = 0; //!< Equation 5 cycles
    double latencyNs = 0.0;
    double fpgaLatencyNs = 0.0; //!< the same design at the FPGA's Fmax

    /**
     * Dead time to swap in a new matrix.  Pipeline reconfiguration
     * overlaps configuration with the draining computation, so only the
     * first wave's skew is exposed.
     */
    double reconfigNs = 0.0;
    double fpgaReconfigNs = 0.0; //!< the FPGA's full reprogramming cost
};

/** Project a compiled design onto the CGRA. */
CgraPoint projectDesign(const core::CompiledMatrix &design,
                        const fpga::DesignPoint &fpga_point,
                        const CgraConfig &config = {});

/**
 * Sustained time per multiply when the matrix changes every
 * `multiplies_per_matrix` products (the dynamic-sparse-matrix use case):
 * amortizes each platform's reconfiguration dead time.
 */
double sustainedNsPerMultiply(const CgraPoint &point,
                              std::size_t multiplies_per_matrix,
                              bool on_fpga);

} // namespace spatial::cgra

#endif // SPATIAL_CGRA_CGRA_H
