#include "cgra/cgra.h"

#include "common/logging.h"
#include "core/latency.h"

namespace spatial::cgra
{

CgraPoint
projectDesign(const core::CompiledMatrix &design,
              const fpga::DesignPoint &fpga_point, const CgraConfig &config)
{
    const auto counts = circuit::collectCounts(design.netlist());

    CgraPoint point;
    const std::size_t arith = counts.adders + counts.subs;
    const std::size_t gates = counts.ands + counts.nots;
    point.cells = arith + counts.dffs + gates;

    // Fabric cost: function transistors plus per-cell configuration.
    // Each arithmetic cell carries a full adder and its two registers.
    point.transistors =
        static_cast<double>(arith) *
            (config.transistorsPerFullAdder +
             2.0 * config.transistorsPerFf) +
        static_cast<double>(counts.dffs) * config.transistorsPerFf +
        static_cast<double>(gates) * config.transistorsPerGate +
        static_cast<double>(point.cells) * config.configTransistorsPerCell;

    // The same design on the FPGA, in transistors: LUTs (including
    // LUTRAM-mapped shift registers) plus flip-flops.
    point.fpgaTransistors =
        static_cast<double>(fpga_point.resources.luts +
                            fpga_point.resources.lutrams) *
            config.transistorsPerLut +
        static_cast<double>(fpga_point.resources.ffs) *
            config.transistorsPerFf;
    point.densityAdvantage =
        point.transistors > 0.0
            ? point.fpgaTransistors / point.transistors
            : 0.0;

    point.clockMhz = config.clockMhz;
    point.latencyCycles = design.paperLatencyCycles();
    point.latencyNs = core::cyclesToNs(point.latencyCycles, point.clockMhz);
    point.fpgaLatencyNs = fpga_point.latencyNs;

    // Pipeline reconfiguration: the configuration wave for tree level l
    // is written while level l-1 still computes, so the exposed dead
    // time is one wave step, not the whole fabric.
    point.reconfigNs = core::cyclesToNs(
        static_cast<std::uint32_t>(1.0 / config.configRowsPerCycle + 0.5),
        point.clockMhz);
    point.fpgaReconfigNs = config.fpgaReconfigMs * 1e6;
    return point;
}

double
sustainedNsPerMultiply(const CgraPoint &point,
                       std::size_t multiplies_per_matrix, bool on_fpga)
{
    SPATIAL_ASSERT(multiplies_per_matrix >= 1, "need at least 1 multiply");
    const double compute = on_fpga ? point.fpgaLatencyNs : point.latencyNs;
    const double reconfig =
        on_fpga ? point.fpgaReconfigNs : point.reconfigNs;
    return compute +
           reconfig / static_cast<double>(multiplies_per_matrix);
}

} // namespace spatial::cgra
