#include "fpga/parallel_model.h"

#include <algorithm>

#include "common/logging.h"
#include "core/latency.h"

namespace spatial::fpga
{

ParallelEstimate
estimateBitParallel(std::size_t rows, std::size_t cols, std::size_t nnz,
                    std::size_t ones, int input_bits, int weight_bits)
{
    SPATIAL_ASSERT(input_bits >= 1 && weight_bits >= 1, "bad widths");
    ParallelEstimate est;

    // Internal word: full product plus accumulation growth.
    const int log_rows = core::ceilLog2(std::max<std::size_t>(rows, 2));
    est.wordWidth = static_cast<std::size_t>(input_bits + weight_bits +
                                             log_rows);

    // Shift-add constant multipliers: one word-wide adder per set bit
    // beyond the first of each nonzero weight.
    const std::size_t multiplier_adds = ones > nnz ? ones - nnz : 0;
    // Column reduction trees: nnz-per-column minus one adders each.
    const std::size_t tree_adds = nnz > cols ? nnz - cols : 0;

    const std::size_t word_adders = multiplier_adds + tree_adds;
    // A word-wide ripple adder costs ~1 LUT per bit (carry chains are
    // free on UltraScale+); pipelining registers the full word at each
    // tree level, ~2 FFs per LUT like the bit-serial design.
    est.resources.luts = word_adders * est.wordWidth;
    est.resources.ffs = 2 * est.resources.luts;
    est.resources.lutrams = rows + cols; // I/O buffering

    // Latency: pipelined multiplier (log of its adds) plus the column
    // tree depth plus I/O registration.
    const int mult_depth = core::ceilLog2(
        std::max<std::size_t>(2, static_cast<std::size_t>(weight_bits)));
    est.latencyCycles = static_cast<std::uint32_t>(log_rows + mult_depth + 2);
    return est;
}

} // namespace spatial::fpga
