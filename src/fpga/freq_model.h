/**
 * @file
 * Achieved-frequency model (Figure 11).
 *
 * Every path in the generated design has a single LUT between flip-flops,
 * so Fmax is set by interconnect: (1) the first-stage input broadcast,
 * whose fanout grows with dimension times density, and (2) nets crossing
 * SLR (chiplet) boundaries once the design spills past one chiplet.  The
 * paper's measured bands are: one SLR 597-445 MHz, two SLRs 400-296 MHz,
 * three or more SLRs 250-225 MHz, with frequency degrading as SLR
 * utilization approaches the 82% pressure point.
 */

#ifndef SPATIAL_FPGA_FREQ_MODEL_H
#define SPATIAL_FPGA_FREQ_MODEL_H

#include <cstddef>
#include <cstdint>

#include "fpga/resources.h"

namespace spatial::fpga
{

/** Number of SLRs a design of this LUT count must span (1..4). */
int slrSpan(std::size_t luts);

/**
 * Modelled post-place-and-route frequency in MHz.
 *
 * @param resources mapped resource counts (LUT count drives placement).
 * @param max_fanout largest net fanout (the input broadcast).
 */
double fmaxMhz(const FpgaResources &resources, std::uint32_t max_fanout);

/** True if the design exceeds the device's LUT capacity. */
bool fitsDevice(const FpgaResources &resources);

} // namespace spatial::fpga

#endif // SPATIAL_FPGA_FREQ_MODEL_H
