#include "fpga/area_model.h"

namespace spatial::fpga
{

FpgaResources
estimateFromOnes(std::size_t ones, std::size_t rows, std::size_t cols)
{
    FpgaResources est;
    // Figure 10's trend lines: LUTs track the ones count one-to-one and
    // there are two registers per LUT (each adder's sum+carry pair).
    est.luts = ones;
    est.ffs = 2 * ones;
    // Wrapper SRLs dominate the LUTRAM count for 8-bit-class designs.
    est.lutrams = rows + cols;
    return est;
}

double
expectedOnes(std::size_t rows, std::size_t cols, int weight_bits,
             double element_sparsity)
{
    // A uniform nonzero element has on average half its bits set.
    const double elements =
        static_cast<double>(rows) * static_cast<double>(cols);
    return elements * (1.0 - element_sparsity) *
           (static_cast<double>(weight_bits) / 2.0);
}

} // namespace spatial::fpga
