/**
 * @file
 * Power model (Figure 12).
 *
 * Total power = static leakage + dynamic switching.  Dynamic power is
 * alpha * C * V^2 * f over the toggling LUTs and registers; following the
 * Vivado default assumptions the model charges every mapped LUT and FF a
 * per-MHz energy at a fixed activity factor.  Because achievable Fmax
 * falls as designs grow (Figure 11), total power grows sublinearly in
 * design size, approaching the 150 W thermal limit at high dimension and
 * low sparsity.
 */

#ifndef SPATIAL_FPGA_POWER_MODEL_H
#define SPATIAL_FPGA_POWER_MODEL_H

#include "fpga/resources.h"

namespace spatial::fpga
{

/** Tunable coefficients; defaults are calibrated to Figure 12's scale. */
struct PowerCoefficients
{
    /** Device static power in watts (16 nm large-die leakage). */
    double staticWatts = 4.5;

    /** Default toggle (switching activity) assumption. */
    double activity = 0.125;

    /** Dynamic energy per LUT per MHz at activity 1.0, in watts/MHz. */
    double lutWattsPerMhz = 1.6e-6;

    /** Dynamic energy per FF per MHz at activity 1.0, in watts/MHz. */
    double ffWattsPerMhz = 4.5e-7;

    /** Clock-tree watts per FF per MHz (always toggling). */
    double clockWattsPerMhz = 5.0e-8;
};

/** Estimated total power of a design running at `fmax_mhz`. */
double powerWatts(const FpgaResources &resources, double fmax_mhz,
                  const PowerCoefficients &coeff = {});

/** True if the estimate exceeds the 150 W thermal limit. */
bool exceedsThermalLimit(double watts);

} // namespace spatial::fpga

#endif // SPATIAL_FPGA_POWER_MODEL_H
