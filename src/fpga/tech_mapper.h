/**
 * @file
 * Technology mapping of a bit-serial netlist onto UltraScale+ resources.
 *
 * Mapping rules follow Section III: a bit-serial adder or subtractor fits
 * one 6-input LUT plus two flip-flops (sum and carry registers); a culled
 * adder is a single flip-flop; AND/NOT gates (naive mode only) are one
 * LUT each.  Runs of three or more delay flip-flops map to SRL LUTRAMs
 * (one per 32 stages, plus the SRL's output register), which is how the
 * LUTRAM series of Figures 5, 6, and 9 arises.  The SRAM I/O wrapper adds
 * one SRL per input row and output column and a small constant of control
 * logic ("this design wrapper only adds a few extra LUTs and registers").
 */

#ifndef SPATIAL_FPGA_TECH_MAPPER_H
#define SPATIAL_FPGA_TECH_MAPPER_H

#include <cstddef>

#include "circuit/netlist.h"
#include "fpga/resources.h"

namespace spatial::fpga
{

/** Options controlling wrapper accounting. */
struct MapperOptions
{
    /** Include the SRAM feed/capture wrapper resources. */
    bool includeWrapper = true;

    /** Delay-chain length at or above which Vivado infers an SRL. */
    std::size_t srlThreshold = 3;
};

/** Break-down of where mapped resources came from (for reports/tests). */
struct MappedDesign
{
    FpgaResources total;
    FpgaResources arithmetic; //!< adders/subtractors
    FpgaResources delays;     //!< alignment/skew flip-flops and SRLs
    FpgaResources gates;      //!< AND/NOT logic (naive mode)
    FpgaResources wrapper;    //!< I/O shift registers and control
};

/**
 * Map a netlist plus its I/O shape to FPGA resources.
 *
 * @param netlist the compiled design.
 * @param num_outputs output columns (capture shift registers).
 * @param input_bits streamed input width (input SRL depth).
 * @param output_bits captured output width (output SRL depth).
 */
MappedDesign mapDesign(const circuit::Netlist &netlist,
                       std::size_t num_outputs, int input_bits,
                       int output_bits, const MapperOptions &options = {});

} // namespace spatial::fpga

#endif // SPATIAL_FPGA_TECH_MAPPER_H
