#include "fpga/report.h"

#include "core/latency.h"
#include "fpga/freq_model.h"

namespace spatial::fpga
{

double
DesignPoint::batchLatencyNs(std::size_t batch) const
{
    return core::batchLatencyNs(latencyCycles, iiCycles, batch, fmaxMhz);
}

DesignPoint
evaluateDesign(const core::CompiledMatrix &design,
               const MapperOptions &mapper_options,
               const PowerCoefficients &power_coeff)
{
    DesignPoint point;
    point.rows = design.rows();
    point.cols = design.cols();
    point.weightBits = design.weightBits();
    point.ones = design.weightOnes();

    const auto mapped =
        mapDesign(design.netlist(), design.cols(), design.options().inputBits,
                  design.outputBits(), mapper_options);
    point.resources = mapped.total;
    point.maxFanout = design.netlist().maxFanout();
    point.slrs = slrSpan(point.resources.luts);
    point.fits = fitsDevice(point.resources);

    point.fmaxMhz = fmaxMhz(point.resources, point.maxFanout);
    point.powerWatts = powerWatts(point.resources, point.fmaxMhz,
                                  power_coeff);

    point.latencyCycles = design.paperLatencyCycles();
    point.latencyNs = core::cyclesToNs(point.latencyCycles, point.fmaxMhz);
    point.iiCycles = design.initiationInterval();
    return point;
}

} // namespace spatial::fpga
