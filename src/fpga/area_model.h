/**
 * @file
 * The paper's closed-form area model (Sections IV and VI).
 *
 * "We present simple cost and power models, which enable the quick
 * estimation of size and power of any fixed matrix on an FPGA": LUT
 * count is essentially the number of set weight bits, flip-flops are two
 * per LUT, and the I/O wrapper contributes one SRL-class LUTRAM per row
 * and column.  This model predicts resources without compiling the
 * netlist, and the tests check it against the technology mapper.
 */

#ifndef SPATIAL_FPGA_AREA_MODEL_H
#define SPATIAL_FPGA_AREA_MODEL_H

#include <cstddef>

#include "fpga/resources.h"

namespace spatial::fpga
{

/** Closed-form estimate from the ones count alone. */
FpgaResources estimateFromOnes(std::size_t ones, std::size_t rows,
                               std::size_t cols);

/**
 * Expected ones count of a random matrix: elements * (1 - sparsity) *
 * half the magnitude bits set on average (uniform values).
 */
double expectedOnes(std::size_t rows, std::size_t cols, int weight_bits,
                    double element_sparsity);

} // namespace spatial::fpga

#endif // SPATIAL_FPGA_AREA_MODEL_H
