#include "fpga/tech_mapper.h"

#include <vector>

#include "circuit/stats.h"

namespace spatial::fpga
{

namespace
{

using circuit::CompKind;
using circuit::Netlist;
using circuit::NodeId;

/** ceil(a / b) for positive integers. */
std::size_t
ceilDiv(std::size_t a, std::size_t b)
{
    return (a + b - 1) / b;
}

/** Stages one SRL32 primitive can absorb. */
constexpr std::size_t kSrlDepth = 32;

} // namespace

MappedDesign
mapDesign(const circuit::Netlist &netlist, std::size_t num_outputs,
          int input_bits, int output_bits, const MapperOptions &options)
{
    MappedDesign design;

    // Arithmetic: 1 LUT + 2 FFs per bit-serial adder/subtractor.
    const auto counts = circuit::collectCounts(netlist);
    design.arithmetic.luts = counts.adders + counts.subs;
    design.arithmetic.ffs = 2 * (counts.adders + counts.subs);

    // Naive-mode combinational gates: 1 LUT each.
    design.gates.luts = counts.ands + counts.nots;

    // Delay flip-flops: find maximal single-use DFF chains; long chains
    // become SRLs, short ones stay as flip-flops.
    const auto fan = netlist.fanouts();
    const auto n = static_cast<NodeId>(netlist.numNodes());
    std::vector<std::uint32_t> chain_len(netlist.numNodes(), 0);
    std::vector<bool> continued(netlist.numNodes(), false);
    for (NodeId id = 0; id < n; ++id) {
        if (netlist.kind(id) != CompKind::Dff)
            continue;
        const NodeId src = netlist.srcA(id);
        const bool extends =
            netlist.kind(src) == CompKind::Dff && fan[src] == 1;
        chain_len[id] = extends ? chain_len[src] + 1 : 1;
        if (extends)
            continued[src] = true;
    }
    for (NodeId id = 0; id < n; ++id) {
        if (netlist.kind(id) != CompKind::Dff || continued[id])
            continue;
        const std::size_t len = chain_len[id];
        if (len >= options.srlThreshold) {
            design.delays.lutrams += ceilDiv(len, kSrlDepth);
            design.delays.ffs += 1; // SRL output register
        } else {
            design.delays.ffs += len;
        }
    }

    if (options.includeWrapper) {
        // One parallel-load SRL per input row and one capture SRL per
        // output column, plus a small constant of address/control logic.
        design.wrapper.lutrams =
            netlist.numInputPorts() *
                ceilDiv(static_cast<std::size_t>(input_bits), kSrlDepth) +
            num_outputs *
                ceilDiv(static_cast<std::size_t>(output_bits), kSrlDepth);
        design.wrapper.luts = 50;
        design.wrapper.ffs = 100;
    }

    design.total = design.arithmetic + design.gates + design.delays +
                   design.wrapper;
    return design;
}

} // namespace spatial::fpga
