#include "fpga/power_model.h"

#include "common/logging.h"
#include "fpga/device.h"

namespace spatial::fpga
{

double
powerWatts(const FpgaResources &resources, double fmax_mhz,
           const PowerCoefficients &coeff)
{
    SPATIAL_ASSERT(fmax_mhz > 0.0, "fmax ", fmax_mhz);
    const double luts =
        static_cast<double>(resources.luts + resources.lutrams);
    const double ffs = static_cast<double>(resources.ffs);
    const double logic = coeff.activity *
                         (luts * coeff.lutWattsPerMhz +
                          ffs * coeff.ffWattsPerMhz) *
                         fmax_mhz;
    const double clock = ffs * coeff.clockWattsPerMhz * fmax_mhz;
    return coeff.staticWatts + logic + clock;
}

bool
exceedsThermalLimit(double watts)
{
    return watts > Xcvu13p::thermalLimitWatts;
}

} // namespace spatial::fpga
