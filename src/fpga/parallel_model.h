/**
 * @file
 * Cost model of the *bit-parallel* spatial alternative, used to justify
 * the paper's bit-serial choice ("Bit-serial arithmetic enables massive
 * static matrices to be implemented").
 *
 * A bit-parallel direct implementation replaces each nonzero weight
 * with a shift-add constant multiplier (one word-wide adder per extra
 * set bit) and each column with a word-wide adder tree.  Every adder is
 * `word` LUTs wide instead of the bit-serial design's single LUT, so
 * area scales by roughly the word width while the latency in cycles
 * drops to the pipelined tree depth — the classic area/time trade this
 * model makes explicit.
 */

#ifndef SPATIAL_FPGA_PARALLEL_MODEL_H
#define SPATIAL_FPGA_PARALLEL_MODEL_H

#include <cstddef>
#include <cstdint>

#include "fpga/resources.h"

namespace spatial::fpga
{

/** Estimated bit-parallel implementation of one fixed matrix. */
struct ParallelEstimate
{
    FpgaResources resources;
    std::uint32_t latencyCycles = 0; //!< pipelined tree depth
    std::size_t wordWidth = 0;       //!< internal datapath width
};

/**
 * Estimate the bit-parallel design.
 *
 * @param rows, cols matrix shape.
 * @param nnz nonzero elements.
 * @param ones total set magnitude bits.
 * @param input_bits, weight_bits operand widths.
 */
ParallelEstimate estimateBitParallel(std::size_t rows, std::size_t cols,
                                     std::size_t nnz, std::size_t ones,
                                     int input_bits, int weight_bits);

} // namespace spatial::fpga

#endif // SPATIAL_FPGA_PARALLEL_MODEL_H
