/**
 * @file
 * Device description of the paper's target FPGA, the Xilinx Virtex
 * UltraScale+ XCVU13P (Section VI): a 16 nm part with four chiplets
 * (Super Logic Regions), 1.7M 6-input LUTs and 3.4M flip-flops, and a
 * ~150 W thermal limit under medium airflow/heatsink assumptions.
 */

#ifndef SPATIAL_FPGA_DEVICE_H
#define SPATIAL_FPGA_DEVICE_H

#include <cstddef>

namespace spatial::fpga
{

/** Static capacities of the XCVU13P as quoted in the paper. */
struct Xcvu13p
{
    /** Total 6-input LUTs in the package. */
    static constexpr std::size_t totalLuts = 1'700'000;

    /** Total logic flip-flops. */
    static constexpr std::size_t totalFfs = 3'400'000;

    /** Number of Super Logic Regions (chiplets). */
    static constexpr int slrCount = 4;

    /** LUT capacity of one SLR. */
    static constexpr std::size_t lutsPerSlr = 425'000;

    /**
     * Utilization fraction of one SLR beyond which "the tools can
     * struggle" (the 82% tick marks of Figure 11).
     */
    static constexpr double slrPressureFraction = 0.82;

    /** Thermal power limit under medium cooling (Figure 12). */
    static constexpr double thermalLimitWatts = 150.0;

    /** Maximum SRAM/BRAM frequency; never the critical path here. */
    static constexpr double sramFmaxMhz = 600.0;
};

} // namespace spatial::fpga

#endif // SPATIAL_FPGA_DEVICE_H
