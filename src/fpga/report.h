/**
 * @file
 * One-stop evaluation of a compiled design on the XCVU13P: resources,
 * SLR span, achieved frequency, power, and latency.  This is the "FPGA"
 * series of every evaluation figure.
 */

#ifndef SPATIAL_FPGA_REPORT_H
#define SPATIAL_FPGA_REPORT_H

#include <cstddef>
#include <cstdint>

#include "core/compiled_matrix.h"
#include "fpga/power_model.h"
#include "fpga/resources.h"
#include "fpga/tech_mapper.h"

namespace spatial::fpga
{

/** Everything the evaluation needs to know about one design point. */
struct DesignPoint
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    int weightBits = 0;
    std::size_t ones = 0; //!< set bits across the compiled P/N pair

    FpgaResources resources;
    std::uint32_t maxFanout = 0;
    int slrs = 1;
    bool fits = true;

    double fmaxMhz = 0.0;
    double powerWatts = 0.0;

    std::uint32_t latencyCycles = 0; //!< Equation 5
    double latencyNs = 0.0;
    std::uint32_t iiCycles = 0; //!< batch initiation interval

    /** Latency of a batch of vectors in nanoseconds. */
    double batchLatencyNs(std::size_t batch) const;
};

/** Map, time, and power a compiled design. */
DesignPoint evaluateDesign(const core::CompiledMatrix &design,
                           const MapperOptions &mapper_options = {},
                           const PowerCoefficients &power_coeff = {});

} // namespace spatial::fpga

#endif // SPATIAL_FPGA_REPORT_H
