/**
 * @file
 * FPGA resource vector: the three quantities the paper's synthesis
 * figures report (LUT, FF, LUTRAM).
 */

#ifndef SPATIAL_FPGA_RESOURCES_H
#define SPATIAL_FPGA_RESOURCES_H

#include <cstddef>

namespace spatial::fpga
{

/** Mapped resource counts for one design. */
struct FpgaResources
{
    std::size_t luts = 0;    //!< 6-input LUTs used as logic
    std::size_t ffs = 0;     //!< flip-flops
    std::size_t lutrams = 0; //!< LUTs re-purposed as SRL shift registers

    FpgaResources &
    operator+=(const FpgaResources &other)
    {
        luts += other.luts;
        ffs += other.ffs;
        lutrams += other.lutrams;
        return *this;
    }

    friend FpgaResources
    operator+(FpgaResources a, const FpgaResources &b)
    {
        a += b;
        return a;
    }

    bool operator==(const FpgaResources &other) const = default;
};

} // namespace spatial::fpga

#endif // SPATIAL_FPGA_RESOURCES_H
