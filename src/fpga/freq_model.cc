#include "fpga/freq_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "fpga/device.h"

namespace spatial::fpga
{

int
slrSpan(std::size_t luts)
{
    const auto span = static_cast<int>(
        (luts + Xcvu13p::lutsPerSlr - 1) / Xcvu13p::lutsPerSlr);
    return std::clamp(span, 1, Xcvu13p::slrCount);
}

bool
fitsDevice(const FpgaResources &resources)
{
    return resources.luts + resources.lutrams <= Xcvu13p::totalLuts &&
           resources.ffs <= Xcvu13p::totalFfs;
}

double
fmaxMhz(const FpgaResources &resources, std::uint32_t max_fanout)
{
    const int span = slrSpan(resources.luts);
    const double span_capacity =
        static_cast<double>(span) * static_cast<double>(Xcvu13p::lutsPerSlr);
    // Fraction of the spanned region in use, normalized so the measured
    // band is traversed as utilization approaches the 82% pressure point.
    const double utilization = std::min(
        1.0, static_cast<double>(resources.luts) / span_capacity /
                 Xcvu13p::slrPressureFraction);

    // Measured bands of Figure 11; designs land inside their span's
    // band, positioned by utilization pressure and broadcast fanout.
    double hi, lo;
    if (span <= 1) {
        hi = 597.0;
        lo = 445.0;
    } else if (span == 2) {
        hi = 400.0;
        lo = 296.0;
    } else {
        hi = 250.0;
        lo = 225.0;
    }
    double fmax = hi - (hi - lo) * utilization;

    // First-stage broadcast penalty: nets with fanout in the hundreds
    // add routing delay; below ~64 loads the broadcast is not the
    // critical path.  The penalty consumes up to ~30% of the band by the
    // time fanout reaches thousands (once SLR crossings dominate, the
    // clamp below keeps the result inside the measured band).
    if (max_fanout > 64) {
        const double doublings =
            std::log2(static_cast<double>(max_fanout) / 64.0);
        fmax -= (hi - lo) * 0.3 * (doublings / 6.0);
    }
    fmax = std::clamp(fmax, lo, hi);
    SPATIAL_ASSERT(fmax > 0.0, "non-positive fmax");
    return fmax;
}

} // namespace spatial::fpga
