#include "store/format.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "circuit/exec_plan.h"
#include "circuit/netlist.h"
#include "common/logging.h"

namespace spatial::store
{

/**
 * Friend of core::CompiledMatrix: assembles a design from loaded
 * fields (the only way to build one outside the compiler) and reads
 * nothing the public accessors don't already expose.
 */
class DesignSerializer
{
  public:
    /** Build a CompiledMatrix from loaded parts; rebuilds the plan. */
    static core::CompiledMatrix
    build(circuit::Netlist netlist,
          std::vector<core::ColumnOutput> outputs,
          const core::CompileOptions &options, std::size_t rows,
          std::size_t cols, int weight_bits, int output_bits,
          std::size_t weight_ones, std::uint32_t drain_cycles)
    {
        core::CompiledMatrix m;
        m.netlist_ = std::move(netlist);
        m.plan_ =
            std::make_shared<const circuit::ExecPlan>(m.netlist_);
        m.outputs_ = std::move(outputs);
        m.options_ = options;
        m.rows_ = rows;
        m.cols_ = cols;
        m.weightBits_ = weight_bits;
        m.outputBits_ = output_bits;
        m.weightOnes_ = weight_ones;
        m.drainCycles_ = drain_cycles;
        return m;
    }
};

namespace
{

/** Little-endian append-only byte sink. */
struct Writer
{
    std::vector<std::uint8_t> bytes;

    void u8(std::uint8_t v) { bytes.push_back(v); }
    void u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
};

/** Bounds-checked little-endian reader; sticky failure flag. */
struct Reader
{
    const std::uint8_t *data;
    std::size_t size;
    std::size_t pos = 0;
    bool failed = false;

    bool need(std::size_t n)
    {
        if (failed || size - pos < n) {
            failed = true;
            return false;
        }
        return true;
    }
    std::uint8_t u8()
    {
        if (!need(1))
            return 0;
        return data[pos++];
    }
    std::uint32_t u32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
        return v;
    }
    std::uint64_t u64()
    {
        if (!need(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data[pos++]) << (8 * i);
        return v;
    }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
};

/** Shape/count sanity bound: nothing real comes close. */
constexpr std::uint64_t kMaxReasonable = std::uint64_t(1) << 26;

void
writeOptions(Writer &w, const core::CompileOptions &o)
{
    w.i32(o.inputBits);
    w.u8(o.inputsSigned ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(o.signMode));
    w.u8(o.constantPropagation ? 1 : 0);
    w.u8(o.balancedTree ? 1 : 0);
    w.u8(o.alignOutputs ? 1 : 0);
    w.i32(o.extraOutputBits);
    w.u32(o.broadcastFanoutLimit);
    w.u64(o.csdSeed);
}

bool
readOptions(Reader &r, core::CompileOptions *o)
{
    o->inputBits = r.i32();
    const std::uint8_t inputs_signed = r.u8();
    const std::uint8_t sign_mode = r.u8();
    const std::uint8_t constant_propagation = r.u8();
    const std::uint8_t balanced_tree = r.u8();
    const std::uint8_t align_outputs = r.u8();
    o->extraOutputBits = r.i32();
    o->broadcastFanoutLimit = r.u32();
    o->csdSeed = r.u64();
    if (r.failed || o->inputBits < 1 || o->inputBits > 32 ||
        sign_mode > static_cast<std::uint8_t>(core::SignMode::Csd) ||
        inputs_signed > 1 || constant_propagation > 1 ||
        balanced_tree > 1 || align_outputs > 1 ||
        o->extraOutputBits < 0 || o->extraOutputBits > 59)
        return false;
    o->inputsSigned = inputs_signed != 0;
    o->signMode = static_cast<core::SignMode>(sign_mode);
    o->constantPropagation = constant_propagation != 0;
    o->balancedTree = balanced_tree != 0;
    o->alignOutputs = align_outputs != 0;
    return true;
}

void
writeTile(Writer &w, const core::CompiledMatrix &tile)
{
    w.u64(tile.rows());
    w.u64(tile.cols());
    w.i32(tile.weightBits());
    w.i32(tile.outputBits());
    w.u64(tile.weightOnes());
    w.u32(tile.drainCycles());

    const auto &outputs = tile.outputs();
    w.u64(outputs.size());
    for (const auto &out : outputs) {
        w.u32(out.node);
        w.i32(out.lsbLatency);
    }

    const circuit::Netlist &netlist = tile.netlist();
    w.u64(netlist.numNodes());
    w.u64(netlist.numInputPorts());
    for (std::size_t i = 0; i < netlist.numNodes(); ++i) {
        const auto id = static_cast<circuit::NodeId>(i);
        w.u8(static_cast<std::uint8_t>(netlist.kind(id)));
        w.u32(netlist.srcA(id));
        w.u32(netlist.srcB(id));
    }
}

/**
 * Read one tile, replaying the netlist through the public builders so
 * every structural invariant (kinds in range, SSA ordering, port
 * bounds) is enforced before an ExecPlan ever sees it.  Returns null
 * on any violation.
 */
std::shared_ptr<const core::CompiledMatrix>
readTile(Reader &r, const core::CompileOptions &options,
         std::size_t expect_rows, std::size_t expect_cols)
{
    const std::uint64_t rows = r.u64();
    const std::uint64_t cols = r.u64();
    const std::int32_t weight_bits = r.i32();
    const std::int32_t output_bits = r.i32();
    const std::uint64_t weight_ones = r.u64();
    const std::uint32_t drain_cycles = r.u32();
    if (r.failed || rows != expect_rows || cols != expect_cols ||
        rows == 0 || cols == 0 || rows > kMaxReasonable ||
        cols > kMaxReasonable || weight_bits < 0 || weight_bits > 64 ||
        output_bits < 1 || output_bits > 64 || drain_cycles == 0 ||
        drain_cycles > kMaxReasonable)
        return nullptr;

    const std::uint64_t num_outputs = r.u64();
    if (r.failed || num_outputs != cols)
        return nullptr;
    std::vector<core::ColumnOutput> outputs;
    outputs.reserve(num_outputs);
    for (std::uint64_t i = 0; i < num_outputs; ++i) {
        core::ColumnOutput out;
        out.node = r.u32();
        out.lsbLatency = r.i32();
        if (r.failed ||
            out.lsbLatency >
                static_cast<std::int64_t>(drain_cycles) ||
            out.lsbLatency < -64)
            return nullptr;
        outputs.push_back(out);
    }

    const std::uint64_t num_nodes = r.u64();
    const std::uint64_t num_ports = r.u64();
    if (r.failed || num_nodes == 0 || num_nodes > kMaxReasonable ||
        num_ports == 0 || num_ports > rows)
        return nullptr;
    circuit::Netlist netlist;
    for (std::uint64_t i = 0; i < num_nodes; ++i) {
        const std::uint8_t kind_byte = r.u8();
        const std::uint32_t a = r.u32();
        const std::uint32_t b = r.u32();
        if (r.failed ||
            kind_byte > static_cast<std::uint8_t>(circuit::CompKind::Sub))
            return nullptr;
        const auto kind = static_cast<circuit::CompKind>(kind_byte);
        const bool a_ok = a < i; // SSA: sources precede their sinks
        const bool b_ok = b < i;
        switch (kind) {
          case circuit::CompKind::Const0:
            netlist.addConst0();
            break;
          case circuit::CompKind::Const1:
            netlist.addConst1();
            break;
          case circuit::CompKind::Input:
            if (a >= num_ports)
                return nullptr;
            netlist.addInput(a);
            break;
          case circuit::CompKind::Dff:
            if (!a_ok)
                return nullptr;
            netlist.addDff(a);
            break;
          case circuit::CompKind::Not:
            if (!a_ok)
                return nullptr;
            netlist.addNot(a);
            break;
          case circuit::CompKind::And:
            if (!a_ok || !b_ok)
                return nullptr;
            netlist.addAnd(a, b);
            break;
          case circuit::CompKind::Adder:
            if (!a_ok || !b_ok)
                return nullptr;
            netlist.addAdder(a, b);
            break;
          case circuit::CompKind::Sub:
            if (!a_ok || !b_ok)
                return nullptr;
            netlist.addSub(a, b);
            break;
        }
    }
    // Every declared port must actually be driven: the builder derives
    // the port count from the highest port it saw.
    if (netlist.numInputPorts() != num_ports)
        return nullptr;
    for (const auto &out : outputs)
        if (out.node != circuit::kNoNode && out.node >= num_nodes)
            return nullptr;

    return std::make_shared<const core::CompiledMatrix>(
        DesignSerializer::build(std::move(netlist), std::move(outputs),
                                options, rows, cols, weight_bits,
                                output_bits, weight_ones,
                                drain_cycles));
}

} // namespace

const char *
loadStatusName(LoadStatus status)
{
    switch (status) {
      case LoadStatus::Ok:
        return "ok";
      case LoadStatus::NotFound:
        return "not found";
      case LoadStatus::BadMagic:
        return "bad magic";
      case LoadStatus::BadVersion:
        return "bad version";
      case LoadStatus::Truncated:
        return "truncated";
      case LoadStatus::ChecksumMismatch:
        return "checksum mismatch";
      case LoadStatus::Corrupt:
        return "corrupt";
    }
    return "unknown";
}

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= data[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::vector<std::uint8_t>
serializeDesign(const experiments::DesignKey &key,
                const core::TiledDesign &design)
{
    Writer payload;

    // Identity block: the full DesignKey, so a load can verify it got
    // the design it asked for (filenames are hashes, and hashes can —
    // in principle — collide).
    payload.u64(key.contentHash);
    payload.u64(key.rows);
    payload.u64(key.cols);
    payload.i64(key.checksum);
    writeOptions(payload, key.options);

    const core::TileOptions &tile = design.tileOptions();
    payload.u64(tile.onesBudget);
    payload.u64(tile.maxTileCols);

    const core::TilePlan &plan = design.plan();
    payload.u64(plan.lutBudget);
    payload.u64(plan.tiles.size());
    for (const core::Tile &t : plan.tiles) {
        payload.u64(t.colBegin);
        payload.u64(t.colEnd);
        payload.u64(t.estimatedLuts);
    }
    for (std::size_t i = 0; i < design.tileCount(); ++i)
        writeTile(payload, design.tile(i));

    Writer out;
    out.bytes.reserve(kHeaderBytes + payload.bytes.size());
    out.u32(kMagic);
    out.u32(kFormatVersion);
    out.u64(payload.bytes.size());
    out.u64(fnv1a(payload.bytes.data(), payload.bytes.size()));
    out.bytes.insert(out.bytes.end(), payload.bytes.begin(),
                     payload.bytes.end());
    return out.bytes;
}

LoadStatus
deserializeDesign(const std::uint8_t *data, std::size_t size,
                  std::shared_ptr<const core::TiledDesign> *design,
                  experiments::DesignKey *key)
{
    if (size < kHeaderBytes)
        return LoadStatus::Truncated;
    Reader header{data, kHeaderBytes};
    if (header.u32() != kMagic)
        return LoadStatus::BadMagic;
    if (header.u32() != kFormatVersion)
        return LoadStatus::BadVersion;
    const std::uint64_t payload_bytes = header.u64();
    const std::uint64_t checksum = header.u64();
    if (payload_bytes != size - kHeaderBytes)
        return LoadStatus::Truncated;
    const std::uint8_t *payload = data + kHeaderBytes;
    if (fnv1a(payload, payload_bytes) != checksum)
        return LoadStatus::ChecksumMismatch;

    Reader r{payload, payload_bytes};
    experiments::DesignKey loaded_key;
    loaded_key.contentHash = r.u64();
    loaded_key.rows = r.u64();
    loaded_key.cols = r.u64();
    loaded_key.checksum = r.i64();
    if (!readOptions(r, &loaded_key.options))
        return LoadStatus::Corrupt;
    if (loaded_key.rows == 0 || loaded_key.rows > kMaxReasonable ||
        loaded_key.cols == 0 || loaded_key.cols > kMaxReasonable)
        return LoadStatus::Corrupt;

    core::TileOptions tile;
    tile.onesBudget = r.u64();
    tile.maxTileCols = r.u64();

    core::TilePlan plan;
    plan.lutBudget = r.u64();
    const std::uint64_t tile_count = r.u64();
    if (r.failed || tile_count == 0 || tile_count > loaded_key.cols)
        return LoadStatus::Corrupt;
    std::size_t col = 0;
    for (std::uint64_t i = 0; i < tile_count; ++i) {
        core::Tile t;
        t.colBegin = r.u64();
        t.colEnd = r.u64();
        t.estimatedLuts = r.u64();
        if (r.failed || t.colBegin != col || t.colEnd <= t.colBegin ||
            t.colEnd > loaded_key.cols)
            return LoadStatus::Corrupt;
        col = t.colEnd;
        plan.tiles.push_back(t);
    }
    if (col != loaded_key.cols)
        return LoadStatus::Corrupt;

    std::vector<std::shared_ptr<const core::CompiledMatrix>> tiles;
    tiles.reserve(tile_count);
    for (const core::Tile &t : plan.tiles) {
        auto compiled = readTile(r, loaded_key.options,
                                 loaded_key.rows,
                                 t.colEnd - t.colBegin);
        if (compiled == nullptr)
            return LoadStatus::Corrupt;
        tiles.push_back(std::move(compiled));
    }
    if (r.failed || r.pos != payload_bytes)
        return LoadStatus::Corrupt;

    auto rebuilt = std::make_shared<const core::TiledDesign>(
        core::TiledDesign::fromTiles(std::move(plan), std::move(tiles),
                                     loaded_key.rows, tile));
    if (key != nullptr)
        *key = loaded_key;
    *design = std::move(rebuilt);
    return LoadStatus::Ok;
}

bool
saveDesignFile(const std::string &path,
               const experiments::DesignKey &key,
               const core::TiledDesign &design,
               bool *fsynced)
{
    namespace fs = std::filesystem;
    if (fsynced != nullptr)
        *fsynced = false;
    std::error_code ec;
    const fs::path target(path);
    if (target.has_parent_path()) {
        fs::create_directories(target.parent_path(), ec);
        if (ec) {
            SPATIAL_WARN("store: cannot create ",
                         target.parent_path().string(), ": ",
                         ec.message());
            return false;
        }
    }
    const auto bytes = serializeDesign(key, design);
    const fs::path tmp(path + ".tmp");
    // POSIX I/O instead of ofstream: the crash-safety contract needs
    // an fsync between the last write and the rename, and iostreams
    // expose no file descriptor.  Without the fsync, a power cut
    // after the rename could publish a durable name pointing at
    // not-yet-durable bytes — a torn file with a valid path.
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0) {
        SPATIAL_WARN("store: cannot open ", tmp.string(), ": ",
                     std::strerror(errno));
        return false;
    }
    std::size_t written = 0;
    while (written < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + written,
                    bytes.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            SPATIAL_WARN("store: cannot write ", tmp.string(), ": ",
                         std::strerror(errno));
            ::close(fd);
            fs::remove(tmp, ec);
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        SPATIAL_WARN("store: cannot fsync ", tmp.string(), ": ",
                     std::strerror(errno));
        ::close(fd);
        fs::remove(tmp, ec);
        return false;
    }
    ::close(fd);
    fs::rename(tmp, target, ec);
    if (ec) {
        SPATIAL_WARN("store: cannot rename ", tmp.string(), " -> ",
                     path, ": ", ec.message());
        fs::remove(tmp, ec);
        return false;
    }
    if (fsynced != nullptr)
        *fsynced = true;
    return true;
}

LoadStatus
loadDesignFile(const std::string &path,
               std::shared_ptr<const core::TiledDesign> *design,
               experiments::DesignKey *key)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return LoadStatus::NotFound;
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        return LoadStatus::Truncated;
    return deserializeDesign(bytes.data(), bytes.size(), design, key);
}

} // namespace spatial::store
