#include "store/cold_tier.h"

#include <cstdio>
#include <filesystem>

#include "common/fault.h"
#include "common/logging.h"

namespace spatial::store
{

namespace fs = std::filesystem;

ColdTier::ColdTier(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_))
        SPATIAL_FATAL("cold tier path ", dir_,
                      " is not a usable directory",
                      ec ? ": " : "", ec ? ec.message().c_str() : "");

    // Crash cleanup: a process killed mid-spill leaves a `*.tmp`
    // behind.  The rename that would have published it never ran, so
    // nothing references the file — sweep it.
    std::size_t orphans = 0;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        if (!entry.is_regular_file(ec) ||
            entry.path().extension() != ".tmp")
            continue;
        std::error_code remove_ec;
        if (fs::remove(entry.path(), remove_ec))
            ++orphans;
    }
    if (orphans != 0) {
        orphansRemoved_.store(orphans, std::memory_order_relaxed);
        SPATIAL_INFORM("cold tier: removed ", orphans,
                       " orphaned temp file(s) from ", dir_);
    }
}

std::string
ColdTier::pathFor(const experiments::DesignKey &key) const
{
    // Filename from the key hash plus the raw content hash: two
    // distinct designs land on one file only if both 64-bit values
    // collide, and even then the stored identity check catches it.
    char name[48];
    std::snprintf(name, sizeof name, "%016zx-%016llx.sptd",
                  experiments::DesignKeyHash{}(key),
                  static_cast<unsigned long long>(key.contentHash));
    return (fs::path(dir_) / name).string();
}

bool
ColdTier::put(const experiments::DesignKey &key,
              const core::TiledDesign &design)
{
    const std::string path = pathFor(key);
    // Injection site: the spill device is full / erroring (ENOSPC
    // model).  The design simply is not demoted; its next request
    // recompiles — the same contract as any real write failure.
    if (fault::injectFault(fault::Site::ColdWriteFail)) {
        SPATIAL_WARN("cold tier: injected write failure for ", path);
        writeFailures_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    bool synced = false;
    if (!saveDesignFile(path, key, design, &synced)) {
        writeFailures_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (synced)
        syncs_.fetch_add(1, std::memory_order_relaxed);
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    // Injection site: a torn write that survived a crash — the
    // published file is truncated, so the next load reports
    // Truncated and the store falls back to a recompile.
    if (fault::injectFault(fault::Site::ColdWriteShort) && !ec &&
        size > kHeaderBytes) {
        std::error_code resize_ec;
        fs::resize_file(path, size / 2, resize_ec);
        SPATIAL_WARN("cold tier: injected short write for ", path);
    }
    writes_.fetch_add(1, std::memory_order_relaxed);
    if (!ec)
        bytesWritten_.fetch_add(size, std::memory_order_relaxed);
    return true;
}

LoadStatus
ColdTier::get(const experiments::DesignKey &key,
              std::shared_ptr<const core::TiledDesign> *design)
{
    experiments::DesignKey stored;
    const LoadStatus status =
        loadDesignFile(pathFor(key), design, &stored);
    if (status == LoadStatus::NotFound)
        return status;
    if (status != LoadStatus::Ok) {
        loadFailures_.fetch_add(1, std::memory_order_relaxed);
        return status;
    }
    if (!(stored == key)) {
        loadFailures_.fetch_add(1, std::memory_order_relaxed);
        design->reset();
        return LoadStatus::Corrupt;
    }
    // Injection sites, applied only to loads that really succeeded
    // (a fault on a never-spilled key would just shadow NotFound):
    // a read I/O error, and post-load corruption — artifacts damaged
    // in a way the checksum did not catch.  Both degrade to the
    // caller's recompile fallback.
    if (fault::injectFault(fault::Site::ColdReadFail)) {
        loadFailures_.fetch_add(1, std::memory_order_relaxed);
        design->reset();
        return LoadStatus::Truncated;
    }
    if (fault::injectFault(fault::Site::ColdReadCorrupt)) {
        loadFailures_.fetch_add(1, std::memory_order_relaxed);
        design->reset();
        return LoadStatus::Corrupt;
    }
    loads_.fetch_add(1, std::memory_order_relaxed);
    return LoadStatus::Ok;
}

bool
ColdTier::contains(const experiments::DesignKey &key) const
{
    std::error_code ec;
    return fs::exists(pathFor(key), ec);
}

void
ColdTier::erase(const experiments::DesignKey &key)
{
    std::error_code ec;
    fs::remove(pathFor(key), ec);
}

ColdTierStats
ColdTier::stats() const
{
    ColdTierStats stats;
    stats.writes = writes_.load(std::memory_order_relaxed);
    stats.writeFailures =
        writeFailures_.load(std::memory_order_relaxed);
    stats.loads = loads_.load(std::memory_order_relaxed);
    stats.loadFailures = loadFailures_.load(std::memory_order_relaxed);
    stats.bytesWritten = bytesWritten_.load(std::memory_order_relaxed);
    stats.syncs = syncs_.load(std::memory_order_relaxed);
    stats.orphansRemoved =
        orphansRemoved_.load(std::memory_order_relaxed);
    return stats;
}

} // namespace spatial::store
