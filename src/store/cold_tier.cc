#include "store/cold_tier.h"

#include <cstdio>
#include <filesystem>

#include "common/logging.h"

namespace spatial::store
{

namespace fs = std::filesystem;

ColdTier::ColdTier(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_))
        SPATIAL_FATAL("cold tier path ", dir_,
                      " is not a usable directory",
                      ec ? ": " : "", ec ? ec.message().c_str() : "");
}

std::string
ColdTier::pathFor(const experiments::DesignKey &key) const
{
    // Filename from the key hash plus the raw content hash: two
    // distinct designs land on one file only if both 64-bit values
    // collide, and even then the stored identity check catches it.
    char name[48];
    std::snprintf(name, sizeof name, "%016zx-%016llx.sptd",
                  experiments::DesignKeyHash{}(key),
                  static_cast<unsigned long long>(key.contentHash));
    return (fs::path(dir_) / name).string();
}

bool
ColdTier::put(const experiments::DesignKey &key,
              const core::TiledDesign &design)
{
    const std::string path = pathFor(key);
    if (!saveDesignFile(path, key, design)) {
        writeFailures_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    writes_.fetch_add(1, std::memory_order_relaxed);
    if (!ec)
        bytesWritten_.fetch_add(size, std::memory_order_relaxed);
    return true;
}

LoadStatus
ColdTier::get(const experiments::DesignKey &key,
              std::shared_ptr<const core::TiledDesign> *design)
{
    experiments::DesignKey stored;
    const LoadStatus status =
        loadDesignFile(pathFor(key), design, &stored);
    if (status == LoadStatus::NotFound)
        return status;
    if (status != LoadStatus::Ok) {
        loadFailures_.fetch_add(1, std::memory_order_relaxed);
        return status;
    }
    if (!(stored == key)) {
        loadFailures_.fetch_add(1, std::memory_order_relaxed);
        design->reset();
        return LoadStatus::Corrupt;
    }
    loads_.fetch_add(1, std::memory_order_relaxed);
    return LoadStatus::Ok;
}

bool
ColdTier::contains(const experiments::DesignKey &key) const
{
    std::error_code ec;
    return fs::exists(pathFor(key), ec);
}

void
ColdTier::erase(const experiments::DesignKey &key)
{
    std::error_code ec;
    fs::remove(pathFor(key), ec);
}

ColdTierStats
ColdTier::stats() const
{
    ColdTierStats stats;
    stats.writes = writes_.load(std::memory_order_relaxed);
    stats.writeFailures =
        writeFailures_.load(std::memory_order_relaxed);
    stats.loads = loads_.load(std::memory_order_relaxed);
    stats.loadFailures = loadFailures_.load(std::memory_order_relaxed);
    stats.bytesWritten = bytesWritten_.load(std::memory_order_relaxed);
    return stats;
}

} // namespace spatial::store
