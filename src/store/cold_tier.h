/**
 * @file
 * The on-disk cold tier of the design store: a directory of
 * serialized designs keyed by design identity.
 *
 * FlashX-style tiering for the design catalog: the hot tier
 * (serve::DesignStore's LRU map) holds live TiledDesigns; when a
 * design is demoted it is serialized into this directory, and a later
 * request rematerializes it by loading the file — a linear netlist
 * replay plus ExecPlan rebuild, several times cheaper than
 * recompiling.  Filenames are derived from the DesignKey hash; the
 * stored identity block is verified on load, so a hash collision (or
 * a stale file from an incompatible revision) degrades to a miss,
 * never to serving the wrong design.
 *
 * Thread-safe: writes go through an atomic temp-file + rename, reads
 * open whichever complete file is current, and the counters are
 * atomics.  Durability is best-effort by design — a lost or corrupt
 * file only costs a recompile (see docs/store.md).
 */

#ifndef SPATIAL_STORE_COLD_TIER_H
#define SPATIAL_STORE_COLD_TIER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "store/format.h"

namespace spatial::store
{

/** Counters of one cold tier's traffic (point-in-time snapshot). */
struct ColdTierStats
{
    std::size_t writes = 0;        //!< designs spilled successfully
    std::size_t writeFailures = 0; //!< spills that failed (I/O)
    std::size_t loads = 0;         //!< designs rematerialized
    std::size_t loadFailures = 0;  //!< load attempts that failed
    std::uint64_t bytesWritten = 0; //!< serialized bytes spilled
    std::size_t syncs = 0;         //!< spills fsync'd before rename
    /** Orphaned `*.tmp` files (a crash mid-spill) swept at startup. */
    std::size_t orphansRemoved = 0;
};

/** Directory-backed cold tier of serialized designs. */
class ColdTier
{
  public:
    /**
     * Bind to `dir`, creating it (and parents) if needed; fatal only
     * when the path exists and is not a directory.  Sweeps orphaned
     * `*.tmp` files a killed process may have left mid-spill — they
     * are unreferenced by construction (a completed spill renames its
     * temp file away) and would otherwise accumulate forever.
     */
    explicit ColdTier(std::string dir);

    /** The backing directory. */
    const std::string &dir() const { return dir_; }

    /** The file path a key's design is stored under. */
    std::string pathFor(const experiments::DesignKey &key) const;

    /**
     * Spill a design; overwrites any previous file for the key.
     * Returns false (counted, warned) on I/O failure.
     */
    bool put(const experiments::DesignKey &key,
             const core::TiledDesign &design);

    /**
     * Rematerialize the design for `key`.  NotFound when the key was
     * never spilled; any other non-Ok status means the file exists but
     * could not be used (and the caller should recompile).  A stored
     * identity that does not match `key` is reported as Corrupt.
     */
    LoadStatus get(const experiments::DesignKey &key,
                   std::shared_ptr<const core::TiledDesign> *design);

    /** True when a file exists for the key (no validation). */
    bool contains(const experiments::DesignKey &key) const;

    /** Remove the key's file, if any. */
    void erase(const experiments::DesignKey &key);

    /** Current counters. */
    ColdTierStats stats() const;

  private:
    std::string dir_;
    std::atomic<std::size_t> writes_{0};
    std::atomic<std::size_t> writeFailures_{0};
    std::atomic<std::size_t> loads_{0};
    std::atomic<std::size_t> loadFailures_{0};
    std::atomic<std::uint64_t> bytesWritten_{0};
    std::atomic<std::size_t> syncs_{0};
    std::atomic<std::size_t> orphansRemoved_{0};
};

} // namespace spatial::store

#endif // SPATIAL_STORE_COLD_TIER_H
