/**
 * @file
 * On-disk serialization of compiled designs — the cold tier's file
 * format.
 *
 * A compiled design is expensive to produce (seconds at dim >= 2048)
 * but cheap to describe: the netlist is a flat SoA of (kind, srcA,
 * srcB) triples and everything else is a handful of scalars.  The
 * format therefore stores the netlist and the capture bookkeeping
 * verbatim and rebuilds the ExecPlan on load — plan construction is a
 * linear pass over the netlist, which is what makes loading a design
 * several times faster than recompiling it.
 *
 * Layout (all integers little-endian):
 *
 *   | field          | type | notes                                  |
 *   |----------------|------|----------------------------------------|
 *   | magic          | u32  | 0x44545053 ("SPTD")                    |
 *   | version        | u32  | kFormatVersion                         |
 *   | payload bytes  | u64  | length of everything after the header  |
 *   | checksum       | u64  | FNV-1a over the payload bytes          |
 *   | payload        | ...  | identity, tile plan, per-tile designs  |
 *
 * The payload carries the full experiments::DesignKey (content hash,
 * shape, element-sum guard, CompileOptions), the TileOptions and tile
 * plan, and per tile: scalar metadata, the column outputs, and the
 * raw netlist arrays.
 *
 * Trust model: files are validated, not trusted.  Loading checks the
 * magic, version, length, and checksum before touching the payload,
 * then structurally validates every field (kinds in range, SSA source
 * ordering, port density, shape consistency) while replaying the
 * netlist through the public builders — a corrupt or adversarial file
 * yields a LoadStatus error, never a crash or an out-of-range netlist.
 */

#ifndef SPATIAL_STORE_FORMAT_H
#define SPATIAL_STORE_FORMAT_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/tiled_design.h"
#include "experiments/design_cache.h"

/**
 * @namespace spatial::store
 * The memory-tiered design store: serialization of compiled designs
 * and the directory-backed cold tier behind serve::DesignStore.
 */
namespace spatial::store
{

/** Outcome of deserializing a design. */
enum class LoadStatus : std::uint8_t
{
    Ok,               //!< design reconstructed
    NotFound,         //!< no file for the key (cold-tier lookups)
    BadMagic,         //!< not a design file
    BadVersion,       //!< written by an incompatible format revision
    Truncated,        //!< shorter than the header or declared payload
    ChecksumMismatch, //!< payload bytes do not match the checksum
    Corrupt,          //!< checksum passed but the structure is invalid
};

/** Printable name of a load status. */
const char *loadStatusName(LoadStatus status);

/** File magic: "SPTD" (SPaTial Design), little-endian. */
constexpr std::uint32_t kMagic = 0x44545053u;

/** Current format revision; bumped on any layout change. */
constexpr std::uint32_t kFormatVersion = 1;

/** Header bytes before the payload (magic, version, length, sum). */
constexpr std::size_t kHeaderBytes = 24;

/** FNV-1a over a byte range (the payload checksum). */
std::uint64_t fnv1a(const std::uint8_t *data, std::size_t size);

/**
 * Serialize a design and its identity key to the wire format.
 * `key` must be the design's makeDesignKey identity — it is stored so
 * a load can verify it got the design it asked for.
 */
std::vector<std::uint8_t>
serializeDesign(const experiments::DesignKey &key,
                const core::TiledDesign &design);

/**
 * Reconstruct a design from serialized bytes.  On Ok, `*design` holds
 * the rebuilt design and `*key` (when non-null) its stored identity;
 * on any other status both are untouched.  Never throws and never
 * fatals on malformed input.
 */
LoadStatus deserializeDesign(const std::uint8_t *data, std::size_t size,
                             std::shared_ptr<const core::TiledDesign> *design,
                             experiments::DesignKey *key = nullptr);

/**
 * Write `design` to `path` atomically and durably: the bytes go to a
 * temp file which is fsync'd before the rename, so a crash at any
 * point leaves either the old file or the complete new one — never a
 * torn file — and parent directories are created as needed.  Returns
 * false (with a logged warning) on any I/O failure, including a
 * failed fsync — spilling is an optimization, never a correctness
 * requirement.  `*fsynced` (when non-null) reports whether the data
 * was fsync'd, i.e. it is true on every successful save.
 */
bool saveDesignFile(const std::string &path,
                    const experiments::DesignKey &key,
                    const core::TiledDesign &design,
                    bool *fsynced = nullptr);

/** Read and deserialize `path`; NotFound when the file is absent. */
LoadStatus loadDesignFile(const std::string &path,
                          std::shared_ptr<const core::TiledDesign> *design,
                          experiments::DesignKey *key = nullptr);

} // namespace spatial::store

#endif // SPATIAL_STORE_FORMAT_H
