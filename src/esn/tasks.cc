#include "esn/tasks.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/logging.h"

namespace spatial::esn
{

TaskData
makeNarma10(std::size_t length, Rng &rng)
{
    SPATIAL_ASSERT(length > 20, "NARMA-10 needs a longer sequence");
    TaskData data;
    data.inputs.resize(length);
    data.targets.resize(length, 0.0);
    for (auto &u : data.inputs)
        u = rng.uniformReal(0.0, 0.5);

    for (std::size_t t = 9; t + 1 < length; ++t) {
        double window = 0.0;
        for (std::size_t i = 0; i < 10; ++i)
            window += data.targets[t - i];
        double y = 0.3 * data.targets[t] +
                   0.05 * data.targets[t] * window +
                   1.5 * data.inputs[t - 9] * data.inputs[t] + 0.1;
        // The recurrence can blow up for unlucky draws; the standard
        // remedy is saturation.
        data.targets[t + 1] = std::clamp(y, -1.0, 1.0);
    }
    return data;
}

TaskData
makeMackeyGlass(std::size_t length, std::size_t horizon, double tau,
                double dt, double x0)
{
    SPATIAL_ASSERT(length > horizon, "series shorter than the horizon");
    SPATIAL_ASSERT(tau > 0 && dt > 0, "bad Mackey-Glass parameters");
    constexpr double beta = 0.2;
    constexpr double gamma = 0.1;
    constexpr double exponent = 10.0;

    // Integrate with RK4; the delayed term is linearly interpolated from
    // the stored trajectory.
    const auto delay_steps = static_cast<std::size_t>(tau / dt);
    const std::size_t warmup = delay_steps * 20;
    std::vector<double> series;
    series.reserve(warmup + length + horizon);
    series.push_back(x0);

    auto delayed = [&](double offset_steps) {
        const double pos =
            static_cast<double>(series.size() - 1) - offset_steps;
        if (pos <= 0.0)
            return x0;
        const auto lo = static_cast<std::size_t>(pos);
        const double frac = pos - static_cast<double>(lo);
        if (lo + 1 >= series.size())
            return series.back();
        return series[lo] * (1.0 - frac) + series[lo + 1] * frac;
    };
    auto f = [&](double x, double x_tau) {
        return beta * x_tau / (1.0 + std::pow(x_tau, exponent)) -
               gamma * x;
    };

    const double steps_per_tau = tau / dt;
    while (series.size() < warmup + length + horizon) {
        const double x = series.back();
        const double xt = delayed(steps_per_tau);
        const double xt_half = delayed(steps_per_tau - 0.5);
        const double k1 = f(x, xt);
        const double k2 = f(x + 0.5 * dt * k1, xt_half);
        const double k3 = f(x + 0.5 * dt * k2, xt_half);
        const double k4 = f(x + dt * k3, delayed(steps_per_tau - 1.0));
        series.push_back(x + dt / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4));
    }

    TaskData data;
    data.inputs.assign(series.begin() + static_cast<std::ptrdiff_t>(warmup),
                       series.begin() +
                           static_cast<std::ptrdiff_t>(warmup + length));
    data.targets.assign(
        series.begin() + static_cast<std::ptrdiff_t>(warmup + horizon),
        series.begin() +
            static_cast<std::ptrdiff_t>(warmup + horizon + length));
    return data;
}

const std::vector<double> kChannelSymbols{-3.0, -1.0, 1.0, 3.0};

TaskData
makeChannelEqualization(std::size_t length, double snr_db, Rng &rng)
{
    SPATIAL_ASSERT(length > 16, "sequence too short for the channel");
    // Transmitted 4-PAM symbols.
    std::vector<double> symbols(length + 16);
    for (auto &d : symbols)
        d = kChannelSymbols[static_cast<std::size_t>(
            rng.uniformInt(0, 3))];

    // Dispersive linear channel (Jaeger's equalization benchmark, as in
    // the FPGA implementation of citation [3]).
    auto d_at = [&](std::ptrdiff_t idx) {
        return symbols[static_cast<std::size_t>(
            std::clamp<std::ptrdiff_t>(idx, 0,
                                       static_cast<std::ptrdiff_t>(
                                           symbols.size() - 1)))];
    };
    const double signal_power = 5.0; // E[d^2] for 4-PAM {-3,-1,1,3}
    const double noise_std =
        std::sqrt(signal_power / std::pow(10.0, snr_db / 10.0));

    TaskData data;
    data.inputs.resize(length);
    data.targets.resize(length);
    for (std::size_t n = 0; n < length; ++n) {
        const auto i = static_cast<std::ptrdiff_t>(n) + 8;
        const double q = 0.08 * d_at(i + 2) - 0.12 * d_at(i + 1) +
                         1.0 * d_at(i) + 0.18 * d_at(i - 1) -
                         0.1 * d_at(i - 2) + 0.091 * d_at(i - 3) -
                         0.05 * d_at(i - 4) + 0.04 * d_at(i - 5) +
                         0.03 * d_at(i - 6) + 0.01 * d_at(i - 7);
        const double u = q + 0.036 * q * q - 0.011 * q * q * q;
        data.inputs[n] = u + noise_std * rng.gaussian();
        data.targets[n] = d_at(i - 2); // recover the delayed symbol
    }
    return data;
}

MemoryCapacityData
makeMemoryCapacity(std::size_t length, std::size_t max_delay, Rng &rng)
{
    SPATIAL_ASSERT(max_delay >= 1 && length > max_delay,
                   "bad memory-capacity shape");
    MemoryCapacityData data;
    data.inputs.resize(length);
    for (auto &u : data.inputs)
        u = rng.uniformReal(-1.0, 1.0);

    data.delayedTargets.resize(max_delay);
    for (std::size_t k = 1; k <= max_delay; ++k) {
        auto &target = data.delayedTargets[k - 1];
        target.resize(length, 0.0);
        for (std::size_t t = k; t < length; ++t)
            target[t] = data.inputs[t - k];
    }
    return data;
}

} // namespace spatial::esn
