/**
 * @file
 * Ridge regression readout — the only trained component of a reservoir
 * system (Section II: "W_out is trained via linear regression", which
 * "completely eliminates the need for error backpropagation").
 */

#ifndef SPATIAL_ESN_RIDGE_H
#define SPATIAL_ESN_RIDGE_H

#include "matrix/dense.h"

namespace spatial::esn
{

/**
 * Solve W = argmin ||X W - Y||^2 + lambda ||W||^2 via the normal
 * equations (X^T X + lambda I) W = X^T Y and a Cholesky solve.
 *
 * @param states X: T x D matrix of reservoir states (rows are steps).
 * @param targets Y: T x K matrix of training targets.
 * @param lambda ridge regularizer (>= 0; a tiny jitter is always added
 *        for numerical safety).
 * @return D x K readout weights.
 */
RealMatrix ridgeRegression(const RealMatrix &states,
                           const RealMatrix &targets, double lambda);

/** Apply a readout: Y = X W. */
RealMatrix applyReadout(const RealMatrix &states, const RealMatrix &w);

} // namespace spatial::esn

#endif // SPATIAL_ESN_RIDGE_H
