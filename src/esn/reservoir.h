/**
 * @file
 * Echo State Network reservoirs (Section II, equations 1-2):
 *
 *   x(n) = f(W_in u(n) + W x(n-1))      y(n) = W_out x(n)
 *
 * FloatReservoir is the classical tanh ESN used as the quality
 * reference.  IntReservoir is the integer ESN of Kleyko et al. (paper
 * citation [16]): quantized fixed weights, a saturating clip activation,
 * and a right-shift rescale — exactly the integer gemv the spatial
 * compiler accelerates, so its recurrent product runs on any
 * GemvBackend including the simulated hardware.
 */

#ifndef SPATIAL_ESN_RESERVOIR_H
#define SPATIAL_ESN_RESERVOIR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "esn/backend.h"
#include "matrix/dense.h"

namespace spatial::esn
{

/** Configuration shared by reservoir builders. */
struct ReservoirConfig
{
    std::size_t dim = 300;      //!< reservoir size
    std::size_t inputDim = 1;   //!< input channels
    double sparsity = 0.9;      //!< element sparsity of W (>=80% per [10])
    double spectralRadius = 0.9;
    double inputScale = 0.5;
    std::uint64_t seed = 42;
};

/** Fixed random reservoir weights (float form). */
struct ReservoirWeights
{
    RealMatrix w;   //!< dim x dim recurrent weights, spectral-scaled
    RealMatrix win; //!< inputDim x dim input weights
};

/** Build W and W_in per the usual heuristics (random sparse, scaled). */
ReservoirWeights makeReservoirWeights(const ReservoirConfig &config);

/** Classical float ESN. */
class FloatReservoir
{
  public:
    FloatReservoir(ReservoirWeights weights, ReservoirConfig config);

    /** Reset the state to zero. */
    void reset();

    /** Advance one step with input u (length inputDim); returns state. */
    const std::vector<double> &step(const std::vector<double> &u);

    /**
     * Run a full input sequence (T x inputDim); returns the T x dim
     * state trajectory.
     */
    RealMatrix run(const RealMatrix &inputs);

    const std::vector<double> &state() const { return state_; }
    std::size_t dim() const { return config_.dim; }

  private:
    ReservoirWeights weights_;
    ReservoirConfig config_;
    std::vector<double> state_;
};

/** Quantization parameters of the integer reservoir. */
struct IntReservoirConfig
{
    int weightBits = 4; //!< 3-4 bits lose no accuracy per [16]
    int stateBits = 8;  //!< activation width (the compiler's input width)

    /**
     * Right-shift applied to the accumulated pre-activation before the
     * clip; plays the role of the fixed-point weight scale.
     */
    int postShift = 0; //!< 0 = derive from the weight quantization scale
};

/**
 * Integer ESN: x(n) = clip((W_q x(n-1) + W_in_q u_q(n)) >> shift).
 *
 * The recurrent product is delegated to a GemvBackend; with a
 * SpatialBackend every update is a cycle-accurate simulation of the
 * paper's hardware.
 */
class IntReservoir
{
  public:
    /**
     * Quantize float weights and take ownership of the backend that
     * implements W_q (the backend must have been built from the same
     * quantized matrix; use makeIntReservoir for the common path).
     */
    IntReservoir(std::unique_ptr<GemvBackend> backend, IntMatrix win_q,
                 int win_shift, IntReservoirConfig config);

    void reset();

    /** One step with already-quantized input (stateBits range). */
    const std::vector<std::int64_t> &
    step(const std::vector<std::int64_t> &u_q);

    /** Run a quantized input sequence (T x inputDim). */
    IntMatrix run(const IntMatrix &inputs_q);

    const std::vector<std::int64_t> &state() const { return state_; }
    std::size_t dim() const { return backend_->cols(); }
    GemvBackend &backend() { return *backend_; }

  private:
    std::unique_ptr<GemvBackend> backend_;
    IntMatrix winQ_; //!< inputDim x dim quantized input weights
    int winShift_;
    IntReservoirConfig config_;
    std::vector<std::int64_t> state_;
};

/** How the integer reservoir's recurrent product is executed. */
enum class BackendKind
{
    Reference, //!< dense software gemv
    Csr,       //!< indexed sparse gemv
    Spatial,   //!< cycle-accurate simulation of the compiled netlist
};

/**
 * Build an integer reservoir from float weights: quantizes W and W_in,
 * compiles the spatial design when requested, and derives the
 * post-shift from the quantization scales so state magnitudes are
 * preserved across the recurrence.
 */
IntReservoir makeIntReservoir(const ReservoirWeights &weights,
                              const IntReservoirConfig &config,
                              BackendKind kind);

} // namespace spatial::esn

#endif // SPATIAL_ESN_RESERVOIR_H
