#include "esn/reservoir.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/compiler.h"
#include "esn/linalg.h"
#include "matrix/bits.h"

namespace spatial::esn
{

ReservoirWeights
makeReservoirWeights(const ReservoirConfig &config)
{
    SPATIAL_ASSERT(config.dim >= 1 && config.inputDim >= 1,
                   "bad reservoir shape");
    Rng rng(config.seed);

    // Sparse random recurrent weights, then rescale to the requested
    // spectral radius (the echo-state-property knob).
    RealMatrix w(config.dim, config.dim);
    for (std::size_t r = 0; r < config.dim; ++r)
        for (std::size_t c = 0; c < config.dim; ++c)
            if (!rng.bernoulli(config.sparsity))
                w.at(r, c) = rng.uniformReal(-1.0, 1.0);

    const double radius = spectralRadius(w, 100, config.seed + 1);
    if (radius > 1e-12) {
        const double scale = config.spectralRadius / radius;
        for (auto &v : w.mutableData())
            v *= scale;
    }

    RealMatrix win(config.inputDim, config.dim);
    for (std::size_t r = 0; r < config.inputDim; ++r)
        for (std::size_t c = 0; c < config.dim; ++c)
            win.at(r, c) = rng.uniformReal(-config.inputScale,
                                           config.inputScale);

    return ReservoirWeights{std::move(w), std::move(win)};
}

FloatReservoir::FloatReservoir(ReservoirWeights weights,
                               ReservoirConfig config)
    : weights_(std::move(weights)),
      config_(config),
      state_(config.dim, 0.0)
{
    SPATIAL_ASSERT(weights_.w.rows() == config_.dim &&
                       weights_.w.cols() == config_.dim,
                   "W shape mismatch");
    SPATIAL_ASSERT(weights_.win.rows() == config_.inputDim &&
                       weights_.win.cols() == config_.dim,
                   "W_in shape mismatch");
}

void
FloatReservoir::reset()
{
    std::fill(state_.begin(), state_.end(), 0.0);
}

const std::vector<double> &
FloatReservoir::step(const std::vector<double> &u)
{
    SPATIAL_ASSERT(u.size() == config_.inputDim, "input size ", u.size());
    const auto recurrent = gemvRef(state_, weights_.w);
    const auto driven = gemvRef(u, weights_.win);
    for (std::size_t i = 0; i < config_.dim; ++i)
        state_[i] = std::tanh(recurrent[i] + driven[i]);
    return state_;
}

RealMatrix
FloatReservoir::run(const RealMatrix &inputs)
{
    SPATIAL_ASSERT(inputs.cols() == config_.inputDim, "input width");
    RealMatrix states(inputs.rows(), config_.dim);
    std::vector<double> u(config_.inputDim);
    for (std::size_t t = 0; t < inputs.rows(); ++t) {
        for (std::size_t i = 0; i < config_.inputDim; ++i)
            u[i] = inputs.at(t, i);
        const auto &x = step(u);
        for (std::size_t i = 0; i < config_.dim; ++i)
            states.at(t, i) = x[i];
    }
    return states;
}

namespace
{

/** Power-of-two symmetric quantization: q = round(x * 2^shift). */
struct Pow2Quantized
{
    IntMatrix values;
    int shift;
};

Pow2Quantized
quantizePow2(const RealMatrix &m, int bits)
{
    const double max_abs = m.maxAbs();
    int shift = 0;
    if (max_abs > 0.0) {
        shift = static_cast<int>(std::floor(
            std::log2(static_cast<double>(maxSigned(bits)) / max_abs)));
        shift = std::clamp(shift, 0, 30);
    }
    Pow2Quantized q{IntMatrix(m.rows(), m.cols()), shift};
    const double scale = std::pow(2.0, shift);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) {
            const double v = m.at(r, c) * scale;
            q.values.at(r, c) = std::clamp<std::int64_t>(
                std::llround(v), minSigned(bits), maxSigned(bits));
        }
    }
    return q;
}

} // namespace

IntReservoir::IntReservoir(std::unique_ptr<GemvBackend> backend,
                           IntMatrix win_q, int win_shift,
                           IntReservoirConfig config)
    : backend_(std::move(backend)),
      winQ_(std::move(win_q)),
      winShift_(win_shift),
      config_(config),
      state_(backend_->rows(), 0)
{
    SPATIAL_ASSERT(backend_ != nullptr, "null backend");
    SPATIAL_ASSERT(backend_->rows() == backend_->cols(),
                   "reservoir W must be square");
    SPATIAL_ASSERT(winQ_.cols() == backend_->cols(), "W_in width");
    SPATIAL_ASSERT(config_.postShift >= 0, "postShift");
}

void
IntReservoir::reset()
{
    std::fill(state_.begin(), state_.end(), 0);
}

const std::vector<std::int64_t> &
IntReservoir::step(const std::vector<std::int64_t> &u_q)
{
    SPATIAL_ASSERT(u_q.size() == winQ_.rows(), "input size ", u_q.size());
    const auto recurrent = backend_->multiply(state_);
    const auto driven = gemvRef(u_q, winQ_);

    const int align = config_.postShift - winShift_;
    const std::int64_t lo = minSigned(config_.stateBits);
    const std::int64_t hi = maxSigned(config_.stateBits);
    for (std::size_t i = 0; i < state_.size(); ++i) {
        // Bring the input term to the recurrent term's 2^postShift scale.
        const std::int64_t aligned =
            align >= 0 ? driven[i] << align : driven[i] >> -align;
        const std::int64_t pre = recurrent[i] + aligned;
        // Saturating clip activation at stateBits (integer ESN of [16]).
        state_[i] = std::clamp(pre >> config_.postShift, lo, hi);
    }
    return state_;
}

IntMatrix
IntReservoir::run(const IntMatrix &inputs_q)
{
    SPATIAL_ASSERT(inputs_q.cols() == winQ_.rows(), "input width");
    IntMatrix states(inputs_q.rows(), dim());
    std::vector<std::int64_t> u(winQ_.rows());
    for (std::size_t t = 0; t < inputs_q.rows(); ++t) {
        for (std::size_t i = 0; i < u.size(); ++i)
            u[i] = inputs_q.at(t, i);
        const auto &x = step(u);
        for (std::size_t i = 0; i < x.size(); ++i)
            states.at(t, i) = x[i];
    }
    return states;
}

IntReservoir
makeIntReservoir(const ReservoirWeights &weights,
                 const IntReservoirConfig &config, BackendKind kind)
{
    const auto wq = quantizePow2(weights.w, config.weightBits);
    const auto winq = quantizePow2(weights.win, config.weightBits);

    std::unique_ptr<GemvBackend> backend;
    switch (kind) {
      case BackendKind::Reference:
        backend = std::make_unique<ReferenceBackend>(wq.values);
        break;
      case BackendKind::Csr:
        backend = std::make_unique<CsrBackend>(wq.values);
        break;
      case BackendKind::Spatial: {
        core::CompileOptions options;
        options.inputBits = config.stateBits;
        options.inputsSigned = true;
        options.signMode = core::SignMode::Csd;
        backend = std::make_unique<BatchedSpatialBackend>(
            core::MatrixCompiler(options).compile(wq.values));
        break;
      }
    }

    IntReservoirConfig final_config = config;
    if (final_config.postShift == 0)
        final_config.postShift = wq.shift;
    return IntReservoir(std::move(backend), winq.values, winq.shift,
                        final_config);
}

} // namespace spatial::esn
