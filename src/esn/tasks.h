/**
 * @file
 * Benchmark task generators for reservoir computing: the standard
 * sequence-learning problems the reservoir literature (and the paper's
 * citations [3], [5], [16]) evaluates on.
 */

#ifndef SPATIAL_ESN_TASKS_H
#define SPATIAL_ESN_TASKS_H

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace spatial::esn
{

/** An input/target pair of equal length. */
struct TaskData
{
    std::vector<double> inputs;
    std::vector<double> targets;
};

/**
 * NARMA-10: y(t+1) = 0.3 y(t) + 0.05 y(t) sum_{i<10} y(t-i)
 *           + 1.5 u(t-9) u(t) + 0.1, with u ~ U[0, 0.5].
 * The classic nonlinear autoregressive benchmark.
 */
TaskData makeNarma10(std::size_t length, Rng &rng);

/**
 * Mackey-Glass chaotic series, dx/dt = beta x(t-tau)/(1+x(t-tau)^10)
 * - gamma x(t), integrated with RK4; the task is `horizon`-step-ahead
 * prediction.
 */
TaskData makeMackeyGlass(std::size_t length, std::size_t horizon = 1,
                         double tau = 17.0, double dt = 1.0,
                         double x0 = 1.2);

/** Symbol alphabet of the channel-equalization task. */
extern const std::vector<double> kChannelSymbols; // {-3, -1, 1, 3}

/**
 * Nonlinear channel equalization (the task of the paper's citation [3]):
 * 4-PAM symbols pass a dispersive linear channel followed by a
 * polynomial nonlinearity and additive noise; the equalizer must recover
 * the symbol transmitted two steps earlier.
 *
 * @param snr_db signal-to-noise ratio of the additive Gaussian noise.
 */
TaskData makeChannelEqualization(std::size_t length, double snr_db,
                                 Rng &rng);

/**
 * Memory-capacity probe: inputs u ~ U[-1, 1]; target k is u delayed by
 * k steps.  Returns the shared input once and one target per delay.
 */
struct MemoryCapacityData
{
    std::vector<double> inputs;
    std::vector<std::vector<double>> delayedTargets; //!< [delay-1]
};

MemoryCapacityData makeMemoryCapacity(std::size_t length,
                                      std::size_t max_delay, Rng &rng);

} // namespace spatial::esn

#endif // SPATIAL_ESN_TASKS_H
