/**
 * @file
 * Quality metrics for reservoir tasks.
 */

#ifndef SPATIAL_ESN_METRICS_H
#define SPATIAL_ESN_METRICS_H

#include <vector>

namespace spatial::esn
{

/** Mean squared error. */
double meanSquaredError(const std::vector<double> &predictions,
                        const std::vector<double> &targets);

/** Normalized RMSE: rmse / std(targets). */
double nrmse(const std::vector<double> &predictions,
             const std::vector<double> &targets);

/** Squared Pearson correlation (the memory-capacity summand). */
double squaredCorrelation(const std::vector<double> &predictions,
                          const std::vector<double> &targets);

/**
 * Fraction of predictions that snap to the wrong symbol of a discrete
 * alphabet (channel equalization's figure of merit).
 */
double symbolErrorRate(const std::vector<double> &predictions,
                       const std::vector<double> &targets,
                       const std::vector<double> &alphabet);

} // namespace spatial::esn

#endif // SPATIAL_ESN_METRICS_H
