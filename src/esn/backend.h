/**
 * @file
 * Pluggable backends for the reservoir's recurrent W*x product — the
 * operation the paper accelerates.  The reference backend computes the
 * integer gemv in software; the CSR backend models an indexed sparse
 * implementation; the spatial backend streams the state vector through a
 * cycle-accurate simulation of the compiled bit-serial netlist, so an
 * entire ESN can run "on" the generated hardware.
 */

#ifndef SPATIAL_ESN_BACKEND_H
#define SPATIAL_ESN_BACKEND_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/batch_engine.h"
#include "core/compiled_matrix.h"
#include "matrix/csr.h"
#include "matrix/dense.h"

namespace spatial::esn
{

/** Computes o = x^T W for the reservoir's fixed W. */
class GemvBackend
{
  public:
    virtual ~GemvBackend() = default;

    /** Multiply the length-rows state vector; returns length-cols. */
    virtual std::vector<std::int64_t>
    multiply(const std::vector<std::int64_t> &x) = 0;

    /**
     * Multiply every row of `xs` (xs.cols() == rows()).  The rows are
     * independent, so backends may evaluate them in parallel; the
     * default implementation loops over multiply().
     */
    virtual IntMatrix multiplyBatch(const IntMatrix &xs);

    virtual std::size_t rows() const = 0;
    virtual std::size_t cols() const = 0;

    /** Human-readable backend name for reports. */
    virtual const char *name() const = 0;
};

/** Plain dense software gemv (the functional reference). */
class ReferenceBackend : public GemvBackend
{
  public:
    explicit ReferenceBackend(IntMatrix weights);

    std::vector<std::int64_t>
    multiply(const std::vector<std::int64_t> &x) override;
    std::size_t rows() const override { return weights_.rows(); }
    std::size_t cols() const override { return weights_.cols(); }
    const char *name() const override { return "reference"; }

  private:
    IntMatrix weights_;
};

/** Indexed CSR gemv (what a conventional sparse library executes). */
class CsrBackend : public GemvBackend
{
  public:
    explicit CsrBackend(const IntMatrix &weights);

    std::vector<std::int64_t>
    multiply(const std::vector<std::int64_t> &x) override;
    std::size_t rows() const override { return csr_.rows(); }
    std::size_t cols() const override { return csr_.cols(); }
    const char *name() const override { return "csr"; }

  private:
    CsrMatrix<std::int64_t> csr_;
};

/**
 * The paper's hardware: every multiply is a cycle-accurate simulation of
 * the compiled spatial design, executed on the compiled-tape engine
 * through a persistent TapeGemv (no per-call interpreter dispatch or
 * allocation).  Also accumulates the total simulated hardware cycles so
 * callers can report hardware time.
 */
class SpatialBackend : public GemvBackend
{
  public:
    explicit SpatialBackend(core::CompiledMatrix design);

    // The tape executor references the owned design; pin the object.
    SpatialBackend(const SpatialBackend &) = delete;
    SpatialBackend &operator=(const SpatialBackend &) = delete;

    std::vector<std::int64_t>
    multiply(const std::vector<std::int64_t> &x) override;
    std::size_t rows() const override { return design_.rows(); }
    std::size_t cols() const override { return design_.cols(); }
    const char *name() const override { return "spatial"; }

    const core::CompiledMatrix &design() const { return design_; }

    /** Total hardware cycles simulated across all multiplies. */
    std::uint64_t totalCycles() const { return totalCycles_; }

  protected:
    void addCycles(std::uint64_t cycles) { totalCycles_ += cycles; }

  private:
    core::CompiledMatrix design_;
    core::TapeGemv gemv_;
    std::uint64_t totalCycles_ = 0;
};

/**
 * SpatialBackend with a lane-parallel batch path: independent vectors
 * run through multiplyBatchWide on the multi-threaded, >64-lane
 * BlockSimulator engine, so batched workloads (equivalence sweeps,
 * readout evaluation over precomputed states, activity probes) cost one
 * netlist pass per 64*laneWords vectors.  Sequential recurrent updates
 * still take the persistent single-vector tape path via multiply().
 */
class BatchedSpatialBackend : public SpatialBackend
{
  public:
    explicit BatchedSpatialBackend(core::CompiledMatrix design,
                                   core::SimOptions sim_options = {});

    IntMatrix multiplyBatch(const IntMatrix &xs) override;
    const char *name() const override { return "spatial-batched"; }

  private:
    core::SimOptions simOptions_;
};

} // namespace spatial::esn

#endif // SPATIAL_ESN_BACKEND_H
