/**
 * @file
 * Small dense linear algebra for the ESN readout: products, Gram
 * matrices, Cholesky factorization, and SPD solves.  The sizes involved
 * (reservoir dimension squared) are small enough that straightforward
 * blocked-free implementations are appropriate.
 */

#ifndef SPATIAL_ESN_LINALG_H
#define SPATIAL_ESN_LINALG_H

#include <vector>

#include "matrix/dense.h"

namespace spatial::esn
{

/** C = A * B. */
RealMatrix matMul(const RealMatrix &a, const RealMatrix &b);

/** C = A^T * B (A is T x D, B is T x K, C is D x K). */
RealMatrix matTMul(const RealMatrix &a, const RealMatrix &b);

/** A^T as a new matrix. */
RealMatrix transpose(const RealMatrix &a);

/** A += lambda * I (A square). */
void addDiagonal(RealMatrix &a, double lambda);

/**
 * Cholesky factorization A = L L^T of a symmetric positive-definite
 * matrix; returns the lower factor.  Panics if A is not SPD (callers
 * regularize first).
 */
RealMatrix cholesky(const RealMatrix &a);

/**
 * Solve A X = B for X with A symmetric positive definite (via
 * Cholesky), B being D x K.
 */
RealMatrix solveSpd(const RealMatrix &a, const RealMatrix &b);

/** Estimate the spectral radius of a square matrix by power iteration. */
double spectralRadius(const RealMatrix &a, int iterations = 100,
                      std::uint64_t seed = 1);

/** Frobenius norm. */
double frobeniusNorm(const RealMatrix &a);

} // namespace spatial::esn

#endif // SPATIAL_ESN_LINALG_H
