#include "esn/capacity.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "esn/metrics.h"
#include "esn/ridge.h"
#include "esn/tasks.h"
#include "matrix/bits.h"
#include "matrix/quantize.h"

namespace spatial::esn
{

namespace
{

/**
 * Shared core: given the state trajectory (T x D, already augmented)
 * and the raw inputs, train all delay readouts at once and score them.
 */
MemoryCapacityResult
scoreDelays(const RealMatrix &states, const std::vector<double> &inputs,
            std::size_t max_delay, std::size_t washout, double lambda)
{
    const std::size_t length = inputs.size();
    SPATIAL_ASSERT(washout > max_delay,
                   "washout must exceed the longest delay");
    const std::size_t usable = length - washout;

    RealMatrix x(usable, states.cols());
    for (std::size_t t = 0; t < usable; ++t)
        for (std::size_t d = 0; d < states.cols(); ++d)
            x.at(t, d) = states.at(t + washout, d);

    RealMatrix targets(usable, max_delay);
    for (std::size_t k = 1; k <= max_delay; ++k)
        for (std::size_t t = 0; t < usable; ++t)
            targets.at(t, k - 1) = inputs[t + washout - k];

    const RealMatrix wout = ridgeRegression(x, targets, lambda);
    const RealMatrix fit = applyReadout(x, wout);

    MemoryCapacityResult result;
    result.perDelay.resize(max_delay);
    std::vector<double> pred(usable), truth(usable);
    for (std::size_t k = 0; k < max_delay; ++k) {
        for (std::size_t t = 0; t < usable; ++t) {
            pred[t] = fit.at(t, k);
            truth[t] = targets.at(t, k);
        }
        result.perDelay[k] = squaredCorrelation(pred, truth);
        result.total += result.perDelay[k];
    }
    return result;
}

} // namespace

MemoryCapacityResult
measureMemoryCapacity(FloatReservoir &reservoir, std::size_t max_delay,
                      std::size_t length, std::size_t washout,
                      double lambda, Rng &rng)
{
    const auto data = makeMemoryCapacity(length, max_delay, rng);

    reservoir.reset();
    RealMatrix states(length, reservoir.dim() + 1);
    for (std::size_t t = 0; t < length; ++t) {
        const auto &x = reservoir.step({data.inputs[t]});
        for (std::size_t d = 0; d < reservoir.dim(); ++d)
            states.at(t, d) = x[d];
        states.at(t, reservoir.dim()) = 1.0; // bias
    }
    return scoreDelays(states, data.inputs, max_delay, washout, lambda);
}

MemoryCapacityResult
measureMemoryCapacity(IntReservoir &reservoir, std::size_t max_delay,
                      std::size_t length, std::size_t washout,
                      double lambda, Rng &rng)
{
    const auto data = makeMemoryCapacity(length, max_delay, rng);

    // Quantize inputs to the state width; u in [-1, 1].
    const int state_bits = 8;
    const double scale = static_cast<double>(maxSigned(state_bits));
    const auto u_q = quantizeWithScale(data.inputs, scale, state_bits);

    reservoir.reset();
    RealMatrix states(length, reservoir.dim() + 1);
    for (std::size_t t = 0; t < length; ++t) {
        const auto &x = reservoir.step({u_q[t]});
        for (std::size_t d = 0; d < reservoir.dim(); ++d)
            states.at(t, d) = static_cast<double>(x[d]) / scale;
        states.at(t, reservoir.dim()) = 1.0;
    }
    return scoreDelays(states, data.inputs, max_delay, washout, lambda);
}

} // namespace spatial::esn
