#include "esn/linalg.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace spatial::esn
{

RealMatrix
matMul(const RealMatrix &a, const RealMatrix &b)
{
    SPATIAL_ASSERT(a.cols() == b.rows(), "matMul shape ", a.cols(), " vs ",
                   b.rows());
    RealMatrix c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const double aik = a.at(i, k);
            if (aik == 0.0)
                continue;
            for (std::size_t j = 0; j < b.cols(); ++j)
                c.at(i, j) += aik * b.at(k, j);
        }
    }
    return c;
}

RealMatrix
matTMul(const RealMatrix &a, const RealMatrix &b)
{
    SPATIAL_ASSERT(a.rows() == b.rows(), "matTMul shape ", a.rows(), " vs ",
                   b.rows());
    RealMatrix c(a.cols(), b.cols());
    for (std::size_t t = 0; t < a.rows(); ++t) {
        for (std::size_t i = 0; i < a.cols(); ++i) {
            const double ati = a.at(t, i);
            if (ati == 0.0)
                continue;
            for (std::size_t j = 0; j < b.cols(); ++j)
                c.at(i, j) += ati * b.at(t, j);
        }
    }
    return c;
}

RealMatrix
transpose(const RealMatrix &a)
{
    RealMatrix t(a.cols(), a.rows());
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            t.at(c, r) = a.at(r, c);
    return t;
}

void
addDiagonal(RealMatrix &a, double lambda)
{
    SPATIAL_ASSERT(a.rows() == a.cols(), "addDiagonal needs square");
    for (std::size_t i = 0; i < a.rows(); ++i)
        a.at(i, i) += lambda;
}

RealMatrix
cholesky(const RealMatrix &a)
{
    SPATIAL_ASSERT(a.rows() == a.cols(), "cholesky needs square");
    const std::size_t n = a.rows();
    RealMatrix l(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = a.at(i, j);
            for (std::size_t k = 0; k < j; ++k)
                sum -= l.at(i, k) * l.at(j, k);
            if (i == j) {
                SPATIAL_ASSERT(sum > 0.0,
                               "matrix not positive definite at pivot ", i,
                               " (", sum, ")");
                l.at(i, i) = std::sqrt(sum);
            } else {
                l.at(i, j) = sum / l.at(j, j);
            }
        }
    }
    return l;
}

RealMatrix
solveSpd(const RealMatrix &a, const RealMatrix &b)
{
    SPATIAL_ASSERT(a.rows() == b.rows(), "solveSpd shape");
    const RealMatrix l = cholesky(a);
    const std::size_t n = a.rows();
    const std::size_t k = b.cols();

    // Forward substitution: L Y = B.
    RealMatrix y(n, k);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t c = 0; c < k; ++c) {
            double sum = b.at(i, c);
            for (std::size_t j = 0; j < i; ++j)
                sum -= l.at(i, j) * y.at(j, c);
            y.at(i, c) = sum / l.at(i, i);
        }
    }
    // Back substitution: L^T X = Y.
    RealMatrix x(n, k);
    for (std::size_t ii = n; ii-- > 0;) {
        for (std::size_t c = 0; c < k; ++c) {
            double sum = y.at(ii, c);
            for (std::size_t j = ii + 1; j < n; ++j)
                sum -= l.at(j, ii) * x.at(j, c);
            x.at(ii, c) = sum / l.at(ii, ii);
        }
    }
    return x;
}

double
spectralRadius(const RealMatrix &a, int iterations, std::uint64_t seed)
{
    SPATIAL_ASSERT(a.rows() == a.cols(), "spectralRadius needs square");
    const std::size_t n = a.rows();
    if (n == 0)
        return 0.0;

    Rng rng(seed);
    std::vector<double> v(n);
    for (auto &x : v)
        x = rng.gaussian();

    double estimate = 0.0;
    for (int it = 0; it < iterations; ++it) {
        // w = A v.
        std::vector<double> w(n, 0.0);
        for (std::size_t r = 0; r < n; ++r) {
            double sum = 0.0;
            for (std::size_t c = 0; c < n; ++c)
                sum += a.at(r, c) * v[c];
            w[r] = sum;
        }
        double norm = 0.0;
        for (const auto x : w)
            norm += x * x;
        norm = std::sqrt(norm);
        if (norm < 1e-30)
            return 0.0;
        estimate = norm;
        for (std::size_t i = 0; i < n; ++i)
            v[i] = w[i] / norm;
    }
    return estimate;
}

double
frobeniusNorm(const RealMatrix &a)
{
    double sum = 0.0;
    for (const auto x : a.data())
        sum += x * x;
    return std::sqrt(sum);
}

} // namespace spatial::esn
