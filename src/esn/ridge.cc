#include "esn/ridge.h"

#include "common/logging.h"
#include "esn/linalg.h"

namespace spatial::esn
{

RealMatrix
ridgeRegression(const RealMatrix &states, const RealMatrix &targets,
                double lambda)
{
    SPATIAL_ASSERT(states.rows() == targets.rows(),
                   "ridge: ", states.rows(), " state rows vs ",
                   targets.rows(), " target rows");
    SPATIAL_ASSERT(lambda >= 0.0, "negative lambda");

    RealMatrix gram = matTMul(states, states);
    // Always add a whiff of jitter so rank-deficient state matrices
    // (washed-out reservoirs, constant columns) stay factorable.
    addDiagonal(gram, lambda + 1e-10);
    const RealMatrix rhs = matTMul(states, targets);
    return solveSpd(gram, rhs);
}

RealMatrix
applyReadout(const RealMatrix &states, const RealMatrix &w)
{
    return matMul(states, w);
}

} // namespace spatial::esn
