#include "esn/backend.h"

namespace spatial::esn
{

ReferenceBackend::ReferenceBackend(IntMatrix weights)
    : weights_(std::move(weights))
{}

std::vector<std::int64_t>
ReferenceBackend::multiply(const std::vector<std::int64_t> &x)
{
    return gemvRef(x, weights_);
}

CsrBackend::CsrBackend(const IntMatrix &weights)
    : csr_(CsrMatrix<std::int64_t>::fromDense(weights))
{}

std::vector<std::int64_t>
CsrBackend::multiply(const std::vector<std::int64_t> &x)
{
    return csr_.multiplyLeft(x);
}

SpatialBackend::SpatialBackend(core::CompiledMatrix design)
    : design_(std::move(design)), simulator_(design_.netlist())
{}

std::vector<std::int64_t>
SpatialBackend::multiply(const std::vector<std::int64_t> &x)
{
    auto result = design_.multiplyWith(simulator_, x);
    totalCycles_ += design_.drainCycles();
    return result;
}

} // namespace spatial::esn
