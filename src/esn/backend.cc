#include "esn/backend.h"

namespace spatial::esn
{

IntMatrix
GemvBackend::multiplyBatch(const IntMatrix &xs)
{
    if (xs.cols() != rows())
        SPATIAL_FATAL("batch width ", xs.cols(), " != rows ", rows());
    IntMatrix out(xs.rows(), cols());
    std::vector<std::int64_t> x(rows());
    for (std::size_t b = 0; b < xs.rows(); ++b) {
        for (std::size_t r = 0; r < x.size(); ++r)
            x[r] = xs.at(b, r);
        const auto o = multiply(x);
        for (std::size_t c = 0; c < o.size(); ++c)
            out.at(b, c) = o[c];
    }
    return out;
}

ReferenceBackend::ReferenceBackend(IntMatrix weights)
    : weights_(std::move(weights))
{}

std::vector<std::int64_t>
ReferenceBackend::multiply(const std::vector<std::int64_t> &x)
{
    return gemvRef(x, weights_);
}

CsrBackend::CsrBackend(const IntMatrix &weights)
    : csr_(CsrMatrix<std::int64_t>::fromDense(weights))
{}

std::vector<std::int64_t>
CsrBackend::multiply(const std::vector<std::int64_t> &x)
{
    return csr_.multiplyLeft(x);
}

SpatialBackend::SpatialBackend(core::CompiledMatrix design)
    : design_(std::move(design)), gemv_(design_)
{}

std::vector<std::int64_t>
SpatialBackend::multiply(const std::vector<std::int64_t> &x)
{
    auto result = gemv_.multiply(x);
    totalCycles_ += design_.drainCycles();
    return result;
}

BatchedSpatialBackend::BatchedSpatialBackend(core::CompiledMatrix design,
                                             core::SimOptions sim_options)
    : SpatialBackend(std::move(design)), simOptions_(sim_options)
{}

IntMatrix
BatchedSpatialBackend::multiplyBatch(const IntMatrix &xs)
{
    const auto out = design().multiplyBatchWide(xs, simOptions_);
    // Hardware cost accounting: one drain per netlist pass, one pass per
    // lane group.
    const std::size_t lanes =
        64 * core::resolvedLaneWords(design(), simOptions_, xs.rows());
    const std::size_t groups =
        xs.rows() == 0 ? 0 : (xs.rows() + lanes - 1) / lanes;
    addCycles(static_cast<std::uint64_t>(groups) * design().drainCycles());
    return out;
}

} // namespace spatial::esn
