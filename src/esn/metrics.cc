#include "esn/metrics.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace spatial::esn
{

namespace
{

void
checkShapes([[maybe_unused]] const std::vector<double> &a,
            [[maybe_unused]] const std::vector<double> &b)
{
    SPATIAL_ASSERT(a.size() == b.size() && !a.empty(),
                   "metric shapes: ", a.size(), " vs ", b.size());
}

} // namespace

double
meanSquaredError(const std::vector<double> &predictions,
                 const std::vector<double> &targets)
{
    checkShapes(predictions, targets);
    double sum = 0.0;
    for (std::size_t i = 0; i < predictions.size(); ++i) {
        const double e = predictions[i] - targets[i];
        sum += e * e;
    }
    return sum / static_cast<double>(predictions.size());
}

double
nrmse(const std::vector<double> &predictions,
      const std::vector<double> &targets)
{
    checkShapes(predictions, targets);
    double mean = 0.0;
    for (const auto t : targets)
        mean += t;
    mean /= static_cast<double>(targets.size());
    double var = 0.0;
    for (const auto t : targets)
        var += (t - mean) * (t - mean);
    var /= static_cast<double>(targets.size());
    if (var < 1e-300)
        return std::sqrt(meanSquaredError(predictions, targets));
    return std::sqrt(meanSquaredError(predictions, targets) / var);
}

double
squaredCorrelation(const std::vector<double> &predictions,
                   const std::vector<double> &targets)
{
    checkShapes(predictions, targets);
    const auto n = static_cast<double>(predictions.size());
    double mp = 0.0, mt = 0.0;
    for (std::size_t i = 0; i < predictions.size(); ++i) {
        mp += predictions[i];
        mt += targets[i];
    }
    mp /= n;
    mt /= n;
    double cov = 0.0, vp = 0.0, vt = 0.0;
    for (std::size_t i = 0; i < predictions.size(); ++i) {
        const double dp = predictions[i] - mp;
        const double dt = targets[i] - mt;
        cov += dp * dt;
        vp += dp * dp;
        vt += dt * dt;
    }
    if (vp < 1e-300 || vt < 1e-300)
        return 0.0;
    return (cov * cov) / (vp * vt);
}

double
symbolErrorRate(const std::vector<double> &predictions,
                const std::vector<double> &targets,
                const std::vector<double> &alphabet)
{
    checkShapes(predictions, targets);
    SPATIAL_ASSERT(!alphabet.empty(), "empty alphabet");
    auto snap = [&](double v) {
        double best = alphabet[0];
        double best_dist = std::numeric_limits<double>::infinity();
        for (const auto s : alphabet) {
            const double d = std::abs(v - s);
            if (d < best_dist) {
                best_dist = d;
                best = s;
            }
        }
        return best;
    };
    std::size_t errors = 0;
    for (std::size_t i = 0; i < predictions.size(); ++i)
        errors += snap(predictions[i]) != snap(targets[i]);
    return static_cast<double>(errors) /
           static_cast<double>(predictions.size());
}

} // namespace spatial::esn
