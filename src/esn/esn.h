/**
 * @file
 * High-level Echo State Network: reservoir + trained linear readout,
 * for both the float reference path and the integer/hardware path.
 */

#ifndef SPATIAL_ESN_ESN_H
#define SPATIAL_ESN_ESN_H

#include <cstdint>
#include <vector>

#include "esn/reservoir.h"
#include "matrix/dense.h"

namespace spatial::esn
{

/** Training outcome. */
struct TrainResult
{
    double trainNrmse = 0.0;
};

/**
 * Float ESN pipeline: run the reservoir over a scalar input sequence,
 * drop a washout prefix, train W_out by ridge regression (states are
 * augmented with the raw input and a bias term), and predict.
 */
class EchoStateNetwork
{
  public:
    EchoStateNetwork(ReservoirWeights weights, ReservoirConfig config);

    /** Train on (inputs, targets); returns the training NRMSE. */
    TrainResult train(const std::vector<double> &inputs,
                      const std::vector<double> &targets,
                      std::size_t washout, double lambda);

    /**
     * Predict over an input sequence (resets the reservoir).  The first
     * `washout` outputs are produced but unreliable.
     */
    std::vector<double> predict(const std::vector<double> &inputs);

    const RealMatrix &readout() const { return wout_; }

  private:
    /** States augmented with [input, 1] columns. */
    RealMatrix collectStates(const std::vector<double> &inputs);

    FloatReservoir reservoir_;
    RealMatrix wout_;
    bool trained_ = false;
};

/**
 * Integer/hardware ESN pipeline: quantizes the inputs, runs an
 * IntReservoir (optionally on the simulated spatial hardware), trains a
 * float readout on the dequantized states.
 */
class IntEchoStateNetwork
{
  public:
    IntEchoStateNetwork(const ReservoirWeights &weights,
                        const IntReservoirConfig &config, BackendKind kind);

    TrainResult train(const std::vector<double> &inputs,
                      const std::vector<double> &targets,
                      std::size_t washout, double lambda);

    std::vector<double> predict(const std::vector<double> &inputs);

    IntReservoir &reservoir() { return reservoir_; }

  private:
    RealMatrix collectStates(const std::vector<double> &inputs);

    IntReservoir reservoir_;
    int stateBits_;
    double inputScale_ = 0.0; //!< fixed at first train() call
    RealMatrix wout_;
    bool trained_ = false;
};

} // namespace spatial::esn

#endif // SPATIAL_ESN_ESN_H
