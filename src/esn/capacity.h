/**
 * @file
 * Linear memory capacity of a reservoir: MC = sum_k r^2(y_k, u(t-k))
 * over delays k, with one linear readout per delay trained jointly by
 * multi-target ridge regression.  MC is the standard probe of how much
 * input history the recurrent W keeps alive — the property the paper's
 * fixed sparse matrices exist to provide.
 */

#ifndef SPATIAL_ESN_CAPACITY_H
#define SPATIAL_ESN_CAPACITY_H

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "esn/reservoir.h"

namespace spatial::esn
{

/** Per-delay and total memory capacity. */
struct MemoryCapacityResult
{
    std::vector<double> perDelay; //!< r^2 for delays 1..maxDelay
    double total = 0.0;           //!< sum over delays
};

/**
 * Measure the memory capacity of a float reservoir.
 *
 * @param reservoir probed reservoir (reset internally).
 * @param max_delay longest probed delay.
 * @param length input sequence length.
 * @param washout dropped prefix.
 * @param lambda ridge regularizer.
 * @param rng source of the uniform input sequence.
 */
MemoryCapacityResult measureMemoryCapacity(FloatReservoir &reservoir,
                                           std::size_t max_delay,
                                           std::size_t length,
                                           std::size_t washout,
                                           double lambda, Rng &rng);

/** Same probe for an integer reservoir (hardware path capable). */
MemoryCapacityResult measureMemoryCapacity(IntReservoir &reservoir,
                                           std::size_t max_delay,
                                           std::size_t length,
                                           std::size_t washout,
                                           double lambda, Rng &rng);

} // namespace spatial::esn

#endif // SPATIAL_ESN_CAPACITY_H
