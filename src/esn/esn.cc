#include "esn/esn.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "esn/metrics.h"
#include "esn/ridge.h"
#include "matrix/bits.h"
#include "matrix/quantize.h"

namespace spatial::esn
{

namespace
{

/** Copy a scalar sequence into a T x 1 matrix. */
RealMatrix
toColumn(const std::vector<double> &v)
{
    RealMatrix m(v.size(), 1);
    for (std::size_t t = 0; t < v.size(); ++t)
        m.at(t, 0) = v[t];
    return m;
}

/** Drop the first `washout` rows. */
RealMatrix
dropWashout(const RealMatrix &m, std::size_t washout)
{
    SPATIAL_ASSERT(washout < m.rows(), "washout ", washout,
                   " swallows the whole sequence of ", m.rows());
    RealMatrix out(m.rows() - washout, m.cols());
    for (std::size_t r = washout; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            out.at(r - washout, c) = m.at(r, c);
    return out;
}

std::vector<double>
columnToVector(const RealMatrix &m)
{
    std::vector<double> v(m.rows());
    for (std::size_t t = 0; t < m.rows(); ++t)
        v[t] = m.at(t, 0);
    return v;
}

} // namespace

EchoStateNetwork::EchoStateNetwork(ReservoirWeights weights,
                                   ReservoirConfig config)
    : reservoir_(std::move(weights), config)
{
    SPATIAL_ASSERT(config.inputDim == 1,
                   "the high-level pipeline is single-channel");
}

RealMatrix
EchoStateNetwork::collectStates(const std::vector<double> &inputs)
{
    reservoir_.reset();
    const std::size_t dim = reservoir_.dim();
    RealMatrix states(inputs.size(), dim + 2);
    std::vector<double> u(1);
    for (std::size_t t = 0; t < inputs.size(); ++t) {
        u[0] = inputs[t];
        const auto &x = reservoir_.step(u);
        for (std::size_t i = 0; i < dim; ++i)
            states.at(t, i) = x[i];
        states.at(t, dim) = inputs[t]; // direct input tap
        states.at(t, dim + 1) = 1.0;   // bias
    }
    return states;
}

TrainResult
EchoStateNetwork::train(const std::vector<double> &inputs,
                        const std::vector<double> &targets,
                        std::size_t washout, double lambda)
{
    SPATIAL_ASSERT(inputs.size() == targets.size(), "sequence lengths");
    const RealMatrix states = dropWashout(collectStates(inputs), washout);
    const RealMatrix y =
        dropWashout(toColumn(targets), washout);
    wout_ = ridgeRegression(states, y, lambda);
    trained_ = true;

    const auto fit = columnToVector(applyReadout(states, wout_));
    TrainResult result;
    result.trainNrmse = nrmse(fit, columnToVector(y));
    return result;
}

std::vector<double>
EchoStateNetwork::predict(const std::vector<double> &inputs)
{
    SPATIAL_ASSERT(trained_, "predict before train");
    const RealMatrix states = collectStates(inputs);
    return columnToVector(applyReadout(states, wout_));
}

IntEchoStateNetwork::IntEchoStateNetwork(const ReservoirWeights &weights,
                                         const IntReservoirConfig &config,
                                         BackendKind kind)
    : reservoir_(makeIntReservoir(weights, config, kind)),
      stateBits_(config.stateBits)
{}

RealMatrix
IntEchoStateNetwork::collectStates(const std::vector<double> &inputs)
{
    reservoir_.reset();
    const std::size_t dim = reservoir_.dim();
    const auto u_q = quantizeWithScale(inputs, inputScale_, stateBits_);
    const double state_scale = static_cast<double>(maxSigned(stateBits_));

    RealMatrix states(inputs.size(), dim + 2);
    std::vector<std::int64_t> u(1);
    for (std::size_t t = 0; t < inputs.size(); ++t) {
        u[0] = u_q[t];
        const auto &x = reservoir_.step(u);
        for (std::size_t i = 0; i < dim; ++i)
            states.at(t, i) = static_cast<double>(x[i]) / state_scale;
        states.at(t, dim) = inputs[t];
        states.at(t, dim + 1) = 1.0;
    }
    return states;
}

TrainResult
IntEchoStateNetwork::train(const std::vector<double> &inputs,
                           const std::vector<double> &targets,
                           std::size_t washout, double lambda)
{
    SPATIAL_ASSERT(inputs.size() == targets.size(), "sequence lengths");
    if (inputScale_ == 0.0) {
        double max_abs = 1e-12;
        for (const auto v : inputs)
            max_abs = std::max(max_abs, std::abs(v));
        inputScale_ =
            static_cast<double>(maxSigned(stateBits_)) / max_abs;
    }

    const RealMatrix states = dropWashout(collectStates(inputs), washout);
    const RealMatrix y = dropWashout(toColumn(targets), washout);
    wout_ = ridgeRegression(states, y, lambda);
    trained_ = true;

    const auto fit = columnToVector(applyReadout(states, wout_));
    TrainResult result;
    result.trainNrmse = nrmse(fit, columnToVector(y));
    return result;
}

std::vector<double>
IntEchoStateNetwork::predict(const std::vector<double> &inputs)
{
    SPATIAL_ASSERT(trained_, "predict before train");
    const RealMatrix states = collectStates(inputs);
    return columnToVector(applyReadout(states, wout_));
}

} // namespace spatial::esn
