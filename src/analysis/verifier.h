/**
 * @file
 * Static verification of every compiled artifact the engine produces.
 *
 * Each layer of the compilation pipeline — Netlist, ExecPlan,
 * Segmentation, TilePlan, generated JIT source, and the `.sptd`
 * serialization — carries invariants the executors *assume* rather
 * than re-check on the hot path (SSA source ordering, hazard-free
 * commit order, exact segment partitions, constant-folded byte
 * offsets, ...).  This verifier re-derives every one of those
 * invariants from first principles and checks an artifact against
 * them **without executing it**: no simulation, no toolchain, no
 * dlopen.  A violation names the exact rule (a stable `NET-*` /
 * `PLAN-*` / `SEG-*` / `TILE-*` / `JIT-*` / `FILE-*` / `COMPILE-*`
 * id) plus the offending op/slot index, so a corrupted store file, a
 * hostile remote registration, or a compiler regression is diagnosed
 * in one line instead of as a downstream miscompare.
 *
 * Three consumers share this code (see docs/analysis.md for the full
 * rule catalog):
 *
 *  - the `spatial-lint` CLI sweeps designs (registry grid, a single
 *    design, or `.sptd` files) and exits non-zero on any error;
 *  - debug builds hook admission: serve::DesignStore verifies designs
 *    it compiles or cold-loads, and the NetServer registrar rejects
 *    registrations whose artifacts fail with a named diagnostic;
 *  - tests/analysis_test.cc mutates the *View snapshots below and
 *    asserts the exact rule each corruption trips.
 *
 * The *View structs are plain-data copies of the live artifacts.
 * Checks run on views, never on the artifacts directly, so a test can
 * snapshot a correct artifact, flip one field, and re-verify — the
 * mutation never touches (and could never touch) the real immutable
 * object.
 */

#ifndef SPATIAL_ANALYSIS_VERIFIER_H
#define SPATIAL_ANALYSIS_VERIFIER_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/exec_plan.h"
#include "circuit/jit.h"
#include "circuit/netlist.h"
#include "core/tiled_design.h"
#include "experiments/design_cache.h"
#include "matrix/dense.h"

/**
 * @namespace spatial::analysis
 * Static artifact verification: invariant checks over compiled
 * designs, execution schedules, generated JIT source, and store files.
 */
namespace spatial::analysis
{

/** How bad a finding is. */
enum class Severity : std::uint8_t
{
    Warning, //!< suspicious but not executably wrong; never fails lint
    Error,   //!< invariant violation; artifact must not be executed
};

/** Which artifact layer a finding is about. */
enum class Layer : std::uint8_t
{
    Compile,      //!< compile request preconditions (checkCompile)
    Netlist,      //!< circuit::Netlist well-formedness
    Plan,         //!< circuit::ExecPlan schedule legality
    Segmentation, //!< circuit::Segmentation invariants
    Tile,         //!< core::TilePlan / TiledDesign invariants
    Jit,          //!< generated JIT C source audit
    File,         //!< .sptd container (magic/version/checksum/key)
};

/** Printable name of a severity ("warning" / "error"). */
const char *severityName(Severity severity);

/** Printable name of a layer ("netlist", "plan", ...). */
const char *layerName(Layer layer);

/** Index value meaning "no specific op/slot/tile" in a Diagnostic. */
constexpr std::uint64_t kNoIndex = ~std::uint64_t{0};

/** One finding: a named rule violation at a specific place. */
struct Diagnostic
{
    Severity severity = Severity::Error; //!< error or warning
    Layer layer = Layer::Netlist;        //!< artifact layer
    std::string rule;    //!< stable rule id, e.g. "PLAN-COMMIT-ORDER"
    std::string message; //!< human-readable detail
    /** Offending op/slot/tile/statement index; kNoIndex when global. */
    std::uint64_t index = kNoIndex;

    /** One-line rendering: `error[PLAN-COMMIT-ORDER] op 3: ...`. */
    std::string str() const;
};

/** The result of verifying one or more artifacts. */
struct Report
{
    std::vector<Diagnostic> diagnostics; //!< every finding, in order

    /** True when no Error-severity diagnostic was recorded. */
    bool ok() const { return errors() == 0; }

    /** Number of Error-severity findings. */
    std::size_t errors() const;

    /** Number of Warning-severity findings. */
    std::size_t warnings() const;

    /** Whether any finding carries exactly this rule id. */
    bool has(std::string_view rule) const;

    /** The first finding with this rule id; null when absent. */
    const Diagnostic *find(std::string_view rule) const;

    /** Every finding rendered one per line (empty string when clean). */
    std::string str() const;

    /** Append a finding (used by the checkers; handy in tests). */
    void add(Severity severity, Layer layer, std::string rule,
             std::string message, std::uint64_t index = kNoIndex);
};

/**
 * Plain-data snapshot of a Netlist (plus, optionally, the design's
 * output columns for dead-node analysis).  Mutable by tests.
 */
struct NetlistView
{
    std::size_t numInputPorts = 0;         //!< dense port count
    std::vector<circuit::CompKind> kinds;  //!< per-node kind
    std::vector<circuit::NodeId> srcA;     //!< per-node operand / port
    std::vector<circuit::NodeId> srcB;     //!< per-node second operand
    /** Output column nodes (kNoNode entries already dropped); empty
     *  disengages the NET-DEAD-NODE reachability warning. */
    std::vector<circuit::NodeId> outputs;

    /** Snapshot a live netlist (outputs left empty). */
    static NetlistView of(const circuit::Netlist &netlist);
};

/** Plain-data snapshot of an ExecPlan.  Mutable by tests. */
struct PlanView
{
    std::size_t numNodes = 0;      //!< value slots below ones/zero
    std::size_t numInputPorts = 0; //!< dense port count
    std::vector<circuit::ExecPlan::CombOp> comb;   //!< settle tape
    std::vector<circuit::ExecPlan::InputOp> inputs; //!< input drives
    std::vector<circuit::ExecPlan::RegOp> regs;    //!< commit tape
    std::vector<circuit::NodeId> constOnes;        //!< Const1 slots

    /** The all-ones slot index (numNodes). */
    circuit::NodeId onesSlot() const
    {
        return static_cast<circuit::NodeId>(numNodes);
    }

    /** The all-zeros slot index (numNodes + 1). */
    circuit::NodeId zeroSlot() const
    {
        return static_cast<circuit::NodeId>(numNodes + 1);
    }

    /** Total value slots including ones/zero (numNodes + 2). */
    std::size_t numSlots() const { return numNodes + 2; }

    /** Snapshot a live plan. */
    static PlanView of(const circuit::ExecPlan &plan);
};

/**
 * Plain-data snapshot of a Segmentation (op tapes in renumbered slot
 * space, segment table, consumer index, slot permutation).  Mutable
 * by tests.
 */
struct SegmentationView
{
    std::size_t numNodes = 0;      //!< slot-space size below ones/zero
    std::size_t opsPerSegment = 0; //!< chunking budget
    std::vector<circuit::Segmentation::Segment> segments; //!< table
    std::vector<circuit::ExecPlan::CombOp> comb; //!< schedule order
    std::vector<circuit::ExecPlan::RegOp> regs;  //!< schedule order
    std::vector<std::uint32_t> consumers; //!< packed wake lists
    std::vector<circuit::ExecPlan::InputOp> inputs; //!< slot space
    std::vector<circuit::NodeId> constOnes;         //!< slot space
    std::vector<circuit::NodeId> slotOf; //!< node id -> slot

    /** Snapshot a live segmentation (numNodes from its plan). */
    static SegmentationView of(const circuit::Segmentation &seg,
                               const circuit::ExecPlan &plan);
};

/** Plain-data snapshot of a TiledDesign's column partition. */
struct TileView
{
    std::size_t rows = 0;        //!< design rows
    std::size_t cols = 0;        //!< design cols the tiles must cover
    std::size_t lutBudget = 0;   //!< ones budget (0 = never tile)
    std::size_t maxTileCols = 0; //!< width cap (0 = uncapped)
    std::vector<core::Tile> tiles; //!< the column strips
    /** Per-tile compiled (rows, cols) as reported by the tile itself;
     *  empty disengages the TILE-SHAPE cross-check. */
    std::vector<std::pair<std::size_t, std::size_t>> tileShapes;

    /** Snapshot a live tiled design (fills tileShapes). */
    static TileView of(const core::TiledDesign &design);
};

/**
 * What a generated JIT translation unit must contain, derived from
 * the plan/segmentation it was generated for.  Mutable by tests (the
 * usual mutation is the source *text*, against an unchanged
 * expectation).
 */
struct JitExpectation
{
    /** Comb tape the dense settle must mirror (plan order when
     *  ungated, segmentation schedule order when gated). */
    std::vector<circuit::ExecPlan::CombOp> comb;

    /** Reg tape the dense commit must mirror. */
    std::vector<circuit::ExecPlan::RegOp> regs;

    std::size_t numSlots = 0;    //!< value slots incl. ones/zero
    circuit::NodeId onesSlot = 0; //!< NOT-op marker slot
    circuit::NodeId zeroSlot = 0; //!< DFF marker slot
    bool gated = false;           //!< generated from a Segmentation
    std::size_t numSegments = 0;  //!< descriptor num_segments field
    /** Lane-word counts a section + table row must exist for, in
     *  emission order (already filtered to {1..16}, deduplicated). */
    std::vector<unsigned> laneWords;

    /** Build the expectation compileJitModule() itself would meet. */
    static JitExpectation of(const circuit::ExecPlan &plan,
                             const circuit::jit::JitSpec &spec);
};

/** Tunables for whole-design verification. */
struct VerifyOptions
{
    /**
     * Segment budget (KiB) to derive the Segmentation under, mirroring
     * SimOptions::segmentKib; 0 skips the segmentation layer.
     */
    std::size_t segmentKib = 4;

    /** Lane words for the segment budget derivation. */
    unsigned laneWords = 1;

    /**
     * Also generate the JIT translation units (ungated and, when the
     * segmentation layer runs, gated) and audit them against the
     * plan.  Pure string generation — no toolchain required.
     */
    bool auditJit = true;
};

/**
 * The invariant checker.  Each check* method appends findings for one
 * layer to a Report; the free verify* functions below compose them
 * over whole artifacts.  Stateless and thread-safe.
 */
class Verifier
{
  public:
    /** Netlist well-formedness: NET-* rules. */
    void checkNetlist(const NetlistView &netlist, Report *report) const;

    /**
     * ExecPlan schedule legality: PLAN-* rules.  `netlist` non-null
     * additionally reconciles the tapes against the netlist (coverage,
     * op forms); null checks the plan's internal invariants alone.
     */
    void checkPlan(const PlanView &plan, const NetlistView *netlist,
                   Report *report) const;

    /** Segmentation invariants: SEG-* rules. */
    void checkSegmentation(const SegmentationView &seg,
                           Report *report) const;

    /** Tile partition invariants: TILE-* rules. */
    void checkTiles(const TileView &tiles, Report *report) const;

    /** Generated-source audit against an expectation: JIT-* rules. */
    void checkJitSource(const JitExpectation &expect,
                        const std::string &source,
                        Report *report) const;
};

/**
 * Mirror of MatrixCompiler::checkCompile as a Report: a request the
 * compiler would refuse (or fatal on) yields COMPILE-PRECONDITION
 * with the compiler's own message.  Safe on any input.
 */
Report verifyCompileRequest(const core::CompileOptions &options,
                            const IntMatrix &weights);

/**
 * Verify one compiled tile end to end: netlist (with its output
 * columns), plan-vs-netlist, the Segmentation at the configured
 * budget, and — when opts.auditJit — the generated JIT source in both
 * flavors.  Executes nothing.
 */
Report verifyCompiledMatrix(const core::CompiledMatrix &matrix,
                            const VerifyOptions &opts = {});

/**
 * Verify a whole design: the tile partition plus every tile via
 * verifyCompiledMatrix.  This is the admission-time entry point.
 */
Report verifyDesign(const core::TiledDesign &design,
                    const VerifyOptions &opts = {});

/**
 * Verify a `.sptd` store file: container integrity (FILE-* rules,
 * mapping store::LoadStatus), the stored key against `expected` when
 * non-null, and — when the container is intact — the reconstructed
 * design via verifyDesign.
 */
Report verifyFile(const std::string &path,
                  const experiments::DesignKey *expected = nullptr,
                  const VerifyOptions &opts = {});

/**
 * Audit a generated JIT translation unit against the (plan, spec) it
 * was generated for.  `source` is the C text — tests bit-flip it and
 * assert the exact JIT-* rule that fires.
 */
Report verifyJitSource(const circuit::ExecPlan &plan,
                       const circuit::jit::JitSpec &spec,
                       const std::string &source);

} // namespace spatial::analysis

#endif // SPATIAL_ANALYSIS_VERIFIER_H
