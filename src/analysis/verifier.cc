#include "analysis/verifier.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "core/compiler.h"
#include "store/format.h"

namespace spatial::analysis
{

namespace
{

using circuit::CompKind;
using circuit::ExecPlan;
using circuit::kNoNode;
using circuit::NodeId;

/** Largest valid kind byte (deserialized kinds can exceed it). */
constexpr auto kMaxKind = static_cast<std::uint8_t>(CompKind::Sub);

std::string
nodeStr(std::uint64_t id)
{
    return std::to_string(id);
}

/** Mirror of jit.cc's lane-word filtering (range + dedup). */
std::vector<unsigned>
filterLaneWords(const std::vector<unsigned> &requested)
{
    std::vector<unsigned> ws;
    for (const unsigned w : requested)
        if (w >= 1 && w <= 16 &&
            std::find(ws.begin(), ws.end(), w) == ws.end())
            ws.push_back(w);
    return ws;
}

} // namespace

// ---------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------

const char *
severityName(Severity severity)
{
    return severity == Severity::Error ? "error" : "warning";
}

const char *
layerName(Layer layer)
{
    switch (layer) {
      case Layer::Compile:
        return "compile";
      case Layer::Netlist:
        return "netlist";
      case Layer::Plan:
        return "plan";
      case Layer::Segmentation:
        return "segmentation";
      case Layer::Tile:
        return "tile";
      case Layer::Jit:
        return "jit";
      case Layer::File:
        return "file";
    }
    return "?";
}

std::string
Diagnostic::str() const
{
    std::string out = severityName(severity);
    out += '[';
    out += rule;
    out += "] ";
    if (index != kNoIndex) {
        out += "at ";
        out += std::to_string(index);
        out += ": ";
    }
    out += message;
    return out;
}

std::size_t
Report::errors() const
{
    std::size_t n = 0;
    for (const auto &d : diagnostics)
        n += d.severity == Severity::Error ? 1 : 0;
    return n;
}

std::size_t
Report::warnings() const
{
    return diagnostics.size() - errors();
}

bool
Report::has(std::string_view rule) const
{
    return find(rule) != nullptr;
}

const Diagnostic *
Report::find(std::string_view rule) const
{
    for (const auto &d : diagnostics)
        if (d.rule == rule)
            return &d;
    return nullptr;
}

std::string
Report::str() const
{
    std::string out;
    for (const auto &d : diagnostics) {
        out += d.str();
        out += '\n';
    }
    return out;
}

void
Report::add(Severity severity, Layer layer, std::string rule,
            std::string message, std::uint64_t index)
{
    diagnostics.push_back(Diagnostic{severity, layer, std::move(rule),
                                     std::move(message), index});
}

// ---------------------------------------------------------------------
// View snapshots
// ---------------------------------------------------------------------

NetlistView
NetlistView::of(const circuit::Netlist &netlist)
{
    NetlistView v;
    v.numInputPorts = netlist.numInputPorts();
    const auto n = static_cast<NodeId>(netlist.numNodes());
    v.kinds.reserve(n);
    v.srcA.reserve(n);
    v.srcB.reserve(n);
    for (NodeId id = 0; id < n; ++id) {
        v.kinds.push_back(netlist.kind(id));
        v.srcA.push_back(netlist.kind(id) == CompKind::Input
                             ? netlist.inputPort(id)
                             : netlist.srcA(id));
        v.srcB.push_back(netlist.srcB(id));
    }
    return v;
}

PlanView
PlanView::of(const ExecPlan &plan)
{
    PlanView v;
    v.numNodes = plan.numNodes();
    v.numInputPorts = plan.numInputPorts();
    v.comb = plan.comb();
    v.inputs = plan.inputs();
    v.regs = plan.regs();
    v.constOnes = plan.constOnes();
    return v;
}

SegmentationView
SegmentationView::of(const circuit::Segmentation &seg,
                     const ExecPlan &plan)
{
    SegmentationView v;
    v.numNodes = plan.numNodes();
    v.opsPerSegment = seg.opsPerSegment();
    v.segments = seg.segments();
    v.comb = seg.comb();
    v.regs = seg.regs();
    v.consumers = seg.consumers();
    v.inputs = seg.inputs();
    v.constOnes = seg.constOnes();
    v.slotOf = seg.slotOf();
    return v;
}

TileView
TileView::of(const core::TiledDesign &design)
{
    TileView v;
    v.rows = design.rows();
    v.cols = design.cols();
    v.lutBudget = design.plan().lutBudget;
    v.maxTileCols = design.tileOptions().maxTileCols;
    v.tiles = design.plan().tiles;
    v.tileShapes.reserve(design.tileCount());
    for (std::size_t i = 0; i < design.tileCount(); ++i)
        v.tileShapes.emplace_back(design.tile(i).rows(),
                                  design.tile(i).cols());
    return v;
}

JitExpectation
JitExpectation::of(const ExecPlan &plan, const circuit::jit::JitSpec &spec)
{
    JitExpectation e;
    e.numSlots = plan.numSlots();
    e.onesSlot = plan.onesSlot();
    e.zeroSlot = plan.zeroSlot();
    e.laneWords = filterLaneWords(spec.laneWords);
    if (spec.segmentation != nullptr) {
        e.gated = true;
        e.numSegments = spec.segmentation->segments().size();
        e.comb = spec.segmentation->comb();
        e.regs = spec.segmentation->regs();
    } else {
        e.comb = plan.comb();
        e.regs = plan.regs();
    }
    return e;
}

// ---------------------------------------------------------------------
// Netlist checks
// ---------------------------------------------------------------------

void
Verifier::checkNetlist(const NetlistView &netlist, Report *report) const
{
    const auto n = static_cast<NodeId>(netlist.kinds.size());
    const auto bad = [&](std::string rule, std::string msg, NodeId id) {
        report->add(Severity::Error, Layer::Netlist, std::move(rule),
                    std::move(msg), id);
    };

    std::vector<bool> portSeen(netlist.numInputPorts, false);
    for (NodeId id = 0; id < n; ++id) {
        const auto kindByte =
            static_cast<std::uint8_t>(netlist.kinds[id]);
        if (kindByte > kMaxKind) {
            bad("NET-KIND-RANGE",
                "kind byte " + std::to_string(kindByte) +
                    " is not a CompKind",
                id);
            continue;
        }
        const CompKind kind = netlist.kinds[id];
        const NodeId a = netlist.srcA[id];
        const NodeId b = netlist.srcB[id];
        const bool unary = kind == CompKind::Not || kind == CompKind::Dff;
        const bool binary = kind == CompKind::And ||
                            kind == CompKind::Adder ||
                            kind == CompKind::Sub;
        if (kind == CompKind::Const0 || kind == CompKind::Const1) {
            if (a != kNoNode || b != kNoNode)
                bad("NET-SRC-ARITY", "constant node has operands", id);
        } else if (kind == CompKind::Input) {
            if (b != kNoNode)
                bad("NET-SRC-ARITY", "input node has a second operand",
                    id);
            if (a >= netlist.numInputPorts) {
                bad("NET-INPUT-PORT-RANGE",
                    "port " + nodeStr(a) + " >= numInputPorts " +
                        std::to_string(netlist.numInputPorts),
                    id);
            } else {
                portSeen[a] = true;
            }
        } else {
            if (a == kNoNode || (binary && b == kNoNode) ||
                (unary && b != kNoNode)) {
                bad("NET-SRC-ARITY",
                    "operand arity does not match the op kind", id);
                continue;
            }
            if (a >= id || (binary && b >= id))
                bad("NET-SSA-ORDER",
                    "source at or above its consumer (combinational "
                    "cycle or forward reference)",
                    id);
        }
    }

    for (std::uint32_t port = 0; port < netlist.numInputPorts; ++port)
        if (!portSeen[port])
            report->add(Severity::Error, Layer::Netlist,
                        "NET-PORT-DENSE",
                        "no input node drives port " +
                            std::to_string(port),
                        port);

    // Dead-logic reachability: every logic node must feed some output
    // column (directly or transitively).  Only meaningful when the
    // caller supplied the outputs; a violation is a Warning — dead
    // logic wastes work but executes correctly.
    if (!netlist.outputs.empty()) {
        std::vector<bool> live(n, false);
        std::vector<NodeId> stack;
        for (const NodeId out : netlist.outputs)
            if (out < n && !live[out]) {
                live[out] = true;
                stack.push_back(out);
            }
        while (!stack.empty()) {
            const NodeId id = stack.back();
            stack.pop_back();
            if (static_cast<std::uint8_t>(netlist.kinds[id]) > kMaxKind ||
                netlist.kinds[id] == CompKind::Input)
                continue;
            for (const NodeId src : {netlist.srcA[id], netlist.srcB[id]})
                if (src < n && !live[src]) {
                    live[src] = true;
                    stack.push_back(src);
                }
        }
        for (NodeId id = 0; id < n; ++id) {
            if (live[id])
                continue;
            switch (netlist.kinds[id]) {
              case CompKind::Not:
              case CompKind::And:
              case CompKind::Dff:
              case CompKind::Adder:
              case CompKind::Sub:
                report->add(Severity::Warning, Layer::Netlist,
                            "NET-DEAD-NODE",
                            "logic node feeds no output column", id);
                break;
              default:
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Plan checks
// ---------------------------------------------------------------------

void
Verifier::checkPlan(const PlanView &plan, const NetlistView *netlist,
                    Report *report) const
{
    const std::size_t numNodes = plan.numNodes;
    const std::size_t numSlots = plan.numSlots();
    const auto bad = [&](std::string rule, std::string msg,
                         std::uint64_t index = kNoIndex) {
        report->add(Severity::Error, Layer::Plan, std::move(rule),
                    std::move(msg), index);
    };

    // Slot ranges plus single-driver bookkeeping.
    std::vector<std::uint8_t> writers(numSlots, 0);
    const auto writeSlot = [&](NodeId dst, std::uint64_t index) {
        if (dst >= numNodes) {
            bad("PLAN-SLOT-RANGE",
                "dst slot " + nodeStr(dst) + " is not a node slot",
                index);
            return;
        }
        if (++writers[dst] == 2)
            bad("PLAN-DST-UNIQUE",
                "slot " + nodeStr(dst) + " has more than one driver",
                index);
    };
    const auto readSlot = [&](NodeId src, std::uint64_t index) {
        if (src >= numSlots)
            bad("PLAN-SLOT-RANGE",
                "source slot " + nodeStr(src) + " out of range", index);
    };

    for (std::size_t i = 0; i < plan.comb.size(); ++i) {
        const auto &op = plan.comb[i];
        writeSlot(op.dst, i);
        readSlot(op.a, i);
        readSlot(op.b, i);
        if (i > 0 && plan.comb[i - 1].dst >= op.dst)
            bad("PLAN-COMB-ORDER",
                "settle tape dst not strictly ascending", i);
        for (const NodeId src : {op.a, op.b})
            if (src < numNodes && src >= op.dst)
                bad("PLAN-COMB-SRC-SETTLED",
                    "comb op reads slot " + nodeStr(src) +
                        " before the tape settles it",
                    i);
    }

    for (std::size_t i = 0; i < plan.regs.size(); ++i) {
        const auto &op = plan.regs[i];
        writeSlot(op.dst, i);
        readSlot(op.a, i);
        readSlot(op.b, i);
        if (i > 0 && plan.regs[i - 1].dst <= op.dst)
            bad("PLAN-COMMIT-ORDER",
                "commit tape dst not strictly descending", i);
        for (const NodeId src : {op.a, op.b})
            if (src < numNodes && src >= op.dst)
                bad("PLAN-REG-HAZARD",
                    "in-place commit would overwrite slot " +
                        nodeStr(src) + " before op reads it",
                    i);
    }

    for (std::size_t i = 0; i < plan.inputs.size(); ++i) {
        const auto &in = plan.inputs[i];
        writeSlot(in.node, i);
        if (in.port >= plan.numInputPorts)
            bad("PLAN-INPUT-RANGE",
                "input op port " + std::to_string(in.port) +
                    " >= numInputPorts " +
                    std::to_string(plan.numInputPorts),
                i);
    }

    for (std::size_t i = 0; i < plan.constOnes.size(); ++i)
        writeSlot(plan.constOnes[i], i);

    if (netlist == nullptr)
        return;

    // Tape coverage against the netlist: every node lands on exactly
    // the tape its kind demands, in tape order, with the op fields the
    // ExecPlan constructor derives.
    if (netlist->kinds.size() != numNodes) {
        bad("PLAN-COVERAGE",
            "plan has " + std::to_string(numNodes) +
                " nodes, netlist has " +
                std::to_string(netlist->kinds.size()));
        return;
    }
    std::size_t ci = 0;              // comb cursor (ascending id)
    std::size_t ri = plan.regs.size(); // regs cursor (stored reversed)
    std::size_t ii = 0;              // inputs cursor
    std::size_t oi = 0;              // constOnes cursor
    const auto n = static_cast<NodeId>(numNodes);
    for (NodeId id = 0; id < n; ++id) {
        if (static_cast<std::uint8_t>(netlist->kinds[id]) > kMaxKind)
            return; // checkNetlist already reported it
        const CompKind kind = netlist->kinds[id];
        const NodeId a = netlist->srcA[id];
        const NodeId b = netlist->srcB[id];
        switch (kind) {
          case CompKind::Const0:
            break;
          case CompKind::Const1:
            if (oi >= plan.constOnes.size() ||
                plan.constOnes[oi++] != id)
                bad("PLAN-COVERAGE",
                    "Const1 node missing from constOnes", id);
            break;
          case CompKind::Input:
            if (ii >= plan.inputs.size() ||
                plan.inputs[ii].node != id)
                bad("PLAN-COVERAGE",
                    "Input node missing from the input tape", id);
            else if (plan.inputs[ii].port != a)
                bad("PLAN-OP-FORM",
                    "input op port does not match the netlist", id);
            if (ii < plan.inputs.size())
                ++ii;
            break;
          case CompKind::Not:
          case CompKind::And: {
            if (ci >= plan.comb.size() || plan.comb[ci].dst != id) {
                bad("PLAN-COVERAGE",
                    "comb node missing from the settle tape", id);
                break;
            }
            const auto &op = plan.comb[ci++];
            const bool formOk =
                kind == CompKind::Not
                    ? op.a == a && op.b == plan.onesSlot() &&
                          op.inv == ~std::uint64_t{0}
                    : op.a == a && op.b == b && op.inv == 0;
            if (!formOk)
                bad("PLAN-OP-FORM",
                    "comb op fields do not encode the netlist op", id);
            break;
          }
          case CompKind::Dff:
          case CompKind::Adder:
          case CompKind::Sub: {
            if (ri == 0 || plan.regs[ri - 1].dst != id) {
                bad("PLAN-COVERAGE",
                    "register node missing from the commit tape", id);
                break;
            }
            const auto &op = plan.regs[--ri];
            bool formOk = op.a == a;
            if (kind == CompKind::Dff)
                formOk = formOk && op.b == plan.zeroSlot() &&
                         op.bInv == 0 && op.carryInit == 0;
            else if (kind == CompKind::Adder)
                formOk = formOk && op.b == b && op.bInv == 0 &&
                         op.carryInit == 0;
            else
                formOk = formOk && op.b == b &&
                         op.bInv == ~std::uint64_t{0} &&
                         op.carryInit != 0;
            if (!formOk)
                bad("PLAN-OP-FORM",
                    "reg op fields do not encode the netlist op", id);
            break;
          }
        }
    }
    if (ci != plan.comb.size() || ri != 0 ||
        ii != plan.inputs.size() || oi != plan.constOnes.size())
        bad("PLAN-COVERAGE",
            "tapes carry ops no netlist node accounts for");
    if (netlist->numInputPorts != plan.numInputPorts)
        bad("PLAN-COVERAGE",
            "plan and netlist disagree on numInputPorts");
}

// ---------------------------------------------------------------------
// Segmentation checks
// ---------------------------------------------------------------------

void
Verifier::checkSegmentation(const SegmentationView &seg,
                            Report *report) const
{
    const std::size_t numNodes = seg.numNodes;
    const std::size_t numSlots = numNodes + 2;
    const std::size_t totalOps = seg.comb.size() + seg.regs.size();
    const auto bad = [&](std::string rule, std::string msg,
                         std::uint64_t index = kNoIndex) {
        report->add(Severity::Error, Layer::Segmentation,
                    std::move(rule), std::move(msg), index);
    };

    if (totalOps > numNodes) {
        bad("SEG-PARTITION", "more ops than nodes");
        return;
    }
    const std::size_t opBase = numNodes - totalOps;

    // Segment table ranges and the exact partition of both tapes.
    bool rangesOk = true;
    for (std::size_t s = 0; s < seg.segments.size(); ++s) {
        const auto &sg = seg.segments[s];
        if (sg.combBegin > sg.combEnd || sg.combEnd > seg.comb.size() ||
            sg.regBegin > sg.regEnd || sg.regEnd > seg.regs.size() ||
            sg.combConsumersBegin > sg.combConsumersEnd ||
            sg.combConsumersEnd > seg.consumers.size() ||
            sg.regConsumersBegin > sg.regConsumersEnd ||
            sg.regConsumersEnd > seg.consumers.size()) {
            bad("SEG-RANGE-VALID", "segment ranges out of bounds", s);
            rangesOk = false;
        }
    }
    if (!rangesOk)
        return;

    std::uint32_t combCursor = 0;
    std::uint32_t regCursor = 0;
    for (std::size_t s = 0; s < seg.segments.size(); ++s) {
        const auto &sg = seg.segments[s];
        if (sg.combBegin != combCursor || sg.regBegin != regCursor) {
            bad("SEG-PARTITION",
                "segment op ranges do not tile the tapes", s);
            return;
        }
        combCursor = sg.combEnd;
        regCursor = sg.regEnd;
        const std::size_t count = (sg.combEnd - sg.combBegin) +
                                  (sg.regEnd - sg.regBegin);
        const bool last = s + 1 == seg.segments.size();
        if (count == 0 || count > seg.opsPerSegment ||
            (!last && count != seg.opsPerSegment))
            bad("SEG-PARTITION",
                "segment holds " + std::to_string(count) +
                    " ops against a budget of " +
                    std::to_string(seg.opsPerSegment),
                s);
    }
    if (combCursor != seg.comb.size() || regCursor != seg.regs.size())
        bad("SEG-PARTITION", "trailing ops belong to no segment");

    // slotOf must be a permutation fixing the ones/zero slots.
    if (seg.slotOf.size() != numSlots) {
        bad("SEG-SLOTOF-PERM", "slotOf size != numSlots");
        return;
    }
    std::vector<std::uint8_t> slotHit(numSlots, 0);
    for (std::size_t id = 0; id < numSlots; ++id) {
        const NodeId slot = seg.slotOf[id];
        if (slot >= numSlots || ++slotHit[slot] > 1) {
            bad("SEG-SLOTOF-PERM",
                "slotOf is not a permutation of the slot space", id);
            return;
        }
    }
    if (seg.slotOf[numNodes] != static_cast<NodeId>(numNodes) ||
        seg.slotOf[numNodes + 1] != static_cast<NodeId>(numNodes + 1))
        bad("SEG-SLOTOF-PERM", "ones/zero slots were renumbered");

    // Each segment owns one contiguous, ascending slice of the op-slot
    // space [opBase, numNodes); slices are consecutive across segments.
    std::size_t sliceBase = opBase;
    for (std::size_t s = 0; s < seg.segments.size(); ++s) {
        const auto &sg = seg.segments[s];
        const std::size_t count = (sg.combEnd - sg.combBegin) +
                                  (sg.regEnd - sg.regBegin);
        std::vector<std::uint8_t> hit(count, 0);
        bool sliceOk = true;
        const auto claim = [&](NodeId dst) {
            if (dst < sliceBase || dst >= sliceBase + count ||
                hit[dst - sliceBase]++ != 0)
                sliceOk = false;
        };
        for (std::uint32_t i = sg.combBegin; i < sg.combEnd; ++i) {
            claim(seg.comb[i].dst);
            if (i > sg.combBegin && seg.comb[i - 1].dst >= seg.comb[i].dst)
                sliceOk = false;
        }
        for (std::uint32_t i = sg.regBegin; i < sg.regEnd; ++i) {
            claim(seg.regs[i].dst);
            if (i > sg.regBegin && seg.regs[i - 1].dst >= seg.regs[i].dst)
                sliceOk = false;
        }
        if (!sliceOk)
            bad("SEG-SLOT-CONTIGUOUS",
                "segment dst slots are not its contiguous ascending "
                "slice of the schedule",
                s);
        sliceBase += count;
    }

    // Settle-order topology and reverse-commit hazard freedom in the
    // renumbered slot space.
    for (std::size_t i = 0; i < seg.comb.size(); ++i) {
        const auto &op = seg.comb[i];
        for (const NodeId src : {op.a, op.b}) {
            if (src >= numSlots)
                bad("SEG-RANGE-VALID", "comb source slot out of range",
                    i);
            else if (src < numNodes && src >= op.dst)
                bad("SEG-TOPO",
                    "comb op reads slot " + nodeStr(src) +
                        " the schedule has not settled",
                    i);
        }
    }
    for (std::size_t i = 0; i < seg.regs.size(); ++i) {
        const auto &op = seg.regs[i];
        for (const NodeId src : {op.a, op.b}) {
            if (src >= numSlots)
                bad("SEG-RANGE-VALID", "reg source slot out of range",
                    i);
            else if (src < numNodes && src >= op.dst)
                bad("SEG-REG-HAZARD",
                    "reverse dense commit would overwrite slot " +
                        nodeStr(src) + " before op reads it",
                    i);
        }
    }

    // Inputs and constants live in the non-op front of the slot space.
    for (std::size_t i = 0; i < seg.inputs.size(); ++i)
        if (seg.inputs[i].node >= opBase)
            bad("SEG-INPUT-RANGE",
                "input slot collides with the op-slot space", i);
    for (std::size_t i = 0; i < seg.constOnes.size(); ++i)
        if (seg.constOnes[i] >= opBase)
            bad("SEG-INPUT-RANGE",
                "constOnes slot collides with the op-slot space", i);

    // Recompute the consumer (wake) lists exactly the way the
    // constructor builds them and compare.
    constexpr std::uint32_t kUnowned = 0xffffffffu;
    std::vector<std::uint32_t> owner(numSlots, kUnowned);
    for (std::size_t s = 0; s < seg.segments.size(); ++s) {
        const auto &sg = seg.segments[s];
        for (std::uint32_t i = sg.combBegin; i < sg.combEnd; ++i)
            if (seg.comb[i].dst < numSlots)
                owner[seg.comb[i].dst] =
                    static_cast<std::uint32_t>(s);
        for (std::uint32_t i = sg.regBegin; i < sg.regEnd; ++i)
            if (seg.regs[i].dst < numSlots)
                owner[seg.regs[i].dst] =
                    static_cast<std::uint32_t>(s);
    }
    std::vector<bool> isInput(numSlots, false);
    for (const auto &in : seg.inputs)
        if (in.node < numSlots)
            isInput[in.node] = true;
    std::vector<bool> isRegDst(numSlots, false);
    for (const auto &op : seg.regs)
        if (op.dst < numSlots)
            isRegDst[op.dst] = true;

    const std::size_t numSegments = seg.segments.size();
    std::vector<std::vector<std::uint32_t>> combReaders(numSegments);
    std::vector<std::vector<std::uint32_t>> regReaders(numSegments);
    for (std::size_t s = 0; s < numSegments; ++s) {
        const auto &sg = seg.segments[s];
        const auto addSource = [&](NodeId src) {
            if (src >= numSlots || isInput[src])
                return;
            const std::uint32_t i = owner[src];
            if (i == kUnowned || i == s)
                return;
            auto &readers =
                isRegDst[src] ? regReaders[i] : combReaders[i];
            readers.push_back(static_cast<std::uint32_t>(s));
        };
        for (std::uint32_t i = sg.combBegin; i < sg.combEnd; ++i) {
            addSource(seg.comb[i].a);
            addSource(seg.comb[i].b);
        }
        for (std::uint32_t i = sg.regBegin; i < sg.regEnd; ++i) {
            addSource(seg.regs[i].a);
            addSource(seg.regs[i].b);
        }
    }
    for (std::size_t s = 0; s < numSegments; ++s) {
        const auto compare = [&](std::vector<std::uint32_t> expected,
                                 std::uint32_t begin, std::uint32_t end,
                                 const char *what) {
            std::sort(expected.begin(), expected.end());
            expected.erase(
                std::unique(expected.begin(), expected.end()),
                expected.end());
            const std::vector<std::uint32_t> got(
                seg.consumers.begin() + begin,
                seg.consumers.begin() + end);
            for (const std::uint32_t e : expected)
                if (std::find(got.begin(), got.end(), e) == got.end())
                    bad("SEG-CONSUMER-MISSING",
                        std::string(what) + " wake list lacks segment " +
                            std::to_string(e),
                        s);
            for (const std::uint32_t g : got)
                if (std::find(expected.begin(), expected.end(), g) ==
                    expected.end())
                    bad("SEG-CONSUMER-EXTRA",
                        std::string(what) + " wake list names segment " +
                            std::to_string(g) +
                            " which reads nothing here",
                        s);
        };
        const auto &sg = seg.segments[s];
        compare(combReaders[s], sg.combConsumersBegin,
                sg.combConsumersEnd, "comb");
        compare(regReaders[s], sg.regConsumersBegin,
                sg.regConsumersEnd, "reg");
    }
}

// ---------------------------------------------------------------------
// Tile checks
// ---------------------------------------------------------------------

void
Verifier::checkTiles(const TileView &tiles, Report *report) const
{
    const auto bad = [&](std::string rule, std::string msg,
                         std::uint64_t index = kNoIndex) {
        report->add(Severity::Error, Layer::Tile, std::move(rule),
                    std::move(msg), index);
    };

    if (tiles.tiles.empty()) {
        if (tiles.cols != 0)
            bad("TILE-COVER", "no tiles cover the column space");
        return;
    }
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < tiles.tiles.size(); ++i) {
        const auto &t = tiles.tiles[i];
        if (t.colBegin != cursor || t.colEnd <= t.colBegin ||
            t.colEnd > tiles.cols) {
            bad("TILE-COVER",
                "tile strip [" + std::to_string(t.colBegin) + ", " +
                    std::to_string(t.colEnd) +
                    ") breaks the contiguous partition",
                i);
            return;
        }
        cursor = t.colEnd;
        const std::size_t width = t.colEnd - t.colBegin;
        if (tiles.lutBudget != 0 && width > 1 &&
            t.estimatedLuts > tiles.lutBudget)
            bad("TILE-BUDGET",
                "multi-column tile estimate " +
                    std::to_string(t.estimatedLuts) +
                    " exceeds the budget " +
                    std::to_string(tiles.lutBudget),
                i);
        if (tiles.maxTileCols != 0 && width > tiles.maxTileCols)
            bad("TILE-BUDGET",
                "tile width " + std::to_string(width) +
                    " exceeds maxTileCols " +
                    std::to_string(tiles.maxTileCols),
                i);
        if (!tiles.tileShapes.empty()) {
            if (i >= tiles.tileShapes.size() ||
                tiles.tileShapes[i] != std::pair{tiles.rows, width})
                bad("TILE-SHAPE",
                    "compiled tile shape does not match its strip", i);
        }
    }
    if (cursor != tiles.cols)
        bad("TILE-COVER", "tiles stop at column " +
                              std::to_string(cursor) + " of " +
                              std::to_string(tiles.cols));
}

// ---------------------------------------------------------------------
// JIT source audit
// ---------------------------------------------------------------------

namespace
{

/** One parsed dense statement: its macro name and integer args. */
struct JitStmt
{
    std::string name;
    std::vector<long long> args;
};

/**
 * Scan `text` for line-anchored dense-macro statements, splitting
 * them into the settle stream (SN/SA) and the counting/plain commit
 * streams (DFT/RAT vs DF/RA).  Malformed argument lists abort the
 * statement (the caller sees a count mismatch).
 */
void
collectStmts(const std::string &text, std::vector<JitStmt> *settle,
             std::vector<JitStmt> *commitCounting,
             std::vector<JitStmt> *commitPlain)
{
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string_view line(text.data() + pos, eol - pos);
        pos = eol + 1;
        std::string name;
        for (const char c : line) {
            if (c >= 'A' && c <= 'Z')
                name += c;
            else
                break;
        }
        std::vector<JitStmt> *stream = nullptr;
        if (name == "SN" || name == "SA")
            stream = settle;
        else if (name == "DFT" || name == "RAT")
            stream = commitCounting;
        else if (name == "DF" || name == "RA")
            stream = commitPlain;
        if (stream == nullptr || name.size() >= line.size() ||
            line[name.size()] != '(')
            continue;
        JitStmt stmt{name, {}};
        std::size_t i = name.size() + 1;
        bool ok = true;
        while (i < line.size() && line[i] != ')') {
            bool neg = false;
            if (line[i] == '-') {
                neg = true;
                ++i;
            }
            if (i >= line.size() || line[i] < '0' || line[i] > '9') {
                ok = false;
                break;
            }
            long long v = 0;
            while (i < line.size() && line[i] >= '0' && line[i] <= '9')
                v = v * 10 + (line[i++] - '0');
            stmt.args.push_back(neg ? -v : v);
            if (i < line.size() && line[i] == ',')
                ++i;
        }
        if (ok && i < line.size() && line[i] == ')')
            stream->push_back(std::move(stmt));
    }
}

} // namespace

void
Verifier::checkJitSource(const JitExpectation &expect,
                         const std::string &source,
                         Report *report) const
{
    const auto bad = [&](std::string rule, std::string msg,
                         std::uint64_t index = kNoIndex) {
        report->add(Severity::Error, Layer::Jit, std::move(rule),
                    std::move(msg), index);
    };

    // Slice the per-W sections out by their markers.
    struct Section
    {
        unsigned w = 0;
        std::size_t begin = 0;
        std::size_t end = 0;
    };
    std::vector<Section> sections;
    static const std::string kMarker = "/* ---- lane words ";
    for (std::size_t pos = source.find(kMarker);
         pos != std::string::npos;
         pos = source.find(kMarker, pos + 1)) {
        Section s;
        std::size_t i = pos + kMarker.size();
        while (i < source.size() && source[i] >= '0' && source[i] <= '9')
            s.w = s.w * 10 + static_cast<unsigned>(source[i++] - '0');
        s.begin = pos;
        if (!sections.empty())
            sections.back().end = pos;
        sections.push_back(s);
    }
    const std::size_t tablesAt =
        source.find("static const spatial_jit_table spatial_tables[]");
    if (!sections.empty())
        sections.back().end = tablesAt == std::string::npos
                                  ? source.size()
                                  : tablesAt;

    if (sections.size() != expect.laneWords.size()) {
        bad("JIT-SECTION",
            "expected " + std::to_string(expect.laneWords.size()) +
                " lane-word sections, found " +
                std::to_string(sections.size()));
        return;
    }
    for (std::size_t i = 0; i < sections.size(); ++i)
        if (sections[i].w != expect.laneWords[i])
            bad("JIT-SECTION",
                "section order/lane-words mismatch at section " +
                    std::to_string(i),
                i);

    // Audit each section's dense statement streams against the tapes.
    for (const Section &sec : sections) {
        const unsigned long long stride = 8ull * sec.w;
        const std::string text =
            source.substr(sec.begin, sec.end - sec.begin);
        std::vector<JitStmt> settle, counting, plain;
        collectStmts(text, &settle, &counting, &plain);

        if (settle.size() != expect.comb.size()) {
            bad("JIT-STMT-COUNT",
                "W=" + std::to_string(sec.w) + " settle emits " +
                    std::to_string(settle.size()) + " statements for " +
                    std::to_string(expect.comb.size()) + " comb ops",
                sec.w);
        } else {
            for (std::size_t i = 0; i < settle.size(); ++i) {
                const auto &op = expect.comb[i];
                const auto &st = settle[i];
                const bool isNot = op.b == expect.onesSlot &&
                                   op.inv == ~std::uint64_t{0};
                bool ok;
                if (isNot)
                    ok = st.name == "SN" && st.args.size() == 2 &&
                         st.args[0] ==
                             static_cast<long long>(op.dst * stride) &&
                         st.args[1] ==
                             static_cast<long long>(op.a * stride);
                else
                    ok = st.name == "SA" && st.args.size() == 4 &&
                         st.args[0] ==
                             static_cast<long long>(op.dst * stride) &&
                         st.args[1] ==
                             static_cast<long long>(op.a * stride) &&
                         st.args[2] ==
                             static_cast<long long>(op.b * stride) &&
                         st.args[3] == (op.inv == 0 ? 0 : -1);
                if (!ok) {
                    bad("JIT-STMT-FORM",
                        "W=" + std::to_string(sec.w) +
                            " settle statement does not encode comb op " +
                            std::to_string(i),
                        i);
                    break;
                }
            }
        }

        // Commit streams: tape order ungated, reversed when gated
        // (the dense reverse fallback); carry offsets stay the op's
        // tape position either way.
        const auto checkCommit = [&](const std::vector<JitStmt> &stmts,
                                     bool countingStream) {
            const char *flavor =
                countingStream ? " counting commit" : " commit";
            if (stmts.size() != expect.regs.size()) {
                bad("JIT-STMT-COUNT",
                    "W=" + std::to_string(sec.w) + flavor + " emits " +
                        std::to_string(stmts.size()) +
                        " statements for " +
                        std::to_string(expect.regs.size()) + " reg ops",
                    sec.w);
                return;
            }
            for (std::size_t i = 0; i < stmts.size(); ++i) {
                const std::size_t k =
                    expect.gated ? expect.regs.size() - 1 - i : i;
                const auto &op = expect.regs[k];
                const auto &st = stmts[i];
                const bool isDff = op.b == expect.zeroSlot &&
                                   op.bInv == 0 && op.carryInit == 0;
                const std::string want =
                    std::string(isDff ? "DF" : "RA") +
                    (countingStream ? "T" : "");
                bool ok = st.name == want;
                if (ok && isDff)
                    ok = st.args.size() == 2 &&
                         st.args[0] ==
                             static_cast<long long>(op.dst * stride) &&
                         st.args[1] ==
                             static_cast<long long>(op.a * stride);
                else if (ok)
                    ok = st.args.size() == 5 &&
                         st.args[0] ==
                             static_cast<long long>(op.dst * stride) &&
                         st.args[1] ==
                             static_cast<long long>(op.a * stride) &&
                         st.args[2] ==
                             static_cast<long long>(op.b * stride) &&
                         st.args[3] ==
                             static_cast<long long>(k * stride) &&
                         st.args[4] == (op.bInv == 0 ? 0 : -1);
                if (!ok) {
                    bad("JIT-STMT-FORM",
                        "W=" + std::to_string(sec.w) + flavor +
                            " statement does not encode reg op " +
                            std::to_string(k),
                        i);
                    return;
                }
            }
        };
        checkCommit(counting, true);
        checkCommit(plain, false);
    }

    // Descriptor: version literal, table count, per-row fields.
    static const std::string kDesc =
        "const spatial_jit_desc spatial_jit_desc_v3 = { ";
    const std::size_t descAt = source.find(kDesc);
    if (descAt == std::string::npos) {
        bad("JIT-DESC-VERSION", "spatial_jit_desc_v3 descriptor missing");
        return;
    }
    {
        std::size_t i = descAt + kDesc.size();
        unsigned long long version = 0;
        while (i < source.size() && source[i] >= '0' && source[i] <= '9')
            version = version * 10 + (source[i++] - '0');
        if (version != 3)
            bad("JIT-DESC-VERSION",
                "descriptor version " + std::to_string(version) +
                    " != 3");
        while (i < source.size() &&
               (source[i] == ',' || source[i] == ' '))
            ++i;
        unsigned long long numTables = 0;
        while (i < source.size() && source[i] >= '0' && source[i] <= '9')
            numTables = numTables * 10 + (source[i++] - '0');
        if (numTables != expect.laneWords.size())
            bad("JIT-TABLE-COUNT",
                "descriptor num_tables " + std::to_string(numTables) +
                    " != " + std::to_string(expect.laneWords.size()));
    }
    if (tablesAt == std::string::npos) {
        bad("JIT-TABLE-COUNT", "spatial_tables array missing");
        return;
    }
    std::size_t rows = 0;
    std::size_t pos = tablesAt;
    while ((pos = source.find("\n{ ", pos)) != std::string::npos &&
           pos < descAt) {
        pos += 3;
        unsigned long long w = 0;
        while (pos < source.size() && source[pos] >= '0' &&
               source[pos] <= '9')
            w = w * 10 + (source[pos++] - '0');
        pos += 2; // ", "
        unsigned long long numSegments = 0;
        while (pos < source.size() && source[pos] >= '0' &&
               source[pos] <= '9')
            numSegments = numSegments * 10 + (source[pos++] - '0');
        std::size_t eol = source.find('\n', pos);
        if (eol == std::string::npos)
            eol = source.size();
        const std::string_view row(source.data() + pos, eol - pos);
        const bool hasSegStep =
            row.find("seg_step") != std::string_view::npos;
        if (rows >= expect.laneWords.size() ||
            w != expect.laneWords[rows] ||
            numSegments != expect.numSegments ||
            hasSegStep != expect.gated)
            bad("JIT-TABLE-ROW",
                "table row " + std::to_string(rows) +
                    " does not match the generated section",
                rows);
        ++rows;
    }
    if (rows != expect.laneWords.size())
        bad("JIT-TABLE-COUNT",
            "spatial_tables has " + std::to_string(rows) +
                " rows, expected " +
                std::to_string(expect.laneWords.size()));
}

// ---------------------------------------------------------------------
// Whole-artifact entry points
// ---------------------------------------------------------------------

Report
verifyCompileRequest(const core::CompileOptions &options,
                     const IntMatrix &weights)
{
    Report report;
    if (const char *msg =
            core::MatrixCompiler::checkCompile(options, weights))
        report.add(Severity::Error, Layer::Compile,
                   "COMPILE-PRECONDITION", msg);
    return report;
}

Report
verifyCompiledMatrix(const core::CompiledMatrix &matrix,
                     const VerifyOptions &opts)
{
    Report report;
    const Verifier verifier;

    NetlistView netlist = NetlistView::of(matrix.netlist());
    for (const auto &out : matrix.outputs())
        if (out.node != kNoNode)
            netlist.outputs.push_back(out.node);
    verifier.checkNetlist(netlist, &report);

    const ExecPlan &plan = matrix.plan();
    const PlanView planView = PlanView::of(plan);
    verifier.checkPlan(planView, &netlist, &report);

    std::shared_ptr<const circuit::Segmentation> seg;
    if (opts.segmentKib != 0) {
        seg = plan.segmentation(circuit::Segmentation::opsForBudget(
            opts.segmentKib, opts.laneWords));
        verifier.checkSegmentation(SegmentationView::of(*seg, plan),
                                   &report);
    }

    if (opts.auditJit) {
        circuit::jit::JitSpec spec;
        spec.laneWords = {1, 4};
        Report jitReport = verifyJitSource(
            plan, spec, circuit::jit::generateJitSource(plan, spec));
        for (auto &d : jitReport.diagnostics)
            report.diagnostics.push_back(std::move(d));
        if (seg != nullptr) {
            spec.segmentation = seg;
            Report gatedReport = verifyJitSource(
                plan, spec,
                circuit::jit::generateJitSource(plan, spec));
            for (auto &d : gatedReport.diagnostics)
                report.diagnostics.push_back(std::move(d));
        }
    }
    return report;
}

Report
verifyDesign(const core::TiledDesign &design, const VerifyOptions &opts)
{
    Report report;
    const Verifier verifier;
    verifier.checkTiles(TileView::of(design), &report);
    for (std::size_t i = 0; i < design.tileCount(); ++i) {
        Report tile = verifyCompiledMatrix(design.tile(i), opts);
        for (auto &d : tile.diagnostics) {
            if (design.tileCount() > 1)
                d.message = "tile " + std::to_string(i) + ": " +
                            d.message;
            report.diagnostics.push_back(std::move(d));
        }
    }
    return report;
}

Report
verifyFile(const std::string &path,
           const experiments::DesignKey *expected,
           const VerifyOptions &opts)
{
    Report report;
    std::shared_ptr<const core::TiledDesign> design;
    experiments::DesignKey key;
    const store::LoadStatus status =
        store::loadDesignFile(path, &design, &key);
    if (status != store::LoadStatus::Ok) {
        const char *rule = "FILE-CORRUPT";
        switch (status) {
          case store::LoadStatus::NotFound:
            rule = "FILE-NOT-FOUND";
            break;
          case store::LoadStatus::BadMagic:
            rule = "FILE-MAGIC";
            break;
          case store::LoadStatus::BadVersion:
            rule = "FILE-VERSION";
            break;
          case store::LoadStatus::Truncated:
            rule = "FILE-TRUNCATED";
            break;
          case store::LoadStatus::ChecksumMismatch:
            rule = "FILE-CHECKSUM";
            break;
          default:
            break;
        }
        report.add(Severity::Error, Layer::File, rule,
                   path + ": " + store::loadStatusName(status));
        return report;
    }
    if (expected != nullptr && !(key == *expected))
        report.add(Severity::Error, Layer::File, "FILE-KEY-MISMATCH",
                   path + ": stored design key does not match the "
                          "requested identity");
    Report designReport = verifyDesign(*design, opts);
    for (auto &d : designReport.diagnostics)
        report.diagnostics.push_back(std::move(d));
    return report;
}

Report
verifyJitSource(const ExecPlan &plan, const circuit::jit::JitSpec &spec,
                const std::string &source)
{
    Report report;
    const JitExpectation expect = JitExpectation::of(plan, spec);
    if (expect.laneWords.empty()) {
        if (!source.empty())
            report.add(Severity::Error, Layer::Jit, "JIT-SECTION",
                       "source generated for no valid lane words");
        return report;
    }
    Verifier().checkJitSource(expect, source, &report);
    return report;
}

} // namespace spatial::analysis
