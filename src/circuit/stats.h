/**
 * @file
 * Aggregate statistics of a netlist, consumed by the FPGA technology
 * mapper and the bench reports.
 */

#ifndef SPATIAL_CIRCUIT_STATS_H
#define SPATIAL_CIRCUIT_STATS_H

#include <cstdint>
#include <cstddef>

#include "circuit/netlist.h"

namespace spatial::circuit
{

/** Per-kind component counts plus the quantities the cost models need. */
struct NetlistCounts
{
    std::size_t inputs = 0;
    std::size_t const0s = 0;
    std::size_t const1s = 0;
    std::size_t dffs = 0;
    std::size_t nots = 0;
    std::size_t ands = 0;
    std::size_t adders = 0;
    std::size_t subs = 0;
    std::size_t totalNodes = 0;
    std::size_t registerBits = 0;
    std::uint32_t maxFanout = 0;
};

/** Walk the netlist once and collect counts. */
NetlistCounts collectCounts(const Netlist &netlist);

} // namespace spatial::circuit

#endif // SPATIAL_CIRCUIT_STATS_H
