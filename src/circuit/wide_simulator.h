/**
 * @file
 * 64-lane bit-parallel simulator: evaluates the same netlist for up to
 * 64 independent input vectors simultaneously, one vector per bit lane
 * of a 64-bit word.  Bit-serial logic is pure boolean algebra per lane
 * (full-adder sum/carry are XOR/majority), so lanes never interact and
 * each lane reproduces the scalar simulator exactly — verified by test.
 *
 * This is how the toolchain makes ESN training on simulated hardware
 * practical: a 64-step input batch costs one netlist pass instead of 64.
 *
 * The simulator also counts register toggles, giving a measured
 * switching-activity factor to replace the power model's default
 * assumption (Vivado's "default assumptions about switching activity").
 */

#ifndef SPATIAL_CIRCUIT_WIDE_SIMULATOR_H
#define SPATIAL_CIRCUIT_WIDE_SIMULATOR_H

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"

namespace spatial::circuit
{

/** Simulates 64 lanes of a netlist per step. */
class WideSimulator
{
  public:
    explicit WideSimulator(const Netlist &netlist);

    /** Power-on state in every lane; clears toggle counters. */
    void reset();

    /**
     * Advance one cycle.  input_words[port] carries one input bit per
     * lane; ports beyond the vector read 0 in all lanes.
     */
    void step(const std::vector<std::uint64_t> &input_words);

    /** Output word (one bit per lane) of a component this cycle. */
    std::uint64_t
    outputWord(NodeId id) const
    {
        SPATIAL_ASSERT(id < cur_.size(), "node ", id, " out of range");
        return cur_[id];
    }

    std::uint64_t cycle() const { return cycle_; }

    /** Total register-bit toggles across all lanes since reset. */
    std::uint64_t toggleCount() const { return toggles_; }

    /**
     * Measured switching activity: toggles per register bit per cycle
     * per lane, the quantity the power model's `activity` stands for.
     */
    double measuredActivity(std::size_t lanes_used = 64) const;

  private:
    const Netlist &netlist_;
    std::vector<std::uint64_t> cur_;
    std::vector<std::uint64_t> regOut_;
    std::vector<std::uint64_t> carry_;
    std::uint64_t cycle_ = 0;
    std::uint64_t toggles_ = 0;
    std::size_t registerBits_ = 0;
};

} // namespace spatial::circuit

#endif // SPATIAL_CIRCUIT_WIDE_SIMULATOR_H
