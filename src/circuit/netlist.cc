#include "circuit/netlist.h"

#include <algorithm>

namespace spatial::circuit
{

const char *
compKindName(CompKind kind)
{
    switch (kind) {
      case CompKind::Const0:
        return "const0";
      case CompKind::Const1:
        return "const1";
      case CompKind::Input:
        return "input";
      case CompKind::Dff:
        return "dff";
      case CompKind::Not:
        return "not";
      case CompKind::And:
        return "and";
      case CompKind::Adder:
        return "adder";
      case CompKind::Sub:
        return "sub";
    }
    return "?";
}

NodeId
Netlist::append(CompKind kind, NodeId a, NodeId b)
{
    const auto id = static_cast<NodeId>(kinds_.size());
    SPATIAL_ASSERT(kinds_.size() < kNoNode, "netlist too large");
    kinds_.push_back(kind);
    srcA_.push_back(a);
    srcB_.push_back(b);
    return id;
}

NodeId
Netlist::addConst0()
{
    return append(CompKind::Const0, kNoNode, kNoNode);
}

NodeId
Netlist::addConst1()
{
    return append(CompKind::Const1, kNoNode, kNoNode);
}

NodeId
Netlist::addInput(std::uint32_t port)
{
    numInputPorts_ = std::max(numInputPorts_, std::size_t{port} + 1);
    return append(CompKind::Input, port, kNoNode);
}

NodeId
Netlist::addDff(NodeId src)
{
    check(src);
    return append(CompKind::Dff, src, kNoNode);
}

NodeId
Netlist::addDelay(NodeId src, std::uint32_t cycles)
{
    NodeId cur = src;
    for (std::uint32_t i = 0; i < cycles; ++i)
        cur = addDff(cur);
    return cur;
}

NodeId
Netlist::addNot(NodeId src)
{
    check(src);
    return append(CompKind::Not, src, kNoNode);
}

NodeId
Netlist::addAnd(NodeId a, NodeId b)
{
    check(a);
    check(b);
    return append(CompKind::And, a, b);
}

NodeId
Netlist::addAdder(NodeId a, NodeId b)
{
    check(a);
    check(b);
    return append(CompKind::Adder, a, b);
}

NodeId
Netlist::addSub(NodeId a, NodeId b)
{
    check(a);
    check(b);
    return append(CompKind::Sub, a, b);
}

std::size_t
Netlist::countKind(CompKind kind) const
{
    return static_cast<std::size_t>(
        std::count(kinds_.begin(), kinds_.end(), kind));
}

std::size_t
Netlist::registerBits() const
{
    std::size_t bits = 0;
    for (const auto kind : kinds_) {
        if (kind == CompKind::Dff)
            bits += 1;
        else if (kind == CompKind::Adder || kind == CompKind::Sub)
            bits += 2; // sum register + carry register
    }
    return bits;
}

std::vector<std::uint32_t>
Netlist::fanouts() const
{
    // Constant rails are absorbed into LUT configurations rather than
    // routed as nets, so edges from Const0/Const1 do not count.
    auto bump = [this](std::vector<std::uint32_t> &fan, NodeId src) {
        const auto kind = kinds_[src];
        if (kind != CompKind::Const0 && kind != CompKind::Const1)
            fan[src]++;
    };

    std::vector<std::uint32_t> fan(kinds_.size(), 0);
    for (std::size_t i = 0; i < kinds_.size(); ++i) {
        switch (kinds_[i]) {
          case CompKind::Dff:
          case CompKind::Not:
            bump(fan, srcA_[i]);
            break;
          case CompKind::And:
          case CompKind::Adder:
          case CompKind::Sub:
            bump(fan, srcA_[i]);
            bump(fan, srcB_[i]);
            break;
          case CompKind::Const0:
          case CompKind::Const1:
          case CompKind::Input:
            break;
        }
    }
    return fan;
}

std::uint32_t
Netlist::maxFanout() const
{
    const auto fan = fanouts();
    return fan.empty() ? 0 : *std::max_element(fan.begin(), fan.end());
}

} // namespace spatial::circuit
