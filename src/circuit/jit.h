/**
 * @file
 * Per-design JIT codegen backend for the tape engine.
 *
 * The interpreted tape still pays a per-op tax every settle/commit
 * step: load a CombOp/RegOp descriptor, scale three slot indices into
 * addresses, branch back around the loop — even though a design's
 * netlist (and therefore its entire op stream) is frozen at compile
 * time.  This backend removes that tax by *generating* the executor:
 * it walks the ExecPlan / Segmentation exactly the way
 * `core/verilog.cc` walks the netlist to emit RTL, but targets C —
 * one straight-line statement per op with the slot indices constant-
 * folded into immediate address offsets, GCC/Clang vector extensions
 * for the W lane-words, the per-segment change-mask gating baked in,
 * and the op *kind* specialized at generation time:
 *
 *  - NOT (`b` = the ones slot, `inv` = ~0) becomes `dst = ~a`;
 *  - DFF (`b` = the zero slot, `bInv` = 0, carry pinned at 0) becomes
 *    a plain copy with no carry traffic at all — the interpreter runs
 *    the full three-input adder for every one of them;
 *  - adder/subtractor keep the full-adder form with `bInv` folded.
 *
 * The generated translation unit is compiled out of process
 * (`cc -O1 -shared -fPIC`; straight-line vector code gains nothing
 * from higher tiers, and -O1 halves the compile latency), `dlopen`'d,
 * and exposes per-lane-word
 * function tables mirroring the entry points BlockSimulator already
 * calls — dense settle/commit sweeps plus, for gated modules, one
 * *fused step* function per segment that folds the owed pending flip,
 * the post-dense restore, the masked comb settle, and the gated
 * register commit into a single pass, with the change-mask gating
 * baked in as the return value.  Comb values consumed only inside
 * their own segment are *inlined* — held in vector registers across
 * the adder expressions, never stored to the value array — when the
 * caller declares which nodes it samples (JitSpec::sampledNodes).
 * Register-only tapes — every CSD-compiled design — whose gated
 * working set spills past per-core cache get a leaner *in-place* step
 * flavor instead: drained in reverse segment order at commit() time
 * they write new register states straight into the value array,
 * eliminating the pending buffer (a full extra copy of the register
 * state), the owed-flip pass, and the post-dense restore outright
 * (see JitTables::inPlace; SPATIAL_JIT_INPLACE=0/1 pins the choice).
 * The host keeps all of the wake-set / dense-hysteresis control
 * logic; outputs and toggle counts are bit-identical to the
 * interpreted tape and to WideSimulator (proved by tests/jit_test.cc).
 *
 * Lifecycle: compilation is seconds-scale for large designs, so
 * modules are built once at admission (DesignStore) or bench setup and
 * attached to the CompiledMatrix.  The temporary `.c`/`.so` are
 * unlinked as soon as the module is loaded (the mapping keeps the
 * object alive), so eviction storms and crashes can never leak disk;
 * the destructor `dlclose`s the handle, so they cannot leak fds
 * either.  Hosts without a toolchain (or with SPATIAL_JIT_CC pointing
 * at nothing) degrade gracefully: compileJitModule() returns null and
 * every caller falls back to the interpreted tape.
 */

#ifndef SPATIAL_CIRCUIT_JIT_H
#define SPATIAL_CIRCUIT_JIT_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "circuit/exec_plan.h"

/**
 * @namespace spatial::circuit::jit
 * Generation, compilation, and loading of per-design native executors.
 */
namespace spatial::circuit::jit
{

/**
 * One fused gated step for one segment: the owed pending->cur flip
 * (when `flip`), the pending-invariant restore after a dense cycle
 * (when `restore`), the segment's masked comb settle, and its gated
 * register commit — one call, one pass over the segment's slice of the
 * state arrays.  `toggles` non-null adds the exact popcount toggle
 * accounting.  Returns kCombChanged when any comb value changed (wake
 * the same-cycle consumers) and kRegChanged when any register next
 * state differs from the presented one (wake the next-cycle consumers
 * and owe a flip).  All arrays are the *base* arrays — every slot and
 * carry/pending offset is an immediate in the generated code.
 */
using SegStepFn = std::uint64_t (*)(std::uint64_t *cur,
                                    std::uint64_t *carry,
                                    std::uint64_t *pending,
                                    std::uint64_t *toggles, int flip,
                                    int restore);

/** SegStepFn result bit: a comb value in the segment changed. */
constexpr std::uint64_t kCombChanged = 1;

/** SegStepFn result bit: a register next state changed. */
constexpr std::uint64_t kRegChanged = 2;

/** Dense settle sweep over the whole comb tape (Kernel::settle). */
using DenseSettleFn = void (*)(std::uint64_t *cur);

/** Dense in-place commit sweep over the whole reg tape; returns the
 *  toggle count when `count_toggles` is non-zero (Kernel::commit /
 *  Kernel::commitReverse semantics depending on the table slot). */
using DenseCommitFn = std::uint64_t (*)(std::uint64_t *cur,
                                        std::uint64_t *carry,
                                        int count_toggles);

/**
 * The generated entry points for one lane-word count W.  All slot
 * indices, tape offsets, and op kinds are compiled into the code; the
 * caller only supplies the base arrays it already owns.
 */
struct JitTables
{
    /** Lane-words per node these functions were generated for. */
    unsigned laneWords = 0;

    /**
     * Gated register-only tapes whose working set at this W spills
     * past per-core cache (or with SPATIAL_JIT_INPLACE=1) are
     * generated *in-place*: each fused step reads its operands from
     * the value array and writes the new register states straight back
     * — no pending buffer, no owed flip, no post-dense restore — which
     * is sound exactly when the host drains the wake set in reverse
     * segment order at commit() time (every reader of a register then
     * runs before its producer's overwrite, the same hazard-free order
     * the dense reverse commit uses).  The host must route segStep
     * calls through commit() for such modules so values sampled
     * between settle() and commit() still present the pre-latch state;
     * `flip`/`restore` arguments are ignored by them.
     */
    bool inPlace = false;

    /** Dense settle over the full tape (plan order when ungated,
     *  segment-schedule order when gated). */
    DenseSettleFn settle = nullptr;

    /**
     * Dense in-place commit.  Ungated modules emit the plan tape in
     * forward (descending-dst) order; gated modules emit the
     * segmentation tape *backwards* (Kernel::commitReverse), the
     * hazard-free order their dense fallback cycles need.
     */
    DenseCommitFn commit = nullptr;

    /** Gated only: one fused step function per segment (segment
     *  order); nullptr for ungated modules. */
    SegStepFn const *segStep = nullptr;
};

/** What to generate a module for. */
struct JitSpec
{
    /**
     * Gated modules bake this Segmentation's schedule (renumbered
     * slots, per-segment functions); null generates an ungated module
     * over the plan's own tapes.
     */
    std::shared_ptr<const Segmentation> segmentation;

    /** Lane-word counts to emit tables for (each in {1,2,4,8,16}). */
    std::vector<unsigned> laneWords = {1};

    /**
     * Extra flags appended to the compile command (after the built-in
     * `-O1 -march=native -shared -fPIC`, so a later `-O2` wins), e.g.
     * to trade compile latency for runtime on long-lived designs.
     */
    std::string extraCflags;

    /**
     * Node ids (netlist numbering) whose settled values the host reads
     * through BlockSimulator::outputWords() between settle() and
     * commit().  When engaged, a gated module may *inline* any comb
     * value consumed only inside its own segment's fused step — the
     * value lives in a vector register and is never stored to the
     * value array, so reading its slot on such a module returns stale
     * data outside dense cycles.  Disengaged (the default) means every
     * node may be sampled: all values are materialized and per-node
     * reads stay exact, at some runtime cost.  The engine passes the
     * design's output columns here; differential tests that probe
     * arbitrary nodes leave it disengaged.
     */
    std::optional<std::vector<NodeId>> sampledNodes;
};

/**
 * A loaded per-design native executor: the dlopen handle plus the
 * resolved per-W tables.  Immutable after load and safe to share
 * across threads (the generated code is reentrant — all state lives
 * in caller-owned arrays).  Destruction dlcloses the handle; the
 * temporary artifacts are already unlinked at load time unless
 * SPATIAL_JIT_KEEP=1 asked to keep them for inspection.
 */
class JitModule
{
  public:
    /** dlclose the handle (liveCount() drops back by one). */
    ~JitModule();

    /** Non-copyable: owns the dlopen handle. */
    JitModule(const JitModule &) = delete;
    /** Non-assignable (same reason). */
    JitModule &operator=(const JitModule &) = delete;

    /** Whether the module was generated from a Segmentation. */
    bool gated() const { return opsPerSegment_ != 0; }

    /** The segmentation op budget baked in (0 for ungated modules). */
    std::size_t opsPerSegment() const { return opsPerSegment_; }

    /** Number of per-segment functions (0 for ungated modules). */
    std::size_t numSegments() const { return numSegments_; }

    /**
     * The entry points for `lane_words` if this module matches the
     * caller's execution mode — `gated` plus, when gated, the same
     * segmentation op budget — and was generated for that W; null
     * otherwise (caller falls back to the interpreted tape).
     */
    const JitTables *tables(unsigned lane_words, bool gated,
                            std::size_t ops_per_segment) const;

    /**
     * Per-slot materialization map (renumbered slot -> non-zero when
     * the generated code stores the slot's settled value to the value
     * array every executed gated step).  Empty means every slot is
     * materialized.  Inlined slots (see JitSpec::sampledNodes) are
     * only current right after a *dense* cycle; per-node differential
     * checks must skip them.
     */
    const std::vector<std::uint8_t> &materializedSlots() const
    {
        return materializedSlots_;
    }

    /** Wall-clock seconds the out-of-process compile took. */
    double compileSeconds() const { return compileSeconds_; }

    /** Generated C source size in bytes (codegen cost telemetry). */
    std::size_t sourceBytes() const { return sourceBytes_; }

    /**
     * Live loaded modules in this process — the fd/leak regression
     * counter: every successful load increments it, every destruction
     * decrements it, so an eviction storm must return it to its
     * baseline.
     */
    static std::size_t liveCount();

  private:
    friend std::shared_ptr<const JitModule>
    compileJitModule(const ExecPlan &plan, const JitSpec &spec);

    JitModule() = default;

    void *handle_ = nullptr; //!< dlopen handle, closed by the dtor
    std::size_t opsPerSegment_ = 0;
    std::size_t numSegments_ = 0;
    std::vector<JitTables> tables_;
    std::vector<std::uint8_t> materializedSlots_; //!< see accessor
    double compileSeconds_ = 0.0;
    std::size_t sourceBytes_ = 0;
    std::string keptSource_; //!< path when SPATIAL_JIT_KEEP=1, else ""
};

/**
 * Generate, compile, and load a native executor for `plan` under
 * `spec`.  Returns null — never throws — when the toolchain is
 * missing, the compile fails, or the object cannot be loaded; callers
 * keep the interpreted tape in that case.  Thread-safe; concurrent
 * calls build independent modules (admission-level dedup is the
 * DesignStore's job).
 */
std::shared_ptr<const JitModule> compileJitModule(const ExecPlan &plan,
                                                  const JitSpec &spec);

/**
 * Whether a working C toolchain is reachable (the SPATIAL_JIT_CC
 * environment variable, else `cc` on PATH), probed with a trivial
 * compile once per distinct compiler and cached.
 */
bool toolchainAvailable();

/**
 * The C translation unit compileJitModule() would compile for
 * (plan, spec) — generation only, no toolchain required.  Exposed for
 * static analysis: the verifier parses the emitted statements and the
 * `spatial_jit_desc_v3` descriptor and reconciles them against the
 * plan (see analysis::verifyJitSource).  Returns an empty string when
 * the spec requests no valid lane-word count.
 */
std::string generateJitSource(const ExecPlan &plan, const JitSpec &spec);

} // namespace spatial::circuit::jit

#endif // SPATIAL_CIRCUIT_JIT_H
