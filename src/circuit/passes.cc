#include "circuit/passes.h"

#include <algorithm>
#include <string>

namespace spatial::circuit
{

namespace
{

/** Number of source operands a kind consumes. */
int
sourceCount(CompKind kind)
{
    switch (kind) {
      case CompKind::Const0:
      case CompKind::Const1:
      case CompKind::Input:
        return 0;
      case CompKind::Dff:
      case CompKind::Not:
        return 1;
      case CompKind::And:
      case CompKind::Adder:
      case CompKind::Sub:
        return 2;
    }
    return 0;
}

} // namespace

ValidationResult
validate(const Netlist &netlist)
{
    const auto n = static_cast<NodeId>(netlist.numNodes());
    std::vector<bool> port_seen(netlist.numInputPorts(), false);

    for (NodeId id = 0; id < n; ++id) {
        const auto kind = netlist.kind(id);
        const int sources = sourceCount(kind);
        if (sources >= 1) {
            const NodeId a = netlist.srcA(id);
            if (a >= id)
                return {false, "node " + std::to_string(id) +
                                   " references non-preceding source " +
                                   std::to_string(a)};
        }
        if (sources >= 2) {
            const NodeId b = netlist.srcB(id);
            if (b >= id)
                return {false, "node " + std::to_string(id) +
                                   " references non-preceding source " +
                                   std::to_string(b)};
        }
        if (kind == CompKind::Input) {
            const auto port = netlist.inputPort(id);
            if (port >= port_seen.size())
                return {false, "input port " + std::to_string(port) +
                                   " out of range"};
            if (port_seen[port])
                return {false, "input port " + std::to_string(port) +
                                   " driven twice"};
            port_seen[port] = true;
        }
    }
    for (std::size_t port = 0; port < port_seen.size(); ++port) {
        if (!port_seen[port])
            return {false, "input port " + std::to_string(port) +
                               " missing"};
    }
    return {true, ""};
}

DepthStats
computeDepths(const Netlist &netlist, const std::vector<NodeId> &outputs)
{
    DepthStats stats;
    const auto n = static_cast<NodeId>(netlist.numNodes());
    stats.depth.assign(netlist.numNodes(), 0);

    for (NodeId id = 0; id < n; ++id) {
        std::uint32_t source_depth = 0;
        switch (netlist.kind(id)) {
          case CompKind::Const0:
          case CompKind::Const1:
          case CompKind::Input:
            continue;
          case CompKind::Dff:
          case CompKind::Not:
            source_depth = stats.depth[netlist.srcA(id)];
            break;
          case CompKind::And:
          case CompKind::Adder:
          case CompKind::Sub:
            source_depth = std::max(stats.depth[netlist.srcA(id)],
                                    stats.depth[netlist.srcB(id)]);
            break;
        }
        const bool registered = netlist.kind(id) == CompKind::Dff ||
                                netlist.kind(id) == CompKind::Adder ||
                                netlist.kind(id) == CompKind::Sub;
        stats.depth[id] = source_depth + (registered ? 1 : 0);
        stats.maxDepth = std::max(stats.maxDepth, stats.depth[id]);
    }

    if (!outputs.empty()) {
        double sum = 0.0;
        for (const auto out : outputs)
            sum += out == kNoNode ? 0.0
                                  : static_cast<double>(stats.depth[out]);
        stats.meanOutputDepth = sum / static_cast<double>(outputs.size());
    }
    return stats;
}

namespace
{

std::vector<bool>
reachableFrom(const Netlist &netlist, const std::vector<NodeId> &outputs)
{
    std::vector<bool> live(netlist.numNodes(), false);
    std::vector<NodeId> stack;
    // Primary inputs are external pins: always part of the interface.
    for (NodeId id = 0; id < netlist.numNodes(); ++id)
        if (netlist.kind(id) == CompKind::Input)
            live[id] = true;
    for (const auto out : outputs)
        if (out != kNoNode && !live[out]) {
            live[out] = true;
            stack.push_back(out);
        }
    while (!stack.empty()) {
        const NodeId id = stack.back();
        stack.pop_back();
        const int sources = sourceCount(netlist.kind(id));
        if (sources >= 1) {
            const NodeId a = netlist.srcA(id);
            if (!live[a]) {
                live[a] = true;
                stack.push_back(a);
            }
        }
        if (sources >= 2) {
            const NodeId b = netlist.srcB(id);
            if (!live[b]) {
                live[b] = true;
                stack.push_back(b);
            }
        }
    }
    return live;
}

} // namespace

std::size_t
countDeadNodes(const Netlist &netlist, const std::vector<NodeId> &outputs)
{
    const auto live = reachableFrom(netlist, outputs);
    std::size_t dead = 0;
    for (const auto flag : live)
        dead += !flag;
    return dead;
}

Netlist
eliminateDeadNodes(const Netlist &netlist, std::vector<NodeId> &outputs)
{
    const auto live = reachableFrom(netlist, outputs);
    const auto n = static_cast<NodeId>(netlist.numNodes());

    Netlist out;
    std::vector<NodeId> remap(netlist.numNodes(), kNoNode);
    for (NodeId id = 0; id < n; ++id) {
        if (!live[id])
            continue;
        switch (netlist.kind(id)) {
          case CompKind::Const0:
            remap[id] = out.addConst0();
            break;
          case CompKind::Const1:
            remap[id] = out.addConst1();
            break;
          case CompKind::Input:
            remap[id] = out.addInput(netlist.inputPort(id));
            break;
          case CompKind::Dff:
            remap[id] = out.addDff(remap[netlist.srcA(id)]);
            break;
          case CompKind::Not:
            remap[id] = out.addNot(remap[netlist.srcA(id)]);
            break;
          case CompKind::And:
            remap[id] = out.addAnd(remap[netlist.srcA(id)],
                                   remap[netlist.srcB(id)]);
            break;
          case CompKind::Adder:
            remap[id] = out.addAdder(remap[netlist.srcA(id)],
                                     remap[netlist.srcB(id)]);
            break;
          case CompKind::Sub:
            remap[id] = out.addSub(remap[netlist.srcA(id)],
                                   remap[netlist.srcB(id)]);
            break;
        }
    }
    for (auto &node : outputs)
        if (node != kNoNode)
            node = remap[node];
    return out;
}

} // namespace spatial::circuit
