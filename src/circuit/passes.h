/**
 * @file
 * Analysis and transformation passes over netlists: structural
 * validation, pipeline-depth statistics (the quantities Figure 11's
 * frequency discussion reasons about), and dead-node elimination used
 * to confirm the compiler emits no unreachable hardware.
 */

#ifndef SPATIAL_CIRCUIT_PASSES_H
#define SPATIAL_CIRCUIT_PASSES_H

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.h"

namespace spatial::circuit
{

/** Outcome of structural validation. */
struct ValidationResult
{
    bool ok = true;
    std::string message; //!< first problem found, empty when ok
};

/**
 * Check structural invariants: every source reference precedes its user
 * (SSA order, which also guarantees acyclicity through combinational
 * nodes), source kinds are sensible (e.g. nothing references beyond the
 * node table), and input ports are dense.
 */
ValidationResult validate(const Netlist &netlist);

/** Per-node register depth: registered steps from any primary input. */
struct DepthStats
{
    std::uint32_t maxDepth = 0;     //!< deepest pipeline in the design
    double meanOutputDepth = 0.0;   //!< mean depth over `outputs`
    std::vector<std::uint32_t> depth; //!< per node
};

/**
 * Compute register depth for every node (combinational nodes inherit
 * the max of their sources; registered nodes add one).
 *
 * @param outputs nodes whose mean depth is reported (may be empty).
 */
DepthStats computeDepths(const Netlist &netlist,
                         const std::vector<NodeId> &outputs);

/**
 * Count nodes not reachable (by reverse traversal) from the given
 * outputs.  The compiler is expected to emit none; the naive ablation
 * variant does (culled columns), and this pass quantifies it.
 */
std::size_t countDeadNodes(const Netlist &netlist,
                           const std::vector<NodeId> &outputs);

/**
 * Rebuild a netlist containing only nodes reachable from `outputs`.
 *
 * @param[in,out] outputs rewritten to the new node ids.
 * @return the compacted netlist.
 */
Netlist eliminateDeadNodes(const Netlist &netlist,
                           std::vector<NodeId> &outputs);

} // namespace spatial::circuit

#endif // SPATIAL_CIRCUIT_PASSES_H
