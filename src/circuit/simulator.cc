#include "circuit/simulator.h"

namespace spatial::circuit
{

Simulator::Simulator(const Netlist &netlist)
    : netlist_(netlist),
      cur_(netlist.numNodes(), 0),
      regOut_(netlist.numNodes(), 0),
      carry_(netlist.numNodes(), 0)
{
    reset();
}

void
Simulator::reset()
{
    cycle_ = 0;
    for (std::size_t i = 0; i < netlist_.numNodes(); ++i) {
        cur_[i] = 0;
        regOut_[i] = 0;
        // A subtractor is carry-in 1 plus an inverted operand: the two's
        // complement -b = ~b + 1 identity.
        carry_[i] =
            netlist_.kind(static_cast<NodeId>(i)) == CompKind::Sub ? 1 : 0;
    }
}

void
Simulator::step(const std::vector<std::uint8_t> &input_bits)
{
    const auto n = static_cast<NodeId>(netlist_.numNodes());

    // Phase 1: settle every output for this cycle.  Ascending id order is
    // a valid topological order because the builder only references
    // already-created nodes.
    for (NodeId id = 0; id < n; ++id) {
        switch (netlist_.kind(id)) {
          case CompKind::Const0:
            cur_[id] = 0;
            break;
          case CompKind::Const1:
            cur_[id] = 1;
            break;
          case CompKind::Input: {
            const auto port = netlist_.inputPort(id);
            cur_[id] = port < input_bits.size() ? input_bits[port] : 0;
            break;
          }
          case CompKind::Dff:
          case CompKind::Adder:
          case CompKind::Sub:
            cur_[id] = regOut_[id];
            break;
          case CompKind::Not:
            cur_[id] = cur_[netlist_.srcA(id)] ? 0 : 1;
            break;
          case CompKind::And:
            cur_[id] = cur_[netlist_.srcA(id)] & cur_[netlist_.srcB(id)];
            break;
        }
    }

    // Phase 2: latch next state from the settled values.
    for (NodeId id = 0; id < n; ++id) {
        switch (netlist_.kind(id)) {
          case CompKind::Dff:
            regOut_[id] = cur_[netlist_.srcA(id)];
            break;
          case CompKind::Adder: {
            const int a = cur_[netlist_.srcA(id)];
            const int b = cur_[netlist_.srcB(id)];
            const int s = a + b + carry_[id];
            regOut_[id] = static_cast<std::uint8_t>(s & 1);
            carry_[id] = static_cast<std::uint8_t>(s >> 1);
            break;
          }
          case CompKind::Sub: {
            const int a = cur_[netlist_.srcA(id)];
            const int b = cur_[netlist_.srcB(id)] ? 0 : 1; // inverted
            const int s = a + b + carry_[id];
            regOut_[id] = static_cast<std::uint8_t>(s & 1);
            carry_[id] = static_cast<std::uint8_t>(s >> 1);
            break;
          }
          default:
            break;
        }
    }

    ++cycle_;
}

} // namespace spatial::circuit
