#include "circuit/wide_simulator.h"

#include <bit>

namespace spatial::circuit
{

WideSimulator::WideSimulator(const Netlist &netlist)
    : netlist_(netlist),
      cur_(netlist.numNodes(), 0),
      regOut_(netlist.numNodes(), 0),
      carry_(netlist.numNodes(), 0),
      registerBits_(netlist.registerBits())
{
    reset();
}

void
WideSimulator::reset()
{
    cycle_ = 0;
    toggles_ = 0;
    for (std::size_t i = 0; i < netlist_.numNodes(); ++i) {
        cur_[i] = 0;
        regOut_[i] = 0;
        carry_[i] =
            netlist_.kind(static_cast<NodeId>(i)) == CompKind::Sub
                ? ~std::uint64_t{0}
                : 0;
    }
}

void
WideSimulator::step(const std::vector<std::uint64_t> &input_words)
{
    const auto n = static_cast<NodeId>(netlist_.numNodes());

    // Phase 1: settle outputs (id order is topological).
    for (NodeId id = 0; id < n; ++id) {
        switch (netlist_.kind(id)) {
          case CompKind::Const0:
            cur_[id] = 0;
            break;
          case CompKind::Const1:
            cur_[id] = ~std::uint64_t{0};
            break;
          case CompKind::Input: {
            const auto port = netlist_.inputPort(id);
            cur_[id] = port < input_words.size() ? input_words[port] : 0;
            break;
          }
          case CompKind::Dff:
          case CompKind::Adder:
          case CompKind::Sub:
            cur_[id] = regOut_[id];
            break;
          case CompKind::Not:
            cur_[id] = ~cur_[netlist_.srcA(id)];
            break;
          case CompKind::And:
            cur_[id] = cur_[netlist_.srcA(id)] & cur_[netlist_.srcB(id)];
            break;
        }
    }

    // Phase 2: latch, counting toggles lane-wise.
    for (NodeId id = 0; id < n; ++id) {
        switch (netlist_.kind(id)) {
          case CompKind::Dff: {
            const std::uint64_t next = cur_[netlist_.srcA(id)];
            toggles_ += std::popcount(regOut_[id] ^ next);
            regOut_[id] = next;
            break;
          }
          case CompKind::Adder:
          case CompKind::Sub: {
            const std::uint64_t a = cur_[netlist_.srcA(id)];
            const std::uint64_t b_raw = cur_[netlist_.srcB(id)];
            const std::uint64_t b =
                netlist_.kind(id) == CompKind::Sub ? ~b_raw : b_raw;
            const std::uint64_t c = carry_[id];
            const std::uint64_t sum = a ^ b ^ c;
            const std::uint64_t carry = (a & b) | (a & c) | (b & c);
            toggles_ += std::popcount(regOut_[id] ^ sum);
            toggles_ += std::popcount(carry_[id] ^ carry);
            regOut_[id] = sum;
            carry_[id] = carry;
            break;
          }
          default:
            break;
        }
    }
    ++cycle_;
}

double
WideSimulator::measuredActivity(std::size_t lanes_used) const
{
    SPATIAL_ASSERT(lanes_used >= 1 && lanes_used <= 64, "lanes ",
                   lanes_used);
    if (cycle_ == 0 || registerBits_ == 0)
        return 0.0;
    return static_cast<double>(toggles_) /
           (static_cast<double>(registerBits_) *
            static_cast<double>(cycle_) * static_cast<double>(lanes_used));
}

} // namespace spatial::circuit
