/**
 * @file
 * Cycle-accurate two-phase simulator for bit-serial netlists.
 *
 * Each step() models one clock cycle: first every component's output for
 * the cycle is settled in topological (id) order — registered components
 * present their stored bit, combinational ones propagate — then all
 * registers latch their next state.  This matches the synchronous single-
 * clock semantics of the paper's FPGA design.
 */

#ifndef SPATIAL_CIRCUIT_SIMULATOR_H
#define SPATIAL_CIRCUIT_SIMULATOR_H

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"

namespace spatial::circuit
{

/** Simulates a Netlist one clock cycle at a time. */
class Simulator
{
  public:
    /** Bind to a netlist; the netlist must outlive the simulator. */
    explicit Simulator(const Netlist &netlist);

    /** Return to the power-on state (registers 0, subtractor carries 1). */
    void reset();

    /**
     * Advance one clock cycle.
     *
     * @param input_bits one bit per input port (indexed by port); ports
     *        beyond the vector's size read 0.
     */
    void step(const std::vector<std::uint8_t> &input_bits);

    /** Output bit of a component during the most recent cycle. */
    bool
    outputBit(NodeId id) const
    {
        SPATIAL_ASSERT(id < cur_.size(), "node ", id, " out of range");
        return cur_[id] != 0;
    }

    /** Number of step() calls since the last reset. */
    std::uint64_t cycle() const { return cycle_; }

  private:
    const Netlist &netlist_;
    std::vector<std::uint8_t> cur_;    //!< settled output bit this cycle
    std::vector<std::uint8_t> regOut_; //!< Dff bit / adder sum register
    std::vector<std::uint8_t> carry_;  //!< adder/sub carry register
    std::uint64_t cycle_ = 0;
};

} // namespace spatial::circuit

#endif // SPATIAL_CIRCUIT_SIMULATOR_H
