/**
 * @file
 * Compiled execution plan for netlist simulation.
 *
 * The per-node `switch` interpreters (Simulator, WideSimulator) re-decide
 * every component's kind for all N nodes every cycle — twice, once to
 * settle and once to latch — and re-evaluate constants and inputs each
 * pass.  An ExecPlan is built once per netlist and turns it into flat,
 * branch-free instruction tapes:
 *
 *  - a combinational settle tape in topological (id) order, with NOT
 *    folded into the single op form `(a & b) ^ inv` (b = the always-ones
 *    slot), so the settle loop has no dispatch at all;
 *  - one unified register commit tape covering DFF, adder, and
 *    subtractor via the bit-serial full-adder form
 *    `sum = a ^ (b ^ bInv) ^ carry`: a DFF is an adder with b = the
 *    always-zero slot (carry stays 0), a subtractor an adder with b
 *    inverted and carry seeded to 1.  The tape is sorted by descending
 *    destination id, which makes in-place commit hazard-free — the
 *    builder's SSA rule puts every source below its consumer, so all
 *    readers of a node commit before that node's slot is overwritten;
 *  - a dense input map (node, port) and the list of constant-one nodes,
 *    so constants are materialized exactly once at reset.
 *
 * The plan owns all of its data: it does not reference the Netlist after
 * construction, so a CompiledMatrix can cache one and share it across
 * simulator instances and worker threads (the tapes are immutable after
 * build and therefore safe for concurrent readers).
 *
 * For activity-gated execution the plan additionally hands out cached
 * Segmentations: the same ops re-scheduled into an ordered list of
 * cache-sized segments with a precomputed cross-segment dependency
 * frontier, so a simulator can skip every segment whose fan-in did not
 * change last cycle (see the Segmentation class comment).
 */

#ifndef SPATIAL_CIRCUIT_EXEC_PLAN_H
#define SPATIAL_CIRCUIT_EXEC_PLAN_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "circuit/netlist.h"

namespace spatial::circuit
{

class Segmentation;

/** Immutable, pre-scheduled instruction tapes for one netlist. */
class ExecPlan
{
  public:
    /**
     * Combinational op: `cur[dst] = (cur[a] & cur[b]) ^ inv`.
     * AND has inv = 0; NOT has b = the always-ones slot and inv = ~0.
     */
    struct CombOp
    {
        NodeId dst;        //!< written value slot
        NodeId a;          //!< first source slot
        NodeId b;          //!< second source slot (ones slot for NOT)
        std::uint64_t inv; //!< XOR mask: 0 for AND, ~0 for NOT
    };

    /** Externally driven stream: `cur[node] = input_words[port]`. */
    struct InputOp
    {
        NodeId node;        //!< driven value slot
        std::uint32_t port; //!< dense input port index
    };

    /**
     * Unified register commit op (bit-serial full adder):
     *
     *   be         = cur[b] ^ bInv
     *   sum        = cur[a] ^ be ^ carry
     *   carry'     = majority(cur[a], be, carry)
     *   cur[dst]   = sum
     *
     * DFF: b = zeroSlot(), bInv = 0, carry starts 0 (and stays 0).
     * Adder: bInv = 0, carry starts 0.  Sub: bInv = ~0, carry starts 1.
     * The carry register lives in a dense per-op array of the executing
     * simulator, indexed by the op's tape position.
     */
    struct RegOp
    {
        NodeId dst;              //!< written value slot
        NodeId a;                //!< addend source slot
        NodeId b;                //!< addend source slot (zero slot: DFF)
        std::uint64_t bInv;      //!< XOR mask on b (~0 for subtract)
        std::uint64_t carryInit; //!< carry seed at reset (1 for subtract)
    };

    /** Build the tapes; the netlist is not referenced afterwards. */
    explicit ExecPlan(const Netlist &netlist);

    /** Number of netlist components the plan covers. */
    std::size_t numNodes() const { return numNodes_; }

    /**
     * Number of value slots a simulator must allocate: one per node
     * plus the trailing always-ones and always-zero slots.
     */
    std::size_t numSlots() const { return numNodes_ + 2; }

    /** Slot holding the all-ones word (index numNodes()). */
    NodeId onesSlot() const { return static_cast<NodeId>(numNodes_); }

    /** Slot holding the all-zeros word (index numNodes() + 1). */
    NodeId zeroSlot() const { return static_cast<NodeId>(numNodes_ + 1); }

    /** Number of externally driven input ports. */
    std::size_t numInputPorts() const { return numInputPorts_; }

    /** Register bits (adder/sub = 2, dff = 1) for activity accounting. */
    std::size_t registerBits() const { return registerBits_; }

    /** Settle tape, in topological (ascending id) order. */
    const std::vector<CombOp> &comb() const { return comb_; }

    /** Externally driven streams, in ascending node order. */
    const std::vector<InputOp> &inputs() const { return inputs_; }

    /** Commit tape, sorted by descending dst (see class comment). */
    const std::vector<RegOp> &regs() const { return regs_; }

    /** Const1 nodes, materialized once at reset. */
    const std::vector<NodeId> &constOnes() const { return constOnes_; }

    /**
     * The plan's ops re-scheduled into gateable segments of
     * `opsPerSegment` ops each (see Segmentation).  Built lazily and
     * cached per size, so every simulator and worker thread requesting
     * the same blocking shares one immutable instance; thread-safe.
     */
    std::shared_ptr<const Segmentation>
    segmentation(std::size_t opsPerSegment) const;

  private:
    std::size_t numNodes_ = 0;
    std::size_t numInputPorts_ = 0;
    std::size_t registerBits_ = 0;
    std::vector<CombOp> comb_;
    std::vector<InputOp> inputs_;
    std::vector<RegOp> regs_;
    std::vector<NodeId> constOnes_;

    mutable std::mutex segmentationMutex_;
    mutable std::map<std::size_t, std::shared_ptr<const Segmentation>>
        segmentations_;
};

/**
 * The plan's ops re-scheduled for cache-blocked, activity-gated
 * execution.
 *
 * The two monolithic tapes sweep every op every cycle.  A Segmentation
 * partitions the same ops into an ordered list of fixed-size
 * **segments** that a simulator settles and commits in one fused pass —
 * and, crucially, can *skip*: a segment whose fan-in did not change
 * since it last ran is provably quiescent (every op is a pure function
 * of its sources and its own carry), so skipping reproduces its outputs
 * and its zero toggles exactly.
 *
 * Ops are ordered by (register depth, id) instead of raw id.  Register
 * depth is the bit-serial stream latency: nodes at depth d emit result
 * bit t at cycle d + t, so nodes that go quiescent together — e.g. the
 * leaf adders of every column once the input stream is sign-extending —
 * are grouped into the same segments, which is what makes whole-segment
 * gating track the circuit's actual activity wavefront.  The order is
 * still topological for the settle sweep (a comb op's sources never
 * sort after it), and register commits are order-free because gated
 * execution writes next states to a pending buffer instead of in place.
 *
 * Per segment the build precomputes the **consumers**: the segments
 * reading its comb values (to wake in the same cycle when they
 * change) and the segments reading its registers (to wake the next
 * cycle; a segment with registers also re-arms itself, since its
 * carries are self-feeding).  Cycles whose driven inputs changed run
 * everything dense, so input fan-out needs no index.
 *
 * Value slots are **renumbered into schedule order** (slotOf()): a
 * segment's destinations become one contiguous slice of the value
 * array, so its fused settle/commit pass streams over its own
 * cache-sized slice instead of scattering stores across the node-id
 * space, and its fan-in reads mostly hit the slices of the segments
 * just before it.  The segmentation's op tapes, input map, and
 * constant list are pre-rewritten into the new numbering; a simulator
 * only needs slotOf() to translate a caller's NodeId when sampling
 * outputs.
 *
 * Immutable after construction and shared across threads, exactly like
 * the plan itself.
 */
class Segmentation
{
  public:
    /** One gateable slice of the fused execution order. */
    struct Segment
    {
        /** Comb-op range [combBegin, combEnd) into comb(). */
        std::uint32_t combBegin;
        /** One past the segment's last comb op. */
        std::uint32_t combEnd;
        /** Reg-op range [regBegin, regEnd) into regs(). */
        std::uint32_t regBegin;
        /** One past the segment's last reg op. */
        std::uint32_t regEnd;
        /**
         * Segments reading this one's *comb* values, to wake in the
         * same cycle when they change: [combConsumersBegin,
         * combConsumersEnd) into consumers().  All strictly after this
         * segment in execution order.
         */
        std::uint32_t combConsumersBegin;
        /** One past the last same-cycle consumer. */
        std::uint32_t combConsumersEnd;
        /**
         * Segments reading this one's *register* values, to wake next
         * cycle when they change (registers present the new state after
         * the deferred flip): [regConsumersBegin, regConsumersEnd) into
         * consumers().
         */
        std::uint32_t regConsumersBegin;
        /** One past the last next-cycle consumer. */
        std::uint32_t regConsumersEnd;
    };

    /**
     * Re-schedule `plan` into segments of at most `opsPerSegment` ops
     * (clamped to at least 1).  Prefer ExecPlan::segmentation(), which
     * caches the result.
     */
    Segmentation(const ExecPlan &plan, std::size_t opsPerSegment);

    /** The ordered segments. */
    const std::vector<Segment> &segments() const { return segments_; }

    /**
     * Comb ops in segment order (topological across segments), with
     * sources and destinations in renumbered slot space.
     */
    const std::vector<ExecPlan::CombOp> &comb() const { return comb_; }

    /**
     * Reg ops in renumbered slot space, in segment (ascending slot)
     * order.  Gated per-segment sweeps commit through a pending buffer
     * so the order carries no in-place hazard; the dense full-sweep
     * fallback walks this same tape *backwards* (Kernel::commitReverse)
     * — descending destination slots — which is hazard-free in place
     * because every source slot is below its op's slot.
     */
    const std::vector<ExecPlan::RegOp> &regs() const { return regs_; }

    /**
     * Concatenated per-segment consumer segment indices, split into
     * same-cycle comb readers and next-cycle register readers (see
     * Segment).  A simulator uses these to wake exactly the segments a
     * change can affect, so quiescent segments cost nothing at all —
     * not even a scan.  (Cycles whose driven inputs changed run the
     * dense fallback, so no input-to-segment index is needed.)
     */
    const std::vector<std::uint32_t> &consumers() const
    {
        return consumers_;
    }

    /** The plan's input map in renumbered slot space. */
    const std::vector<ExecPlan::InputOp> &inputs() const { return inputs_; }

    /** The plan's Const1 list in renumbered slot space. */
    const std::vector<NodeId> &constOnes() const { return constOnes_; }

    /**
     * Renumbered value slot of each original node id (the ones/zero
     * slots keep their indices at numNodes and numNodes + 1).  Only
     * needed to sample a node's output; the op tapes are pre-rewritten.
     */
    const std::vector<NodeId> &slotOf() const { return slotOf_; }

    /** The op budget the segments were built with. */
    std::size_t opsPerSegment() const { return opsPerSegment_; }

    /**
     * The op budget for a `segmentKib`-KiB working-set target at
     * `laneWords` words per node: an op touches about four slots (dst,
     * two sources, carry), so a segment of this many ops keeps roughly
     * segmentKib KiB of the value array hot between its settle and its
     * commit.  Clamped to at least 16 ops.
     */
    static std::size_t opsForBudget(std::size_t segmentKib,
                                    unsigned laneWords);

  private:
    std::size_t opsPerSegment_ = 0;
    std::vector<Segment> segments_;
    std::vector<ExecPlan::CombOp> comb_;
    std::vector<ExecPlan::RegOp> regs_;
    std::vector<std::uint32_t> consumers_;
    std::vector<ExecPlan::InputOp> inputs_;
    std::vector<NodeId> constOnes_;
    std::vector<NodeId> slotOf_;
};

} // namespace spatial::circuit

#endif // SPATIAL_CIRCUIT_EXEC_PLAN_H
