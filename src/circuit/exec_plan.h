/**
 * @file
 * Compiled execution plan for netlist simulation.
 *
 * The per-node `switch` interpreters (Simulator, WideSimulator) re-decide
 * every component's kind for all N nodes every cycle — twice, once to
 * settle and once to latch — and re-evaluate constants and inputs each
 * pass.  An ExecPlan is built once per netlist and turns it into flat,
 * branch-free instruction tapes:
 *
 *  - a combinational settle tape in topological (id) order, with NOT
 *    folded into the single op form `(a & b) ^ inv` (b = the always-ones
 *    slot), so the settle loop has no dispatch at all;
 *  - one unified register commit tape covering DFF, adder, and
 *    subtractor via the bit-serial full-adder form
 *    `sum = a ^ (b ^ bInv) ^ carry`: a DFF is an adder with b = the
 *    always-zero slot (carry stays 0), a subtractor an adder with b
 *    inverted and carry seeded to 1.  The tape is sorted by descending
 *    destination id, which makes in-place commit hazard-free — the
 *    builder's SSA rule puts every source below its consumer, so all
 *    readers of a node commit before that node's slot is overwritten;
 *  - a dense input map (node, port) and the list of constant-one nodes,
 *    so constants are materialized exactly once at reset.
 *
 * The plan owns all of its data: it does not reference the Netlist after
 * construction, so a CompiledMatrix can cache one and share it across
 * simulator instances and worker threads (the tapes are immutable after
 * build and therefore safe for concurrent readers).
 */

#ifndef SPATIAL_CIRCUIT_EXEC_PLAN_H
#define SPATIAL_CIRCUIT_EXEC_PLAN_H

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"

namespace spatial::circuit
{

/** Immutable, pre-scheduled instruction tapes for one netlist. */
class ExecPlan
{
  public:
    /**
     * Combinational op: `cur[dst] = (cur[a] & cur[b]) ^ inv`.
     * AND has inv = 0; NOT has b = the always-ones slot and inv = ~0.
     */
    struct CombOp
    {
        NodeId dst;
        NodeId a;
        NodeId b;
        std::uint64_t inv;
    };

    /** Externally driven stream: `cur[node] = input_words[port]`. */
    struct InputOp
    {
        NodeId node;
        std::uint32_t port;
    };

    /**
     * Unified register commit op (bit-serial full adder):
     *
     *   be         = cur[b] ^ bInv
     *   sum        = cur[a] ^ be ^ carry
     *   carry'     = majority(cur[a], be, carry)
     *   cur[dst]   = sum
     *
     * DFF: b = zeroSlot(), bInv = 0, carry starts 0 (and stays 0).
     * Adder: bInv = 0, carry starts 0.  Sub: bInv = ~0, carry starts 1.
     * The carry register lives in a dense per-op array of the executing
     * simulator, indexed by the op's tape position.
     */
    struct RegOp
    {
        NodeId dst;
        NodeId a;
        NodeId b;
        std::uint64_t bInv;
        std::uint64_t carryInit;
    };

    /** Build the tapes; the netlist is not referenced afterwards. */
    explicit ExecPlan(const Netlist &netlist);

    std::size_t numNodes() const { return numNodes_; }

    /**
     * Number of value slots a simulator must allocate: one per node
     * plus the trailing always-ones and always-zero slots.
     */
    std::size_t numSlots() const { return numNodes_ + 2; }

    /** Slot holding the all-ones word (index numNodes()). */
    NodeId onesSlot() const { return static_cast<NodeId>(numNodes_); }

    /** Slot holding the all-zeros word (index numNodes() + 1). */
    NodeId zeroSlot() const { return static_cast<NodeId>(numNodes_ + 1); }

    std::size_t numInputPorts() const { return numInputPorts_; }

    /** Register bits (adder/sub = 2, dff = 1) for activity accounting. */
    std::size_t registerBits() const { return registerBits_; }

    const std::vector<CombOp> &comb() const { return comb_; }
    const std::vector<InputOp> &inputs() const { return inputs_; }

    /** Commit tape, sorted by descending dst (see class comment). */
    const std::vector<RegOp> &regs() const { return regs_; }

    /** Const1 nodes, materialized once at reset. */
    const std::vector<NodeId> &constOnes() const { return constOnes_; }

  private:
    std::size_t numNodes_ = 0;
    std::size_t numInputPorts_ = 0;
    std::size_t registerBits_ = 0;
    std::vector<CombOp> comb_;
    std::vector<InputOp> inputs_;
    std::vector<RegOp> regs_;
    std::vector<NodeId> constOnes_;
};

} // namespace spatial::circuit

#endif // SPATIAL_CIRCUIT_EXEC_PLAN_H
