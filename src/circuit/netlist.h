/**
 * @file
 * Component-level netlist IR for bit-serial spatial designs.
 *
 * Every component produces exactly one bit per cycle.  Registered
 * components (D flip-flop, bit-serial adder/subtractor) present their
 * stored bit during a cycle and latch their next state on commit; purely
 * combinational components (NOT, AND) propagate within the cycle.  The
 * builder enforces SSA ordering — a component may only reference
 * previously created components — so a single in-order pass settles all
 * combinational values each cycle.
 */

#ifndef SPATIAL_CIRCUIT_NETLIST_H
#define SPATIAL_CIRCUIT_NETLIST_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace spatial::circuit
{

/** Identifier of a netlist component; also its topological position. */
using NodeId = std::uint32_t;

/** Sentinel for "no source". */
constexpr NodeId kNoNode = 0xffffffffu;

/** Kinds of bit-serial components. */
enum class CompKind : std::uint8_t
{
    Const0, //!< constant 0 stream
    Const1, //!< constant 1 stream (tied-high; naive-mode AND inputs)
    Input,  //!< externally driven stream (one per matrix row)
    Dff,    //!< 1-cycle delay register
    Not,    //!< combinational inverter
    And,    //!< combinational 2-input AND
    Adder,  //!< bit-serial adder: registered sum, registered carry (init 0)
    Sub,    //!< bit-serial subtractor a-b: carry init 1, b inverted
};

/** Printable name of a component kind. */
const char *compKindName(CompKind kind);

/**
 * A flat, append-only netlist.
 *
 * Stored as structure-of-arrays so million-node reservoir matrices
 * simulate with good locality.
 */
class Netlist
{
  public:
    /** Add a constant-0 stream. */
    NodeId addConst0();

    /** Add a constant-1 stream. */
    NodeId addConst1();

    /**
     * Add an externally driven input stream.
     * @param port dense index the simulator uses to drive the bit.
     */
    NodeId addInput(std::uint32_t port);

    /** Add a 1-cycle delay (D flip-flop) of `src`. */
    NodeId addDff(NodeId src);

    /** Add a chain of `cycles` DFFs (0 returns src unchanged). */
    NodeId addDelay(NodeId src, std::uint32_t cycles);

    /** Add a combinational inverter. */
    NodeId addNot(NodeId src);

    /** Add a combinational AND. */
    NodeId addAnd(NodeId a, NodeId b);

    /** Add a bit-serial adder of two streams (LSb first). */
    NodeId addAdder(NodeId a, NodeId b);

    /** Add a bit-serial subtractor computing a - b. */
    NodeId addSub(NodeId a, NodeId b);

    std::size_t numNodes() const { return kinds_.size(); }
    std::size_t numInputPorts() const { return numInputPorts_; }

    CompKind kind(NodeId id) const { return kinds_[check(id)]; }
    NodeId srcA(NodeId id) const { return srcA_[check(id)]; }
    NodeId srcB(NodeId id) const { return srcB_[check(id)]; }

    /** Input port index (valid only for Input components). */
    std::uint32_t
    inputPort(NodeId id) const
    {
        SPATIAL_ASSERT(kind(id) == CompKind::Input, "node ", id,
                       " is not an input");
        return srcA_[id];
    }

    /** Count of components of one kind. */
    std::size_t countKind(CompKind kind) const;

    /** Number of register bits (adder/sub = 2, dff = 1, others 0). */
    std::size_t registerBits() const;

    /** Per-node fanout (number of users of each node's output). */
    std::vector<std::uint32_t> fanouts() const;

    /** Largest fanout in the design (drives the Fmax model). */
    std::uint32_t maxFanout() const;

  private:
    NodeId
    check(NodeId id) const
    {
        SPATIAL_ASSERT(id < kinds_.size(), "node id ", id, " out of range ",
                       kinds_.size());
        return id;
    }

    NodeId append(CompKind kind, NodeId a, NodeId b);

    std::vector<CompKind> kinds_;
    std::vector<NodeId> srcA_; //!< also the port index for Input nodes
    std::vector<NodeId> srcB_;
    std::size_t numInputPorts_ = 0;
};

} // namespace spatial::circuit

#endif // SPATIAL_CIRCUIT_NETLIST_H
