#include "circuit/exec_plan.h"

#include <algorithm>

namespace spatial::circuit
{

ExecPlan::ExecPlan(const Netlist &netlist)
    : numNodes_(netlist.numNodes()),
      numInputPorts_(netlist.numInputPorts()),
      registerBits_(netlist.registerBits())
{
    const auto n = static_cast<NodeId>(numNodes_);
    for (NodeId id = 0; id < n; ++id) {
        switch (netlist.kind(id)) {
          case CompKind::Const0:
            // Value slots power on to zero and nothing ever writes a
            // Const0 slot, so the tape carries no op for it.
            break;
          case CompKind::Const1:
            constOnes_.push_back(id);
            break;
          case CompKind::Input:
            inputs_.push_back(InputOp{id, netlist.inputPort(id)});
            break;
          case CompKind::Not:
            comb_.push_back(
                CombOp{id, netlist.srcA(id), onesSlot(), ~std::uint64_t{0}});
            break;
          case CompKind::And:
            comb_.push_back(
                CombOp{id, netlist.srcA(id), netlist.srcB(id), 0});
            break;
          case CompKind::Dff:
            regs_.push_back(
                RegOp{id, netlist.srcA(id), zeroSlot(), 0, 0});
            break;
          case CompKind::Adder:
            regs_.push_back(
                RegOp{id, netlist.srcA(id), netlist.srcB(id), 0, 0});
            break;
          case CompKind::Sub:
            regs_.push_back(RegOp{id, netlist.srcA(id), netlist.srcB(id),
                                  ~std::uint64_t{0}, ~std::uint64_t{0}});
            break;
        }
    }

    // Appended in ascending id order above; reverse for the in-place
    // commit ordering (descending dst).
    std::reverse(regs_.begin(), regs_.end());
}

} // namespace spatial::circuit
