#include "circuit/exec_plan.h"

#include <algorithm>

namespace spatial::circuit
{

ExecPlan::ExecPlan(const Netlist &netlist)
    : numNodes_(netlist.numNodes()),
      numInputPorts_(netlist.numInputPorts()),
      registerBits_(netlist.registerBits())
{
    const auto n = static_cast<NodeId>(numNodes_);
    for (NodeId id = 0; id < n; ++id) {
        switch (netlist.kind(id)) {
          case CompKind::Const0:
            // Value slots power on to zero and nothing ever writes a
            // Const0 slot, so the tape carries no op for it.
            break;
          case CompKind::Const1:
            constOnes_.push_back(id);
            break;
          case CompKind::Input:
            inputs_.push_back(InputOp{id, netlist.inputPort(id)});
            break;
          case CompKind::Not:
            comb_.push_back(
                CombOp{id, netlist.srcA(id), onesSlot(), ~std::uint64_t{0}});
            break;
          case CompKind::And:
            comb_.push_back(
                CombOp{id, netlist.srcA(id), netlist.srcB(id), 0});
            break;
          case CompKind::Dff:
            regs_.push_back(
                RegOp{id, netlist.srcA(id), zeroSlot(), 0, 0});
            break;
          case CompKind::Adder:
            regs_.push_back(
                RegOp{id, netlist.srcA(id), netlist.srcB(id), 0, 0});
            break;
          case CompKind::Sub:
            regs_.push_back(RegOp{id, netlist.srcA(id), netlist.srcB(id),
                                  ~std::uint64_t{0}, ~std::uint64_t{0}});
            break;
        }
    }

    // Appended in ascending id order above; reverse for the in-place
    // commit ordering (descending dst).
    std::reverse(regs_.begin(), regs_.end());
}

std::shared_ptr<const Segmentation>
ExecPlan::segmentation(std::size_t ops_per_segment) const
{
    ops_per_segment = std::max<std::size_t>(1, ops_per_segment);
    std::lock_guard<std::mutex> lock(segmentationMutex_);
    auto &slot = segmentations_[ops_per_segment];
    if (slot == nullptr)
        slot = std::make_shared<const Segmentation>(*this, ops_per_segment);
    return slot;
}

std::size_t
Segmentation::opsForBudget(std::size_t segment_kib, unsigned lane_words)
{
    const std::size_t op_bytes =
        4 * sizeof(std::uint64_t) * std::max(1u, lane_words);
    return std::max<std::size_t>(16, segment_kib * 1024 / op_bytes);
}

Segmentation::Segmentation(const ExecPlan &plan, std::size_t ops_per_segment)
    : opsPerSegment_(std::max<std::size_t>(1, ops_per_segment))
{
    const auto &plan_comb = plan.comb();
    const auto &plan_regs = plan.regs();
    const std::size_t num_slots = plan.numSlots();
    const auto num_nodes = static_cast<NodeId>(plan.numNodes());

    // Register depth per slot (== bit-serial stream latency): inputs
    // and constants are 0, registers are one past their deepest source,
    // comb ops propagate within the cycle.  Both tapes are sorted by
    // dst (comb ascending, regs descending) and every source id is
    // below its dst, so one ascending id walk resolves all depths.
    std::vector<std::uint32_t> depth(num_slots, 0);
    std::size_t ci = 0;
    std::size_t ri = plan_regs.size();
    for (NodeId id = 0; id < num_nodes; ++id) {
        if (ci < plan_comb.size() && plan_comb[ci].dst == id) {
            const auto &op = plan_comb[ci++];
            depth[id] = std::max(depth[op.a], depth[op.b]);
        } else if (ri > 0 && plan_regs[ri - 1].dst == id) {
            const auto &op = plan_regs[--ri];
            depth[id] = std::max(depth[op.a], depth[op.b]) + 1;
        }
    }

    // Order every op by (depth, dst).  Sources sort strictly before
    // their consumers (comb sources at the same depth have lower ids;
    // register sources sit one depth below), so the comb subsequence
    // stays topological while nodes that quiesce together share
    // segments.
    struct Slot
    {
        std::uint64_t key;
        std::uint32_t index;
        bool isReg;
    };
    std::vector<Slot> order;
    order.reserve(plan_comb.size() + plan_regs.size());
    const auto key = [&](NodeId dst) {
        return (static_cast<std::uint64_t>(depth[dst]) << 32) | dst;
    };
    for (std::uint32_t i = 0; i < plan_comb.size(); ++i)
        order.push_back(Slot{key(plan_comb[i].dst), i, false});
    for (std::uint32_t i = 0; i < plan_regs.size(); ++i)
        order.push_back(Slot{key(plan_regs[i].dst), i, true});
    std::sort(order.begin(), order.end(),
              [](const Slot &a, const Slot &b) { return a.key < b.key; });

    // Renumber value slots into schedule order so each segment owns one
    // contiguous slice of the value array: non-op nodes (inputs and
    // constants, never written by a sweep) keep the front of the slot
    // space in id order, op destinations follow in schedule order, and
    // the ones/zero slots stay at numNodes and numNodes + 1 so a
    // simulator's reset code is layout-agnostic.
    std::vector<bool> is_op_dst(num_slots, false);
    for (const auto &op : plan_comb)
        is_op_dst[op.dst] = true;
    for (const auto &op : plan_regs)
        is_op_dst[op.dst] = true;
    slotOf_.assign(num_slots, 0);
    NodeId next_slot = 0;
    for (NodeId id = 0; id < num_nodes; ++id)
        if (!is_op_dst[id])
            slotOf_[id] = next_slot++;
    for (const Slot &slot : order) {
        const NodeId dst = slot.isReg ? plan_regs[slot.index].dst
                                      : plan_comb[slot.index].dst;
        slotOf_[dst] = next_slot++;
    }
    slotOf_[num_nodes] = static_cast<NodeId>(num_nodes);         // ones
    slotOf_[num_nodes + 1] = static_cast<NodeId>(num_nodes + 1); // zero

    // Chunk into segments, rewriting every op into slot space, and
    // record which segment owns each dst slot (for the frontier scan).
    constexpr std::uint32_t kUnowned = 0xffffffffu;
    std::vector<std::uint32_t> owner(num_slots, kUnowned);
    comb_.reserve(plan_comb.size());
    regs_.reserve(plan_regs.size());
    for (std::size_t first = 0; first < order.size();
         first += opsPerSegment_) {
        const std::size_t last =
            std::min(order.size(), first + opsPerSegment_);
        Segment seg{};
        seg.combBegin = static_cast<std::uint32_t>(comb_.size());
        seg.regBegin = static_cast<std::uint32_t>(regs_.size());
        const auto index = static_cast<std::uint32_t>(segments_.size());
        for (std::size_t i = first; i < last; ++i) {
            const Slot &slot = order[i];
            if (slot.isReg) {
                const auto &op = plan_regs[slot.index];
                owner[slotOf_[op.dst]] = index;
                regs_.push_back(ExecPlan::RegOp{slotOf_[op.dst],
                                                slotOf_[op.a],
                                                slotOf_[op.b], op.bInv,
                                                op.carryInit});
            } else {
                const auto &op = plan_comb[slot.index];
                owner[slotOf_[op.dst]] = index;
                comb_.push_back(ExecPlan::CombOp{slotOf_[op.dst],
                                                 slotOf_[op.a],
                                                 slotOf_[op.b], op.inv});
            }
        }
        seg.combEnd = static_cast<std::uint32_t>(comb_.size());
        seg.regEnd = static_cast<std::uint32_t>(regs_.size());
        segments_.push_back(seg);
    }


    inputs_.reserve(plan.inputs().size());
    for (const auto &in : plan.inputs())
        inputs_.push_back(ExecPlan::InputOp{slotOf_[in.node], in.port});
    constOnes_.reserve(plan.constOnes().size());
    for (const auto node : plan.constOnes())
        constOnes_.push_back(slotOf_[node]);

    // Frontier: the distinct segments owning each segment's sources,
    // plus itself when it has registers (carries are self-feeding).
    // Input-node sources become the readsInputs flag instead; constant
    // sources (Const0/Const1 and the ones/zero slots) never change
    // after reset and contribute nothing.  Scanned in slot space,
    // where the rewritten ops and the owner map live.
    std::vector<bool> is_input(num_slots, false);
    for (const auto &in : inputs_)
        is_input[in.node] = true;
    std::vector<bool> is_reg_dst(num_slots, false);
    for (const auto &op : regs_)
        is_reg_dst[op.dst] = true;

    const std::size_t num_segments = segments_.size();
    std::vector<std::vector<std::uint32_t>> comb_readers(num_segments);
    std::vector<std::vector<std::uint32_t>> reg_readers(num_segments);
    for (std::size_t s = 0; s < num_segments; ++s) {
        Segment &seg = segments_[s];
        const auto addSource = [&](NodeId src) {
            // Input sources need no index: cycles whose driven planes
            // changed run the dense fallback, which executes every
            // segment anyway.  Constants never change after reset.
            if (is_input[src])
                return;
            const std::uint32_t i = owner[src];
            if (i == kUnowned)
                return;
            // The inverse index (who to wake on a change), split by
            // what is being read: comb values propagate within the
            // cycle, register values only after the next flip.  Reads
            // inside the owning segment need no wake — a segment
            // recomputes everything when it runs, and its own register
            // changes re-arm it via the reg_change self-wake.
            if (i == s)
                return;
            auto &readers = is_reg_dst[src] ? reg_readers[i]
                                            : comb_readers[i];
            if (readers.empty() ||
                readers.back() != static_cast<std::uint32_t>(s))
                readers.push_back(static_cast<std::uint32_t>(s));
        };
        for (std::uint32_t i = seg.combBegin; i < seg.combEnd; ++i) {
            addSource(comb_[i].a);
            addSource(comb_[i].b);
        }
        for (std::uint32_t i = seg.regBegin; i < seg.regEnd; ++i) {
            addSource(regs_[i].a);
            addSource(regs_[i].b);
        }
    }

    for (std::size_t s = 0; s < num_segments; ++s) {
        Segment &seg = segments_[s];
        const auto pack = [&](std::vector<std::uint32_t> &readers,
                              std::uint32_t &begin, std::uint32_t &end) {
            std::sort(readers.begin(), readers.end());
            readers.erase(std::unique(readers.begin(), readers.end()),
                          readers.end());
            begin = static_cast<std::uint32_t>(consumers_.size());
            consumers_.insert(consumers_.end(), readers.begin(),
                              readers.end());
            end = static_cast<std::uint32_t>(consumers_.size());
        };
        pack(comb_readers[s], seg.combConsumersBegin,
             seg.combConsumersEnd);
        pack(reg_readers[s], seg.regConsumersBegin, seg.regConsumersEnd);
    }

}

} // namespace spatial::circuit
