#include "circuit/kernels.h"

#include <bit>
#include <cstdlib>

#include "common/logging.h"

#if defined(__x86_64__)
#define SPATIAL_KERNELS_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define SPATIAL_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace spatial::circuit::kernels
{

namespace
{

// ---------------------------------------------------------------------
// Scalar reference kernel (always compiled, every architecture)
// ---------------------------------------------------------------------

template <unsigned W>
void
settleScalarT(const ExecPlan::CombOp *ops, std::size_t count,
              std::uint64_t *cur)
{
    for (std::size_t i = 0; i < count; ++i) {
        const auto &op = ops[i];
        const std::uint64_t *a = cur + std::size_t{op.a} * W;
        const std::uint64_t *b = cur + std::size_t{op.b} * W;
        std::uint64_t *__restrict dst = cur + std::size_t{op.dst} * W;
        for (unsigned w = 0; w < W; ++w)
            dst[w] = (a[w] & b[w]) ^ op.inv;
    }
}

void
settleScalarGeneric(const ExecPlan::CombOp *ops, std::size_t count,
                    std::uint64_t *cur, unsigned lane_words)
{
    for (std::size_t i = 0; i < count; ++i) {
        const auto &op = ops[i];
        const std::uint64_t *a = cur + std::size_t{op.a} * lane_words;
        const std::uint64_t *b = cur + std::size_t{op.b} * lane_words;
        std::uint64_t *__restrict dst =
            cur + std::size_t{op.dst} * lane_words;
        for (unsigned w = 0; w < lane_words; ++w)
            dst[w] = (a[w] & b[w]) ^ op.inv;
    }
}

void
settleScalar(const ExecPlan::CombOp *ops, std::size_t count,
             std::uint64_t *cur, unsigned lane_words)
{
    switch (lane_words) {
      case 1:
        return settleScalarT<1>(ops, count, cur);
      case 2:
        return settleScalarT<2>(ops, count, cur);
      case 4:
        return settleScalarT<4>(ops, count, cur);
      case 8:
        return settleScalarT<8>(ops, count, cur);
      default:
        return settleScalarGeneric(ops, count, cur, lane_words);
    }
}

template <unsigned W, bool Count, bool Reverse = false>
std::uint64_t
commitScalarT(const ExecPlan::RegOp *ops, std::size_t count,
              std::uint64_t *cur, std::uint64_t *carry)
{
    std::uint64_t toggles = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t k = Reverse ? count - 1 - i : i;
        const auto &op = ops[k];
        const std::uint64_t *a = cur + std::size_t{op.a} * W;
        const std::uint64_t *b_raw = cur + std::size_t{op.b} * W;
        std::uint64_t *cw = carry + k * W;
        std::uint64_t *__restrict dst = cur + std::size_t{op.dst} * W;
        for (unsigned w = 0; w < W; ++w) {
            const std::uint64_t b = b_raw[w] ^ op.bInv;
            const std::uint64_t c = cw[w];
            const std::uint64_t sum = a[w] ^ b ^ c;
            const std::uint64_t next_carry =
                (a[w] & b) | (a[w] & c) | (b & c);
            if constexpr (Count) {
                toggles += static_cast<std::uint64_t>(
                    std::popcount(dst[w] ^ sum));
                toggles += static_cast<std::uint64_t>(
                    std::popcount(c ^ next_carry));
            }
            dst[w] = sum;
            cw[w] = next_carry;
        }
    }
    return toggles;
}

template <bool Count, bool Reverse = false>
std::uint64_t
commitScalarGeneric(const ExecPlan::RegOp *ops, std::size_t count,
                    std::uint64_t *cur, std::uint64_t *carry,
                    unsigned lane_words)
{
    std::uint64_t toggles = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t k = Reverse ? count - 1 - i : i;
        const auto &op = ops[k];
        const std::uint64_t *a = cur + std::size_t{op.a} * lane_words;
        const std::uint64_t *b_raw = cur + std::size_t{op.b} * lane_words;
        std::uint64_t *cw = carry + k * lane_words;
        std::uint64_t *__restrict dst =
            cur + std::size_t{op.dst} * lane_words;
        for (unsigned w = 0; w < lane_words; ++w) {
            const std::uint64_t b = b_raw[w] ^ op.bInv;
            const std::uint64_t c = cw[w];
            const std::uint64_t sum = a[w] ^ b ^ c;
            const std::uint64_t next_carry =
                (a[w] & b) | (a[w] & c) | (b & c);
            if constexpr (Count) {
                toggles += static_cast<std::uint64_t>(
                    std::popcount(dst[w] ^ sum));
                toggles += static_cast<std::uint64_t>(
                    std::popcount(c ^ next_carry));
            }
            dst[w] = sum;
            cw[w] = next_carry;
        }
    }
    return toggles;
}

std::uint64_t
commitScalar(const ExecPlan::RegOp *ops, std::size_t count,
             std::uint64_t *cur, std::uint64_t *carry, unsigned lane_words,
             bool count_toggles)
{
    if (count_toggles) {
        switch (lane_words) {
          case 1:
            return commitScalarT<1, true>(ops, count, cur, carry);
          case 2:
            return commitScalarT<2, true>(ops, count, cur, carry);
          case 4:
            return commitScalarT<4, true>(ops, count, cur, carry);
          case 8:
            return commitScalarT<8, true>(ops, count, cur, carry);
          default:
            return commitScalarGeneric<true>(ops, count, cur, carry,
                                             lane_words);
        }
    }
    switch (lane_words) {
      case 1:
        return commitScalarT<1, false>(ops, count, cur, carry);
      case 2:
        return commitScalarT<2, false>(ops, count, cur, carry);
      case 4:
        return commitScalarT<4, false>(ops, count, cur, carry);
      case 8:
        return commitScalarT<8, false>(ops, count, cur, carry);
      default:
        return commitScalarGeneric<false>(ops, count, cur, carry,
                                          lane_words);
    }
}

std::uint64_t
commitReverseScalar(const ExecPlan::RegOp *ops, std::size_t count,
                    std::uint64_t *cur, std::uint64_t *carry,
                    unsigned lane_words, bool count_toggles)
{
    if (count_toggles) {
        switch (lane_words) {
          case 1:
            return commitScalarT<1, true, true>(ops, count, cur, carry);
          case 2:
            return commitScalarT<2, true, true>(ops, count, cur, carry);
          case 4:
            return commitScalarT<4, true, true>(ops, count, cur, carry);
          case 8:
            return commitScalarT<8, true, true>(ops, count, cur, carry);
          default:
            return commitScalarGeneric<true, true>(ops, count, cur,
                                                   carry, lane_words);
        }
    }
    switch (lane_words) {
      case 1:
        return commitScalarT<1, false, true>(ops, count, cur, carry);
      case 2:
        return commitScalarT<2, false, true>(ops, count, cur, carry);
      case 4:
        return commitScalarT<4, false, true>(ops, count, cur, carry);
      case 8:
        return commitScalarT<8, false, true>(ops, count, cur, carry);
      default:
        return commitScalarGeneric<false, true>(ops, count, cur, carry,
                                                lane_words);
    }
}

template <unsigned W>
std::uint64_t
settleMaskedScalarT(const ExecPlan::CombOp *ops, std::size_t count,
                    std::uint64_t *cur)
{
    std::uint64_t change = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const auto &op = ops[i];
        const std::uint64_t *a = cur + std::size_t{op.a} * W;
        const std::uint64_t *b = cur + std::size_t{op.b} * W;
        std::uint64_t *__restrict dst = cur + std::size_t{op.dst} * W;
        for (unsigned w = 0; w < W; ++w) {
            const std::uint64_t next = (a[w] & b[w]) ^ op.inv;
            change |= dst[w] ^ next;
            dst[w] = next;
        }
    }
    return change;
}

std::uint64_t
settleMaskedScalarGeneric(const ExecPlan::CombOp *ops, std::size_t count,
                          std::uint64_t *cur, unsigned lane_words)
{
    std::uint64_t change = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const auto &op = ops[i];
        const std::uint64_t *a = cur + std::size_t{op.a} * lane_words;
        const std::uint64_t *b = cur + std::size_t{op.b} * lane_words;
        std::uint64_t *__restrict dst =
            cur + std::size_t{op.dst} * lane_words;
        for (unsigned w = 0; w < lane_words; ++w) {
            const std::uint64_t next = (a[w] & b[w]) ^ op.inv;
            change |= dst[w] ^ next;
            dst[w] = next;
        }
    }
    return change;
}

std::uint64_t
settleMaskedScalar(const ExecPlan::CombOp *ops, std::size_t count,
                   std::uint64_t *cur, unsigned lane_words)
{
    switch (lane_words) {
      case 1:
        return settleMaskedScalarT<1>(ops, count, cur);
      case 2:
        return settleMaskedScalarT<2>(ops, count, cur);
      case 4:
        return settleMaskedScalarT<4>(ops, count, cur);
      case 8:
        return settleMaskedScalarT<8>(ops, count, cur);
      default:
        return settleMaskedScalarGeneric(ops, count, cur, lane_words);
    }
}

template <unsigned W, bool Count>
std::uint64_t
commitGatedScalarT(const ExecPlan::RegOp *ops, std::size_t count,
                   const std::uint64_t *cur, std::uint64_t *carry,
                   std::uint64_t *pending, std::uint64_t *toggles,
                   std::uint64_t *flip_cur)
{
    std::uint64_t change = 0;
    std::uint64_t local_toggles = 0;
    for (std::size_t k = 0; k < count; ++k) {
        const auto &op = ops[k];
        const std::uint64_t *a = cur + std::size_t{op.a} * W;
        const std::uint64_t *b_raw = cur + std::size_t{op.b} * W;
        std::uint64_t *cw = carry + k * W;
        std::uint64_t *__restrict pend = pending + k * W;
        std::uint64_t *fd = flip_cur == nullptr
                                ? nullptr
                                : flip_cur + std::size_t{op.dst} * W;
        for (unsigned w = 0; w < W; ++w) {
            const std::uint64_t b = b_raw[w] ^ op.bInv;
            const std::uint64_t c = cw[w];
            const std::uint64_t sum = a[w] ^ b ^ c;
            const std::uint64_t next_carry =
                (a[w] & b) | (a[w] & c) | (b & c);
            // pend[w] still holds the op's presented value (the flip
            // keeps cur[dst] equal to it), so the old state comes from
            // this sequential stream instead of a scattered load; an
            // owed flip stores it to the dst slot on the way.
            const std::uint64_t old = pend[w];
            if (fd != nullptr)
                fd[w] = old;
            const std::uint64_t dst_change = old ^ sum;
            const std::uint64_t carry_change = c ^ next_carry;
            change |= dst_change | carry_change;
            if constexpr (Count) {
                local_toggles += static_cast<std::uint64_t>(
                    std::popcount(dst_change) +
                    std::popcount(carry_change));
            }
            pend[w] = sum;
            cw[w] = next_carry;
        }
    }
    if constexpr (Count)
        *toggles += local_toggles;
    return change;
}

template <bool Count>
std::uint64_t
commitGatedScalarGeneric(const ExecPlan::RegOp *ops, std::size_t count,
                         const std::uint64_t *cur, std::uint64_t *carry,
                         std::uint64_t *pending, unsigned lane_words,
                         std::uint64_t *toggles, std::uint64_t *flip_cur)
{
    std::uint64_t change = 0;
    std::uint64_t local_toggles = 0;
    for (std::size_t k = 0; k < count; ++k) {
        const auto &op = ops[k];
        const std::uint64_t *a = cur + std::size_t{op.a} * lane_words;
        const std::uint64_t *b_raw = cur + std::size_t{op.b} * lane_words;
        std::uint64_t *cw = carry + k * lane_words;
        std::uint64_t *__restrict pend = pending + k * lane_words;
        std::uint64_t *fd =
            flip_cur == nullptr
                ? nullptr
                : flip_cur + std::size_t{op.dst} * lane_words;
        for (unsigned w = 0; w < lane_words; ++w) {
            const std::uint64_t b = b_raw[w] ^ op.bInv;
            const std::uint64_t c = cw[w];
            const std::uint64_t sum = a[w] ^ b ^ c;
            const std::uint64_t next_carry =
                (a[w] & b) | (a[w] & c) | (b & c);
            const std::uint64_t old = pend[w];
            if (fd != nullptr)
                fd[w] = old;
            const std::uint64_t dst_change = old ^ sum;
            const std::uint64_t carry_change = c ^ next_carry;
            change |= dst_change | carry_change;
            if constexpr (Count) {
                local_toggles += static_cast<std::uint64_t>(
                    std::popcount(dst_change) +
                    std::popcount(carry_change));
            }
            pend[w] = sum;
            cw[w] = next_carry;
        }
    }
    if constexpr (Count)
        *toggles += local_toggles;
    return change;
}

std::uint64_t
commitGatedScalar(const ExecPlan::RegOp *ops, std::size_t count,
                  const std::uint64_t *cur, std::uint64_t *carry,
                  std::uint64_t *pending, unsigned lane_words,
                  bool count_toggles, std::uint64_t *toggles,
                  std::uint64_t *flip_cur)
{
    if (count_toggles) {
        switch (lane_words) {
          case 1:
            return commitGatedScalarT<1, true>(ops, count, cur, carry,
                                               pending, toggles, flip_cur);
          case 2:
            return commitGatedScalarT<2, true>(ops, count, cur, carry,
                                               pending, toggles, flip_cur);
          case 4:
            return commitGatedScalarT<4, true>(ops, count, cur, carry,
                                               pending, toggles, flip_cur);
          case 8:
            return commitGatedScalarT<8, true>(ops, count, cur, carry,
                                               pending, toggles, flip_cur);
          default:
            return commitGatedScalarGeneric<true>(ops, count, cur, carry,
                                                  pending, lane_words,
                                                  toggles, flip_cur);
        }
    }
    switch (lane_words) {
      case 1:
        return commitGatedScalarT<1, false>(ops, count, cur, carry,
                                            pending, toggles, flip_cur);
      case 2:
        return commitGatedScalarT<2, false>(ops, count, cur, carry,
                                            pending, toggles, flip_cur);
      case 4:
        return commitGatedScalarT<4, false>(ops, count, cur, carry,
                                            pending, toggles, flip_cur);
      case 8:
        return commitGatedScalarT<8, false>(ops, count, cur, carry,
                                            pending, toggles, flip_cur);
      default:
        return commitGatedScalarGeneric<false>(ops, count, cur, carry,
                                               pending, lane_words,
                                               toggles, flip_cur);
    }
}

/** In-place 64x64 bit-matrix transpose (Hacker's Delight 7-3). */
void
transposeScalar(std::uint64_t a[64])
{
    std::uint64_t m = 0x00000000ffffffffull;
    for (unsigned j = 32; j != 0; j >>= 1, m ^= m << j) {
        for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
            const std::uint64_t t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
        }
    }
}

#if SPATIAL_KERNELS_X86

// ---------------------------------------------------------------------
// AVX2: 256-bit registers, 4 lane-words per vector op
// ---------------------------------------------------------------------

template <unsigned W>
__attribute__((target("avx2"))) void
settleAvx2T(const ExecPlan::CombOp *ops, std::size_t count,
            std::uint64_t *cur)
{
    static_assert(W % 4 == 0);
    for (std::size_t i = 0; i < count; ++i) {
        const auto &op = ops[i];
        const std::uint64_t *a = cur + std::size_t{op.a} * W;
        const std::uint64_t *b = cur + std::size_t{op.b} * W;
        std::uint64_t *dst = cur + std::size_t{op.dst} * W;
        const __m256i inv =
            _mm256_set1_epi64x(static_cast<long long>(op.inv));
        for (unsigned w = 0; w < W; w += 4) {
            const __m256i va = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(a + w));
            const __m256i vb = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(b + w));
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(dst + w),
                _mm256_xor_si256(_mm256_and_si256(va, vb), inv));
        }
    }
}

void
settleAvx2(const ExecPlan::CombOp *ops, std::size_t count,
           std::uint64_t *cur, unsigned lane_words)
{
    switch (lane_words) {
      case 4:
        return settleAvx2T<4>(ops, count, cur);
      case 8:
        return settleAvx2T<8>(ops, count, cur);
      default:
        // Narrower than one register: the scalar sweep is already
        // optimal (and bit-identical by construction).
        return settleScalar(ops, count, cur, lane_words);
    }
}

template <unsigned W, bool Count, bool Reverse = false>
__attribute__((target("avx2"))) std::uint64_t
commitAvx2T(const ExecPlan::RegOp *ops, std::size_t count,
            std::uint64_t *cur, std::uint64_t *carry)
{
    static_assert(W % 4 == 0);
    std::uint64_t toggles = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t k = Reverse ? count - 1 - i : i;
        const auto &op = ops[k];
        const std::uint64_t *a = cur + std::size_t{op.a} * W;
        const std::uint64_t *b_raw = cur + std::size_t{op.b} * W;
        std::uint64_t *cw = carry + k * W;
        std::uint64_t *dst = cur + std::size_t{op.dst} * W;
        const __m256i binv =
            _mm256_set1_epi64x(static_cast<long long>(op.bInv));
        for (unsigned w = 0; w < W; w += 4) {
            const __m256i va = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(a + w));
            const __m256i vb = _mm256_xor_si256(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(b_raw + w)),
                binv);
            const __m256i vc = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(cw + w));
            const __m256i sum =
                _mm256_xor_si256(_mm256_xor_si256(va, vb), vc);
            const __m256i next = _mm256_or_si256(
                _mm256_or_si256(_mm256_and_si256(va, vb),
                                _mm256_and_si256(va, vc)),
                _mm256_and_si256(vb, vc));
            if constexpr (Count) {
                alignas(32) std::uint64_t dt[4];
                alignas(32) std::uint64_t ct[4];
                _mm256_store_si256(
                    reinterpret_cast<__m256i *>(dt),
                    _mm256_xor_si256(
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i *>(dst + w)),
                        sum));
                _mm256_store_si256(reinterpret_cast<__m256i *>(ct),
                                   _mm256_xor_si256(vc, next));
                for (int i = 0; i < 4; ++i)
                    toggles += static_cast<std::uint64_t>(
                        std::popcount(dt[i]) + std::popcount(ct[i]));
            }
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + w),
                                sum);
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(cw + w),
                                next);
        }
    }
    return toggles;
}

std::uint64_t
commitAvx2(const ExecPlan::RegOp *ops, std::size_t count,
           std::uint64_t *cur, std::uint64_t *carry, unsigned lane_words,
           bool count_toggles)
{
    switch (lane_words) {
      case 4:
        return count_toggles
                   ? commitAvx2T<4, true>(ops, count, cur, carry)
                   : commitAvx2T<4, false>(ops, count, cur, carry);
      case 8:
        return count_toggles
                   ? commitAvx2T<8, true>(ops, count, cur, carry)
                   : commitAvx2T<8, false>(ops, count, cur, carry);
      default:
        return commitScalar(ops, count, cur, carry, lane_words,
                            count_toggles);
    }
}

std::uint64_t
commitReverseAvx2(const ExecPlan::RegOp *ops, std::size_t count,
                  std::uint64_t *cur, std::uint64_t *carry,
                  unsigned lane_words, bool count_toggles)
{
    switch (lane_words) {
      case 4:
        return count_toggles
                   ? commitAvx2T<4, true, true>(ops, count, cur, carry)
                   : commitAvx2T<4, false, true>(ops, count, cur, carry);
      case 8:
        return count_toggles
                   ? commitAvx2T<8, true, true>(ops, count, cur, carry)
                   : commitAvx2T<8, false, true>(ops, count, cur, carry);
      default:
        return commitReverseScalar(ops, count, cur, carry, lane_words,
                                   count_toggles);
    }
}

/** Horizontal OR of the four 64-bit lanes of a 256-bit register. */
__attribute__((target("avx2"))) inline std::uint64_t
reduceOrAvx2(__m256i v)
{
    const __m128i folded = _mm_or_si128(_mm256_castsi256_si128(v),
                                        _mm256_extracti128_si256(v, 1));
    return static_cast<std::uint64_t>(_mm_cvtsi128_si64(folded)) |
           static_cast<std::uint64_t>(
               _mm_cvtsi128_si64(_mm_unpackhi_epi64(folded, folded)));
}

template <unsigned W>
__attribute__((target("avx2"))) std::uint64_t
settleMaskedAvx2T(const ExecPlan::CombOp *ops, std::size_t count,
                  std::uint64_t *cur)
{
    static_assert(W % 4 == 0);
    __m256i change = _mm256_setzero_si256();
    for (std::size_t i = 0; i < count; ++i) {
        const auto &op = ops[i];
        const std::uint64_t *a = cur + std::size_t{op.a} * W;
        const std::uint64_t *b = cur + std::size_t{op.b} * W;
        std::uint64_t *dst = cur + std::size_t{op.dst} * W;
        const __m256i inv =
            _mm256_set1_epi64x(static_cast<long long>(op.inv));
        for (unsigned w = 0; w < W; w += 4) {
            const __m256i va = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(a + w));
            const __m256i vb = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(b + w));
            const __m256i next =
                _mm256_xor_si256(_mm256_and_si256(va, vb), inv);
            const __m256i old = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(dst + w));
            change = _mm256_or_si256(change,
                                     _mm256_xor_si256(old, next));
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + w),
                                next);
        }
    }
    return reduceOrAvx2(change);
}

std::uint64_t
settleMaskedAvx2(const ExecPlan::CombOp *ops, std::size_t count,
                 std::uint64_t *cur, unsigned lane_words)
{
    switch (lane_words) {
      case 4:
        return settleMaskedAvx2T<4>(ops, count, cur);
      case 8:
        return settleMaskedAvx2T<8>(ops, count, cur);
      default:
        return settleMaskedScalar(ops, count, cur, lane_words);
    }
}

template <unsigned W, bool Count>
__attribute__((target("avx2"))) std::uint64_t
commitGatedAvx2T(const ExecPlan::RegOp *ops, std::size_t count,
                 const std::uint64_t *cur, std::uint64_t *carry,
                 std::uint64_t *pending, std::uint64_t *toggles,
                 std::uint64_t *flip_cur)
{
    static_assert(W % 4 == 0);
    __m256i change = _mm256_setzero_si256();
    std::uint64_t local_toggles = 0;
    for (std::size_t k = 0; k < count; ++k) {
        const auto &op = ops[k];
        const std::uint64_t *a = cur + std::size_t{op.a} * W;
        const std::uint64_t *b_raw = cur + std::size_t{op.b} * W;
        std::uint64_t *cw = carry + k * W;
        std::uint64_t *pend = pending + k * W;
        std::uint64_t *fd = flip_cur == nullptr
                                ? nullptr
                                : flip_cur + std::size_t{op.dst} * W;
        const __m256i binv =
            _mm256_set1_epi64x(static_cast<long long>(op.bInv));
        for (unsigned w = 0; w < W; w += 4) {
            const __m256i va = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(a + w));
            const __m256i vb = _mm256_xor_si256(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(b_raw + w)),
                binv);
            const __m256i vc = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(cw + w));
            const __m256i sum =
                _mm256_xor_si256(_mm256_xor_si256(va, vb), vc);
            const __m256i next = _mm256_or_si256(
                _mm256_or_si256(_mm256_and_si256(va, vb),
                                _mm256_and_si256(va, vc)),
                _mm256_and_si256(vb, vc));
            // pend still holds the presented value (see the scalar
            // reference): sequential reload, no scattered dst access;
            // an owed flip stores it to the dst slot on the way.
            const __m256i old = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(pend + w));
            if (fd != nullptr)
                _mm256_storeu_si256(reinterpret_cast<__m256i *>(fd + w),
                                    old);
            const __m256i dst_change = _mm256_xor_si256(old, sum);
            const __m256i carry_change = _mm256_xor_si256(vc, next);
            change = _mm256_or_si256(
                change, _mm256_or_si256(dst_change, carry_change));
            if constexpr (Count) {
                alignas(32) std::uint64_t dt[4];
                alignas(32) std::uint64_t ct[4];
                _mm256_store_si256(reinterpret_cast<__m256i *>(dt),
                                   dst_change);
                _mm256_store_si256(reinterpret_cast<__m256i *>(ct),
                                   carry_change);
                for (int i = 0; i < 4; ++i)
                    local_toggles += static_cast<std::uint64_t>(
                        std::popcount(dt[i]) + std::popcount(ct[i]));
            }
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(pend + w),
                                sum);
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(cw + w),
                                next);
        }
    }
    if constexpr (Count)
        *toggles += local_toggles;
    return reduceOrAvx2(change);
}

std::uint64_t
commitGatedAvx2(const ExecPlan::RegOp *ops, std::size_t count,
                const std::uint64_t *cur, std::uint64_t *carry,
                std::uint64_t *pending, unsigned lane_words,
                bool count_toggles, std::uint64_t *toggles,
                std::uint64_t *flip_cur)
{
    switch (lane_words) {
      case 4:
        return count_toggles
                   ? commitGatedAvx2T<4, true>(ops, count, cur, carry,
                                               pending, toggles, flip_cur)
                   : commitGatedAvx2T<4, false>(ops, count, cur, carry,
                                                pending, toggles,
                                                flip_cur);
      case 8:
        return count_toggles
                   ? commitGatedAvx2T<8, true>(ops, count, cur, carry,
                                               pending, toggles, flip_cur)
                   : commitGatedAvx2T<8, false>(ops, count, cur, carry,
                                                pending, toggles,
                                                flip_cur);
      default:
        return commitGatedScalar(ops, count, cur, carry, pending,
                                 lane_words, count_toggles, toggles,
                                 flip_cur);
    }
}

/**
 * Transpose with the j >= 4 butterfly passes on 256-bit registers (the
 * paired indices are contiguous runs of length j, so four consecutive k
 * fit one register); the j = 2, 1 passes pair within-register words and
 * stay scalar.
 */
__attribute__((target("avx2"))) void
transposeAvx2(std::uint64_t a[64])
{
    static constexpr std::uint64_t kMasks[4] = {
        0x00000000ffffffffull, 0x0000ffff0000ffffull,
        0x00ff00ff00ff00ffull, 0x0f0f0f0f0f0f0f0full};
    unsigned j = 32;
    for (int mi = 0; mi < 4; ++mi, j >>= 1) {
        const __m256i m =
            _mm256_set1_epi64x(static_cast<long long>(kMasks[mi]));
        for (unsigned k0 = 0; k0 < 64; k0 += 2 * j) {
            for (unsigned k = k0; k < k0 + j; k += 4) {
                __m256i lo = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(a + k));
                __m256i hi = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(a + k + j));
                const __m256i t = _mm256_and_si256(
                    _mm256_xor_si256(
                        _mm256_srli_epi64(lo, static_cast<int>(j)), hi),
                    m);
                lo = _mm256_xor_si256(
                    lo, _mm256_slli_epi64(t, static_cast<int>(j)));
                hi = _mm256_xor_si256(hi, t);
                _mm256_storeu_si256(reinterpret_cast<__m256i *>(a + k),
                                    lo);
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(a + k + j), hi);
            }
        }
    }
    std::uint64_t m = 0x3333333333333333ull;
    for (j = 2; j != 0; j >>= 1, m ^= m << j) {
        for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
            const std::uint64_t t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
        }
    }
}

// ---------------------------------------------------------------------
// AVX-512F: 512-bit registers, 8 lane-words per vector op, with the
// settle and full-adder expressions folded into ternary-logic ops
// ---------------------------------------------------------------------

__attribute__((target("avx512f"))) void
settleAvx512W8(const ExecPlan::CombOp *ops, std::size_t count,
               std::uint64_t *cur)
{
    constexpr unsigned W = 8;
    for (std::size_t i = 0; i < count; ++i) {
        const auto &op = ops[i];
        const __m512i va =
            _mm512_loadu_si512(cur + std::size_t{op.a} * W);
        const __m512i vb =
            _mm512_loadu_si512(cur + std::size_t{op.b} * W);
        const __m512i inv =
            _mm512_set1_epi64(static_cast<long long>(op.inv));
        // 0x6A = (a & b) ^ c.
        _mm512_storeu_si512(cur + std::size_t{op.dst} * W,
                            _mm512_ternarylogic_epi64(va, vb, inv, 0x6a));
    }
}

void
settleAvx512(const ExecPlan::CombOp *ops, std::size_t count,
             std::uint64_t *cur, unsigned lane_words)
{
    switch (lane_words) {
      case 8:
        return settleAvx512W8(ops, count, cur);
      case 4:
        return settleAvx2T<4>(ops, count, cur); // AVX-512 implies AVX2
      default:
        return settleScalar(ops, count, cur, lane_words);
    }
}

template <bool Count, bool Reverse = false>
__attribute__((target("avx512f"))) std::uint64_t
commitAvx512W8(const ExecPlan::RegOp *ops, std::size_t count,
               std::uint64_t *cur, std::uint64_t *carry)
{
    constexpr unsigned W = 8;
    std::uint64_t toggles = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t k = Reverse ? count - 1 - i : i;
        const auto &op = ops[k];
        std::uint64_t *cw = carry + k * W;
        std::uint64_t *dst = cur + std::size_t{op.dst} * W;
        const __m512i va =
            _mm512_loadu_si512(cur + std::size_t{op.a} * W);
        const __m512i vb = _mm512_xor_epi64(
            _mm512_loadu_si512(cur + std::size_t{op.b} * W),
            _mm512_set1_epi64(static_cast<long long>(op.bInv)));
        const __m512i vc = _mm512_loadu_si512(cw);
        // 0x96 = a ^ b ^ c; 0xE8 = majority(a, b, c).
        const __m512i sum = _mm512_ternarylogic_epi64(va, vb, vc, 0x96);
        const __m512i next = _mm512_ternarylogic_epi64(va, vb, vc, 0xe8);
        if constexpr (Count) {
            alignas(64) std::uint64_t dt[8];
            alignas(64) std::uint64_t ct[8];
            _mm512_store_si512(
                dt, _mm512_xor_epi64(_mm512_loadu_si512(dst), sum));
            _mm512_store_si512(ct, _mm512_xor_epi64(vc, next));
            for (int i = 0; i < 8; ++i)
                toggles += static_cast<std::uint64_t>(
                    std::popcount(dt[i]) + std::popcount(ct[i]));
        }
        _mm512_storeu_si512(dst, sum);
        _mm512_storeu_si512(cw, next);
    }
    return toggles;
}

std::uint64_t
commitAvx512(const ExecPlan::RegOp *ops, std::size_t count,
             std::uint64_t *cur, std::uint64_t *carry, unsigned lane_words,
             bool count_toggles)
{
    switch (lane_words) {
      case 8:
        return count_toggles
                   ? commitAvx512W8<true>(ops, count, cur, carry)
                   : commitAvx512W8<false>(ops, count, cur, carry);
      case 4:
        return count_toggles
                   ? commitAvx2T<4, true>(ops, count, cur, carry)
                   : commitAvx2T<4, false>(ops, count, cur, carry);
      default:
        return commitScalar(ops, count, cur, carry, lane_words,
                            count_toggles);
    }
}

std::uint64_t
commitReverseAvx512(const ExecPlan::RegOp *ops, std::size_t count,
                    std::uint64_t *cur, std::uint64_t *carry,
                    unsigned lane_words, bool count_toggles)
{
    switch (lane_words) {
      case 8:
        return count_toggles
                   ? commitAvx512W8<true, true>(ops, count, cur, carry)
                   : commitAvx512W8<false, true>(ops, count, cur, carry);
      case 4:
        return count_toggles
                   ? commitAvx2T<4, true, true>(ops, count, cur, carry)
                   : commitAvx2T<4, false, true>(ops, count, cur, carry);
      default:
        return commitReverseScalar(ops, count, cur, carry, lane_words,
                                   count_toggles);
    }
}

__attribute__((target("avx512f"))) std::uint64_t
settleMaskedAvx512W8(const ExecPlan::CombOp *ops, std::size_t count,
                     std::uint64_t *cur)
{
    constexpr unsigned W = 8;
    __m512i change = _mm512_setzero_si512();
    for (std::size_t i = 0; i < count; ++i) {
        const auto &op = ops[i];
        std::uint64_t *dst = cur + std::size_t{op.dst} * W;
        const __m512i va =
            _mm512_loadu_si512(cur + std::size_t{op.a} * W);
        const __m512i vb =
            _mm512_loadu_si512(cur + std::size_t{op.b} * W);
        const __m512i inv =
            _mm512_set1_epi64(static_cast<long long>(op.inv));
        // 0x6A = (a & b) ^ c.
        const __m512i next =
            _mm512_ternarylogic_epi64(va, vb, inv, 0x6a);
        change = _mm512_or_epi64(
            change, _mm512_xor_epi64(_mm512_loadu_si512(dst), next));
        _mm512_storeu_si512(dst, next);
    }
    // _mm512_reduce_or_epi64 trips a GCC -Wuninitialized false positive
    // (its extract idiom reads an undefined register), so reduce by
    // store + OR — once per segment call, cost-free.
    alignas(64) std::uint64_t folded[8];
    _mm512_store_si512(folded, change);
    std::uint64_t mask = 0;
    for (int i = 0; i < 8; ++i)
        mask |= folded[i];
    return mask;
}

std::uint64_t
settleMaskedAvx512(const ExecPlan::CombOp *ops, std::size_t count,
                   std::uint64_t *cur, unsigned lane_words)
{
    switch (lane_words) {
      case 8:
        return settleMaskedAvx512W8(ops, count, cur);
      case 4:
        return settleMaskedAvx2T<4>(ops, count, cur);
      default:
        return settleMaskedScalar(ops, count, cur, lane_words);
    }
}

template <bool Count>
__attribute__((target("avx512f"))) std::uint64_t
commitGatedAvx512W8(const ExecPlan::RegOp *ops, std::size_t count,
                    const std::uint64_t *cur, std::uint64_t *carry,
                    std::uint64_t *pending, std::uint64_t *toggles,
                    std::uint64_t *flip_cur)
{
    constexpr unsigned W = 8;
    __m512i change = _mm512_setzero_si512();
    std::uint64_t local_toggles = 0;
    for (std::size_t k = 0; k < count; ++k) {
        const auto &op = ops[k];
        std::uint64_t *cw = carry + k * W;
        std::uint64_t *pend = pending + k * W;
        const __m512i va =
            _mm512_loadu_si512(cur + std::size_t{op.a} * W);
        const __m512i vb = _mm512_xor_epi64(
            _mm512_loadu_si512(cur + std::size_t{op.b} * W),
            _mm512_set1_epi64(static_cast<long long>(op.bInv)));
        const __m512i vc = _mm512_loadu_si512(cw);
        // 0x96 = a ^ b ^ c; 0xE8 = majority(a, b, c).
        const __m512i sum = _mm512_ternarylogic_epi64(va, vb, vc, 0x96);
        const __m512i next = _mm512_ternarylogic_epi64(va, vb, vc, 0xe8);
        const __m512i old = _mm512_loadu_si512(pend);
        if (flip_cur != nullptr)
            _mm512_storeu_si512(flip_cur + std::size_t{op.dst} * W, old);
        const __m512i dst_change = _mm512_xor_epi64(old, sum);
        const __m512i carry_change = _mm512_xor_epi64(vc, next);
        change = _mm512_or_epi64(
            change, _mm512_or_epi64(dst_change, carry_change));
        if constexpr (Count) {
            alignas(64) std::uint64_t dt[8];
            alignas(64) std::uint64_t ct[8];
            _mm512_store_si512(dt, dst_change);
            _mm512_store_si512(ct, carry_change);
            for (int i = 0; i < 8; ++i)
                local_toggles += static_cast<std::uint64_t>(
                    std::popcount(dt[i]) + std::popcount(ct[i]));
        }
        _mm512_storeu_si512(pend, sum);
        _mm512_storeu_si512(cw, next);
    }
    if constexpr (Count)
        *toggles += local_toggles;
    alignas(64) std::uint64_t folded[8];
    _mm512_store_si512(folded, change);
    std::uint64_t mask = 0;
    for (int i = 0; i < 8; ++i)
        mask |= folded[i];
    return mask;
}

std::uint64_t
commitGatedAvx512(const ExecPlan::RegOp *ops, std::size_t count,
                  const std::uint64_t *cur, std::uint64_t *carry,
                  std::uint64_t *pending, unsigned lane_words,
                  bool count_toggles, std::uint64_t *toggles,
                  std::uint64_t *flip_cur)
{
    switch (lane_words) {
      case 8:
        return count_toggles
                   ? commitGatedAvx512W8<true>(ops, count, cur, carry,
                                               pending, toggles, flip_cur)
                   : commitGatedAvx512W8<false>(ops, count, cur, carry,
                                                pending, toggles,
                                                flip_cur);
      case 4:
        return count_toggles
                   ? commitGatedAvx2T<4, true>(ops, count, cur, carry,
                                               pending, toggles, flip_cur)
                   : commitGatedAvx2T<4, false>(ops, count, cur, carry,
                                                pending, toggles,
                                                flip_cur);
      default:
        return commitGatedScalar(ops, count, cur, carry, pending,
                                 lane_words, count_toggles, toggles,
                                 flip_cur);
    }
}

#endif // SPATIAL_KERNELS_X86

#if SPATIAL_KERNELS_NEON

// ---------------------------------------------------------------------
// NEON: 128-bit registers, 2 lane-words per vector op (AArch64
// baseline, no runtime detection needed)
// ---------------------------------------------------------------------

template <unsigned W>
void
settleNeonT(const ExecPlan::CombOp *ops, std::size_t count,
            std::uint64_t *cur)
{
    static_assert(W % 2 == 0);
    for (std::size_t i = 0; i < count; ++i) {
        const auto &op = ops[i];
        const std::uint64_t *a = cur + std::size_t{op.a} * W;
        const std::uint64_t *b = cur + std::size_t{op.b} * W;
        std::uint64_t *dst = cur + std::size_t{op.dst} * W;
        const uint64x2_t inv = vdupq_n_u64(op.inv);
        for (unsigned w = 0; w < W; w += 2)
            vst1q_u64(dst + w,
                      veorq_u64(vandq_u64(vld1q_u64(a + w),
                                          vld1q_u64(b + w)),
                                inv));
    }
}

void
settleNeon(const ExecPlan::CombOp *ops, std::size_t count,
           std::uint64_t *cur, unsigned lane_words)
{
    switch (lane_words) {
      case 2:
        return settleNeonT<2>(ops, count, cur);
      case 4:
        return settleNeonT<4>(ops, count, cur);
      case 8:
        return settleNeonT<8>(ops, count, cur);
      default:
        return settleScalar(ops, count, cur, lane_words);
    }
}

template <unsigned W, bool Count, bool Reverse = false>
std::uint64_t
commitNeonT(const ExecPlan::RegOp *ops, std::size_t count,
            std::uint64_t *cur, std::uint64_t *carry)
{
    static_assert(W % 2 == 0);
    std::uint64_t toggles = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t k = Reverse ? count - 1 - i : i;
        const auto &op = ops[k];
        const std::uint64_t *a = cur + std::size_t{op.a} * W;
        const std::uint64_t *b_raw = cur + std::size_t{op.b} * W;
        std::uint64_t *cw = carry + k * W;
        std::uint64_t *dst = cur + std::size_t{op.dst} * W;
        const uint64x2_t binv = vdupq_n_u64(op.bInv);
        for (unsigned w = 0; w < W; w += 2) {
            const uint64x2_t va = vld1q_u64(a + w);
            const uint64x2_t vb = veorq_u64(vld1q_u64(b_raw + w), binv);
            const uint64x2_t vc = vld1q_u64(cw + w);
            const uint64x2_t sum = veorq_u64(veorq_u64(va, vb), vc);
            const uint64x2_t next =
                vorrq_u64(vorrq_u64(vandq_u64(va, vb), vandq_u64(va, vc)),
                          vandq_u64(vb, vc));
            if constexpr (Count) {
                std::uint64_t dt[2];
                std::uint64_t ct[2];
                vst1q_u64(dt, veorq_u64(vld1q_u64(dst + w), sum));
                vst1q_u64(ct, veorq_u64(vc, next));
                toggles += static_cast<std::uint64_t>(
                    std::popcount(dt[0]) + std::popcount(dt[1]) +
                    std::popcount(ct[0]) + std::popcount(ct[1]));
            }
            vst1q_u64(dst + w, sum);
            vst1q_u64(cw + w, next);
        }
    }
    return toggles;
}

std::uint64_t
commitNeon(const ExecPlan::RegOp *ops, std::size_t count,
           std::uint64_t *cur, std::uint64_t *carry, unsigned lane_words,
           bool count_toggles)
{
    switch (lane_words) {
      case 2:
        return count_toggles
                   ? commitNeonT<2, true>(ops, count, cur, carry)
                   : commitNeonT<2, false>(ops, count, cur, carry);
      case 4:
        return count_toggles
                   ? commitNeonT<4, true>(ops, count, cur, carry)
                   : commitNeonT<4, false>(ops, count, cur, carry);
      case 8:
        return count_toggles
                   ? commitNeonT<8, true>(ops, count, cur, carry)
                   : commitNeonT<8, false>(ops, count, cur, carry);
      default:
        return commitScalar(ops, count, cur, carry, lane_words,
                            count_toggles);
    }
}

std::uint64_t
commitReverseNeon(const ExecPlan::RegOp *ops, std::size_t count,
                  std::uint64_t *cur, std::uint64_t *carry,
                  unsigned lane_words, bool count_toggles)
{
    switch (lane_words) {
      case 2:
        return count_toggles
                   ? commitNeonT<2, true, true>(ops, count, cur, carry)
                   : commitNeonT<2, false, true>(ops, count, cur, carry);
      case 4:
        return count_toggles
                   ? commitNeonT<4, true, true>(ops, count, cur, carry)
                   : commitNeonT<4, false, true>(ops, count, cur, carry);
      case 8:
        return count_toggles
                   ? commitNeonT<8, true, true>(ops, count, cur, carry)
                   : commitNeonT<8, false, true>(ops, count, cur, carry);
      default:
        return commitReverseScalar(ops, count, cur, carry, lane_words,
                                   count_toggles);
    }
}

template <unsigned W>
std::uint64_t
settleMaskedNeonT(const ExecPlan::CombOp *ops, std::size_t count,
                  std::uint64_t *cur)
{
    static_assert(W % 2 == 0);
    uint64x2_t change = vdupq_n_u64(0);
    for (std::size_t i = 0; i < count; ++i) {
        const auto &op = ops[i];
        const std::uint64_t *a = cur + std::size_t{op.a} * W;
        const std::uint64_t *b = cur + std::size_t{op.b} * W;
        std::uint64_t *dst = cur + std::size_t{op.dst} * W;
        const uint64x2_t inv = vdupq_n_u64(op.inv);
        for (unsigned w = 0; w < W; w += 2) {
            const uint64x2_t next =
                veorq_u64(vandq_u64(vld1q_u64(a + w), vld1q_u64(b + w)),
                          inv);
            change = vorrq_u64(change,
                               veorq_u64(vld1q_u64(dst + w), next));
            vst1q_u64(dst + w, next);
        }
    }
    return vgetq_lane_u64(change, 0) | vgetq_lane_u64(change, 1);
}

std::uint64_t
settleMaskedNeon(const ExecPlan::CombOp *ops, std::size_t count,
                 std::uint64_t *cur, unsigned lane_words)
{
    switch (lane_words) {
      case 2:
        return settleMaskedNeonT<2>(ops, count, cur);
      case 4:
        return settleMaskedNeonT<4>(ops, count, cur);
      case 8:
        return settleMaskedNeonT<8>(ops, count, cur);
      default:
        return settleMaskedScalar(ops, count, cur, lane_words);
    }
}

template <unsigned W, bool Count>
std::uint64_t
commitGatedNeonT(const ExecPlan::RegOp *ops, std::size_t count,
                 const std::uint64_t *cur, std::uint64_t *carry,
                 std::uint64_t *pending, std::uint64_t *toggles,
                 std::uint64_t *flip_cur)
{
    static_assert(W % 2 == 0);
    uint64x2_t change = vdupq_n_u64(0);
    std::uint64_t local_toggles = 0;
    for (std::size_t k = 0; k < count; ++k) {
        const auto &op = ops[k];
        const std::uint64_t *a = cur + std::size_t{op.a} * W;
        const std::uint64_t *b_raw = cur + std::size_t{op.b} * W;
        std::uint64_t *cw = carry + k * W;
        std::uint64_t *pend = pending + k * W;
        std::uint64_t *fd = flip_cur == nullptr
                                ? nullptr
                                : flip_cur + std::size_t{op.dst} * W;
        const uint64x2_t binv = vdupq_n_u64(op.bInv);
        for (unsigned w = 0; w < W; w += 2) {
            const uint64x2_t va = vld1q_u64(a + w);
            const uint64x2_t vb = veorq_u64(vld1q_u64(b_raw + w), binv);
            const uint64x2_t vc = vld1q_u64(cw + w);
            const uint64x2_t sum = veorq_u64(veorq_u64(va, vb), vc);
            const uint64x2_t next =
                vorrq_u64(vorrq_u64(vandq_u64(va, vb), vandq_u64(va, vc)),
                          vandq_u64(vb, vc));
            const uint64x2_t old = vld1q_u64(pend + w);
            if (fd != nullptr)
                vst1q_u64(fd + w, old);
            const uint64x2_t dst_change = veorq_u64(old, sum);
            const uint64x2_t carry_change = veorq_u64(vc, next);
            change = vorrq_u64(change,
                               vorrq_u64(dst_change, carry_change));
            if constexpr (Count) {
                std::uint64_t dt[2];
                std::uint64_t ct[2];
                vst1q_u64(dt, dst_change);
                vst1q_u64(ct, carry_change);
                local_toggles += static_cast<std::uint64_t>(
                    std::popcount(dt[0]) + std::popcount(dt[1]) +
                    std::popcount(ct[0]) + std::popcount(ct[1]));
            }
            vst1q_u64(pend + w, sum);
            vst1q_u64(cw + w, next);
        }
    }
    if constexpr (Count)
        *toggles += local_toggles;
    return vgetq_lane_u64(change, 0) | vgetq_lane_u64(change, 1);
}

std::uint64_t
commitGatedNeon(const ExecPlan::RegOp *ops, std::size_t count,
                const std::uint64_t *cur, std::uint64_t *carry,
                std::uint64_t *pending, unsigned lane_words,
                bool count_toggles, std::uint64_t *toggles,
                std::uint64_t *flip_cur)
{
    switch (lane_words) {
      case 2:
        return count_toggles
                   ? commitGatedNeonT<2, true>(ops, count, cur, carry,
                                               pending, toggles, flip_cur)
                   : commitGatedNeonT<2, false>(ops, count, cur, carry,
                                                pending, toggles,
                                                flip_cur);
      case 4:
        return count_toggles
                   ? commitGatedNeonT<4, true>(ops, count, cur, carry,
                                               pending, toggles, flip_cur)
                   : commitGatedNeonT<4, false>(ops, count, cur, carry,
                                                pending, toggles,
                                                flip_cur);
      case 8:
        return count_toggles
                   ? commitGatedNeonT<8, true>(ops, count, cur, carry,
                                               pending, toggles, flip_cur)
                   : commitGatedNeonT<8, false>(ops, count, cur, carry,
                                                pending, toggles,
                                                flip_cur);
      default:
        return commitGatedScalar(ops, count, cur, carry, pending,
                                 lane_words, count_toggles, toggles,
                                 flip_cur);
    }
}

/** Transpose with the j >= 2 butterfly passes on 128-bit registers. */
void
transposeNeon(std::uint64_t a[64])
{
    static constexpr std::uint64_t kMasks[5] = {
        0x00000000ffffffffull, 0x0000ffff0000ffffull,
        0x00ff00ff00ff00ffull, 0x0f0f0f0f0f0f0f0full,
        0x3333333333333333ull};
    unsigned j = 32;
    for (int mi = 0; mi < 5; ++mi, j >>= 1) {
        const uint64x2_t m = vdupq_n_u64(kMasks[mi]);
        const int64x2_t sr = vdupq_n_s64(-static_cast<std::int64_t>(j));
        const int64x2_t sl = vdupq_n_s64(static_cast<std::int64_t>(j));
        for (unsigned k0 = 0; k0 < 64; k0 += 2 * j) {
            for (unsigned k = k0; k < k0 + j; k += 2) {
                uint64x2_t lo = vld1q_u64(a + k);
                uint64x2_t hi = vld1q_u64(a + k + j);
                const uint64x2_t t = vandq_u64(
                    veorq_u64(vshlq_u64(lo, sr), hi), m);
                lo = veorq_u64(lo, vshlq_u64(t, sl));
                hi = veorq_u64(hi, t);
                vst1q_u64(a + k, lo);
                vst1q_u64(a + k + j, hi);
            }
        }
    }
    constexpr std::uint64_t m1 = 0x5555555555555555ull;
    for (unsigned k = 0; k < 64; k += 2) {
        const std::uint64_t t = ((a[k] >> 1) ^ a[k + 1]) & m1;
        a[k] ^= t << 1;
        a[k + 1] ^= t;
    }
}

#endif // SPATIAL_KERNELS_NEON

#if SPATIAL_KERNELS_X86

const Kernel &
avx2Kernel()
{
    static const Kernel kernel{"avx2",         4,
                               settleAvx2,     commitAvx2,
                               commitReverseAvx2,
                               settleMaskedAvx2, commitGatedAvx2,
                               transposeAvx2};
    return kernel;
}

const Kernel &
avx512Kernel()
{
    // The transpose reuses the AVX2 butterfly (AVX-512 implies AVX2);
    // the settle/commit sweeps are where the extra width pays.
    static const Kernel kernel{"avx512",        8,
                               settleAvx512,    commitAvx512,
                               commitReverseAvx512,
                               settleMaskedAvx512, commitGatedAvx512,
                               transposeAvx2};
    return kernel;
}

#endif

#if SPATIAL_KERNELS_NEON

const Kernel &
neonKernel()
{
    static const Kernel kernel{"neon",         2,
                               settleNeon,     commitNeon,
                               commitReverseNeon,
                               settleMaskedNeon, commitGatedNeon,
                               transposeNeon};
    return kernel;
}

#endif

} // namespace

const Kernel &
scalarKernel()
{
    static const Kernel kernel{"scalar",        1,
                               settleScalar,    commitScalar,
                               commitReverseScalar,
                               settleMaskedScalar, commitGatedScalar,
                               transposeScalar};
    return kernel;
}

const std::vector<const Kernel *> &
supportedKernels()
{
    static const std::vector<const Kernel *> kernels = [] {
        std::vector<const Kernel *> list;
#if SPATIAL_KERNELS_X86
        // avx2 outranks avx512 on purpose: the wider kernel measures
        // 5-15% slower on the Skylake-era servers we benchmark (512-bit
        // port limits / license-based downclocking), so the widest ISA
        // is opt-in via SPATIAL_KERNEL=avx512 rather than the default.
        if (__builtin_cpu_supports("avx2"))
            list.push_back(&avx2Kernel());
        if (__builtin_cpu_supports("avx512f"))
            list.push_back(&avx512Kernel());
#endif
#if SPATIAL_KERNELS_NEON
        list.push_back(&neonKernel());
#endif
        list.push_back(&scalarKernel());
        return list;
    }();
    return kernels;
}

const Kernel *
findKernel(const std::string &name)
{
    for (const Kernel *kernel : supportedKernels())
        if (name == kernel->name)
            return kernel;
    return nullptr;
}

const Kernel &
activeKernel()
{
    static const Kernel &active = []() -> const Kernel & {
        if (const char *env = std::getenv("SPATIAL_KERNEL");
            env != nullptr && *env != '\0') {
            if (const Kernel *forced = findKernel(env))
                return *forced;
            std::string have;
            for (const Kernel *kernel : supportedKernels()) {
                if (!have.empty())
                    have += ", ";
                have += kernel->name;
            }
            SPATIAL_FATAL("SPATIAL_KERNEL='", env,
                          "' is not a supported kernel on this machine "
                          "(supported: ",
                          have, ")");
        }
        return *supportedKernels().front();
    }();
    return active;
}

} // namespace spatial::circuit::kernels
