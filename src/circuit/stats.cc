#include "circuit/stats.h"

namespace spatial::circuit
{

NetlistCounts
collectCounts(const Netlist &netlist)
{
    NetlistCounts counts;
    counts.totalNodes = netlist.numNodes();
    for (NodeId id = 0; id < netlist.numNodes(); ++id) {
        switch (netlist.kind(id)) {
          case CompKind::Input:
            counts.inputs++;
            break;
          case CompKind::Const0:
            counts.const0s++;
            break;
          case CompKind::Const1:
            counts.const1s++;
            break;
          case CompKind::Dff:
            counts.dffs++;
            break;
          case CompKind::Not:
            counts.nots++;
            break;
          case CompKind::And:
            counts.ands++;
            break;
          case CompKind::Adder:
            counts.adders++;
            break;
          case CompKind::Sub:
            counts.subs++;
            break;
        }
    }
    counts.registerBits = netlist.registerBits();
    counts.maxFanout = netlist.maxFanout();
    return counts;
}

} // namespace spatial::circuit
