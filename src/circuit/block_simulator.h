/**
 * @file
 * Tape-driven, >64-lane netlist simulator.
 *
 * BlockSimulator<W> executes an ExecPlan over W consecutive 64-bit
 * lane-words per node, evaluating the same netlist for up to 64*W
 * independent input vectors per step (W=1 matches WideSimulator's 64
 * lanes; W=4 gives 256, W=8 gives 512).  The settle and commit sweeps
 * are executed by a circuit::kernels::Kernel — explicit SIMD code
 * (AVX2/AVX-512/NEON) selected once per process by runtime CPU
 * detection, or injected by the caller to pin a specific dispatch
 * target (the equivalence suite cross-checks every one).
 *
 * Two execution modes share the class:
 *
 *  - **Full sweeps** (no Segmentation): the settle tape is a single
 *    branch-free `(a & b) ^ inv` loop and the commit tape a single
 *    branch-free full-adder loop, exactly the PR 4 engine.
 *  - **Segmented, activity-gated** (constructed with a Segmentation):
 *    settle() runs one fused pass over the segments, settling each
 *    segment's comb ops and computing its registers' next states into a
 *    pending buffer in one cache-warm visit — and *skips* every segment
 *    whose frontier did not change: no frontier segment's comb values
 *    changed this cycle, none of its registers or carries changed last
 *    cycle, and the driven inputs are unchanged (after the input bits
 *    of a bit-serial stream are exhausted, most of the circuit is
 *    provably quiescent, which is where the drain-cycle win comes
 *    from).  commit() then flips the pending next states into the value
 *    array.  Skipping is exact, not approximate: a segment is only
 *    skipped when every op would recompute its current value, so
 *    outputs *and* toggle counts are bit-identical to the full sweeps
 *    and to WideSimulator in both modes (proved by the equivalence
 *    suite).  In gated mode each settle() must be paired with a
 *    commit() before the next settle() — carries advance during the
 *    fused pass.
 *
 * The cycle is split into the two synchronous phases explicitly:
 * settle() computes every output for the cycle; outputs must be read
 * between settle() and commit(); commit() latches all register next
 * states.  step() runs both for callers that do not sample outputs.
 *
 * CountToggles selects lane-wise register toggle accounting, identical
 * to WideSimulator's (for switching-activity probes); product paths
 * instantiate the non-counting variant and skip the popcounts entirely.
 *
 * Lane semantics, toggle accounting, and reset state are bit-identical
 * to WideSimulator per lane — verified by the equivalence test suite.
 */

#ifndef SPATIAL_CIRCUIT_BLOCK_SIMULATOR_H
#define SPATIAL_CIRCUIT_BLOCK_SIMULATOR_H

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "circuit/exec_plan.h"
#include "circuit/jit.h"
#include "circuit/kernels.h"
#include "common/aligned.h"
#include "common/logging.h"

namespace spatial::circuit
{

/** Executes an ExecPlan over 64*W lanes per step. */
template <unsigned W, bool CountToggles = true>
class BlockSimulator
{
    static_assert(W >= 1 && W <= 16, "1..16 lane-words per node");

  public:
    /** Lane-words per node. */
    static constexpr unsigned kLaneWords = W;

    /** Independent vectors evaluated per step. */
    static constexpr unsigned kLanes = 64 * W;

    /**
     * Bind to a plan; the plan must outlive the simulator.  The sweeps
     * run on `kernel` (default: the runtime-detected process kernel).
     * Passing a Segmentation of the same plan selects segmented,
     * activity-gated execution (see the file comment); nullptr selects
     * the classic full sweeps.  Passing a jit::JitModule whose tables
     * match this W and execution mode replaces the kernel sweeps with
     * the module's generated code (same outputs, same toggle counts);
     * a module that does not match — or nullptr — leaves the
     * interpreted tape in charge, so callers can hand over whatever
     * the design has attached without checking compatibility first.
     */
    explicit BlockSimulator(
        const ExecPlan &plan, const kernels::Kernel *kernel = nullptr,
        std::shared_ptr<const Segmentation> segmentation = nullptr,
        std::shared_ptr<const jit::JitModule> jit = nullptr)
        : plan_(plan),
          kernel_(kernel != nullptr ? *kernel : kernels::activeKernel()),
          segmentation_(std::move(segmentation)),
          jitModule_(std::move(jit)),
          cur_(plan.numSlots() * W, 0),
          carry_(plan.regs().size() * W, 0)
    {
        if (jitModule_ != nullptr) {
            jitTables_ = jitModule_->tables(
                W, segmentation_ != nullptr,
                segmentation_ != nullptr
                    ? segmentation_->opsPerSegment()
                    : 0);
        }
        if (segmentation_ != nullptr) {
            slotOf_ = segmentation_->slotOf().data();
            const std::size_t segments = segmentation_->segments().size();
            const std::size_t words = (segments + 63) / 64;
            // An in-place module never touches the pending buffer —
            // don't spend the pages (it is a full extra copy of the
            // register state, a real working-set cost at W = 8).
            if (jitTables_ == nullptr || !jitTables_->inPlace)
                pending_.assign(segmentation_->regs().size() * W, 0);
            dirtyNow_.assign(words, 0);
            dirtyNext_.assign(words, 0);
            flipPending_.assign(segments, 0);
            pendingStale_.assign(segments, 0);
        }
        reset();
    }

    /** Power-on state in every lane; clears toggle counters. */
    void
    reset()
    {
        cycle_ = 0;
        toggles_ = 0;
        pendingToggles_ = 0;
        denseCycle_ = false;
        wasDense_ = false;
        quietCycles_ = 0;
        segmentsExecuted_ = 0;
        segmentsSkipped_ = 0;
        std::fill(cur_.begin(), cur_.end(), 0);
        for (unsigned w = 0; w < W; ++w)
            cur_[std::size_t{plan_.onesSlot()} * W + w] = ~std::uint64_t{0};
        const auto &const_ones =
            gated() ? segmentation_->constOnes() : plan_.constOnes();
        for (const auto node : const_ones)
            for (unsigned w = 0; w < W; ++w)
                cur_[std::size_t{node} * W + w] = ~std::uint64_t{0};
        const auto &regs = gated() ? segmentation_->regs() : plan_.regs();
        for (std::size_t k = 0; k < regs.size(); ++k)
            for (unsigned w = 0; w < W; ++w)
                carry_[k * W + w] = regs[k].carryInit;
        if (gated()) {
            // pending_ needs no clear: cycle 0 always runs dense, and
            // leaving dense marks every segment pendingStale_, so each
            // pending slice is refreshed from the value array before
            // its first gated read.
            std::fill(dirtyNow_.begin(), dirtyNow_.end(), 0);
            std::fill(dirtyNext_.begin(), dirtyNext_.end(), 0);
            std::fill(flipPending_.begin(), flipPending_.end(), 0);
            std::fill(pendingStale_.begin(), pendingStale_.end(), 0);
        }
    }

    /**
     * Phase 1 of a cycle: drive the inputs and settle every output.
     * In gated mode this also computes register next states (into the
     * pending buffer), so each settle() must be followed by a commit()
     * before the next settle().
     *
     * @param input_words port-major plane of W lane-words per port
     *        (port p's words at input_words[p*W .. p*W+W)); ports at or
     *        beyond num_ports read 0 in all lanes.
     */
    void
    settle(const std::uint64_t *input_words, std::size_t num_ports)
    {
        if (!gated()) {
            for (const auto &in : plan_.inputs()) {
                std::uint64_t *dst = &cur_[std::size_t{in.node} * W];
                if (in.port < num_ports) {
                    const std::uint64_t *src = input_words +
                                               std::size_t{in.port} * W;
                    for (unsigned w = 0; w < W; ++w)
                        dst[w] = src[w];
                } else {
                    for (unsigned w = 0; w < W; ++w)
                        dst[w] = 0;
                }
            }
            if (jitTables_ != nullptr) {
                jitTables_->settle(cur_.data());
                return;
            }
            const auto &comb = plan_.comb();
            kernel_.settle(comb.data(), comb.size(), cur_.data(), W);
            return;
        }

        const std::uint64_t input_change =
            driveInputs(input_words, num_ports);
        const auto &segments = segmentation_->segments();
        const auto *comb = segmentation_->comb().data();
        const auto *regs = segmentation_->regs().data();
        const auto *consumers = segmentation_->consumers().data();

        // While the driven inputs are still changing, essentially the
        // whole circuit is active and per-segment gating is pure
        // overhead — run the cycle *dense*: owed flips first, then the
        // classic full settle sweep now and one hazard-free in-place
        // commit over the reg tape (walked backwards, so descending
        // slots) at commit() time, with no pending traffic and no
        // change masks at all.  The activity wavefront needs a couple
        // of cycles to recede once the inputs go quiet, so gating
        // resumes shortly after — the drain phase, the skip win this
        // engine exists for.
        constexpr std::uint32_t kDenseHysteresis = 2;
        quietCycles_ = input_change != 0 ? 0 : quietCycles_ + 1;
        if (cycle_ == 0 || quietCycles_ <= kDenseHysteresis) {
            denseCycle_ = true;
            for (std::size_t s = 0; s < segments.size(); ++s) {
                if (!flipPending_[s])
                    continue;
                flipPending_[s] = 0;
                flipSegment(segments[s], regs);
            }
            if (jitTables_ != nullptr) {
                jitTables_->settle(cur_.data());
            } else {
                const auto &all_comb = segmentation_->comb();
                kernel_.settle(all_comb.data(), all_comb.size(),
                               cur_.data(), W);
            }
            segmentsExecuted_ += segments.size();
            return;
        }

        // First gated cycle after a dense one: the in-place commits
        // bypassed the pending buffer, so every segment must restore
        // its pending == presented invariant before its next gated
        // sweep (done lazily below, right when the slice is hot), and
        // every segment is treated as changed — the masks rebuild the
        // activity wavefront this cycle.
        if (wasDense_) {
            wasDense_ = false;
            // In-place modules keep the value array authoritative at
            // all times, so a dense cycle leaves nothing to restore.
            if (jitTables_ == nullptr || !jitTables_->inPlace)
                std::fill(pendingStale_.begin(), pendingStale_.end(), 1);
            std::fill(dirtyNow_.begin(), dirtyNow_.end(),
                      ~std::uint64_t{0});
            const std::size_t tail = segments.size() % 64;
            if (tail != 0)
                dirtyNow_.back() = (std::uint64_t{1} << tail) - 1;
        }

        // An in-place module's steps overwrite register values the
        // moment they run, so the whole gated pass is deferred to
        // commit() — outputs sampled between the phases must present
        // the pre-latch state.  dirtyNow_ stays queued until then.
        if (jitTables_ != nullptr && jitTables_->inPlace)
            return;

        // Build this cycle's wake set.  Quiescent segments are never
        // even looked at: changes wake exactly their consumers (comb
        // readers in the same cycle, register readers and the segment
        // itself in the next), and changed input planes wake the
        // input-reading segments.  (Input changes land in the dense
        // branch above, so no input wake is needed here.)

        const auto wake = [](std::vector<std::uint64_t> &set,
                             const std::uint32_t *list,
                             std::uint32_t begin, std::uint32_t end) {
            for (std::uint32_t i = begin; i < end; ++i)
                set[list[i] / 64] |= std::uint64_t{1} << (list[i] % 64);
        };

        std::uint64_t executed = 0;
        for (std::size_t word = 0; word < dirtyNow_.size();) {
            if (dirtyNow_[word] == 0) {
                ++word;
                continue;
            }
            // Re-read the word each round: a comb change can wake a
            // consumer at a higher bit of the same word (consumers
            // always sort after their producer).
            const auto bit = static_cast<unsigned>(
                std::countr_zero(dirtyNow_[word]));
            dirtyNow_[word] &= ~(std::uint64_t{1} << bit);
            const std::size_t s = word * 64 + bit;
            const Segmentation::Segment &seg = segments[s];
            ++executed;

            // Deferred commit: the segment's pending register states
            // from its last execution become visible now, just before
            // they are needed — every reader of a register sorts after
            // its owner segment, so no earlier op can have observed
            // the stale value.

            if (jitTables_ != nullptr) {
                // The generated fused step folds the owed flip, the
                // post-dense pending restore, the masked comb settle,
                // and the gated commit into one pass; the host only
                // reads its two change bits back into the wake sets.
                const int flip = flipPending_[s] != 0 ? 1 : 0;
                const int restore = pendingStale_[s] != 0 ? 1 : 0;
                flipPending_[s] = 0;
                pendingStale_[s] = 0;
                const std::uint64_t r = jitTables_->segStep[s](
                    cur_.data(), carry_.data(), pending_.data(),
                    CountToggles ? &pendingToggles_ : nullptr, flip,
                    restore);
                if ((r & jit::kCombChanged) != 0)
                    wake(dirtyNow_, consumers, seg.combConsumersBegin,
                         seg.combConsumersEnd);
                if ((r & jit::kRegChanged) != 0) {
                    wake(dirtyNext_, consumers, seg.regConsumersBegin,
                         seg.regConsumersEnd);
                    dirtyNext_[word] |= std::uint64_t{1} << bit;
                    flipPending_[s] = 1;
                }
                continue;
            }

            // The flip normally rides inside the
            // gated commit sweep (which reloads pending anyway); only
            // a segment with comb ops must flip up front, because its
            // comb ops may read its own registers during settle.
            bool flip = flipPending_[s] != 0;
            flipPending_[s] = 0;
            if (flip && seg.combEnd > seg.combBegin) {
                flip = false;
                flipSegment(seg, regs);
            }
            if (pendingStale_[s]) {
                // Restore pending == presented after a dense cycle's
                // in-place commits, touching exactly the slice the
                // sweep below is about to work on.  (No flip can be
                // owed here: dense entry consumed them all.)
                pendingStale_[s] = 0;
                for (std::uint32_t k = seg.regBegin; k < seg.regEnd;
                     ++k) {
                    const std::uint64_t *src =
                        &cur_[std::size_t{regs[k].dst} * W];
                    std::uint64_t *__restrict dst =
                        &pending_[std::size_t{k} * W];
                    for (unsigned w = 0; w < W; ++w)
                        dst[w] = src[w];
                }
            }

            if (seg.combEnd > seg.combBegin) {
                const std::uint64_t comb_change = kernel_.settleMasked(
                    comb + seg.combBegin, seg.combEnd - seg.combBegin,
                    cur_.data(), W);
                if (comb_change != 0)
                    wake(dirtyNow_, consumers, seg.combConsumersBegin,
                         seg.combConsumersEnd);
            }
            if (seg.regEnd > seg.regBegin) {
                const std::uint64_t reg_change = kernel_.commitGated(
                    regs + seg.regBegin, seg.regEnd - seg.regBegin,
                    cur_.data(),
                    carry_.data() + std::size_t{seg.regBegin} * W,
                    pending_.data() + std::size_t{seg.regBegin} * W, W,
                    CountToggles, &pendingToggles_,
                    flip ? cur_.data() : nullptr);
                if (reg_change != 0) {
                    // A changed register means a changed presented
                    // value next cycle: wake the readers, and the
                    // segment itself so the pending values get flipped
                    // in (an unchanged segment needs no flip — pending
                    // equals the presented state bit for bit).
                    wake(dirtyNext_, consumers, seg.regConsumersBegin,
                         seg.regConsumersEnd);
                    dirtyNext_[word] |= std::uint64_t{1} << bit;
                    flipPending_[s] = 1;
                }
            }
        }
        segmentsExecuted_ += executed;
        segmentsSkipped_ += segments.size() - executed;
    }

    /**
     * Phase 2: latch all register next states.  In gated mode the
     * latch becomes *visible* lazily — each segment folds its pending
     * states in at its next settle visit, before any reader — so
     * outputs must be sampled between settle() and commit(), as the
     * contract has always required.
     */
    void
    commit()
    {
        if (!gated()) {
            const auto &regs = plan_.regs();
            const std::uint64_t toggles =
                jitTables_ != nullptr
                    ? jitTables_->commit(cur_.data(), carry_.data(),
                                         CountToggles)
                    : kernel_.commit(regs.data(), regs.size(),
                                     cur_.data(), carry_.data(), W,
                                     CountToggles);
            if constexpr (CountToggles)
                toggles_ += toggles;
            ++cycle_;
            return;
        }

        if (denseCycle_) {
            // The dense in-place commit: one hazard-free pass over the
            // descending-slot reg tape, exactly the classic sweep.
            denseCycle_ = false;
            wasDense_ = true;
            const auto &regs = segmentation_->regs();
            // A gated module's dense commit bakes the reverse walk in.
            const std::uint64_t toggles =
                jitTables_ != nullptr
                    ? jitTables_->commit(cur_.data(), carry_.data(),
                                         CountToggles)
                    : kernel_.commitReverse(regs.data(), regs.size(),
                                            cur_.data(), carry_.data(),
                                            W, CountToggles);
            if constexpr (CountToggles)
                toggles_ += toggles;
            // Any wake bits queued by an earlier gated cycle are
            // superseded: the next gated cycle starts all-dirty.
            std::fill(dirtyNow_.begin(), dirtyNow_.end(), 0);
            std::fill(dirtyNext_.begin(), dirtyNext_.end(), 0);
            ++cycle_;
            return;
        }

        // In-place modules run the whole gated pass here: drain the
        // wake set in *reverse* segment order — every reader of a
        // register then executes before its producer overwrites the
        // value array, the same hazard-free order as the dense reverse
        // commit — so new states land directly in cur_ with no pending
        // buffer and no flip to owe.  Register changes only ever wake
        // next-cycle consumers, so one descending scan is complete.
        if (jitTables_ != nullptr && jitTables_->inPlace) {
            const auto &segments = segmentation_->segments();
            const auto *consumers = segmentation_->consumers().data();
            std::uint64_t executed = 0;
            for (std::size_t word = dirtyNow_.size(); word-- > 0;) {
                std::uint64_t bits = dirtyNow_[word];
                dirtyNow_[word] = 0;
                while (bits != 0) {
                    const auto bit = static_cast<unsigned>(
                        63 - std::countl_zero(bits));
                    bits &= ~(std::uint64_t{1} << bit);
                    const std::size_t s = word * 64 + bit;
                    ++executed;
                    const std::uint64_t r = jitTables_->segStep[s](
                        cur_.data(), carry_.data(), nullptr,
                        CountToggles ? &pendingToggles_ : nullptr, 0,
                        0);
                    if ((r & jit::kRegChanged) != 0) {
                        const Segmentation::Segment &seg = segments[s];
                        for (std::uint32_t i = seg.regConsumersBegin;
                             i < seg.regConsumersEnd; ++i)
                            dirtyNext_[consumers[i] / 64] |=
                                std::uint64_t{1} << (consumers[i] % 64);
                        dirtyNext_[word] |= std::uint64_t{1} << bit;
                    }
                }
            }
            segmentsExecuted_ += executed;
            segmentsSkipped_ += segments.size() - executed;
        }

        if constexpr (CountToggles)
            toggles_ += pendingToggles_;
        pendingToggles_ = 0;
        // settle() drained dirtyNow_, so the swap hands it over empty
        // to collect the cycle after next.
        std::swap(dirtyNow_, dirtyNext_);
        ++cycle_;
    }

    /** settle() + commit() for callers that do not sample outputs. */
    void
    step(const std::uint64_t *input_words, std::size_t num_ports)
    {
        settle(input_words, num_ports);
        commit();
    }

    /** Convenience overload matching the WideSimulator vector API. */
    void
    step(const std::vector<std::uint64_t> &input_words)
    {
        SPATIAL_ASSERT(input_words.size() % W == 0,
                       "input plane must hold W words per port");
        step(input_words.data(), input_words.size() / W);
    }

    /**
     * The W settled lane-words of a component this cycle; valid between
     * settle() and commit() (registers present next state afterwards).
     */
    const std::uint64_t *
    outputWords(NodeId id) const
    {
        SPATIAL_ASSERT(id < plan_.numNodes(), "node ", id, " out of range");
        const NodeId slot = slotOf_ != nullptr ? slotOf_[id] : id;
        return &cur_[std::size_t{slot} * W];
    }

    /** Lane-word `w` of a component; see outputWords(). */
    std::uint64_t
    outputWord(NodeId id, unsigned w = 0) const
    {
        SPATIAL_ASSERT(w < W, "lane-word ", w, " out of range");
        return outputWords(id)[w];
    }

    /** Completed cycles since reset. */
    std::uint64_t cycle() const { return cycle_; }

    /**
     * Total register-bit toggles across all lanes since reset (always 0
     * in the CountToggles = false variant).
     */
    std::uint64_t toggleCount() const { return toggles_; }

    /** Toggles per register bit per cycle per lane (see WideSimulator). */
    double
    measuredActivity(std::size_t lanes_used = kLanes) const
    {
        static_assert(CountToggles,
                      "activity requires the toggle-counting variant");
        SPATIAL_ASSERT(lanes_used >= 1 && lanes_used <= kLanes, "lanes ",
                       lanes_used);
        if (cycle_ == 0 || plan_.registerBits() == 0)
            return 0.0;
        return static_cast<double>(toggles_) /
               (static_cast<double>(plan_.registerBits()) *
                static_cast<double>(cycle_) *
                static_cast<double>(lanes_used));
    }

    /** The kernel executing this simulator's sweeps. */
    const kernels::Kernel &kernel() const { return kernel_; }

    /** Whether segmented, activity-gated execution is active. */
    bool gated() const { return segmentation_ != nullptr; }

    /** Whether the sweeps run generated native code (see constructor). */
    bool jitActive() const { return jitTables_ != nullptr; }

    /** Segments executed since reset (0 in full-sweep mode). */
    std::uint64_t segmentsExecuted() const { return segmentsExecuted_; }

    /** Segments skipped as quiescent since reset (0 in full-sweep mode). */
    std::uint64_t segmentsSkipped() const { return segmentsSkipped_; }

  private:
    /** Fold a segment's pending register states into the value array. */
    void
    flipSegment(const Segmentation::Segment &seg,
                const ExecPlan::RegOp *regs)
    {
        for (std::uint32_t k = seg.regBegin; k < seg.regEnd; ++k) {
            std::uint64_t *__restrict dst =
                &cur_[std::size_t{regs[k].dst} * W];
            const std::uint64_t *src = &pending_[std::size_t{k} * W];
            for (unsigned w = 0; w < W; ++w)
                dst[w] = src[w];
        }
    }

    /**
     * Write the driven input planes and return the OR-reduced change
     * mask versus the previous cycle's values.
     */
    std::uint64_t
    driveInputs(const std::uint64_t *input_words, std::size_t num_ports)
    {
        std::uint64_t change = 0;
        for (const auto &in : segmentation_->inputs()) {
            std::uint64_t *dst = &cur_[std::size_t{in.node} * W];
            if (in.port < num_ports) {
                const std::uint64_t *src = input_words +
                                           std::size_t{in.port} * W;
                for (unsigned w = 0; w < W; ++w) {
                    change |= dst[w] ^ src[w];
                    dst[w] = src[w];
                }
            } else {
                for (unsigned w = 0; w < W; ++w) {
                    change |= dst[w];
                    dst[w] = 0;
                }
            }
        }
        return change;
    }

    const ExecPlan &plan_;
    const kernels::Kernel &kernel_; //!< sweep implementation
    std::shared_ptr<const Segmentation>
        segmentation_;                 //!< non-null = gated mode
    std::shared_ptr<const jit::JitModule>
        jitModule_; //!< keeps the generated code mapped while in use
    const jit::JitTables *jitTables_ =
        nullptr;                       //!< resolved entry points, or null
    const NodeId *slotOf_ = nullptr;   //!< gated: node id -> value slot
    AlignedWordVector cur_;   //!< numSlots()*W settled values
    AlignedWordVector carry_; //!< per-RegOp carry registers
    AlignedWordVector
        pending_; //!< gated mode: per-RegOp next states awaiting commit
    std::vector<std::uint64_t> dirtyNow_;   //!< wake set, this cycle
    std::vector<std::uint64_t> dirtyNext_;  //!< wake set, next cycle
    std::vector<std::uint8_t> flipPending_; //!< await a deferred flip
    std::vector<std::uint8_t>
        pendingStale_; //!< pending bypassed by a dense in-place commit
    std::uint64_t cycle_ = 0;
    std::uint64_t toggles_ = 0;
    std::uint64_t pendingToggles_ = 0; //!< counted in settle, booked in commit
    bool denseCycle_ = false; //!< this cycle runs the dense fallback
    bool wasDense_ = false;   //!< last cycle was dense (pending is stale)
    std::uint32_t quietCycles_ = 0; //!< cycles since inputs last changed
    std::uint64_t segmentsExecuted_ = 0;
    std::uint64_t segmentsSkipped_ = 0;
};

} // namespace spatial::circuit

#endif // SPATIAL_CIRCUIT_BLOCK_SIMULATOR_H
