/**
 * @file
 * Tape-driven, >64-lane netlist simulator.
 *
 * BlockSimulator<W> executes an ExecPlan over W consecutive 64-bit
 * lane-words per node, evaluating the same netlist for up to 64*W
 * independent input vectors per step (W=1 matches WideSimulator's 64
 * lanes; W=4 gives 256, W=8 gives 512).  The settle and commit sweeps
 * are executed by a circuit::kernels::Kernel — explicit SIMD code
 * (AVX2/AVX-512/NEON) selected once per process by runtime CPU
 * detection, or injected by the caller to pin a specific dispatch
 * target (the equivalence suite cross-checks every one).
 *
 * Unlike the interpreters, a step touches only the ops that do work:
 * constants are materialized once at reset, the settle tape is a single
 * branch-free `(a & b) ^ inv` loop, and the commit tape is a single
 * branch-free full-adder loop over the registers — no second pass over
 * the whole netlist, no staging copies (the settled value array doubles
 * as the register file; the tape's descending-id order makes in-place
 * commit hazard-free).
 *
 * The cycle is split into the two synchronous phases explicitly:
 * settle() computes every output for the cycle; outputs must be read
 * between settle() and commit(); commit() latches all register next
 * states.  step() runs both for callers that do not sample outputs.
 *
 * CountToggles selects lane-wise register toggle accounting, identical
 * to WideSimulator's (for switching-activity probes); product paths
 * instantiate the non-counting variant and skip the popcounts entirely.
 *
 * Lane semantics, toggle accounting, and reset state are bit-identical
 * to WideSimulator per lane — verified by the equivalence test suite.
 */

#ifndef SPATIAL_CIRCUIT_BLOCK_SIMULATOR_H
#define SPATIAL_CIRCUIT_BLOCK_SIMULATOR_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "circuit/exec_plan.h"
#include "circuit/kernels.h"
#include "common/logging.h"

namespace spatial::circuit
{

/** Executes an ExecPlan over 64*W lanes per step. */
template <unsigned W, bool CountToggles = true>
class BlockSimulator
{
    static_assert(W >= 1 && W <= 16, "1..16 lane-words per node");

  public:
    /** Lane-words per node. */
    static constexpr unsigned kLaneWords = W;

    /** Independent vectors evaluated per step. */
    static constexpr unsigned kLanes = 64 * W;

    /**
     * Bind to a plan; the plan must outlive the simulator.  The sweeps
     * run on `kernel` (default: the runtime-detected process kernel).
     */
    explicit BlockSimulator(const ExecPlan &plan,
                            const kernels::Kernel *kernel = nullptr)
        : plan_(plan),
          kernel_(kernel != nullptr ? *kernel : kernels::activeKernel()),
          cur_(plan.numSlots() * W, 0),
          carry_(plan.regs().size() * W, 0)
    {
        reset();
    }

    /** Power-on state in every lane; clears toggle counters. */
    void
    reset()
    {
        cycle_ = 0;
        toggles_ = 0;
        std::fill(cur_.begin(), cur_.end(), 0);
        for (unsigned w = 0; w < W; ++w)
            cur_[std::size_t{plan_.onesSlot()} * W + w] = ~std::uint64_t{0};
        for (const auto node : plan_.constOnes())
            for (unsigned w = 0; w < W; ++w)
                cur_[std::size_t{node} * W + w] = ~std::uint64_t{0};
        const auto &regs = plan_.regs();
        for (std::size_t k = 0; k < regs.size(); ++k)
            for (unsigned w = 0; w < W; ++w)
                carry_[k * W + w] = regs[k].carryInit;
    }

    /**
     * Phase 1 of a cycle: drive the inputs and settle every output.
     *
     * @param input_words port-major plane of W lane-words per port
     *        (port p's words at input_words[p*W .. p*W+W)); ports at or
     *        beyond num_ports read 0 in all lanes.
     */
    void
    settle(const std::uint64_t *input_words, std::size_t num_ports)
    {
        for (const auto &in : plan_.inputs()) {
            std::uint64_t *dst = &cur_[std::size_t{in.node} * W];
            if (in.port < num_ports) {
                const std::uint64_t *src = input_words +
                                           std::size_t{in.port} * W;
                for (unsigned w = 0; w < W; ++w)
                    dst[w] = src[w];
            } else {
                for (unsigned w = 0; w < W; ++w)
                    dst[w] = 0;
            }
        }
        const auto &comb = plan_.comb();
        kernel_.settle(comb.data(), comb.size(), cur_.data(), W);
    }

    /** Phase 2: latch all register next states in one tape pass. */
    void
    commit()
    {
        const auto &regs = plan_.regs();
        const std::uint64_t toggles =
            kernel_.commit(regs.data(), regs.size(), cur_.data(),
                           carry_.data(), W, CountToggles);
        if constexpr (CountToggles)
            toggles_ += toggles;
        ++cycle_;
    }

    /** settle() + commit() for callers that do not sample outputs. */
    void
    step(const std::uint64_t *input_words, std::size_t num_ports)
    {
        settle(input_words, num_ports);
        commit();
    }

    /** Convenience overload matching the WideSimulator vector API. */
    void
    step(const std::vector<std::uint64_t> &input_words)
    {
        SPATIAL_ASSERT(input_words.size() % W == 0,
                       "input plane must hold W words per port");
        step(input_words.data(), input_words.size() / W);
    }

    /**
     * The W settled lane-words of a component this cycle; valid between
     * settle() and commit() (registers present next state afterwards).
     */
    const std::uint64_t *
    outputWords(NodeId id) const
    {
        SPATIAL_ASSERT(id < plan_.numNodes(), "node ", id, " out of range");
        return &cur_[std::size_t{id} * W];
    }

    /** Lane-word `w` of a component; see outputWords(). */
    std::uint64_t
    outputWord(NodeId id, unsigned w = 0) const
    {
        SPATIAL_ASSERT(w < W, "lane-word ", w, " out of range");
        return outputWords(id)[w];
    }

    std::uint64_t cycle() const { return cycle_; }

    /**
     * Total register-bit toggles across all lanes since reset (always 0
     * in the CountToggles = false variant).
     */
    std::uint64_t toggleCount() const { return toggles_; }

    /** Toggles per register bit per cycle per lane (see WideSimulator). */
    double
    measuredActivity(std::size_t lanes_used = kLanes) const
    {
        static_assert(CountToggles,
                      "activity requires the toggle-counting variant");
        SPATIAL_ASSERT(lanes_used >= 1 && lanes_used <= kLanes, "lanes ",
                       lanes_used);
        if (cycle_ == 0 || plan_.registerBits() == 0)
            return 0.0;
        return static_cast<double>(toggles_) /
               (static_cast<double>(plan_.registerBits()) *
                static_cast<double>(cycle_) *
                static_cast<double>(lanes_used));
    }

    /** The kernel executing this simulator's sweeps. */
    const kernels::Kernel &kernel() const { return kernel_; }

  private:
    const ExecPlan &plan_;
    const kernels::Kernel &kernel_;    //!< sweep implementation
    std::vector<std::uint64_t> cur_;   //!< numSlots()*W settled values
    std::vector<std::uint64_t> carry_; //!< per-RegOp carry registers
    std::uint64_t cycle_ = 0;
    std::uint64_t toggles_ = 0;
};

} // namespace spatial::circuit

#endif // SPATIAL_CIRCUIT_BLOCK_SIMULATOR_H
