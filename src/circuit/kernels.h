/**
 * @file
 * Explicit SIMD kernels for the tape engine's three hot loops.
 *
 * BlockSimulator<W> spends essentially all of its time in two sweeps —
 * the settle tape `(a & b) ^ inv` loop and the commit full-adder loop —
 * and the batch engine adds a third hot spot, the 64x64 bit-matrix
 * transpose that converts lane-major values to bit-plane lane-words.
 * All three are pure 64-bit word-parallel bit logic, which vector units
 * execute 2-8 words at a time; relying on auto-vectorization of the
 * fixed-trip word loops (the PR 1 approach) leaves most of that width
 * unused because Release builds target baseline SSE2.
 *
 * A Kernel packages explicit implementations of the three loops.  The
 * registry holds one Kernel per instruction set compiled into the
 * binary and supported by the running CPU:
 *
 *  - `scalar` — portable 64-bit code, always present; semantically the
 *    reference (it is the PR 1 inner loop, hoisted out of the class).
 *  - `avx2`   — 256-bit, 4 lane-words per op (x86 with AVX2).
 *  - `avx512` — 512-bit, 8 lane-words per op, using ternary-logic ops
 *    (x86 with AVX-512F).
 *  - `neon`   — 128-bit, 2 lane-words per op (AArch64).
 *
 * activeKernel() picks the best supported kernel once per process —
 * preference order avx2, avx512, neon, scalar: AVX2 outranks AVX-512
 * because the wider kernel measures slower on the Skylake-era servers
 * we benchmark (overridable with the SPATIAL_KERNEL environment
 * variable, e.g. SPATIAL_KERNEL=avx512 to opt into the 512-bit sweeps
 * or SPATIAL_KERNEL=scalar to rule the SIMD paths out while
 * debugging);
 * SimOptions::kernel and the BlockSimulator constructor accept an
 * explicit Kernel so the equivalence suite and the throughput bench can
 * pin every dispatch target.
 *
 * Every kernel is bit-identical to the scalar path by construction
 * (same word reads, same word writes, exact popcount toggle
 * accounting), and the equivalence suite proves it against
 * WideSimulator for each registered kernel.
 */

#ifndef SPATIAL_CIRCUIT_KERNELS_H
#define SPATIAL_CIRCUIT_KERNELS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "circuit/exec_plan.h"

/**
 * @namespace spatial::circuit
 * Netlist representation, execution planning, and simulation engines.
 */

/**
 * @namespace spatial::circuit::kernels
 * Runtime-dispatched SIMD implementations of the tape engine's hot
 * loops (settle sweep, commit sweep, 64x64 bit transpose).
 */
namespace spatial::circuit::kernels
{

/**
 * One dispatchable implementation of the tape engine's hot loops.
 *
 * The sweeps take the lane-word count W (the BlockSimulator template
 * parameter) at runtime; implementations specialize internally for the
 * supported widths {1, 2, 4, 8} and fall back to a generic word loop
 * otherwise.  `cur` is the simulator's value array laid out as W
 * consecutive words per node slot.
 */
struct Kernel
{
    /** Registry name: "scalar", "avx2", "avx512", or "neon". */
    const char *name;

    /**
     * 64-bit lane-words covered by one vector register (1 for scalar);
     * the adaptive lane-word heuristic sizes W to a multiple of this.
     */
    unsigned vectorWords;

    /** Settle sweep: `cur[op.dst*W + w] = (a[w] & b[w]) ^ inv`. */
    void (*settle)(const ExecPlan::CombOp *ops, std::size_t count,
                   std::uint64_t *cur, unsigned laneWords);

    /**
     * Commit sweep (bit-serial full adder, in place, tape order).
     * `carry` holds W words per RegOp, indexed by tape position.
     * Returns the register-bit toggle count of the pass when
     * `countToggles` is set (exactly WideSimulator's accounting), 0
     * otherwise.
     */
    std::uint64_t (*commit)(const ExecPlan::RegOp *ops, std::size_t count,
                            std::uint64_t *cur, std::uint64_t *carry,
                            unsigned laneWords, bool countToggles);

    /**
     * As commit(), but processing the tape from the last op to the
     * first.  On a tape sorted by ascending destination slot this is
     * the hazard-free in-place order (every reader commits before its
     * source is overwritten), which is how gated simulators run their
     * dense full-sweep cycles without disturbing the ascending layout
     * the per-segment sweeps prefer.
     */
    std::uint64_t (*commitReverse)(const ExecPlan::RegOp *ops,
                                   std::size_t count, std::uint64_t *cur,
                                   std::uint64_t *carry,
                                   unsigned laneWords, bool countToggles);

    /**
     * Settle sweep that additionally OR-reduces every value change:
     * returns the OR over all ops and lane-words of
     * `old dst ^ new dst` — the segment's combinational change mask
     * for activity gating (zero means the sweep was a fixed point).
     * Same writes as settle().
     */
    std::uint64_t (*settleMasked)(const ExecPlan::CombOp *ops,
                                  std::size_t count, std::uint64_t *cur,
                                  unsigned laneWords);

    /**
     * Gated commit sweep: computes each register's next state into
     * `pending` (W words per RegOp, tape position order) instead of
     * writing `cur` in place, advances `carry`, and returns the
     * OR-reduced register change mask
     * `(old dst ^ sum) | (carry ^ carry')`.  When `countToggles` is
     * set, adds the pass's exact toggle count (identical to commit's
     * accounting) to `*toggles`.
     *
     * The previous pending value *is* the op's presented value (the
     * simulator keeps `cur[dst]` equal to it), so the old state is
     * read from the sequential pending stream rather than a scattered
     * dst load.  When `flipCur` is non-null (the segment still owes
     * the flip of its previous next states into the value array), the
     * sweep performs that flip inline — `flipCur[dst] = old pending` —
     * before overwriting pending, folding what would be a separate
     * pass over both arrays into stores the sweep already has in
     * registers.  The simulator makes this cycle's next states visible
     * the same way at the segment's following execution, which keeps
     * every reader of a register — including ops in segments executed
     * after this one — on the presented value for the rest of the
     * cycle.
     */
    std::uint64_t (*commitGated)(const ExecPlan::RegOp *ops,
                                 std::size_t count,
                                 const std::uint64_t *cur,
                                 std::uint64_t *carry,
                                 std::uint64_t *pending,
                                 unsigned laneWords, bool countToggles,
                                 std::uint64_t *toggles,
                                 std::uint64_t *flipCur);

    /**
     * In-place 64x64 bit-matrix transpose: afterwards bit t of
     * block[l] is the old bit l of block[t].
     */
    void (*transpose64)(std::uint64_t block[64]);
};

/** The portable reference kernel (always available). */
const Kernel &scalarKernel();

/**
 * Kernels compiled into this binary and supported by the running CPU
 * in dispatch-preference order (avx2 before avx512 — see the file
 * comment); the scalar kernel is always last.
 */
const std::vector<const Kernel *> &supportedKernels();

/** Look up a supported kernel by name; nullptr when absent. */
const Kernel *findKernel(const std::string &name);

/**
 * The process-wide dispatched kernel: the first (preferred) entry of
 * supportedKernels(), unless the SPATIAL_KERNEL environment variable
 * names another supported kernel (fatal if it names anything else).
 * Resolved once and cached.
 */
const Kernel &activeKernel();

} // namespace spatial::circuit::kernels

#endif // SPATIAL_CIRCUIT_KERNELS_H
