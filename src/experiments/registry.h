/**
 * @file
 * The experiment registry: every paper figure/table and ESN scenario,
 * registered by name, discoverable by the spatial-bench CLI and the
 * tests.  Built-in experiments register lazily on first access (static
 * libraries would dead-strip self-registering globals).
 */

#ifndef SPATIAL_EXPERIMENTS_REGISTRY_H
#define SPATIAL_EXPERIMENTS_REGISTRY_H

#include <string>
#include <vector>

#include "experiments/experiment.h"

namespace spatial::experiments
{

/** Name-keyed collection of Experiment specs. */
class Registry
{
  public:
    /** The process-wide registry, with built-ins registered. */
    static Registry &instance();

    /** Register an experiment; fatal on duplicate names. */
    void add(Experiment experiment);

    /** Look up by name; nullptr when absent. */
    const Experiment *find(const std::string &name) const;

    /** All experiments, in registration order. */
    std::vector<const Experiment *> all() const;

  private:
    std::vector<Experiment> experiments_;
};

/** @name Built-in registration hooks (one per definition file) */
///@{
void registerFigureExperiments(Registry &registry);     //!< fig05-09, tab1
void registerLargeScaleExperiments(Registry &registry); //!< fig10-12, ablation, serial-vs-parallel, CGRA
void registerBaselineExperiments(Registry &registry);   //!< fig13-23
void registerEsnExperiments(Registry &registry);        //!< ESN scenarios
void registerPerfExperiments(Registry &registry);       //!< sim_throughput
void registerServeExperiments(Registry &registry);      //!< serving_throughput
void registerLargeMatrixExperiments(Registry &registry); //!< large_matrix
void registerChaosExperiments(Registry &registry);       //!< chaos
///@}

} // namespace spatial::experiments

#endif // SPATIAL_EXPERIMENTS_REGISTRY_H
