#include "experiments/design_cache.h"

namespace spatial::experiments
{

namespace
{

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t
fnv1a(std::uint64_t hash, std::uint64_t word)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (word >> (i * 8)) & 0xff;
        hash *= kFnvPrime;
    }
    return hash;
}

std::uint64_t
hashMatrix(const IntMatrix &m)
{
    std::uint64_t hash = kFnvOffset;
    hash = fnv1a(hash, m.rows());
    hash = fnv1a(hash, m.cols());
    for (const std::int64_t v : m.data())
        hash = fnv1a(hash, static_cast<std::uint64_t>(v));
    return hash;
}

std::int64_t
checksumMatrix(const IntMatrix &m)
{
    std::int64_t sum = 0;
    for (const std::int64_t v : m.data())
        sum += v;
    return sum;
}

} // namespace

DesignKey
makeDesignKey(const IntMatrix &weights, const core::CompileOptions &options)
{
    return DesignKey{hashMatrix(weights), weights.rows(), weights.cols(),
                     checksumMatrix(weights), options};
}

std::size_t
DesignKeyHash::operator()(const DesignKey &key) const
{
    std::uint64_t hash = key.contentHash;
    hash = fnv1a(hash, static_cast<std::uint64_t>(key.checksum));
    hash = fnv1a(hash, static_cast<std::uint64_t>(key.options.inputBits));
    hash = fnv1a(hash,
                 static_cast<std::uint64_t>(key.options.signMode));
    hash = fnv1a(hash,
                 (key.options.inputsSigned ? 1u : 0u) |
                     (key.options.constantPropagation ? 2u : 0u) |
                     (key.options.balancedTree ? 4u : 0u) |
                     (key.options.alignOutputs ? 8u : 0u));
    hash = fnv1a(hash, key.options.broadcastFanoutLimit);
    hash = fnv1a(hash,
                 static_cast<std::uint64_t>(key.options.extraOutputBits));
    hash = fnv1a(hash, key.options.csdSeed);
    return static_cast<std::size_t>(hash);
}

std::shared_ptr<const CompiledDesign>
DesignCache::get(const IntMatrix &weights,
                 const core::CompileOptions &options)
{
    const DesignKey key = makeDesignKey(weights, options);

    std::shared_future<std::shared_ptr<const CompiledDesign>> future;
    std::promise<std::shared_ptr<const CompiledDesign>> promise;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            future = it->second;
        } else {
            misses_.fetch_add(1, std::memory_order_relaxed);
            owner = true;
            future = promise.get_future().share();
            entries_.emplace(key, future);
        }
    }
    if (owner) {
        try {
            auto entry = std::make_shared<CompiledDesign>();
            entry->design =
                std::make_shared<const core::CompiledMatrix>(
                    core::MatrixCompiler(options).compile(weights));
            entry->point = fpga::evaluateDesign(*entry->design);
            promise.set_value(std::move(entry));
        } catch (...) {
            // Hand the error to current waiters but evict the entry so
            // later lookups retry instead of hitting a poisoned future.
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(mutex_);
            entries_.erase(key);
            throw;
        }
    }
    return future.get();
}

std::shared_ptr<const CompiledDesign>
DesignCache::getFigure(const IntMatrix &weights, core::SignMode mode)
{
    return get(weights, figureCompileOptions(mode));
}

DesignCache::Stats
DesignCache::stats() const
{
    return Stats{hits_.load(std::memory_order_relaxed),
                 misses_.load(std::memory_order_relaxed)};
}

core::CompileOptions
figureCompileOptions(core::SignMode mode)
{
    core::CompileOptions options;
    options.inputBits = 8;
    options.inputsSigned = true;
    options.signMode = mode;
    return options;
}

} // namespace spatial::experiments
