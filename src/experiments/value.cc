#include "experiments/value.h"

#include <cmath>

#include "common/logging.h"
#include "common/table.h"

namespace spatial::experiments
{

bool
isInt(const Value &v)
{
    return std::holds_alternative<std::int64_t>(v);
}

bool
isReal(const Value &v)
{
    return std::holds_alternative<double>(v);
}

bool
isString(const Value &v)
{
    return std::holds_alternative<std::string>(v);
}

std::int64_t
asInt(const Value &v)
{
    if (const auto *i = std::get_if<std::int64_t>(&v))
        return *i;
    SPATIAL_FATAL("expected an integer value, got ", valueText(v));
}

double
asReal(const Value &v)
{
    if (const auto *i = std::get_if<std::int64_t>(&v))
        return static_cast<double>(*i);
    if (const auto *d = std::get_if<double>(&v))
        return *d;
    SPATIAL_FATAL("expected a numeric value, got ", valueText(v));
}

const std::string &
asString(const Value &v)
{
    if (const auto *s = std::get_if<std::string>(&v))
        return *s;
    SPATIAL_FATAL("expected a string value, got ", valueText(v));
}

bool
valueMatches(const Value &a, const Value &b)
{
    if (isString(a) || isString(b)) {
        return isString(a) && isString(b) &&
               std::get<std::string>(a) == std::get<std::string>(b);
    }
    return asReal(a) == asReal(b);
}

std::string
valueText(const Value &v)
{
    if (const auto *i = std::get_if<std::int64_t>(&v))
        return std::to_string(*i);
    if (const auto *d = std::get_if<double>(&v))
        return Table::cell(*d, 6);
    return std::get<std::string>(v);
}

Cell
cell(double v, int precision)
{
    return Cell{v, Table::cell(v, precision)};
}

Cell
cell(std::int64_t v)
{
    return Cell{v, Table::cell(v)};
}

Cell
cell(std::uint64_t v)
{
    return Cell{static_cast<std::int64_t>(v), Table::cell(v)};
}

Cell
cell(int v)
{
    return Cell{std::int64_t{v}, Table::cell(v)};
}

Cell
cell(std::string v)
{
    std::string text = v;
    return Cell{Value{std::move(v)}, std::move(text)};
}

Cell
cell(const char *v)
{
    return cell(std::string(v));
}

} // namespace spatial::experiments
