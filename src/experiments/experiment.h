/**
 * @file
 * Declarative experiment specifications.
 *
 * Every paper figure/table and every ESN scenario is one Experiment: a
 * parameter grid, an optional serial prepare stage (for workloads whose
 * generation draws from a shared RNG stream, as the original bench
 * binaries did), a parallel evaluate stage producing typed rows, and an
 * output schema.  The SweepEngine executes specs; the Registry holds
 * them; the spatial-bench CLI fronts both.
 */

#ifndef SPATIAL_EXPERIMENTS_EXPERIMENT_H
#define SPATIAL_EXPERIMENTS_EXPERIMENT_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/options.h"
#include "experiments/value.h"

namespace spatial::experiments
{

/** One grid point: an ordered set of named parameter values. */
class ParamPoint
{
  public:
    /** An empty point (no parameters). */
    ParamPoint() = default;

    /** Construct from (name, value) pairs, kept in the given order. */
    ParamPoint(std::vector<std::pair<std::string, Value>> values)
        : values_(std::move(values))
    {}

    /** The parameter value, or nullptr when the name is absent. */
    const Value *find(const std::string &name) const;

    /** Integer parameter; fatal when absent or non-integer. */
    std::int64_t getInt(const std::string &name) const;

    /** Numeric parameter (integers promote); fatal when absent. */
    double getReal(const std::string &name) const;

    /** String parameter; fatal when absent or non-string. */
    const std::string &getString(const std::string &name) const;

    /** All parameters in declaration order. */
    const std::vector<std::pair<std::string, Value>> &values() const
    {
        return values_;
    }

    /** Human-readable "name=value name=value" label. */
    std::string label() const;

  private:
    std::vector<std::pair<std::string, Value>> values_;
};

/** One named grid axis and its values. */
struct Axis
{
    std::string name;          //!< parameter name (also the CLI flag)
    std::vector<Value> values; //!< swept values, in order
};

/**
 * The parameter space of an experiment: either the cartesian product
 * of named axes (most figures) or an explicit case list (figures whose
 * points are hand-picked (dim, sparsity) pairs).  CLI overrides
 * replace an axis's values in cartesian mode and filter the case list
 * otherwise.
 */
class Grid
{
  public:
    /** An empty grid (expands to no points). */
    Grid() = default;

    /** Cartesian product of the given axes (last axis fastest). */
    static Grid cartesian(std::vector<Axis> axes);

    /** Explicit point list over the given parameter names. */
    static Grid cases(std::vector<std::string> names,
                      std::vector<std::vector<Value>> rows);

    /** A single fixed point (degenerate one-row case list). */
    static Grid single(std::vector<std::pair<std::string, Value>> values);

    /** True when a parameter of this name exists in the grid. */
    bool hasParam(const std::string &name) const;

    /** All parameter names, in declaration order. */
    std::vector<std::string> paramNames() const;

    /**
     * Apply a CLI override: replace the axis values (cartesian) or
     * filter the case list to matching points.  Returns an error
     * message, or empty on success.
     */
    std::string applyOverride(const std::string &name,
                              const std::vector<Value> &values);

    /** Materialize the points, in deterministic sweep order. */
    std::vector<ParamPoint> expand() const;

  private:
    std::vector<Axis> axes_;                  //!< cartesian mode
    std::vector<std::string> caseNames_;      //!< case mode
    std::vector<std::vector<Value>> caseRows_; //!< case mode
    bool caseMode_ = false;
};

class DesignCache;

/**
 * Mix a `--seed` override into a built-in stream seed: `base`
 * unchanged when `override_` is 0 (the experiment's published
 * numbers), otherwise a golden-ratio perturbation of `base` — so one
 * flag value gives every experiment a distinct but reproducible
 * fresh stream.
 */
std::uint64_t mixSeed(std::uint64_t base, std::uint64_t override_);

/** Context handed to the serial prepare stage. */
struct PrepareContext
{
    /**
     * The experiment's shared generator stream, seeded from
     * Experiment::prepareSeed and advanced across points in grid
     * order — exactly how the original bench binaries threaded one Rng
     * through their sweep loops, so ported numbers are identical.
     */
    Rng &rng;
};

/** Context handed to the parallel evaluate stage. */
struct EvalContext
{
    /** Shared memoizing design cache (thread-safe). */
    DesignCache &cache;

    /** Simulation-engine knobs for experiments that batch-simulate. */
    core::SimOptions sim;

    /**
     * The run's `--seed` override (0 = none): experiments that draw
     * workload or arrival streams inside evaluate mix this into their
     * default seeds, so a run is reproducible for a given flag value
     * and variable across values.
     */
    std::uint64_t seed = 0;
};

/**
 * One declarative experiment: identity, output schema, parameter grid,
 * and the stage functions the SweepEngine drives.
 */
struct Experiment
{
    /** Registry key and CLI name, e.g. "fig08". */
    std::string name;

    /** Paper anchor, e.g. "Figure 8" / "Table I" / "ours". */
    std::string figure;

    /** Table title, verbatim from the original binary. */
    std::string title;

    /** One-line summary shown by `spatial-bench list`. */
    std::string description;

    /** Order-of-magnitude runtime note for the docs and `list`. */
    std::string runtime;

    /** Column headers of the output schema. */
    std::vector<std::string> columns;

    /** The parameter space. */
    Grid grid;

    /** Seed of the PrepareContext Rng stream. */
    std::uint64_t prepareSeed = 0;

    /**
     * Optional serial stage, run over the points in grid order before
     * any evaluation: generate anything whose reproduction requires a
     * shared RNG stream.  The returned payload is handed (const) to
     * evaluate for the same point.
     */
    std::function<std::shared_ptr<const void>(const ParamPoint &,
                                              PrepareContext &)>
        prepare;

    /**
     * Parallel stage: produce this point's rows.  Must be a pure
     * function of (point, prepared payload, context) — workers invoke
     * it concurrently across points.
     */
    std::function<std::vector<Row>(const ParamPoint &, const void *,
                                   EvalContext &)>
        evaluate;

    /** Trailing note printed after the table ("Expected shape: ..."). */
    std::string expectedShape;

    /**
     * Optional dynamic note computed from all rows (overrides
     * expectedShape; used by figures whose footer reports trend-line
     * averages).
     */
    std::function<std::string(const std::vector<Row> &)> note;

    /**
     * Force single-worker execution regardless of the engine's thread
     * count — for wall-clock timing experiments whose numbers
     * concurrent neighbours would distort.
     */
    bool serialOnly = false;
};

} // namespace spatial::experiments

#endif // SPATIAL_EXPERIMENTS_EXPERIMENT_H
