/**
 * @file
 * Shared evaluation workloads (formerly bench/harness.h).
 *
 * The evaluation figures all multiply against the same family of
 * matrices — Section VI's signed 8-bit element-sparse scheme — so the
 * generator lives here once, routed through matrix/generate, and is
 * deterministic per (dim, sparsity, seed) so overlapping sweeps hash to
 * identical matrices and hit the design cache.
 */

#ifndef SPATIAL_EXPERIMENTS_WORKLOAD_H
#define SPATIAL_EXPERIMENTS_WORKLOAD_H

#include <cstdint>

#include "matrix/csr.h"
#include "matrix/dense.h"

namespace spatial::experiments
{

/** One evaluation workload: the fixed matrix in dense and CSR form. */
struct Workload
{
    IntMatrix weights;            //!< dense weights (compiler input)
    CsrMatrix<std::int64_t> csr;  //!< same matrix for the baselines
};

/**
 * Signed 8-bit element-sparse matrix per Section VI's scheme, shared
 * by the FPGA, GPU, and SIGMA sides of each figure.  The Rng is seeded
 * from (seed, dim, sparsity) so equal parameters reproduce the same
 * matrix in any sweep order.
 */
Workload makeWorkload(std::size_t dim, double sparsity,
                      std::uint64_t seed = 99);

} // namespace spatial::experiments

#endif // SPATIAL_EXPERIMENTS_WORKLOAD_H
