#include "experiments/experiment.h"

#include <algorithm>

#include "common/logging.h"

namespace spatial::experiments
{

std::uint64_t
mixSeed(std::uint64_t base, std::uint64_t override_)
{
    return override_ == 0 ? base
                          : base ^ (override_ * 0x9e3779b97f4a7c15ull);
}

const Value *
ParamPoint::find(const std::string &name) const
{
    for (const auto &[key, value] : values_)
        if (key == name)
            return &value;
    return nullptr;
}

namespace
{

const Value &
require(const ParamPoint &point, const std::string &name)
{
    const Value *v = point.find(name);
    if (v == nullptr)
        SPATIAL_FATAL("experiment point ", point.label(),
                      " has no parameter '", name, "'");
    return *v;
}

} // namespace

std::int64_t
ParamPoint::getInt(const std::string &name) const
{
    return asInt(require(*this, name));
}

double
ParamPoint::getReal(const std::string &name) const
{
    return asReal(require(*this, name));
}

const std::string &
ParamPoint::getString(const std::string &name) const
{
    return asString(require(*this, name));
}

std::string
ParamPoint::label() const
{
    std::string out;
    for (const auto &[key, value] : values_) {
        if (!out.empty())
            out += " ";
        out += key + "=" + valueText(value);
    }
    return out;
}

Grid
Grid::cartesian(std::vector<Axis> axes)
{
    Grid grid;
    grid.axes_ = std::move(axes);
    for (const auto &axis : grid.axes_)
        if (axis.values.empty())
            SPATIAL_FATAL("empty axis '", axis.name, "'");
    return grid;
}

Grid
Grid::cases(std::vector<std::string> names,
            std::vector<std::vector<Value>> rows)
{
    Grid grid;
    grid.caseMode_ = true;
    grid.caseNames_ = std::move(names);
    grid.caseRows_ = std::move(rows);
    for (const auto &row : grid.caseRows_)
        if (row.size() != grid.caseNames_.size())
            SPATIAL_FATAL("case width ", row.size(), " vs ",
                          grid.caseNames_.size(), " names");
    return grid;
}

Grid
Grid::single(std::vector<std::pair<std::string, Value>> values)
{
    std::vector<std::string> names;
    std::vector<Value> row;
    for (auto &[name, value] : values) {
        names.push_back(name);
        row.push_back(value);
    }
    return cases(std::move(names), {std::move(row)});
}

bool
Grid::hasParam(const std::string &name) const
{
    if (caseMode_)
        return std::find(caseNames_.begin(), caseNames_.end(), name) !=
               caseNames_.end();
    return std::any_of(axes_.begin(), axes_.end(),
                       [&](const Axis &a) { return a.name == name; });
}

std::vector<std::string>
Grid::paramNames() const
{
    if (caseMode_)
        return caseNames_;
    std::vector<std::string> names;
    names.reserve(axes_.size());
    for (const auto &axis : axes_)
        names.push_back(axis.name);
    return names;
}

std::string
Grid::applyOverride(const std::string &name,
                    const std::vector<Value> &values)
{
    if (values.empty())
        return "override --" + name + " needs at least one value";
    if (!caseMode_) {
        for (auto &axis : axes_) {
            if (axis.name == name) {
                axis.values = values;
                return "";
            }
        }
        return "no axis '" + name + "'";
    }
    const auto it =
        std::find(caseNames_.begin(), caseNames_.end(), name);
    if (it == caseNames_.end())
        return "no parameter '" + name + "'";
    const auto column =
        static_cast<std::size_t>(it - caseNames_.begin());
    std::vector<std::vector<Value>> kept;
    for (auto &row : caseRows_) {
        const bool match =
            std::any_of(values.begin(), values.end(), [&](const Value &v) {
                return valueMatches(row[column], v);
            });
        if (match)
            kept.push_back(std::move(row));
    }
    if (kept.empty())
        return "no case matches --" + name;
    caseRows_ = std::move(kept);
    return "";
}

std::vector<ParamPoint>
Grid::expand() const
{
    std::vector<ParamPoint> points;
    if (caseMode_) {
        points.reserve(caseRows_.size());
        for (const auto &row : caseRows_) {
            std::vector<std::pair<std::string, Value>> values;
            for (std::size_t i = 0; i < caseNames_.size(); ++i)
                values.emplace_back(caseNames_[i], row[i]);
            points.emplace_back(std::move(values));
        }
        return points;
    }

    std::size_t total = axes_.empty() ? 0 : 1;
    for (const auto &axis : axes_)
        total *= axis.values.size();
    points.reserve(total);
    std::vector<std::size_t> index(axes_.size(), 0);
    for (std::size_t n = 0; n < total; ++n) {
        std::vector<std::pair<std::string, Value>> values;
        values.reserve(axes_.size());
        for (std::size_t a = 0; a < axes_.size(); ++a)
            values.emplace_back(axes_[a].name,
                                axes_[a].values[index[a]]);
        points.emplace_back(std::move(values));
        // Odometer increment, last axis fastest.
        for (std::size_t a = axes_.size(); a-- > 0;) {
            if (++index[a] < axes_[a].values.size())
                break;
            index[a] = 0;
        }
    }
    return points;
}

} // namespace spatial::experiments
