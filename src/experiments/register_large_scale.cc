/**
 * @file
 * Registry specs for the Section VI large-scale figures (10-12), the
 * compiler ablation, the bit-serial vs bit-parallel comparison, and
 * the Section VIII CGRA projection.  Figures 10-12 share one design
 * sweep; running them in one engine compiles each design once.
 */

#include <sstream>

#include "cgra/cgra.h"
#include "common/logging.h"
#include "experiments/design_cache.h"
#include "experiments/registry.h"
#include "experiments/workload.h"
#include "fpga/freq_model.h"
#include "fpga/parallel_model.h"
#include "fpga/power_model.h"

namespace spatial::experiments
{

namespace
{

core::SignMode
signModeFromName(const std::string &name)
{
    if (name == "unsigned")
        return core::SignMode::Unsigned;
    if (name == "pn")
        return core::SignMode::PnSplit;
    if (name == "csd")
        return core::SignMode::Csd;
    SPATIAL_FATAL("unknown sign mode '", name, "'");
}

/** The shared Section VI sweep grid of Figures 10, 11, and 12. */
Grid
largeScaleGrid()
{
    return Grid::cartesian(
        {Axis{"dim", {std::int64_t{512}, std::int64_t{1024}}},
         Axis{"sparsity",
              {0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.98}},
         Axis{"mode",
              {Value{std::string("pn")}, Value{std::string("csd")}}}});
}

/** One large-scale design point, via the cache. */
const fpga::DesignPoint &
largeScalePoint(const ParamPoint &point, EvalContext &ctx,
                std::shared_ptr<const CompiledDesign> &hold)
{
    const auto workload =
        makeWorkload(static_cast<std::size_t>(point.getInt("dim")),
                     point.getReal("sparsity"));
    hold = ctx.cache.getFigure(workload.weights,
                               signModeFromName(point.getString("mode")));
    return hold->point;
}

Experiment
makeFig10()
{
    Experiment exp;
    exp.name = "fig10";
    exp.figure = "Figure 10";
    exp.title = "Figure 10: large-scale area vs matrix ones";
    exp.description =
        "Section VI area: LUT/FF vs matrix ones, 512/1024, PN vs CSD";
    exp.runtime = "~1 min (shares designs with fig11/fig12)";
    exp.columns = {"dim", "sparsity %", "mode", "ones", "LUT", "FF",
                   "LUT/ones", "FF/LUT", "fits"};
    exp.grid = largeScaleGrid();
    exp.evaluate = [](const ParamPoint &point, const void *,
                      EvalContext &ctx) {
        std::shared_ptr<const CompiledDesign> hold;
        const auto &p = largeScalePoint(point, ctx, hold);
        const double lut_per_one =
            static_cast<double>(p.resources.luts) /
            static_cast<double>(p.ones);
        const double ff_per_lut =
            static_cast<double>(p.resources.ffs) /
            static_cast<double>(p.resources.luts);
        return std::vector<Row>{
            {cell(static_cast<std::uint64_t>(point.getInt("dim"))),
             cell(point.getReal("sparsity") * 100.0, 3),
             cell(point.getString("mode")), cell(p.ones),
             cell(p.resources.luts), cell(p.resources.ffs),
             cell(lut_per_one, 4), cell(ff_per_lut, 4),
             cell(p.fits ? "yes" : "NO")}};
    };
    exp.note = [](const std::vector<Row> &rows) {
        double lut_ratio_sum = 0.0;
        double ff_ratio_sum = 0.0;
        for (const auto &row : rows) {
            lut_ratio_sum += asReal(row[6].value);
            ff_ratio_sum += asReal(row[7].value);
        }
        const auto count = static_cast<double>(rows.size());
        std::ostringstream oss;
        oss << "Trend lines: LUT/ones ~ " << lut_ratio_sum / count
            << ", FF/LUT ~ " << ff_ratio_sum / count
            << " (paper: ~1 and ~2; CSD shifts points left along the "
               "ones axis).";
        return oss.str();
    };
    return exp;
}

Experiment
makeFig11()
{
    Experiment exp;
    exp.name = "fig11";
    exp.figure = "Figure 11";
    exp.title = "Figure 11: large-scale Fmax";
    exp.description =
        "Section VI achieved Fmax: SLR span and broadcast fanout";
    exp.runtime = "~1 min (shares designs with fig10/fig12)";
    exp.columns = {"dim", "sparsity %", "mode", "LUT", "SLRs",
                   "max fanout", "Fmax MHz"};
    exp.grid = largeScaleGrid();
    exp.evaluate = [](const ParamPoint &point, const void *,
                      EvalContext &ctx) {
        std::shared_ptr<const CompiledDesign> hold;
        const auto &p = largeScalePoint(point, ctx, hold);
        return std::vector<Row>{
            {cell(static_cast<std::uint64_t>(point.getInt("dim"))),
             cell(point.getReal("sparsity") * 100.0, 3),
             cell(point.getString("mode")), cell(p.resources.luts),
             cell(p.slrs), cell(std::uint64_t{p.maxFanout}),
             cell(p.fmaxMhz, 4)}};
    };
    exp.expectedShape =
        "Expected bands: 1 SLR 445-597 MHz, 2 SLRs 296-400 MHz, >2 "
        "SLRs 225-250 MHz; bigger matrices run slower.";
    return exp;
}

Experiment
makeFig12()
{
    Experiment exp;
    exp.name = "fig12";
    exp.figure = "Figure 12";
    exp.title = "Figure 12: large-scale power at Fmax";
    exp.description =
        "Section VI power at achieved Fmax vs the thermal limit";
    exp.runtime = "~1 min (shares designs with fig10/fig11)";
    exp.columns = {"dim", "sparsity %", "mode", "ones", "Fmax MHz",
                   "power W", "thermal"};
    exp.grid = largeScaleGrid();
    exp.evaluate = [](const ParamPoint &point, const void *,
                      EvalContext &ctx) {
        std::shared_ptr<const CompiledDesign> hold;
        const auto &p = largeScalePoint(point, ctx, hold);
        return std::vector<Row>{
            {cell(static_cast<std::uint64_t>(point.getInt("dim"))),
             cell(point.getReal("sparsity") * 100.0, 3),
             cell(point.getString("mode")), cell(p.ones),
             cell(p.fmaxMhz, 4), cell(p.powerWatts, 4),
             cell(fpga::exceedsThermalLimit(p.powerWatts) ? "OVER"
                                                          : "ok")}};
    };
    exp.expectedShape =
        "Expected shape: sublinear growth with ones (falling Fmax); "
        "high dimension + low sparsity approaches the 150 W limit.";
    return exp;
}

Experiment
makeSerialVsParallel()
{
    Experiment exp;
    exp.name = "serial_vs_parallel";
    exp.figure = "ours (Section III premise)";
    exp.title = "Bit-serial vs bit-parallel direct implementation "
                "(8-bit signed)";
    exp.description =
        "bit-serial vs bit-parallel area/cycles/fit comparison";
    exp.runtime = "~1 min";
    exp.columns = {"dim", "sparsity %", "serial LUT", "parallel LUT",
                   "area x", "serial cyc", "parallel cyc",
                   "serial fits", "parallel fits"};
    exp.grid = Grid::cases(
        {"dim", "sparsity"},
        {{std::int64_t{64}, 0.9},
         {std::int64_t{256}, 0.9},
         {std::int64_t{512}, 0.9},
         {std::int64_t{1024}, 0.9},
         {std::int64_t{1024}, 0.6},
         {std::int64_t{2048}, 0.98}});
    exp.evaluate = [](const ParamPoint &point, const void *,
                      EvalContext &ctx) {
        const auto dim =
            static_cast<std::size_t>(point.getInt("dim"));
        const double sparsity = point.getReal("sparsity");
        const auto workload = makeWorkload(dim, sparsity);
        const auto entry = ctx.cache.getFigure(workload.weights);
        const auto &serial = entry->point;
        const auto parallel = fpga::estimateBitParallel(
            dim, dim, workload.csr.nnz(), workload.weights.onesCount(),
            8, 8);
        return std::vector<Row>{
            {cell(dim), cell(sparsity * 100.0, 3),
             cell(serial.resources.luts),
             cell(parallel.resources.luts),
             cell(static_cast<double>(parallel.resources.luts) /
                      static_cast<double>(serial.resources.luts),
                  4),
             cell(std::uint64_t{serial.latencyCycles}),
             cell(std::uint64_t{parallel.latencyCycles}),
             cell(serial.fits ? "yes" : "NO"),
             cell(fpga::fitsDevice(parallel.resources) ? "yes" : "NO")}};
    };
    exp.expectedShape =
        "Expected: parallel designs burn roughly a word-width factor "
        "(~26-33x) more LUTs and stop fitting the device at dimensions "
        "the bit-serial design handles easily.";
    return exp;
}

Experiment
makeAblation()
{
    Experiment exp;
    exp.name = "ablation";
    exp.figure = "ours (DESIGN ablation)";
    exp.title = "Generator ablation (8-bit signed, 95% sparse)";
    exp.description =
        "compiler design-choice ablation: const-prop, trees, PN/CSD";
    exp.runtime = "~1 min (the no-const-prop variant dominates)";
    exp.columns = {"dim", "variant", "LUT", "FF", "LUTRAM",
                   "drain cycles", "Fmax MHz"};
    exp.grid = Grid::cartesian(
        {Axis{"dim", {std::int64_t{64}, std::int64_t{256}}},
         Axis{"variant",
              {Value{std::string("naive (no const-prop)")},
               Value{std::string("chain reduction")},
               Value{std::string("pn (paper)")},
               Value{std::string("csd (paper best)")},
               Value{std::string("csd + piped broadcast")}}}});
    exp.evaluate = [](const ParamPoint &point, const void *,
                      EvalContext &ctx) {
        const auto dim =
            static_cast<std::size_t>(point.getInt("dim"));
        const std::string &variant = point.getString("variant");

        core::CompileOptions options;
        options.inputBits = 8;
        options.signMode = core::SignMode::PnSplit;
        if (variant == "naive (no const-prop)") {
            options.constantPropagation = false;
        } else if (variant == "chain reduction") {
            options.balancedTree = false;
        } else if (variant == "pn (paper)") {
            // Paper defaults.
        } else if (variant == "csd (paper best)") {
            options.signMode = core::SignMode::Csd;
        } else if (variant == "csd + piped broadcast") {
            options.signMode = core::SignMode::Csd;
            options.broadcastFanoutLimit = 32;
        } else {
            SPATIAL_FATAL("unknown ablation variant '", variant, "'");
        }

        const auto workload = makeWorkload(dim, 0.95);
        const auto entry = ctx.cache.get(workload.weights, options);
        const auto &p = entry->point;
        return std::vector<Row>{
            {cell(dim), cell(variant), cell(p.resources.luts),
             cell(p.resources.ffs), cell(p.resources.lutrams),
             cell(std::uint64_t{entry->design->drainCycles()}),
             cell(p.fmaxMhz, 4)}};
    };
    exp.expectedShape =
        "Expected: const-prop buys orders of magnitude of area; "
        "balanced trees buy latency; CSD shaves ~17% off PN.";
    return exp;
}

Experiment
makeCgraProjection()
{
    Experiment exp;
    exp.name = "cgra_projection";
    exp.figure = "ours (Section VIII projection)";
    exp.title = "CGRA projection: area and latency";
    exp.description =
        "compiled designs projected onto the proposed CGRA fabric";
    exp.runtime = "~1 min";
    exp.columns = {"dim", "sparsity %", "FPGA transistors",
                   "CGRA transistors", "density x", "FPGA ns", "CGRA ns"};
    exp.grid = Grid::cases({"dim", "sparsity"},
                           {{std::int64_t{64}, 0.9},
                            {std::int64_t{256}, 0.9},
                            {std::int64_t{512}, 0.9},
                            {std::int64_t{512}, 0.6},
                            {std::int64_t{1024}, 0.9}});
    exp.evaluate = [](const ParamPoint &point, const void *,
                      EvalContext &ctx) {
        const auto dim =
            static_cast<std::size_t>(point.getInt("dim"));
        const double sparsity = point.getReal("sparsity");
        const auto workload = makeWorkload(dim, sparsity);
        const auto entry = ctx.cache.getFigure(workload.weights);
        const auto cgra_point =
            cgra::projectDesign(*entry->design, entry->point);
        return std::vector<Row>{
            {cell(dim), cell(sparsity * 100.0, 3),
             cell(cgra_point.fpgaTransistors, 4),
             cell(cgra_point.transistors, 4),
             cell(cgra_point.densityAdvantage, 4),
             cell(cgra_point.fpgaLatencyNs, 4),
             cell(cgra_point.latencyNs, 4)}};
    };
    exp.expectedShape =
        "Expected: ~4-10x transistor density advantage and a flat CGRA "
        "clock across design sizes.";
    return exp;
}

Experiment
makeCgraDynamic()
{
    Experiment exp;
    exp.name = "cgra_dynamic";
    exp.figure = "ours (Section VIII discussion)";
    exp.title = "Dynamic sparse matrices: sustained ns/multiply vs "
                "matrix lifetime (1024x1024, 90% sparse)";
    exp.description =
        "FPGA-vs-CGRA reconfiguration economics for dynamic matrices";
    exp.runtime = "~30 s (reuses the cgra_projection 1024 design)";
    exp.columns = {"multiplies per matrix", "FPGA (200 ms reconfig)",
                   "CGRA (pipeline reconfig)"};
    exp.grid = Grid::cartesian({Axis{
        "life",
        {std::int64_t{1}, std::int64_t{100}, std::int64_t{10'000},
         std::int64_t{1'000'000}, std::int64_t{100'000'000}}}});
    exp.evaluate = [](const ParamPoint &point, const void *,
                      EvalContext &ctx) {
        const auto life =
            static_cast<std::size_t>(point.getInt("life"));
        const auto workload = makeWorkload(1024, 0.9);
        const auto entry = ctx.cache.getFigure(workload.weights);
        const auto cgra_point =
            cgra::projectDesign(*entry->design, entry->point);
        return std::vector<Row>{
            {cell(life),
             cell(cgra::sustainedNsPerMultiply(cgra_point, life, true),
                  5),
             cell(cgra::sustainedNsPerMultiply(cgra_point, life, false),
                  5)}};
    };
    exp.expectedShape =
        "Expected: a dynamic-matrix regime only the CGRA survives — "
        "pipeline reconfiguration amortizes where the FPGA's 200 ms "
        "bitstream reload cannot.";
    return exp;
}

} // namespace

void
registerLargeScaleExperiments(Registry &registry)
{
    registry.add(makeFig10());
    registry.add(makeFig11());
    registry.add(makeFig12());
    registry.add(makeSerialVsParallel());
    registry.add(makeAblation());
    registry.add(makeCgraProjection());
    registry.add(makeCgraDynamic());
}

} // namespace spatial::experiments
