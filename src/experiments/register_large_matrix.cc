/**
 * @file
 * Registry spec for the tiled large-matrix engine: compile-vs-load
 * latency and batch throughput as the design dimension grows past the
 * single-device envelope (Section VIII's "must be tiled similar to
 * DNN accelerators" regime, executed).
 *
 * Each grid point generates a sparse signed dim x dim matrix, compiles
 * it as column-strip tiles (core::TiledDesign), round-trips it through
 * the design store's serialized format (store::saveDesignFile /
 * loadDesignFile — the cold-tier demote/promote path), and checks the
 * loaded design's wide-engine output bit-exact against a plain integer
 * GEMV of the original weights.  The headline columns are the
 * compile-vs-load split: rematerializing a spilled design is a linear
 * netlist replay plus ExecPlan rebuild, several times cheaper than
 * recompiling, which is the entire case for memory tiering
 * (docs/store.md).  `spatial-bench run large_matrix --json=.` writes
 * BENCH_large_matrix.json; CI gates `load x` at dim >= 2048 with
 * --check_load_speedup.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "common/logging.h"
#include "common/rng.h"
#include "core/tiled_design.h"
#include "experiments/registry.h"
#include "matrix/generate.h"
#include "store/format.h"

namespace spatial::experiments
{

namespace
{

/** Nonzeros per column the generated workload targets (keeps the
 * per-tile ones-cost, and so the tile count, dimension-independent). */
constexpr double kNonzerosPerColumn = 48.0;

/** Batch rows of the throughput phase. */
constexpr std::size_t kThroughputBatch = 64;

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Plain integer GEMV of the raw weights: the untiled reference. */
IntMatrix
referenceMultiply(const IntMatrix &weights, const IntMatrix &batch)
{
    IntMatrix out(batch.rows(), weights.cols());
    for (std::size_t b = 0; b < batch.rows(); ++b)
        for (std::size_t r = 0; r < weights.rows(); ++r) {
            const std::int64_t x = batch.at(b, r);
            if (x == 0)
                continue;
            for (std::size_t c = 0; c < weights.cols(); ++c)
                out.at(b, c) += x * weights.at(r, c);
        }
    return out;
}

Experiment
makeLargeMatrix()
{
    Experiment exp;
    exp.name = "large_matrix";
    exp.figure = "ours (tiled large-matrix engine)";
    exp.title = "Column-tiled designs: compile vs cold-tier load, "
                "batch throughput";
    exp.description =
        "tile counts, serialize/load round-trip vs recompile, and "
        "wide-engine throughput up to dim 8192, bit-exact";
    exp.runtime = "~1-2 min (dim-8192 compile dominates)";
    exp.columns = {"dim",    "tiles",  "ones",        "compile s",
                   "save s", "load s", "load x",      "batch vec/s",
                   "exact"};
    exp.grid = Grid::cartesian(
        {Axis{"dim", {std::int64_t{1024}, std::int64_t{2048},
                      std::int64_t{4096}, std::int64_t{8192}}}});
    exp.serialOnly = true; // wall-clock compile/load timings
    exp.evaluate = [](const ParamPoint &point, const void *,
                      EvalContext &ctx) {
        const std::size_t dim =
            static_cast<std::size_t>(point.getInt("dim"));
        Rng rng(mixSeed(8192 + dim, ctx.seed));

        core::CompileOptions compile;
        compile.inputBits = 8;
        compile.inputsSigned = true;
        compile.signMode = core::SignMode::Csd;

        const double sparsity =
            1.0 - kNonzerosPerColumn / static_cast<double>(dim);
        const IntMatrix weights = makeSignedElementSparseMatrix(
            dim, dim, compile.inputBits, sparsity, rng);

        // Compile as column-strip tiles under the default device
        // budget (TileOptions::onesBudget); dims past ~2048 need
        // several strips.
        const auto compile_start = std::chrono::steady_clock::now();
        auto design = core::TiledDesign::compile(weights, compile);
        const double compile_s = secondsSince(compile_start);

        // Round-trip through the cold-tier format: the exact bytes a
        // DesignStore demotion writes and a promotion reads.
        const auto key = makeDesignKey(weights, compile);
        const auto path =
            std::filesystem::temp_directory_path() /
            ("spatial-large-matrix-" + std::to_string(dim) + "-" +
             std::to_string(key.contentHash) + ".sptd");
        const auto save_start = std::chrono::steady_clock::now();
        if (!store::saveDesignFile(path.string(), key, design))
            SPATIAL_FATAL("large_matrix: cannot write ",
                          path.string());
        const double save_s = secondsSince(save_start);

        std::shared_ptr<const core::TiledDesign> loaded;
        const auto load_start = std::chrono::steady_clock::now();
        const auto status =
            store::loadDesignFile(path.string(), &loaded);
        const double load_s = secondsSince(load_start);
        std::filesystem::remove(path);
        if (status != store::LoadStatus::Ok)
            SPATIAL_FATAL("large_matrix: reload failed (",
                          store::loadStatusName(status), ")");

        // Bit-exactness: the loaded tiled design against a plain
        // integer GEMV of the raw weights.  Any mismatch is fatal —
        // every run of this experiment doubles as the tiled-engine
        // correctness smoke.
        Rng batch_rng(mixSeed(515, ctx.seed));
        const IntMatrix batch = makeSignedBatch(
            kThroughputBatch, dim, compile.inputBits, batch_rng);
        const auto run_start = std::chrono::steady_clock::now();
        const IntMatrix got = loaded->multiplyBatchWide(batch, ctx.sim);
        const double run_s = secondsSince(run_start);
        if (!(got == referenceMultiply(weights, batch)))
            SPATIAL_FATAL("large_matrix: tiled output differs from "
                          "the reference multiply at dim ", dim);

        return std::vector<Row>{
            {cell(static_cast<std::int64_t>(dim)),
             cell(static_cast<std::int64_t>(design.tileCount())),
             cell(static_cast<std::int64_t>(design.weightOnes())),
             cell(compile_s, 3), cell(save_s, 3), cell(load_s, 3),
             cell(load_s > 0.0 ? compile_s / load_s : 0.0, 2),
             cell(run_s > 0.0 ? static_cast<double>(kThroughputBatch) /
                                    run_s
                              : 0.0,
                  1),
             cell("yes")}};
    };
    exp.expectedShape =
        "Tile count grows with dim once the ones-cost passes the "
        "device budget; `load x` (compile time over cold-load time) "
        "grows with dim and should sit well above 5x by dim 2048 — "
        "loading replays the netlist linearly while compiling "
        "re-derives it.";
    return exp;
}

} // namespace

void
registerLargeMatrixExperiments(Registry &registry)
{
    registry.add(makeLargeMatrix());
}

} // namespace spatial::experiments
