/**
 * @file
 * Memoization of compiled designs across an experiment sweep.
 *
 * Compiling a matrix (and evaluating the FPGA models on the result) is
 * the dominant cost of every figure, and the figures overlap heavily:
 * the FPGA/GPU/SIGMA sides of one figure share workloads, Figures
 * 10-12 share one Section VI sweep, and the speedup figures re-derive
 * the latency figures' design points.  The cache keys on (matrix
 * content hash, compile options), so any two experiments — or two grid
 * points of one sweep — that reach the same design compile it once.
 *
 * Thread-safe; concurrent requests for the same key block on the first
 * requester's compilation instead of duplicating it.  The key type and
 * hit/miss snapshot struct are shared with serve::DesignStore, the
 * online serving layer's LRU front for the same identity scheme.
 */

#ifndef SPATIAL_EXPERIMENTS_DESIGN_CACHE_H
#define SPATIAL_EXPERIMENTS_DESIGN_CACHE_H

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/compiled_matrix.h"
#include "core/compiler.h"
#include "fpga/report.h"
#include "matrix/dense.h"

namespace spatial::experiments
{

/** A cached compilation: the design plus its FPGA evaluation. */
struct CompiledDesign
{
    /** The compiled netlist, shared immutably across workers. */
    std::shared_ptr<const core::CompiledMatrix> design;

    /** fpga::evaluateDesign of the design (default model options). */
    fpga::DesignPoint point;
};

/**
 * The content-addressed identity of a compiled design: matrix FNV hash
 * (plus shape and an element-sum collision guard) and the full compile
 * options.  Both DesignCache and serve::DesignStore key on this, so a
 * design is "the same design" under exactly one definition repo-wide.
 */
struct DesignKey
{
    std::uint64_t contentHash = 0; //!< FNV-1a over shape and elements
    std::size_t rows = 0;          //!< matrix rows
    std::size_t cols = 0;          //!< matrix cols
    std::int64_t checksum = 0;     //!< element sum, a collision guard
    core::CompileOptions options;  //!< full compiler configuration

    /** Memberwise equality (hash-map key semantics). */
    bool operator==(const DesignKey &) const = default;
};

/** Build the key for (weights, options); hashes every element. */
DesignKey makeDesignKey(const IntMatrix &weights,
                        const core::CompileOptions &options);

/** Hash functor over DesignKey for unordered containers. */
struct DesignKeyHash
{
    /** FNV-mix of the content hash, checksum, and options fields. */
    std::size_t operator()(const DesignKey &key) const;
};

/** Content-addressed, thread-safe cache of compiled designs. */
class DesignCache
{
  public:
    /**
     * Hit/miss snapshot (a hit may still wait on an in-flight miss).
     * The live counters are atomics, so stats() never takes the cache
     * lock — concurrent readers (the serve layer polls them while
     * request workers compile) get monotonic counters without
     * blocking anyone.  The two loads are independent, so a snapshot
     * taken mid-burst may pair a slightly older hits with a newer
     * misses; exact pairing would need the lock the sweep/serving hot
     * paths deliberately avoid.
     */
    struct Stats
    {
        std::size_t hits = 0;   //!< lookups served from the cache
        std::size_t misses = 0; //!< lookups that compiled

        /** Memberwise difference (for per-run deltas). */
        Stats operator-(const Stats &other) const
        {
            return Stats{hits - other.hits, misses - other.misses};
        }
    };

    /**
     * The design for (weights, options), compiling and evaluating on
     * first request.  Never returns null.
     */
    std::shared_ptr<const CompiledDesign>
    get(const IntMatrix &weights, const core::CompileOptions &options);

    /**
     * Convenience for the evaluation figures' standard configuration:
     * 8-bit signed inputs with the given weight-sign mode (what the
     * retired bench/harness.h evalFpga hard-coded).
     */
    std::shared_ptr<const CompiledDesign>
    getFigure(const IntMatrix &weights,
              core::SignMode mode = core::SignMode::Csd);

    /** Current cumulative counters (lock-free snapshot). */
    Stats stats() const;

  private:
    mutable std::mutex mutex_;
    std::unordered_map<DesignKey,
                       std::shared_future<std::shared_ptr<const CompiledDesign>>,
                       DesignKeyHash>
        entries_;
    std::atomic<std::size_t> hits_{0};
    std::atomic<std::size_t> misses_{0};
};

/**
 * The Section VI evaluation-figure compile options: 8-bit signed
 * streamed inputs, the given weight-sign handling.
 */
core::CompileOptions figureCompileOptions(core::SignMode mode);

} // namespace spatial::experiments

#endif // SPATIAL_EXPERIMENTS_DESIGN_CACHE_H
