/**
 * @file
 * Memoization of compiled designs across an experiment sweep.
 *
 * Compiling a matrix (and evaluating the FPGA models on the result) is
 * the dominant cost of every figure, and the figures overlap heavily:
 * the FPGA/GPU/SIGMA sides of one figure share workloads, Figures
 * 10-12 share one Section VI sweep, and the speedup figures re-derive
 * the latency figures' design points.  The cache keys on (matrix
 * content hash, compile options), so any two experiments — or two grid
 * points of one sweep — that reach the same design compile it once.
 *
 * Thread-safe; concurrent requests for the same key block on the first
 * requester's compilation instead of duplicating it.
 */

#ifndef SPATIAL_EXPERIMENTS_DESIGN_CACHE_H
#define SPATIAL_EXPERIMENTS_DESIGN_CACHE_H

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/compiled_matrix.h"
#include "core/compiler.h"
#include "fpga/report.h"
#include "matrix/dense.h"

namespace spatial::experiments
{

/** A cached compilation: the design plus its FPGA evaluation. */
struct CompiledDesign
{
    /** The compiled netlist, shared immutably across workers. */
    std::shared_ptr<const core::CompiledMatrix> design;

    /** fpga::evaluateDesign of the design (default model options). */
    fpga::DesignPoint point;
};

/** Content-addressed, thread-safe cache of compiled designs. */
class DesignCache
{
  public:
    /** Hit/miss accounting (a hit may still wait on an in-flight miss). */
    struct Stats
    {
        std::size_t hits = 0;   //!< lookups served from the cache
        std::size_t misses = 0; //!< lookups that compiled

        /** Memberwise difference (for per-run deltas). */
        Stats operator-(const Stats &other) const
        {
            return Stats{hits - other.hits, misses - other.misses};
        }
    };

    /**
     * The design for (weights, options), compiling and evaluating on
     * first request.  Never returns null.
     */
    std::shared_ptr<const CompiledDesign>
    get(const IntMatrix &weights, const core::CompileOptions &options);

    /**
     * Convenience for the evaluation figures' standard configuration:
     * 8-bit signed inputs with the given weight-sign mode (what the
     * retired bench/harness.h evalFpga hard-coded).
     */
    std::shared_ptr<const CompiledDesign>
    getFigure(const IntMatrix &weights,
              core::SignMode mode = core::SignMode::Csd);

    /** Current cumulative counters. */
    Stats stats() const;

  private:
    struct Key
    {
        std::uint64_t contentHash;
        std::size_t rows;
        std::size_t cols;
        std::int64_t checksum; //!< element sum, a second collision guard
        core::CompileOptions options;

        bool operator==(const Key &) const = default;
    };

    struct KeyHash
    {
        std::size_t operator()(const Key &key) const;
    };

    mutable std::mutex mutex_;
    std::unordered_map<Key,
                       std::shared_future<std::shared_ptr<const CompiledDesign>>,
                       KeyHash>
        entries_;
    Stats stats_;
};

/**
 * The Section VI evaluation-figure compile options: 8-bit signed
 * streamed inputs, the given weight-sign handling.
 */
core::CompileOptions figureCompileOptions(core::SignMode mode);

} // namespace spatial::experiments

#endif // SPATIAL_EXPERIMENTS_DESIGN_CACHE_H
