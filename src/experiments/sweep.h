/**
 * @file
 * The sweep engine: executes an Experiment's grid across a worker
 * pool, memoizing compiled designs, and assembles results for the
 * table renderer, JSON, and CSV.
 *
 * Execution model per experiment:
 *
 *  1. expand the grid (after CLI overrides) into ordered points;
 *  2. run the serial prepare stage over the points in grid order with
 *     the experiment's Rng stream (reproducing the original binaries'
 *     sequential generation exactly);
 *  3. shard the evaluate stage across min(threads, points) workers,
 *     each pulling the next unclaimed point;
 *  4. reassemble rows in point order — results are identical for any
 *     worker count.
 */

#ifndef SPATIAL_EXPERIMENTS_SWEEP_H
#define SPATIAL_EXPERIMENTS_SWEEP_H

#include <iosfwd>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/options.h"
#include "experiments/design_cache.h"
#include "experiments/experiment.h"

namespace spatial::experiments
{

/** Engine-wide knobs. */
struct SweepOptions
{
    /**
     * Worker threads for the evaluate stage; 0 = one per hardware
     * context, clamped to the point count.
     */
    unsigned threads = 0;

    /** Simulation-engine knobs forwarded to EvalContext. */
    core::SimOptions sim;

    /**
     * Workload-stream seed override (the CLI's `--seed`).  0 keeps
     * every experiment's built-in seed (the paper's numbers); any
     * other value is mixed into the prepare-stage Rng seed and exposed
     * through EvalContext::seed, so repeated runs with one value are
     * identical and different values draw fresh streams.
     */
    std::uint64_t seed = 0;
};

/** One CLI/grid override: replace or filter a named parameter. */
struct GridOverride
{
    std::string name;          //!< parameter name
    std::vector<Value> values; //!< replacement / filter values
};

/** The outcome of running one experiment. */
struct ExperimentResult
{
    std::string name;                 //!< experiment name
    std::string figure;               //!< paper anchor
    std::string title;                //!< table title
    std::vector<std::string> columns; //!< output schema
    std::vector<ParamPoint> points;   //!< evaluated grid points
    std::vector<Row> rows;            //!< all rows, in point order
    std::string note;                 //!< trailing expected-shape note
    DesignCache::Stats cacheDelta;    //!< cache activity of this run
    double wallSeconds = 0.0;         //!< end-to-end wall clock

    /** Render as the figure's table (identical to the old binaries). */
    Table toTable() const;

    /** Serialize as a self-describing JSON document. */
    std::string toJson() const;

    /** Emit as CSV (header + rows). */
    void writeCsv(std::ostream &os) const;
};

/**
 * Parse an ExperimentResult's JSON back into (columns, rows) — the
 * schema round-trip the tests enforce.  Returns false on malformed
 * input.
 */
bool parseResultJson(const std::string &text,
                     std::vector<std::string> &columns,
                     std::vector<std::vector<Value>> &rows);

/** Executes experiments; owns the shared design cache. */
class SweepEngine
{
  public:
    /** Create an engine with the given knobs. */
    explicit SweepEngine(SweepOptions options = {});

    /** Run one experiment with optional grid overrides. */
    ExperimentResult run(const Experiment &experiment,
                         const std::vector<GridOverride> &overrides = {});

    /** The engine-lifetime design cache (shared across run calls). */
    DesignCache &cache() { return cache_; }

    /** The engine's knobs. */
    const SweepOptions &options() const { return options_; }

  private:
    SweepOptions options_;
    DesignCache cache_;
};

} // namespace spatial::experiments

#endif // SPATIAL_EXPERIMENTS_SWEEP_H
