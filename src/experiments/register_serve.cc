/**
 * @file
 * Registry spec for the serving layer: batching-policy sweeps over the
 * online request scheduler.  Each grid point drives the shared load
 * generator twice — an open-loop Poisson phase for the latency
 * distribution at a target QPS, and a drain-mode phase for the
 * batch-saturating throughput ceiling against the naive
 * one-request-per-multiply path (verified bit-identical before the
 * speedup is reported).  `spatial-bench run serving_throughput
 * --max_delay_us=... --max_batch=...` sweeps the batching policy like
 * any other figure; `--seed` varies the workload/arrival streams.
 */

#include "common/logging.h"
#include "experiments/registry.h"
#include "serve/loadgen.h"

namespace spatial::experiments
{

namespace
{

Experiment
makeServingThroughput()
{
    Experiment exp;
    exp.name = "serving_throughput";
    exp.figure = "ours (serving layer)";
    exp.title = "Online serving: deadline-aware lane batching vs the "
                "naive path";
    exp.description =
        "open-loop latency percentiles plus drain-mode batching "
        "speedup, bit-exact";
    exp.runtime = "~10 s (timed load phases)";
    exp.columns = {"designs", "dim", "max_batch", "max_delay_us",
                   "qps", "throughput", "p50 ms", "p95 ms", "p99 ms",
                   "occupancy", "drain speedup"};
    exp.grid = Grid::cartesian(
        {Axis{"designs", {std::int64_t{1}, std::int64_t{2}}},
         Axis{"dim", {std::int64_t{96}}},
         Axis{"max_batch", {std::int64_t{64}, std::int64_t{256}}},
         Axis{"max_delay_us", {std::int64_t{2000}}},
         Axis{"qps", {std::int64_t{15000}}}});
    exp.serialOnly = true; // wall-clock load phases
    exp.evaluate = [](const ParamPoint &point, const void *,
                      EvalContext &ctx) {
        serve::LoadGenOptions options;
        options.designs =
            static_cast<std::size_t>(point.getInt("designs"));
        options.dim = static_cast<std::size_t>(point.getInt("dim"));
        options.qps = point.getReal("qps");
        options.duration = 0.4;
        options.batchFraction = 0.1;
        options.esnFraction = 0.1;
        options.seed = mixSeed(404, ctx.seed);
        options.serve.maxBatch =
            static_cast<std::size_t>(point.getInt("max_batch"));
        options.serve.maxDelay = std::chrono::microseconds(
            point.getInt("max_delay_us"));
        options.serve.sim = ctx.sim;

        options.mode = serve::LoadGenOptions::Mode::Open;
        const auto open = serve::runLoadGen(options);

        options.mode = serve::LoadGenOptions::Mode::Drain;
        options.requests = 2048;
        options.compareNaive = true;
        const auto drain = serve::runLoadGen(options);
        if (!drain.bitExact)
            SPATIAL_FATAL("serving_throughput: batched outputs differ "
                          "from the naive path; refusing to report");

        return std::vector<Row>{
            {cell(static_cast<std::int64_t>(options.designs)),
             cell(static_cast<std::int64_t>(options.dim)),
             cell(static_cast<std::int64_t>(options.serve.maxBatch)),
             cell(static_cast<std::int64_t>(
                 options.serve.maxDelay.count())),
             cell(static_cast<std::int64_t>(options.qps)),
             cell(static_cast<std::int64_t>(open.throughput)),
             cell(open.latencyMs.p50, 3), cell(open.latencyMs.p95, 3),
             cell(open.latencyMs.p99, 3),
             cell(open.stats.occupancy(), 3),
             cell(drain.speedup, 2)}};
    };
    exp.expectedShape =
        "Longer max_delay trades p50 latency for occupancy; drain "
        "speedup is the batched engine's advantage over "
        "one-request-per-multiply on identical, bit-identical work "
        "(grows with max_batch until the engine saturates).";
    return exp;
}

} // namespace

void
registerServeExperiments(Registry &registry)
{
    registry.add(makeServingThroughput());
}

} // namespace spatial::experiments
