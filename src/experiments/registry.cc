#include "experiments/registry.h"

#include "common/logging.h"

namespace spatial::experiments
{

Registry &
Registry::instance()
{
    static Registry *registry = [] {
        auto *r = new Registry();
        registerFigureExperiments(*r);
        registerLargeScaleExperiments(*r);
        registerBaselineExperiments(*r);
        registerEsnExperiments(*r);
        registerPerfExperiments(*r);
        registerServeExperiments(*r);
        registerLargeMatrixExperiments(*r);
        registerChaosExperiments(*r);
        return r;
    }();
    return *registry;
}

void
Registry::add(Experiment experiment)
{
    SPATIAL_ASSERT(!experiment.name.empty(), "unnamed experiment");
    if (find(experiment.name) != nullptr)
        SPATIAL_FATAL("duplicate experiment '", experiment.name, "'");
    experiments_.push_back(std::move(experiment));
}

const Experiment *
Registry::find(const std::string &name) const
{
    for (const auto &experiment : experiments_)
        if (experiment.name == name)
            return &experiment;
    return nullptr;
}

std::vector<const Experiment *>
Registry::all() const
{
    std::vector<const Experiment *> out;
    out.reserve(experiments_.size());
    for (const auto &experiment : experiments_)
        out.push_back(&experiment);
    return out;
}

} // namespace spatial::experiments
